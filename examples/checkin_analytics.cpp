// Check-in analytics (the paper's Gowalla motivation): a location service
// outsources time-stamped check-ins and runs time-window queries over the
// encrypted data. Near-uniform timestamps make Logarithmic-SRC shine:
// single-token queries, no result-partitioning leakage, and Lemma 1 keeps
// the false positives at O(R).
//
//   $ ./checkin_analytics [n]

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "data/generators.h"
#include "data/workload.h"
#include "rsse/log_src.h"
#include "rsse/logarithmic.h"
#include "rsse/scheme.h"

int main(int argc, char** argv) {
  using namespace rsse;
  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const uint64_t domain = uint64_t{1} << 24;  // seconds over ~6 months

  Rng rng(2009);
  Dataset checkins = GenerateGowallaLike(n, domain, rng);
  std::printf("check-ins: %llu, distinct timestamps: %llu (%.0f%%)\n",
              static_cast<unsigned long long>(checkins.size()),
              static_cast<unsigned long long>(checkins.DistinctValueCount()),
              100.0 * static_cast<double>(checkins.DistinctValueCount()) /
                  static_cast<double>(checkins.size()));

  LogarithmicSrcScheme src(/*rng_seed=*/1);
  LogarithmicScheme urc(CoverTechnique::kUrc, /*rng_seed=*/1);
  if (!src.Build(checkins).ok() || !urc.Build(checkins).ok()) {
    std::fprintf(stderr, "index construction failed\n");
    return 1;
  }
  std::printf("Logarithmic-SRC index: %.1f MB | Logarithmic-URC index: %.1f MB\n",
              src.IndexSizeBytes() / 1048576.0, urc.IndexSizeBytes() / 1048576.0);

  // "How many users checked in during each of these windows?"
  Rng qrng(7);
  for (const Range& window :
       RandomRangesOfFraction(checkins.domain(), 0.02, 5, qrng)) {
    Result<QueryResult> a = src.Query(window);
    Result<QueryResult> b = urc.Query(window);
    if (!a.ok() || !b.ok()) return 1;
    size_t exact = FilterIdsToRange(checkins, a->ids, window).size();
    std::printf(
        "window [%llu,%llu]: %zu check-ins | SRC sent %zu B, returned %zu "
        "(%.0f%% fp) | URC sent %zu B in %zu tokens, exact\n",
        static_cast<unsigned long long>(window.lo),
        static_cast<unsigned long long>(window.hi), exact, a->token_bytes,
        a->ids.size(),
        a->ids.empty()
            ? 0.0
            : 100.0 * static_cast<double>(a->ids.size() - exact) /
                  static_cast<double>(a->ids.size()),
        b->token_bytes, b->token_count);
  }
  return 0;
}
