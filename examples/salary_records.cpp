// Salary records under heavy skew (the paper's USPS scenario): thousands of
// employees share a handful of pay grades, so Logarithmic-SRC's single
// cover node can drag in nearly the whole dataset as false positives.
// Logarithmic-SRC-i's interactive auxiliary index tames this to O(R + r) —
// the paper's headline trade-off (Section 6.3).
//
//   $ ./salary_records [n]

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "data/generators.h"
#include "rsse/log_src.h"
#include "rsse/log_src_i.h"
#include "rsse/scheme.h"

int main(int argc, char** argv) {
  using namespace rsse;
  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const uint64_t domain = 276841;  // the USPS salary domain

  Rng rng(389);
  Dataset salaries = GenerateUspsLike(n, domain, rng);
  std::printf("employees: %llu, distinct salaries: %llu (%.1f%%)\n",
              static_cast<unsigned long long>(salaries.size()),
              static_cast<unsigned long long>(salaries.DistinctValueCount()),
              100.0 * static_cast<double>(salaries.DistinctValueCount()) /
                  static_cast<double>(salaries.size()));

  LogarithmicSrcScheme src(/*rng_seed=*/1);
  LogarithmicSrcIScheme srci(/*rng_seed=*/1);
  if (!src.Build(salaries).ok() || !srci.Build(salaries).ok()) {
    std::fprintf(stderr, "index construction failed\n");
    return 1;
  }
  std::printf("SRC index: %.1f MB | SRC-i index: %.1f MB (aux: %.1f MB)\n",
              src.IndexSizeBytes() / 1048576.0,
              srci.IndexSizeBytes() / 1048576.0,
              srci.AuxiliaryIndexSizeBytes() / 1048576.0);

  // Salary-band audits: "who earns within [lo, hi]?"
  Rng qrng(17);
  for (int i = 0; i < 5; ++i) {
    uint64_t lo = qrng.Uniform(0, domain - domain / 20);
    Range band{lo, lo + domain / 20};
    Result<QueryResult> a = src.Query(band);
    Result<QueryResult> b = srci.Query(band);
    if (!a.ok() || !b.ok()) return 1;
    size_t exact = FilterIdsToRange(salaries, a->ids, band).size();
    std::printf(
        "band [%llu,%llu]: %zu matches | SRC returned %zu (fp %zu) | "
        "SRC-i returned %zu (fp %zu) in %d rounds\n",
        static_cast<unsigned long long>(band.lo),
        static_cast<unsigned long long>(band.hi), exact, a->ids.size(),
        a->ids.size() - exact, b->ids.size(), b->ids.size() - exact,
        b->rounds);
  }
  return 0;
}
