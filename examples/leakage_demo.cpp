// The adversary's view: what the server actually learns from each scheme's
// trapdoors and results, computed with the leakage profilers that make the
// paper's L2 formulations concrete (Sections 5-6).
//
//   $ ./leakage_demo

#include <cstdio>

#include "cover/urc.h"
#include "data/dataset.h"
#include "dprf/ggm_dprf.h"
#include "rsse/leakage.h"

namespace {

void PrintProfile(const char* label, const std::vector<int>& levels) {
  std::printf("%-28s levels {", label);
  for (size_t i = 0; i < levels.size(); ++i) {
    std::printf("%s%d", i == 0 ? "" : ",", levels[i]);
  }
  std::printf("}\n");
}

}  // namespace

int main() {
  using namespace rsse;
  const int bits = 4;  // domain {0..15}

  std::printf("— Trapdoor shape: what token counts/levels reveal —\n");
  // Two ranges of the same size 6 at different positions.
  PrintProfile("BRC  [2,7]:", leakage::CoverLevelProfile(
                                  Range{2, 7}, CoverTechnique::kBrc, bits));
  PrintProfile("BRC  [1,6]:", leakage::CoverLevelProfile(
                                  Range{1, 6}, CoverTechnique::kBrc, bits));
  std::printf("  -> BRC shapes differ: the adversary can rule out positions.\n");
  PrintProfile("URC  [2,7]:", leakage::CoverLevelProfile(
                                  Range{2, 7}, CoverTechnique::kUrc, bits));
  PrintProfile("URC  [1,6]:", leakage::CoverLevelProfile(
                                  Range{1, 6}, CoverTechnique::kUrc, bits));
  std::printf("  -> URC shapes match any range of size 6: only R leaks.\n\n");

  // A small dataset: ids 1..5 at values 1, 2, 5, 6, 6.
  Dataset data(Domain{16}, {{1, 1}, {2, 2}, {3, 5}, {4, 6}, {5, 6}});
  const Range query{1, 6};

  std::printf("— Logarithmic-BRC/URC: result partitioning (Section 6.1) —\n");
  for (const auto& group : leakage::ResultPartitioning(
           data, query, CoverTechnique::kBrc, bits)) {
    std::printf("  cover node at level %d -> %zu id(s):", group.level,
                group.ids.size());
    for (uint64_t id : group.ids) std::printf(" %llu",
                                              static_cast<unsigned long long>(id));
    std::printf("\n");
  }
  std::printf("  -> group sizes (not positions) are visible per query.\n\n");

  std::printf("— Constant-BRC/URC: in-subtree mapping (Section 5) —\n");
  for (const auto& mapping : leakage::ConstantStructuralLeakage(
           data, query, CoverTechnique::kBrc, bits)) {
    std::printf("  subtree at level %d:", mapping.level);
    for (const auto& [offset, id] : mapping.offset_to_id) {
      std::printf(" (leaf+%llu -> id %llu)",
                  static_cast<unsigned long long>(offset),
                  static_cast<unsigned long long>(id));
    }
    std::printf("\n");
  }
  std::printf(
      "  -> the DPRF expansion reveals each result's exact leaf offset,\n"
      "     i.e. relative order inside every cover subtree — strictly more\n"
      "     than the Logarithmic schemes leak. Logarithmic-SRC leaks neither\n"
      "     (single keyword, randomly permuted postings).\n");
  return 0;
}
