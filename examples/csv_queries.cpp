// CSV ingestion end to end: write a small order-log CSV, load it with the
// CSV loader (the path users take to run the library on real exports, e.g.
// the original Gowalla dataset), build an index, persist the encrypted
// dictionary blob, restore it, and query.
//
//   $ ./csv_queries

#include <cstdio>
#include <fstream>

#include "data/csv_loader.h"
#include "rsse/log_src_i.h"
#include "rsse/scheme.h"

int main() {
  using namespace rsse;

  // 1. A tiny "orders.csv" (order_id, amount_cents).
  const char* path = "/tmp/rsse_example_orders.csv";
  {
    std::ofstream out(path);
    out << "order_id,amount_cents\n"
           "1001,2599\n"
           "1002,499\n"
           "1003,129900\n"
           "1004,2599\n"
           "1005,78\n"
           "1006,15000\n";
  }

  // 2. Load it.
  CsvOptions options;
  options.id_column = 0;
  options.attr_column = 1;
  options.has_header = true;
  options.domain_size = 200000;  // amounts up to $2000
  Result<Dataset> orders = LoadCsvDataset(path, options);
  if (!orders.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 orders.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu orders over domain {0..%llu}\n", orders->size(),
              static_cast<unsigned long long>(orders->domain().size - 1));

  // 3. Index with Logarithmic-SRC-i (constant query size, bounded false
  //    positives even if amounts cluster on popular price points).
  LogarithmicSrcIScheme scheme(/*rng_seed=*/7);
  Status built = scheme.Build(*orders);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.ToString().c_str());
    return 1;
  }

  // 4. Query: "orders between $5 and $300".
  Range band{500, 30000};
  Result<QueryResult> q = scheme.Query(band);
  if (!q.ok()) return 1;
  std::vector<uint64_t> ids = FilterIdsToRange(*orders, q->ids, band);
  std::printf("orders in [$5, $300]: ");
  for (uint64_t id : ids) std::printf("%llu ", static_cast<unsigned long long>(id));
  std::printf("(%d round(s), %zu false positive(s) dropped)\n", q->rounds,
              q->ids.size() - ids.size());

  std::remove(path);
  return 0;
}
