// Quickstart: outsource a tiny dataset, run an encrypted range query, and
// refine the answer — the complete owner/server round-trip in ~40 lines.
//
//   $ ./quickstart

#include <algorithm>
#include <cstdio>

#include "data/dataset.h"
#include "rsse/factory.h"
#include "rsse/scheme.h"

int main() {
  using namespace rsse;

  // A dataset of (id, attribute) pairs over the domain {0..63} — say,
  // sensor readings. The server must answer range queries over the
  // attribute without learning values or queries.
  Dataset data(Domain{64}, {
                               {/*id=*/1, /*attr=*/5},
                               {2, 17},
                               {3, 18},
                               {4, 42},
                               {5, 23},
                               {6, 17},
                           });

  // Pick a scheme: Logarithmic-URC is the sweet spot for exact results
  // (no false positives, O(log R) tokens, position-hiding covers).
  std::unique_ptr<RangeScheme> scheme =
      MakeScheme(SchemeId::kLogarithmicUrc, /*rng_seed=*/42);

  // Owner side: Setup + BuildIndex (keys are generated internally and the
  // encrypted index is installed at the in-process "server").
  Status built = scheme->Build(data);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.ToString().c_str());
    return 1;
  }
  std::printf("encrypted index: %zu bytes\n", scheme->IndexSizeBytes());

  // Query [15, 30]: trapdoor generation, server search, result ids.
  Range query{15, 30};
  Result<QueryResult> result = scheme->Query(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("query [%llu,%llu]: %zu token(s), %zu byte(s) sent\n",
              static_cast<unsigned long long>(query.lo),
              static_cast<unsigned long long>(query.hi), result->token_count,
              result->token_bytes);

  // Owner-side refinement (no-op for exact schemes; drops false positives
  // for the SRC family after decrypting the returned tuples). Ids arrive
  // in randomized server order; sort for display.
  std::vector<uint64_t> ids = FilterIdsToRange(data, result->ids, query);
  std::sort(ids.begin(), ids.end());
  std::printf("matching ids:");
  for (uint64_t id : ids) std::printf(" %llu", static_cast<unsigned long long>(id));
  std::printf("\n");  // expected: 2 3 5 6
  return 0;
}
