// Batched updates (Section 7): an append-mostly workload — daily ingest
// batches with occasional corrections (deletes) — served by purely static
// RSSE instances with hierarchical LSM-style consolidation. Shows forward
// privacy "for free": every batch and every merge is re-keyed.
//
//   $ ./batched_updates

#include <cstdio>

#include "common/rng.h"
#include "rsse/scheme.h"
#include "update/batched_store.h"

int main() {
  using namespace rsse;
  const Domain domain{uint64_t{1} << 16};
  update::BatchedStore store(SchemeId::kLogarithmicUrc, domain,
                             /*consolidation_step=*/3, /*rng_seed=*/7);

  Rng rng(99);
  uint64_t next_id = 0;
  std::vector<uint64_t> live_ids;

  for (int day = 1; day <= 9; ++day) {
    std::vector<update::UpdateOp> batch;
    // Ingest 200 new tuples.
    for (int i = 0; i < 200; ++i) {
      uint64_t id = next_id++;
      batch.push_back({update::UpdateOp::Type::kInsert,
                       Record{id, rng.Uniform(0, domain.size - 1)}, 0});
      live_ids.push_back(id);
    }
    // Correct (delete) 10 earlier tuples.
    for (int i = 0; i < 10 && !live_ids.empty(); ++i) {
      size_t pick = rng.Uniform(0, live_ids.size() - 1);
      batch.push_back(
          {update::UpdateOp::Type::kDelete, Record{live_ids[pick], 0}, 0});
      live_ids.erase(live_ids.begin() + static_cast<long>(pick));
    }
    Status applied = store.ApplyBatch(batch);
    if (!applied.ok()) {
      std::fprintf(stderr, "batch failed: %s\n", applied.ToString().c_str());
      return 1;
    }
    Result<QueryResult> q = store.Query(Range{1000, 9000});
    if (!q.ok()) return 1;
    std::printf(
        "day %d: %zu active instance(s), %zu consolidation(s), %zu live "
        "tuples, query [1000,9000] -> %zu results via %zu tokens\n",
        day, store.ActiveInstanceCount(), store.ConsolidationCount(),
        store.LiveTupleCount(), q->ids.size(), q->token_count);
  }
  return 0;
}
