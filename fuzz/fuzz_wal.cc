/// Fuzzes WAL replay: StorePersistence::DecodeWalRecords over an arbitrary
/// log image, then the UpdateRequest decoder over every recovered payload
/// — the exact pipeline recovery runs on a crash-interrupted (or tampered)
/// `store-<id>.wal`. The decoder's contract: stop at the first torn or
/// corrupt record, return the offset just past the last good one, never
/// crash or over-read. The returned offset is asserted in-bounds; a
/// violation aborts so the fuzzer records it as a crash.
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "common/bytes.h"
#include "server/persist.h"
#include "server/wire.h"

using rsse::Bytes;
using rsse::server::StorePersistence;
using rsse::server::UpdateRequest;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const Bytes buf(data, data + size);
  std::vector<StorePersistence::WalRecord> records;
  const size_t good_end = StorePersistence::DecodeWalRecords(buf, records);
  if (good_end > buf.size()) std::abort();  // offset past the buffer: bug

  // Recovery hands every surviving payload to the Update decoder before
  // applying it; a record that round-trips the CRC but carries a hostile
  // payload must still be rejected cleanly.
  for (const auto& record : records) {
    (void)record.epoch;
    (void)UpdateRequest::Decode(record.payload);
  }
  return 0;
}
