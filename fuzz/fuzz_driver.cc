/// Standalone corpus-replay driver for builds without libFuzzer (GCC, or
/// clang without -fsanitize=fuzzer). Each argument is a corpus file or a
/// directory of corpus files; every file is fed once through
/// LLVMFuzzerTestOneInput. libFuzzer-style flags (`-runs=0`, `-seed=...`)
/// are skipped, so the ctest smoke command line works against either
/// binary. This driver only *replays* — it never mutates — which is
/// exactly what the CI smoke job and the local regression run need; real
/// coverage-guided exploration happens under clang.
#include <dirent.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool ReadFile(const std::string& path, std::vector<uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

/// Collects regular files directly inside `dir` (corpora are flat).
bool ListDir(const std::string& dir, std::vector<std::string>& out) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return false;
  while (const dirent* e = readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    out.push_back(dir + "/" + name);
  }
  closedir(d);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') continue;  // libFuzzer flag; ignore.
    std::vector<std::string> entries;
    if (ListDir(arg, entries)) {
      files.insert(files.end(), entries.begin(), entries.end());
    } else {
      files.push_back(arg);
    }
  }
  // Deterministic order regardless of readdir()'s whims, so a crash
  // reproduces identically run to run.
  std::sort(files.begin(), files.end());

  size_t replayed = 0;
  for (const std::string& path : files) {
    std::vector<uint8_t> data;
    if (!ReadFile(path, data)) {
      std::fprintf(stderr, "fuzz_driver: cannot read %s\n", path.c_str());
      return 2;
    }
    LLVMFuzzerTestOneInput(data.data(), data.size());
    ++replayed;
  }
  std::printf("fuzz_driver: replayed %zu input(s)\n", replayed);
  return 0;
}
