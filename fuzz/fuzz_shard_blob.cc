/// Fuzzes the v1 framed-blob deserializer: ShardedEmm::Deserialize over an
/// arbitrary byte string — the format a SetupRequest delivers off the wire
/// and v1 snapshot recovery reads back from disk. The header, per-shard
/// section framing, and entry tables are all attacker-reachable; Decode
/// failures must come back as INVALID_ARGUMENT, never as a crash or an
/// allocation sized by a corrupt length field. A blob that does
/// deserialize is probed the way a hosted store would be.
#include <cstdint>

#include "common/bytes.h"
#include "shard/sharded_emm.h"
#include "sse/keyword_keys.h"

using rsse::Bytes;
using rsse::shard::ShardedEmm;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const Bytes blob(data, data + size);
  auto loaded = ShardedEmm::Deserialize(blob, /*threads=*/1,
                                        ShardedEmm::kKeepStoredShards);
  if (!loaded.ok()) return 0;

  ShardedEmm& emm = *loaded;
  (void)emm.EntryCount();
  (void)emm.SizeBytes();
  rsse::sse::KeywordKeys keys;
  keys.label_key.assign(16, 0);
  keys.value_key.assign(16, 0);
  for (size_t i = 0; i < 16 && i < size; ++i) keys.label_key[i] = data[i];
  (void)emm.Search(keys);
  return 0;
}
