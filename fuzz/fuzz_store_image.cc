/// Fuzzes the v2 store-image loader: header + section-table validation,
/// per-section CRC checking, and the arena/offset-table reconstruction in
/// ShardedEmm::LoadV2. Both checksum modes run — `verify_checksums=false`
/// is the mmap-serving configuration where CRC validation is deferred, so
/// the structural validators alone must keep a corrupt image from causing
/// out-of-bounds arena offsets. A successfully loaded store is then probed
/// (EntryCount + a search with arbitrary keys) to push hostile offsets
/// through the lookup path, mirroring what a recovered server would serve.
///
/// OpenMappedImage is deliberately not called here: it requires a real
/// file mapping, and its header/section validation is the same code path
/// LoadV2 exercises — only the byte *source* differs.
#include <cstdint>

#include "common/bytes.h"
#include "shard/sharded_emm.h"
#include "sse/keyword_keys.h"

using rsse::Bytes;
using rsse::ConstByteSpan;
using rsse::shard::ShardedEmm;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const ConstByteSpan image(data, size);
  (void)ShardedEmm::IsV2Image(image);

  for (const bool verify : {true, false}) {
    auto loaded = ShardedEmm::LoadV2(image, /*threads=*/1, verify);
    if (!loaded.ok()) continue;
    ShardedEmm& emm = *loaded;
    (void)emm.EntryCount();
    (void)emm.SizeBytes();
    // Probe with keys derived from the input's first bytes: label
    // derivation is a PRF, so any key is as good as another for driving
    // the probe/decrypt bounds checks over whatever entries survived.
    rsse::sse::KeywordKeys keys;
    keys.label_key.assign(16, 0);
    keys.value_key.assign(16, 0);
    for (size_t i = 0; i < 16 && i < size; ++i) keys.label_key[i] = data[i];
    (void)emm.Search(keys);
  }
  return 0;
}
