/// Fuzzes the wire protocol's two untrusted layers: the stream framer
/// (DecodeFrame) and every typed payload decoder. The input is treated
/// first as a raw byte stream — frames are pulled off it exactly as
/// EmmServer::PumpConnection does, and each decoded frame's payload is
/// routed to the decoder its type selects — then the whole input is thrown
/// at each typed decoder directly, so payload parsers see inputs that the
/// framer would have rejected. Every Decode must return a Status, never
/// crash, over-read, or allocate proportionally to a hostile length field.
#include <cstdint>
#include <cstring>

#include "common/bytes.h"
#include "server/wire.h"

using rsse::Bytes;
using namespace rsse::server;

namespace {

void DecodeTyped(FrameType type, const Bytes& payload) {
  switch (type) {
    case FrameType::kSetupReq:
      (void)SetupRequest::Decode(payload);
      break;
    case FrameType::kSetupResp:
      (void)SetupResponse::Decode(payload);
      break;
    case FrameType::kSearchBatchReq:
      (void)SearchBatchRequest::Decode(payload);
      break;
    case FrameType::kSearchResult:
      (void)SearchResult::Decode(payload);
      break;
    case FrameType::kSearchDone:
      (void)SearchDone::Decode(payload);
      break;
    case FrameType::kUpdateReq:
      (void)UpdateRequest::Decode(payload);
      break;
    case FrameType::kUpdateResp:
      (void)UpdateResponse::Decode(payload);
      break;
    case FrameType::kStatsReq:
      break;  // empty payload by construction
    case FrameType::kStatsResp:
      (void)StatsResponse::Decode(payload);
      break;
    case FrameType::kError:
    case FrameType::kErrorDraining:
      (void)ErrorResponse::Decode(payload);
      break;
    case FrameType::kSetupStoreReq:
      (void)SetupStoreRequest::Decode(payload);
      break;
    case FrameType::kSearchKeywordReq:
      (void)SearchKeywordRequest::Decode(payload);
      break;
    case FrameType::kSearchPayload:
      (void)SearchPayloadResult::Decode(payload);
      break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  Bytes buf(data, data + size);

  // Stream path: pull frames until the buffer runs dry or turns malformed,
  // dispatching each payload to its typed decoder — the server's exact
  // consumption pattern for bytes off a socket.
  size_t offset = 0;
  Frame frame;
  std::string error;
  while (DecodeFrame(buf, offset, frame, &error) == FrameParse::kFrame) {
    DecodeTyped(frame.type, frame.payload);
  }

  // Direct path: every typed decoder sees the raw input, bypassing the
  // framer's version/type/length screening.
  for (uint8_t t = 1; t <= 14; ++t) {
    DecodeTyped(static_cast<FrameType>(t), buf);
  }
  return 0;
}
