/// Regenerates the committed seed corpora under fuzz/corpus/<target>/.
/// Every seed is built with the project's own encoders, so the corpora
/// start inside the formats' valid envelope (coverage-guided mutation gets
/// a running start), plus deterministic mutations — truncations, byte
/// flips, oversized length fields — so the replay smoke test also pins the
/// rejection paths. Deterministic by construction: running this tool twice
/// produces byte-identical corpora, keeping regeneration diffs reviewable.
///
///   gen_corpus [output_root]   (default: fuzz/corpus)
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "server/persist.h"
#include "server/wire.h"
#include "shard/sharded_emm.h"

using rsse::Bytes;
using rsse::Label;
using rsse::shard::ShardedEmm;
using namespace rsse::server;

namespace {

std::filesystem::path g_root;
int g_written = 0;

void WriteSeed(const std::string& target, const std::string& name,
               const Bytes& data) {
  const std::filesystem::path dir = g_root / target;
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) {
    std::fprintf(stderr, "gen_corpus: failed writing %s/%s\n", target.c_str(),
                 name.c_str());
    std::exit(1);
  }
  ++g_written;
}

Bytes Truncated(const Bytes& b, size_t len) {
  return Bytes(b.begin(), b.begin() + std::min(len, b.size()));
}

Bytes Flipped(Bytes b, size_t offset) {
  if (offset < b.size()) b[offset] ^= 0xff;
  return b;
}

/// The standard hostile variants of one valid seed: a handful of prefix
/// truncations plus byte flips spread across the seed. These are the
/// committed rejection inputs each target must survive.
void WriteMutations(const std::string& target, const std::string& stem,
                    const Bytes& valid) {
  const size_t cuts[] = {0, 1, 3, 4, 7, valid.size() / 2,
                         valid.size() > 0 ? valid.size() - 1 : 0};
  int n = 0;
  for (const size_t cut : cuts) {
    if (cut >= valid.size()) continue;
    WriteSeed(target, stem + "-trunc-" + std::to_string(n++),
              Truncated(valid, cut));
  }
  n = 0;
  for (const size_t at : {size_t{0}, size_t{4}, size_t{5}, size_t{9},
                          valid.size() / 3, 2 * valid.size() / 3}) {
    if (at >= valid.size()) continue;
    WriteSeed(target, stem + "-flip-" + std::to_string(n++),
              Flipped(valid, at));
  }
}

Bytes MustFrame(FrameType type, const Bytes& payload) {
  Bytes out;
  if (!EncodeFrame(type, payload, out)) {
    std::fprintf(stderr, "gen_corpus: EncodeFrame failed\n");
    std::exit(1);
  }
  return out;
}

Label MakeLabel(uint8_t fill) {
  Label l{};
  l.fill(fill);
  return l;
}

/// A small populated store shared by the image/blob/wire seeds.
ShardedEmm MakeStore() {
  ShardedEmm emm = ShardedEmm::WithShards(2);
  for (uint8_t i = 0; i < 8; ++i) {
    const Bytes value(24 + i, static_cast<uint8_t>(0xA0 + i));
    emm.Insert(MakeLabel(i), value);
  }
  return emm;
}

void GenWire(const ShardedEmm& emm) {
  SetupRequest setup;
  setup.index_blob = emm.Serialize();

  SearchBatchRequest batch;
  for (uint32_t q = 0; q < 2; ++q) {
    WireQuery query;
    query.query_id = 100 + q;
    for (uint8_t lvl = 0; lvl < 3; ++lvl) {
      query.tokens.push_back(
          WireToken{lvl, MakeLabel(static_cast<uint8_t>(0x40 + lvl))});
    }
    batch.queries.push_back(std::move(query));
  }

  SearchResult result;
  result.query_id = 100;
  result.ids = {1, 2, 3, 1ull << 40};

  SearchDone done;
  done.query_count = 2;
  done.tokens_received = 6;
  done.unique_nodes_expanded = 4;
  done.leaves_searched = 16;
  done.search_nanos = 123456;
  done.skipped_decrypts = 2;

  UpdateRequest update;
  update.entries.emplace_back(MakeLabel(0x11), Bytes{1, 2, 3, 4});
  update.entries.emplace_back(MakeLabel(0x22), Bytes(40, 0xEE));

  SetupStoreRequest setup_store;
  setup_store.store_id = 1;
  setup_store.kind = 0;
  setup_store.index_blob = emm.SerializeV2();
  setup_store.gate_blob = Bytes{0xDE, 0xAD};

  SearchKeywordRequest keyword;
  keyword.store_id = 1;
  SearchKeywordRequest::Query kq;
  kq.query_id = 7;
  kq.tokens.push_back(WireKeywordToken{0, Bytes(16, 0x51), Bytes(16, 0x52)});
  kq.tokens.push_back(WireKeywordToken{1, Bytes(16, 0x53), Bytes{}});
  keyword.queries.push_back(std::move(kq));

  SearchPayloadResult payloads;
  payloads.query_id = 7;
  payloads.payloads = {Bytes{9, 8, 7}, Bytes(24, 0x31)};

  ErrorResponse error;
  error.message = "no index hosted";

  StatsResponse stats;
  stats.entries = 8;
  stats.size_bytes = 4096;
  stats.shards = 2;
  stats.batches_served = 3;
  stats.mapped_bytes = 4096;
  stats.snapshot_format = 2;

  const std::pair<const char*, Bytes> frames[] = {
      {"setup-req", MustFrame(FrameType::kSetupReq, setup.Encode())},
      {"setup-resp",
       MustFrame(FrameType::kSetupResp, SetupResponse{2, 8}.Encode())},
      {"search-batch", MustFrame(FrameType::kSearchBatchReq, batch.Encode())},
      {"search-result", MustFrame(FrameType::kSearchResult, result.Encode())},
      {"search-done", MustFrame(FrameType::kSearchDone, done.Encode())},
      {"update-req", MustFrame(FrameType::kUpdateReq, update.Encode())},
      {"update-resp",
       MustFrame(FrameType::kUpdateResp, UpdateResponse{2}.Encode())},
      {"stats-req", MustFrame(FrameType::kStatsReq, Bytes{})},
      {"stats-resp", MustFrame(FrameType::kStatsResp, stats.Encode())},
      {"error", MustFrame(FrameType::kError, error.Encode())},
      {"setup-store", MustFrame(FrameType::kSetupStoreReq,
                                setup_store.Encode())},
      {"search-keyword",
       MustFrame(FrameType::kSearchKeywordReq, keyword.Encode())},
      {"search-payload",
       MustFrame(FrameType::kSearchPayload, payloads.Encode())},
      {"error-draining", MustFrame(FrameType::kErrorDraining, error.Encode())},
  };

  Bytes stream;
  for (const auto& [name, frame] : frames) {
    WriteSeed("wire", std::string("frame-") + name, frame);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  WriteSeed("wire", "frame-stream", stream);
  WriteMutations("wire", "frame-search-batch",
                 MustFrame(FrameType::kSearchBatchReq, batch.Encode()));
  WriteMutations("wire", "frame-update",
                 MustFrame(FrameType::kUpdateReq, update.Encode()));
  // A length prefix promising ~1 GiB with 8 bytes behind it: must parse as
  // kNeedMore/kMalformed without allocating what it promises.
  WriteSeed("wire", "huge-length",
            Bytes{0x3f, 0xff, 0xff, 0xff, 0x02, 0x03, 0x00, 0x00});
}

void GenStoreImage(const ShardedEmm& emm) {
  const Bytes image = emm.SerializeV2(/*kind=*/0, /*epoch=*/7);
  WriteSeed("store_image", "valid-v2", image);
  const Bytes empty_image =
      ShardedEmm::WithShards(1).SerializeV2(/*kind=*/0, /*epoch=*/1);
  WriteSeed("store_image", "valid-v2-empty", empty_image);
  WriteMutations("store_image", "v2", image);
  // Flips inside the section table / shard sections, past the header page.
  for (const size_t at : {size_t{64}, size_t{4096}, size_t{4200}}) {
    if (at < image.size()) {
      WriteSeed("store_image", "v2-deep-flip-" + std::to_string(at),
                Flipped(image, at));
    }
  }
}

void GenWal() {
  UpdateRequest update;
  update.entries.emplace_back(MakeLabel(0x77), Bytes(12, 0x55));

  Bytes log;
  for (uint64_t epoch : {3ull, 3ull, 4ull}) {
    StorePersistence::EncodeWalRecord(epoch, update.Encode(), log);
  }
  WriteSeed("wal", "valid-log", log);
  // The canonical crash artifact: a torn final record.
  WriteSeed("wal", "torn-tail", Truncated(log, log.size() - 5));
  WriteMutations("wal", "log", log);
  // CRC-valid framing around a non-UpdateRequest payload: replay must
  // reject at the typed-decode stage, not before.
  Bytes junk_payload_log;
  StorePersistence::EncodeWalRecord(9, Bytes{0xff, 0xff, 0xff, 0xff, 0x00},
                                    junk_payload_log);
  WriteSeed("wal", "junk-payload", junk_payload_log);
}

void GenShardBlob(const ShardedEmm& emm) {
  const Bytes blob = emm.Serialize();
  WriteSeed("shard_blob", "valid-v1", blob);
  WriteSeed("shard_blob", "valid-v1-empty", ShardedEmm::WithShards(1).Serialize());
  WriteMutations("shard_blob", "v1", blob);
  // A v2 image fed to the v1 entry point (the LoadServableIndex sniffing
  // mistake a caller could make): must be a clean INVALID_ARGUMENT.
  WriteSeed("shard_blob", "v2-image-miskind", emm.SerializeV2());
}

}  // namespace

int main(int argc, char** argv) {
  g_root = argc > 1 ? argv[1] : "fuzz/corpus";
  const ShardedEmm emm = MakeStore();
  GenWire(emm);
  GenStoreImage(emm);
  GenWal();
  GenShardBlob(emm);
  std::printf("gen_corpus: wrote %d seed(s) under %s\n", g_written,
              g_root.string().c_str());
  return 0;
}
