// Multi-client load generator for rsse_serverd's concurrent streaming
// core: N closed connections issue range searches open-loop (arrivals on a
// fixed schedule, latency measured from the *scheduled* arrival, so server
// queueing is charged to the server, not hidden by a slow client).
//
// Three scenario families per client count:
//   baseline     N well-behaved clients
//   slow_reader  same, plus one drip-reading client stuck on a full-domain
//                batch — the backpressure acceptance case: its connection
//                parks at max_outbound_bytes and must not move other
//                clients' p99
//   nagle        single-client small-frame ping-pong with TCP_NODELAY off
//                vs on (requests split across two send() calls, the
//                pattern that eats Nagle/delayed-ACK stalls)
//
// plus a restart_recovery row: the index and a WAL of update batches are
// persisted into a --data-dir, the server dies without a drain, and the
// successor's cold Listen() (snapshot load + WAL replay) is timed. The
// row is also a gate — dropped stores or WAL records fail the run.
//
// plus a cold_start pair: time-to-first-query for a successor booting off
// a v1 snapshot (heap deserialize) vs a v2 snapshot (mmap). Gate: both
// substrates must return identical id sets.
//
// The driver exits non-zero when the server's peak per-connection outbound
// queue exceeds --max-outbound-bytes, so the ctest smoke run doubles as a
// backpressure regression gate.

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "data/generators.h"
#include "rsse/constant.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"

namespace rsse::bench {
namespace {

using server::EmmClient;
using server::EmmServer;
using server::ServerOptions;
using Clock = std::chrono::steady_clock;

constexpr char kUsage[] =
    "bench_server_load: multi-client open-loop load on the streaming "
    "server.\n"
    "  --clients=<max>            (default 32; powers of two up to this)\n"
    "  --seconds=<per cell>       (default 2.0)\n"
    "  --rate=<queries/s/client>  (default 200)\n"
    "  --n=<entries>              (default 60000)\n"
    "  --domain=<size>            (default 65536)\n"
    "  --range=<query width>      (default domain/64)\n"
    "  --workers=<pool size>      (default 4)\n"
    "  --max-outbound-bytes=<n>   (default 32768; 0 disables backpressure)\n"
    "  --smoke=1                  (~1 s workload for CI smoke runs)\n"
    "  --json=1                   (machine-readable JSON-lines rows)\n";

/// One well-behaved client: open-loop arrivals at `interval`, one range
/// query per arrival, latency from the scheduled arrival time.
struct ClientResult {
  std::vector<double> latencies_ms;
  uint64_t errors = 0;
};

ClientResult RunClient(uint16_t port,
                       const std::vector<std::vector<GgmDprf::Token>>& pool,
                       size_t thread_index, Clock::duration interval,
                       Clock::duration duration) {
  ClientResult result;
  EmmClient client;
  if (!client.Connect("127.0.0.1", port).ok()) {
    result.errors = 1;
    return result;
  }
  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline = start + duration;
  for (uint64_t i = 0;; ++i) {
    const Clock::time_point scheduled = start + interval * i;
    if (scheduled >= deadline) break;
    std::this_thread::sleep_until(scheduled);
    EmmClient::BatchQuery query;
    query.query_id = static_cast<uint32_t>(i);
    query.tokens = pool[(thread_index * 31 + i) % pool.size()];
    auto outcome = client.SearchBatch({query});
    if (!outcome.ok()) {
      ++result.errors;
      break;  // the connection is closed on failure; stop this client
    }
    result.latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - scheduled)
            .count());
  }
  return result;
}

/// The pathological peer: sends one full-domain batch, then reads the
/// response stream a few hundred bytes at a time. Its connection's
/// outbound queue hits the high-water mark almost immediately and must
/// stay parked there while everyone else is served.
void RunSlowReader(uint16_t port, const Bytes& request_frame,
                   const std::atomic<bool>& stop) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  // A tiny kernel receive buffer so the server's socket fills fast and
  // unsent output accumulates server-side, where the cap applies.
  const int rcvbuf = 4096;
  setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return;
  }
  if (send(fd, request_frame.data(), request_frame.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(request_frame.size())) {
    close(fd);
    return;
  }
  uint8_t chunk[256];
  while (!stop.load(std::memory_order_relaxed)) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n == 0) break;
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
        errno != EINTR) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  close(fd);
}

/// Small-frame ping-pong with the request split across two send() calls —
/// with Nagle enabled the second half waits for the ACK of the first, the
/// stall TCP_NODELAY removes. Returns p50 round-trip in ms.
double NagleProbeP50(uint16_t port, bool nodelay, int iterations) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1.0;
  if (nodelay) {
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1.0;
  }
  Bytes frame;
  if (!server::EncodeFrame(server::FrameType::kStatsReq, {}, frame)) {
    close(fd);
    return -1.0;
  }
  StatsAccumulator rtt_ms;
  Bytes in;
  size_t offset = 0;
  const Clock::time_point probe_deadline =
      Clock::now() + std::chrono::seconds(2);
  for (int i = 0; i < iterations && Clock::now() < probe_deadline; ++i) {
    const Clock::time_point start = Clock::now();
    // Header first, body second: two small writes on one RTT-bound
    // exchange, the worst case for Nagle + delayed ACK.
    if (send(fd, frame.data(), 4, MSG_NOSIGNAL) != 4 ||
        send(fd, frame.data() + 4, frame.size() - 4, MSG_NOSIGNAL) !=
            static_cast<ssize_t>(frame.size() - 4)) {
      break;
    }
    server::Frame reply;
    bool got = false;
    while (!got) {
      const server::FrameParse parse =
          server::DecodeFrame(in, offset, reply, nullptr);
      if (parse == server::FrameParse::kFrame) {
        got = true;
        break;
      }
      if (parse == server::FrameParse::kMalformed) break;
      uint8_t chunk[4096];
      const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      in.insert(in.end(), chunk, chunk + n);
    }
    if (!got) break;
    if (offset == in.size()) {
      in.clear();
      offset = 0;
    }
    rtt_ms.Add(std::chrono::duration<double, std::milli>(Clock::now() - start)
                   .count());
  }
  close(fd);
  return rtt_ms.count() == 0 ? -1.0 : rtt_ms.Percentile(50);
}

void PrintScenarioRow(const char* scenario, size_t clients,
                      const std::vector<double>& latencies, uint64_t errors,
                      double elapsed_s, uint64_t peak_outbound) {
  StatsAccumulator acc;
  for (double v : latencies) acc.Add(v);
  char clients_buf[24];
  char queries_buf[24];
  char qps_buf[24];
  char p50_buf[24];
  char p99_buf[24];
  char err_buf[16];
  char peak_buf[24];
  std::snprintf(clients_buf, sizeof(clients_buf), "%zu", clients);
  std::snprintf(queries_buf, sizeof(queries_buf), "%zu", acc.count());
  std::snprintf(qps_buf, sizeof(qps_buf), "%.0f",
                elapsed_s > 0 ? static_cast<double>(acc.count()) / elapsed_s
                              : 0.0);
  std::snprintf(p50_buf, sizeof(p50_buf), "%.3f",
                acc.count() ? acc.Percentile(50) : -1.0);
  std::snprintf(p99_buf, sizeof(p99_buf), "%.3f",
                acc.count() ? acc.Percentile(99) : -1.0);
  std::snprintf(err_buf, sizeof(err_buf), "%llu",
                static_cast<unsigned long long>(errors));
  std::snprintf(peak_buf, sizeof(peak_buf), "%llu",
                static_cast<unsigned long long>(peak_outbound));
  PrintRow({scenario, clients_buf, queries_buf, qps_buf, p50_buf, p99_buf,
            err_buf, peak_buf});
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv, kUsage);
  const bool smoke = flags.Smoke();
  const uint64_t max_clients = flags.GetUint("clients", smoke ? 4 : 32);
  const double seconds = flags.GetDouble("seconds", smoke ? 0.3 : 2.0);
  const double rate = flags.GetDouble("rate", smoke ? 60.0 : 200.0);
  const uint64_t n = flags.GetUint("n", smoke ? 8000 : 60000);
  const uint64_t domain = flags.GetUint("domain", uint64_t{1} << 16);
  const uint64_t range_width =
      flags.GetUint("range", std::max<uint64_t>(domain / 64, 1));
  const int workers = static_cast<int>(flags.GetUint("workers", 4));
  const size_t max_outbound =
      static_cast<size_t>(flags.GetUint("max-outbound-bytes", 32 * 1024));

  // Owner side: skew-free dataset under Constant-BRC, sharded index.
  Rng rng(17);
  Dataset data = GenerateUniform(n, domain, rng);
  ConstantScheme scheme(CoverTechnique::kBrc, /*rng_seed=*/5);
  scheme.SetShards(4);
  if (!scheme.Build(data).ok()) {
    std::fprintf(stderr, "index build failed\n");
    return 1;
  }

  ServerOptions options;
  options.search_workers = workers;
  options.max_outbound_bytes = max_outbound;
  // Small result frames: the high-water mark admits one frame into an
  // empty outbound queue whatever its size (progress guarantee), so the
  // strict peak <= cap gate below needs frames well under the cap.
  options.max_ids_per_result_frame = 512;
  EmmServer server(options);
  if (!server.Listen().ok()) {
    std::fprintf(stderr, "listen failed\n");
    return 1;
  }
  std::thread serve_thread([&server] { (void)server.Serve(); });
  {
    EmmClient setup;
    if (!setup.Connect("127.0.0.1", server.port()).ok() ||
        !setup.Setup(scheme.SerializeIndex()).ok()) {
      std::fprintf(stderr, "setup failed\n");
      server.Shutdown();
      serve_thread.join();
      return 1;
    }
  }

  // Delegated token sets, pre-generated so client threads never touch the
  // owner's scheme state.
  std::vector<std::vector<GgmDprf::Token>> pool(64);
  for (size_t i = 0; i < pool.size(); ++i) {
    const uint64_t lo = rng.Uniform(0, domain - range_width);
    pool[i] = scheme.Delegate(Range{lo, lo + range_width - 1});
  }
  // The slow reader's poison pill: one query covering the whole domain.
  Bytes slow_request;
  {
    server::SearchBatchRequest req;
    server::WireQuery query;
    query.query_id = 0;
    for (const GgmDprf::Token& t : scheme.Delegate(Range{0, domain - 1})) {
      server::WireToken wt;
      wt.level = static_cast<uint8_t>(t.level);
      std::memcpy(wt.seed.data(), t.seed.data(), kLabelBytes);
      query.tokens.push_back(wt);
    }
    req.queries.push_back(std::move(query));
    if (!server::EncodeFrame(server::FrameType::kSearchBatchReq,
                             req.Encode(), slow_request)) {
      std::fprintf(stderr, "slow-reader request exceeds frame limit\n");
      server.Shutdown();
      serve_thread.join();
      return 1;
    }
  }

  std::vector<size_t> client_counts;
  for (size_t c = 1; c < max_clients; c *= 2) client_counts.push_back(c);
  client_counts.push_back(max_clients);

  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / rate));
  const auto cell_duration = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));

  PrintHeaderRow({"scenario", "clients", "queries", "qps", "p50_ms",
                  "p99_ms", "errors", "peak_out_bytes"});

  for (const char* scenario : {"baseline", "slow_reader"}) {
    const bool with_slow = std::strcmp(scenario, "slow_reader") == 0;
    for (size_t clients : client_counts) {
      std::atomic<bool> stop_slow{false};
      std::thread slow_thread;
      if (with_slow) {
        slow_thread = std::thread([&] {
          RunSlowReader(server.port(), slow_request, stop_slow);
        });
        // Let the drip-reader's batch reach the worker pool and park.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      std::vector<ClientResult> results(clients);
      std::vector<std::thread> threads;
      threads.reserve(clients);
      const Clock::time_point cell_start = Clock::now();
      for (size_t t = 0; t < clients; ++t) {
        threads.emplace_back([&, t] {
          results[t] =
              RunClient(server.port(), pool, t, interval, cell_duration);
        });
      }
      for (std::thread& t : threads) t.join();
      const double elapsed_s =
          std::chrono::duration<double>(Clock::now() - cell_start).count();
      if (with_slow) {
        stop_slow.store(true, std::memory_order_relaxed);
        slow_thread.join();
      }
      std::vector<double> latencies;
      uint64_t errors = 0;
      for (ClientResult& r : results) {
        latencies.insert(latencies.end(), r.latencies_ms.begin(),
                         r.latencies_ms.end());
        errors += r.errors;
      }
      PrintScenarioRow(scenario, clients, latencies, errors, elapsed_s,
                       server.stats().peak_outbound_bytes.value());
    }
  }

  // TCP_NODELAY ablation: the stall the client-side satellite fix removes.
  const int probe_iters = smoke ? 50 : 300;
  for (const bool nodelay : {false, true}) {
    const double p50 = NagleProbeP50(server.port(), nodelay, probe_iters);
    char p50_buf[24];
    std::snprintf(p50_buf, sizeof(p50_buf), "%.3f", p50);
    PrintRow({nodelay ? "nagle_off_fixed" : "nagle_on", "1", "-", "-",
              p50_buf, "-", "0", "-"});
  }

  const uint64_t peak = server.stats().peak_outbound_bytes.value();
  server.Shutdown();
  serve_thread.join();

  // Restart-recovery timing: persist the same index plus a WAL of update
  // batches into a --data-dir, kill the server without a drain, and time
  // the successor's cold Listen() (snapshot load + WAL replay). The row
  // doubles as a correctness gate: a recovery that drops stores or WAL
  // records fails the smoke run.
  {
    char dir_template[] = "/tmp/rsse_bench_recover_XXXXXX";
    if (mkdtemp(dir_template) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      return 1;
    }
    const std::string data_dir = dir_template;
    ServerOptions durable = options;
    durable.data_dir = data_dir;
    const uint64_t wal_batches = smoke ? 8 : 64;
    {
      EmmServer writer(durable);
      if (!writer.Listen().ok()) {
        std::fprintf(stderr, "durable listen failed\n");
        return 1;
      }
      std::thread writer_thread([&writer] { (void)writer.Serve(); });
      EmmClient setup;
      bool ok = setup.Connect("127.0.0.1", writer.port()).ok() &&
                setup.Setup(scheme.SerializeIndex()).ok();
      for (uint64_t b = 0; ok && b < wal_batches; ++b) {
        std::vector<std::pair<Label, Bytes>> entries;
        for (int e = 0; e < 16; ++e) {
          Label label;
          for (size_t i = 0; i < label.size(); ++i) {
            label[i] = static_cast<uint8_t>(rng.Uniform(0, 255));
          }
          entries.emplace_back(label, Bytes(48, static_cast<uint8_t>(b)));
        }
        ok = setup.Update(entries).ok();
      }
      writer.Shutdown();
      writer_thread.join();
      if (!ok) {
        std::fprintf(stderr, "durable workload failed\n");
        return 1;
      }
    }
    const Clock::time_point recover_start = Clock::now();
    EmmServer recovered(durable);
    const bool recover_ok = recovered.Listen().ok();
    const double recover_ms = std::chrono::duration<double, std::milli>(
                                  Clock::now() - recover_start)
                                  .count();
    const auto& rstats = recovered.recovery_stats();
    const bool exact = recover_ok && rstats.stores_recovered == 1 &&
                       rstats.wal_records_applied == wal_batches;
    char wal_buf[24];
    char ms_buf[24];
    std::snprintf(wal_buf, sizeof(wal_buf), "%llu",
                  static_cast<unsigned long long>(rstats.wal_records_applied));
    std::snprintf(ms_buf, sizeof(ms_buf), "%.3f", recover_ms);
    PrintRow({"restart_recovery", "1", wal_buf, "-", ms_buf, "-",
              exact ? "0" : "1", "-"});
    // Best-effort cleanup of the flat data dir.
    if (DIR* d = opendir(data_dir.c_str())) {
      while (dirent* entry = readdir(d)) {
        const std::string name = entry->d_name;
        if (name != "." && name != "..") {
          unlink((data_dir + "/" + name).c_str());
        }
      }
      closedir(d);
    }
    rmdir(data_dir.c_str());
    if (!exact) {
      std::fprintf(stderr,
                   "FAIL: restart recovery dropped state (stores %zu, wal "
                   "records %zu/%llu)\n",
                   rstats.stores_recovered, rstats.wal_records_applied,
                   static_cast<unsigned long long>(wal_batches));
      return 1;
    }
  }

  // Cold-start time-to-first-query: persist the index once per substrate
  // (v1 snapshot for the heap path, v2 for mmap), then time a successor
  // from construction through Listen() to its first answered query. The
  // mmap row is the headline number for the v2 format: Listen() maps the
  // snapshot instead of deserializing it, so TTFQ is dominated by the
  // query itself. The pair doubles as a correctness gate — both substrates
  // must return identical id sets for the same delegated range.
  {
    const uint64_t cold_hi = std::min<uint64_t>(domain, 4096) - 1;
    const std::vector<GgmDprf::Token> cold_tokens =
        scheme.Delegate(Range{0, cold_hi});
    std::vector<uint64_t> ids_by_mode[2];
    double ttfq_ms[2] = {-1.0, -1.0};
    bool cold_ok = true;
    for (int mode = 0; mode < 2; ++mode) {  // 0 = heap, 1 = mmap
      char dir_template[] = "/tmp/rsse_bench_cold_XXXXXX";
      if (mkdtemp(dir_template) == nullptr) {
        std::fprintf(stderr, "mkdtemp failed\n");
        return 1;
      }
      const std::string data_dir = dir_template;
      ServerOptions durable = options;
      durable.data_dir = data_dir;
      durable.mmap_stores = mode;
      {
        EmmServer writer(durable);
        if (!writer.Listen().ok()) {
          std::fprintf(stderr, "cold-start writer listen failed\n");
          return 1;
        }
        std::thread writer_thread([&writer] { (void)writer.Serve(); });
        EmmClient setup;
        const bool ok = setup.Connect("127.0.0.1", writer.port()).ok() &&
                        setup.Setup(scheme.SerializeIndex()).ok();
        writer.Shutdown();
        writer_thread.join();
        if (!ok) {
          std::fprintf(stderr, "cold-start setup failed\n");
          return 1;
        }
      }
      const Clock::time_point cold_begin = Clock::now();
      EmmServer cold(durable);
      bool ok = cold.Listen().ok();
      std::thread cold_thread;
      if (ok) cold_thread = std::thread([&cold] { (void)cold.Serve(); });
      if (ok) {
        EmmClient probe;
        ok = probe.Connect("127.0.0.1", cold.port()).ok();
        if (ok) {
          EmmClient::BatchQuery query;
          query.query_id = 0;
          query.tokens = cold_tokens;
          auto outcome = probe.SearchBatch({query});
          ok = outcome.ok();
          if (ok) {
            ttfq_ms[mode] = std::chrono::duration<double, std::milli>(
                                Clock::now() - cold_begin)
                                .count();
            ids_by_mode[mode] = outcome->ids[0];
            std::sort(ids_by_mode[mode].begin(), ids_by_mode[mode].end());
          }
        }
      }
      cold.Shutdown();
      if (cold_thread.joinable()) cold_thread.join();
      if (DIR* d = opendir(data_dir.c_str())) {
        while (dirent* entry = readdir(d)) {
          const std::string name = entry->d_name;
          if (name != "." && name != "..") {
            unlink((data_dir + "/" + name).c_str());
          }
        }
        closedir(d);
      }
      rmdir(data_dir.c_str());
      cold_ok = cold_ok && ok;
    }
    const bool identical = cold_ok && ids_by_mode[0] == ids_by_mode[1];
    for (int mode = 0; mode < 2; ++mode) {
      char ids_buf[24];
      char ms_buf[24];
      std::snprintf(ids_buf, sizeof(ids_buf), "%zu",
                    ids_by_mode[mode].size());
      std::snprintf(ms_buf, sizeof(ms_buf), "%.3f", ttfq_ms[mode]);
      PrintRow({mode == 0 ? "cold_start_heap" : "cold_start_mmap", "1",
                ids_buf, "-", ms_buf, "-", identical ? "0" : "1", "-"});
    }
    if (!identical) {
      std::fprintf(stderr,
                   "FAIL: cold-start substrates disagree (heap %zu ids, "
                   "mmap %zu ids)\n",
                   ids_by_mode[0].size(), ids_by_mode[1].size());
      return 1;
    }
  }

  if (max_outbound > 0 && peak > max_outbound) {
    std::fprintf(stderr,
                 "FAIL: peak per-connection outbound %llu exceeds the "
                 "configured cap %zu\n",
                 static_cast<unsigned long long>(peak), max_outbound);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace rsse::bench

int main(int argc, char** argv) { return rsse::bench::Run(argc, argv); }
