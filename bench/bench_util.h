#ifndef RSSE_BENCH_BENCH_UTIL_H_
#define RSSE_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "rsse/scheme.h"

namespace rsse::bench {

/// Minimal --key=value flag parser shared by the figure drivers. Unknown
/// flags abort with a usage message; every driver documents its flags via
/// `usage`.
class Flags {
 public:
  Flags(int argc, char** argv, const std::string& usage);

  uint64_t GetUint(const std::string& key, uint64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;

  /// Shared `--smoke` / `--smoke=1` convention: drivers shrink their
  /// default workload to a ~1-second run. Used by ctest's `bench_smoke`
  /// label so bench binaries are exercised on every test run. Explicit
  /// flags still win. (Bare flags parse as "true", so this cannot go
  /// through GetUint.)
  bool Smoke() const {
    const std::string v = GetString("smoke", "0");
    return v != "0" && v != "false";
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Named dataset used throughout the evaluation section.
/// "gowalla": near-uniform, ~95% distinct (Fig 5/6a/7a);
/// "usps":    heavily skewed, ~5% distinct (Table 2, Fig 6b/7b).
Dataset MakeEvalDataset(const std::string& name, uint64_t n,
                        uint64_t domain_size, uint64_t seed);

/// Default domain sizes mirroring the paper (scaled): Gowalla timestamps
/// over ~103M values, USPS salaries over 276841 values.
uint64_t DefaultDomainFor(const std::string& dataset);

/// Builds a scheme (including the PB baseline) behind the uniform facade.
std::unique_ptr<RangeScheme> MakeAnyScheme(SchemeId id, uint64_t seed);

/// The scheme set of the paper's Section 8 experiments (Quadratic excluded
/// for its prohibitive storage, exactly as in the paper).
std::vector<SchemeId> EvalSchemes();

/// Prints a row of fixed-width columns; with RSSE_BENCH_CSV=1 in the
/// environment, emits comma-separated values instead (for plotting), and
/// in JSON mode (the shared `--json` flag) one JSON object per data row,
/// keyed by the most recent header row (JSON-lines, for tracked perf
/// trajectories).
void PrintRow(const std::vector<std::string>& cells);

/// Declares `cells` as the header of the rows that follow. In table/CSV
/// mode it prints like a normal row; in JSON mode it is recorded as the
/// key set and not printed.
void PrintHeaderRow(const std::vector<std::string>& cells);

/// Switches PrintRow/PrintHeaderRow to JSON-lines output. Flags enables
/// this automatically when `--json` is passed.
void SetJsonOutput(bool enabled);

/// Formats bytes as MB with two decimals.
std::string FormatMb(size_t bytes);

}  // namespace rsse::bench

#endif  // RSSE_BENCH_BENCH_UTIL_H_
