// Micro benchmarks (google-benchmark) for the crypto and range-covering
// substrates: the per-operation costs that dominate the macro results of
// Figures 5-8 (PRF/DPRF evaluations per retrieved tuple, GGM expansions,
// cover computations).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "cover/brc.h"
#include "cover/tdag.h"
#include "cover/urc.h"
#include "crypto/aes.h"
#include "crypto/hmac_prf.h"
#include "crypto/prg.h"
#include "crypto/random.h"
#include "crypto/sha.h"
#include "dprf/ggm_dprf.h"
#include "rsse/local_backend.h"
#include "shard/sharded_emm.h"
#include "sse/encrypted_multimap.h"
#include "sse/packed_multimap.h"

namespace rsse {
namespace {

void BM_Sha1(benchmark::State& state) {
  Bytes data(64, 0xab);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::Sha1(data));
}
BENCHMARK(BM_Sha1);

void BM_HmacSha512OneShot(benchmark::State& state) {
  Bytes key = crypto::GenerateKey();
  Bytes data(32, 0xcd);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::HmacSha512(key, data));
}
BENCHMARK(BM_HmacSha512OneShot);

void BM_PrfEvalPrekeyed(benchmark::State& state) {
  crypto::Prf prf(crypto::GenerateKey());
  Bytes data(32, 0xcd);
  for (auto _ : state) benchmark::DoNotOptimize(prf.Eval(data));
}
BENCHMARK(BM_PrfEvalPrekeyed);

void BM_GgmExpandOneLevel(benchmark::State& state) {
  Bytes seed = crypto::GenerateKey();
  for (auto _ : state) benchmark::DoNotOptimize(crypto::GgmPrg::Expand(seed));
}
BENCHMARK(BM_GgmExpandOneLevel);

void BM_GgmExpandOneLevelAes(benchmark::State& state) {
  const auto prior = crypto::GgmPrg::backend();
  crypto::GgmPrg::SetBackend(crypto::GgmPrg::Backend::kAes);
  uint8_t seed[16] = {0x42};
  uint8_t left[16];
  uint8_t right[16];
  for (auto _ : state) {
    crypto::GgmPrg::ExpandInto(seed, left, right);
    benchmark::DoNotOptimize(left);
  }
  crypto::GgmPrg::SetBackend(prior);
}
BENCHMARK(BM_GgmExpandOneLevelAes);

void BM_AesEncrypt(benchmark::State& state) {
  Bytes key = crypto::GenerateKey();
  Bytes plaintext(static_cast<size_t>(state.range(0)), 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Aes128Cbc::Encrypt(key, plaintext));
  }
}
BENCHMARK(BM_AesEncrypt)->Arg(9)->Arg(64)->Arg(1024);

void BM_AesDecrypt(benchmark::State& state) {
  Bytes key = crypto::GenerateKey();
  Bytes ct = crypto::Aes128Cbc::Encrypt(key, Bytes(64, 0x11)).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Aes128Cbc::Decrypt(key, ct));
  }
}
BENCHMARK(BM_AesDecrypt);

void BM_PrfEvalCounters(benchmark::State& state) {
  // Fused counter-label derivation (the index-build/search label path):
  // items/s is labels per second; compare against BM_PrfEvalPrekeyed for
  // the per-call scalar baseline.
  crypto::Prf prf(crypto::GenerateKey());
  const size_t count = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> out(count * 16);
  for (auto _ : state) {
    prf.EvalCountersInto(0, count, ByteSpan(out.data(), out.size()), 16);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PrfEvalCounters)->Arg(16)->Arg(256);

void BM_AesEncryptBatch(benchmark::State& state) {
  // Arena-at-a-time value encryption: {entries, payload bytes}. Compare
  // items/s against BM_AesEncrypt at the same payload size for the
  // per-entry EVP-round baseline.
  Bytes key = crypto::GenerateKey();
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t len = static_cast<uint32_t>(state.range(1));
  std::vector<uint32_t> lens(n, len);
  Bytes plaintexts(n * len, 0x11);
  Bytes out(n * crypto::Aes128Cbc::CiphertextSize(len));
  size_t written = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Aes128Cbc::EncryptManyInto(
        key, plaintexts, lens, out, &written));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesEncryptBatch)->Args({16, 9})->Args({512, 9})->Args({512, 64});

void BM_AesDecryptBatch(benchmark::State& state) {
  // Batched covering-node decryption: one ECB pass per batch of gathered
  // counter-probe hits. Baseline: BM_AesDecrypt (per-entry EVP round).
  Bytes key = crypto::GenerateKey();
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t len = 9;  // EncodeIdPayload + marker
  std::vector<uint32_t> lens(n, len);
  const uint32_t ct_size =
      static_cast<uint32_t>(crypto::Aes128Cbc::CiphertextSize(len));
  Bytes plaintexts(n * len, 0x11);
  Bytes cts(n * ct_size);
  size_t written = 0;
  if (!crypto::Aes128Cbc::EncryptManyInto(key, plaintexts, lens, cts,
                                          &written)
           .ok()) {
    state.SkipWithError("batch encryption failed");
    return;
  }
  std::vector<uint32_t> ct_lens(n, ct_size);
  Bytes plains(n * (ct_size - 16));
  std::vector<uint32_t> plain_lens(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Aes128Cbc::DecryptManyInto(
        key, cts, ct_lens, plains, plain_lens));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesDecryptBatch)->Arg(32)->Arg(512);

void BM_BrcCover(benchmark::State& state) {
  const int bits = 27;
  Rng rng(1);
  uint64_t lo = rng.Uniform(0, (uint64_t{1} << bits) - state.range(0) - 1);
  Range r{lo, lo + static_cast<uint64_t>(state.range(0)) - 1};
  for (auto _ : state) benchmark::DoNotOptimize(BestRangeCover(r, bits));
}
BENCHMARK(BM_BrcCover)->Arg(100)->Arg(10000)->Arg(1000000);

void BM_UrcCover(benchmark::State& state) {
  const int bits = 27;
  Rng rng(1);
  uint64_t lo = rng.Uniform(0, (uint64_t{1} << bits) - state.range(0) - 1);
  Range r{lo, lo + static_cast<uint64_t>(state.range(0)) - 1};
  for (auto _ : state) benchmark::DoNotOptimize(UniformRangeCover(r, bits));
}
BENCHMARK(BM_UrcCover)->Arg(100)->Arg(10000)->Arg(1000000);

void BM_TdagSingleRangeCover(benchmark::State& state) {
  Tdag tdag(27);
  Range r{123456, 123456 + 99999};
  for (auto _ : state) benchmark::DoNotOptimize(tdag.SingleRangeCover(r));
}
BENCHMARK(BM_TdagSingleRangeCover);

void BM_TdagCoverValue(benchmark::State& state) {
  Tdag tdag(27);
  for (auto _ : state) benchmark::DoNotOptimize(tdag.Cover(998877));
}
BENCHMARK(BM_TdagCoverValue);

void BM_DprfDelegate(benchmark::State& state) {
  GgmDprf dprf(crypto::GenerateKey(), 27);
  Rng rng(3);
  Range r{5000, 5000 + static_cast<uint64_t>(state.range(0)) - 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dprf.Delegate(r, CoverTechnique::kBrc, rng));
  }
}
BENCHMARK(BM_DprfDelegate)->Arg(100)->Arg(10000);

void BM_DprfExpandSubtree(benchmark::State& state) {
  GgmDprf dprf(crypto::GenerateKey(), 27);
  GgmDprf::Token token{dprf.NodeSeed(DyadicNode{
                           static_cast<int>(state.range(0)), 3}),
                       static_cast<int>(state.range(0))};
  for (auto _ : state) benchmark::DoNotOptimize(GgmDprf::Expand(token));
  state.SetItemsProcessed(state.iterations() * (int64_t{1} << state.range(0)));
}
BENCHMARK(BM_DprfExpandSubtree)->Arg(4)->Arg(8)->Arg(12);

void BM_DprfExpandSubtreeAes(benchmark::State& state) {
  // Same expansion under the AES-NI GGM backend (RSSE_GGM_PRG=aes).
  const auto prior = crypto::GgmPrg::backend();
  crypto::GgmPrg::SetBackend(crypto::GgmPrg::Backend::kAes);
  GgmDprf dprf(crypto::GenerateKey(), 27);
  GgmDprf::Token token{dprf.NodeSeed(DyadicNode{
                           static_cast<int>(state.range(0)), 3}),
                       static_cast<int>(state.range(0))};
  std::vector<Label> leaves;
  for (auto _ : state) {
    GgmDprf::ExpandInto(token, leaves);
    benchmark::DoNotOptimize(leaves.data());
  }
  crypto::GgmPrg::SetBackend(prior);
  state.SetItemsProcessed(state.iterations() * (int64_t{1} << state.range(0)));
}
BENCHMARK(BM_DprfExpandSubtreeAes)->Arg(4)->Arg(8)->Arg(12);

void BM_EmmBuild(benchmark::State& state) {
  sse::PlainMultimap postings;
  const int64_t keywords = state.range(0);
  const int64_t per_keyword = 16;
  for (int64_t w = 0; w < keywords; ++w) {
    Bytes keyword;
    AppendUint64(keyword, static_cast<uint64_t>(w));
    for (int64_t i = 0; i < per_keyword; ++i) {
      postings[keyword].push_back(
          sse::EncodeIdPayload(static_cast<uint64_t>(w * 1000 + i)));
    }
  }
  sse::PrfKeyDeriver deriver(crypto::GenerateKey());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sse::EncryptedMultimap::Build(postings, deriver));
  }
  state.SetItemsProcessed(state.iterations() * keywords * per_keyword);
}
BENCHMARK(BM_EmmBuild)->Arg(64)->Arg(512);

sse::PlainMultimap MakeBuildPostings(int64_t keywords, int64_t per_keyword) {
  sse::PlainMultimap postings;
  for (int64_t w = 0; w < keywords; ++w) {
    Bytes keyword;
    AppendUint64(keyword, static_cast<uint64_t>(w));
    for (int64_t i = 0; i < per_keyword; ++i) {
      postings[keyword].push_back(
          sse::EncodeIdPayload(static_cast<uint64_t>(w * 1000 + i)));
    }
  }
  return postings;
}

void BM_ShardedEmmBuild(benchmark::State& state) {
  // Args: {shards, build threads}. (1, 1) is the paper-faithful flat
  // build; (1, 4) adds parallel encryption but funnels through the single
  // merge; (4, 4) additionally parallelizes the merge across shards — the
  // sharding win on multi-core builds.
  sse::PlainMultimap postings = MakeBuildPostings(512, 16);
  sse::PrfKeyDeriver deriver(crypto::GenerateKey());
  shard::ShardOptions options;
  options.shards = static_cast<int>(state.range(0));
  options.threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        shard::ShardedEmm::Build(postings, deriver, options));
  }
  state.SetItemsProcessed(state.iterations() * 512 * 16);
}
// Wall-clock (UseRealTime) so the multi-worker configurations are scored
// by elapsed time, not the mostly-idle main thread; process CPU alongside
// shows the parallel efficiency. On a single-core machine the (4, 4) row
// matches (1, 1) — the speedup needs the cores the shards were built for.
BENCHMARK(BM_ShardedEmmBuild)
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({4, 4})
    ->Args({8, 8})
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_ShardedEmmLoad(benchmark::State& state) {
  // Deserialization of a 4-shard blob with 1 vs 4 loader threads: the
  // per-shard serialization exists exactly so this scales.
  sse::PlainMultimap postings = MakeBuildPostings(512, 16);
  sse::PrfKeyDeriver deriver(crypto::GenerateKey());
  shard::ShardOptions options;
  options.shards = 4;
  options.threads = 4;
  auto store = shard::ShardedEmm::Build(postings, deriver, options);
  Bytes blob = store->Serialize();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(shard::ShardedEmm::Deserialize(blob, threads));
  }
  state.SetItemsProcessed(state.iterations() * 512 * 16);
}
BENCHMARK(BM_ShardedEmmLoad)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_ShardedEmmSearch(benchmark::State& state) {
  // Single-token search routed across shards; the routing adds one modulo
  // over the flat map's probe, so this should track BM_EmmSearch.
  sse::PlainMultimap postings;
  for (int64_t i = 0; i < state.range(0); ++i) {
    postings[ToBytes("w")].push_back(sse::EncodeIdPayload(i));
  }
  sse::PrfKeyDeriver deriver(crypto::GenerateKey());
  shard::ShardOptions options;
  options.shards = 4;
  auto store = shard::ShardedEmm::Build(postings, deriver, options);
  sse::KeywordKeys token = deriver.Derive(ToBytes("w"));
  for (auto _ : state) benchmark::DoNotOptimize(store->Search(token));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ShardedEmmSearch)->Arg(1000)->Arg(10000);

void BM_EmmSearch(benchmark::State& state) {
  sse::PlainMultimap postings;
  for (int64_t i = 0; i < state.range(0); ++i) {
    postings[ToBytes("w")].push_back(sse::EncodeIdPayload(i));
  }
  sse::PrfKeyDeriver deriver(crypto::GenerateKey());
  auto emm = sse::EncryptedMultimap::Build(postings, deriver);
  sse::KeywordKeys token = deriver.Derive(ToBytes("w"));
  for (auto _ : state) benchmark::DoNotOptimize(emm->Search(token));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EmmSearch)->Arg(10)->Arg(1000)->Arg(10000);

void BM_KeywordTokenSearch(benchmark::State& state) {
  // Server-side keyword-token resolve path: one LocalBackend::Resolve
  // over a batch of per-keyword tokens against the sharded dictionary —
  // exactly what the wire's SearchKeyword handler and every TDAG scheme's
  // local search run per query. Arg = tokens per batch (16 postings per
  // keyword); items/s counts retrieved postings.
  constexpr int64_t kKeywords = 256;
  constexpr int64_t kPerKeyword = 16;
  sse::PlainMultimap postings = MakeBuildPostings(kKeywords, kPerKeyword);
  sse::PrfKeyDeriver deriver(crypto::GenerateKey());
  shard::ShardOptions options;
  options.shards = 4;
  auto store = shard::ShardedEmm::Build(postings, deriver, options);
  LocalBackend backend;
  backend.AddEmmStore(kPrimaryStore, &store.value(), nullptr);
  TokenSet tokens;
  for (int64_t w = 0; w < state.range(0); ++w) {
    Bytes keyword;
    AppendUint64(keyword, static_cast<uint64_t>(w % kKeywords));
    tokens.keyword.push_back(deriver.Derive(keyword));
  }
  for (auto _ : state) {
    auto resolved = backend.Resolve(tokens);
    benchmark::DoNotOptimize(resolved);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          kPerKeyword);
}
BENCHMARK(BM_KeywordTokenSearch)->Arg(16)->Arg(256);

void BM_PackedSearch(benchmark::State& state) {
  // Ablation: the paper's space-efficient packed SSE backend (TSet-style,
  // S/K parameters) vs the flat dictionary of BM_EmmSearch.
  std::vector<std::pair<Bytes, std::vector<uint64_t>>> postings(1);
  postings[0].first = ToBytes("w");
  for (int64_t i = 0; i < state.range(0); ++i) {
    postings[0].second.push_back(static_cast<uint64_t>(i));
  }
  sse::PrfKeyDeriver deriver(crypto::GenerateKey());
  auto packed = sse::PackedMultimap::Build(postings, deriver);
  sse::KeywordKeys token = deriver.Derive(ToBytes("w"));
  for (auto _ : state) benchmark::DoNotOptimize(packed->Search(token));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PackedSearch)->Arg(10)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace rsse

BENCHMARK_MAIN();
