// Section 7 ablation (no figure in the paper): batched updates over static
// instances with hierarchical s-ary consolidation. Measures, as batches
// stream in, the number of active instances, total outsourced bytes,
// cumulative consolidation work, and per-query fan-out cost — for several
// consolidation steps s.
//
// Expected behaviour: active instances stay O(s log_s b) (vs b without
// consolidation); query token count scales with the active instances;
// smaller s trades more owner-side merge work for cheaper queries.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "update/batched_store.h"

namespace rsse::bench {
namespace {

constexpr char kUsage[] =
    "bench_updates: Section 7 — batched updates + consolidation.\n"
    "  --batches=<count>      (default 27)\n"
    "  --batch_size=<tuples>  (default 500)\n"
    "  --deletes=<per batch>  (default 25)\n"
    "  --smoke=1              (~1 s workload for CI smoke runs)\n"
    "  --json=1               (machine-readable JSON-lines rows)\n";

int Run(int argc, char** argv) {
  Flags flags(argc, argv, kUsage);
  const bool smoke = flags.Smoke();
  const uint64_t batches = flags.GetUint("batches", smoke ? 6 : 27);
  const uint64_t batch_size = flags.GetUint("batch_size", smoke ? 100 : 500);
  const uint64_t deletes = flags.GetUint("deletes", smoke ? 5 : 25);
  const Domain domain{uint64_t{1} << 20};

  for (size_t step : {size_t{2}, size_t{4}, size_t{8}}) {
    update::BatchedStore store(SchemeId::kLogarithmicBrc, domain, step,
                               /*rng_seed=*/7);
    Rng rng(41);
    uint64_t next_id = 0;
    std::vector<uint64_t> live;

    std::printf("== Updates with consolidation step s=%zu ==\n", step);
    PrintHeaderRow({"batch", "instances", "consolidations", "store size",
              "query tokens", "apply time"});
    for (uint64_t b = 1; b <= batches; ++b) {
      std::vector<update::UpdateOp> batch;
      for (uint64_t i = 0; i < batch_size; ++i) {
        uint64_t id = next_id++;
        batch.push_back({update::UpdateOp::Type::kInsert,
                         Record{id, rng.Uniform(0, domain.size - 1)}, 0});
        live.push_back(id);
      }
      for (uint64_t d = 0; d < deletes && !live.empty(); ++d) {
        size_t pick = rng.Uniform(0, live.size() - 1);
        batch.push_back({update::UpdateOp::Type::kDelete,
                         Record{live[pick], 0}, 0});
        live.erase(live.begin() + static_cast<long>(pick));
      }
      WallTimer timer;
      if (!store.ApplyBatch(batch).ok()) {
        std::fprintf(stderr, "ApplyBatch failed\n");
        return 1;
      }
      double apply_s = timer.ElapsedSeconds();
      Result<QueryResult> q =
          store.Query(Range{0, domain.size / 10});
      if (!q.ok()) return 1;

      if (b % 3 == 0 || b == batches) {
        char b_buf[16];
        char i_buf[16];
        char c_buf[16];
        char t_buf[16];
        char a_buf[32];
        std::snprintf(b_buf, sizeof(b_buf), "%llu",
                      static_cast<unsigned long long>(b));
        std::snprintf(i_buf, sizeof(i_buf), "%zu",
                      store.ActiveInstanceCount());
        std::snprintf(c_buf, sizeof(c_buf), "%zu",
                      store.ConsolidationCount());
        std::snprintf(t_buf, sizeof(t_buf), "%zu", q->token_count);
        std::snprintf(a_buf, sizeof(a_buf), "%.3f s", apply_s);
        PrintRow({b_buf, i_buf, c_buf, FormatMb(store.TotalIndexSizeBytes()),
                  t_buf, a_buf});
      }
    }
    std::printf("live tuples: %zu\n\n", store.LiveTupleCount());
  }
  return 0;
}

}  // namespace
}  // namespace rsse::bench

int main(int argc, char** argv) { return rsse::bench::Run(argc, argv); }
