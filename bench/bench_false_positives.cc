// Reproduces Figure 6: average false-positive rate (false positives over
// total returned results) as a function of the query range size (% of the
// domain), for Logarithmic-SRC vs Logarithmic-SRC-i — the only schemes that
// introduce false positives (PB's Bloom FPs are negligible by construction).
//
// Paper shapes to verify:
//  * rate decreases roughly linearly with the range fraction;
//  * SRC-i <= SRC everywhere;
//  * the SRC-i margin is wider on the skewed USPS-like data (Fig 6b), where
//    the auxiliary index has more opportunity to cut false positives.

#include <cstdio>

#include "bench_util.h"
#include "data/workload.h"
#include "rsse/log_src.h"
#include "rsse/log_src_i.h"

namespace rsse::bench {
namespace {

constexpr char kUsage[] =
    "bench_false_positives: Figure 6 — false-positive rate vs range size.\n"
    "  --dataset=gowalla|usps   (default gowalla)\n"
    "  --n=<dataset size>       (default 20000)\n"
    "  --queries=<per point>    (default 40)\n"
    "  --domain=<domain size>   (default per dataset)\n"
    "  --pad=<quantum>          (bloom-gated pair's padding, default 4)\n"
    "  --bloom_fp=<rate>        (bloom gate FP rate, default 0.01)\n"
    "  --smoke=1                (~1 s workload for CI smoke runs)\n"
    "  --json=1                 (machine-readable JSON-lines rows)\n";

struct WorkloadCosts {
  double fp_rate = 0.0;
  /// Mean dummy decryptions the Bloom gate saved per query (0 without a
  /// gate or without padding).
  double skipped_per_query = 0.0;
};

WorkloadCosts RunWorkload(RangeScheme& scheme, const Dataset& data,
                          const std::vector<Range>& queries) {
  WorkloadCosts costs;
  double total_fp = 0;
  double total_returned = 0;
  double total_skipped = 0;
  size_t executed = 0;
  for (const Range& r : queries) {
    Result<QueryResult> q = scheme.Query(r);
    if (!q.ok()) continue;
    size_t truth = FilterIdsToRange(data, q->ids, r).size();
    total_fp += static_cast<double>(q->ids.size() - truth);
    total_returned += static_cast<double>(q->ids.size());
    total_skipped += static_cast<double>(q->skipped_decrypts);
    ++executed;
  }
  costs.fp_rate = total_returned == 0 ? 0.0 : total_fp / total_returned;
  costs.skipped_per_query =
      executed == 0 ? 0.0 : total_skipped / static_cast<double>(executed);
  return costs;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv, kUsage);
  const bool smoke = flags.Smoke();
  const std::string dataset_name = flags.GetString("dataset", "gowalla");
  const uint64_t n = flags.GetUint("n", smoke ? 1000 : 20000);
  const size_t queries = flags.GetUint("queries", smoke ? 4 : 40);
  const uint64_t domain = flags.GetUint(
      "domain",
      smoke ? uint64_t{1} << 16 : DefaultDomainFor(dataset_name));
  const uint64_t pad = flags.GetUint("pad", 4);
  const double bloom_fp = flags.GetDouble("bloom_fp", 0.01);

  Dataset data = MakeEvalDataset(dataset_name, n, domain, /*seed=*/3);
  // Paper-faithful pair (Fig 6) plus a padded pair with the Bloom
  // pre-decryption gate, to measure how many dummy decryptions the gate
  // saves the server per query.
  LogarithmicSrcScheme src(/*rng_seed=*/5);
  LogarithmicSrcIScheme srci(/*rng_seed=*/5);
  LogarithmicSrcScheme src_gated(/*rng_seed=*/5, pad);
  LogarithmicSrcIScheme srci_gated(/*rng_seed=*/5, pad);
  src_gated.EnableBloomGate(bloom_fp);
  srci_gated.EnableBloomGate(bloom_fp);
  if (!src.Build(data).ok() || !srci.Build(data).ok() ||
      !src_gated.Build(data).ok() || !srci_gated.Build(data).ok()) {
    std::fprintf(stderr, "index construction failed\n");
    return 1;
  }

  std::printf("== False-positive rate (%s, n=%llu) — Fig 6; pad=%llu "
              "bloom_fp=%.3f ==\n",
              dataset_name.c_str(), static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(pad), bloom_fp);
  PrintHeaderRow({"range (% domain)", "Logarithmic-SRC", "Logarithmic-SRC-i",
                  "SRC skipped-dec/q", "SRC-i skipped-dec/q"});
  Rng qrng(11);
  for (int pct = 10; pct <= 100; pct += 10) {
    std::vector<Range> workload =
        RandomRangesOfFraction(data.domain(), pct / 100.0, queries, qrng);
    const WorkloadCosts src_costs = RunWorkload(src, data, workload);
    const WorkloadCosts srci_costs = RunWorkload(srci, data, workload);
    const WorkloadCosts src_gated_costs =
        RunWorkload(src_gated, data, workload);
    const WorkloadCosts srci_gated_costs =
        RunWorkload(srci_gated, data, workload);
    char src_buf[32];
    char srci_buf[32];
    char src_skip_buf[32];
    char srci_skip_buf[32];
    std::snprintf(src_buf, sizeof(src_buf), "%.3f", src_costs.fp_rate);
    std::snprintf(srci_buf, sizeof(srci_buf), "%.3f", srci_costs.fp_rate);
    std::snprintf(src_skip_buf, sizeof(src_skip_buf), "%.1f",
                  src_gated_costs.skipped_per_query);
    std::snprintf(srci_skip_buf, sizeof(srci_skip_buf), "%.1f",
                  srci_gated_costs.skipped_per_query);
    char pct_buf[16];
    std::snprintf(pct_buf, sizeof(pct_buf), "%d", pct);
    PrintRow({pct_buf, src_buf, srci_buf, src_skip_buf, srci_skip_buf});
  }
  return 0;
}

}  // namespace
}  // namespace rsse::bench

int main(int argc, char** argv) { return rsse::bench::Run(argc, argv); }
