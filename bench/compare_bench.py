#!/usr/bin/env python3
"""Compare two release-bench snapshot directories and fail on regressions.

Usage:
    compare_bench.py BASELINE_DIR CURRENT_DIR [--threshold 0.25]

Each directory holds per-commit bench snapshots, as produced by the
release-bench CI job:

  * ``*.jsonl`` — JSON-lines rows from the figure drivers (``--json=1``);
    non-JSON lines (section banners) are ignored. Rows are keyed by their
    non-numeric fields plus occurrence order, so re-runs align row to row.
  * ``*.json``  — google-benchmark ``--benchmark_format=json`` documents;
    benchmarks are keyed by name.

A metric regresses when it moves more than ``threshold`` (default 25%) in
its *worse* direction. The direction is inferred from the metric name:
times/sizes (ns, ms, s, bytes, MB...) regress upward, rates/throughputs
(/s, ops...) regress downward; metrics whose direction is not recognizably
either are reported as informational only. Missing baselines (first run,
renamed rows, new benchmarks) never fail the job.

``--require PATTERN`` (repeatable) asserts that at least one row of the
*current* snapshot matches the regex; a filter typo that silently drops a
gated benchmark family then fails the job instead of passing vacuously.

Exit status: 0 = no regression, 1 = at least one regression or missing
required benchmark, 2 = usage.
"""

import argparse
import json
import os
import re
import sys

# Unit suffixes and name fragments marking lower-is-better metrics
# (times, sizes) vs higher-is-better (rates, throughput).
LOWER_BETTER_UNITS = ("ns", "us", "ms", "s", "b", "kb", "mb", "gb")
LOWER_BETTER_NAMES = (
    "ns", "ms", "(s)", "sec", "time", "bytes", "mb", "kb", "size",
    "real_time", "cpu_time",
)
HIGHER_BETTER = ("/s", "per_second", "ops", "throughput")

# "2.00 ms", "0.05 MB", "1.47M/s", "42" — leading float, optional unit.
VALUE_RE = re.compile(
    r"^\s*([-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*([A-Za-z/%]*)\s*$")


def direction(metric_name, unit=""):
    """-1 lower-is-better, +1 higher-is-better, 0 unknown."""
    unit = unit.lower()
    name = metric_name.lower()
    if unit.endswith("/s") or any(tok in name for tok in HIGHER_BETTER):
        return 1
    if unit in LOWER_BETTER_UNITS:
        return -1
    if any(tok in name for tok in LOWER_BETTER_NAMES):
        return -1
    return 0


def as_number(value):
    """(number, unit) for plain or unit-suffixed values, else None."""
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value), ""
    if isinstance(value, str):
        m = VALUE_RE.match(value)
        if m:
            return float(m.group(1)), m.group(2)
    return None


def load_jsonl(path):
    """{row_key: {metric: (value, unit)}} from a JSON-lines driver file."""
    rows = {}
    counts = {}
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(obj, dict):
                continue
            idents = []
            metrics = {}
            for key, value in obj.items():
                parsed = as_number(value)
                if parsed is None:
                    idents.append("%s=%s" % (key, value))
                else:
                    metrics[key] = parsed
            # A row of pure numbers still needs an identity: use its leading
            # column (the x-axis value — range %, dataset size, ...).
            if not idents and metrics:
                first_key = next(iter(obj))
                if first_key in metrics:
                    idents.append("%s=%s" % (first_key, obj[first_key]))
                    del metrics[first_key]
            ident = ";".join(idents)
            counts[ident] = counts.get(ident, 0) + 1
            rows["%s#%d" % (ident, counts[ident])] = metrics
    return rows


def load_benchmark_json(path):
    """{benchmark_name: {metric: value}} from google-benchmark JSON."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (json.JSONDecodeError, OSError):
        return {}
    rows = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name")
        if not name:
            continue
        time_unit = bench.get("time_unit", "ns")
        metrics = {}
        for key, unit in (("real_time", time_unit), ("cpu_time", time_unit),
                          ("items_per_second", "/s"),
                          ("bytes_per_second", "/s")):
            value = bench.get(key)
            if isinstance(value, (int, float)) and not isinstance(value,
                                                                  bool):
                metrics[key] = (float(value), unit)
        rows[name] = metrics
    return rows


def load_dir(path):
    """{filename: {row_key: {metric: value}}} for one snapshot dir."""
    snapshots = {}
    for entry in sorted(os.listdir(path)):
        full = os.path.join(path, entry)
        if not os.path.isfile(full):
            continue
        if entry.endswith(".jsonl"):
            snapshots[entry] = load_jsonl(full)
        elif entry.endswith(".json"):
            snapshots[entry] = load_benchmark_json(full)
    return snapshots


def compare(baseline, current, threshold):
    """Returns (regressions, improvements, informational) row lists."""
    regressions = []
    improvements = []
    for fname, cur_rows in sorted(current.items()):
        base_rows = baseline.get(fname)
        if base_rows is None:
            continue
        for row_key, cur_metrics in cur_rows.items():
            base_metrics = base_rows.get(row_key)
            if base_metrics is None:
                continue
            for metric, (cur_value, cur_unit) in cur_metrics.items():
                base = base_metrics.get(metric)
                if base is None:
                    continue
                base_value, base_unit = base
                if base_value == 0 or base_unit != cur_unit:
                    continue  # zero baseline or unit change: not comparable
                sign = direction(metric, cur_unit)
                if sign == 0:
                    continue
                ratio = cur_value / base_value
                where = "%s :: %s :: %s" % (fname, row_key, metric)
                line = "%s  %.4g -> %.4g  (%+.1f%%)" % (
                    where, base_value, cur_value, (ratio - 1.0) * 100.0)
                worse = ratio > 1.0 + threshold if sign < 0 \
                    else ratio < 1.0 - threshold
                better = ratio < 1.0 - threshold if sign < 0 \
                    else ratio > 1.0 + threshold
                if worse:
                    regressions.append(line)
                elif better:
                    improvements.append(line)
    return regressions, improvements


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional regression gate (default 0.25)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="PATTERN",
                        help="regex that must match at least one current row "
                             "(repeatable); guards gated benchmark families "
                             "against silently vanishing from the snapshot")
    args = parser.parse_args(argv)
    for d in (args.baseline, args.current):
        if not os.path.isdir(d):
            print("compare_bench: not a directory: %s" % d, file=sys.stderr)
            return 2

    baseline = load_dir(args.baseline)
    current = load_dir(args.current)
    regressions, improvements = compare(baseline, current, args.threshold)

    matched = sum(1 for f in current if f in baseline)
    print("compare_bench: %d/%d snapshot files matched against baseline"
          % (matched, len(current)))

    missing = []
    for pattern in args.require:
        regex = re.compile(pattern)
        if not any(regex.search(row_key)
                   for rows in current.values() for row_key in rows):
            missing.append(pattern)
    if improvements:
        print("\nimprovements (> %.0f%%):" % (args.threshold * 100))
        for line in improvements:
            print("  " + line)
    if regressions:
        print("\nREGRESSIONS (> %.0f%%):" % (args.threshold * 100))
        for line in regressions:
            print("  " + line)
    if missing:
        print("\nMISSING required benchmarks (no current row matches):")
        for pattern in missing:
            print("  " + pattern)
    if regressions or missing:
        return 1
    print("\nno regression beyond %.0f%% threshold" % (args.threshold * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
