#include "bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "data/generators.h"
#include "pb/pb_scheme.h"
#include "rsse/factory.h"

namespace rsse::bench {

Flags::Flags(int argc, char** argv, const std::string& usage) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s\n", usage.c_str());
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument '%s'\n%s\n", arg.c_str(),
                   usage.c_str());
      std::exit(2);
    }
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg.substr(2)] = "true";
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  // Shared `--json` convention: every driver emits machine-readable rows.
  if (const std::string v = GetString("json", "0"); v != "0" && v != "false") {
    SetJsonOutput(true);
  }
}

uint64_t Flags::GetUint(const std::string& key, uint64_t default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : std::stoull(it->second);
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : std::stod(it->second);
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

uint64_t DefaultDomainFor(const std::string& dataset) {
  // Gowalla: timestamps over A = {0..103,017,913}; USPS: salaries over
  // A = {0..276,840} (Section 8). We keep the USPS domain verbatim and use
  // a 2^27 domain as the laptop-scale stand-in for Gowalla's.
  if (dataset == "usps") return 276841;
  return uint64_t{1} << 27;
}

Dataset MakeEvalDataset(const std::string& name, uint64_t n,
                        uint64_t domain_size, uint64_t seed) {
  Rng rng(seed);
  if (name == "usps") return GenerateUspsLike(n, domain_size, rng);
  if (name == "uniform") return GenerateUniform(n, domain_size, rng);
  return GenerateGowallaLike(n, domain_size, rng);
}

std::unique_ptr<RangeScheme> MakeAnyScheme(SchemeId id, uint64_t seed) {
  if (id == SchemeId::kPb) return pb::MakePbScheme(seed);
  return MakeScheme(id, seed);
}

std::vector<SchemeId> EvalSchemes() {
  return {SchemeId::kConstantBrc,    SchemeId::kConstantUrc,
          SchemeId::kLogarithmicBrc, SchemeId::kLogarithmicUrc,
          SchemeId::kLogarithmicSrc, SchemeId::kLogarithmicSrcI,
          SchemeId::kPb};
}

namespace {

bool g_json_output = false;
std::vector<std::string> g_json_header;

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void SetJsonOutput(bool enabled) { g_json_output = enabled; }

void PrintHeaderRow(const std::vector<std::string>& cells) {
  if (g_json_output) {
    g_json_header = cells;
    return;
  }
  PrintRow(cells);
}

void PrintRow(const std::vector<std::string>& cells) {
  static const bool csv = []() {
    const char* env = std::getenv("RSSE_BENCH_CSV");
    return env != nullptr && env[0] == '1';
  }();
  if (g_json_output) {
    std::printf("{");
    for (size_t i = 0; i < cells.size(); ++i) {
      const std::string key = i < g_json_header.size()
                                  ? g_json_header[i]
                                  : "col" + std::to_string(i);
      std::printf("%s\"%s\":\"%s\"", i == 0 ? "" : ",",
                  JsonEscape(key).c_str(), JsonEscape(cells[i]).c_str());
    }
    std::printf("}\n");
    return;
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    if (csv) {
      std::printf("%s%s", i == 0 ? "" : ",", cells[i].c_str());
    } else {
      std::printf("%-22s", cells[i].c_str());
    }
  }
  std::printf("\n");
}

std::string FormatMb(size_t bytes) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f MB",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

}  // namespace rsse::bench
