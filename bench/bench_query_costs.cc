// Reproduces Figure 8 (Appendix A): owner-side query size in bytes (8a)
// and trapdoor generation time (8b) for range sizes 1..100 over the domain
// A = {0..2^20}, averaged over random query positions.
//
// Paper shapes to verify:
//  * SRC (one token) and SRC-i (two tokens) are flat and smallest;
//  * BRC/URC grow logarithmically with the range size; URC oscillates in a
//    saw-like pattern (worst-case decomposition) and sits at or above BRC;
//  * these costs are dataset-independent (only the range position over the
//    domain's binary tree matters).

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "data/workload.h"

namespace rsse::bench {
namespace {

constexpr char kUsage[] =
    "bench_query_costs: Figure 8 — query size and trapdoor time vs range "
    "size.\n"
    "  --n=<dataset size>     (default 2000; costs are data-independent)\n"
    "  --queries=<per point>  (default 200)\n"
    "  --domain_bits=<bits>   (default 20, the Appendix A domain)\n"
    "  --smoke=1              (~1 s workload for CI smoke runs)\n"
    "  --json=1               (machine-readable JSON-lines rows)\n";

int Run(int argc, char** argv) {
  Flags flags(argc, argv, kUsage);
  const bool smoke = flags.Smoke();
  const uint64_t n = flags.GetUint("n", smoke ? 1000 : 20000);
  const size_t queries = flags.GetUint("queries", smoke ? 10 : 200);
  const uint64_t domain = uint64_t{1}
                          << flags.GetUint("domain_bits", smoke ? 14 : 20);

  Dataset data = MakeEvalDataset("uniform", n, domain, /*seed=*/3);
  std::vector<std::pair<SchemeId, std::unique_ptr<RangeScheme>>> schemes;
  // Ablation: the naive per-value strawman whose O(R) query size motivates
  // the DPRF-based Constant schemes (Section 5).
  std::vector<SchemeId> ids = EvalSchemes();
  ids.push_back(SchemeId::kNaivePerValue);
  for (SchemeId id : ids) {
    auto scheme = MakeAnyScheme(id, 7);
    if (!scheme->Build(data).ok()) {
      std::fprintf(stderr, "build failed for %s\n", SchemeName(id));
      return 1;
    }
    schemes.emplace_back(id, std::move(scheme));
  }

  for (const char* metric : {"query size (bytes)", "trapdoor time (us)"}) {
    std::printf("== %s over A={0..2^20} — Fig 8 ==\n", metric);
    std::vector<std::string> header = {"range size"};
    for (const auto& [id, scheme] : schemes) header.push_back(SchemeName(id));
    PrintHeaderRow(header);
    const bool size_metric = std::string(metric).rfind("query", 0) == 0;
    Rng qrng(17);
    for (uint64_t range_size : {1, 2, 5, 10, 20, 40, 60, 80, 100}) {
      std::vector<Range> workload =
          RandomRangesOfSize(Domain{domain}, range_size, queries, qrng);
      std::vector<std::string> row;
      char size_buf[16];
      std::snprintf(size_buf, sizeof(size_buf), "%llu",
                    static_cast<unsigned long long>(range_size));
      row.push_back(size_buf);
      for (const auto& [id, scheme] : schemes) {
        StatsAccumulator acc;
        for (const Range& r : workload) {
          Result<QueryResult> q = scheme->Query(r);
          if (!q.ok()) continue;
          acc.Add(size_metric ? static_cast<double>(q->token_bytes)
                              : static_cast<double>(q->trapdoor_nanos) / 1e3);
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), size_metric ? "%.0f" : "%.2f",
                      acc.mean());
        row.push_back(buf);
      }
      PrintRow(row);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace rsse::bench

int main(int argc, char** argv) { return rsse::bench::Run(argc, argv); }
