// Reproduces Figure 7: server-side search time as a function of the query
// range size (% of the domain), for every scheme plus the pure-SSE floor
// (the unavoidable cost of retrieving the r results with the underlying
// encrypted multimap, reported from its measured per-result throughput).
//
// Paper shapes to verify:
//  * Logarithmic-BRC/URC coincide with the SSE floor;
//  * Constant slightly above (GGM expansion of O(R) DPRFs);
//  * the SRC schemes above those (false positives); SRC-i loses to SRC on
//    near-uniform data but wins under skew (Fig 7b crossover);
//  * PB comparable on uniform data, worse on skew.

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "crypto/random.h"
#include "data/workload.h"
#include "sse/encrypted_multimap.h"

namespace rsse::bench {
namespace {

constexpr char kUsage[] =
    "bench_search_time: Figure 7 — search time vs range size.\n"
    "  --dataset=gowalla|usps   (default gowalla)\n"
    "  --n=<dataset size>       (default 20000)\n"
    "  --queries=<per point>    (default 5)\n"
    "  --domain=<domain size>   (default 2^18 for gowalla, 276841 for usps;\n"
    "    the Constant schemes expand O(R) GGM leaves, so search cost scales\n"
    "    with the domain — raise --domain to reproduce Fig 7a's wider gap)\n"
    "  --smoke=1                (~1 s workload for CI smoke runs)\n"
    "  --json=1                 (machine-readable JSON-lines rows)\n";

/// Measured per-result retrieval cost of the underlying SSE scheme, in
/// nanoseconds: the "SSE (Cash et al.)" curve of Fig 7.
double MeasureSsePerResultNanos() {
  sse::PlainMultimap postings;
  const uint64_t list_len = 20000;
  for (uint64_t i = 0; i < list_len; ++i) {
    postings[ToBytes("floor")].push_back(sse::EncodeIdPayload(i));
  }
  sse::PrfKeyDeriver deriver(crypto::GenerateKey());
  auto emm = sse::EncryptedMultimap::Build(postings, deriver);
  WallTimer timer;
  size_t got = emm->Search(deriver.Derive(ToBytes("floor"))).size();
  return static_cast<double>(timer.ElapsedNanos()) /
         static_cast<double>(got == 0 ? 1 : got);
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv, kUsage);
  const bool smoke = flags.Smoke();
  const std::string dataset_name = flags.GetString("dataset", "gowalla");
  const uint64_t n = flags.GetUint("n", smoke ? 1000 : 20000);
  const size_t queries = flags.GetUint("queries", smoke ? 2 : 5);
  const uint64_t default_domain =
      dataset_name == "usps" ? DefaultDomainFor(dataset_name) : uint64_t{1}
                                                                    << 18;
  const uint64_t domain =
      flags.GetUint("domain", smoke ? uint64_t{1} << 13 : default_domain);

  Dataset data = MakeEvalDataset(dataset_name, n, domain, /*seed=*/3);
  std::vector<std::pair<SchemeId, std::unique_ptr<RangeScheme>>> schemes;
  for (SchemeId id : EvalSchemes()) {
    auto scheme = MakeAnyScheme(id, 7);
    if (!scheme->Build(data).ok()) {
      std::fprintf(stderr, "build failed for %s\n", SchemeName(id));
      return 1;
    }
    schemes.emplace_back(id, std::move(scheme));
  }
  const double sse_per_result = MeasureSsePerResultNanos();

  std::printf("== Search time (%s, n=%llu) — Fig 7 ==\n", dataset_name.c_str(),
              static_cast<unsigned long long>(n));
  std::vector<std::string> header = {"range (% domain)"};
  for (const auto& [id, scheme] : schemes) header.push_back(SchemeName(id));
  header.push_back("SSE floor");
  PrintHeaderRow(header);

  Rng qrng(13);
  for (int pct = 10; pct <= 100; pct += 10) {
    std::vector<Range> workload =
        RandomRangesOfFraction(data.domain(), pct / 100.0, queries, qrng);
    std::vector<std::string> row;
    char pct_buf[16];
    std::snprintf(pct_buf, sizeof(pct_buf), "%d", pct);
    row.push_back(pct_buf);
    double mean_truth = 0;
    for (const auto& [id, scheme] : schemes) {
      StatsAccumulator acc;
      for (const Range& r : workload) {
        Result<QueryResult> q = scheme->Query(r);
        if (!q.ok()) continue;
        acc.Add(static_cast<double>(q->search_nanos) / 1e6);
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f ms", acc.mean());
      row.push_back(buf);
    }
    for (const Range& r : workload) {
      mean_truth += static_cast<double>(data.IdsInRange(r).size());
    }
    mean_truth /= static_cast<double>(workload.size());
    char floor_buf[32];
    std::snprintf(floor_buf, sizeof(floor_buf), "%.2f ms",
                  mean_truth * sse_per_result / 1e6);
    row.push_back(floor_buf);
    PrintRow(row);
  }
  return 0;
}

}  // namespace
}  // namespace rsse::bench

int main(int argc, char** argv) { return rsse::bench::Run(argc, argv); }
