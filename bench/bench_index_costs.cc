// Reproduces Figure 5 (index size / construction time vs dataset size n on
// the Gowalla-like dataset) and Table 2 (index costs on the skewed
// USPS-like dataset) — see DESIGN.md §4.
//
// Paper shapes to verify:
//  * Constant smallest and fastest; Logarithmic-BRC/URC add a log m factor;
//  * Logarithmic-SRC ≈ 2x Logarithmic-BRC/URC (TDAG injected nodes);
//  * Logarithmic-SRC-i ≈ 2x SRC on Gowalla (95% distinct values) but only
//    marginally above SRC on USPS (5% distinct);
//  * PB's construction time is far above every scheme.

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"

namespace rsse::bench {
namespace {

constexpr char kUsage[] =
    "bench_index_costs: Figure 5 / Table 2 — index size and construction "
    "time.\n"
    "  --dataset=gowalla|usps|uniform (default gowalla)\n"
    "  --n=<max dataset size>         (default 20000)\n"
    "  --points=<sweep points>        (default 4; usps uses 1)\n"
    "  --domain=<domain size>         (default per dataset)\n"
    "  --smoke=1                      (~1 s workload for CI smoke runs)\n"
    "  --json=1                       (machine-readable JSON-lines rows)\n";

int Run(int argc, char** argv) {
  Flags flags(argc, argv, kUsage);
  const bool smoke = flags.Smoke();
  const std::string dataset_name = flags.GetString("dataset", "gowalla");
  const uint64_t max_n = flags.GetUint("n", smoke ? 1000 : 20000);
  const uint64_t points =
      dataset_name == "usps" ? 1 : flags.GetUint("points", smoke ? 1 : 4);
  const uint64_t domain = flags.GetUint(
      "domain",
      smoke ? uint64_t{1} << 16 : DefaultDomainFor(dataset_name));

  std::printf("== Index costs (%s, domain=%llu) — Fig 5 / Table 2 ==\n",
              dataset_name.c_str(), static_cast<unsigned long long>(domain));
  PrintHeaderRow({"scheme", "n", "index size", "construction time"});

  for (uint64_t p = 1; p <= points; ++p) {
    const uint64_t n = max_n * p / points;
    Dataset data = MakeEvalDataset(dataset_name, n, domain, /*seed=*/n);
    for (SchemeId id : EvalSchemes()) {
      auto scheme = MakeAnyScheme(id, /*seed=*/7);
      WallTimer timer;
      Status built = scheme->Build(data);
      double seconds = timer.ElapsedSeconds();
      if (!built.ok()) {
        std::fprintf(stderr, "%s: %s\n", SchemeName(id),
                     built.ToString().c_str());
        return 1;
      }
      char n_buf[32];
      std::snprintf(n_buf, sizeof(n_buf), "%llu",
                    static_cast<unsigned long long>(n));
      char t_buf[32];
      std::snprintf(t_buf, sizeof(t_buf), "%.3f s", seconds);
      PrintRow({SchemeName(id), n_buf, FormatMb(scheme->IndexSizeBytes()),
                t_buf});
    }
  }
  return 0;
}

}  // namespace
}  // namespace rsse::bench

int main(int argc, char** argv) { return rsse::bench::Run(argc, argv); }
