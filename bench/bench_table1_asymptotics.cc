// Empirically validates Table 1: for every scheme, measures how storage
// scales with n, how query size and search time scale with R, and whether
// false positives occur — and prints the measured growth next to the
// paper's asymptotic claim.
//
// Quadratic is included here (tiny domain), unlike the Section 8
// experiments, because Table 1 covers it.

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "data/workload.h"
#include "rsse/factory.h"

namespace rsse::bench {
namespace {

constexpr char kUsage[] =
    "bench_table1_asymptotics: Table 1 — measured cost scaling per scheme.\n"
    "  --n=<base dataset size> (default 4000)\n"
    "  --smoke=1               (~1 s workload for CI smoke runs)\n"
    "  --json=1                (machine-readable JSON-lines rows)\n";

struct SchemeRow {
  SchemeId id;
  const char* storage_claim;
  const char* query_claim;
  const char* search_claim;
  const char* fp_claim;
};

const SchemeRow kRows[] = {
    {SchemeId::kQuadratic, "O(n m^2)", "O(1)", "O(r)", "none"},
    {SchemeId::kConstantBrc, "O(n)", "O(log R)", "O(R + r)", "none"},
    {SchemeId::kConstantUrc, "O(n)", "O(log R)", "O(R + r)", "none"},
    {SchemeId::kLogarithmicBrc, "O(n log m)", "O(log R)", "O(log R + r)",
     "none"},
    {SchemeId::kLogarithmicUrc, "O(n log m)", "O(log R)", "O(log R + r)",
     "none"},
    {SchemeId::kLogarithmicSrc, "O(n log m)", "O(1)", "O(n)", "O(n)"},
    {SchemeId::kLogarithmicSrcI, "O(n log m)", "O(1)", "O(R + r)", "O(R + r)"},
    {SchemeId::kPb, "O(n log n log m)", "O(log R)", "Om(log n log R + r)",
     "O(r)"},
};

int Run(int argc, char** argv) {
  Flags flags(argc, argv, kUsage);
  const bool smoke = flags.Smoke();
  const uint64_t base_n = flags.GetUint("n", smoke ? 250 : 4000);
  const uint64_t domain = smoke ? 1 << 10 : 1 << 12;
  // Quadratic materializes O(m^2) keywords; measure it on a tiny domain.
  const uint64_t quad_domain = smoke ? 32 : 64;
  const uint64_t quad_n = smoke ? 100 : 500;

  std::printf("== Table 1: measured cost scaling ==\n");
  PrintHeaderRow({"scheme", "storage(2n)/storage(n)", "tokens R=16 -> R=256",
            "fp observed", "claims (storage|query|fp)"});

  for (const SchemeRow& row : kRows) {
    const uint64_t m = row.id == SchemeId::kQuadratic ? quad_domain : domain;
    const uint64_t n = row.id == SchemeId::kQuadratic ? quad_n : base_n;
    Dataset small = MakeEvalDataset("uniform", n, m, 1);
    Dataset large = MakeEvalDataset("uniform", 2 * n, m, 2);

    auto s1 = MakeAnyScheme(row.id, 7);
    auto s2 = MakeAnyScheme(row.id, 7);
    if (!s1->Build(small).ok() || !s2->Build(large).ok()) {
      std::fprintf(stderr, "build failed for %s\n", SchemeName(row.id));
      return 1;
    }
    double storage_ratio = static_cast<double>(s2->IndexSizeBytes()) /
                           static_cast<double>(s1->IndexSizeBytes());

    Rng qrng(5);
    auto mean_tokens = [&](uint64_t range_size) {
      StatsAccumulator acc;
      for (const Range& r :
           RandomRangesOfSize(Domain{m}, range_size, 20, qrng)) {
        Result<QueryResult> q = s2->Query(r);
        if (q.ok()) acc.Add(static_cast<double>(q->token_count));
      }
      return acc.mean();
    };
    double tokens_small = mean_tokens(row.id == SchemeId::kQuadratic ? 4 : 16);
    double tokens_large = mean_tokens(row.id == SchemeId::kQuadratic ? 32 : 256);

    // False positives on a mildly skewed dataset.
    Dataset skew = MakeEvalDataset("usps", n, m, 3);
    auto s3 = MakeAnyScheme(row.id, 7);
    size_t fp = 0;
    if (s3->Build(skew).ok()) {
      for (const Range& r : RandomRangesOfSize(Domain{m}, m / 8, 20, qrng)) {
        Result<QueryResult> q = s3->Query(r);
        if (!q.ok()) continue;
        fp += q->ids.size() - FilterIdsToRange(skew, q->ids, r).size();
      }
    }

    char ratio_buf[32];
    std::snprintf(ratio_buf, sizeof(ratio_buf), "%.2fx", storage_ratio);
    char tok_buf[48];
    std::snprintf(tok_buf, sizeof(tok_buf), "%.1f -> %.1f", tokens_small,
                  tokens_large);
    char fp_buf[32];
    std::snprintf(fp_buf, sizeof(fp_buf), "%zu", fp);
    char claims[96];
    std::snprintf(claims, sizeof(claims), "%s | %s | %s", row.storage_claim,
                  row.query_claim, row.fp_claim);
    PrintRow({SchemeName(row.id), ratio_buf, tok_buf, fp_buf, claims});
  }
  std::printf(
      "\nExpectations: storage ratio ~2x for all; token growth flat for "
      "Quadratic/SRC/SRC-i,\nlogarithmic for BRC/URC/PB; fp > 0 only for "
      "SRC, SRC-i and PB.\n");
  return 0;
}

}  // namespace
}  // namespace rsse::bench

int main(int argc, char** argv) { return rsse::bench::Run(argc, argv); }
