#include "pb/pb_scheme.h"

#include "common/stats.h"
#include "cover/brc.h"
#include "cover/dyadic.h"
#include "crypto/random.h"

namespace rsse::pb {

PbScheme::PbScheme(uint64_t rng_seed, double fp_rate)
    : rng_(rng_seed), fp_rate_(fp_rate) {}

Bytes PbScheme::Trapdoor(const Bytes& element) const {
  return trapdoor_prf_->EvalTrunc(element, crypto::kLambdaBytes);
}

int64_t PbScheme::BuildNode(const std::vector<std::vector<Bytes>>& trapdoors,
                            size_t lo, size_t hi,
                            const std::vector<Record>& records) {
  const int64_t index = static_cast<int64_t>(nodes_.size());
  const uint64_t expected =
      static_cast<uint64_t>(hi - lo) * trapdoors[lo].size();
  nodes_.push_back(TreeNode{
      BloomFilter(expected, fp_rate_, /*node_salt=*/static_cast<uint64_t>(index)),
      -1, -1, 0, false});
  for (size_t i = lo; i < hi; ++i) {
    for (const Bytes& t : trapdoors[i]) nodes_[index].filter.Insert(t);
  }
  if (hi - lo == 1) {
    nodes_[index].is_leaf = true;
    nodes_[index].leaf_id = records[lo].id;
    return index;
  }
  const size_t mid = lo + (hi - lo) / 2;
  int64_t left = BuildNode(trapdoors, lo, mid, records);
  int64_t right = BuildNode(trapdoors, mid, hi, records);
  nodes_[index].left = left;
  nodes_[index].right = right;
  return index;
}

Status PbScheme::Build(const Dataset& dataset) {
  domain_ = dataset.domain();
  if (domain_.size == 0) return Status::InvalidArgument("empty domain");
  bits_ = domain_.Bits();
  trapdoor_prf_ = std::make_unique<crypto::Prf>(crypto::GenerateKey());

  // Random permutation of the tuples before the top-down split.
  std::vector<Record> records = dataset.records();
  rng_.Shuffle(records);

  // Precompute each tuple's DR(d) trapdoors (the log m + 1 dyadic ranges
  // covering its value); every ancestor node inserts the same trapdoors
  // into its own salted filter.
  std::vector<std::vector<Bytes>> trapdoors(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    for (const DyadicNode& dr : PathToRoot(records[i].attr, bits_)) {
      trapdoors[i].push_back(Trapdoor(dr.EncodeKeyword()));
    }
  }

  nodes_.clear();
  nodes_.reserve(2 * records.size());
  root_ = records.empty() ? -1
                          : BuildNode(trapdoors, 0, records.size(), records);

  index_size_bytes_ = 0;
  for (const TreeNode& node : nodes_) {
    index_size_bytes_ += node.filter.SizeBytes();
    if (node.is_leaf) index_size_bytes_ += sizeof(uint64_t);
  }
  built_ = true;
  return Status::Ok();
}

Result<QueryResult> PbScheme::Query(const Range& query) {
  if (!built_) return Status::FailedPrecondition("Build() not called");
  Range r = query;
  if (!ClipRangeToDomain(domain_, r)) return QueryResult{};

  QueryResult result;

  // Owner: one trapdoor per minimal dyadic range of the query.
  WallTimer trapdoor_timer;
  std::vector<Bytes> query_trapdoors;
  for (const DyadicNode& node : BestRangeCover(r, bits_)) {
    query_trapdoors.push_back(Trapdoor(node.EncodeKeyword()));
  }
  result.trapdoor_nanos = trapdoor_timer.ElapsedNanos();
  result.token_count = query_trapdoors.size();
  for (const Bytes& t : query_trapdoors) result.token_bytes += t.size();

  // Server: descend wherever a node filter claims containment of any
  // query dyadic range.
  WallTimer search_timer;
  std::vector<int64_t> stack;
  if (root_ >= 0) stack.push_back(root_);
  while (!stack.empty()) {
    int64_t idx = stack.back();
    stack.pop_back();
    const TreeNode& node = nodes_[static_cast<size_t>(idx)];
    bool match = false;
    for (const Bytes& t : query_trapdoors) {
      if (node.filter.MayContain(t)) {
        match = true;
        break;
      }
    }
    if (!match) continue;
    if (node.is_leaf) {
      result.ids.push_back(node.leaf_id);
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  result.search_nanos = search_timer.ElapsedNanos();
  return result;
}

std::unique_ptr<RangeScheme> MakePbScheme(uint64_t rng_seed, double fp_rate) {
  return std::make_unique<PbScheme>(rng_seed, fp_rate);
}

}  // namespace rsse::pb
