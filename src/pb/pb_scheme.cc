#include "pb/pb_scheme.h"

#include "cover/brc.h"
#include "cover/dyadic.h"
#include "crypto/random.h"

namespace rsse::pb {

PbScheme::PbScheme(uint64_t rng_seed, double fp_rate)
    : rng_(rng_seed), fp_rate_(fp_rate) {}

Bytes PbScheme::ElementTrapdoor(const Bytes& element) const {
  return trapdoor_prf_->EvalTrunc(element, crypto::kLambdaBytes);
}

int64_t PbScheme::BuildNode(const std::vector<std::vector<Bytes>>& trapdoors,
                            size_t lo, size_t hi,
                            const std::vector<Record>& records) {
  const uint64_t expected =
      static_cast<uint64_t>(hi - lo) * trapdoors[lo].size();
  const int64_t index = tree_.AddNode(FilterTreeIndex::Node{
      BloomFilter(expected, fp_rate_,
                  /*node_salt=*/static_cast<uint64_t>(tree_.NodeCount())),
      -1, -1, 0, false});
  FilterTreeIndex::Node& node = tree_.node(index);
  for (size_t i = lo; i < hi; ++i) {
    for (const Bytes& t : trapdoors[i]) node.filter.Insert(t);
  }
  if (hi - lo == 1) {
    node.is_leaf = true;
    node.leaf_id = records[lo].id;
    return index;
  }
  const size_t mid = lo + (hi - lo) / 2;
  int64_t left = BuildNode(trapdoors, lo, mid, records);
  int64_t right = BuildNode(trapdoors, mid, hi, records);
  tree_.LinkChildren(index, left, right);
  return index;
}

Status PbScheme::Build(const Dataset& dataset) {
  domain_ = dataset.domain();
  if (domain_.size == 0) return Status::InvalidArgument("empty domain");
  bits_ = domain_.Bits();
  trapdoor_prf_ = std::make_unique<crypto::Prf>(crypto::GenerateKey());

  // Random permutation of the tuples before the top-down split.
  std::vector<Record> records = dataset.records();
  rng_.Shuffle(records);

  // Precompute each tuple's DR(d) trapdoors (the log m + 1 dyadic ranges
  // covering its value); every ancestor node inserts the same trapdoors
  // into its own salted filter.
  std::vector<std::vector<Bytes>> trapdoors(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    for (const DyadicNode& dr : PathToRoot(records[i].attr, bits_)) {
      trapdoors[i].push_back(ElementTrapdoor(dr.EncodeKeyword()));
    }
  }

  tree_ = FilterTreeIndex();
  tree_.Reserve(2 * records.size());
  tree_.SetRoot(records.empty()
                    ? -1
                    : BuildNode(trapdoors, 0, records.size(), records));
  built_ = true;
  return Status::Ok();
}

Result<rsse::TokenSet> PbScheme::Trapdoor(const Range& r) {
  rsse::TokenSet tokens;
  for (const DyadicNode& node : BestRangeCover(r, bits_)) {
    tokens.opaque.push_back(ElementTrapdoor(node.EncodeKeyword()));
  }
  return tokens;
}

SearchBackend& PbScheme::local_backend() {
  backend_.Clear();
  backend_.AddFilterTreeStore(rsse::kPrimaryStore, &tree_);
  return backend_;
}

Result<ServerSetup> PbScheme::ExportServerSetup() const {
  if (!built_) return Status::FailedPrecondition("Build() not called");
  ServerSetup setup;
  setup.stores.push_back(StoreSetup{rsse::kPrimaryStore,
                                    StoreKind::kFilterTree,
                                    tree_.Serialize(),
                                    {}});
  return setup;
}

std::unique_ptr<RangeScheme> MakePbScheme(uint64_t rng_seed, double fp_rate) {
  return std::make_unique<PbScheme>(rng_seed, fp_rate);
}

}  // namespace rsse::pb
