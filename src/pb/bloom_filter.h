#ifndef RSSE_PB_BLOOM_FILTER_H_
#define RSSE_PB_BLOOM_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace rsse::pb {

/// Keyed Bloom filter used by the Li et al. baseline. Membership is tested
/// with *trapdoors* rather than raw elements: the owner derives one
/// HMAC-based trapdoor per element; the filter's probe positions are
/// derived from the trapdoor, the filter's per-node salt, and the probe
/// index via Kirsch-Mitzenmacher double hashing. Distinct tree nodes probe
/// different positions for the same element, and the server cannot test
/// elements it holds no trapdoor for.
///
/// (Li et al. evaluate h independent keyed hash functions per element; the
/// double-hashing derivation is the standard drop-in with the same
/// false-positive behaviour — see DESIGN.md for the substitution note.)
class BloomFilter {
 public:
  /// Sizes the filter for `expected_elements` at `fp_rate` using the
  /// standard optimum (bits = -n ln p / ln^2 2, hashes = (bits/n) ln 2).
  BloomFilter(uint64_t expected_elements, double fp_rate, uint64_t node_salt);

  /// Inserts an element given its trapdoor.
  void Insert(ConstByteSpan trapdoor);

  /// Tests membership of the element behind `trapdoor`.
  bool MayContain(ConstByteSpan trapdoor) const;

  int num_hashes() const { return num_hashes_; }
  uint64_t num_bits() const { return num_bits_; }
  size_t SizeBytes() const { return bits_.size() * sizeof(uint64_t); }

  /// Number of hash functions the sizing rule picks for `fp_rate`.
  static int HashCountFor(double fp_rate);

  /// Appends the filter's full state (sizing, salt, bit words) to `out`;
  /// the streaming form used by `FilterTreeIndex::Serialize` and the
  /// Bloom-gate Setup blobs.
  void AppendTo(Bytes& out) const;

  /// Reads one filter back from `blob[offset...]`, advancing `offset`.
  /// INVALID_ARGUMENT on truncated or inconsistent input (the word count
  /// is validated against both the declared bit count and the remaining
  /// bytes, so a hostile blob cannot drive an oversized allocation).
  static Result<BloomFilter> ReadFrom(const Bytes& blob, size_t& offset);

 private:
  BloomFilter(uint64_t num_bits, int num_hashes, uint64_t node_salt,
              std::vector<uint64_t> bits)
      : num_bits_(num_bits), num_hashes_(num_hashes), node_salt_(node_salt),
        bits_(std::move(bits)) {}

  /// The i-th probe position for a trapdoor.
  uint64_t Position(uint64_t h1, uint64_t h2, int i) const;

  /// Derives the double-hashing pair (h1, h2) from trapdoor and salt.
  void BaseHashes(ConstByteSpan trapdoor, uint64_t& h1, uint64_t& h2) const;

  uint64_t num_bits_;
  int num_hashes_;
  uint64_t node_salt_;
  std::vector<uint64_t> bits_;
};

}  // namespace rsse::pb

#endif  // RSSE_PB_BLOOM_FILTER_H_
