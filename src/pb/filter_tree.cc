#include "pb/filter_tree.h"

namespace rsse::pb {

namespace {

/// Blob magic: "RSFT" + format version 1.
constexpr uint32_t kFilterTreeMagic = 0x52534654;
constexpr uint32_t kFilterTreeVersion = 1;

}  // namespace

int64_t FilterTreeIndex::AddNode(Node node) {
  nodes_.push_back(std::move(node));
  return static_cast<int64_t>(nodes_.size()) - 1;
}

void FilterTreeIndex::LinkChildren(int64_t parent, int64_t left,
                                   int64_t right) {
  nodes_[static_cast<size_t>(parent)].left = left;
  nodes_[static_cast<size_t>(parent)].right = right;
}

std::vector<uint64_t> FilterTreeIndex::Search(
    const std::vector<Bytes>& trapdoors) const {
  std::vector<uint64_t> ids;
  std::vector<int64_t> stack;
  if (root_ >= 0) stack.push_back(root_);
  while (!stack.empty()) {
    const int64_t idx = stack.back();
    stack.pop_back();
    const Node& node = nodes_[static_cast<size_t>(idx)];
    bool match = false;
    for (const Bytes& t : trapdoors) {
      if (node.filter.MayContain(t)) {
        match = true;
        break;
      }
    }
    if (!match) continue;
    if (node.is_leaf) {
      ids.push_back(node.leaf_id);
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  return ids;
}

size_t FilterTreeIndex::LeafCount() const {
  size_t leaves = 0;
  for (const Node& node : nodes_) {
    if (node.is_leaf) ++leaves;
  }
  return leaves;
}

size_t FilterTreeIndex::SizeBytes() const {
  size_t bytes = 0;
  for (const Node& node : nodes_) {
    bytes += node.filter.SizeBytes();
    if (node.is_leaf) bytes += sizeof(uint64_t);
  }
  return bytes;
}

Bytes FilterTreeIndex::Serialize() const {
  Bytes out;
  AppendUint32(out, kFilterTreeMagic);
  AppendUint32(out, kFilterTreeVersion);
  AppendUint64(out, nodes_.size());
  AppendUint64(out, static_cast<uint64_t>(root_));
  for (const Node& node : nodes_) {
    AppendUint64(out, static_cast<uint64_t>(node.left));
    AppendUint64(out, static_cast<uint64_t>(node.right));
    AppendUint64(out, node.leaf_id);
    AppendByte(out, node.is_leaf ? 1 : 0);
    node.filter.AppendTo(out);
  }
  return out;
}

Result<FilterTreeIndex> FilterTreeIndex::Deserialize(const Bytes& blob) {
  if (blob.size() < 24) {
    return Status::InvalidArgument("filter tree blob truncated");
  }
  if (ReadUint32(blob, 0) != kFilterTreeMagic ||
      ReadUint32(blob, 4) != kFilterTreeVersion) {
    return Status::InvalidArgument("not a filter tree blob");
  }
  const uint64_t node_count = ReadUint64(blob, 8);
  const int64_t root = static_cast<int64_t>(ReadUint64(blob, 16));
  size_t offset = 24;
  // Every node costs at least its 25-byte header; reject counts the blob
  // cannot possibly hold before reserving.
  if (node_count > (blob.size() - offset) / 25) {
    return Status::InvalidArgument("filter tree node count inconsistent");
  }
  FilterTreeIndex tree;
  tree.nodes_.reserve(static_cast<size_t>(node_count));
  for (uint64_t i = 0; i < node_count; ++i) {
    if (blob.size() - offset < 25) {
      return Status::InvalidArgument("filter tree node truncated");
    }
    const int64_t left = static_cast<int64_t>(ReadUint64(blob, offset));
    const int64_t right = static_cast<int64_t>(ReadUint64(blob, offset + 8));
    const uint64_t leaf_id = ReadUint64(blob, offset + 16);
    const uint8_t is_leaf = blob[offset + 24];
    offset += 25;
    if (is_leaf > 1) {
      return Status::InvalidArgument("filter tree leaf flag out of range");
    }
    // Children of an inner node must both exist and point strictly
    // downward (the build appends children after their parent), so the
    // descent of a hostile blob terminates and never indexes out of
    // bounds; leaves must not link children at all.
    const auto strictly_below = [&](int64_t child) {
      return child > static_cast<int64_t>(i) &&
             static_cast<uint64_t>(child) < node_count;
    };
    if (is_leaf == 0 && (!strictly_below(left) || !strictly_below(right))) {
      return Status::InvalidArgument("filter tree node links out of range");
    }
    if (is_leaf == 1 && (left != -1 || right != -1)) {
      return Status::InvalidArgument("filter tree leaf links a child");
    }
    Result<BloomFilter> filter = BloomFilter::ReadFrom(blob, offset);
    if (!filter.ok()) return filter.status();
    tree.nodes_.push_back(Node{std::move(filter).value(), left, right,
                               leaf_id, is_leaf == 1});
  }
  if (offset != blob.size()) {
    return Status::InvalidArgument("filter tree trailing bytes");
  }
  if (!(root == -1 ||
        (root >= 0 && static_cast<uint64_t>(root) < node_count))) {
    return Status::InvalidArgument("filter tree root out of range");
  }
  tree.root_ = root;
  return tree;
}

}  // namespace rsse::pb
