#include "pb/bloom_filter.h"

#include <cmath>

namespace rsse::pb {

namespace {

constexpr double kLn2 = 0.6931471805599453;

/// splitmix64 finalizer: strong 64-bit mixing of already-pseudorandom input.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

int BloomFilter::HashCountFor(double fp_rate) {
  double bits_per_element = -std::log(fp_rate) / (kLn2 * kLn2);
  int k = static_cast<int>(std::lround(bits_per_element * kLn2));
  return k < 1 ? 1 : k;
}

BloomFilter::BloomFilter(uint64_t expected_elements, double fp_rate,
                         uint64_t node_salt)
    : node_salt_(node_salt) {
  if (expected_elements == 0) expected_elements = 1;
  double bits = -static_cast<double>(expected_elements) * std::log(fp_rate) /
                (kLn2 * kLn2);
  num_bits_ = static_cast<uint64_t>(std::ceil(bits));
  if (num_bits_ < 64) num_bits_ = 64;
  num_hashes_ = HashCountFor(fp_rate);
  bits_.assign((num_bits_ + 63) / 64, 0);
}

void BloomFilter::BaseHashes(ConstByteSpan trapdoor, uint64_t& h1,
                             uint64_t& h2) const {
  // The trapdoor is HMAC/PRF output (pseudorandom); mixing its halves with
  // the node salt yields independent per-node probe sequences. Big-endian
  // reads keep the probe positions identical to the historical
  // Bytes-taking implementation.
  auto read_be64 = [&trapdoor](size_t offset) {
    uint64_t v = 0;
    for (size_t i = 0; i < 8; ++i) v = (v << 8) | trapdoor[offset + i];
    return v;
  };
  uint64_t a = trapdoor.size() >= 8 ? read_be64(0) : 0;
  uint64_t b = trapdoor.size() >= 16 ? read_be64(8) : a;
  h1 = Mix(a ^ node_salt_);
  h2 = Mix(b + 0x517cc1b727220a95ull * node_salt_) | 1;  // odd stride
}

uint64_t BloomFilter::Position(uint64_t h1, uint64_t h2, int i) const {
  return (h1 + static_cast<uint64_t>(i) * h2) % num_bits_;
}

void BloomFilter::Insert(ConstByteSpan trapdoor) {
  uint64_t h1 = 0;
  uint64_t h2 = 0;
  BaseHashes(trapdoor, h1, h2);
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t pos = Position(h1, h2, i);
    bits_[pos >> 6] |= uint64_t{1} << (pos & 63);
  }
}

bool BloomFilter::MayContain(ConstByteSpan trapdoor) const {
  uint64_t h1 = 0;
  uint64_t h2 = 0;
  BaseHashes(trapdoor, h1, h2);
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t pos = Position(h1, h2, i);
    if ((bits_[pos >> 6] & (uint64_t{1} << (pos & 63))) == 0) return false;
  }
  return true;
}

void BloomFilter::AppendTo(Bytes& out) const {
  AppendUint64(out, num_bits_);
  AppendUint32(out, static_cast<uint32_t>(num_hashes_));
  AppendUint64(out, node_salt_);
  AppendUint64(out, bits_.size());
  for (uint64_t word : bits_) AppendUint64(out, word);
}

Result<BloomFilter> BloomFilter::ReadFrom(const Bytes& blob, size_t& offset) {
  const auto remaining = [&] { return blob.size() - offset; };
  if (remaining() < 8 + 4 + 8 + 8) {
    return Status::InvalidArgument("bloom filter header truncated");
  }
  const uint64_t num_bits = ReadUint64(blob, offset);
  const uint32_t num_hashes = ReadUint32(blob, offset + 8);
  const uint64_t node_salt = ReadUint64(blob, offset + 12);
  const uint64_t word_count = ReadUint64(blob, offset + 20);
  offset += 28;
  if (num_bits == 0 || num_hashes == 0 || num_hashes > 256) {
    return Status::InvalidArgument("bloom filter sizing out of range");
  }
  // Overflow-safe word-count check: (num_bits + 63) / 64 wraps for
  // num_bits near 2^64, which would accept an empty bit vector and send
  // the first probe out of bounds.
  const uint64_t needed_words = num_bits / 64 + (num_bits % 64 == 0 ? 0 : 1);
  if (word_count != needed_words || word_count > remaining() / 8) {
    return Status::InvalidArgument("bloom filter word count inconsistent");
  }
  std::vector<uint64_t> bits;
  bits.reserve(static_cast<size_t>(word_count));
  for (uint64_t i = 0; i < word_count; ++i) {
    bits.push_back(ReadUint64(blob, offset));
    offset += 8;
  }
  return BloomFilter(num_bits, static_cast<int>(num_hashes), node_salt,
                     std::move(bits));
}

}  // namespace rsse::pb
