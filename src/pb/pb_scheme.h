#ifndef RSSE_PB_PB_SCHEME_H_
#define RSSE_PB_PB_SCHEME_H_

#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/hmac_prf.h"
#include "data/dataset.h"
#include "pb/filter_tree.h"
#include "rsse/local_backend.h"
#include "rsse/scheme.h"

namespace rsse::pb {

/// The basic scheme of Li et al. (PVLDB'14) — the paper's closest
/// competitor, called "PB" in the evaluation. A binary tree is built
/// top-down over a random permutation of the tuples; every node stores a
/// keyed Bloom filter over the dyadic ranges DR(d) covering the values of
/// the tuples in its half; each leaf indexes a single tuple. A query is
/// BRC-decomposed into its minimal dyadic ranges, and the server descends
/// from the root wherever a node filter claims containment of any query
/// range, returning the ids at the reached leaves.
///
/// The party split mirrors the other schemes: the owner half derives one
/// keyed trapdoor per minimal dyadic range (shipped as opaque tokens); the
/// server half is a `FilterTreeIndex` — serializable, so `rsse_serverd`
/// can host PB alongside the encrypted dictionaries.
///
/// Costs (Table 1): O(n log n log m) storage, query size O(log R), search
/// Ω(log n log R + r), O(r) false positives (inherent to Bloom filters),
/// no updates. Security: non-adaptive, trapdoor privacy not protected —
/// strictly weaker than every scheme in this library (Section 2.1).
class PbScheme : public RangeScheme, public TrapdoorGenerator {
 public:
  /// `fp_rate` is the per-node Bloom filter false-positive ratio ([26]
  /// fixes this ratio at each node). The default keeps overall false
  /// positives "very small for all range sizes" (Section 8), which is what
  /// drives PB's O(n log n log m) storage above Logarithmic-BRC/URC.
  explicit PbScheme(uint64_t rng_seed = 1, double fp_rate = 1e-6);

  SchemeId id() const override { return SchemeId::kPb; }
  Status Build(const Dataset& dataset) override;
  size_t IndexSizeBytes() const override { return tree_.SizeBytes(); }

  /// Owner half: one keyed trapdoor per minimal dyadic range.
  Result<rsse::TokenSet> Trapdoor(const Range& r) override;
  TrapdoorGenerator& trapdoors() override { return *this; }
  SearchBackend& local_backend() override;
  Result<ServerSetup> ExportServerSetup() const override;

 private:
  /// The keyed trapdoor for one dyadic-range element.
  Bytes ElementTrapdoor(const Bytes& element) const;

  /// Recursively builds the node for `records[lo, hi)`; `trapdoors[i]` are
  /// the precomputed DR trapdoors of `records[i]`. Returns the node index.
  int64_t BuildNode(const std::vector<std::vector<Bytes>>& trapdoors,
                    size_t lo, size_t hi,
                    const std::vector<Record>& records);

  Rng rng_;
  double fp_rate_;
  int bits_ = 0;
  std::unique_ptr<crypto::Prf> trapdoor_prf_;
  FilterTreeIndex tree_;
  LocalBackend backend_;
};

/// Factory mirroring rsse::MakeScheme for the baseline.
std::unique_ptr<RangeScheme> MakePbScheme(uint64_t rng_seed = 1,
                                          double fp_rate = 1e-6);

}  // namespace rsse::pb

#endif  // RSSE_PB_PB_SCHEME_H_
