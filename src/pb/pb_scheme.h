#ifndef RSSE_PB_PB_SCHEME_H_
#define RSSE_PB_PB_SCHEME_H_

#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/hmac_prf.h"
#include "data/dataset.h"
#include "pb/bloom_filter.h"
#include "rsse/scheme.h"

namespace rsse::pb {

/// The basic scheme of Li et al. (PVLDB'14) — the paper's closest
/// competitor, called "PB" in the evaluation. A binary tree is built
/// top-down over a random permutation of the tuples; every node stores a
/// keyed Bloom filter over the dyadic ranges DR(d) covering the values of
/// the tuples in its half; each leaf indexes a single tuple. A query is
/// BRC-decomposed into its minimal dyadic ranges, and the server descends
/// from the root wherever a node filter claims containment of any query
/// range, returning the ids at the reached leaves.
///
/// Costs (Table 1): O(n log n log m) storage, query size O(log R), search
/// Ω(log n log R + r), O(r) false positives (inherent to Bloom filters),
/// no updates. Security: non-adaptive, trapdoor privacy not protected —
/// strictly weaker than every scheme in this library (Section 2.1).
class PbScheme : public RangeScheme {
 public:
  /// `fp_rate` is the per-node Bloom filter false-positive ratio ([26]
  /// fixes this ratio at each node). The default keeps overall false
  /// positives "very small for all range sizes" (Section 8), which is what
  /// drives PB's O(n log n log m) storage above Logarithmic-BRC/URC.
  explicit PbScheme(uint64_t rng_seed = 1, double fp_rate = 1e-6);

  SchemeId id() const override { return SchemeId::kPb; }
  Status Build(const Dataset& dataset) override;
  size_t IndexSizeBytes() const override { return index_size_bytes_; }
  Result<QueryResult> Query(const Range& r) override;

 private:
  struct TreeNode {
    BloomFilter filter;
    // Children indices into nodes_, or -1. A leaf stores one tuple id.
    int64_t left = -1;
    int64_t right = -1;
    uint64_t leaf_id = 0;
    bool is_leaf = false;
  };

  /// The keyed trapdoor for one dyadic-range element.
  Bytes Trapdoor(const Bytes& element) const;

  /// Recursively builds the node for `records[lo, hi)`; `trapdoors[i]` are
  /// the precomputed DR trapdoors of `records[i]`. Returns the node index.
  int64_t BuildNode(const std::vector<std::vector<Bytes>>& trapdoors,
                    size_t lo, size_t hi,
                    const std::vector<Record>& records);

  Rng rng_;
  double fp_rate_;
  Domain domain_;
  int bits_ = 0;
  std::unique_ptr<crypto::Prf> trapdoor_prf_;
  std::vector<TreeNode> nodes_;
  int64_t root_ = -1;
  size_t index_size_bytes_ = 0;
  bool built_ = false;
};

/// Factory mirroring rsse::MakeScheme for the baseline.
std::unique_ptr<RangeScheme> MakePbScheme(uint64_t rng_seed = 1,
                                          double fp_rate = 1e-6);

}  // namespace rsse::pb

#endif  // RSSE_PB_PB_SCHEME_H_
