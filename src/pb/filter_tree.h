#ifndef RSSE_PB_FILTER_TREE_H_
#define RSSE_PB_FILTER_TREE_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "pb/bloom_filter.h"

namespace rsse::pb {

/// The *server half* of the Li et al. baseline: the binary tree of keyed
/// Bloom filters that PB's Setup outsources. The owner half (`PbScheme`)
/// builds the tree and derives query trapdoors; this object answers them —
/// descending from the root wherever a node filter claims containment of
/// any query trapdoor and returning the ids at the reached leaves.
///
/// The tree is serializable, so a standalone `rsse_serverd` can host it
/// (StoreKind::kFilterTree) and resolve PB queries shipped as opaque
/// trapdoor tokens; the blob holds only salted filter bits and tuple ids —
/// exactly the server's view in the original protocol.
class FilterTreeIndex {
 public:
  struct Node {
    BloomFilter filter;
    /// Children indices into the node vector, or -1. A leaf stores one
    /// tuple id.
    int64_t left = -1;
    int64_t right = -1;
    uint64_t leaf_id = 0;
    bool is_leaf = false;
  };

  FilterTreeIndex() = default;

  /// Appends a node and returns its index (build-side use; children may be
  /// linked after the fact via `LinkChildren`).
  int64_t AddNode(Node node);
  void LinkChildren(int64_t parent, int64_t left, int64_t right);
  void SetRoot(int64_t root) { root_ = root; }
  void Reserve(size_t nodes) { nodes_.reserve(nodes); }

  /// Build-side access to a node (the reference is invalidated by the
  /// next `AddNode`).
  Node& node(int64_t index) { return nodes_[static_cast<size_t>(index)]; }

  /// Descends wherever a node filter may contain any of `trapdoors`;
  /// returns the tuple ids at the reached leaves (PB's inherent Bloom
  /// false positives included).
  std::vector<uint64_t> Search(const std::vector<Bytes>& trapdoors) const;

  size_t NodeCount() const { return nodes_.size(); }
  size_t LeafCount() const;

  /// Filter bits + per-leaf ids; the index-size metric of Fig. 5.
  size_t SizeBytes() const;

  /// Serializes the tree for shipping to a standalone server.
  Bytes Serialize() const;

  /// Restores a tree from `Serialize` output; INVALID_ARGUMENT on a
  /// corrupt or foreign blob (child indices are validated, so a hostile
  /// blob cannot drive the descent out of bounds).
  static Result<FilterTreeIndex> Deserialize(const Bytes& blob);

 private:
  std::vector<Node> nodes_;
  int64_t root_ = -1;
};

}  // namespace rsse::pb

#endif  // RSSE_PB_FILTER_TREE_H_
