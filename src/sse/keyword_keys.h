#ifndef RSSE_SSE_KEYWORD_KEYS_H_
#define RSSE_SSE_KEYWORD_KEYS_H_

#include <memory>

#include "common/bytes.h"
#include "crypto/hmac_prf.h"

namespace rsse::sse {

/// Per-keyword key pair of the Π_bas encrypted multimap (Cash et al.):
/// `label_key` (K1) keys the PRF that derives dictionary labels
/// F(K1, counter); `value_key` (K2) encrypts the stored payloads.
/// The pair doubles as the search token — handing (K1, K2) to the server
/// lets it retrieve and decrypt exactly this keyword's postings.
struct KeywordKeys {
  Bytes label_key;
  Bytes value_key;

  friend bool operator==(const KeywordKeys&, const KeywordKeys&) = default;
};

/// Derives a keyword key pair from a per-keyword shared secret via a public
/// KDF (domain-separated SHA-256). Both the owner (from a PRF) and, in the
/// Constant schemes, the server (from an expanded DPRF leaf value) apply
/// this function — it is the paper's "use a DPRF instead of a PRF" hook.
KeywordKeys KeysFromSharedSecret(const Bytes& secret);

/// In-place variant for the server's per-leaf expansion loop: reuses the
/// capacity of `out`'s key buffers, so repeated derivation allocates only
/// on the first call.
void KeysFromSharedSecretInto(ConstByteSpan secret, KeywordKeys& out);

/// Strategy for mapping keywords to key pairs at index-build and trapdoor
/// time. The default PRF deriver implements standard SSE; the Constant
/// schemes substitute a DPRF-backed deriver.
class KeywordKeyDeriver {
 public:
  virtual ~KeywordKeyDeriver() = default;

  /// Key pair for keyword `w`.
  virtual KeywordKeys Derive(const Bytes& w) const = 0;
};

/// Standard SSE derivation: per-keyword secret = F(master_key, w) with
/// HMAC-SHA-512 (the paper's PRF instantiation).
class PrfKeyDeriver : public KeywordKeyDeriver {
 public:
  explicit PrfKeyDeriver(const Bytes& master_key);

  KeywordKeys Derive(const Bytes& w) const override;

 private:
  crypto::Prf prf_;
};

}  // namespace rsse::sse

#endif  // RSSE_SSE_KEYWORD_KEYS_H_
