#ifndef RSSE_SSE_ENCRYPTED_MULTIMAP_H_
#define RSSE_SSE_ENCRYPTED_MULTIMAP_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "sse/emm_codec.h"
#include "sse/flat_label_map.h"
#include "sse/keyword_keys.h"

namespace rsse::sse {

/// Plaintext postings to be indexed: keyword -> list of opaque payloads.
/// RSSE schemes encode tuple ids (and, for Logarithmic-SRC-i's I1,
/// (value, position-range) documents) into the payloads.
using PlainMultimap =
    std::unordered_map<Bytes, std::vector<Bytes>, BytesHash>;

/// Optional index padding. `PadListsTo` rounds every posting list up to the
/// next multiple of `quantum` with dummy entries; the paper's Quadratic
/// scheme uses padding so the index shape depends only on (n, m) and not on
/// the data distribution.
struct PaddingPolicy {
  /// 0 disables padding.
  uint64_t quantum = 0;
};

/// Index construction knobs.
struct BuildOptions {
  PaddingPolicy padding;
  /// Worker threads for the (embarrassingly parallel) per-keyword
  /// encryption work. 0 reads the RSSE_BUILD_THREADS environment variable,
  /// defaulting to 1 (single-threaded, paper-faithful timing).
  int threads = 0;
};

/// Static searchable symmetric encryption in the style of Π_bas
/// (Cash et al., NDSS'14), the paper's underlying SSE building block:
/// a flat encrypted dictionary mapping pseudorandom labels to encrypted
/// payloads.
///
///   label(w, c) = F(K1_w, c)            c = 0, 1, ... per posting
///   value(w, c) = Enc(K2_w, payload_c)
///
/// Search receives the token (K1_w, K2_w), probes counters until the first
/// miss and decrypts. Search time is O(r_w); the index leaks only its total
/// size (L1) and, per query, the access/search patterns (L2).
///
/// Storage is a `FlatLabelMap`: fixed 16-byte labels in an open-addressing
/// table, ciphertexts in one contiguous arena. Build and search reuse
/// scratch buffers across counter probes, so the steady-state hot path
/// performs no heap allocation beyond the returned results.
///
/// This class is the *server-side* object; key derivation lives in
/// `KeywordKeyDeriver` so the same index machinery serves both PRF-based
/// schemes and the DPRF-based Constant schemes.
class EncryptedMultimap {
 public:
  EncryptedMultimap() = default;

  /// Builds the encrypted dictionary. Posting order within each keyword is
  /// preserved (callers shuffle beforehand where the scheme requires it).
  /// Dummy padding entries (per `padding`) decrypt to a reserved marker and
  /// are dropped by `Search`.
  static Result<EncryptedMultimap> Build(const PlainMultimap& postings,
                                         const KeywordKeyDeriver& deriver,
                                         const PaddingPolicy& padding = {});

  /// Build with explicit options (threads, padding).
  static Result<EncryptedMultimap> BuildWithOptions(
      const PlainMultimap& postings, const KeywordKeyDeriver& deriver,
      const BuildOptions& options);

  /// Retrieves and decrypts the postings for the keyword behind `token`.
  /// An unknown keyword yields an empty result (indistinguishable from an
  /// empty posting list, as in the paper's model).
  std::vector<Bytes> Search(const KeywordKeys& token) const;

  /// Instrumented search: a non-null `gate` is consulted per entry before
  /// decryption (entries it rejects are skipped as padding dummies); a
  /// non-null `stats` receives probe/decrypt/skip counts.
  std::vector<Bytes> Search(const KeywordKeys& token, const LabelGate* gate,
                            SearchStats* stats) const;

  /// Serializes the encrypted dictionary for persistence or shipping to
  /// the server. The blob holds only pseudorandom labels and ciphertexts —
  /// exactly the server's view. Format: magic/version header, entry count,
  /// then length-prefixed label/value pairs (byte-compatible with every
  /// blob this library has ever produced).
  Bytes Serialize() const;

  /// Restores an index from `Serialize` output; INVALID_ARGUMENT on a
  /// corrupt or foreign blob.
  static Result<EncryptedMultimap> Deserialize(const Bytes& blob);

  /// Number of stored dictionary entries (including padding).
  size_t EntryCount() const { return dict_.size(); }

  /// Total bytes of labels + ciphertexts; the index-size metric of Fig. 5.
  size_t SizeBytes() const {
    return dict_.size() * kLabelBytes + dict_.ValueBytes();
  }

 private:
  FlatLabelMap dict_;
};

/// Encodes/decodes a uint64 document id as a payload (the common case).
Bytes EncodeIdPayload(uint64_t id);
std::optional<uint64_t> DecodeIdPayload(const Bytes& payload);

}  // namespace rsse::sse

#endif  // RSSE_SSE_ENCRYPTED_MULTIMAP_H_
