#ifndef RSSE_SSE_FLAT_LABEL_MAP_H_
#define RSSE_SSE_FLAT_LABEL_MAP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"

namespace rsse::sse {

/// Purpose-built encrypted-dictionary store: an open-addressing hash table
/// keyed by fixed-size 16-byte pseudorandom labels whose values
/// (ciphertexts) live in one contiguous arena, addressed by offset.
///
/// Compared to `std::unordered_map<Bytes, Bytes>` this removes two heap
/// allocations per entry (label vector + value vector) and every per-node
/// pointer chase: one probe is one cache line of slot metadata plus, on a
/// hit, one arena read. Labels are PRF outputs, so the first eight bytes
/// already distribute uniformly (no hash mixing) and linear probing stays
/// short at the 0.5 max load factor.
///
/// The table is insert-only (Π_bas dictionaries are built once and then
/// searched), so there are no tombstones and probe sequences never degrade;
/// growth rehashes into a table twice the size. Values must be non-empty —
/// an empty value marks a free slot; real ciphertexts are always >= 32
/// bytes.
class FlatLabelMap {
 public:
  FlatLabelMap() = default;

  /// Pre-sizes the table for `n` entries and `value_bytes` of arena (both
  /// may be 0; the table grows as needed).
  void Reserve(size_t n, size_t value_bytes = 0);

  /// Inserts `value` under `label`; overwrites on duplicate label (the old
  /// arena bytes are leaked until destruction, matching map semantics
  /// without tombstone machinery — duplicates never occur in PRF-labelled
  /// dictionaries). Empty values are ignored.
  void Insert(const Label& label, ConstByteSpan value);

  /// Arena-append insertion for producers that write the value in place
  /// (e.g. encrypting directly into the table): reserves `len > 0` bytes
  /// under `label` and returns the span to fill. Duplicate-label semantics
  /// as `Insert`. The span is invalidated by the next insertion.
  ByteSpan InsertUninit(const Label& label, size_t len);

  /// Value stored under `label`, or nullopt. The span points into the
  /// arena and is invalidated by the next `Insert`.
  std::optional<ConstByteSpan> Find(const Label& label) const;

  /// Number of stored entries.
  size_t size() const { return size_; }

  /// Arena bytes in use (sum of stored value lengths).
  size_t ValueBytes() const { return value_bytes_; }

  /// Invokes `fn(const Label&, ConstByteSpan)` for every entry, in
  /// unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.len != 0) {
        fn(s.label, ConstByteSpan(arena_.data() + s.offset, s.len));
      }
    }
  }

 private:
  struct Slot {
    Label label{};
    uint64_t offset = 0;
    uint32_t len = 0;  // 0 marks a free slot
  };

  /// Grows (or initially sizes) the slot array to `capacity` (power of
  /// two) and rehashes existing entries.
  void Rehash(size_t capacity);

  /// Index of the slot holding `label`, or of the free slot where it
  /// belongs. Requires a non-full table.
  size_t ProbeSlot(const Label& label) const;

  std::vector<Slot> slots_;
  Bytes arena_;
  size_t size_ = 0;
  size_t value_bytes_ = 0;
};

}  // namespace rsse::sse

#endif  // RSSE_SSE_FLAT_LABEL_MAP_H_
