#ifndef RSSE_SSE_FLAT_LABEL_MAP_H_
#define RSSE_SSE_FLAT_LABEL_MAP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace rsse::sse {

/// Purpose-built encrypted-dictionary store: an open-addressing hash table
/// keyed by fixed-size 16-byte pseudorandom labels whose values
/// (ciphertexts) live in one contiguous arena, addressed by offset.
///
/// Compared to `std::unordered_map<Bytes, Bytes>` this removes two heap
/// allocations per entry (label vector + value vector) and every per-node
/// pointer chase: one probe is one cache line of slot metadata plus, on a
/// hit, one arena read. Labels are PRF outputs, so the first eight bytes
/// already distribute uniformly (no hash mixing) and linear probing stays
/// short at the 0.5 max load factor.
///
/// The table is insert-only (Π_bas dictionaries are built once and then
/// searched), so there are no tombstones and probe sequences never degrade;
/// growth rehashes into a table twice the size. Values must be non-empty —
/// an empty value marks a free slot; real ciphertexts are always >= 32
/// bytes.
///
/// A map can also be a *view*: slots and arena borrowed as spans into a
/// read-only mapping of the v2 store image (see `WriteV2Sections`), with
/// the slot table stored in its runtime probe layout so `Find` needs no
/// rehash and `ForEach` no decode. A view map answers `Find`/`ForEach`
/// straight from the mapping; the first mutation (`Insert`, `InsertUninit`,
/// `Reserve`) copies it to the heap and proceeds normally. The caller must
/// keep the mapped bytes alive for the view's lifetime (ShardedEmm holds
/// the mapping).
class FlatLabelMap {
 public:
  /// One packed slot record of the on-disk v2 slot table:
  /// [16B label][u64 LE arena offset][u32 LE len][u32 zero pad] — padded to
  /// 32 bytes so records never straddle cache lines and index math is a
  /// shift. len == 0 marks a free slot, as in memory.
  static constexpr size_t kSlotRecordBytes = 32;

  FlatLabelMap() = default;

  /// Wraps borrowed v2 sections without copying. `slots` is the packed
  /// slot table (`capacity * kSlotRecordBytes`, capacity a power of two),
  /// `arena` the ciphertext arena, `entries`/`value_bytes` the counts the
  /// image header claims. Validation is O(1) — structural invariants only
  /// (capacity a power of two, load factor <= 1/2, arena == value_bytes),
  /// NOT a scan of the records; probing bounds-checks every record it
  /// reads, so hostile slot contents yield misses, never UB.
  static Result<FlatLabelMap> View(ConstByteSpan slots, ConstByteSpan arena,
                                   uint64_t entries, uint64_t value_bytes);

  /// Pre-sizes the table for `n` entries and `value_bytes` of arena (both
  /// may be 0; the table grows as needed).
  void Reserve(size_t n, size_t value_bytes = 0);

  /// Inserts `value` under `label`; overwrites on duplicate label (the old
  /// arena bytes are leaked until destruction — see `LeakedBytes` — which
  /// matches map semantics without tombstone machinery; duplicates never
  /// occur in PRF-labelled dictionaries). Empty values are ignored.
  void Insert(const Label& label, ConstByteSpan value);

  /// Arena-append insertion for producers that write the value in place
  /// (e.g. encrypting directly into the table): reserves `len > 0` bytes
  /// under `label` and returns the span to fill. Duplicate-label semantics
  /// as `Insert`. The span is invalidated by the next insertion.
  ByteSpan InsertUninit(const Label& label, size_t len);

  /// Value stored under `label`, or nullopt. The span points into the
  /// arena and is invalidated by the next `Insert`.
  std::optional<ConstByteSpan> Find(const Label& label) const;

  /// Number of stored entries.
  size_t size() const { return size_; }

  /// Arena bytes in use (sum of stored value lengths). Excludes bytes
  /// leaked by duplicate-label overwrites — `ArenaBytes()` is the real
  /// arena footprint.
  size_t ValueBytes() const { return value_bytes_; }

  /// Total arena footprint: live value bytes plus leaked overwrite bytes.
  size_t ArenaBytes() const { return is_view_ ? view_arena_.size()
                                              : arena_.size(); }

  /// Dead arena bytes left behind by duplicate-label overwrites. The v2
  /// serializer compacts these away (its emitted arena is exactly
  /// `ValueBytes()` long).
  size_t LeakedBytes() const { return leaked_bytes_; }

  /// Slot-table capacity (a power of two, or 0 before the first insert).
  size_t SlotCount() const {
    return is_view_ ? view_capacity_ : slots_.size();
  }

  /// True while serving from borrowed (mapped) sections.
  bool IsView() const { return is_view_; }

  /// Bytes served from the borrowed mapping (slot table + arena); 0 once
  /// copied to heap.
  size_t MappedBytes() const {
    return is_view_ ? view_slots_.size() + view_arena_.size() : 0;
  }

  /// Bytes of owned slot-table + arena storage; 0 while a pure view.
  size_t HeapBytes() const {
    return slots_.size() * sizeof(Slot) + arena_.size();
  }

  /// Copies a view into owned storage (no-op for heap maps): same
  /// capacity, arena compacted to `ValueBytes()`. Records whose offsets
  /// fall outside the borrowed arena (possible only for corrupt,
  /// unverified images) are dropped.
  void EnsureHeap();

  /// Byte sizes of the packed v2 sections `WriteV2Sections` emits: the
  /// slot table is `SlotCount() * kSlotRecordBytes`, the arena exactly
  /// `ValueBytes()` (leaked overwrite bytes are compacted away).
  size_t V2SlotsBytes() const { return SlotCount() * kSlotRecordBytes; }
  size_t V2ArenaBytes() const { return value_bytes_; }

  /// Writes the packed slot table and compacted arena into `slots_out` /
  /// `arena_out`, which must be exactly `V2SlotsBytes()` /
  /// `V2ArenaBytes()` long. Returns the arena bytes written — equal to
  /// `V2ArenaBytes()` for any well-formed map (asserted; the sizing
  /// contract of the store format).
  size_t WriteV2Sections(ByteSpan slots_out, ByteSpan arena_out) const;

  /// Invokes `fn(const Label&, ConstByteSpan)` for every entry, in
  /// unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (is_view_) {
      for (size_t i = 0; i < view_capacity_; ++i) {
        const uint8_t* rec = view_slots_.data() + i * kSlotRecordBytes;
        const uint32_t len = LoadU32Le(rec + kLabelBytes + 8);
        if (len == 0) continue;
        const uint64_t offset = LoadU64Le(rec + kLabelBytes);
        if (offset > view_arena_.size() ||
            len > view_arena_.size() - offset) {
          continue;  // corrupt unverified record: skip, never over-read
        }
        Label label;
        std::memcpy(label.data(), rec, kLabelBytes);
        fn(label, ConstByteSpan(view_arena_.data() + offset, len));
      }
      return;
    }
    for (const Slot& s : slots_) {
      if (s.len != 0) {
        fn(s.label, ConstByteSpan(arena_.data() + s.offset, s.len));
      }
    }
  }

 private:
  struct Slot {
    Label label{};
    uint64_t offset = 0;
    uint32_t len = 0;  // 0 marks a free slot
  };

  /// Grows (or initially sizes) the slot array to `capacity` (power of
  /// two) and rehashes existing entries.
  void Rehash(size_t capacity);

  /// Index of the slot holding `label`, or of the free slot where it
  /// belongs. Requires a non-full table.
  size_t ProbeSlot(const Label& label) const;

  std::vector<Slot> slots_;
  Bytes arena_;
  size_t size_ = 0;
  size_t value_bytes_ = 0;
  size_t leaked_bytes_ = 0;

  // View state: borrowed sections of a mapped v2 image. view_capacity_ is
  // view_slots_.size() / kSlotRecordBytes, cached for the probe hot path.
  bool is_view_ = false;
  ConstByteSpan view_slots_;
  ConstByteSpan view_arena_;
  size_t view_capacity_ = 0;
};

}  // namespace rsse::sse

#endif  // RSSE_SSE_FLAT_LABEL_MAP_H_
