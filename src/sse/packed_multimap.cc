#include "sse/packed_multimap.h"

#include <cmath>

#include "crypto/random.h"

namespace rsse::sse {

namespace {

/// splitmix64 finalizer for bucket selection from an already-pseudorandom
/// tag plus the per-build salt.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Bytes CounterInput(uint64_t c) {
  Bytes in;
  AppendUint64(in, c);
  return in;
}

constexpr uint8_t kRealMarker = 0x00;

}  // namespace

uint64_t PackedMultimap::BucketOf(const Bytes& tag) const {
  return Mix(Fnv1a64(tag) ^ bucket_salt_) % bucket_count_;
}

Result<PackedMultimap> PackedMultimap::Build(
    const std::vector<std::pair<Bytes, std::vector<uint64_t>>>& postings,
    const KeywordKeyDeriver& deriver, const Params& params) {
  if (params.bucket_capacity == 0 || params.overhead_factor < 1.0) {
    return Status::InvalidArgument("invalid packing parameters");
  }
  uint64_t total = 0;
  for (const auto& [keyword, ids] : postings) total += ids.size();

  PackedMultimap packed;
  packed.bucket_capacity_ = params.bucket_capacity;
  // Two sizing constraints: the K overhead factor, and a balls-into-bins
  // concentration margin of 6 standard deviations so a random assignment
  // balances with overwhelming probability.
  const double capacity = static_cast<double>(params.bucket_capacity);
  const double effective =
      std::max(1.0, capacity - 6.0 * std::sqrt(capacity));
  const uint64_t by_overhead = static_cast<uint64_t>(
      std::ceil(params.overhead_factor * static_cast<double>(total) / capacity));
  const uint64_t by_margin =
      static_cast<uint64_t>(std::ceil(static_cast<double>(total) / effective));
  packed.bucket_count_ = std::max<uint64_t>(1, std::max(by_overhead, by_margin));

  for (int attempt = 0; attempt < params.max_build_attempts; ++attempt) {
    packed.bucket_salt_ = ReadUint64(crypto::SecureRandom(8), 0);
    packed.slots_.assign(
        packed.bucket_count_ * packed.bucket_capacity_ * kSlotBytes, 0);
    std::vector<uint64_t> fill(packed.bucket_count_, 0);
    std::vector<bool> used(packed.bucket_count_ * packed.bucket_capacity_,
                           false);
    bool overflow = false;

    for (const auto& [keyword, ids] : postings) {
      const KeywordKeys keys = deriver.Derive(keyword);
      const crypto::Prf tag_prf(keys.label_key);
      const crypto::Prf mask_prf(keys.value_key);
      for (uint64_t c = 0; c < ids.size() && !overflow; ++c) {
        Bytes tag = tag_prf.EvalTrunc(CounterInput(c), kTagBytes);
        uint64_t bucket = packed.BucketOf(tag);
        if (fill[bucket] >= packed.bucket_capacity_) {
          overflow = true;
          break;
        }
        uint64_t slot = bucket * packed.bucket_capacity_ + fill[bucket];
        ++fill[bucket];
        used[slot] = true;
        uint8_t* out = packed.slots_.data() + slot * kSlotBytes;
        std::copy(tag.begin(), tag.end(), out);
        Bytes payload;
        payload.push_back(kRealMarker);
        AppendUint64(payload, ids[c]);
        Bytes mask = mask_prf.EvalTrunc(CounterInput(c), kPayloadBytes);
        for (size_t i = 0; i < kPayloadBytes; ++i) {
          out[kTagBytes + i] = payload[i] ^ mask[i];
        }
      }
      if (overflow) break;
    }
    if (overflow) continue;

    // Fill unused slots with random bytes: the array is uniform to anyone
    // without trapdoors.
    for (uint64_t slot = 0; slot < used.size(); ++slot) {
      if (used[slot]) continue;
      Bytes random = crypto::SecureRandom(kSlotBytes);
      std::copy(random.begin(), random.end(),
                packed.slots_.data() + slot * kSlotBytes);
    }
    return packed;
  }
  return Status::Internal(
      "packed build failed to balance buckets; raise overhead_factor or "
      "bucket_capacity");
}

std::vector<uint64_t> PackedMultimap::Search(const KeywordKeys& token) const {
  std::vector<uint64_t> ids;
  if (bucket_count_ == 0) return ids;
  const crypto::Prf tag_prf(token.label_key);
  const crypto::Prf mask_prf(token.value_key);
  for (uint64_t c = 0;; ++c) {
    Bytes tag = tag_prf.EvalTrunc(CounterInput(c), kTagBytes);
    uint64_t bucket = BucketOf(tag);
    const uint8_t* base =
        slots_.data() + bucket * bucket_capacity_ * kSlotBytes;
    bool found = false;
    for (uint64_t s = 0; s < bucket_capacity_ && !found; ++s) {
      const uint8_t* slot = base + s * kSlotBytes;
      if (!std::equal(tag.begin(), tag.end(), slot)) continue;
      Bytes mask = mask_prf.EvalTrunc(CounterInput(c), kPayloadBytes);
      Bytes payload(kPayloadBytes);
      for (size_t i = 0; i < kPayloadBytes; ++i) {
        payload[i] = slot[kTagBytes + i] ^ mask[i];
      }
      if (payload[0] != kRealMarker) break;  // foreign tag collision
      Bytes id_bytes(payload.begin() + 1, payload.end());
      ids.push_back(ReadUint64(id_bytes, 0));
      found = true;
    }
    if (!found) break;
  }
  return ids;
}

}  // namespace rsse::sse
