#ifndef RSSE_SSE_EMM_CODEC_H_
#define RSSE_SSE_EMM_CODEC_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aes.h"
#include "crypto/hmac_prf.h"
#include "sse/keyword_keys.h"

namespace rsse::sse {

/// Entry-level codec of the Π_bas encrypted dictionary: label derivation
/// (F(K1, counter)), payload framing (real/dummy marker byte, padding) and
/// the counter-probe search loop. `EncryptedMultimap` and the sharded store
/// `shard::ShardedEmm` are two storage layouts over this one entry format,
/// so the format lives here exactly once — a blob built by either store is
/// searchable by the other.

/// First plaintext byte of a stored payload: real posting vs padding dummy.
inline constexpr uint8_t kEmmRealMarker = 0x00;
inline constexpr uint8_t kEmmDummyMarker = 0x01;

/// Posting-list length after padding to a multiple of `pad_quantum`
/// (0 disables padding; an empty list pads up to one full quantum).
inline uint64_t PaddedPostingTotal(size_t payload_count, uint64_t pad_quantum) {
  uint64_t total = payload_count;
  if (pad_quantum > 0) {
    total = (total + pad_quantum - 1) / pad_quantum * pad_quantum;
    if (total == 0) total = pad_quantum;
  }
  return total;
}

/// Exact storage footprint of an index over `postings`: entry count and
/// total ciphertext bytes after padding. Both the flat and the sharded
/// store reserve from this one cost model, so the two can never diverge.
struct EmmSizing {
  size_t entries = 0;
  size_t value_bytes = 0;
};

inline EmmSizing ComputeEmmSizing(
    const std::unordered_map<Bytes, std::vector<Bytes>, BytesHash>& postings,
    uint64_t pad_quantum) {
  EmmSizing sizing;
  for (const auto& [keyword, payloads] : postings) {
    const uint64_t total = PaddedPostingTotal(payloads.size(), pad_quantum);
    sizing.entries += total;
    for (const Bytes& p : payloads) {
      sizing.value_bytes += crypto::Aes128Cbc::CiphertextSize(1 + p.size());
    }
    sizing.value_bytes += (total - payloads.size()) *
                          crypto::Aes128Cbc::CiphertextSize(1);
  }
  return sizing;
}

/// Optional pre-decryption filter consulted by the search loop. When a gate
/// is installed, an entry whose label it rejects is skipped without paying
/// the AES decryption — the gate promises no false negatives for real
/// entries, so skipped entries can only be padding dummies (or, for
/// approximate gates, are re-checked by the post-decrypt marker anyway).
class LabelGate {
 public:
  virtual ~LabelGate() = default;

  /// May the entry stored under `label` hold a real (non-dummy) payload?
  virtual bool MayContainReal(const Label& label) const = 0;
};

/// Per-search instrumentation (bench_false_positives reports these).
struct SearchStats {
  /// Dictionary probes issued, including the terminating miss.
  size_t probes = 0;
  /// Ciphertexts actually decrypted.
  size_t decrypts = 0;
  /// Entries a `LabelGate` rejected before decryption.
  size_t skipped_decrypts = 0;

  void Add(const SearchStats& o) {
    probes += o.probes;
    decrypts += o.decrypts;
    skipped_decrypts += o.skipped_decrypts;
  }
};

/// Encrypts the (padded) postings of one keyword, reusing `plaintext` as
/// scratch across entries. Each entry's ciphertext is written directly into
/// the span returned by `emit(label, exact_ciphertext_size)` — callers hand
/// out table-arena storage (no staging copy) or shard staging buffers.
/// Steady-state allocation-free apart from the sink's own amortized growth.
template <typename Emit>
Status EncryptKeywordEntries(const Bytes& keyword,
                             const std::vector<Bytes>& payloads,
                             const KeywordKeyDeriver& deriver,
                             uint64_t pad_quantum, Bytes& plaintext,
                             Emit&& emit) {
  const KeywordKeys keys = deriver.Derive(keyword);
  const crypto::Prf label_prf(keys.label_key);
  if (!label_prf.ok()) {
    return Status::Internal("label PRF initialization failed");
  }
  const uint64_t total = PaddedPostingTotal(payloads.size(), pad_quantum);
  uint8_t counter[8];
  Label label;
  for (uint64_t c = 0; c < total; ++c) {
    StoreUint64(counter, c);
    if (!label_prf.EvalInto(ConstByteSpan(counter, sizeof(counter)),
                            ByteSpan(label.data(), label.size()))) {
      return Status::Internal("label PRF evaluation failed");
    }
    plaintext.clear();
    if (c < payloads.size()) {
      plaintext.push_back(kEmmRealMarker);
      Append(plaintext, payloads[c]);
    } else {
      plaintext.push_back(kEmmDummyMarker);
    }
    // CBC/PKCS#7 output size is exact, so the sink reserves precisely the
    // bytes the encryption fills.
    const size_t ct_size = crypto::Aes128Cbc::CiphertextSize(plaintext.size());
    ByteSpan dst = emit(label, ct_size);
    size_t written = 0;
    Status s =
        crypto::Aes128Cbc::EncryptInto(keys.value_key, plaintext, dst,
                                       &written);
    if (!s.ok()) return s;
    if (written != ct_size) {
      return Status::Internal("unexpected AES-CBC ciphertext size");
    }
  }
  return Status::Ok();
}

/// The counter-probe search loop shared by every storage layout: derives
/// labels F(K1, c) for c = 0, 1, ... and looks each up through `find`
/// (`std::optional<ConstByteSpan> find(const Label&)`), stopping at the
/// first miss. Real payloads are appended to `results`; dummies are
/// dropped. With a `gate`, entries the gate rejects skip decryption.
template <typename FindFn>
void SearchEntries(const KeywordKeys& token, FindFn&& find,
                   std::vector<Bytes>& results,
                   const LabelGate* gate = nullptr,
                   SearchStats* stats = nullptr) {
  const crypto::Prf label_prf(token.label_key);
  if (!label_prf.ok()) return;
  uint8_t counter[8];
  Label label;
  Bytes plaintext;  // reused across counter probes
  for (uint64_t c = 0;; ++c) {
    StoreUint64(counter, c);
    if (!label_prf.EvalInto(ConstByteSpan(counter, sizeof(counter)),
                            ByteSpan(label.data(), label.size()))) {
      break;
    }
    if (stats != nullptr) ++stats->probes;
    std::optional<ConstByteSpan> ct = find(label);
    if (!ct.has_value()) break;
    if (gate != nullptr && !gate->MayContainReal(label)) {
      // The gate has no false negatives, so this entry is a padding dummy;
      // skip the decryption it would have cost.
      if (stats != nullptr) ++stats->skipped_decrypts;
      continue;
    }
    if (stats != nullptr) ++stats->decrypts;
    plaintext.resize(ct->size());
    size_t written = 0;
    if (!crypto::Aes128Cbc::DecryptInto(token.value_key, *ct, plaintext,
                                        &written)
             .ok() ||
        written == 0) {
      break;  // wrong token
    }
    if (plaintext[0] == kEmmDummyMarker) continue;
    results.emplace_back(plaintext.begin() + 1,
                         plaintext.begin() + static_cast<long>(written));
  }
}

}  // namespace rsse::sse

#endif  // RSSE_SSE_EMM_CODEC_H_
