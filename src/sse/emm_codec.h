#ifndef RSSE_SSE_EMM_CODEC_H_
#define RSSE_SSE_EMM_CODEC_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aes.h"
#include "crypto/hmac_prf.h"
#include "sse/keyword_keys.h"

namespace rsse::sse {

/// Entry-level codec of the Π_bas encrypted dictionary: label derivation
/// (F(K1, counter)), payload framing (real/dummy marker byte, padding) and
/// the counter-probe search loop. `EncryptedMultimap` and the sharded store
/// `shard::ShardedEmm` are two storage layouts over this one entry format,
/// so the format lives here exactly once — a blob built by either store is
/// searchable by the other.
///
/// Both directions work arena-at-a-time: build stages a whole keyword's
/// padded posting list into scratch arenas, derives every label in one
/// fused multi-lane PRF pass and encrypts every value in one batch AES
/// call; search batch-decrypts runs of consecutive counter hits the same
/// way. The wire format is byte-identical to the entry-at-a-time codec
/// (pinned by the golden layout and cross-store conformance tests).

/// First plaintext byte of a stored payload: real posting vs padding dummy.
inline constexpr uint8_t kEmmRealMarker = 0x00;
inline constexpr uint8_t kEmmDummyMarker = 0x01;

/// Posting-list length after padding to a multiple of `pad_quantum`
/// (0 disables padding; an empty list pads up to one full quantum).
inline uint64_t PaddedPostingTotal(size_t payload_count, uint64_t pad_quantum) {
  uint64_t total = payload_count;
  if (pad_quantum > 0) {
    total = (total + pad_quantum - 1) / pad_quantum * pad_quantum;
    if (total == 0) total = pad_quantum;
  }
  return total;
}

/// Exact storage footprint of an index: entry count and total ciphertext
/// bytes after padding. `ComputeKeywordEmmSizing` is the per-keyword cost
/// model that the batch staging path reserves from; `ComputeEmmSizing`
/// sums it over an input multimap. Both the flat and the sharded store
/// reserve from this one model, so the two can never diverge — and the
/// staging arenas can never diverge from the stores.
struct EmmSizing {
  size_t entries = 0;
  size_t value_bytes = 0;
};

inline EmmSizing ComputeKeywordEmmSizing(const std::vector<Bytes>& payloads,
                                         uint64_t pad_quantum) {
  EmmSizing sizing;
  const uint64_t total = PaddedPostingTotal(payloads.size(), pad_quantum);
  sizing.entries = total;
  for (const Bytes& p : payloads) {
    // One marker byte precedes every stored payload.
    sizing.value_bytes += crypto::Aes128Cbc::CiphertextSize(1 + p.size());
  }
  sizing.value_bytes +=
      (total - payloads.size()) * crypto::Aes128Cbc::CiphertextSize(1);
  return sizing;
}

inline EmmSizing ComputeEmmSizing(
    const std::unordered_map<Bytes, std::vector<Bytes>, BytesHash>& postings,
    uint64_t pad_quantum) {
  EmmSizing sizing;
  for (const auto& [keyword, payloads] : postings) {
    const EmmSizing kw = ComputeKeywordEmmSizing(payloads, pad_quantum);
    sizing.entries += kw.entries;
    sizing.value_bytes += kw.value_bytes;
  }
  return sizing;
}

/// Optional pre-decryption filter consulted by the search loop. When a gate
/// is installed, an entry whose label it rejects is skipped without paying
/// the AES decryption — the gate promises no false negatives for real
/// entries, so skipped entries can only be padding dummies (or, for
/// approximate gates, are re-checked by the post-decrypt marker anyway).
class LabelGate {
 public:
  virtual ~LabelGate() = default;

  /// May the entry stored under `label` hold a real (non-dummy) payload?
  virtual bool MayContainReal(const Label& label) const = 0;
};

/// Per-search instrumentation (bench_false_positives reports these).
struct SearchStats {
  /// Dictionary probes issued, including the terminating miss.
  size_t probes = 0;
  /// Ciphertexts actually decrypted.
  size_t decrypts = 0;
  /// Entries a `LabelGate` rejected before decryption.
  size_t skipped_decrypts = 0;

  void Add(const SearchStats& o) {
    probes += o.probes;
    decrypts += o.decrypts;
    skipped_decrypts += o.skipped_decrypts;
  }
};

/// Reusable staging arenas for the batch build path: one instance per
/// build worker, recycled across keywords so the steady state allocates
/// nothing (the vectors only ever grow to the largest posting list seen).
struct EmmBuildScratch {
  std::vector<Label> labels;
  Bytes plaintexts;
  std::vector<uint32_t> plain_lens;
  Bytes ciphertexts;
};

/// Encrypts the (padded) postings of one keyword arena-at-a-time:
///   1. every label F(K1, c), c = 0..total, in one fused multi-lane PRF
///      pass over the cached key midstates;
///   2. the padded posting list staged into one scratch plaintext arena
///      (marker byte + payload per entry);
///   3. one batch AES call — single cached key schedule, IVs from one
///      pooled draw — into a scratch ciphertext arena reserved from
///      `ComputeKeywordEmmSizing`, the same cost model the stores use;
///   4. each ciphertext handed to `emit(label, exact_size)`, which returns
///      the destination span (table arena or shard staging bucket).
template <typename Emit>
Status EncryptKeywordEntries(const Bytes& keyword,
                             const std::vector<Bytes>& payloads,
                             const KeywordKeyDeriver& deriver,
                             uint64_t pad_quantum, EmmBuildScratch& scratch,
                             Emit&& emit) {
  const KeywordKeys keys = deriver.Derive(keyword);
  const crypto::Prf label_prf(keys.label_key);
  if (!label_prf.ok()) {
    return Status::Internal("label PRF initialization failed");
  }
  const EmmSizing sizing = ComputeKeywordEmmSizing(payloads, pad_quantum);
  const size_t total = sizing.entries;

  scratch.labels.resize(total);
  if (total > 0 &&
      !label_prf.EvalCountersInto(
          0, total, ByteSpan(scratch.labels[0].data(), total * kLabelBytes),
          kLabelBytes)) {
    return Status::Internal("label PRF evaluation failed");
  }

  scratch.plaintexts.clear();
  scratch.plaintexts.reserve(sizing.value_bytes);  // over-reserve: no regrow
  scratch.plain_lens.clear();
  scratch.plain_lens.reserve(total);
  for (size_t c = 0; c < total; ++c) {
    if (c < payloads.size()) {
      scratch.plaintexts.push_back(kEmmRealMarker);
      Append(scratch.plaintexts, payloads[c]);
      scratch.plain_lens.push_back(
          static_cast<uint32_t>(1 + payloads[c].size()));
    } else {
      scratch.plaintexts.push_back(kEmmDummyMarker);
      scratch.plain_lens.push_back(1);
    }
  }

  // Grow-only: shrinking and regrowing would value-initialize (memset) a
  // region the batch encryption fully overwrites anyway.
  if (scratch.ciphertexts.size() < sizing.value_bytes) {
    scratch.ciphertexts.resize(sizing.value_bytes);
  }
  size_t written = 0;
  Status s = crypto::Aes128Cbc::EncryptManyInto(
      keys.value_key, scratch.plaintexts, scratch.plain_lens,
      ByteSpan(scratch.ciphertexts.data(), sizing.value_bytes), &written);
  if (!s.ok()) return s;
  if (written != sizing.value_bytes) {
    return Status::Internal("batch encryption diverged from the cost model");
  }

  size_t offset = 0;
  for (size_t c = 0; c < total; ++c) {
    const size_t ct_size =
        crypto::Aes128Cbc::CiphertextSize(scratch.plain_lens[c]);
    ByteSpan dst = emit(scratch.labels[c], ct_size);
    if (dst.size() < ct_size) {
      return Status::Internal("emit sink returned an undersized span");
    }
    std::memcpy(dst.data(), scratch.ciphertexts.data() + offset, ct_size);
    offset += ct_size;
  }
  return Status::Ok();
}

/// The counter-probe search loop shared by every storage layout: derives
/// labels F(K1, c) for c = 0, 1, ... in fused chunks and looks each up
/// through `find` (`std::optional<ConstByteSpan> find(const Label&)`),
/// stopping at the first miss. Hits are gathered and decrypted in batches
/// (all counters of one keyword share the value key, so one ECB pass per
/// batch replaces a per-probe EVP round). Real payloads are appended to
/// `results`; dummies are dropped; a failed decryption (wrong token) ends
/// the search as in the entry-at-a-time loop. With a `gate`, entries the
/// gate rejects skip decryption.
template <typename FindFn>
void SearchEntries(const KeywordKeys& token, FindFn&& find,
                   std::vector<Bytes>& results,
                   const LabelGate* gate = nullptr,
                   SearchStats* stats = nullptr) {
  const crypto::Prf label_prf(token.label_key);
  if (!label_prf.ok()) return;
  // 8 labels per fused derivation (two x4 lanes / one x8); up to 32
  // gathered ciphertexts per batch decryption.
  constexpr size_t kLabelChunk = 8;
  constexpr size_t kDecryptBatch = 32;
  Label labels[kLabelChunk];
  Bytes cts;                      // gathered ciphertexts, packed
  std::vector<uint32_t> ct_lens;  // per-gathered-entry ciphertext sizes
  Bytes plains;                   // batch plaintexts (padded spacing)
  std::vector<uint32_t> plain_lens;

  // Decrypts the gathered batch and appends its real payloads; false on a
  // failed decryption (wrong token — the caller stops probing).
  auto flush = [&]() {
    if (ct_lens.empty()) return true;
    if (stats != nullptr) stats->decrypts += ct_lens.size();
    plains.resize(cts.size() - ct_lens.size() * crypto::Aes128Cbc::kBlockBytes);
    plain_lens.resize(ct_lens.size());
    if (!crypto::Aes128Cbc::DecryptManyInto(token.value_key, cts, ct_lens,
                                            plains, plain_lens)
             .ok()) {
      return false;
    }
    size_t offset = 0;
    for (size_t i = 0; i < ct_lens.size(); ++i) {
      const uint32_t len = plain_lens[i];
      if (len == crypto::Aes128Cbc::kBadEntry || len == 0) return false;
      if (plains[offset] != kEmmDummyMarker) {
        results.emplace_back(
            plains.begin() + static_cast<long>(offset + 1),
            plains.begin() + static_cast<long>(offset + len));
      }
      offset += ct_lens[i] - crypto::Aes128Cbc::kBlockBytes;
    }
    cts.clear();
    ct_lens.clear();
    return true;
  };

  for (uint64_t base = 0;; base += kLabelChunk) {
    if (!label_prf.EvalCountersInto(
            base, kLabelChunk, ByteSpan(labels[0].data(), sizeof(labels)),
            kLabelBytes)) {
      break;
    }
    bool miss = false;
    for (size_t j = 0; j < kLabelChunk; ++j) {
      if (stats != nullptr) ++stats->probes;
      std::optional<ConstByteSpan> ct = find(labels[j]);
      if (!ct.has_value()) {
        miss = true;
        break;
      }
      if (gate != nullptr && !gate->MayContainReal(labels[j])) {
        // The gate has no false negatives, so this entry is a padding
        // dummy; skip the decryption it would have cost.
        if (stats != nullptr) ++stats->skipped_decrypts;
        continue;
      }
      if (ct->size() < 2 * crypto::Aes128Cbc::kBlockBytes ||
          ct->size() % crypto::Aes128Cbc::kBlockBytes != 0) {
        // Structurally malformed stored value (only reachable via foreign
        // Update entries): treat it as terminal like the per-entry loop
        // did, but still deliver the valid entries gathered before it.
        flush();
        return;
      }
      cts.insert(cts.end(), ct->begin(), ct->end());
      ct_lens.push_back(static_cast<uint32_t>(ct->size()));
      if (ct_lens.size() >= kDecryptBatch && !flush()) return;
    }
    if (miss) break;
  }
  flush();
}

}  // namespace rsse::sse

#endif  // RSSE_SSE_EMM_CODEC_H_
