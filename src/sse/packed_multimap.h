#ifndef RSSE_SSE_PACKED_MULTIMAP_H_
#define RSSE_SSE_PACKED_MULTIMAP_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "sse/keyword_keys.h"

namespace rsse::sse {

/// Space-efficient packed encrypted multimap in the style of the TSet of
/// Cash et al. (CRYPTO'13 / NDSS'14) — the paper instantiates exactly this
/// construction "setting its parameters to the values recommended for
/// space-efficiency (S = 6000, K = 1.1)" (Section 8).
///
/// Layout: a fixed array of `bucket_count` buckets of `bucket_capacity` (S)
/// slots each, where bucket_count ≈ K · total_entries / S. The c-th posting
/// of keyword w is stored in bucket h(F(K1_w, c)) as a fixed-size slot
///
///   tag = F(K1_w, c)   (16 bytes, also selects the bucket)
///   body = payload ⊕ F(K2_w, c)   (masked, fixed 9-byte payloads)
///
/// Unfilled slots hold random bytes, so the server's view is a uniform
/// array whose size depends only on the total posting count — unlike the
/// flat dictionary (`EncryptedMultimap`), whose per-entry overhead is an
/// IV + padded AES block. The packed layout stores an id posting in 25
/// bytes instead of ~64.
///
/// Build may fail with RESOURCE-style INTERNAL if bucket balancing cannot
/// be achieved (it retries with fresh bucket salts, as in the TSet paper);
/// with K >= 1.1 and S >= 64 this is astronomically unlikely at our scales.
///
/// Payloads are fixed at 9 bytes (marker + uint64 id): this backend serves
/// the id-posting schemes; variable-length documents use the flat backend.
class PackedMultimap {
 public:
  /// Packing parameters; defaults follow the paper's recommendation shape
  /// (large bucket capacity S, small space overhead factor K — the paper
  /// uses S = 6000, K = 1.1, where the balls-into-bins fluctuation is a
  /// negligible fraction of S). The builder additionally reserves a
  /// 6·sqrt(S) concentration margin per bucket so that small-S
  /// configurations remain balanceable.
  struct Params {
    uint64_t bucket_capacity = 2048;  // S
    double overhead_factor = 1.1;     // K
    int max_build_attempts = 32;
  };

  /// Fixed slot payload size: 1 marker byte + 8 id bytes.
  static constexpr size_t kPayloadBytes = 9;

  PackedMultimap() = default;

  /// Builds the packed structure from keyword -> id postings.
  static Result<PackedMultimap> Build(
      const std::vector<std::pair<Bytes, std::vector<uint64_t>>>& postings,
      const KeywordKeyDeriver& deriver, const Params& params);

  /// Build with the default (paper-shaped) packing parameters.
  static Result<PackedMultimap> Build(
      const std::vector<std::pair<Bytes, std::vector<uint64_t>>>& postings,
      const KeywordKeyDeriver& deriver) {
    return Build(postings, deriver, Params{});
  }

  /// Retrieves the ids for the keyword behind `token`.
  std::vector<uint64_t> Search(const KeywordKeys& token) const;

  uint64_t bucket_count() const { return bucket_count_; }

  /// Total bytes of the slot array (the outsourced size).
  size_t SizeBytes() const { return slots_.size(); }

 private:
  static constexpr size_t kTagBytes = crypto::kLambdaBytes;
  static constexpr size_t kSlotBytes = kTagBytes + kPayloadBytes;

  uint64_t BucketOf(const Bytes& tag) const;

  uint64_t bucket_count_ = 0;
  uint64_t bucket_capacity_ = 0;
  uint64_t bucket_salt_ = 0;
  /// bucket_count * bucket_capacity slots, kSlotBytes each, flattened.
  std::vector<uint8_t> slots_;
};

}  // namespace rsse::sse

#endif  // RSSE_SSE_PACKED_MULTIMAP_H_
