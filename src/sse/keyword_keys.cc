#include "sse/keyword_keys.h"

#include "crypto/sha.h"

namespace rsse::sse {

void KeysFromSharedSecretInto(ConstByteSpan secret, KeywordKeys& out) {
  // Domain-separated KDF over a stack buffer: secret || 0x01 -> K1,
  // secret || 0x02 -> K2. Secrets are λ-byte PRF/DPRF outputs, so the
  // fixed-size buffer below always fits (guarded for exotic callers).
  uint8_t input[64 + 1];
  uint8_t digest[32];
  if (secret.size() > 64) {
    // Fall back to the allocating path for oversized secrets.
    Bytes in1(secret.begin(), secret.end());
    AppendByte(in1, 0x01);
    Bytes in2(secret.begin(), secret.end());
    AppendByte(in2, 0x02);
    Bytes k1 = crypto::Sha256(in1);
    Bytes k2 = crypto::Sha256(in2);
    k1.resize(crypto::kLambdaBytes);
    k2.resize(crypto::kLambdaBytes);
    out.label_key = std::move(k1);
    out.value_key = std::move(k2);
    return;
  }
  std::memcpy(input, secret.data(), secret.size());
  input[secret.size()] = 0x01;
  if (!crypto::Sha256Into(ConstByteSpan(input, secret.size() + 1), digest)) {
    out.label_key.clear();
    out.value_key.clear();
    return;
  }
  out.label_key.assign(digest, digest + crypto::kLambdaBytes);
  input[secret.size()] = 0x02;
  if (!crypto::Sha256Into(ConstByteSpan(input, secret.size() + 1), digest)) {
    out.label_key.clear();
    out.value_key.clear();
    return;
  }
  out.value_key.assign(digest, digest + crypto::kLambdaBytes);
}

KeywordKeys KeysFromSharedSecret(const Bytes& secret) {
  KeywordKeys keys;
  KeysFromSharedSecretInto(secret, keys);
  return keys;
}

PrfKeyDeriver::PrfKeyDeriver(const Bytes& master_key) : prf_(master_key) {}

KeywordKeys PrfKeyDeriver::Derive(const Bytes& w) const {
  return KeysFromSharedSecret(prf_.EvalTrunc(w, crypto::kLambdaBytes));
}

}  // namespace rsse::sse
