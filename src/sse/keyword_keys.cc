#include "sse/keyword_keys.h"

#include "crypto/sha.h"

namespace rsse::sse {

KeywordKeys KeysFromSharedSecret(const Bytes& secret) {
  Bytes in1 = secret;
  AppendByte(in1, 0x01);
  Bytes in2 = secret;
  AppendByte(in2, 0x02);
  Bytes k1 = crypto::Sha256(in1);
  Bytes k2 = crypto::Sha256(in2);
  k1.resize(crypto::kLambdaBytes);
  k2.resize(crypto::kLambdaBytes);
  return KeywordKeys{std::move(k1), std::move(k2)};
}

PrfKeyDeriver::PrfKeyDeriver(const Bytes& master_key) : prf_(master_key) {}

KeywordKeys PrfKeyDeriver::Derive(const Bytes& w) const {
  return KeysFromSharedSecret(prf_.EvalTrunc(w, crypto::kLambdaBytes));
}

}  // namespace rsse::sse
