#include "sse/flat_label_map.h"

#include <cassert>
#include <cstring>

namespace rsse::sse {

namespace {

constexpr size_t kMinCapacity = 16;

size_t NextPowerOfTwo(size_t n) {
  size_t p = kMinCapacity;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Result<FlatLabelMap> FlatLabelMap::View(ConstByteSpan slots,
                                        ConstByteSpan arena,
                                        uint64_t entries,
                                        uint64_t value_bytes) {
  if (slots.empty()) {
    // An empty shard has no sections at all; represent it as an ordinary
    // empty heap map (nothing to borrow).
    if (entries != 0 || value_bytes != 0 || !arena.empty()) {
      return Status::InvalidArgument(
          "flat map view: empty slot table with nonzero entries or arena");
    }
    return FlatLabelMap();
  }
  if (slots.size() % kSlotRecordBytes != 0) {
    return Status::InvalidArgument(
        "flat map view: slot table is not a whole number of records");
  }
  const size_t capacity = slots.size() / kSlotRecordBytes;
  if ((capacity & (capacity - 1)) != 0 || capacity < kMinCapacity) {
    return Status::InvalidArgument(
        "flat map view: slot capacity is not a power of two");
  }
  // Max load factor 1/2, as enforced on insert: guarantees a free slot
  // terminates every probe chain even before any record is inspected.
  if (entries * 2 > capacity) {
    return Status::InvalidArgument(
        "flat map view: entry count exceeds the 1/2 load factor");
  }
  if (value_bytes != arena.size()) {
    return Status::InvalidArgument(
        "flat map view: arena length does not match the claimed bytes");
  }
  FlatLabelMap map;
  map.is_view_ = true;
  map.view_slots_ = slots;
  map.view_arena_ = arena;
  map.view_capacity_ = capacity;
  map.size_ = entries;
  map.value_bytes_ = value_bytes;
  return map;
}

void FlatLabelMap::EnsureHeap() {
  if (!is_view_) return;
  const ConstByteSpan slots = view_slots_;
  const ConstByteSpan arena = view_arena_;
  const size_t capacity = view_capacity_;
  is_view_ = false;
  view_slots_ = {};
  view_arena_ = {};
  view_capacity_ = 0;
  slots_.assign(capacity, Slot{});
  arena_.clear();
  arena_.reserve(value_bytes_);
  size_ = 0;
  value_bytes_ = 0;
  leaked_bytes_ = 0;
  // The borrowed table is already in probe layout for this capacity, so
  // records keep their slot index; only arena offsets are rewritten
  // (compaction drops any leaked bytes a hostile image might claim).
  for (size_t i = 0; i < capacity; ++i) {
    const uint8_t* rec = slots.data() + i * kSlotRecordBytes;
    const uint32_t len = LoadU32Le(rec + kLabelBytes + 8);
    if (len == 0) continue;
    const uint64_t offset = LoadU64Le(rec + kLabelBytes);
    if (offset > arena.size() || len > arena.size() - offset) continue;
    Slot& s = slots_[i];
    std::memcpy(s.label.data(), rec, kLabelBytes);
    s.offset = arena_.size();
    s.len = len;
    arena_.insert(arena_.end(), arena.data() + offset,
                  arena.data() + offset + len);
    ++size_;
    value_bytes_ += len;
  }
}

void FlatLabelMap::Reserve(size_t n, size_t value_bytes) {
  EnsureHeap();
  // Max load factor 1/2: probe chains on pseudorandom labels stay ~1.5
  // slots on average.
  const size_t needed = NextPowerOfTwo(n * 2);
  if (needed > slots_.size()) Rehash(needed);
  if (value_bytes > arena_.capacity()) arena_.reserve(value_bytes);
}

size_t FlatLabelMap::ProbeSlot(const Label& label) const {
  const size_t mask = slots_.size() - 1;
  size_t idx = LabelHash{}(label) & mask;
  for (;;) {
    const Slot& s = slots_[idx];
    if (s.len == 0 || s.label == label) return idx;
    idx = (idx + 1) & mask;
  }
}

void FlatLabelMap::Rehash(size_t capacity) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(capacity, Slot{});
  const size_t mask = capacity - 1;
  for (const Slot& s : old) {
    if (s.len == 0) continue;
    size_t idx = LabelHash{}(s.label) & mask;
    while (slots_[idx].len != 0) idx = (idx + 1) & mask;
    slots_[idx] = s;
  }
}

ByteSpan FlatLabelMap::InsertUninit(const Label& label, size_t len) {
  if (len == 0) return {};
  EnsureHeap();
  if (slots_.empty() || (size_ + 1) * 2 > slots_.size()) {
    Rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
  }
  Slot& s = slots_[ProbeSlot(label)];
  if (s.len != 0) {
    // Duplicate label: the old bytes are dead but stay in the arena (no
    // tombstones). Track them so sizing code sees the real footprint.
    value_bytes_ -= s.len;
    leaked_bytes_ += s.len;
  } else {
    s.label = label;
    ++size_;
  }
  s.offset = arena_.size();
  s.len = static_cast<uint32_t>(len);
  arena_.resize(arena_.size() + len);
  value_bytes_ += len;
  return ByteSpan(arena_.data() + s.offset, len);
}

void FlatLabelMap::Insert(const Label& label, ConstByteSpan value) {
  if (value.empty()) return;
  ByteSpan dst = InsertUninit(label, value.size());
  std::memcpy(dst.data(), value.data(), value.size());
}

std::optional<ConstByteSpan> FlatLabelMap::Find(const Label& label) const {
  if (is_view_) {
    const size_t mask = view_capacity_ - 1;
    size_t idx = LabelHash{}(label) & mask;
    // A well-formed image keeps load factor <= 1/2 (checked in View), so
    // a free slot always terminates the chain; the step bound only guards
    // a corrupt, unverified table that claims to be full.
    for (size_t step = 0; step < view_capacity_; ++step) {
      const uint8_t* rec = view_slots_.data() + idx * kSlotRecordBytes;
      const uint32_t len = LoadU32Le(rec + kLabelBytes + 8);
      if (len == 0) return std::nullopt;
      if (std::memcmp(rec, label.data(), kLabelBytes) == 0) {
        const uint64_t offset = LoadU64Le(rec + kLabelBytes);
        if (offset > view_arena_.size() ||
            len > view_arena_.size() - offset) {
          return std::nullopt;  // corrupt record: miss, never over-read
        }
        return ConstByteSpan(view_arena_.data() + offset, len);
      }
      idx = (idx + 1) & mask;
    }
    return std::nullopt;
  }
  if (slots_.empty()) return std::nullopt;
  const Slot& s = slots_[ProbeSlot(label)];
  if (s.len == 0) return std::nullopt;
  return ConstByteSpan(arena_.data() + s.offset, s.len);
}

size_t FlatLabelMap::WriteV2Sections(ByteSpan slots_out,
                                     ByteSpan arena_out) const {
  assert(slots_out.size() == V2SlotsBytes());
  assert(arena_out.size() == V2ArenaBytes());
  std::memset(slots_out.data(), 0, slots_out.size());
  size_t cursor = 0;
  const size_t capacity = SlotCount();
  // Emit records at their current probe index (the capacity is preserved,
  // so hashes land identically when the image is mapped back) and append
  // values in slot order: offsets are rewritten, which compacts leaked
  // duplicate-overwrite bytes out of the arena.
  for (size_t i = 0; i < capacity; ++i) {
    Label label;
    ConstByteSpan value;
    if (is_view_) {
      const uint8_t* rec = view_slots_.data() + i * kSlotRecordBytes;
      const uint32_t len = LoadU32Le(rec + kLabelBytes + 8);
      if (len == 0) continue;
      const uint64_t offset = LoadU64Le(rec + kLabelBytes);
      if (offset > view_arena_.size() ||
          len > view_arena_.size() - offset) {
        continue;
      }
      std::memcpy(label.data(), rec, kLabelBytes);
      value = ConstByteSpan(view_arena_.data() + offset, len);
    } else {
      const Slot& s = slots_[i];
      if (s.len == 0) continue;
      label = s.label;
      value = ConstByteSpan(arena_.data() + s.offset, s.len);
    }
    if (value.size() > arena_out.size() - cursor) break;  // can't happen
    uint8_t* rec = slots_out.data() + i * kSlotRecordBytes;
    std::memcpy(rec, label.data(), kLabelBytes);
    StoreU64Le(rec + kLabelBytes, cursor);
    StoreU32Le(rec + kLabelBytes + 8, static_cast<uint32_t>(value.size()));
    std::memcpy(arena_out.data() + cursor, value.data(), value.size());
    cursor += value.size();
  }
  // Sizing == written: the compacted arena is exactly ValueBytes() long.
  assert(cursor == arena_out.size());
  return cursor;
}

}  // namespace rsse::sse
