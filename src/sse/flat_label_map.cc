#include "sse/flat_label_map.h"

#include <cstring>

namespace rsse::sse {

namespace {

constexpr size_t kMinCapacity = 16;

size_t NextPowerOfTwo(size_t n) {
  size_t p = kMinCapacity;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void FlatLabelMap::Reserve(size_t n, size_t value_bytes) {
  // Max load factor 1/2: probe chains on pseudorandom labels stay ~1.5
  // slots on average.
  const size_t needed = NextPowerOfTwo(n * 2);
  if (needed > slots_.size()) Rehash(needed);
  if (value_bytes > arena_.capacity()) arena_.reserve(value_bytes);
}

size_t FlatLabelMap::ProbeSlot(const Label& label) const {
  const size_t mask = slots_.size() - 1;
  size_t idx = LabelHash{}(label) & mask;
  for (;;) {
    const Slot& s = slots_[idx];
    if (s.len == 0 || s.label == label) return idx;
    idx = (idx + 1) & mask;
  }
}

void FlatLabelMap::Rehash(size_t capacity) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(capacity, Slot{});
  const size_t mask = capacity - 1;
  for (const Slot& s : old) {
    if (s.len == 0) continue;
    size_t idx = LabelHash{}(s.label) & mask;
    while (slots_[idx].len != 0) idx = (idx + 1) & mask;
    slots_[idx] = s;
  }
}

ByteSpan FlatLabelMap::InsertUninit(const Label& label, size_t len) {
  if (len == 0) return {};
  if (slots_.empty() || (size_ + 1) * 2 > slots_.size()) {
    Rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
  }
  Slot& s = slots_[ProbeSlot(label)];
  if (s.len != 0) {
    value_bytes_ -= s.len;  // duplicate label: the old bytes are dead
  } else {
    s.label = label;
    ++size_;
  }
  s.offset = arena_.size();
  s.len = static_cast<uint32_t>(len);
  arena_.resize(arena_.size() + len);
  value_bytes_ += len;
  return ByteSpan(arena_.data() + s.offset, len);
}

void FlatLabelMap::Insert(const Label& label, ConstByteSpan value) {
  if (value.empty()) return;
  ByteSpan dst = InsertUninit(label, value.size());
  std::memcpy(dst.data(), value.data(), value.size());
}

std::optional<ConstByteSpan> FlatLabelMap::Find(const Label& label) const {
  if (slots_.empty()) return std::nullopt;
  const Slot& s = slots_[ProbeSlot(label)];
  if (s.len == 0) return std::nullopt;
  return ConstByteSpan(arena_.data() + s.offset, s.len);
}

}  // namespace rsse::sse
