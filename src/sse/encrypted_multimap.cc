#include "sse/encrypted_multimap.h"

#include <thread>

#include "common/env.h"
#include "crypto/aes.h"

namespace rsse::sse {

namespace {

constexpr uint8_t kRealMarker = 0x00;
constexpr uint8_t kDummyMarker = 0x01;

/// Posting-list length after padding.
uint64_t PaddedTotal(size_t payload_count, uint64_t pad_quantum) {
  uint64_t total = payload_count;
  if (pad_quantum > 0) {
    total = (total + pad_quantum - 1) / pad_quantum * pad_quantum;
    if (total == 0) total = pad_quantum;
  }
  return total;
}

/// Encrypted entries of one build shard: labels plus ciphertexts packed
/// into a contiguous buffer (offsets are implicit — entries are appended
/// in order, so the lengths delimit them).
struct Shard {
  std::vector<Label> labels;
  std::vector<uint32_t> value_lens;
  Bytes values;
};

/// Encrypts the postings of one keyword, reusing `plaintext` as scratch
/// across entries. Each entry's ciphertext is written directly into the
/// span returned by `emit(label, exact_ciphertext_size)` — single-threaded
/// builds hand out table-arena storage (no staging copy), sharded builds a
/// shard buffer. Steady-state allocation-free apart from the sink's own
/// amortized growth.
template <typename Emit>
Status EncryptKeyword(const Bytes& keyword, const std::vector<Bytes>& payloads,
                      const KeywordKeyDeriver& deriver, uint64_t pad_quantum,
                      Bytes& plaintext, Emit&& emit) {
  const KeywordKeys keys = deriver.Derive(keyword);
  const crypto::Prf label_prf(keys.label_key);
  if (!label_prf.ok()) {
    return Status::Internal("label PRF initialization failed");
  }
  const uint64_t total = PaddedTotal(payloads.size(), pad_quantum);
  uint8_t counter[8];
  Label label;
  for (uint64_t c = 0; c < total; ++c) {
    StoreUint64(counter, c);
    if (!label_prf.EvalInto(ConstByteSpan(counter, sizeof(counter)),
                            ByteSpan(label.data(), label.size()))) {
      return Status::Internal("label PRF evaluation failed");
    }
    plaintext.clear();
    if (c < payloads.size()) {
      plaintext.push_back(kRealMarker);
      Append(plaintext, payloads[c]);
    } else {
      plaintext.push_back(kDummyMarker);
    }
    // CBC/PKCS#7 output size is exact, so the sink reserves precisely the
    // bytes the encryption fills.
    const size_t ct_size = crypto::Aes128Cbc::CiphertextSize(plaintext.size());
    ByteSpan dst = emit(label, ct_size);
    size_t written = 0;
    Status s =
        crypto::Aes128Cbc::EncryptInto(keys.value_key, plaintext, dst,
                                       &written);
    if (!s.ok()) return s;
    if (written != ct_size) {
      return Status::Internal("unexpected AES-CBC ciphertext size");
    }
  }
  return Status::Ok();
}

}  // namespace

Result<EncryptedMultimap> EncryptedMultimap::Build(
    const PlainMultimap& postings, const KeywordKeyDeriver& deriver,
    const PaddingPolicy& padding) {
  BuildOptions options;
  options.padding = padding;
  return BuildWithOptions(postings, deriver, options);
}

Result<EncryptedMultimap> EncryptedMultimap::BuildWithOptions(
    const PlainMultimap& postings, const KeywordKeyDeriver& deriver,
    const BuildOptions& options) {
  const int threads = ResolveThreadCount(options.threads,
                                         "RSSE_BUILD_THREADS");

  // Exact output size is cheap to precompute, so the table and arena are
  // sized once and never rehash or reallocate during construction.
  size_t total_entries = 0;
  size_t total_value_bytes = 0;
  for (const auto& [keyword, payloads] : postings) {
    const uint64_t total = PaddedTotal(payloads.size(),
                                      options.padding.quantum);
    total_entries += total;
    for (const Bytes& p : payloads) {
      total_value_bytes += crypto::Aes128Cbc::CiphertextSize(1 + p.size());
    }
    total_value_bytes += (total - payloads.size()) *
                         crypto::Aes128Cbc::CiphertextSize(1);
  }

  EncryptedMultimap index;
  index.dict_.Reserve(total_entries, total_value_bytes);

  if (threads == 1) {
    // Hot path: encrypt every ciphertext directly into the table arena.
    Bytes plaintext;
    for (const auto& [keyword, payloads] : postings) {
      Status s = EncryptKeyword(
          keyword, payloads, deriver, options.padding.quantum, plaintext,
          [&index](const Label& label, size_t len) {
            return index.dict_.InsertUninit(label, len);
          });
      if (!s.ok()) return s;
    }
    return index;
  }

  // Sharded build: stable keyword order, one staging shard per worker,
  // single-threaded merge into the table.
  std::vector<const std::pair<const Bytes, std::vector<Bytes>>*> items;
  items.reserve(postings.size());
  for (const auto& kv : postings) items.push_back(&kv);

  std::vector<Shard> shards(static_cast<size_t>(threads));
  std::vector<Status> shard_status(static_cast<size_t>(threads));

  auto worker = [&](int t) {
    Bytes plaintext;
    Shard& shard = shards[static_cast<size_t>(t)];
    for (size_t i = static_cast<size_t>(t); i < items.size();
         i += static_cast<size_t>(threads)) {
      Status s = EncryptKeyword(
          items[i]->first, items[i]->second, deriver, options.padding.quantum,
          plaintext, [&shard](const Label& label, size_t len) {
            shard.labels.push_back(label);
            shard.value_lens.push_back(static_cast<uint32_t>(len));
            const size_t old_size = shard.values.size();
            shard.values.resize(old_size + len);
            return ByteSpan(shard.values.data() + old_size, len);
          });
      if (!s.ok()) {
        shard_status[static_cast<size_t>(t)] = s;
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (std::thread& th : pool) th.join();
  for (const Status& s : shard_status) {
    if (!s.ok()) return s;
  }

  for (const Shard& shard : shards) {
    size_t offset = 0;
    for (size_t i = 0; i < shard.labels.size(); ++i) {
      index.dict_.Insert(
          shard.labels[i],
          ConstByteSpan(shard.values.data() + offset, shard.value_lens[i]));
      offset += shard.value_lens[i];
    }
  }
  return index;
}

namespace {
// Blob header: magic + format version.
constexpr uint64_t kSerializeMagic = 0x52535345454d4d31ull;  // "RSSEEMM1"
}  // namespace

Bytes EncryptedMultimap::Serialize() const {
  Bytes out;
  out.reserve(16 + SizeBytes() + dict_.size() * 8);
  AppendUint64(out, kSerializeMagic);
  AppendUint64(out, dict_.size());
  dict_.ForEach([&out](const Label& label, ConstByteSpan value) {
    AppendUint32(out, static_cast<uint32_t>(label.size()));
    out.insert(out.end(), label.begin(), label.end());
    AppendUint32(out, static_cast<uint32_t>(value.size()));
    out.insert(out.end(), value.begin(), value.end());
  });
  return out;
}

Result<EncryptedMultimap> EncryptedMultimap::Deserialize(const Bytes& blob) {
  if (blob.size() < 16 || ReadUint64(blob, 0) != kSerializeMagic) {
    return Status::InvalidArgument("not an EncryptedMultimap blob");
  }
  const uint64_t count = ReadUint64(blob, 8);
  // Each entry needs at least 8 bytes of length prefixes; reject impossible
  // counts before reserving (a corrupt header must not drive allocation).
  if (count > (blob.size() - 16) / 8) {
    return Status::InvalidArgument("implausible entry count in blob header");
  }
  EncryptedMultimap index;
  // Arena size is implied by the header: total blob minus the 16-byte
  // header and each entry's 8 length bytes + 16 label bytes. A corrupt
  // header fails the entry parse below regardless.
  const size_t overhead = 16 + static_cast<size_t>(count) * (8 + kLabelBytes);
  index.dict_.Reserve(count,
                      blob.size() > overhead ? blob.size() - overhead : 0);
  size_t offset = 16;
  Label label;
  for (uint64_t i = 0; i < count; ++i) {
    if (offset + 4 > blob.size()) {
      return Status::InvalidArgument("truncated blob (label length)");
    }
    uint32_t label_len = ReadUint32(blob, offset);
    offset += 4;
    if (label_len != kLabelBytes) {
      return Status::InvalidArgument("unsupported label size in blob");
    }
    if (offset + label_len > blob.size()) {
      return Status::InvalidArgument("truncated blob (label)");
    }
    std::memcpy(label.data(), blob.data() + offset, kLabelBytes);
    offset += label_len;
    if (offset + 4 > blob.size()) {
      return Status::InvalidArgument("truncated blob (value length)");
    }
    uint32_t value_len = ReadUint32(blob, offset);
    offset += 4;
    if (value_len == 0) {
      return Status::InvalidArgument("empty value in blob");
    }
    if (offset + value_len > blob.size()) {
      return Status::InvalidArgument("truncated blob (value)");
    }
    index.dict_.Insert(label,
                       ConstByteSpan(blob.data() + offset, value_len));
    offset += value_len;
  }
  if (offset != blob.size()) {
    return Status::InvalidArgument("trailing bytes after blob payload");
  }
  return index;
}

std::vector<Bytes> EncryptedMultimap::Search(const KeywordKeys& token) const {
  std::vector<Bytes> results;
  const crypto::Prf label_prf(token.label_key);
  if (!label_prf.ok()) return results;
  uint8_t counter[8];
  Label label;
  Bytes plaintext;  // reused across counter probes
  for (uint64_t c = 0;; ++c) {
    StoreUint64(counter, c);
    if (!label_prf.EvalInto(ConstByteSpan(counter, sizeof(counter)),
                            ByteSpan(label.data(), label.size()))) {
      break;
    }
    std::optional<ConstByteSpan> ct = dict_.Find(label);
    if (!ct.has_value()) break;
    plaintext.resize(ct->size());
    size_t written = 0;
    if (!crypto::Aes128Cbc::DecryptInto(token.value_key, *ct, plaintext,
                                        &written)
             .ok() ||
        written == 0) {
      break;  // wrong token
    }
    if (plaintext[0] == kDummyMarker) continue;
    results.emplace_back(plaintext.begin() + 1,
                         plaintext.begin() + static_cast<long>(written));
  }
  return results;
}

Bytes EncodeIdPayload(uint64_t id) {
  Bytes out;
  AppendUint64(out, id);
  return out;
}

std::optional<uint64_t> DecodeIdPayload(const Bytes& payload) {
  if (payload.size() != 8) return std::nullopt;
  return ReadUint64(payload, 0);
}

}  // namespace rsse::sse
