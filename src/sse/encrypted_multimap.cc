#include "sse/encrypted_multimap.h"

#include "common/env.h"
#include "common/parallel.h"
#include "crypto/aes.h"
#include "sse/emm_codec.h"

namespace rsse::sse {

namespace {

/// Encrypted entries of one build shard: labels plus ciphertexts packed
/// into a contiguous buffer (offsets are implicit — entries are appended
/// in order, so the lengths delimit them).
struct Shard {
  std::vector<Label> labels;
  std::vector<uint32_t> value_lens;
  Bytes values;
};

}  // namespace

Result<EncryptedMultimap> EncryptedMultimap::Build(
    const PlainMultimap& postings, const KeywordKeyDeriver& deriver,
    const PaddingPolicy& padding) {
  BuildOptions options;
  options.padding = padding;
  return BuildWithOptions(postings, deriver, options);
}

Result<EncryptedMultimap> EncryptedMultimap::BuildWithOptions(
    const PlainMultimap& postings, const KeywordKeyDeriver& deriver,
    const BuildOptions& options) {
  const int threads = ResolveThreadCount(options.threads,
                                         "RSSE_BUILD_THREADS");

  // Exact output size is cheap to precompute, so the table and arena are
  // sized once and never rehash or reallocate during construction.
  const EmmSizing sizing = ComputeEmmSizing(postings,
                                            options.padding.quantum);

  EncryptedMultimap index;
  index.dict_.Reserve(sizing.entries, sizing.value_bytes);

  if (threads == 1) {
    // Hot path: encrypt every ciphertext directly into the table arena.
    EmmBuildScratch scratch;
    for (const auto& [keyword, payloads] : postings) {
      Status s = EncryptKeywordEntries(
          keyword, payloads, deriver, options.padding.quantum, scratch,
          [&index](const Label& label, size_t len) {
            return index.dict_.InsertUninit(label, len);
          });
      if (!s.ok()) return s;
    }
    return index;
  }

  // Sharded build: stable keyword order, one staging shard per worker,
  // single-threaded merge into the table.
  std::vector<const std::pair<const Bytes, std::vector<Bytes>>*> items;
  items.reserve(postings.size());
  for (const auto& kv : postings) items.push_back(&kv);

  std::vector<Shard> shards(static_cast<size_t>(threads));
  std::vector<Status> shard_status(static_cast<size_t>(threads));

  auto worker = [&](int t) {
    EmmBuildScratch scratch;
    Shard& shard = shards[static_cast<size_t>(t)];
    for (size_t i = static_cast<size_t>(t); i < items.size();
         i += static_cast<size_t>(threads)) {
      Status s = EncryptKeywordEntries(
          items[i]->first, items[i]->second, deriver, options.padding.quantum,
          scratch, [&shard](const Label& label, size_t len) {
            shard.labels.push_back(label);
            shard.value_lens.push_back(static_cast<uint32_t>(len));
            const size_t old_size = shard.values.size();
            shard.values.resize(old_size + len);
            return ByteSpan(shard.values.data() + old_size, len);
          });
      if (!s.ok()) {
        shard_status[static_cast<size_t>(t)] = s;
        return;
      }
    }
  };

  RunWorkers(threads, worker);
  for (const Status& s : shard_status) {
    if (!s.ok()) return s;
  }

  for (const Shard& shard : shards) {
    size_t offset = 0;
    for (size_t i = 0; i < shard.labels.size(); ++i) {
      index.dict_.Insert(
          shard.labels[i],
          ConstByteSpan(shard.values.data() + offset, shard.value_lens[i]));
      offset += shard.value_lens[i];
    }
  }
  return index;
}

namespace {
// Blob header: magic + format version.
constexpr uint64_t kSerializeMagic = 0x52535345454d4d31ull;  // "RSSEEMM1"
}  // namespace

Bytes EncryptedMultimap::Serialize() const {
  Bytes out;
  out.reserve(16 + SizeBytes() + dict_.size() * 8);
  AppendUint64(out, kSerializeMagic);
  AppendUint64(out, dict_.size());
  dict_.ForEach([&out](const Label& label, ConstByteSpan value) {
    AppendUint32(out, static_cast<uint32_t>(label.size()));
    out.insert(out.end(), label.begin(), label.end());
    AppendUint32(out, static_cast<uint32_t>(value.size()));
    out.insert(out.end(), value.begin(), value.end());
  });
  return out;
}

Result<EncryptedMultimap> EncryptedMultimap::Deserialize(const Bytes& blob) {
  if (blob.size() < 16 || ReadUint64(blob, 0) != kSerializeMagic) {
    return Status::InvalidArgument("not an EncryptedMultimap blob");
  }
  const uint64_t count = ReadUint64(blob, 8);
  // Each entry needs at least 8 bytes of length prefixes; reject impossible
  // counts before reserving (a corrupt header must not drive allocation).
  if (count > (blob.size() - 16) / 8) {
    return Status::InvalidArgument("implausible entry count in blob header");
  }
  EncryptedMultimap index;
  // Arena size is implied by the header: total blob minus the 16-byte
  // header and each entry's 8 length bytes + 16 label bytes. A corrupt
  // header fails the entry parse below regardless.
  const size_t overhead = 16 + static_cast<size_t>(count) * (8 + kLabelBytes);
  index.dict_.Reserve(count,
                      blob.size() > overhead ? blob.size() - overhead : 0);
  size_t offset = 16;
  Label label;
  for (uint64_t i = 0; i < count; ++i) {
    if (offset + 4 > blob.size()) {
      return Status::InvalidArgument("truncated blob (label length)");
    }
    uint32_t label_len = ReadUint32(blob, offset);
    offset += 4;
    if (label_len != kLabelBytes) {
      return Status::InvalidArgument("unsupported label size in blob");
    }
    if (offset + label_len > blob.size()) {
      return Status::InvalidArgument("truncated blob (label)");
    }
    std::memcpy(label.data(), blob.data() + offset, kLabelBytes);
    offset += label_len;
    if (offset + 4 > blob.size()) {
      return Status::InvalidArgument("truncated blob (value length)");
    }
    uint32_t value_len = ReadUint32(blob, offset);
    offset += 4;
    if (value_len == 0) {
      return Status::InvalidArgument("empty value in blob");
    }
    if (offset + value_len > blob.size()) {
      return Status::InvalidArgument("truncated blob (value)");
    }
    index.dict_.Insert(label,
                       ConstByteSpan(blob.data() + offset, value_len));
    offset += value_len;
  }
  if (offset != blob.size()) {
    return Status::InvalidArgument("trailing bytes after blob payload");
  }
  return index;
}

std::vector<Bytes> EncryptedMultimap::Search(const KeywordKeys& token) const {
  return Search(token, nullptr, nullptr);
}

std::vector<Bytes> EncryptedMultimap::Search(const KeywordKeys& token,
                                             const LabelGate* gate,
                                             SearchStats* stats) const {
  std::vector<Bytes> results;
  SearchEntries(
      token, [this](const Label& label) { return dict_.Find(label); },
      results, gate, stats);
  return results;
}

Bytes EncodeIdPayload(uint64_t id) {
  Bytes out;
  AppendUint64(out, id);
  return out;
}

std::optional<uint64_t> DecodeIdPayload(const Bytes& payload) {
  if (payload.size() != 8) return std::nullopt;
  return ReadUint64(payload, 0);
}

}  // namespace rsse::sse
