#include "sse/encrypted_multimap.h"

#include <cstdlib>
#include <thread>

#include "crypto/aes.h"

namespace rsse::sse {

namespace {

constexpr uint8_t kRealMarker = 0x00;
constexpr uint8_t kDummyMarker = 0x01;

Bytes CounterInput(uint64_t c) {
  Bytes in;
  AppendUint64(in, c);
  return in;
}

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("RSSE_BUILD_THREADS"); env != nullptr) {
    int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 1;
}

/// One encrypted dictionary entry before insertion.
struct Entry {
  Bytes label;
  Bytes value;
};

/// Encrypts the postings of one keyword into dictionary entries.
Status EncryptKeyword(const Bytes& keyword, const std::vector<Bytes>& payloads,
                      const KeywordKeyDeriver& deriver, uint64_t pad_quantum,
                      std::vector<Entry>& out) {
  const KeywordKeys keys = deriver.Derive(keyword);
  const crypto::Prf label_prf(keys.label_key);
  uint64_t total = payloads.size();
  if (pad_quantum > 0) {
    total = (total + pad_quantum - 1) / pad_quantum * pad_quantum;
    if (total == 0) total = pad_quantum;
  }
  for (uint64_t c = 0; c < total; ++c) {
    Bytes label =
        label_prf.EvalTrunc(CounterInput(c), crypto::kLambdaBytes);
    Bytes plaintext;
    if (c < payloads.size()) {
      plaintext.push_back(kRealMarker);
      Append(plaintext, payloads[c]);
    } else {
      plaintext.push_back(kDummyMarker);
    }
    Result<Bytes> ct = crypto::Aes128Cbc::Encrypt(keys.value_key, plaintext);
    if (!ct.ok()) return ct.status();
    out.push_back(Entry{std::move(label), std::move(ct).value()});
  }
  return Status::Ok();
}

}  // namespace

Result<EncryptedMultimap> EncryptedMultimap::Build(
    const PlainMultimap& postings, const KeywordKeyDeriver& deriver,
    const PaddingPolicy& padding) {
  BuildOptions options;
  options.padding = padding;
  return BuildWithOptions(postings, deriver, options);
}

Result<EncryptedMultimap> EncryptedMultimap::BuildWithOptions(
    const PlainMultimap& postings, const KeywordKeyDeriver& deriver,
    const BuildOptions& options) {
  const int threads = ResolveThreads(options.threads);

  // Stable keyword order for sharding.
  std::vector<const std::pair<const Bytes, std::vector<Bytes>>*> items;
  items.reserve(postings.size());
  for (const auto& kv : postings) items.push_back(&kv);

  std::vector<std::vector<Entry>> shards(static_cast<size_t>(threads));
  std::vector<Status> shard_status(static_cast<size_t>(threads));

  auto worker = [&](int t) {
    for (size_t i = static_cast<size_t>(t); i < items.size();
         i += static_cast<size_t>(threads)) {
      Status s = EncryptKeyword(items[i]->first, items[i]->second, deriver,
                                options.padding.quantum,
                                shards[static_cast<size_t>(t)]);
      if (!s.ok()) {
        shard_status[static_cast<size_t>(t)] = s;
        return;
      }
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (std::thread& th : pool) th.join();
  }
  for (const Status& s : shard_status) {
    if (!s.ok()) return s;
  }

  EncryptedMultimap index;
  size_t total_entries = 0;
  for (const auto& shard : shards) total_entries += shard.size();
  index.dict_.reserve(total_entries);
  for (auto& shard : shards) {
    for (Entry& e : shard) {
      index.size_bytes_ += e.label.size() + e.value.size();
      index.dict_.emplace(std::move(e.label), std::move(e.value));
    }
  }
  return index;
}

namespace {
// Blob header: magic + format version.
constexpr uint64_t kSerializeMagic = 0x52535345454d4d31ull;  // "RSSEEMM1"
}  // namespace

Bytes EncryptedMultimap::Serialize() const {
  Bytes out;
  out.reserve(16 + size_bytes_ + dict_.size() * 8);
  AppendUint64(out, kSerializeMagic);
  AppendUint64(out, dict_.size());
  for (const auto& [label, value] : dict_) {
    AppendUint32(out, static_cast<uint32_t>(label.size()));
    Append(out, label);
    AppendUint32(out, static_cast<uint32_t>(value.size()));
    Append(out, value);
  }
  return out;
}

Result<EncryptedMultimap> EncryptedMultimap::Deserialize(const Bytes& blob) {
  if (blob.size() < 16 || ReadUint64(blob, 0) != kSerializeMagic) {
    return Status::InvalidArgument("not an EncryptedMultimap blob");
  }
  const uint64_t count = ReadUint64(blob, 8);
  // Each entry needs at least 8 bytes of length prefixes; reject impossible
  // counts before reserving (a corrupt header must not drive allocation).
  if (count > (blob.size() - 16) / 8) {
    return Status::InvalidArgument("implausible entry count in blob header");
  }
  EncryptedMultimap index;
  index.dict_.reserve(count);
  size_t offset = 16;
  for (uint64_t i = 0; i < count; ++i) {
    if (offset + 4 > blob.size()) {
      return Status::InvalidArgument("truncated blob (label length)");
    }
    uint32_t label_len = ReadUint32(blob, offset);
    offset += 4;
    if (offset + label_len > blob.size()) {
      return Status::InvalidArgument("truncated blob (label)");
    }
    Bytes label(blob.begin() + static_cast<long>(offset),
                blob.begin() + static_cast<long>(offset + label_len));
    offset += label_len;
    if (offset + 4 > blob.size()) {
      return Status::InvalidArgument("truncated blob (value length)");
    }
    uint32_t value_len = ReadUint32(blob, offset);
    offset += 4;
    if (offset + value_len > blob.size()) {
      return Status::InvalidArgument("truncated blob (value)");
    }
    Bytes value(blob.begin() + static_cast<long>(offset),
                blob.begin() + static_cast<long>(offset + value_len));
    offset += value_len;
    index.size_bytes_ += label.size() + value.size();
    index.dict_.emplace(std::move(label), std::move(value));
  }
  if (offset != blob.size()) {
    return Status::InvalidArgument("trailing bytes after blob payload");
  }
  return index;
}

std::vector<Bytes> EncryptedMultimap::Search(const KeywordKeys& token) const {
  std::vector<Bytes> results;
  const crypto::Prf label_prf(token.label_key);
  for (uint64_t c = 0;; ++c) {
    Bytes label = label_prf.EvalTrunc(CounterInput(c), kLabelBytes);
    auto it = dict_.find(label);
    if (it == dict_.end()) break;
    Result<Bytes> plaintext =
        crypto::Aes128Cbc::Decrypt(token.value_key, it->second);
    if (!plaintext.ok() || plaintext->empty()) break;  // wrong token
    if ((*plaintext)[0] == kDummyMarker) continue;
    results.emplace_back(plaintext->begin() + 1, plaintext->end());
  }
  return results;
}

Bytes EncodeIdPayload(uint64_t id) {
  Bytes out;
  AppendUint64(out, id);
  return out;
}

std::optional<uint64_t> DecodeIdPayload(const Bytes& payload) {
  if (payload.size() != 8) return std::nullopt;
  return ReadUint64(payload, 0);
}

}  // namespace rsse::sse
