#ifndef RSSE_CRYPTO_HMAC_PRF_H_
#define RSSE_CRYPTO_HMAC_PRF_H_

#include <memory>

#include "common/bytes.h"

namespace rsse::crypto {

/// Security parameter in bytes: 128-bit keys/seeds, matching the paper's
/// AES-128 data encryption and typical SSE instantiations.
inline constexpr size_t kLambdaBytes = 16;

/// One-shot HMAC-SHA-512 (the paper's PRF instantiation). Returns the full
/// 64-byte MAC.
Bytes HmacSha512(const Bytes& key, const Bytes& data);

/// One-shot HMAC-SHA-256 (32 bytes); used where shorter outputs suffice.
Bytes HmacSha256(const Bytes& key, const Bytes& data);

/// Keyed PRF `F_k : {0,1}* -> {0,1}^512` backed by HMAC-SHA-512 with a
/// pre-initialized context (the key schedule is computed once, then each
/// evaluation duplicates the context — significantly faster than one-shot
/// HMAC when the same key evaluates many inputs, which is the hot path of
/// index construction and token generation).
class Prf {
 public:
  /// Creates a PRF under `key`. Any key length is accepted (HMAC pads).
  explicit Prf(const Bytes& key);
  ~Prf();

  Prf(const Prf&) = delete;
  Prf& operator=(const Prf&) = delete;
  Prf(Prf&&) noexcept;
  Prf& operator=(Prf&&) noexcept;

  /// Full 64-byte PRF output on `input`.
  Bytes Eval(const Bytes& input) const;

  /// PRF output truncated to `out_len` bytes (out_len <= 64).
  Bytes EvalTrunc(const Bytes& input, size_t out_len) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rsse::crypto

#endif  // RSSE_CRYPTO_HMAC_PRF_H_
