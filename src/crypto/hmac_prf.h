#ifndef RSSE_CRYPTO_HMAC_PRF_H_
#define RSSE_CRYPTO_HMAC_PRF_H_

#include <memory>

#include "common/bytes.h"
#include "common/status.h"

namespace rsse::crypto {

/// Security parameter in bytes: 128-bit keys/seeds, matching the paper's
/// AES-128 data encryption and typical SSE instantiations.
inline constexpr size_t kLambdaBytes = 16;
static_assert(kLambdaBytes == kLabelBytes,
              "Label must hold exactly one PRF output truncated to lambda");

/// One-shot HMAC-SHA-512 (the paper's PRF instantiation). Returns the full
/// 64-byte MAC, or an error when the OpenSSL HMAC provider fails.
Result<Bytes> HmacSha512(const Bytes& key, const Bytes& data);

/// One-shot HMAC-SHA-256 (32 bytes); used where shorter outputs suffice.
Result<Bytes> HmacSha256(const Bytes& key, const Bytes& data);

/// Keyed PRF `F_k : {0,1}* -> {0,1}^512` backed by HMAC-SHA-512. The
/// ipad/opad midstates are computed once at construction; each evaluation
/// copies them onto the stack and runs only the remaining two SHA-512
/// compressions — roughly 2x faster than per-call EVP HMAC, with zero
/// allocation. All methods are const and thread-safe (evaluations share
/// nothing mutable).
class Prf {
 public:
  /// Maximum output length of one evaluation (SHA-512 MAC).
  static constexpr size_t kMaxOutputBytes = 64;

  /// Creates a PRF under `key`. Any key length is accepted (HMAC pads).
  /// On OpenSSL failure the instance is unusable: `ok()` is false,
  /// `Eval`/`EvalTrunc` return empty and `EvalInto` returns false. Call
  /// sites that need to propagate the error use `Create`.
  explicit Prf(const Bytes& key);
  ~Prf();

  /// Factory that surfaces OpenSSL initialization failures as a Status.
  static Result<Prf> Create(const Bytes& key);

  Prf(const Prf&) = delete;
  Prf& operator=(const Prf&) = delete;
  Prf(Prf&&) noexcept;
  Prf& operator=(Prf&&) noexcept;

  /// False when construction failed (OpenSSL provider unavailable).
  bool ok() const;

  /// Full 64-byte PRF output on `input`.
  Bytes Eval(const Bytes& input) const;

  /// PRF output truncated to `out_len` bytes (out_len <= 64).
  Bytes EvalTrunc(const Bytes& input, size_t out_len) const;

  /// Writes the first `out.size()` bytes (<= 64) of the PRF output into
  /// caller-owned storage; never allocates. Returns false on OpenSSL
  /// failure or when `out` is oversized.
  bool EvalInto(ConstByteSpan input, ByteSpan out) const;

  /// Fused counter evaluation: computes F(key, BE64(start + i)) for
  /// i = 0..count-1 and writes the first `out_len` bytes of each output
  /// packed at `out[i * out_len]` (`out.size() >= count * out_len`).
  /// Bit-identical to `EvalInto` on each 8-byte big-endian counter, but the
  /// key midstates are reused across the whole run and, on x86-64 hosts,
  /// 8 (AVX-512) or 4 (AVX2) counter MACs are evaluated per pair of vector
  /// SHA-512 compressions (see crypto/sha512_x4.h) — this is the
  /// label-derivation hot path of index build and counter-probe search.
  /// Returns false on failure (no bytes are trustworthy then).
  bool EvalCountersInto(uint64_t start, size_t count, ByteSpan out,
                        size_t out_len) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rsse::crypto

#endif  // RSSE_CRYPTO_HMAC_PRF_H_
