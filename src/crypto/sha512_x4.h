#ifndef RSSE_CRYPTO_SHA512_X4_H_
#define RSSE_CRYPTO_SHA512_X4_H_

#include <cstddef>
#include <cstdint>

namespace rsse::crypto {

/// Multi-lane fused HMAC-SHA-512 over consecutive counters, vectorized
/// with AVX-512 (8 lanes: vprorq rotates, vpternlogq bit-selects) or AVX2
/// (4 lanes) where the host supports them. This is the engine behind
/// `Prf::EvalCountersInto`, the label-derivation hot path of index build
/// and counter-probe search: per keyword the HMAC ipad/opad midstates are
/// fixed, so F(K1, c) for a run of counters is a pile of independent
/// single-block SHA-512 compressions — and because SHA-512 reads message
/// words big-endian, the 8-byte big-endian counter is message word 0
/// verbatim and the inner digest words are the outer message words
/// verbatim, so each evaluation stays entirely in registers.
///
/// Outputs are bit-identical to scalar HMAC-SHA-512 (pinned against the
/// OpenSSL-backed `Prf::EvalInto` by the unit tests).

/// Counters evaluated per `HmacSha512CounterLanesEval` call: 8 (AVX-512),
/// 4 (AVX2) or 0 (no vector kernel on this host — callers must use their
/// scalar path). Detected once at runtime; RSSE_NO_AVX512=1 caps the tier
/// at 4 lanes (pins the AVX2 kernel on AVX-512 hosts) and RSSE_NO_AVX2=1
/// forces 0 (scalar everywhere).
size_t HmacSha512CounterLanes();

/// Evaluates HMAC-SHA-512 on the 8-byte big-endian encodings of counters
/// `start .. start + HmacSha512CounterLanes() - 1` under the given SHA-512
/// midstates (the hash states after absorbing the 128-byte ipad/opad key
/// blocks). Lane `l`'s leading `out_len` (<= 64) MAC bytes are written at
/// `out + l * out_stride`. Must not be called when lanes() is 0.
void HmacSha512CounterLanesEval(const uint64_t inner_state[8],
                                const uint64_t outer_state[8], uint64_t start,
                                uint8_t* out, size_t out_len,
                                size_t out_stride);

}  // namespace rsse::crypto

#endif  // RSSE_CRYPTO_SHA512_X4_H_
