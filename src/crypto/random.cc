#include "crypto/random.h"

#include <openssl/rand.h>
#include <pthread.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "crypto/hmac_prf.h"

namespace rsse::crypto {

namespace {

constexpr size_t kPoolBytes = 4096;

struct EntropyPool {
  uint8_t buf[kPoolBytes];
  size_t pos = kPoolBytes;  // empty until first refill
};

EntropyPool& ThreadPool() {
  thread_local EntropyPool pool;
  return pool;
}

/// OpenSSL reseeds its DRBG across fork(), but bytes already buffered in
/// our user-space pool would be replayed identically in parent and child
/// (duplicate IVs/keys). Drop the forking thread's pool in the child —
/// the only thread that survives a fork.
void DropPoolInChild() {
  EntropyPool& pool = ThreadPool();
  std::memset(pool.buf, 0, sizeof(pool.buf));
  pool.pos = kPoolBytes;
}

[[noreturn]] void DieEntropyFailure() {
  std::fputs("rsse: RAND_bytes failed; no secure entropy available\n",
             stderr);
  std::abort();
}

}  // namespace

void SecureRandomInto(ByteSpan out) {
  if (out.empty()) return;
  if (out.size() > kPoolBytes) {
    if (RAND_bytes(out.data(), static_cast<int>(out.size())) != 1) {
      DieEntropyFailure();
    }
    return;
  }
  static const int atfork_registered =
      pthread_atfork(nullptr, nullptr, DropPoolInChild);
  (void)atfork_registered;
  EntropyPool& pool = ThreadPool();
  if (pool.pos + out.size() > kPoolBytes) {
    if (RAND_bytes(pool.buf, static_cast<int>(kPoolBytes)) != 1) {
      DieEntropyFailure();
    }
    pool.pos = 0;
  }
  std::memcpy(out.data(), pool.buf + pool.pos, out.size());
  // Scrub consumed bytes so a later memory disclosure cannot replay IVs
  // that already left the pool.
  std::memset(pool.buf + pool.pos, 0, out.size());
  pool.pos += out.size();
}

Bytes SecureRandom(size_t n) {
  Bytes out(n);
  SecureRandomInto(out);
  return out;
}

Bytes GenerateKey() { return SecureRandom(kLambdaBytes); }

}  // namespace rsse::crypto
