#include "crypto/random.h"

#include <openssl/rand.h>

#include "crypto/hmac_prf.h"

namespace rsse::crypto {

Bytes SecureRandom(size_t n) {
  Bytes out(n);
  if (n > 0) RAND_bytes(out.data(), static_cast<int>(n));
  return out;
}

Bytes GenerateKey() { return SecureRandom(kLambdaBytes); }

}  // namespace rsse::crypto
