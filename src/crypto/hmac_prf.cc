#include "crypto/hmac_prf.h"

#include <openssl/core_names.h>
#include <openssl/evp.h>

#include <cstring>

namespace rsse::crypto {

namespace {

EVP_MAC* HmacAlgorithm() {
  // Fetched once and intentionally never freed (trivial-destruction rule
  // for process-lifetime singletons).
  static EVP_MAC* mac = EVP_MAC_fetch(nullptr, "HMAC", nullptr);
  return mac;
}

/// Creates a keyed HMAC context for `digest_name`.
EVP_MAC_CTX* NewKeyedContext(const Bytes& key, const char* digest_name) {
  EVP_MAC_CTX* ctx = EVP_MAC_CTX_new(HmacAlgorithm());
  OSSL_PARAM params[] = {
      OSSL_PARAM_construct_utf8_string(OSSL_MAC_PARAM_DIGEST,
                                       const_cast<char*>(digest_name), 0),
      OSSL_PARAM_construct_end(),
  };
  EVP_MAC_init(ctx, key.data(), key.size(), params);
  return ctx;
}

Bytes OneShot(const Bytes& key, const Bytes& data, const char* digest_name,
              size_t mac_len) {
  EVP_MAC_CTX* ctx = NewKeyedContext(key, digest_name);
  Bytes out(mac_len);
  size_t out_len = 0;
  EVP_MAC_update(ctx, data.data(), data.size());
  EVP_MAC_final(ctx, out.data(), &out_len, out.size());
  out.resize(out_len);
  EVP_MAC_CTX_free(ctx);
  return out;
}

}  // namespace

Bytes HmacSha512(const Bytes& key, const Bytes& data) {
  return OneShot(key, data, "SHA512", 64);
}

Bytes HmacSha256(const Bytes& key, const Bytes& data) {
  return OneShot(key, data, "SHA256", 32);
}

struct Prf::Impl {
  EVP_MAC_CTX* template_ctx = nullptr;
};

Prf::Prf(const Bytes& key) : impl_(std::make_unique<Impl>()) {
  impl_->template_ctx = NewKeyedContext(key, "SHA512");
}

Prf::~Prf() {
  if (impl_ != nullptr && impl_->template_ctx != nullptr) {
    EVP_MAC_CTX_free(impl_->template_ctx);
  }
}

Prf::Prf(Prf&&) noexcept = default;
Prf& Prf::operator=(Prf&&) noexcept = default;

Bytes Prf::Eval(const Bytes& input) const {
  EVP_MAC_CTX* ctx = EVP_MAC_CTX_dup(impl_->template_ctx);
  Bytes out(64);
  size_t out_len = 0;
  EVP_MAC_update(ctx, input.data(), input.size());
  EVP_MAC_final(ctx, out.data(), &out_len, out.size());
  out.resize(out_len);
  EVP_MAC_CTX_free(ctx);
  return out;
}

Bytes Prf::EvalTrunc(const Bytes& input, size_t out_len) const {
  Bytes out = Eval(input);
  if (out_len < out.size()) out.resize(out_len);
  return out;
}

}  // namespace rsse::crypto
