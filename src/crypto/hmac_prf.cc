// The `Prf` hot path deliberately uses the low-level SHA512_* API (cached
// ipad/opad midstates, stack contexts): it evaluates ~500 ns/call vs ~1 µs
// through EVP_MAC, with zero allocation and full thread-safety. Outputs are
// bit-identical to HMAC-SHA-512 (pinned by the RFC 4231 KATs).
#define OPENSSL_SUPPRESS_DEPRECATED

#include "crypto/hmac_prf.h"

#include <openssl/core_names.h>
#include <openssl/evp.h>
#include <openssl/sha.h>

#include <cstring>

#include "crypto/sha512_x4.h"

namespace rsse::crypto {

namespace {

constexpr size_t kSha512BlockBytes = 128;

EVP_MAC* HmacAlgorithm() {
  // Fetched once and intentionally never freed (trivial-destruction rule
  // for process-lifetime singletons).
  static EVP_MAC* mac = EVP_MAC_fetch(nullptr, "HMAC", nullptr);
  return mac;
}

/// Per-thread context reused across all one-shot evaluations: re-keying an
/// existing context avoids the alloc/free pair per call. Returns nullptr
/// on allocation or provider failure so callers can propagate the error
/// instead of dereferencing a dead context.
struct MacCtxHolder {
  EVP_MAC_CTX* ctx = nullptr;

  ~MacCtxHolder() {
    if (ctx != nullptr) EVP_MAC_CTX_free(ctx);
  }
};

EVP_MAC_CTX* ThreadOneShotContext(const Bytes& key, const char* digest_name) {
  thread_local MacCtxHolder holder;
  EVP_MAC_CTX*& ctx = holder.ctx;
  if (ctx == nullptr) {
    EVP_MAC* mac = HmacAlgorithm();
    if (mac == nullptr) return nullptr;
    ctx = EVP_MAC_CTX_new(mac);
    if (ctx == nullptr) return nullptr;
  }
  OSSL_PARAM params[] = {
      OSSL_PARAM_construct_utf8_string(OSSL_MAC_PARAM_DIGEST,
                                       const_cast<char*>(digest_name), 0),
      OSSL_PARAM_construct_end(),
  };
  if (EVP_MAC_init(ctx, key.data(), key.size(), params) != 1) return nullptr;
  return ctx;
}

Result<Bytes> OneShot(const Bytes& key, const Bytes& data,
                      const char* digest_name, size_t mac_len) {
  EVP_MAC_CTX* ctx = ThreadOneShotContext(key, digest_name);
  if (ctx == nullptr) {
    return Status::Internal("OpenSSL HMAC context initialization failed");
  }
  Bytes out(mac_len);
  size_t out_len = 0;
  if (EVP_MAC_update(ctx, data.data(), data.size()) != 1 ||
      EVP_MAC_final(ctx, out.data(), &out_len, out.size()) != 1) {
    return Status::Internal("OpenSSL HMAC evaluation failed");
  }
  out.resize(out_len);
  return out;
}

}  // namespace

Result<Bytes> HmacSha512(const Bytes& key, const Bytes& data) {
  return OneShot(key, data, "SHA512", 64);
}

Result<Bytes> HmacSha256(const Bytes& key, const Bytes& data) {
  return OneShot(key, data, "SHA256", 32);
}

struct Prf::Impl {
  /// SHA-512 midstates after absorbing the padded key XOR ipad / opad —
  /// computed once at construction. An evaluation copies a midstate onto
  /// the stack and runs the remaining one (or two) compressions there, so
  /// evaluations neither allocate nor share mutable state.
  SHA512_CTX inner;
  SHA512_CTX outer;
  bool valid = false;
};

Prf::Prf(const Bytes& key) : impl_(std::make_unique<Impl>()) {
  // HMAC key preparation: keys longer than the block are hashed first,
  // shorter ones zero-padded.
  uint8_t block[kSha512BlockBytes] = {0};
  if (key.size() > kSha512BlockBytes) {
    SHA512_CTX kc;
    if (SHA512_Init(&kc) != 1 ||
        SHA512_Update(&kc, key.data(), key.size()) != 1 ||
        SHA512_Final(block, &kc) != 1) {
      return;
    }
  } else if (!key.empty()) {
    std::memcpy(block, key.data(), key.size());
  }
  uint8_t pad[kSha512BlockBytes];
  for (size_t i = 0; i < kSha512BlockBytes; ++i) {
    pad[i] = static_cast<uint8_t>(block[i] ^ 0x36);
  }
  if (SHA512_Init(&impl_->inner) != 1 ||
      SHA512_Update(&impl_->inner, pad, sizeof(pad)) != 1) {
    return;
  }
  for (size_t i = 0; i < kSha512BlockBytes; ++i) {
    pad[i] = static_cast<uint8_t>(block[i] ^ 0x5c);
  }
  if (SHA512_Init(&impl_->outer) != 1 ||
      SHA512_Update(&impl_->outer, pad, sizeof(pad)) != 1) {
    return;
  }
  impl_->valid = true;
}

Prf::~Prf() = default;

Result<Prf> Prf::Create(const Bytes& key) {
  Prf prf(key);
  if (!prf.ok()) {
    return Status::Internal("HMAC-SHA-512 PRF initialization failed");
  }
  return prf;
}

Prf::Prf(Prf&&) noexcept = default;
Prf& Prf::operator=(Prf&&) noexcept = default;

bool Prf::ok() const { return impl_ != nullptr && impl_->valid; }

bool Prf::EvalInto(ConstByteSpan input, ByteSpan out) const {
  if (out.size() > kMaxOutputBytes || !ok()) return false;
  uint8_t mac[kMaxOutputBytes];
  SHA512_CTX ctx = impl_->inner;
  if (SHA512_Update(&ctx, input.data(), input.size()) != 1 ||
      SHA512_Final(mac, &ctx) != 1) {
    return false;
  }
  ctx = impl_->outer;
  if (SHA512_Update(&ctx, mac, sizeof(mac)) != 1 ||
      SHA512_Final(mac, &ctx) != 1) {
    return false;
  }
  std::memcpy(out.data(), mac, out.size());
  return true;
}

bool Prf::EvalCountersInto(uint64_t start, size_t count, ByteSpan out,
                           size_t out_len) const {
  if (!ok() || out_len == 0 || out_len > kMaxOutputBytes) return false;
  if (out.size() < count * out_len) return false;
  size_t i = 0;
  if (const size_t lanes = HmacSha512CounterLanes(); lanes != 0) {
    // The midstates' hash words feed the vector kernel directly; `lanes`
    // counter MACs per pair of vector compressions. (Copied out because
    // OpenSSL's SHA_LONG64 is a distinct 64-bit type from uint64_t.)
    uint64_t inner_h[8];
    uint64_t outer_h[8];
    for (int w = 0; w < 8; ++w) {
      inner_h[w] = impl_->inner.h[w];
      outer_h[w] = impl_->outer.h[w];
    }
    for (; i + lanes <= count; i += lanes) {
      HmacSha512CounterLanesEval(inner_h, outer_h, start + i,
                                 out.data() + i * out_len, out_len, out_len);
    }
  }
  // Scalar tail (and the whole run on hosts without the x4 kernel).
  for (; i < count; ++i) {
    uint8_t counter[8];
    const uint64_t c = start + i;
    for (int b = 0; b < 8; ++b) {
      counter[b] = static_cast<uint8_t>(c >> (56 - 8 * b));
    }
    if (!EvalInto(ConstByteSpan(counter, sizeof(counter)),
                  ByteSpan(out.data() + i * out_len, out_len))) {
      return false;
    }
  }
  return true;
}

Bytes Prf::Eval(const Bytes& input) const {
  Bytes out(kMaxOutputBytes);
  if (!EvalInto(input, out)) return {};
  return out;
}

Bytes Prf::EvalTrunc(const Bytes& input, size_t out_len) const {
  Bytes out = Eval(input);
  if (out_len < out.size()) out.resize(out_len);
  return out;
}

}  // namespace rsse::crypto
