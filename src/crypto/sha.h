#ifndef RSSE_CRYPTO_SHA_H_
#define RSSE_CRYPTO_SHA_H_

#include "common/bytes.h"

namespace rsse::crypto {

/// One-shot hash functions (OpenSSL EVP). The paper uses SHA-1 for hash
/// computations (Bloom filters in the PB baseline) and SHA-512 inside the
/// HMAC PRF/GGM evaluations.

/// SHA-1 digest (20 bytes).
Bytes Sha1(const Bytes& data);

/// SHA-256 digest (32 bytes).
Bytes Sha256(const Bytes& data);

/// SHA-256 digest written into caller storage (exactly 32 bytes); the
/// allocation-free variant for per-leaf key derivation. Returns false on
/// OpenSSL failure.
bool Sha256Into(ConstByteSpan data, uint8_t out[32]);

/// SHA-512 digest (64 bytes).
Bytes Sha512(const Bytes& data);

}  // namespace rsse::crypto

#endif  // RSSE_CRYPTO_SHA_H_
