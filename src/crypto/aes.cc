#include "crypto/aes.h"

#include <openssl/evp.h>

#include "crypto/random.h"

namespace rsse::crypto {

namespace {

/// Per-thread cipher context, allocated once and re-initialized per call.
/// Index construction encrypts millions of entries; avoiding a context
/// allocation per entry is a significant win and is thread-safe.
EVP_CIPHER_CTX* ThreadCipherContext() {
  thread_local EVP_CIPHER_CTX* ctx = EVP_CIPHER_CTX_new();
  return ctx;
}

}  // namespace

Result<Bytes> Aes128Cbc::EncryptWithIv(const Bytes& key, const Bytes& iv,
                                       const Bytes& plaintext) {
  if (key.size() != kKeyBytes) {
    return Status::InvalidArgument("AES-128 key must be 16 bytes");
  }
  if (iv.size() != kBlockBytes) {
    return Status::InvalidArgument("AES-CBC IV must be 16 bytes");
  }
  EVP_CIPHER_CTX* ctx = ThreadCipherContext();
  if (ctx == nullptr) return Status::Internal("EVP_CIPHER_CTX_new failed");
  Bytes out = iv;
  out.resize(iv.size() + plaintext.size() + kBlockBytes);
  int len1 = 0;
  int len2 = 0;
  bool ok =
      EVP_EncryptInit_ex(ctx, EVP_aes_128_cbc(), nullptr, key.data(),
                         iv.data()) == 1 &&
      EVP_EncryptUpdate(ctx, out.data() + iv.size(), &len1, plaintext.data(),
                        static_cast<int>(plaintext.size())) == 1 &&
      EVP_EncryptFinal_ex(ctx, out.data() + iv.size() + len1, &len2) == 1;
  EVP_CIPHER_CTX_reset(ctx);
  if (!ok) return Status::Internal("AES-CBC encryption failed");
  out.resize(iv.size() + static_cast<size_t>(len1 + len2));
  return out;
}

Result<Bytes> Aes128Cbc::Encrypt(const Bytes& key, const Bytes& plaintext) {
  return EncryptWithIv(key, SecureRandom(kBlockBytes), plaintext);
}

Result<Bytes> Aes128Cbc::Decrypt(const Bytes& key, const Bytes& ciphertext) {
  if (key.size() != kKeyBytes) {
    return Status::InvalidArgument("AES-128 key must be 16 bytes");
  }
  if (ciphertext.size() < 2 * kBlockBytes ||
      (ciphertext.size() - kBlockBytes) % kBlockBytes != 0) {
    return Status::InvalidArgument("malformed AES-CBC ciphertext");
  }
  EVP_CIPHER_CTX* ctx = ThreadCipherContext();
  if (ctx == nullptr) return Status::Internal("EVP_CIPHER_CTX_new failed");
  const uint8_t* iv = ciphertext.data();
  const uint8_t* body = ciphertext.data() + kBlockBytes;
  const size_t body_len = ciphertext.size() - kBlockBytes;
  Bytes out(body_len);
  int len1 = 0;
  int len2 = 0;
  bool ok = EVP_DecryptInit_ex(ctx, EVP_aes_128_cbc(), nullptr, key.data(),
                               iv) == 1 &&
            EVP_DecryptUpdate(ctx, out.data(), &len1, body,
                              static_cast<int>(body_len)) == 1 &&
            EVP_DecryptFinal_ex(ctx, out.data() + len1, &len2) == 1;
  EVP_CIPHER_CTX_reset(ctx);
  if (!ok) return Status::InvalidArgument("AES-CBC decryption failed (bad key or padding)");
  out.resize(static_cast<size_t>(len1 + len2));
  return out;
}

size_t Aes128Cbc::CiphertextSize(size_t plaintext_len) {
  return kBlockBytes + (plaintext_len / kBlockBytes + 1) * kBlockBytes;
}

}  // namespace rsse::crypto
