#include "crypto/aes.h"

#include <openssl/evp.h>

#include <cstring>

#include "crypto/random.h"

namespace rsse::crypto {

namespace {

/// Per-thread cipher context plus the key its schedule was computed for.
/// When consecutive calls reuse the key (every counter probe of a keyword
/// does), re-init only sets the IV and skips the key schedule; a failed
/// operation drops the cache so the context is rebuilt from scratch.
/// The destructor releases the context when its thread exits (search
/// workers are short-lived threads).
struct CachedCipherCtx {
  EVP_CIPHER_CTX* ctx = nullptr;
  uint8_t key[Aes128Cbc::kKeyBytes] = {};
  bool keyed = false;

  ~CachedCipherCtx() {
    if (ctx != nullptr) EVP_CIPHER_CTX_free(ctx);
  }
};

CachedCipherCtx& ThreadEncryptCtx() {
  thread_local CachedCipherCtx cached;
  return cached;
}

CachedCipherCtx& ThreadDecryptCtx() {
  thread_local CachedCipherCtx cached;
  return cached;
}

/// Initializes `cached` for `key`/`iv` in the given direction, reusing the
/// cached key schedule when possible. Returns false on OpenSSL failure.
bool InitCached(CachedCipherCtx& cached, ConstByteSpan key, const uint8_t* iv,
                bool encrypt) {
  if (cached.ctx == nullptr) {
    cached.ctx = EVP_CIPHER_CTX_new();
    if (cached.ctx == nullptr) return false;
  }
  auto init = encrypt ? EVP_EncryptInit_ex : EVP_DecryptInit_ex;
  if (cached.keyed &&
      std::memcmp(cached.key, key.data(), Aes128Cbc::kKeyBytes) == 0) {
    if (init(cached.ctx, nullptr, nullptr, nullptr, iv) == 1) return true;
    cached.keyed = false;  // fall through to a full re-init
  }
  if (init(cached.ctx, EVP_aes_128_cbc(), nullptr, key.data(), iv) != 1) {
    cached.keyed = false;
    return false;
  }
  std::memcpy(cached.key, key.data(), Aes128Cbc::kKeyBytes);
  cached.keyed = true;
  return true;
}

}  // namespace

Status Aes128Cbc::EncryptWithIvInto(ConstByteSpan key, ConstByteSpan iv,
                                    ConstByteSpan plaintext, ByteSpan out,
                                    size_t* written) {
  if (key.size() != kKeyBytes) {
    return Status::InvalidArgument("AES-128 key must be 16 bytes");
  }
  if (iv.size() != kBlockBytes) {
    return Status::InvalidArgument("AES-CBC IV must be 16 bytes");
  }
  if (out.size() < CiphertextSize(plaintext.size())) {
    return Status::InvalidArgument("AES-CBC output buffer too small");
  }
  CachedCipherCtx& cached = ThreadEncryptCtx();
  if (!InitCached(cached, key, iv.data(), /*encrypt=*/true)) {
    return Status::Internal("AES-CBC encrypt init failed");
  }
  std::memcpy(out.data(), iv.data(), kBlockBytes);
  int len1 = 0;
  int len2 = 0;
  if (EVP_EncryptUpdate(cached.ctx, out.data() + kBlockBytes, &len1,
                        plaintext.data(),
                        static_cast<int>(plaintext.size())) != 1 ||
      EVP_EncryptFinal_ex(cached.ctx, out.data() + kBlockBytes + len1,
                          &len2) != 1) {
    cached.keyed = false;
    EVP_CIPHER_CTX_reset(cached.ctx);
    return Status::Internal("AES-CBC encryption failed");
  }
  *written = kBlockBytes + static_cast<size_t>(len1 + len2);
  return Status::Ok();
}

Status Aes128Cbc::EncryptInto(ConstByteSpan key, ConstByteSpan plaintext,
                              ByteSpan out, size_t* written) {
  uint8_t iv[kBlockBytes];
  SecureRandomInto(iv);
  return EncryptWithIvInto(key, iv, plaintext, out, written);
}

Status Aes128Cbc::DecryptInto(ConstByteSpan key, ConstByteSpan ciphertext,
                              ByteSpan out, size_t* written) {
  if (key.size() != kKeyBytes) {
    return Status::InvalidArgument("AES-128 key must be 16 bytes");
  }
  if (ciphertext.size() < 2 * kBlockBytes ||
      (ciphertext.size() - kBlockBytes) % kBlockBytes != 0) {
    return Status::InvalidArgument("malformed AES-CBC ciphertext");
  }
  const size_t body_len = ciphertext.size() - kBlockBytes;
  if (out.size() < body_len) {
    return Status::InvalidArgument("AES-CBC output buffer too small");
  }
  CachedCipherCtx& cached = ThreadDecryptCtx();
  if (!InitCached(cached, key, ciphertext.data(), /*encrypt=*/false)) {
    return Status::Internal("AES-CBC decrypt init failed");
  }
  int len1 = 0;
  int len2 = 0;
  if (EVP_DecryptUpdate(cached.ctx, out.data(), &len1,
                        ciphertext.data() + kBlockBytes,
                        static_cast<int>(body_len)) != 1 ||
      EVP_DecryptFinal_ex(cached.ctx, out.data() + len1, &len2) != 1) {
    // Wrong key or padding: expected during SSE search under a foreign
    // token. Drop the cached schedule; the context state is undefined.
    cached.keyed = false;
    EVP_CIPHER_CTX_reset(cached.ctx);
    return Status::InvalidArgument(
        "AES-CBC decryption failed (bad key or padding)");
  }
  *written = static_cast<size_t>(len1 + len2);
  return Status::Ok();
}

Result<Bytes> Aes128Cbc::EncryptWithIv(const Bytes& key, const Bytes& iv,
                                       const Bytes& plaintext) {
  Bytes out(CiphertextSize(plaintext.size()));
  size_t written = 0;
  Status s = EncryptWithIvInto(key, iv, plaintext, out, &written);
  if (!s.ok()) return s;
  out.resize(written);
  return out;
}

Result<Bytes> Aes128Cbc::Encrypt(const Bytes& key, const Bytes& plaintext) {
  Bytes out(CiphertextSize(plaintext.size()));
  size_t written = 0;
  Status s = EncryptInto(key, plaintext, out, &written);
  if (!s.ok()) return s;
  out.resize(written);
  return out;
}

Result<Bytes> Aes128Cbc::Decrypt(const Bytes& key, const Bytes& ciphertext) {
  if (ciphertext.size() < 2 * kBlockBytes) {
    return Status::InvalidArgument("malformed AES-CBC ciphertext");
  }
  Bytes out(ciphertext.size() - kBlockBytes);
  size_t written = 0;
  Status s = DecryptInto(key, ciphertext, out, &written);
  if (!s.ok()) return s;
  out.resize(written);
  return out;
}

size_t Aes128Cbc::CiphertextSize(size_t plaintext_len) {
  return kBlockBytes + (plaintext_len / kBlockBytes + 1) * kBlockBytes;
}

}  // namespace rsse::crypto
