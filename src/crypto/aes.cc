#include "crypto/aes.h"

#include <openssl/evp.h>

#include <algorithm>
#include <cstring>

#include "crypto/random.h"

namespace rsse::crypto {

namespace {

/// Per-thread cipher context plus the key its schedule was computed for.
/// When consecutive calls reuse the key (every counter probe of a keyword
/// does), re-init only sets the IV and skips the key schedule; a failed
/// operation drops the cache so the context is rebuilt from scratch.
/// The destructor releases the context when its thread exits (search
/// workers are short-lived threads).
struct CachedCipherCtx {
  EVP_CIPHER_CTX* ctx = nullptr;
  uint8_t key[Aes128Cbc::kKeyBytes] = {};
  bool keyed = false;

  ~CachedCipherCtx() {
    if (ctx != nullptr) EVP_CIPHER_CTX_free(ctx);
  }
};

CachedCipherCtx& ThreadEncryptCtx() {
  thread_local CachedCipherCtx cached;
  return cached;
}

CachedCipherCtx& ThreadDecryptCtx() {
  thread_local CachedCipherCtx cached;
  return cached;
}

/// Separate contexts for the batch API's raw AES-ECB passes (the CBC
/// chaining around them is scalar code): an ECB context never carries
/// stream state between multiples of the block size, so under an unchanged
/// key consecutive batches skip EVP init entirely.
CachedCipherCtx& ThreadEcbEncryptCtx() {
  thread_local CachedCipherCtx cached;
  return cached;
}

CachedCipherCtx& ThreadEcbDecryptCtx() {
  thread_local CachedCipherCtx cached;
  return cached;
}

/// Initializes `cached` as a padding-free AES-128-ECB context for `key`,
/// reusing the cached key schedule when possible.
bool InitCachedEcb(CachedCipherCtx& cached, ConstByteSpan key, bool encrypt) {
  if (cached.ctx == nullptr) {
    cached.ctx = EVP_CIPHER_CTX_new();
    if (cached.ctx == nullptr) return false;
  }
  if (cached.keyed &&
      std::memcmp(cached.key, key.data(), Aes128Cbc::kKeyBytes) == 0) {
    return true;  // ECB: no per-call state to reset
  }
  auto init = encrypt ? EVP_EncryptInit_ex : EVP_DecryptInit_ex;
  if (init(cached.ctx, EVP_aes_128_ecb(), nullptr, key.data(), nullptr) != 1) {
    cached.keyed = false;
    return false;
  }
  EVP_CIPHER_CTX_set_padding(cached.ctx, 0);
  std::memcpy(cached.key, key.data(), Aes128Cbc::kKeyBytes);
  cached.keyed = true;
  return true;
}

/// Entries processed per batched column pass: bounds the stack gather
/// buffer (4 KiB) while amortizing the EVP dispatch overhead.
constexpr size_t kManyChunk = 256;

inline void Xor16(uint8_t* dst, const uint8_t* src) {
  uint64_t a;
  uint64_t b;
  std::memcpy(&a, dst, 8);
  std::memcpy(&b, src, 8);
  a ^= b;
  std::memcpy(dst, &a, 8);
  std::memcpy(&a, dst + 8, 8);
  std::memcpy(&b, src + 8, 8);
  a ^= b;
  std::memcpy(dst + 8, &a, 8);
}

/// Batched CBC encryption core. Assumes argument validation is done and
/// that block 0 of every entry's `out` slot already holds its IV; fills
/// the body blocks. Column-wise: column r gathers (plaintext block r XOR
/// previous ciphertext block) of every entry that has a block r into one
/// contiguous buffer, encrypts it with a single multi-block ECB
/// EVP_EncryptUpdate, and scatters the results — for the dominant
/// single-block-entry case that is one EVP call per kManyChunk entries.
Status EncryptManyCore(ConstByteSpan key, ConstByteSpan plaintexts,
                       std::span<const uint32_t> plain_lens, ByteSpan out) {
  constexpr size_t kB = Aes128Cbc::kBlockBytes;
  CachedCipherCtx& cached = ThreadEcbEncryptCtx();
  if (!InitCachedEcb(cached, key, /*encrypt=*/true)) {
    return Status::Internal("AES-ECB encrypt init failed");
  }
  const size_t n = plain_lens.size();
  size_t base = 0;
  size_t pt_base = 0;
  size_t ct_base = 0;
  while (base < n) {
    const size_t chunk = std::min(kManyChunk, n - base);
    // Chunk-local absolute offsets of each entry's plaintext/ciphertext.
    size_t pt_off[kManyChunk];
    size_t ct_off[kManyChunk];
    size_t pt_at = pt_base;
    size_t ct_at = ct_base;
    for (size_t j = 0; j < chunk; ++j) {
      pt_off[j] = pt_at;
      ct_off[j] = ct_at;
      pt_at += plain_lens[base + j];
      ct_at += Aes128Cbc::CiphertextSize(plain_lens[base + j]);
    }
    uint8_t gather[kManyChunk * Aes128Cbc::kBlockBytes];
    uint16_t owner[kManyChunk];
    for (size_t col = 0;; ++col) {
      size_t m = 0;
      for (size_t j = 0; j < chunk; ++j) {
        const size_t len = plain_lens[base + j];
        const size_t blocks = len / kB + 1;  // PKCS#7: always >= 1
        if (col >= blocks) continue;
        uint8_t* dst = gather + m * kB;
        const size_t pos = col * kB;
        if (col + 1 < blocks) {
          std::memcpy(dst, plaintexts.data() + pt_off[j] + pos, kB);
        } else {
          const size_t rem = len - pos;
          std::memcpy(dst, plaintexts.data() + pt_off[j] + pos, rem);
          std::memset(dst + rem, static_cast<int>(kB - rem), kB - rem);
        }
        // CBC chain: previous ciphertext block of the entry — its IV for
        // the first body block (the IV is block 0 of the entry slot).
        Xor16(dst, out.data() + ct_off[j] + col * kB);
        owner[m++] = static_cast<uint16_t>(j);
      }
      if (m == 0) break;
      int enc_len = 0;
      if (EVP_EncryptUpdate(cached.ctx, gather, &enc_len, gather,
                            static_cast<int>(m * kB)) != 1 ||
          enc_len != static_cast<int>(m * kB)) {
        cached.keyed = false;
        EVP_CIPHER_CTX_reset(cached.ctx);
        return Status::Internal("AES-ECB batch encryption failed");
      }
      for (size_t i = 0; i < m; ++i) {
        std::memcpy(out.data() + ct_off[owner[i]] + (col + 1) * kB,
                    gather + i * kB, kB);
      }
    }
    base += chunk;
    pt_base = pt_at;
    ct_base = ct_at;
  }
  return Status::Ok();
}

/// Shared validation for the batch encrypt entry points. Returns the total
/// ciphertext size, or 0 with `*status` set.
size_t ValidateMany(ConstByteSpan key, ConstByteSpan plaintexts,
                    std::span<const uint32_t> plain_lens, ByteSpan out,
                    Status* status) {
  if (key.size() != Aes128Cbc::kKeyBytes) {
    *status = Status::InvalidArgument("AES-128 key must be 16 bytes");
    return 0;
  }
  size_t pt_total = 0;
  size_t ct_total = 0;
  for (const uint32_t len : plain_lens) {
    pt_total += len;
    ct_total += Aes128Cbc::CiphertextSize(len);
  }
  if (plaintexts.size() != pt_total) {
    *status =
        Status::InvalidArgument("plaintext arena does not match the lengths");
    return 0;
  }
  if (out.size() < ct_total) {
    *status = Status::InvalidArgument("AES-CBC output buffer too small");
    return 0;
  }
  *status = Status::Ok();
  return ct_total;
}

/// Initializes `cached` for `key`/`iv` in the given direction, reusing the
/// cached key schedule when possible. Returns false on OpenSSL failure.
bool InitCached(CachedCipherCtx& cached, ConstByteSpan key, const uint8_t* iv,
                bool encrypt) {
  if (cached.ctx == nullptr) {
    cached.ctx = EVP_CIPHER_CTX_new();
    if (cached.ctx == nullptr) return false;
  }
  auto init = encrypt ? EVP_EncryptInit_ex : EVP_DecryptInit_ex;
  if (cached.keyed &&
      std::memcmp(cached.key, key.data(), Aes128Cbc::kKeyBytes) == 0) {
    if (init(cached.ctx, nullptr, nullptr, nullptr, iv) == 1) return true;
    cached.keyed = false;  // fall through to a full re-init
  }
  if (init(cached.ctx, EVP_aes_128_cbc(), nullptr, key.data(), iv) != 1) {
    cached.keyed = false;
    return false;
  }
  std::memcpy(cached.key, key.data(), Aes128Cbc::kKeyBytes);
  cached.keyed = true;
  return true;
}

}  // namespace

Status Aes128Cbc::EncryptWithIvInto(ConstByteSpan key, ConstByteSpan iv,
                                    ConstByteSpan plaintext, ByteSpan out,
                                    size_t* written) {
  if (key.size() != kKeyBytes) {
    return Status::InvalidArgument("AES-128 key must be 16 bytes");
  }
  if (iv.size() != kBlockBytes) {
    return Status::InvalidArgument("AES-CBC IV must be 16 bytes");
  }
  if (out.size() < CiphertextSize(plaintext.size())) {
    return Status::InvalidArgument("AES-CBC output buffer too small");
  }
  CachedCipherCtx& cached = ThreadEncryptCtx();
  if (!InitCached(cached, key, iv.data(), /*encrypt=*/true)) {
    return Status::Internal("AES-CBC encrypt init failed");
  }
  std::memcpy(out.data(), iv.data(), kBlockBytes);
  int len1 = 0;
  int len2 = 0;
  if (EVP_EncryptUpdate(cached.ctx, out.data() + kBlockBytes, &len1,
                        plaintext.data(),
                        static_cast<int>(plaintext.size())) != 1 ||
      EVP_EncryptFinal_ex(cached.ctx, out.data() + kBlockBytes + len1,
                          &len2) != 1) {
    cached.keyed = false;
    EVP_CIPHER_CTX_reset(cached.ctx);
    return Status::Internal("AES-CBC encryption failed");
  }
  *written = kBlockBytes + static_cast<size_t>(len1 + len2);
  return Status::Ok();
}

Status Aes128Cbc::EncryptInto(ConstByteSpan key, ConstByteSpan plaintext,
                              ByteSpan out, size_t* written) {
  uint8_t iv[kBlockBytes];
  SecureRandomInto(iv);
  return EncryptWithIvInto(key, iv, plaintext, out, written);
}

Status Aes128Cbc::DecryptInto(ConstByteSpan key, ConstByteSpan ciphertext,
                              ByteSpan out, size_t* written) {
  if (key.size() != kKeyBytes) {
    return Status::InvalidArgument("AES-128 key must be 16 bytes");
  }
  if (ciphertext.size() < 2 * kBlockBytes ||
      (ciphertext.size() - kBlockBytes) % kBlockBytes != 0) {
    return Status::InvalidArgument("malformed AES-CBC ciphertext");
  }
  const size_t body_len = ciphertext.size() - kBlockBytes;
  if (out.size() < body_len) {
    return Status::InvalidArgument("AES-CBC output buffer too small");
  }
  CachedCipherCtx& cached = ThreadDecryptCtx();
  if (!InitCached(cached, key, ciphertext.data(), /*encrypt=*/false)) {
    return Status::Internal("AES-CBC decrypt init failed");
  }
  int len1 = 0;
  int len2 = 0;
  if (EVP_DecryptUpdate(cached.ctx, out.data(), &len1,
                        ciphertext.data() + kBlockBytes,
                        static_cast<int>(body_len)) != 1 ||
      EVP_DecryptFinal_ex(cached.ctx, out.data() + len1, &len2) != 1) {
    // Wrong key or padding: expected during SSE search under a foreign
    // token. Drop the cached schedule; the context state is undefined.
    cached.keyed = false;
    EVP_CIPHER_CTX_reset(cached.ctx);
    return Status::InvalidArgument(
        "AES-CBC decryption failed (bad key or padding)");
  }
  *written = static_cast<size_t>(len1 + len2);
  return Status::Ok();
}

Result<Bytes> Aes128Cbc::EncryptWithIv(const Bytes& key, const Bytes& iv,
                                       const Bytes& plaintext) {
  Bytes out(CiphertextSize(plaintext.size()));
  size_t written = 0;
  Status s = EncryptWithIvInto(key, iv, plaintext, out, &written);
  if (!s.ok()) return s;
  out.resize(written);
  return out;
}

Result<Bytes> Aes128Cbc::Encrypt(const Bytes& key, const Bytes& plaintext) {
  Bytes out(CiphertextSize(plaintext.size()));
  size_t written = 0;
  Status s = EncryptInto(key, plaintext, out, &written);
  if (!s.ok()) return s;
  out.resize(written);
  return out;
}

Result<Bytes> Aes128Cbc::Decrypt(const Bytes& key, const Bytes& ciphertext) {
  if (ciphertext.size() < 2 * kBlockBytes) {
    return Status::InvalidArgument("malformed AES-CBC ciphertext");
  }
  Bytes out(ciphertext.size() - kBlockBytes);
  size_t written = 0;
  Status s = DecryptInto(key, ciphertext, out, &written);
  if (!s.ok()) return s;
  out.resize(written);
  return out;
}

size_t Aes128Cbc::CiphertextSize(size_t plaintext_len) {
  return kBlockBytes + (plaintext_len / kBlockBytes + 1) * kBlockBytes;
}

Status Aes128Cbc::EncryptManyWithIvsInto(ConstByteSpan key, ConstByteSpan ivs,
                                         ConstByteSpan plaintexts,
                                         std::span<const uint32_t> plain_lens,
                                         ByteSpan out, size_t* written) {
  Status status;
  const size_t ct_total = ValidateMany(key, plaintexts, plain_lens, out,
                                       &status);
  if (!status.ok()) return status;
  if (ivs.size() != plain_lens.size() * kBlockBytes) {
    return Status::InvalidArgument("need one 16-byte IV per entry");
  }
  size_t ct_off = 0;
  for (size_t i = 0; i < plain_lens.size(); ++i) {
    std::memcpy(out.data() + ct_off, ivs.data() + i * kBlockBytes,
                kBlockBytes);
    ct_off += CiphertextSize(plain_lens[i]);
  }
  status = EncryptManyCore(key, plaintexts, plain_lens, out);
  if (!status.ok()) return status;
  *written = ct_total;
  return Status::Ok();
}

Status Aes128Cbc::EncryptManyInto(ConstByteSpan key, ConstByteSpan plaintexts,
                                  std::span<const uint32_t> plain_lens,
                                  ByteSpan out, size_t* written) {
  Status status;
  const size_t ct_total = ValidateMany(key, plaintexts, plain_lens, out,
                                       &status);
  if (!status.ok()) return status;
  const size_t n = plain_lens.size();
  // One pooled draw for every IV, staged at the front of `out` (which is
  // always large enough: each entry contributes >= 32 bytes), then
  // scattered back to front into the entry headers. Entry i's header lies
  // at offset >= 32 i >= 16 i + 16, so the scatter never overwrites a
  // not-yet-moved IV.
  SecureRandomInto(ByteSpan(out.data(), n * kBlockBytes));
  size_t ct_off = ct_total;
  for (size_t i = n; i-- > 0;) {
    ct_off -= CiphertextSize(plain_lens[i]);
    if (ct_off != i * kBlockBytes) {
      std::memmove(out.data() + ct_off, out.data() + i * kBlockBytes,
                   kBlockBytes);
    }
  }
  status = EncryptManyCore(key, plaintexts, plain_lens, out);
  if (!status.ok()) return status;
  *written = ct_total;
  return Status::Ok();
}

Status Aes128Cbc::DecryptManyInto(ConstByteSpan key, ConstByteSpan cts,
                                  std::span<const uint32_t> ct_lens,
                                  ByteSpan out,
                                  std::span<uint32_t> plain_lens) {
  if (key.size() != kKeyBytes) {
    return Status::InvalidArgument("AES-128 key must be 16 bytes");
  }
  const size_t n = ct_lens.size();
  if (plain_lens.size() < n) {
    return Status::InvalidArgument("plain_lens must cover every entry");
  }
  size_t ct_total = 0;
  for (const uint32_t len : ct_lens) {
    if (len < 2 * kBlockBytes || len % kBlockBytes != 0) {
      return Status::InvalidArgument("malformed AES-CBC ciphertext");
    }
    ct_total += len;
  }
  if (cts.size() != ct_total) {
    return Status::InvalidArgument("ciphertext arena does not match lengths");
  }
  const size_t body_total = ct_total - n * kBlockBytes;
  if (out.size() < body_total) {
    return Status::InvalidArgument("AES-CBC output buffer too small");
  }
  // Gather every body block (skipping the IVs) into `out`, packed.
  size_t ct_off = 0;
  size_t out_off = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t body = ct_lens[i] - kBlockBytes;
    std::memcpy(out.data() + out_off, cts.data() + ct_off + kBlockBytes,
                body);
    ct_off += ct_lens[i];
    out_off += body;
  }
  // One in-place ECB pass over the whole batch: ECB has no cross-block
  // state, so entry boundaries are irrelevant here.
  CachedCipherCtx& cached = ThreadEcbDecryptCtx();
  if (!InitCachedEcb(cached, key, /*encrypt=*/false)) {
    return Status::Internal("AES-ECB decrypt init failed");
  }
  size_t done = 0;
  while (done < body_total) {
    // Chunked only to respect EVP's int length parameter.
    const size_t step = std::min<size_t>(body_total - done, size_t{1} << 30);
    int dec_len = 0;
    if (EVP_DecryptUpdate(cached.ctx, out.data() + done, &dec_len,
                          out.data() + done, static_cast<int>(step)) != 1 ||
        dec_len != static_cast<int>(step)) {
      cached.keyed = false;
      EVP_CIPHER_CTX_reset(cached.ctx);
      return Status::Internal("AES-ECB batch decryption failed");
    }
    done += step;
  }
  // CBC chaining (XOR with the previous ciphertext block — the IV for each
  // entry's first block) and per-entry PKCS#7 validation.
  ct_off = 0;
  out_off = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t body = ct_lens[i] - kBlockBytes;
    for (size_t b = 0; b < body; b += kBlockBytes) {
      Xor16(out.data() + out_off + b, cts.data() + ct_off + b);
    }
    const uint8_t pad = out[out_off + body - 1];
    bool valid = pad >= 1 && pad <= kBlockBytes;
    if (valid) {
      for (size_t b = body - pad; b < body; ++b) {
        valid = valid && out[out_off + b] == pad;
      }
    }
    plain_lens[i] = valid ? static_cast<uint32_t>(body - pad) : kBadEntry;
    ct_off += ct_lens[i];
    out_off += body;
  }
  return Status::Ok();
}

}  // namespace rsse::crypto
