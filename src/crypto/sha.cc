#include "crypto/sha.h"

#include <openssl/evp.h>

namespace rsse::crypto {

namespace {

Bytes Digest(const EVP_MD* md, const Bytes& data) {
  Bytes out(EVP_MD_get_size(md));
  unsigned int out_len = 0;
  EVP_Digest(data.data(), data.size(), out.data(), &out_len, md, nullptr);
  out.resize(out_len);
  return out;
}

}  // namespace

Bytes Sha1(const Bytes& data) { return Digest(EVP_sha1(), data); }

Bytes Sha256(const Bytes& data) { return Digest(EVP_sha256(), data); }

Bytes Sha512(const Bytes& data) { return Digest(EVP_sha512(), data); }

}  // namespace rsse::crypto
