#include "crypto/sha.h"

#include <openssl/evp.h>

namespace rsse::crypto {

namespace {

Bytes Digest(const EVP_MD* md, const Bytes& data) {
  Bytes out(EVP_MD_get_size(md));
  unsigned int out_len = 0;
  EVP_Digest(data.data(), data.size(), out.data(), &out_len, md, nullptr);
  out.resize(out_len);
  return out;
}

}  // namespace

Bytes Sha1(const Bytes& data) { return Digest(EVP_sha1(), data); }

Bytes Sha256(const Bytes& data) { return Digest(EVP_sha256(), data); }

bool Sha256Into(ConstByteSpan data, uint8_t out[32]) {
  unsigned int out_len = 0;
  return EVP_Digest(data.data(), data.size(), out, &out_len, EVP_sha256(),
                    nullptr) == 1 &&
         out_len == 32;
}

Bytes Sha512(const Bytes& data) { return Digest(EVP_sha512(), data); }

}  // namespace rsse::crypto
