#ifndef RSSE_CRYPTO_AES_H_
#define RSSE_CRYPTO_AES_H_

#include "common/bytes.h"
#include "common/status.h"

namespace rsse::crypto {

/// AES-128-CBC with PKCS#7 padding and a fresh random IV per encryption —
/// the paper's semantically secure symmetric encryption for tuple ids and
/// index values. Ciphertext layout: IV (16 bytes) || CBC ciphertext.
///
/// The `*Into` variants write into caller scratch buffers and keep two
/// per-thread cipher contexts (encrypt/decrypt) whose AES key schedule is
/// cached across calls under the same key — the common case, since every
/// counter probe of one keyword reuses that keyword's value key.
class Aes128Cbc {
 public:
  static constexpr size_t kKeyBytes = 16;
  static constexpr size_t kBlockBytes = 16;

  /// Encrypts `plaintext` under `key` (must be 16 bytes) with a fresh
  /// random IV.
  static Result<Bytes> Encrypt(const Bytes& key, const Bytes& plaintext);

  /// Deterministic variant with caller-provided IV (tests / reproducible
  /// fixtures only).
  static Result<Bytes> EncryptWithIv(const Bytes& key, const Bytes& iv,
                                     const Bytes& plaintext);

  /// Decrypts `ciphertext` (IV || body) under `key`. Fails on malformed
  /// input or padding.
  static Result<Bytes> Decrypt(const Bytes& key, const Bytes& ciphertext);

  /// Encrypts into `out` (size >= CiphertextSize(plaintext.size())) with a
  /// fresh pooled-random IV; `*written` receives the ciphertext length.
  /// No allocation.
  static Status EncryptInto(ConstByteSpan key, ConstByteSpan plaintext,
                            ByteSpan out, size_t* written);

  /// `EncryptInto` with a caller-provided 16-byte IV.
  static Status EncryptWithIvInto(ConstByteSpan key, ConstByteSpan iv,
                                  ConstByteSpan plaintext, ByteSpan out,
                                  size_t* written);

  /// Decrypts `ciphertext` (IV || body) into `out` (size >=
  /// ciphertext.size() - 16); `*written` receives the plaintext length.
  /// No allocation.
  static Status DecryptInto(ConstByteSpan key, ConstByteSpan ciphertext,
                            ByteSpan out, size_t* written);

  /// Size of the ciphertext produced for `plaintext_len` bytes of input
  /// (IV + padded body).
  static size_t CiphertextSize(size_t plaintext_len);
};

}  // namespace rsse::crypto

#endif  // RSSE_CRYPTO_AES_H_
