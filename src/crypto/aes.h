#ifndef RSSE_CRYPTO_AES_H_
#define RSSE_CRYPTO_AES_H_

#include <span>

#include "common/bytes.h"
#include "common/status.h"

namespace rsse::crypto {

/// AES-128-CBC with PKCS#7 padding and a fresh random IV per encryption —
/// the paper's semantically secure symmetric encryption for tuple ids and
/// index values. Ciphertext layout: IV (16 bytes) || CBC ciphertext.
///
/// The `*Into` variants write into caller scratch buffers and keep two
/// per-thread cipher contexts (encrypt/decrypt) whose AES key schedule is
/// cached across calls under the same key — the common case, since every
/// counter probe of one keyword reuses that keyword's value key.
class Aes128Cbc {
 public:
  static constexpr size_t kKeyBytes = 16;
  static constexpr size_t kBlockBytes = 16;

  /// Encrypts `plaintext` under `key` (must be 16 bytes) with a fresh
  /// random IV.
  static Result<Bytes> Encrypt(const Bytes& key, const Bytes& plaintext);

  /// Deterministic variant with caller-provided IV (tests / reproducible
  /// fixtures only).
  static Result<Bytes> EncryptWithIv(const Bytes& key, const Bytes& iv,
                                     const Bytes& plaintext);

  /// Decrypts `ciphertext` (IV || body) under `key`. Fails on malformed
  /// input or padding.
  static Result<Bytes> Decrypt(const Bytes& key, const Bytes& ciphertext);

  /// Encrypts into `out` (size >= CiphertextSize(plaintext.size())) with a
  /// fresh pooled-random IV; `*written` receives the ciphertext length.
  /// No allocation.
  static Status EncryptInto(ConstByteSpan key, ConstByteSpan plaintext,
                            ByteSpan out, size_t* written);

  /// `EncryptInto` with a caller-provided 16-byte IV.
  static Status EncryptWithIvInto(ConstByteSpan key, ConstByteSpan iv,
                                  ConstByteSpan plaintext, ByteSpan out,
                                  size_t* written);

  /// Decrypts `ciphertext` (IV || body) into `out` (size >=
  /// ciphertext.size() - 16); `*written` receives the plaintext length.
  /// No allocation.
  static Status DecryptInto(ConstByteSpan key, ConstByteSpan ciphertext,
                            ByteSpan out, size_t* written);

  /// Size of the ciphertext produced for `plaintext_len` bytes of input
  /// (IV + padded body).
  static size_t CiphertextSize(size_t plaintext_len);

  // -------------------------------------------------------------------------
  // Batch (arena-at-a-time) API. All entries of one call share one key —
  // the SSE pattern, where every posting of a keyword is encrypted under
  // that keyword's value key — so one cached key schedule and a handful of
  // multi-block ECB EVP calls replace the per-entry init/update/final
  // round: CBC chaining is applied in scalar code around a raw AES-ECB
  // pass, producing ciphertexts byte-identical to the per-entry API.
  // -------------------------------------------------------------------------

  /// `plain_lens[i]` in a decrypt result marking an entry whose padding
  /// was invalid (wrong key or corrupt ciphertext).
  static constexpr uint32_t kBadEntry = 0xffffffffu;

  /// Encrypts `plain_lens.size()` plaintexts, packed back to back in
  /// `plaintexts` (entry i occupies the next `plain_lens[i]` bytes), into
  /// `out` as back-to-back IV || CBC-body ciphertexts of exactly
  /// `CiphertextSize(plain_lens[i])` bytes each. All IVs are filled from
  /// the pooled RNG in one draw. `*written` receives the total bytes.
  static Status EncryptManyInto(ConstByteSpan key, ConstByteSpan plaintexts,
                                std::span<const uint32_t> plain_lens,
                                ByteSpan out, size_t* written);

  /// `EncryptManyInto` with caller-provided IVs, 16 bytes per entry packed
  /// in `ivs` (tests / parity fixtures). `ivs` must not alias `out`.
  static Status EncryptManyWithIvsInto(ConstByteSpan key, ConstByteSpan ivs,
                                       ConstByteSpan plaintexts,
                                       std::span<const uint32_t> plain_lens,
                                       ByteSpan out, size_t* written);

  /// Decrypts `ct_lens.size()` ciphertexts (each IV || body,
  /// `ct_lens[i]` bytes), packed back to back in `cts`, with ONE ECB pass
  /// over every body block of the batch. Entry i's plaintext is written at
  /// offset sum_{k<i}(ct_lens[k] - 16) of `out` (padded spacing — callers
  /// walk the same offsets) and `plain_lens[i]` receives its length, or
  /// `kBadEntry` when that entry's PKCS#7 padding is invalid (wrong key);
  /// other entries still decrypt. Returns InvalidArgument only for
  /// malformed arguments (bad key size, misaligned lengths, short
  /// buffers).
  static Status DecryptManyInto(ConstByteSpan key, ConstByteSpan cts,
                                std::span<const uint32_t> ct_lens,
                                ByteSpan out,
                                std::span<uint32_t> plain_lens);
};

}  // namespace rsse::crypto

#endif  // RSSE_CRYPTO_AES_H_
