#ifndef RSSE_CRYPTO_AES_H_
#define RSSE_CRYPTO_AES_H_

#include "common/bytes.h"
#include "common/status.h"

namespace rsse::crypto {

/// AES-128-CBC with PKCS#7 padding and a fresh random IV per encryption —
/// the paper's semantically secure symmetric encryption for tuple ids and
/// index values. Ciphertext layout: IV (16 bytes) || CBC ciphertext.
class Aes128Cbc {
 public:
  static constexpr size_t kKeyBytes = 16;
  static constexpr size_t kBlockBytes = 16;

  /// Encrypts `plaintext` under `key` (must be 16 bytes) with a fresh
  /// random IV.
  static Result<Bytes> Encrypt(const Bytes& key, const Bytes& plaintext);

  /// Deterministic variant with caller-provided IV (tests / reproducible
  /// fixtures only).
  static Result<Bytes> EncryptWithIv(const Bytes& key, const Bytes& iv,
                                     const Bytes& plaintext);

  /// Decrypts `ciphertext` (IV || body) under `key`. Fails on malformed
  /// input or padding.
  static Result<Bytes> Decrypt(const Bytes& key, const Bytes& ciphertext);

  /// Size of the ciphertext produced for `plaintext_len` bytes of input
  /// (IV + padded body).
  static size_t CiphertextSize(size_t plaintext_len);
};

}  // namespace rsse::crypto

#endif  // RSSE_CRYPTO_AES_H_
