#ifndef RSSE_CRYPTO_RANDOM_H_
#define RSSE_CRYPTO_RANDOM_H_

#include "common/bytes.h"

namespace rsse::crypto {

/// `n` cryptographically secure random bytes (OpenSSL RAND_bytes, OS
/// entropy). Used for all key material and IVs.
Bytes SecureRandom(size_t n);

/// Fresh λ-byte (128-bit) symmetric key.
Bytes GenerateKey();

}  // namespace rsse::crypto

#endif  // RSSE_CRYPTO_RANDOM_H_
