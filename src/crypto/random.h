#ifndef RSSE_CRYPTO_RANDOM_H_
#define RSSE_CRYPTO_RANDOM_H_

#include "common/bytes.h"

namespace rsse::crypto {

/// `n` cryptographically secure random bytes (OpenSSL RAND_bytes, OS
/// entropy). Used for all key material and IVs.
Bytes SecureRandom(size_t n);

/// Fills `out` with secure random bytes from a thread-local 4 KiB pool,
/// refilled from RAND_bytes on exhaustion. Index construction draws one
/// 16-byte IV per encrypted entry; pooling amortizes the OpenSSL DRBG
/// locking/call overhead over ~256 draws. Requests larger than the pool go
/// straight to RAND_bytes. Aborts the process if the system DRBG fails —
/// silently degraded randomness must never reach key or IV material.
void SecureRandomInto(ByteSpan out);

/// Fresh λ-byte (128-bit) symmetric key.
Bytes GenerateKey();

}  // namespace rsse::crypto

#endif  // RSSE_CRYPTO_RANDOM_H_
