#include "crypto/sha512_x4.h"

#include <cstdlib>
#include <cstring>

#if (defined(__x86_64__) || defined(__amd64__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define RSSE_SHA512_X4_COMPILED 1
#include <immintrin.h>
// GCC's unmasked AVX-512 intrinsics expand through _mm512_undefined_epi32,
// which -Wmaybe-uninitialized flags spuriously under -O2.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif
#endif

namespace rsse::crypto {

namespace {

#ifdef RSSE_SHA512_X4_COMPILED

// FIPS 180-4 round constants.
constexpr uint64_t kK[80] = {
    0x428a2f98d728ae22ull, 0x7137449123ef65cdull, 0xb5c0fbcfec4d3b2full,
    0xe9b5dba58189dbbcull, 0x3956c25bf348b538ull, 0x59f111f1b605d019ull,
    0x923f82a4af194f9bull, 0xab1c5ed5da6d8118ull, 0xd807aa98a3030242ull,
    0x12835b0145706fbeull, 0x243185be4ee4b28cull, 0x550c7dc3d5ffb4e2ull,
    0x72be5d74f27b896full, 0x80deb1fe3b1696b1ull, 0x9bdc06a725c71235ull,
    0xc19bf174cf692694ull, 0xe49b69c19ef14ad2ull, 0xefbe4786384f25e3ull,
    0x0fc19dc68b8cd5b5ull, 0x240ca1cc77ac9c65ull, 0x2de92c6f592b0275ull,
    0x4a7484aa6ea6e483ull, 0x5cb0a9dcbd41fbd4ull, 0x76f988da831153b5ull,
    0x983e5152ee66dfabull, 0xa831c66d2db43210ull, 0xb00327c898fb213full,
    0xbf597fc7beef0ee4ull, 0xc6e00bf33da88fc2ull, 0xd5a79147930aa725ull,
    0x06ca6351e003826full, 0x142929670a0e6e70ull, 0x27b70a8546d22ffcull,
    0x2e1b21385c26c926ull, 0x4d2c6dfc5ac42aedull, 0x53380d139d95b3dfull,
    0x650a73548baf63deull, 0x766a0abb3c77b2a8ull, 0x81c2c92e47edaee6ull,
    0x92722c851482353bull, 0xa2bfe8a14cf10364ull, 0xa81a664bbc423001ull,
    0xc24b8b70d0f89791ull, 0xc76c51a30654be30ull, 0xd192e819d6ef5218ull,
    0xd69906245565a910ull, 0xf40e35855771202aull, 0x106aa07032bbd1b8ull,
    0x19a4c116b8d2d0c8ull, 0x1e376c085141ab53ull, 0x2748774cdf8eeb99ull,
    0x34b0bcb5e19b48a8ull, 0x391c0cb3c5c95a63ull, 0x4ed8aa4ae3418acbull,
    0x5b9cca4f7763e373ull, 0x682e6ff3d6b2b8a3ull, 0x748f82ee5defb2fcull,
    0x78a5636f43172f60ull, 0x84c87814a1f0ab72ull, 0x8cc702081a6439ecull,
    0x90befffa23631e28ull, 0xa4506cebde82bde9ull, 0xbef9a3f7b2c67915ull,
    0xc67178f2e372532bull, 0xca273eceea26619cull, 0xd186b8c721c0c207ull,
    0xeada7dd6cde0eb1eull, 0xf57d4f7fee6ed178ull, 0x06f067aa72176fbaull,
    0x0a637dc5a2c898a6ull, 0x113f9804bef90daeull, 0x1b710b35131c471bull,
    0x28db77f523047d84ull, 0x32caab7b40c72493ull, 0x3c9ebe0a15c9bebcull,
    0x431d67c49c100d4cull, 0x4cc5d4becb3e42b6ull, 0x597f299cfc657e2aull,
    0x5fcb6fab3ad6faecull, 0x6c44198c4a475817ull};

__attribute__((target("avx2"))) inline __m256i Ror64(__m256i x, int r) {
  return _mm256_or_si256(_mm256_srli_epi64(x, r),
                         _mm256_slli_epi64(x, 64 - r));
}

// Big sigmas (round function) and small sigmas (message schedule).
__attribute__((target("avx2"))) inline __m256i BigSigma0(__m256i x) {
  return _mm256_xor_si256(_mm256_xor_si256(Ror64(x, 28), Ror64(x, 34)),
                          Ror64(x, 39));
}
__attribute__((target("avx2"))) inline __m256i BigSigma1(__m256i x) {
  return _mm256_xor_si256(_mm256_xor_si256(Ror64(x, 14), Ror64(x, 18)),
                          Ror64(x, 41));
}
__attribute__((target("avx2"))) inline __m256i SmallSigma0(__m256i x) {
  return _mm256_xor_si256(_mm256_xor_si256(Ror64(x, 1), Ror64(x, 8)),
                          _mm256_srli_epi64(x, 7));
}
__attribute__((target("avx2"))) inline __m256i SmallSigma1(__m256i x) {
  return _mm256_xor_si256(_mm256_xor_si256(Ror64(x, 19), Ror64(x, 61)),
                          _mm256_srli_epi64(x, 6));
}
__attribute__((target("avx2"))) inline __m256i Ch(__m256i e, __m256i f,
                                                  __m256i g) {
  // (e & f) ^ (~e & g).
  return _mm256_xor_si256(_mm256_and_si256(e, f),
                          _mm256_andnot_si256(e, g));
}
__attribute__((target("avx2"))) inline __m256i Maj(__m256i a, __m256i b,
                                                   __m256i c) {
  return _mm256_xor_si256(
      _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
      _mm256_and_si256(b, c));
}

/// One SHA-512 compression on four lanes: `state[w]` holds hash word w
/// across lanes and is updated in place; `w_in[t]` holds message word t
/// across lanes (already in host word order — SHA-512 reads words
/// big-endian, and every caller's words are constructed as values, never
/// loaded from byte streams).
__attribute__((target("avx2"))) void TransformX4(__m256i state[8],
                                                 const __m256i w_in[16]) {
  __m256i w[16];
  for (int t = 0; t < 16; ++t) w[t] = w_in[t];
  __m256i a = state[0];
  __m256i b = state[1];
  __m256i c = state[2];
  __m256i d = state[3];
  __m256i e = state[4];
  __m256i f = state[5];
  __m256i g = state[6];
  __m256i h = state[7];
  for (int t = 0; t < 80; ++t) {
    if (t >= 16) {
      w[t & 15] = _mm256_add_epi64(
          _mm256_add_epi64(SmallSigma1(w[(t - 2) & 15]), w[(t - 7) & 15]),
          _mm256_add_epi64(SmallSigma0(w[(t - 15) & 15]), w[t & 15]));
    }
    const __m256i t1 = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_add_epi64(h, BigSigma1(e)), Ch(e, f, g)),
        _mm256_add_epi64(_mm256_set1_epi64x(static_cast<long long>(kK[t])),
                         w[t & 15]));
    const __m256i t2 = _mm256_add_epi64(BigSigma0(a), Maj(a, b, c));
    h = g;
    g = f;
    f = e;
    e = _mm256_add_epi64(d, t1);
    d = c;
    c = b;
    b = a;
    a = _mm256_add_epi64(t1, t2);
  }
  state[0] = _mm256_add_epi64(state[0], a);
  state[1] = _mm256_add_epi64(state[1], b);
  state[2] = _mm256_add_epi64(state[2], c);
  state[3] = _mm256_add_epi64(state[3], d);
  state[4] = _mm256_add_epi64(state[4], e);
  state[5] = _mm256_add_epi64(state[5], f);
  state[6] = _mm256_add_epi64(state[6], g);
  state[7] = _mm256_add_epi64(state[7], h);
}

__attribute__((target("avx2"))) void HmacCounterX4Avx2(
    const uint64_t inner_state[8], const uint64_t outer_state[8],
    uint64_t start, uint8_t* out, size_t out_len, size_t out_stride) {
  // Inner message block, as 64-bit words: the big-endian counter IS word 0;
  // word 1 is the 0x80 padding byte; word 15 is the bit length of the
  // 136-byte (key block + counter) message.
  const __m256i zero = _mm256_setzero_si256();
  __m256i w[16];
  w[0] = _mm256_set_epi64x(
      static_cast<long long>(start + 3), static_cast<long long>(start + 2),
      static_cast<long long>(start + 1), static_cast<long long>(start));
  w[1] = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
  for (int t = 2; t < 15; ++t) w[t] = zero;
  w[15] = _mm256_set1_epi64x((128 + 8) * 8);

  __m256i state[8];
  for (int i = 0; i < 8; ++i) {
    state[i] = _mm256_set1_epi64x(static_cast<long long>(inner_state[i]));
  }
  TransformX4(state, w);

  // Outer message block: the inner digest words are the message words
  // verbatim (both sides are big-endian word streams), so the hand-off
  // never leaves the registers.
  for (int t = 0; t < 8; ++t) w[t] = state[t];
  w[8] = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
  for (int t = 9; t < 15; ++t) w[t] = zero;
  w[15] = _mm256_set1_epi64x((128 + 64) * 8);
  for (int i = 0; i < 8; ++i) {
    state[i] = _mm256_set1_epi64x(static_cast<long long>(outer_state[i]));
  }
  TransformX4(state, w);

  // Emit the leading out_len MAC bytes per lane (big-endian words).
  const size_t words = (out_len + 7) / 8;
  uint64_t lanes[8][4];
  for (size_t wd = 0; wd < words; ++wd) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes[wd]), state[wd]);
  }
  for (size_t l = 0; l < 4; ++l) {
    uint8_t mac[64];
    for (size_t wd = 0; wd < words; ++wd) {
      const uint64_t be = __builtin_bswap64(lanes[wd][l]);
      std::memcpy(mac + 8 * wd, &be, 8);
    }
    std::memcpy(out + l * out_stride, mac, out_len);
  }
}

bool DetectAvx2() {
  // RSSE_NO_AVX2 forces the scalar fallback (testing / triage).
  const char* off = std::getenv("RSSE_NO_AVX2");
  if (off != nullptr && off[0] != '\0' && off[0] != '0') return false;
  return __builtin_cpu_supports("avx2") != 0;
}

// ---------------------------------------------------------------------------
// Eight-lane AVX-512 variant. SHA-512 is rotate- and bitselect-heavy, and
// AVX-512F turns exactly those into single instructions (vprorq for the
// sigmas, vpternlogq for Ch/Maj and the three-way xors), on 8 lanes at
// once — about 3x the per-lane throughput of the AVX2 kernel above.
// ---------------------------------------------------------------------------

// vpternlogq truth tables, indexed by (a, b, c) bits: Ch = a ? b : c,
// Maj = majority, Xor3 = parity.
constexpr int kTernChoose = 0xCA;
constexpr int kTernMajority = 0xE8;
constexpr int kTernXor3 = 0x96;

__attribute__((target("avx512f"))) inline __m512i BigSigma0x8(__m512i x) {
  return _mm512_ternarylogic_epi64(_mm512_ror_epi64(x, 28),
                                   _mm512_ror_epi64(x, 34),
                                   _mm512_ror_epi64(x, 39), kTernXor3);
}
__attribute__((target("avx512f"))) inline __m512i BigSigma1x8(__m512i x) {
  return _mm512_ternarylogic_epi64(_mm512_ror_epi64(x, 14),
                                   _mm512_ror_epi64(x, 18),
                                   _mm512_ror_epi64(x, 41), kTernXor3);
}
__attribute__((target("avx512f"))) inline __m512i SmallSigma0x8(__m512i x) {
  return _mm512_ternarylogic_epi64(_mm512_ror_epi64(x, 1),
                                   _mm512_ror_epi64(x, 8),
                                   _mm512_srli_epi64(x, 7), kTernXor3);
}
__attribute__((target("avx512f"))) inline __m512i SmallSigma1x8(__m512i x) {
  return _mm512_ternarylogic_epi64(_mm512_ror_epi64(x, 19),
                                   _mm512_ror_epi64(x, 61),
                                   _mm512_srli_epi64(x, 6), kTernXor3);
}

__attribute__((target("avx512f"))) void TransformX8(__m512i state[8],
                                                    const __m512i w_in[16]) {
  __m512i w[16];
  for (int t = 0; t < 16; ++t) w[t] = w_in[t];
  __m512i a = state[0];
  __m512i b = state[1];
  __m512i c = state[2];
  __m512i d = state[3];
  __m512i e = state[4];
  __m512i f = state[5];
  __m512i g = state[6];
  __m512i h = state[7];
  for (int t = 0; t < 80; ++t) {
    if (t >= 16) {
      w[t & 15] = _mm512_add_epi64(
          _mm512_add_epi64(SmallSigma1x8(w[(t - 2) & 15]), w[(t - 7) & 15]),
          _mm512_add_epi64(SmallSigma0x8(w[(t - 15) & 15]), w[t & 15]));
    }
    const __m512i ch = _mm512_ternarylogic_epi64(e, f, g, kTernChoose);
    const __m512i t1 = _mm512_add_epi64(
        _mm512_add_epi64(_mm512_add_epi64(h, BigSigma1x8(e)), ch),
        _mm512_add_epi64(_mm512_set1_epi64(static_cast<long long>(kK[t])),
                         w[t & 15]));
    const __m512i maj = _mm512_ternarylogic_epi64(a, b, c, kTernMajority);
    const __m512i t2 = _mm512_add_epi64(BigSigma0x8(a), maj);
    h = g;
    g = f;
    f = e;
    e = _mm512_add_epi64(d, t1);
    d = c;
    c = b;
    b = a;
    a = _mm512_add_epi64(t1, t2);
  }
  state[0] = _mm512_add_epi64(state[0], a);
  state[1] = _mm512_add_epi64(state[1], b);
  state[2] = _mm512_add_epi64(state[2], c);
  state[3] = _mm512_add_epi64(state[3], d);
  state[4] = _mm512_add_epi64(state[4], e);
  state[5] = _mm512_add_epi64(state[5], f);
  state[6] = _mm512_add_epi64(state[6], g);
  state[7] = _mm512_add_epi64(state[7], h);
}

__attribute__((target("avx512f"))) void HmacCounterX8Avx512(
    const uint64_t inner_state[8], const uint64_t outer_state[8],
    uint64_t start, uint8_t* out, size_t out_len, size_t out_stride) {
  const __m512i zero = _mm512_setzero_si512();
  __m512i w[16];
  w[0] = _mm512_set_epi64(
      static_cast<long long>(start + 7), static_cast<long long>(start + 6),
      static_cast<long long>(start + 5), static_cast<long long>(start + 4),
      static_cast<long long>(start + 3), static_cast<long long>(start + 2),
      static_cast<long long>(start + 1), static_cast<long long>(start));
  w[1] = _mm512_set1_epi64(static_cast<long long>(0x8000000000000000ull));
  for (int t = 2; t < 15; ++t) w[t] = zero;
  w[15] = _mm512_set1_epi64((128 + 8) * 8);

  __m512i state[8];
  for (int i = 0; i < 8; ++i) {
    state[i] = _mm512_set1_epi64(static_cast<long long>(inner_state[i]));
  }
  TransformX8(state, w);

  for (int t = 0; t < 8; ++t) w[t] = state[t];
  w[8] = _mm512_set1_epi64(static_cast<long long>(0x8000000000000000ull));
  for (int t = 9; t < 15; ++t) w[t] = zero;
  w[15] = _mm512_set1_epi64((128 + 64) * 8);
  for (int i = 0; i < 8; ++i) {
    state[i] = _mm512_set1_epi64(static_cast<long long>(outer_state[i]));
  }
  TransformX8(state, w);

  const size_t words = (out_len + 7) / 8;
  uint64_t lanes[8][8];
  for (size_t wd = 0; wd < words; ++wd) {
    _mm512_storeu_si512(lanes[wd], state[wd]);
  }
  for (size_t l = 0; l < 8; ++l) {
    uint8_t mac[64];
    for (size_t wd = 0; wd < words; ++wd) {
      const uint64_t be = __builtin_bswap64(lanes[wd][l]);
      std::memcpy(mac + 8 * wd, &be, 8);
    }
    std::memcpy(out + l * out_stride, mac, out_len);
  }
}

bool DetectAvx512() {
  // RSSE_NO_AVX2 disables every vector kernel; RSSE_NO_AVX512 disables
  // only the 8-lane tier, so the 4-lane AVX2 path can be pinned by tests
  // and triaged on AVX-512 hosts.
  const char* off = std::getenv("RSSE_NO_AVX512");
  if (off != nullptr && off[0] != '\0' && off[0] != '0') return false;
  if (!DetectAvx2()) return false;
  return __builtin_cpu_supports("avx512f") != 0;
}

#endif  // RSSE_SHA512_X4_COMPILED

}  // namespace

size_t HmacSha512CounterLanes() {
#ifdef RSSE_SHA512_X4_COMPILED
  static const size_t lanes = DetectAvx512() ? 8 : (DetectAvx2() ? 4 : 0);
  return lanes;
#else
  return 0;
#endif
}

void HmacSha512CounterLanesEval(const uint64_t inner_state[8],
                                const uint64_t outer_state[8], uint64_t start,
                                uint8_t* out, size_t out_len,
                                size_t out_stride) {
#ifdef RSSE_SHA512_X4_COMPILED
  if (HmacSha512CounterLanes() == 8) {
    HmacCounterX8Avx512(inner_state, outer_state, start, out, out_len,
                        out_stride);
  } else {
    HmacCounterX4Avx2(inner_state, outer_state, start, out, out_len,
                      out_stride);
  }
#else
  (void)inner_state;
  (void)outer_state;
  (void)start;
  (void)out;
  (void)out_len;
  (void)out_stride;
  std::abort();  // contract: callers gate on HmacSha512CounterLanes() != 0
#endif
}

}  // namespace rsse::crypto
