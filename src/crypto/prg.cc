#include "crypto/prg.h"

#include <openssl/evp.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "crypto/hmac_prf.h"

namespace rsse::crypto {

namespace {

[[noreturn]] void DiePrgFailure(const char* what) {
  std::fprintf(stderr, "rsse: GGM PRG backend failure: %s\n", what);
  std::abort();
}

// ---------------------------------------------------------------------------
// HMAC backend. G must be a public function (the server expands delegated
// GGM seeds), so the MAC key carries no secret; all entropy is in the seed,
// which is the HMAC message. One shared pre-keyed Prf (stack-state
// evaluations are thread-safe) makes expansion ~2x faster than one-shot
// HMAC.
// ---------------------------------------------------------------------------

const Prf& PublicHmacPrf() {
  static const Prf* prf = new Prf(ToBytes("rsse-ggm-public-expansion-key"));
  return *prf;
}

void HmacExpandInto(const uint8_t* seed, uint8_t* left, uint8_t* right) {
  uint8_t mac[Prf::kMaxOutputBytes];
  if (!PublicHmacPrf().EvalInto(ConstByteSpan(seed, kLambdaBytes),
                                ByteSpan(mac, sizeof(mac)))) {
    DiePrgFailure("HMAC evaluation failed");
  }
  std::memcpy(left, mac, kLambdaBytes);
  std::memcpy(right, mac + kLambdaBytes, kLambdaBytes);
}

// ---------------------------------------------------------------------------
// AES backend: fixed-key single-permutation Matyas-Meyer-Oseas,
// G_b(s) = AES_K(s ⊕ c_b) ⊕ s ⊕ c_b. The key schedule is computed once per
// thread; each expansion is one two-block ECB encryption (AES-NI via EVP).
// ---------------------------------------------------------------------------

// Public fixed key and block tweaks; arbitrary distinct constants.
constexpr uint8_t kAesFixedKey[16] = {'r', 's', 's', 'e', '-', 'g', 'g', 'm',
                                      '-', 'a', 'e', 's', '-', 'k', 'e', 'y'};
constexpr uint8_t kTweak0 = 0x00;
constexpr uint8_t kTweak1 = 0xff;

/// Owns the per-thread fixed-key context so it is released on thread exit.
/// thread_local IS the synchronization here: each thread initializes and
/// uses only its own context, so no lock (and no capability annotation)
/// applies — sharing one EVP_CIPHER_CTX across threads would be a race
/// inside OpenSSL regardless of locking discipline at this layer.
struct AesCtxHolder {
  EVP_CIPHER_CTX* ctx = nullptr;

  ~AesCtxHolder() {
    if (ctx != nullptr) EVP_CIPHER_CTX_free(ctx);
  }
};

EVP_CIPHER_CTX* ThreadAesCtx() {
  thread_local AesCtxHolder holder;
  if (holder.ctx == nullptr) {
    holder.ctx = EVP_CIPHER_CTX_new();
    if (holder.ctx == nullptr ||
        EVP_EncryptInit_ex(holder.ctx, EVP_aes_128_ecb(), nullptr,
                           kAesFixedKey, nullptr) != 1) {
      DiePrgFailure("AES-128-ECB init failed");
    }
    EVP_CIPHER_CTX_set_padding(holder.ctx, 0);
  }
  return holder.ctx;
}

void AesExpandInto(const uint8_t* seed, uint8_t* left, uint8_t* right) {
  uint8_t in[2 * kLambdaBytes];
  uint8_t out[2 * kLambdaBytes];
  for (size_t i = 0; i < kLambdaBytes; ++i) {
    in[i] = static_cast<uint8_t>(seed[i] ^ kTweak0);
    in[kLambdaBytes + i] = static_cast<uint8_t>(seed[i] ^ kTweak1);
  }
  int len = 0;
  if (EVP_EncryptUpdate(ThreadAesCtx(), out, &len, in, sizeof(in)) != 1 ||
      len != static_cast<int>(sizeof(in))) {
    DiePrgFailure("AES-128-ECB encryption failed");
  }
  // Feed-forward (Davies-Meyer/MMO) makes the permutation one-way: without
  // it, the server could invert AES_K and recover parent seeds from
  // delegated children.
  for (size_t i = 0; i < kLambdaBytes; ++i) {
    out[i] ^= in[i];
    out[kLambdaBytes + i] ^= in[kLambdaBytes + i];
  }
  std::memcpy(left, out, kLambdaBytes);
  std::memcpy(right, out + kLambdaBytes, kLambdaBytes);
}

// Parents per batched frontier expansion: 256 parents = 512 AES blocks =
// 8 KiB per buffer, small enough for the stack, large enough that the EVP
// dispatch overhead (the dominant cost of two-block calls) amortizes away.
constexpr size_t kFrontierChunk = 256;

/// Expands `count` <= kFrontierChunk parent seeds into their 2·count
/// children with a single multi-block EVP_EncryptUpdate. `children` may
/// overlap `parents`: the parents are staged into a private buffer before
/// anything is written.
void AesExpandFrontierChunk(const uint8_t* parents, size_t count,
                            uint8_t* children) {
  uint8_t in[2 * kFrontierChunk * kLambdaBytes];
  uint8_t out[2 * kFrontierChunk * kLambdaBytes];
  for (size_t j = 0; j < count; ++j) {
    const uint8_t* s = parents + j * kLambdaBytes;
    uint8_t* left = in + 2 * j * kLambdaBytes;
    uint8_t* right = left + kLambdaBytes;
    for (size_t b = 0; b < kLambdaBytes; ++b) {
      left[b] = static_cast<uint8_t>(s[b] ^ kTweak0);
      right[b] = static_cast<uint8_t>(s[b] ^ kTweak1);
    }
  }
  const int total = static_cast<int>(2 * count * kLambdaBytes);
  int len = 0;
  if (EVP_EncryptUpdate(ThreadAesCtx(), out, &len, in, total) != 1 ||
      len != total) {
    DiePrgFailure("AES-128-ECB batched encryption failed");
  }
  // Same MMO feed-forward as the per-node path; outputs are bit-identical.
  for (int b = 0; b < total; ++b) out[b] ^= in[b];
  std::memcpy(children, out, static_cast<size_t>(total));
}

// ---------------------------------------------------------------------------
// Backend selection.
// ---------------------------------------------------------------------------

int InitialBackend() {
  const char* env = std::getenv("RSSE_GGM_PRG");
  if (env != nullptr && (std::strcmp(env, "aes") == 0 ||
                         std::strcmp(env, "AES") == 0)) {
    return static_cast<int>(GgmPrg::Backend::kAes);
  }
  return static_cast<int>(GgmPrg::Backend::kHmac);
}

std::atomic<int>& BackendFlag() {
  static std::atomic<int> flag(InitialBackend());
  return flag;
}

}  // namespace

GgmPrg::Backend GgmPrg::backend() {
  return static_cast<Backend>(BackendFlag().load(std::memory_order_relaxed));
}

void GgmPrg::SetBackend(Backend b) {
  BackendFlag().store(static_cast<int>(b), std::memory_order_relaxed);
}

void GgmPrg::ExpandInto(const uint8_t* seed, uint8_t* left, uint8_t* right) {
  if (backend() == Backend::kAes) {
    AesExpandInto(seed, left, right);
  } else {
    HmacExpandInto(seed, left, right);
  }
}

void GgmPrg::ExpandFrontierInPlace(uint8_t* buf, size_t count) {
  // Walk the frontier right to left: the chunk [i0, i0 + cnt) writes its
  // children to [2·i0, 2·(i0 + cnt)), which never touches the unprocessed
  // parents below i0 (2·i0 >= i0); parents inside the chunk are staged
  // into a private buffer (AES) or read before their slots are written
  // (HMAC walks one node at a time, and ExpandInto tolerates aliasing).
  if (backend() == Backend::kAes) {
    size_t i0 = count;
    while (i0 > 0) {
      const size_t cnt = std::min(kFrontierChunk, i0);
      i0 -= cnt;
      AesExpandFrontierChunk(buf + i0 * kLambdaBytes, cnt,
                             buf + 2 * i0 * kLambdaBytes);
    }
  } else {
    for (size_t i = count; i-- > 0;) {
      HmacExpandInto(buf + i * kLambdaBytes, buf + 2 * i * kLambdaBytes,
                     buf + (2 * i + 1) * kLambdaBytes);
    }
  }
}

void GgmPrg::GbInto(const uint8_t* seed, int bit, uint8_t* out) {
  uint8_t left[kLambdaBytes];
  uint8_t right[kLambdaBytes];
  ExpandInto(seed, left, right);
  std::memcpy(out, bit == 0 ? left : right, kLambdaBytes);
}

std::pair<Bytes, Bytes> GgmPrg::Expand(const Bytes& seed) {
  if (seed.size() != kLambdaBytes) DiePrgFailure("seed must be λ bytes");
  Bytes left(kLambdaBytes);
  Bytes right(kLambdaBytes);
  ExpandInto(seed.data(), left.data(), right.data());
  return {std::move(left), std::move(right)};
}

Bytes GgmPrg::G0(const Bytes& seed) { return Expand(seed).first; }

Bytes GgmPrg::G1(const Bytes& seed) { return Expand(seed).second; }

Bytes GgmPrg::Gb(const Bytes& seed, int bit) {
  if (seed.size() != kLambdaBytes) DiePrgFailure("seed must be λ bytes");
  Bytes out(kLambdaBytes);
  GbInto(seed.data(), bit, out.data());
  return out;
}

}  // namespace rsse::crypto
