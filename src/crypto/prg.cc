#include "crypto/prg.h"

#include "crypto/hmac_prf.h"

namespace rsse::crypto {

namespace {

/// Pre-keyed HMAC under a fixed public key: G must be a public function
/// (the server expands delegated GGM seeds), so the MAC key carries no
/// secret; all entropy is in the seed, which is the HMAC message. Keying
/// once and duplicating the context per call makes GGM expansion ~5x
/// faster than one-shot HMAC, which dominates the Constant schemes'
/// delegation and search costs (Figures 7/8).
const Prf& PublicGgmPrf() {
  static const Prf* prf = new Prf(ToBytes("rsse-ggm-public-expansion-key"));
  return *prf;
}

}  // namespace

std::pair<Bytes, Bytes> GgmPrg::Expand(const Bytes& seed) {
  Bytes mac = PublicGgmPrf().Eval(seed);
  Bytes left(mac.begin(), mac.begin() + kLambdaBytes);
  Bytes right(mac.begin() + kLambdaBytes, mac.begin() + 2 * kLambdaBytes);
  return {std::move(left), std::move(right)};
}

Bytes GgmPrg::G0(const Bytes& seed) { return Expand(seed).first; }

Bytes GgmPrg::G1(const Bytes& seed) { return Expand(seed).second; }

Bytes GgmPrg::Gb(const Bytes& seed, int bit) {
  auto [left, right] = Expand(seed);
  return bit == 0 ? left : right;
}

}  // namespace rsse::crypto
