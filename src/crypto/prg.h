#ifndef RSSE_CRYPTO_PRG_H_
#define RSSE_CRYPTO_PRG_H_

#include <utility>

#include "common/bytes.h"

namespace rsse::crypto {

/// GGM length-doubling pseudorandom generator `G : {0,1}^λ -> {0,1}^2λ`
/// (Goldreich-Goldwasser-Micali), the building block of the delegatable PRF
/// of Kiayias et al. used by the Constant schemes. Following the paper we
/// instantiate G with HMAC-SHA-512: the 64-byte MAC of the seed under a
/// fixed public key is split into G0 (left) and G1 (right) halves of λ=16
/// bytes each (the remaining bytes are discarded).
class GgmPrg {
 public:
  /// Left output G0(seed): λ bytes.
  static Bytes G0(const Bytes& seed);

  /// Right output G1(seed): λ bytes.
  static Bytes G1(const Bytes& seed);

  /// Both halves with a single MAC evaluation.
  static std::pair<Bytes, Bytes> Expand(const Bytes& seed);

  /// G_b(seed) for bit b in {0,1}.
  static Bytes Gb(const Bytes& seed, int bit);
};

}  // namespace rsse::crypto

#endif  // RSSE_CRYPTO_PRG_H_
