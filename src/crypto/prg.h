#ifndef RSSE_CRYPTO_PRG_H_
#define RSSE_CRYPTO_PRG_H_

#include <utility>

#include "common/bytes.h"

namespace rsse::crypto {

/// GGM length-doubling pseudorandom generator `G : {0,1}^λ -> {0,1}^2λ`
/// (Goldreich-Goldwasser-Micali), the building block of the delegatable PRF
/// of Kiayias et al. used by the Constant schemes.
///
/// Two interchangeable instantiations of G are provided:
///
///  * `kHmac` (default, paper-faithful): the 64-byte HMAC-SHA-512 MAC of
///    the seed under a fixed public key is split into G0 (left) and G1
///    (right) halves of λ = 16 bytes (the remaining bytes are discarded).
///  * `kAes`: fixed-key AES-128 in a two-block Matyas-Meyer-Oseas
///    construction, G_b(s) = AES_K(s ⊕ c_b) ⊕ s ⊕ c_b with public
///    constants c_0 ≠ c_1 — the standard AES-NI instantiation of GGM-style
///    PRGs (an order of magnitude faster per expansion on AES-NI
///    hardware). K is public; as in the HMAC backend, all entropy is in
///    the seed.
///
/// The backend is selected once per process: the `RSSE_GGM_PRG`
/// environment variable ("hmac" | "aes") is read on first use, and
/// `SetBackend` overrides it programmatically (tests, embedders). The two
/// backends generate *different* PRG values, so an outsourced index must
/// be searched under the backend that built it.
class GgmPrg {
 public:
  enum class Backend { kHmac, kAes };

  /// Currently selected backend.
  static Backend backend();

  /// Selects the backend for subsequent expansions. Not thread-safe
  /// against in-flight expansions; call before spinning up workers.
  static void SetBackend(Backend b);

  /// Left output G0(seed): λ bytes.
  static Bytes G0(const Bytes& seed);

  /// Right output G1(seed): λ bytes.
  static Bytes G1(const Bytes& seed);

  /// Both halves with a single backend invocation.
  static std::pair<Bytes, Bytes> Expand(const Bytes& seed);

  /// G_b(seed) for bit b in {0,1}.
  static Bytes Gb(const Bytes& seed, int bit);

  /// Zero-allocation expansion: writes G0(seed) into `left` and G1(seed)
  /// into `right` (16 bytes each). The outputs may alias `seed` — the
  /// in-place GGM subtree walk overwrites parent seeds with children.
  /// Aborts on OpenSSL failure (a broken provider must not yield
  /// predictable seeds).
  static void ExpandInto(const uint8_t* seed, uint8_t* left, uint8_t* right);

  /// Zero-allocation G_b(seed) into `out` (16 bytes; may alias `seed`).
  static void GbInto(const uint8_t* seed, int bit, uint8_t* out);

  /// Expands one whole GGM-tree frontier in place: `buf` holds `count`
  /// λ-byte seeds on entry and their 2·`count` children (children of seed i
  /// at slots 2i and 2i+1) on return; `buf` must have room for 2·`count`
  /// seeds. Produces bit-identical output to per-node `ExpandInto` calls —
  /// the AES backend batches the frontier into multi-block
  /// `EVP_EncryptUpdate` calls (one per 256-parent chunk) instead of
  /// dispatching two blocks at a time, which roughly doubles wide-subtree
  /// expansion throughput.
  static void ExpandFrontierInPlace(uint8_t* buf, size_t count);
};

}  // namespace rsse::crypto

#endif  // RSSE_CRYPTO_PRG_H_
