#include "update/batched_store.h"

#include <algorithm>

#include "rsse/factory.h"

namespace rsse::update {

BatchedStore::BatchedStore(SchemeId scheme, Domain domain,
                           size_t consolidation_step, uint64_t rng_seed)
    : scheme_id_(scheme),
      domain_(domain),
      step_(std::max<size_t>(2, consolidation_step)),
      next_seed_(rng_seed) {}

Result<std::unique_ptr<BatchedStore::Instance>> BatchedStore::BuildInstance(
    std::vector<UpdateOp> ops) {
  auto instance = std::make_unique<Instance>();
  instance->ops = std::move(ops);
  std::vector<Record> records;
  records.reserve(instance->ops.size());
  for (const UpdateOp& op : instance->ops) {
    records.push_back(op.record);
    instance->by_id[op.record.id] = &op;
  }
  // Fresh scheme object => fresh keys (Setup runs inside Build): forward
  // privacy across batches and across consolidations.
  instance->scheme = MakeScheme(scheme_id_, next_seed_++);
  if (instance->scheme == nullptr) {
    return Status::InvalidArgument("unsupported scheme for BatchedStore");
  }
  Status built = instance->scheme->Build(Dataset(domain_, std::move(records)));
  if (!built.ok()) return built;
  return instance;
}

std::vector<UpdateOp> BatchedStore::MergeOps(
    const std::vector<std::unique_ptr<Instance>>& sources) {
  // Group by id; an insert/tombstone pair inside the merged set cancels; a
  // lone tombstone must survive (its insert lives in an older instance).
  std::unordered_map<uint64_t, std::vector<const UpdateOp*>> by_id;
  for (const auto& instance : sources) {
    for (const UpdateOp& op : instance->ops) {
      by_id[op.record.id].push_back(&op);
    }
  }
  std::vector<UpdateOp> merged;
  merged.reserve(by_id.size());
  for (const auto& [id, ops] : by_id) {
    const UpdateOp* latest = ops.front();
    bool has_insert = false;
    for (const UpdateOp* op : ops) {
      if (op->seq > latest->seq) latest = op;
      if (op->type == UpdateOp::Type::kInsert) has_insert = true;
    }
    if (latest->type == UpdateOp::Type::kDelete && has_insert) {
      continue;  // pair cancelled: the tuple was born and died in this merge
    }
    merged.push_back(*latest);
  }
  return merged;
}

Status BatchedStore::ApplyBatch(const std::vector<UpdateOp>& batch) {
  if (batch.empty()) return Status::Ok();

  // Within a batch the last op per id wins; assign global sequence numbers
  // in arrival order.
  std::vector<UpdateOp> ops;
  ops.reserve(batch.size());
  std::unordered_map<uint64_t, size_t> position;
  for (const UpdateOp& op : batch) {
    UpdateOp stamped = op;
    stamped.seq = next_seq_++;
    auto it = position.find(op.record.id);
    if (it != position.end()) {
      ops[it->second] = stamped;
    } else {
      position[op.record.id] = ops.size();
      ops.push_back(stamped);
    }
  }

  Result<std::unique_ptr<Instance>> instance = BuildInstance(std::move(ops));
  if (!instance.ok()) return instance.status();
  if (levels_.empty()) levels_.emplace_back();
  levels_[0].push_back(std::move(instance).value());

  // Hierarchical consolidation: s instances at level l merge into one
  // re-keyed instance at level l+1.
  for (size_t level = 0; level < levels_.size(); ++level) {
    if (levels_[level].size() < step_) break;
    std::vector<UpdateOp> merged = MergeOps(levels_[level]);
    levels_[level].clear();
    ++consolidations_;
    if (merged.empty()) continue;
    Result<std::unique_ptr<Instance>> consolidated =
        BuildInstance(std::move(merged));
    if (!consolidated.ok()) return consolidated.status();
    if (levels_.size() <= level + 1) levels_.emplace_back();
    levels_[level + 1].push_back(std::move(consolidated).value());
  }
  return Status::Ok();
}

Result<QueryResult> BatchedStore::Query(const Range& r) {
  QueryResult aggregate;
  // The op with the highest sequence number decides each id's state; the
  // owner also drops false positives using the (decrypted) attributes.
  std::unordered_map<uint64_t, const UpdateOp*> best;
  for (const auto& level : levels_) {
    for (const auto& instance : level) {
      Result<QueryResult> one = instance->scheme->Query(r);
      if (!one.ok()) return one.status();
      aggregate.token_count += one->token_count;
      aggregate.token_bytes += one->token_bytes;
      aggregate.trapdoor_nanos += one->trapdoor_nanos;
      aggregate.search_nanos += one->search_nanos;
      aggregate.rounds = std::max(aggregate.rounds, one->rounds);
      for (uint64_t id : one->ids) {
        auto it = instance->by_id.find(id);
        if (it == instance->by_id.end()) continue;
        const UpdateOp* op = it->second;
        if (!r.Contains(op->record.attr)) continue;  // false positive
        auto [slot, inserted] = best.try_emplace(id, op);
        if (!inserted && op->seq > slot->second->seq) slot->second = op;
      }
    }
  }
  for (const auto& [id, op] : best) {
    if (op->type == UpdateOp::Type::kInsert) aggregate.ids.push_back(id);
  }
  std::sort(aggregate.ids.begin(), aggregate.ids.end());
  return aggregate;
}

size_t BatchedStore::ActiveInstanceCount() const {
  size_t count = 0;
  for (const auto& level : levels_) count += level.size();
  return count;
}

size_t BatchedStore::TotalIndexSizeBytes() const {
  size_t total = 0;
  for (const auto& level : levels_) {
    for (const auto& instance : level) {
      total += instance->scheme->IndexSizeBytes();
    }
  }
  return total;
}

size_t BatchedStore::LiveTupleCount() const {
  std::unordered_map<uint64_t, const UpdateOp*> best;
  for (const auto& level : levels_) {
    for (const auto& instance : level) {
      for (const UpdateOp& op : instance->ops) {
        auto [slot, inserted] = best.try_emplace(op.record.id, &op);
        if (!inserted && op.seq > slot->second->seq) slot->second = &op;
      }
    }
  }
  size_t live = 0;
  for (const auto& [id, op] : best) {
    if (op->type == UpdateOp::Type::kInsert) ++live;
  }
  return live;
}

}  // namespace rsse::update
