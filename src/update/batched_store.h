#ifndef RSSE_UPDATE_BATCHED_STORE_H_
#define RSSE_UPDATE_BATCHED_STORE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "rsse/scheme.h"

namespace rsse::update {

/// One update operation. An insert adds a tuple; a delete inserts a
/// *tombstone* carrying the deleted tuple's (id, attr) with a flag — the
/// tombstone is indexed like a regular tuple (so the same range queries
/// discover it) and the owner filters the id out during result refinement.
/// Modifications are expressed as delete(old) + insert(new), as in the
/// paper's bulk-loading model.
struct UpdateOp {
  enum class Type { kInsert, kDelete };
  Type type = Type::kInsert;
  Record record;
  /// Global sequence number assigned by the store when the batch is
  /// applied; the op with the highest seq determines an id's live state.
  uint64_t seq = 0;
};

/// The paper's Section-7 update mechanism over purely *static* RSSE
/// instances (the Vertica-style alternative to dynamic SSE):
///
///  * every batch becomes an independent static index under a fresh key
///    (forward privacy: old trapdoors are bound to retired keys);
///  * when `consolidation_step` (s) sibling instances accumulate at a
///    level, the owner downloads, merges, cancels insert/tombstone pairs,
///    re-keys and rebuilds one instance at the next level — a hierarchical
///    s-ary LSM merge keeping O(s log_s b) active instances;
///  * a query fans out to every active instance; the owner-side refiner
///    drops tombstoned ids (and, for SRC-based schemes, false positives).
class BatchedStore {
 public:
  /// `scheme` selects the underlying static RSSE construction;
  /// `consolidation_step` is the paper's parameter s (>= 2).
  BatchedStore(SchemeId scheme, Domain domain, size_t consolidation_step,
               uint64_t rng_seed = 1);

  /// Applies one batch of updates: builds a new static instance and runs
  /// any pending consolidations.
  Status ApplyBatch(const std::vector<UpdateOp>& batch);

  /// Fans the query out to all active instances, merges and refines.
  /// Returns the final (owner-refined) ids along with aggregate protocol
  /// costs summed over instances.
  Result<QueryResult> Query(const Range& r);

  /// Number of active (server-resident) instances: b before any merge,
  /// O(s log_s b) in steady state.
  size_t ActiveInstanceCount() const;

  /// Total outsourced index bytes across active instances.
  size_t TotalIndexSizeBytes() const;

  /// Number of consolidation merges performed so far.
  size_t ConsolidationCount() const { return consolidations_; }

  /// Tuples currently live (inserted and not tombstoned).
  size_t LiveTupleCount() const;

 private:
  struct Instance {
    std::unique_ptr<RangeScheme> scheme;
    /// Owner-side stand-in for the decrypted tuple payloads: per id, the
    /// op flag and attribute (used for refinement and for merges).
    std::vector<UpdateOp> ops;
    std::unordered_map<uint64_t, const UpdateOp*> by_id;
  };

  /// Builds a static instance (fresh key) from `ops`.
  Result<std::unique_ptr<Instance>> BuildInstance(std::vector<UpdateOp> ops);

  /// Merges `sources` (oldest first), cancelling insert/tombstone pairs.
  static std::vector<UpdateOp> MergeOps(
      const std::vector<std::unique_ptr<Instance>>& sources);

  SchemeId scheme_id_;
  Domain domain_;
  size_t step_;
  uint64_t next_seed_;
  uint64_t next_seq_ = 1;
  size_t consolidations_ = 0;
  /// levels_[l] holds the not-yet-consolidated instances at LSM level l,
  /// oldest first.
  std::vector<std::vector<std::unique_ptr<Instance>>> levels_;
};

}  // namespace rsse::update

#endif  // RSSE_UPDATE_BATCHED_STORE_H_
