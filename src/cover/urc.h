#ifndef RSSE_COVER_URC_H_
#define RSSE_COVER_URC_H_

#include <vector>

#include "cover/dyadic.h"
#include "data/dataset.h"

namespace rsse {

/// Uniform Range Cover (Kiayias et al., CCS'13): starts from the BRC and
/// repeatedly splits nodes into their children until every level
/// 0..max_level is populated, where max_level is the highest level present
/// in the current cover. The split rule is deterministic (leftmost node of
/// the lowest level above the smallest missing level), which makes the
/// resulting *multiset of node levels depend only on the range size R* —
/// the worst-case decomposition — so an adversary observing the per-level
/// token counts learns R but nothing about the range's position. Still
/// O(log R) nodes.
std::vector<DyadicNode> UniformRangeCover(const Range& r, int bits);

/// The canonical URC level multiset for range size `R` (ascending). Exposed
/// for leakage analysis and property tests: UniformRangeCover of *any* range
/// of size R yields exactly this multiset of levels.
std::vector<int> UrcLevelProfile(uint64_t range_size, int bits);

}  // namespace rsse

#endif  // RSSE_COVER_URC_H_
