#include "cover/urc.h"

#include <algorithm>

#include "cover/brc.h"

namespace rsse {

namespace {

/// Smallest level in [0, max_level) with no node in `cover`, or -1 when all
/// levels below the maximum are populated.
int SmallestMissingLevel(const std::vector<DyadicNode>& cover) {
  int max_level = 0;
  for (const DyadicNode& n : cover) max_level = std::max(max_level, n.level);
  for (int level = 0; level < max_level; ++level) {
    bool present = false;
    for (const DyadicNode& n : cover) {
      if (n.level == level) {
        present = true;
        break;
      }
    }
    if (!present) return level;
  }
  return -1;
}

}  // namespace

std::vector<DyadicNode> UniformRangeCover(const Range& r, int bits) {
  std::vector<DyadicNode> cover = BestRangeCover(r, bits);
  for (;;) {
    int missing = SmallestMissingLevel(cover);
    if (missing < 0) break;
    // Split the leftmost node of the lowest level above `missing`.
    size_t pick = cover.size();
    for (size_t i = 0; i < cover.size(); ++i) {
      if (cover[i].level <= missing) continue;
      if (pick == cover.size() || cover[i].level < cover[pick].level ||
          (cover[i].level == cover[pick].level &&
           cover[i].Lo() < cover[pick].Lo())) {
        pick = i;
      }
    }
    DyadicNode node = cover[pick];
    cover[pick] = node.LeftChild();
    cover.insert(cover.begin() + static_cast<long>(pick) + 1,
                 node.RightChild());
  }
  // Keep the left-to-right invariant of BestRangeCover (the trapdoor layer
  // is responsible for random permutation before anything leaves the owner).
  std::sort(cover.begin(), cover.end(),
            [](const DyadicNode& a, const DyadicNode& b) {
              return a.Lo() < b.Lo();
            });
  return cover;
}

std::vector<int> UrcLevelProfile(uint64_t range_size, int bits) {
  // The profile is position-independent (property-tested exhaustively), so
  // computing it for the left-aligned range of the given size suffices.
  if (range_size == 0) return {};
  std::vector<DyadicNode> cover =
      UniformRangeCover(Range{0, range_size - 1}, bits);
  std::vector<int> levels;
  levels.reserve(cover.size());
  for (const DyadicNode& n : cover) levels.push_back(n.level);
  std::sort(levels.begin(), levels.end());
  return levels;
}

}  // namespace rsse
