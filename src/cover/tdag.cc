#include "cover/tdag.h"

namespace rsse {

Bytes TdagNode::EncodeKeyword() const {
  Bytes out;
  out.reserve(1 + 1 + 8);
  AppendByte(out, /*tag=*/0x02);  // TDAG keyword namespace
  AppendByte(out, static_cast<uint8_t>(level));
  AppendUint64(out, start);
  return out;
}

Tdag::Tdag(int bits) : bits_(bits) {}

std::optional<TdagNode> Tdag::InjectedNodeAt(uint64_t value, int level) const {
  if (level < 1 || level >= bits_) return std::nullopt;
  const uint64_t size = uint64_t{1} << level;
  const uint64_t half = size >> 1;
  if (value < half) return std::nullopt;  // no injected window starts before half
  const uint64_t k = (value - half) >> level;
  const uint64_t start = k * size + half;
  if (start + size > leaf_count()) return std::nullopt;  // falls off the edge
  return TdagNode{level, start};
}

std::vector<TdagNode> Tdag::Cover(uint64_t value) const {
  std::vector<TdagNode> nodes;
  nodes.reserve(2 * static_cast<size_t>(bits_) + 1);
  for (int level = 0; level <= bits_; ++level) {
    nodes.push_back(TdagNode{level, (value >> level) << level});
    if (auto injected = InjectedNodeAt(value, level); injected.has_value()) {
      nodes.push_back(*injected);
    }
  }
  return nodes;
}

TdagNode Tdag::SingleRangeCover(const Range& r) const {
  for (int level = 0; level <= bits_; ++level) {
    // Regular (aligned) node first.
    if ((r.lo >> level) == (r.hi >> level)) {
      return TdagNode{level, (r.lo >> level) << level};
    }
    // Injected node at the same level.
    if (auto injected = InjectedNodeAt(r.lo, level);
        injected.has_value() && injected->CoversRange(r)) {
      return *injected;
    }
  }
  // The root always covers (r is within the padded domain).
  return TdagNode{bits_, 0};
}

uint64_t Tdag::NodeCount() const {
  uint64_t total = 0;
  for (int level = 0; level <= bits_; ++level) {
    const uint64_t regular = leaf_count() >> level;
    total += regular;
    if (level >= 1 && regular >= 2) total += regular - 1;  // injected
  }
  return total;
}

}  // namespace rsse
