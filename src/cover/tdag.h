#ifndef RSSE_COVER_TDAG_H_
#define RSSE_COVER_TDAG_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "data/dataset.h"

namespace rsse {

/// A node of the TDAG (tree-like directed acyclic graph) of Section 6.2:
/// the full binary tree over the padded domain plus, at every level, one
/// *injected* node between each pair of horizontally adjacent nodes, linked
/// to the two "cousin" children below it. A node is identified by its level
/// and the first leaf it covers; injected nodes are exactly those whose
/// start is not aligned to their size (offset by half a node).
struct TdagNode {
  int level = 0;      // subtree height; covers 2^level leaves
  uint64_t start = 0; // first leaf covered

  uint64_t Size() const { return uint64_t{1} << level; }
  uint64_t Lo() const { return start; }
  uint64_t Hi() const { return start + Size() - 1; }
  Range ToRange() const { return Range{Lo(), Hi()}; }
  bool Contains(uint64_t v) const { return v >= Lo() && v <= Hi(); }
  bool CoversRange(const Range& r) const { return Lo() <= r.lo && r.hi <= Hi(); }
  bool IsInjected() const { return level > 0 && (start & (Size() - 1)) != 0; }

  /// Stable byte encoding used as the SSE keyword for this node.
  Bytes EncodeKeyword() const;

  friend bool operator==(const TdagNode&, const TdagNode&) = default;
  friend auto operator<=>(const TdagNode&, const TdagNode&) = default;
};

/// The TDAG over a `bits`-bit padded domain (2^bits leaves).
class Tdag {
 public:
  explicit Tdag(int bits);

  int bits() const { return bits_; }
  uint64_t leaf_count() const { return uint64_t{1} << bits_; }

  /// All TDAG nodes whose subtree contains `value`: the binary-tree
  /// root-to-leaf path plus at most one injected node per level —
  /// O(log m) keywords per tuple (Section 6.2).
  std::vector<TdagNode> Cover(uint64_t value) const;

  /// Single Range Cover: the unique lowest TDAG node that completely covers
  /// `r` (ties at the same level broken toward the aligned/regular node).
  /// By Lemma 1 its subtree has at most 4·|r| leaves.
  TdagNode SingleRangeCover(const Range& r) const;

  /// The injected node at `level` containing `value`, if one exists.
  /// Injected nodes exist for 1 <= level < bits and only where the shifted
  /// window lies fully inside the domain.
  std::optional<TdagNode> InjectedNodeAt(uint64_t value, int level) const;

  /// Total number of nodes in the TDAG (regular + injected); used for
  /// storage accounting.
  uint64_t NodeCount() const;

 private:
  int bits_;
};

}  // namespace rsse

#endif  // RSSE_COVER_TDAG_H_
