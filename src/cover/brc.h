#ifndef RSSE_COVER_BRC_H_
#define RSSE_COVER_BRC_H_

#include <vector>

#include "cover/dyadic.h"
#include "data/dataset.h"

namespace rsse {

/// Best Range Cover: the unique minimal set of dyadic nodes whose subtrees
/// cover exactly the range [r.lo, r.hi] (the "minimum dyadic intervals").
/// |BRC| = O(log R): at most two nodes per level. Nodes are returned in
/// left-to-right order of the sub-ranges they cover.
///
/// `bits` is the height of the tree (domain padded to 2^bits); r must lie
/// within [0, 2^bits - 1].
std::vector<DyadicNode> BestRangeCover(const Range& r, int bits);

}  // namespace rsse

#endif  // RSSE_COVER_BRC_H_
