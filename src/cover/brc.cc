#include "cover/brc.h"

namespace rsse {

std::vector<DyadicNode> BestRangeCover(const Range& r, int bits) {
  std::vector<DyadicNode> cover;
  uint64_t lo = r.lo;
  const uint64_t hi = r.hi;
  // Greedy left-to-right: at each step take the largest dyadic node that
  // starts exactly at `lo` and does not overshoot `hi`. This is the
  // canonical minimal decomposition.
  while (lo <= hi) {
    int level = 0;
    // Grow while the node stays aligned at `lo` and inside [lo, hi].
    while (level < bits) {
      int next = level + 1;
      uint64_t size = uint64_t{1} << next;
      if ((lo & (size - 1)) != 0) break;           // alignment
      if (lo + size - 1 > hi) break;               // overshoot
      level = next;
    }
    cover.push_back(DyadicNode{level, lo >> level});
    uint64_t covered = uint64_t{1} << level;
    if (lo + covered - 1 == hi) break;  // avoid overflow at domain edge
    lo += covered;
  }
  return cover;
}

}  // namespace rsse
