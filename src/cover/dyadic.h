#ifndef RSSE_COVER_DYADIC_H_
#define RSSE_COVER_DYADIC_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "data/dataset.h"

namespace rsse {

/// A node of the full binary tree over the (power-of-two padded) domain:
/// level 0 are leaves (single values), the root of a `bits`-bit domain is at
/// level `bits`. The node at (level, index) covers the dyadic range
/// [index * 2^level, (index+1) * 2^level - 1].
struct DyadicNode {
  int level = 0;
  uint64_t index = 0;

  uint64_t Lo() const { return index << level; }
  uint64_t Hi() const { return ((index + 1) << level) - 1; }
  uint64_t Size() const { return uint64_t{1} << level; }
  Range ToRange() const { return Range{Lo(), Hi()}; }
  bool Contains(uint64_t v) const { return v >= Lo() && v <= Hi(); }
  bool IsLeaf() const { return level == 0; }

  DyadicNode Parent() const { return DyadicNode{level + 1, index >> 1}; }
  DyadicNode LeftChild() const { return DyadicNode{level - 1, index << 1}; }
  DyadicNode RightChild() const {
    return DyadicNode{level - 1, (index << 1) | 1};
  }

  /// Stable byte encoding used as the SSE keyword for this node.
  Bytes EncodeKeyword() const;

  friend bool operator==(const DyadicNode&, const DyadicNode&) = default;
  friend auto operator<=>(const DyadicNode&, const DyadicNode&) = default;
};

/// The dyadic node containing `value` at `level`.
DyadicNode DyadicAncestor(uint64_t value, int level);

/// All `bits + 1` nodes on the root-to-leaf path of `value` (leaf first,
/// root last). These are the keywords a tuple receives in the Logarithmic
/// schemes and the DR(d) set of the PB baseline.
std::vector<DyadicNode> PathToRoot(uint64_t value, int bits);

}  // namespace rsse

#endif  // RSSE_COVER_DYADIC_H_
