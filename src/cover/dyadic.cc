#include "cover/dyadic.h"

namespace rsse {

Bytes DyadicNode::EncodeKeyword() const {
  Bytes out;
  out.reserve(1 + 1 + 8);
  AppendByte(out, /*tag=*/0x01);  // dyadic-tree keyword namespace
  AppendByte(out, static_cast<uint8_t>(level));
  AppendUint64(out, index);
  return out;
}

DyadicNode DyadicAncestor(uint64_t value, int level) {
  return DyadicNode{level, value >> level};
}

std::vector<DyadicNode> PathToRoot(uint64_t value, int bits) {
  std::vector<DyadicNode> path;
  path.reserve(static_cast<size_t>(bits) + 1);
  for (int level = 0; level <= bits; ++level) {
    path.push_back(DyadicAncestor(value, level));
  }
  return path;
}

}  // namespace rsse
