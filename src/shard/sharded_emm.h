#ifndef RSSE_SHARD_SHARDED_EMM_H_
#define RSSE_SHARD_SHARDED_EMM_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/mapped_file.h"
#include "common/status.h"
#include "sse/emm_codec.h"
#include "sse/encrypted_multimap.h"
#include "sse/flat_label_map.h"
#include "sse/keyword_keys.h"

namespace rsse::shard {

/// Construction/IO knobs for the sharded store.
struct ShardOptions {
  /// Number of shards. 0 reads the RSSE_SHARDS environment variable,
  /// defaulting to 1. Clamped to [1, 4096].
  int shards = 0;
  /// Worker threads for build/serialize/deserialize. 0 reads
  /// RSSE_BUILD_THREADS, defaulting to 1.
  int threads = 0;
  sse::PaddingPolicy padding;
};

/// Knobs for opening a v2 store image (`OpenMapped` / `OpenMappedImage`).
struct V2OpenOptions {
  /// Verify the per-section CRC32Cs of every shard before serving. This
  /// reads the whole image — O(size), not O(1) — so the mmap serving path
  /// leaves it off (per-probe bounds checks already rule out UB) and the
  /// hostile-input tests and heap loads turn it on.
  bool verify_checksums = false;
  /// Touch every page of the image up front (synchronous page-cache
  /// warmup; the serverd --prefault pass).
  bool prefault = false;
};

/// The flat encrypted dictionary of Π_bas, hash-partitioned by label across
/// N independent `FlatLabelMap` shards so that multi-core machines build,
/// load, save and search in parallel.
///
/// Labels are PRF outputs, so any fixed byte range of a label is a uniform
/// partitioning key; routing uses bytes [8, 16) while the in-shard probe
/// hash uses bytes [0, 8) — the two are independent, so per-shard tables
/// stay uniformly loaded even conditioned on the shard choice.
///
/// Entries are byte-identical to `EncryptedMultimap` entries (the shared
/// codec in sse/emm_codec.h), and `Serialize` is a per-shard framing of the
/// same label/ciphertext pairs: the sharded store is a drop-in server-side
/// layout, not a new scheme. Build avoids the classic single-merge funnel:
/// workers encrypt keywords into per-(worker, shard) staging buckets, then
/// shards are merged *in parallel* — each shard reserves its exact final
/// size and copies only the buckets routed to it.
class ShardedEmm {
 public:
  ShardedEmm() = default;

  /// An empty store partitioned into `shards` shards (0 → RSSE_SHARDS → 1);
  /// the server-side Update path populates one of these via `Insert`.
  static ShardedEmm WithShards(int shards);

  /// Builds the sharded encrypted dictionary over `postings`.
  static Result<ShardedEmm> Build(const sse::PlainMultimap& postings,
                                  const sse::KeywordKeyDeriver& deriver,
                                  const ShardOptions& options = {});

  /// Counter-probe search for one keyword token, routed across shards.
  std::vector<Bytes> Search(const sse::KeywordKeys& token) const;

  /// Instrumented/gated search (see EncryptedMultimap::Search overload).
  std::vector<Bytes> Search(const sse::KeywordKeys& token,
                            const sse::LabelGate* gate,
                            sse::SearchStats* stats) const;

  /// Ciphertext stored under `label`, or nullopt. The span is invalidated
  /// by the next `Insert`.
  std::optional<ConstByteSpan> Find(const Label& label) const;

  /// Inserts one pre-encrypted entry (the batched-update path of the
  /// server: clients ship codec-format label/ciphertext pairs).
  void Insert(const Label& label, ConstByteSpan value);

  /// Serializes all shards: a header plus one independently parseable
  /// section per shard, so `Deserialize` can restore shards in parallel.
  Bytes Serialize() const;

  /// `target_shards` value asking `Deserialize` to keep the blob's stored
  /// shard count (the default: a round trip is layout-preserving).
  static constexpr int kKeepStoredShards = -1;

  /// Restores a store from `Serialize` output, loading shards with
  /// `threads` workers (0 → RSSE_BUILD_THREADS → 1). INVALID_ARGUMENT on a
  /// corrupt or foreign blob.
  ///
  /// `target_shards` re-partitions the store while loading: a blob written
  /// by a 4-core builder can be split across a 32-core server's shards (or
  /// merged down) in the same parallel pass, instead of serving forever
  /// with the builder's layout. `kKeepStoredShards` preserves the stored
  /// count; 0 re-shards to this host (RSSE_SHARDS, else the hardware
  /// concurrency); a positive count is used as given (clamped to 4096).
  /// Labels hash-route identically at any count, so re-sharding is
  /// invisible to search.
  static Result<ShardedEmm> Deserialize(const Bytes& blob, int threads = 0,
                                        int target_shards = kKeepStoredShards);

  // -------------------------------------------------------------------------
  // v2 store image: the page-aligned, mmap-native layout where the
  // serialized file IS the runtime layout (fixed header, per-shard section
  // table, then each shard's probe-ready slot table + ciphertext arena,
  // every section 4 KiB-aligned and CRC32C-checksummed). See the format
  // comment in sharded_emm.cc.
  // -------------------------------------------------------------------------

  /// Serializes all shards as a v2 image. `kind`/`epoch` are stored in the
  /// header for self-description (the snapshot container carries the
  /// authoritative copies). Leaked duplicate-overwrite bytes are compacted
  /// away: the emitted arenas total exactly the live `SizeBytes()` value
  /// bytes.
  Bytes SerializeV2(uint8_t kind = 0, uint64_t epoch = 0) const;

  /// True when `image` starts with the v2 magic (format sniffing for load
  /// paths that accept either generation).
  static bool IsV2Image(ConstByteSpan image);

  /// Maps `path` and serves straight from the file: O(1) in the image size
  /// (header + section table validated; shard bytes stay on disk until
  /// probed). The store keeps the mapping alive and `madvise`s it for
  /// random access. Mutation copies only the touched shards to heap.
  static Result<ShardedEmm> OpenMapped(const std::string& path,
                                       const V2OpenOptions& options = {});

  /// As `OpenMapped`, over the byte range [offset, offset+length) of an
  /// existing mapping (the snapshot container embeds the image at an
  /// offset). The store shares ownership of `file`.
  static Result<ShardedEmm> OpenMappedImage(
      std::shared_ptr<const MappedFile> file, size_t offset, size_t length,
      const V2OpenOptions& options = {});

  /// Loads a v2 image fully onto the heap (the --mmap=off path for v2
  /// snapshots): same validation as `OpenMapped` plus, by default, the
  /// per-section CRC pass, then a parallel copy with `threads` workers
  /// (0 → RSSE_BUILD_THREADS → 1).
  static Result<ShardedEmm> LoadV2(ConstByteSpan image, int threads = 0,
                                   bool verify_checksums = true);

  /// Bytes still served from a borrowed mapping / from owned heap arrays,
  /// summed over shards. A freshly mapped store is all mapped; WAL replay
  /// and updates migrate touched shards to heap.
  uint64_t MappedBytes() const;
  uint64_t HeapBytes() const;

  /// True while at least one shard serves from the mapping.
  bool IsMapped() const { return MappedBytes() > 0; }

  /// Shard index of a label (public so tests can pin the routing).
  static size_t ShardOf(const Label& label, size_t shard_count);

  int shard_count() const { return static_cast<int>(shards_.size()); }
  size_t EntryCount() const;
  size_t SizeBytes() const;

  /// Entries currently stored in shard `s` (load-balance introspection).
  size_t ShardEntryCount(size_t s) const { return shards_[s].size(); }

 private:
  explicit ShardedEmm(size_t shard_count) : shards_(shard_count) {}

  std::vector<sse::FlatLabelMap> shards_;
  /// Set by OpenMapped/OpenMappedImage: keeps the file mapped for as long
  /// as any shard view borrows from it (held even after every shard has
  /// migrated to heap — the mapping is cheap and the lifetime is simple).
  std::shared_ptr<const MappedFile> mapping_;
};

}  // namespace rsse::shard

#endif  // RSSE_SHARD_SHARDED_EMM_H_
