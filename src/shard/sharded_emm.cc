#include "shard/sharded_emm.h"

#include <algorithm>
#include <cstring>

#include "common/crc32c.h"
#include "common/env.h"
#include "common/parallel.h"
#include "crypto/aes.h"

namespace rsse::shard {

namespace {

constexpr uint64_t kShardMagic = 0x5253534553484d31ull;  // "RSSESHM1"
constexpr int kMaxShards = 4096;

/// Staging bucket: entries one build worker encrypted for one shard.
/// Ciphertexts are packed back to back (the lengths delimit them).
struct Bucket {
  std::vector<Label> labels;
  std::vector<uint32_t> value_lens;
  Bytes values;
};

int ResolveShardCount(int requested) {
  int shards = ResolveThreadCount(requested, "RSSE_SHARDS");
  return std::clamp(shards, 1, kMaxShards);
}

}  // namespace

ShardedEmm ShardedEmm::WithShards(int shards) {
  return ShardedEmm(static_cast<size_t>(ResolveShardCount(shards)));
}

size_t ShardedEmm::ShardOf(const Label& label, size_t shard_count) {
  // Bytes [8, 16) route; bytes [0, 8) feed the in-shard probe hash
  // (LabelHash). Labels are PRF outputs, so both halves are independently
  // uniform. Read big-endian like the rest of the serialization format,
  // so a multi-shard blob routes identically on every host.
  uint64_t v = 0;
  for (size_t i = 8; i < kLabelBytes; ++i) v = (v << 8) | label[i];
  return static_cast<size_t>(v % shard_count);
}

Result<ShardedEmm> ShardedEmm::Build(const sse::PlainMultimap& postings,
                                     const sse::KeywordKeyDeriver& deriver,
                                     const ShardOptions& options) {
  const size_t shard_count =
      static_cast<size_t>(ResolveShardCount(options.shards));
  const int threads = ResolveThreadCount(options.threads,
                                         "RSSE_BUILD_THREADS");
  ShardedEmm store(shard_count);

  if (shard_count == 1 && threads == 1) {
    // Degenerate single-shard single-thread build: exact-size reserve and
    // in-place encryption into the one table arena, exactly as the flat
    // EncryptedMultimap hot path (same shared cost model).
    const sse::EmmSizing sizing =
        sse::ComputeEmmSizing(postings, options.padding.quantum);
    sse::FlatLabelMap& dict = store.shards_[0];
    dict.Reserve(sizing.entries, sizing.value_bytes);
    sse::EmmBuildScratch scratch;
    for (const auto& [keyword, payloads] : postings) {
      Status s = sse::EncryptKeywordEntries(
          keyword, payloads, deriver, options.padding.quantum, scratch,
          [&dict](const Label& label, size_t len) {
            return dict.InsertUninit(label, len);
          });
      if (!s.ok()) return s;
    }
    return store;
  }

  // Phase A — encryption (embarrassingly parallel over keywords): each
  // worker encrypts its strided slice of the keyword set and routes every
  // entry into a private per-shard staging bucket; no locks, no sharing.
  std::vector<const std::pair<const Bytes, std::vector<Bytes>>*> items;
  items.reserve(postings.size());
  for (const auto& kv : postings) items.push_back(&kv);

  std::vector<std::vector<Bucket>> staging(
      static_cast<size_t>(threads), std::vector<Bucket>(shard_count));
  std::vector<Status> worker_status(static_cast<size_t>(threads));

  RunWorkers(threads, [&](int t) {
    sse::EmmBuildScratch scratch;
    std::vector<Bucket>& buckets = staging[static_cast<size_t>(t)];
    for (size_t i = static_cast<size_t>(t); i < items.size();
         i += static_cast<size_t>(threads)) {
      Status s = sse::EncryptKeywordEntries(
          items[i]->first, items[i]->second, deriver, options.padding.quantum,
          scratch, [&buckets, shard_count](const Label& label, size_t len) {
            Bucket& b = buckets[ShardOf(label, shard_count)];
            b.labels.push_back(label);
            b.value_lens.push_back(static_cast<uint32_t>(len));
            const size_t old_size = b.values.size();
            b.values.resize(old_size + len);
            return ByteSpan(b.values.data() + old_size, len);
          });
      if (!s.ok()) {
        worker_status[static_cast<size_t>(t)] = s;
        return;
      }
    }
  });
  for (const Status& s : worker_status) {
    if (!s.ok()) return s;
  }

  // Phase B — merge (parallel over *shards*, the step the unsharded build
  // funnels through one thread): each shard owner sums the exact entry and
  // arena sizes of its buckets, reserves once, and copies them in.
  const int merge_workers =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(threads),
                                        shard_count));
  RunWorkers(merge_workers, [&](int w) {
    for (size_t s = static_cast<size_t>(w); s < shard_count;
         s += static_cast<size_t>(merge_workers)) {
      size_t entries = 0;
      size_t value_bytes = 0;
      for (int t = 0; t < threads; ++t) {
        const Bucket& b = staging[static_cast<size_t>(t)][s];
        entries += b.labels.size();
        value_bytes += b.values.size();
      }
      sse::FlatLabelMap& dict = store.shards_[s];
      dict.Reserve(entries, value_bytes);
      for (int t = 0; t < threads; ++t) {
        const Bucket& b = staging[static_cast<size_t>(t)][s];
        size_t offset = 0;
        for (size_t i = 0; i < b.labels.size(); ++i) {
          dict.Insert(b.labels[i],
                      ConstByteSpan(b.values.data() + offset,
                                    b.value_lens[i]));
          offset += b.value_lens[i];
        }
      }
    }
  });
  return store;
}

std::optional<ConstByteSpan> ShardedEmm::Find(const Label& label) const {
  if (shards_.empty()) return std::nullopt;
  return shards_[ShardOf(label, shards_.size())].Find(label);
}

void ShardedEmm::Insert(const Label& label, ConstByteSpan value) {
  if (shards_.empty()) shards_.resize(1);
  shards_[ShardOf(label, shards_.size())].Insert(label, value);
}

std::vector<Bytes> ShardedEmm::Search(const sse::KeywordKeys& token) const {
  return Search(token, nullptr, nullptr);
}

std::vector<Bytes> ShardedEmm::Search(const sse::KeywordKeys& token,
                                      const sse::LabelGate* gate,
                                      sse::SearchStats* stats) const {
  std::vector<Bytes> results;
  sse::SearchEntries(
      token, [this](const Label& label) { return Find(label); }, results,
      gate, stats);
  return results;
}

size_t ShardedEmm::EntryCount() const {
  size_t n = 0;
  for (const sse::FlatLabelMap& s : shards_) n += s.size();
  return n;
}

size_t ShardedEmm::SizeBytes() const {
  size_t bytes = 0;
  for (const sse::FlatLabelMap& s : shards_) {
    bytes += s.size() * kLabelBytes + s.ValueBytes();
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// Serialization. Layout (all integers big-endian):
//   [u64 magic "RSSESHM1"][u32 shard_count]
//   [u64 section_len] x shard_count            -- the shard directory
//   section x shard_count
// where each section is
//   [u64 entry_count] ([16-byte label][u32 value_len][value]) x entry_count
// The directory makes every section independently addressable, so both
// Serialize and Deserialize fan shards out across worker threads.
// ---------------------------------------------------------------------------

Bytes ShardedEmm::Serialize() const {
  const size_t shard_count = shards_.size();
  std::vector<size_t> section_len(shard_count);
  size_t total = 12 + 8 * shard_count;
  for (size_t s = 0; s < shard_count; ++s) {
    section_len[s] =
        8 + shards_[s].size() * (kLabelBytes + 4) + shards_[s].ValueBytes();
    total += section_len[s];
  }

  Bytes out(total);
  size_t offset = 0;
  auto put_u64 = [&out](size_t at, uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out[at + static_cast<size_t>(i)] =
          static_cast<uint8_t>(v >> (56 - 8 * i));
    }
  };
  put_u64(0, kShardMagic);
  out[8] = static_cast<uint8_t>(shard_count >> 24);
  out[9] = static_cast<uint8_t>(shard_count >> 16);
  out[10] = static_cast<uint8_t>(shard_count >> 8);
  out[11] = static_cast<uint8_t>(shard_count);
  offset = 12;
  std::vector<size_t> section_at(shard_count);
  size_t cursor = 12 + 8 * shard_count;
  for (size_t s = 0; s < shard_count; ++s) {
    put_u64(offset, section_len[s]);
    offset += 8;
    section_at[s] = cursor;
    cursor += section_len[s];
  }

  const int workers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(
                           ResolveThreadCount(0, "RSSE_BUILD_THREADS")),
                       shard_count));
  RunWorkers(workers, [&](int w) {
    for (size_t s = static_cast<size_t>(w); s < shard_count;
         s += static_cast<size_t>(workers)) {
      size_t at = section_at[s];
      put_u64(at, shards_[s].size());
      at += 8;
      shards_[s].ForEach([&](const Label& label, ConstByteSpan value) {
        std::memcpy(out.data() + at, label.data(), kLabelBytes);
        at += kLabelBytes;
        const uint32_t len = static_cast<uint32_t>(value.size());
        out[at] = static_cast<uint8_t>(len >> 24);
        out[at + 1] = static_cast<uint8_t>(len >> 16);
        out[at + 2] = static_cast<uint8_t>(len >> 8);
        out[at + 3] = static_cast<uint8_t>(len);
        at += 4;
        std::memcpy(out.data() + at, value.data(), value.size());
        at += value.size();
      });
    }
  });
  return out;
}

namespace {

/// One parsed entry of a stored section, referencing the blob (no copy):
/// the staging unit of the re-shard-on-load path.
struct EntryRef {
  Label label;
  size_t value_at;
  uint32_t value_len;
};

/// Parses and validates one stored shard section — the single definition
/// of what a well-formed section is, shared by the layout-preserving and
/// the re-shard load paths so their acceptance can never diverge.
/// `on_count(count, value_bytes_upper_bound)` fires once before the
/// entries (table reservation); `emit(label, value_at, value_len)` fires
/// per validated entry.
template <typename OnCount, typename EmitFn>
Status ParseShardSection(const Bytes& blob, size_t section_at,
                         size_t section_len, size_t stored_shard,
                         size_t shard_count, OnCount&& on_count,
                         EmitFn&& emit) {
  const size_t end = section_at + section_len;
  size_t at = section_at;
  const uint64_t count = ReadUint64(blob, at);
  at += 8;
  // Every entry needs at least label + length prefix + a value byte.
  if (count > (end - at) / (kLabelBytes + 4 + 1)) {
    return Status::InvalidArgument("implausible entry count in shard");
  }
  on_count(static_cast<size_t>(count), end - at - count * (kLabelBytes + 4));
  Label label;
  for (uint64_t i = 0; i < count; ++i) {
    if (at + kLabelBytes + 4 > end) {
      return Status::InvalidArgument("truncated shard entry");
    }
    std::memcpy(label.data(), blob.data() + at, kLabelBytes);
    at += kLabelBytes;
    const uint32_t value_len = ReadUint32(blob, at);
    at += 4;
    if (value_len == 0 || value_len > end - at) {
      return Status::InvalidArgument("truncated shard entry value");
    }
    if (ShardedEmm::ShardOf(label, shard_count) != stored_shard) {
      return Status::InvalidArgument("entry routed to the wrong shard");
    }
    emit(label, at, value_len);
    at += value_len;
  }
  if (at != end) {
    return Status::InvalidArgument("trailing bytes in shard section");
  }
  return Status::Ok();
}

}  // namespace

Result<ShardedEmm> ShardedEmm::Deserialize(const Bytes& blob, int threads,
                                           int target_shards) {
  if (blob.size() < 12 || ReadUint64(blob, 0) != kShardMagic) {
    return Status::InvalidArgument("not a ShardedEmm blob");
  }
  const uint32_t shard_count = ReadUint32(blob, 8);
  if (shard_count == 0 || shard_count > kMaxShards) {
    return Status::InvalidArgument("implausible shard count in blob header");
  }
  if (target_shards < kKeepStoredShards) {
    return Status::InvalidArgument("invalid target shard count");
  }
  const size_t dir_end = 12 + size_t{8} * shard_count;
  if (blob.size() < dir_end) {
    return Status::InvalidArgument("truncated blob (shard directory)");
  }
  std::vector<size_t> section_at(shard_count);
  std::vector<size_t> section_len(shard_count);
  size_t cursor = dir_end;
  for (uint32_t s = 0; s < shard_count; ++s) {
    const uint64_t len = ReadUint64(blob, 12 + size_t{8} * s);
    if (len < 8 || len > blob.size() - cursor) {
      return Status::InvalidArgument("implausible shard section length");
    }
    section_at[s] = cursor;
    section_len[s] = static_cast<size_t>(len);
    cursor += static_cast<size_t>(len);
  }
  if (cursor != blob.size()) {
    return Status::InvalidArgument("trailing bytes after shard sections");
  }

  const size_t target =
      target_shards == kKeepStoredShards
          ? shard_count
          : static_cast<size_t>(std::clamp(
                ResolveThreadCountOrHardware(target_shards, "RSSE_SHARDS"), 1,
                kMaxShards));
  ShardedEmm store(target);
  const int threads_resolved =
      ResolveThreadCount(threads, "RSSE_BUILD_THREADS");

  if (target == shard_count) {
    // Layout-preserving load: each stored section IS its shard — parse it
    // straight into the table, one shard per worker at a time.
    const int workers = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(threads_resolved), shard_count));
    std::vector<Status> worker_status(static_cast<size_t>(workers));
    RunWorkers(workers, [&](int w) {
      for (size_t s = static_cast<size_t>(w); s < shard_count;
           s += static_cast<size_t>(workers)) {
        sse::FlatLabelMap& dict = store.shards_[s];
        Status status = ParseShardSection(
            blob, section_at[s], section_len[s], s, shard_count,
            [&dict](size_t count, size_t value_bytes) {
              dict.Reserve(count, value_bytes);
            },
            [&dict, &blob](const Label& label, size_t value_at,
                           uint32_t value_len) {
              dict.Insert(label,
                          ConstByteSpan(blob.data() + value_at, value_len));
            });
        if (!status.ok()) {
          worker_status[static_cast<size_t>(w)] = status;
          return;
        }
      }
    });
    for (const Status& s : worker_status) {
      if (!s.ok()) return s;
    }
    return store;
  }

  // Re-shard on load: split/merge the stored layout to `target` shards in
  // the same two-phase shape as Build. Phase A parses stored sections in
  // parallel, validating each entry against its *stored* routing and
  // staging a blob reference under its *target* shard; phase B merges the
  // buckets, one target shard per worker at a time.
  const int scan_workers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(threads_resolved), shard_count));
  std::vector<std::vector<std::vector<EntryRef>>> staging(
      static_cast<size_t>(scan_workers),
      std::vector<std::vector<EntryRef>>(target));
  std::vector<Status> scan_status(static_cast<size_t>(scan_workers));
  RunWorkers(scan_workers, [&](int w) {
    std::vector<std::vector<EntryRef>>& buckets =
        staging[static_cast<size_t>(w)];
    for (size_t s = static_cast<size_t>(w); s < shard_count;
         s += static_cast<size_t>(scan_workers)) {
      Status status = ParseShardSection(
          blob, section_at[s], section_len[s], s, shard_count,
          [](size_t, size_t) {},
          [&buckets, target](const Label& label, size_t value_at,
                             uint32_t value_len) {
            buckets[ShardOf(label, target)].push_back(
                EntryRef{label, value_at, value_len});
          });
      if (!status.ok()) {
        scan_status[static_cast<size_t>(w)] = status;
        return;
      }
    }
  });
  for (const Status& s : scan_status) {
    if (!s.ok()) return s;
  }

  const int merge_workers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(threads_resolved), target));
  RunWorkers(merge_workers, [&](int w) {
    for (size_t t = static_cast<size_t>(w); t < target;
         t += static_cast<size_t>(merge_workers)) {
      size_t entries = 0;
      size_t value_bytes = 0;
      for (int sw = 0; sw < scan_workers; ++sw) {
        for (const EntryRef& ref : staging[static_cast<size_t>(sw)][t]) {
          ++entries;
          value_bytes += ref.value_len;
        }
      }
      sse::FlatLabelMap& dict = store.shards_[t];
      dict.Reserve(entries, value_bytes);
      for (int sw = 0; sw < scan_workers; ++sw) {
        for (const EntryRef& ref : staging[static_cast<size_t>(sw)][t]) {
          dict.Insert(ref.label,
                      ConstByteSpan(blob.data() + ref.value_at,
                                    ref.value_len));
        }
      }
    }
  });
  return store;
}

// ---------------------------------------------------------------------------
// v2 store image: the mmap-native layout. The file is its own runtime
// representation — a mapped image serves Find/Search with zero
// deserialization. Layout (all integers little-endian; "aligned" means a
// 4096-byte boundary):
//
//   [0]   char[8]  "RSSESHM2"
//   [8]   u32      version (2)
//   [12]  u8       kind, then 3 zero bytes
//   [16]  u64      epoch
//   [24]  u32      shard_count          (1 .. kMaxShards)
//   [28]  u32      zero
//   [32]  u64      total entry count    (== sum of per-shard entries)
//   [40]  u64      total value bytes    (== sum of per-shard arena bytes)
//   [48]  section table, shard_count x 48 bytes:
//           u64 slots_offset   u64 slots_bytes
//           u64 arena_offset   u64 arena_bytes
//           u64 entries        u32 slots_crc32c   u32 arena_crc32c
//   [...] u32      header CRC32C over everything above it
//   zero padding to the next aligned boundary, then the sections in shard
//   order with canonical packing: each non-empty section starts at the
//   next aligned boundary and is zero-padded up to the following one;
//   empty sections (bytes == 0) record the cursor and consume nothing.
//
// Each shard's slot section is its FlatLabelMap table in probe layout
// (packed kSlotRecordBytes records — see flat_label_map.h), its arena
// section the compacted ciphertext bytes. Canonical packing means a
// validator recomputes every offset from the byte counts alone, so
// unaligned, overlapping or out-of-bounds sections are all rejected by one
// equality check per field. The header + table are validated (and
// checksummed) eagerly — O(shards), not O(bytes) — while section CRCs are
// verified only when V2OpenOptions.verify_checksums asks for the full
// pass.
// ---------------------------------------------------------------------------

namespace {

constexpr size_t kV2PageBytes = 4096;
constexpr uint32_t kV2Version = 2;
constexpr size_t kV2FixedHeaderBytes = 48;
constexpr size_t kV2SectionEntryBytes = 48;
const uint8_t kV2Magic[8] = {'R', 'S', 'S', 'E', 'S', 'H', 'M', '2'};

size_t AlignPage(size_t n) {
  return (n + kV2PageBytes - 1) & ~(kV2PageBytes - 1);
}

/// One shard's parsed section table entry, as byte ranges of the image.
struct V2ShardRef {
  size_t slots_at = 0;
  size_t slots_bytes = 0;
  size_t arena_at = 0;
  size_t arena_bytes = 0;
  uint64_t entries = 0;
  uint32_t slots_crc = 0;
  uint32_t arena_crc = 0;
};

size_t V2HeaderBytes(size_t shard_count) {
  return AlignPage(kV2FixedHeaderBytes + kV2SectionEntryBytes * shard_count +
                   4);
}

/// Validates a v2 header + section table (the O(shards) eager pass) and
/// fills `refs`. Does not touch section bytes.
Status ParseV2Header(ConstByteSpan image, std::vector<V2ShardRef>& refs) {
  if (image.size() < kV2PageBytes ||
      std::memcmp(image.data(), kV2Magic, sizeof(kV2Magic)) != 0) {
    return Status::InvalidArgument("not a v2 store image");
  }
  if (image.size() % kV2PageBytes != 0) {
    return Status::InvalidArgument("v2 image is not page-aligned");
  }
  if (LoadU32Le(image.data() + 8) != kV2Version) {
    return Status::InvalidArgument("unsupported v2 image version");
  }
  const uint32_t shard_count = LoadU32Le(image.data() + 24);
  if (shard_count == 0 || shard_count > kMaxShards) {
    return Status::InvalidArgument("implausible shard count in v2 header");
  }
  const size_t table_end =
      kV2FixedHeaderBytes + kV2SectionEntryBytes * size_t{shard_count};
  const size_t header_bytes = V2HeaderBytes(shard_count);
  if (header_bytes > image.size()) {
    return Status::InvalidArgument("v2 section table exceeds the image");
  }
  const uint32_t stored_crc = LoadU32Le(image.data() + table_end);
  if (Crc32c(image.data(), table_end) != stored_crc) {
    return Status::InvalidArgument("v2 header checksum mismatch");
  }
  const uint64_t total_entries = LoadU64Le(image.data() + 32);
  const uint64_t total_value_bytes = LoadU64Le(image.data() + 40);

  refs.assign(shard_count, V2ShardRef{});
  size_t cursor = header_bytes;
  uint64_t entries_sum = 0;
  uint64_t value_bytes_sum = 0;
  for (uint32_t s = 0; s < shard_count; ++s) {
    const uint8_t* e =
        image.data() + kV2FixedHeaderBytes + kV2SectionEntryBytes * size_t{s};
    V2ShardRef& ref = refs[s];
    ref.slots_at = LoadU64Le(e);
    ref.slots_bytes = LoadU64Le(e + 8);
    ref.arena_at = LoadU64Le(e + 16);
    ref.arena_bytes = LoadU64Le(e + 24);
    ref.entries = LoadU64Le(e + 32);
    ref.slots_crc = LoadU32Le(e + 40);
    ref.arena_crc = LoadU32Le(e + 44);
    // Canonical packing: every offset is determined by the byte counts, so
    // these equality checks reject unaligned, overlapping, out-of-order
    // and out-of-bounds sections alike.
    if (ref.slots_at != cursor) {
      return Status::InvalidArgument("v2 slot section at unexpected offset");
    }
    if (ref.slots_bytes > image.size() - cursor) {
      return Status::InvalidArgument("v2 slot section out of bounds");
    }
    cursor += AlignPage(ref.slots_bytes);
    if (cursor > image.size() || ref.arena_at != cursor) {
      return Status::InvalidArgument("v2 arena section at unexpected offset");
    }
    if (ref.arena_bytes > image.size() - cursor) {
      return Status::InvalidArgument("v2 arena section out of bounds");
    }
    cursor += AlignPage(ref.arena_bytes);
    if (cursor > image.size()) {
      return Status::InvalidArgument("v2 sections exceed the image");
    }
    entries_sum += ref.entries;
    value_bytes_sum += ref.arena_bytes;
  }
  if (cursor != image.size()) {
    return Status::InvalidArgument("trailing bytes after v2 sections");
  }
  if (entries_sum != total_entries || value_bytes_sum != total_value_bytes) {
    return Status::InvalidArgument("v2 header totals disagree with sections");
  }
  return Status::Ok();
}

Status VerifyV2SectionChecksums(ConstByteSpan image,
                                const std::vector<V2ShardRef>& refs,
                                int threads) {
  const int workers = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(ResolveThreadCount(threads, "RSSE_BUILD_THREADS")),
      refs.size()));
  std::vector<Status> worker_status(static_cast<size_t>(workers));
  RunWorkers(workers, [&](int w) {
    for (size_t s = static_cast<size_t>(w); s < refs.size();
         s += static_cast<size_t>(workers)) {
      const V2ShardRef& ref = refs[s];
      if (Crc32c(image.data() + ref.slots_at, ref.slots_bytes) !=
              ref.slots_crc ||
          Crc32c(image.data() + ref.arena_at, ref.arena_bytes) !=
              ref.arena_crc) {
        worker_status[static_cast<size_t>(w)] =
            Status::InvalidArgument("v2 shard section checksum mismatch");
        return;
      }
    }
  });
  for (const Status& s : worker_status) {
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace

Bytes ShardedEmm::SerializeV2(uint8_t kind, uint64_t epoch) const {
  const size_t shard_count = shards_.size();
  const size_t header_bytes = V2HeaderBytes(shard_count);
  std::vector<V2ShardRef> refs(shard_count);
  size_t cursor = header_bytes;
  uint64_t total_entries = 0;
  uint64_t total_value_bytes = 0;
  for (size_t s = 0; s < shard_count; ++s) {
    V2ShardRef& ref = refs[s];
    ref.slots_at = cursor;
    ref.slots_bytes = shards_[s].V2SlotsBytes();
    cursor += AlignPage(ref.slots_bytes);
    ref.arena_at = cursor;
    ref.arena_bytes = shards_[s].V2ArenaBytes();
    cursor += AlignPage(ref.arena_bytes);
    ref.entries = shards_[s].size();
    total_entries += ref.entries;
    total_value_bytes += ref.arena_bytes;
  }

  Bytes out(cursor, 0);
  const int workers = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(ResolveThreadCount(0, "RSSE_BUILD_THREADS")),
      std::max<size_t>(shard_count, 1)));
  RunWorkers(workers, [&](int w) {
    for (size_t s = static_cast<size_t>(w); s < shard_count;
         s += static_cast<size_t>(workers)) {
      V2ShardRef& ref = refs[s];
      shards_[s].WriteV2Sections(
          ByteSpan(out.data() + ref.slots_at, ref.slots_bytes),
          ByteSpan(out.data() + ref.arena_at, ref.arena_bytes));
      ref.slots_crc = Crc32c(out.data() + ref.slots_at, ref.slots_bytes);
      ref.arena_crc = Crc32c(out.data() + ref.arena_at, ref.arena_bytes);
    }
  });

  std::memcpy(out.data(), kV2Magic, sizeof(kV2Magic));
  StoreU32Le(out.data() + 8, kV2Version);
  out[12] = kind;
  StoreU64Le(out.data() + 16, epoch);
  StoreU32Le(out.data() + 24, static_cast<uint32_t>(shard_count));
  StoreU64Le(out.data() + 32, total_entries);
  StoreU64Le(out.data() + 40, total_value_bytes);
  for (size_t s = 0; s < shard_count; ++s) {
    uint8_t* e = out.data() + kV2FixedHeaderBytes + kV2SectionEntryBytes * s;
    StoreU64Le(e, refs[s].slots_at);
    StoreU64Le(e + 8, refs[s].slots_bytes);
    StoreU64Le(e + 16, refs[s].arena_at);
    StoreU64Le(e + 24, refs[s].arena_bytes);
    StoreU64Le(e + 32, refs[s].entries);
    StoreU32Le(e + 40, refs[s].slots_crc);
    StoreU32Le(e + 44, refs[s].arena_crc);
  }
  const size_t table_end =
      kV2FixedHeaderBytes + kV2SectionEntryBytes * shard_count;
  StoreU32Le(out.data() + table_end, Crc32c(out.data(), table_end));
  return out;
}

bool ShardedEmm::IsV2Image(ConstByteSpan image) {
  return image.size() >= sizeof(kV2Magic) &&
         std::memcmp(image.data(), kV2Magic, sizeof(kV2Magic)) == 0;
}

Result<ShardedEmm> ShardedEmm::OpenMappedImage(
    std::shared_ptr<const MappedFile> file, size_t offset, size_t length,
    const V2OpenOptions& options) {
  if (file == nullptr || offset > file->size() ||
      length > file->size() - offset) {
    return Status::InvalidArgument("v2 image range exceeds the mapping");
  }
  const ConstByteSpan image = file->bytes().subspan(offset, length);
  std::vector<V2ShardRef> refs;
  RSSE_RETURN_IF_ERROR(ParseV2Header(image, refs));
  if (options.verify_checksums) {
    RSSE_RETURN_IF_ERROR(VerifyV2SectionChecksums(image, refs, 0));
  }
  ShardedEmm store(refs.size());
  for (size_t s = 0; s < refs.size(); ++s) {
    const V2ShardRef& ref = refs[s];
    Result<sse::FlatLabelMap> shard = sse::FlatLabelMap::View(
        image.subspan(ref.slots_at, ref.slots_bytes),
        image.subspan(ref.arena_at, ref.arena_bytes), ref.entries,
        ref.arena_bytes);
    if (!shard.ok()) return shard.status();
    store.shards_[s] = std::move(*shard);
  }
  // Probes jump label-hash-randomly across slot tables and arenas: tell
  // the kernel not to read ahead, so the page cache holds only the probed
  // working set. --prefault instead faults the whole image in now.
  file->AdviseRandom(offset, length);
  if (options.prefault) file->Prefault(offset, length);
  store.mapping_ = std::move(file);
  return store;
}

Result<ShardedEmm> ShardedEmm::OpenMapped(const std::string& path,
                                          const V2OpenOptions& options) {
  Result<std::shared_ptr<const MappedFile>> file = MappedFile::Open(path);
  if (!file.ok()) return file.status();
  const size_t size = (*file)->size();
  return OpenMappedImage(std::move(*file), 0, size, options);
}

Result<ShardedEmm> ShardedEmm::LoadV2(ConstByteSpan image, int threads,
                                      bool verify_checksums) {
  std::vector<V2ShardRef> refs;
  RSSE_RETURN_IF_ERROR(ParseV2Header(image, refs));
  if (verify_checksums) {
    RSSE_RETURN_IF_ERROR(VerifyV2SectionChecksums(image, refs, threads));
  }
  ShardedEmm store(refs.size());
  std::vector<Status> shard_status(refs.size());
  const int workers = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(ResolveThreadCount(threads, "RSSE_BUILD_THREADS")),
      refs.size()));
  RunWorkers(workers, [&](int w) {
    for (size_t s = static_cast<size_t>(w); s < refs.size();
         s += static_cast<size_t>(workers)) {
      const V2ShardRef& ref = refs[s];
      Result<sse::FlatLabelMap> shard = sse::FlatLabelMap::View(
          image.subspan(ref.slots_at, ref.slots_bytes),
          image.subspan(ref.arena_at, ref.arena_bytes), ref.entries,
          ref.arena_bytes);
      if (!shard.ok()) {
        shard_status[s] = shard.status();
        continue;
      }
      shard->EnsureHeap();
      store.shards_[s] = std::move(*shard);
    }
  });
  for (const Status& s : shard_status) {
    if (!s.ok()) return s;
  }
  return store;
}

uint64_t ShardedEmm::MappedBytes() const {
  uint64_t bytes = 0;
  for (const sse::FlatLabelMap& s : shards_) bytes += s.MappedBytes();
  return bytes;
}

uint64_t ShardedEmm::HeapBytes() const {
  uint64_t bytes = 0;
  for (const sse::FlatLabelMap& s : shards_) bytes += s.HeapBytes();
  return bytes;
}

}  // namespace rsse::shard
