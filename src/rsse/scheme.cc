#include "rsse/scheme.h"

#include <algorithm>
#include <unordered_map>

namespace rsse {

const char* SchemeName(SchemeId id) {
  switch (id) {
    case SchemeId::kQuadratic:
      return "Quadratic";
    case SchemeId::kConstantBrc:
      return "Constant-BRC";
    case SchemeId::kConstantUrc:
      return "Constant-URC";
    case SchemeId::kLogarithmicBrc:
      return "Logarithmic-BRC";
    case SchemeId::kLogarithmicUrc:
      return "Logarithmic-URC";
    case SchemeId::kLogarithmicSrc:
      return "Logarithmic-SRC";
    case SchemeId::kLogarithmicSrcI:
      return "Logarithmic-SRC-i";
    case SchemeId::kPb:
      return "PB (Li et al.)";
    case SchemeId::kNaivePerValue:
      return "Naive-PerValue";
  }
  return "Unknown";
}

std::vector<uint64_t> FilterIdsToRange(const Dataset& dataset,
                                       const std::vector<uint64_t>& ids,
                                       const Range& r) {
  std::unordered_map<uint64_t, uint64_t> attr_by_id;
  attr_by_id.reserve(dataset.size());
  for (const Record& rec : dataset.records()) attr_by_id[rec.id] = rec.attr;
  std::vector<uint64_t> out;
  out.reserve(ids.size());
  for (uint64_t id : ids) {
    auto it = attr_by_id.find(id);
    if (it != attr_by_id.end() && r.Contains(it->second)) out.push_back(id);
  }
  return out;
}

bool ClipRangeToDomain(const Domain& domain, Range& r) {
  if (domain.size == 0 || r.lo >= domain.size || r.hi < r.lo) return false;
  r.hi = std::min(r.hi, domain.size - 1);
  return true;
}

}  // namespace rsse
