#include "rsse/scheme.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/stats.h"
#include "sse/encrypted_multimap.h"

namespace rsse {

const char* SchemeName(SchemeId id) {
  switch (id) {
    case SchemeId::kQuadratic:
      return "Quadratic";
    case SchemeId::kConstantBrc:
      return "Constant-BRC";
    case SchemeId::kConstantUrc:
      return "Constant-URC";
    case SchemeId::kLogarithmicBrc:
      return "Logarithmic-BRC";
    case SchemeId::kLogarithmicUrc:
      return "Logarithmic-URC";
    case SchemeId::kLogarithmicSrc:
      return "Logarithmic-SRC";
    case SchemeId::kLogarithmicSrcI:
      return "Logarithmic-SRC-i";
    case SchemeId::kPb:
      return "PB (Li et al.)";
    case SchemeId::kNaivePerValue:
      return "Naive-PerValue";
  }
  return "Unknown";
}

Result<ServerSetup> RangeScheme::ExportServerSetup() const {
  return Status::Unimplemented(std::string(SchemeName(id())) +
                               " is local-only (no shippable server half)");
}

Result<QueryResult> RangeScheme::Query(const Range& r) {
  return QueryVia(local_backend(), r);
}

Result<QueryResult> RangeScheme::QueryVia(SearchBackend& backend,
                                          const Range& query) {
  if (!built_) return Status::FailedPrecondition("Build() not called");
  Range r = query;
  if (!ClipRangeToDomain(domain_, r)) return QueryResult{};

  QueryResult result;
  TrapdoorGenerator& owner = trapdoors();

  // Owner: round-1 trapdoors.
  WallTimer trapdoor_timer;
  Result<TokenSet> first = owner.Trapdoor(r);
  result.trapdoor_nanos += trapdoor_timer.ElapsedNanos();
  if (!first.ok()) return first.status();

  // Protocol rounds: resolve at the server, then ask the owner for the
  // dependent next round (SRC-i's refinement) until it declines.
  ResolvedIds last;
  std::optional<TokenSet> tokens = std::move(*first);
  int rounds = 0;
  while (tokens.has_value()) {
    ++rounds;
    result.rounds = rounds;
    result.token_count += tokens->TokenCount();
    result.token_bytes += tokens->TokenBytes();

    WallTimer search_timer;
    Result<ResolvedIds> resolved = backend.Resolve(*tokens);
    result.search_nanos += search_timer.ElapsedNanos();
    if (!resolved.ok()) return resolved.status();
    result.skipped_decrypts += resolved->skipped_decrypts;
    last = std::move(*resolved);

    trapdoor_timer.Reset();
    Result<std::optional<TokenSet>> next =
        owner.ContinueTrapdoor(r, rounds, last);
    result.trapdoor_nanos += trapdoor_timer.ElapsedNanos();
    if (!next.ok()) return next.status();
    tokens = std::move(*next);
  }

  // Owner post-filter: the final round's payloads decode to tuple ids
  // (non-id payloads — e.g. SRC-i round-1 documents when no value
  // qualified — decode to nothing).
  for (const Bytes& payload : last.payloads) {
    if (auto id = sse::DecodeIdPayload(payload); id.has_value()) {
      result.ids.push_back(*id);
    }
  }
  return result;
}

std::vector<uint64_t> FilterIdsToRange(const Dataset& dataset,
                                       const std::vector<uint64_t>& ids,
                                       const Range& r) {
  std::unordered_map<uint64_t, uint64_t> attr_by_id;
  attr_by_id.reserve(dataset.size());
  for (const Record& rec : dataset.records()) attr_by_id[rec.id] = rec.attr;
  std::vector<uint64_t> out;
  out.reserve(ids.size());
  for (uint64_t id : ids) {
    auto it = attr_by_id.find(id);
    if (it != attr_by_id.end() && r.Contains(it->second)) out.push_back(id);
  }
  return out;
}

bool ClipRangeToDomain(const Domain& domain, Range& r) {
  if (domain.size == 0 || r.lo >= domain.size || r.hi < r.lo) return false;
  r.hi = std::min(r.hi, domain.size - 1);
  return true;
}

}  // namespace rsse
