#include "rsse/quadratic.h"

#include "crypto/random.h"
#include "sse/keyword_keys.h"

namespace rsse {

QuadraticScheme::QuadraticScheme(uint64_t rng_seed, uint64_t pad_quantum)
    : rng_(rng_seed), pad_quantum_(pad_quantum) {}

Bytes QuadraticScheme::RangeKeyword(const Range& r) {
  Bytes out;
  out.reserve(1 + 16);
  AppendByte(out, /*tag=*/0x03);  // quadratic range-keyword namespace
  AppendUint64(out, r.lo);
  AppendUint64(out, r.hi);
  return out;
}

Status QuadraticScheme::Build(const Dataset& dataset) {
  domain_ = dataset.domain();
  if (domain_.size == 0) return Status::InvalidArgument("empty domain");
  if (domain_.size > kMaxDomain) {
    return Status::InvalidArgument(
        "Quadratic is restricted to tiny domains (O(n m^2) storage)");
  }
  master_key_ = crypto::GenerateKey();

  // Replicate each tuple into every range containing its value: the
  // augmented dataset D' of Section 4.
  sse::PlainMultimap postings;
  for (const Record& rec : dataset.records()) {
    for (uint64_t lo = 0; lo <= rec.attr; ++lo) {
      for (uint64_t hi = rec.attr; hi < domain_.size; ++hi) {
        postings[RangeKeyword(Range{lo, hi})].push_back(
            sse::EncodeIdPayload(rec.id));
      }
    }
  }
  for (auto& [keyword, payloads] : postings) rng_.Shuffle(payloads);

  sse::PrfKeyDeriver deriver(master_key_);
  shard::ShardOptions options;
  options.padding = sse::PaddingPolicy{pad_quantum_};
  Result<shard::ShardedEmm> index =
      shard::ShardedEmm::Build(postings, deriver, options);
  if (!index.ok()) return index.status();
  index_ = std::move(index).value();
  built_ = true;
  return Status::Ok();
}

Result<TokenSet> QuadraticScheme::Trapdoor(const Range& r) {
  TokenSet tokens;
  sse::PrfKeyDeriver deriver(master_key_);
  tokens.keyword.push_back(deriver.Derive(RangeKeyword(r)));
  return tokens;
}

SearchBackend& QuadraticScheme::local_backend() {
  return ConfigureSingleEmmBackend(backend_, index_);
}

Result<ServerSetup> QuadraticScheme::ExportServerSetup() const {
  return SingleEmmServerSetup(built_, index_);
}

}  // namespace rsse
