#ifndef RSSE_RSSE_NAIVE_VALUE_H_
#define RSSE_RSSE_NAIVE_VALUE_H_

#include "common/bytes.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "rsse/scheme.h"
#include "sse/encrypted_multimap.h"

namespace rsse {

/// The naive variant opening Section 5: one keyword per domain value with
/// *standard PRF* key derivation, and a query of size R simply maps to R
/// per-value SSE tokens. Storage O(n), search O(R + r), no false positives —
/// but query size O(R), which is exactly the drawback the DPRF-based
/// Constant schemes remove (they ship O(log R) GGM seeds instead).
/// Kept as an ablation baseline for the query-cost experiments.
class NaiveValueScheme : public RangeScheme {
 public:
  explicit NaiveValueScheme(uint64_t rng_seed = 1);

  SchemeId id() const override { return SchemeId::kNaivePerValue; }
  Status Build(const Dataset& dataset) override;
  size_t IndexSizeBytes() const override { return index_.SizeBytes(); }
  Result<QueryResult> Query(const Range& r) override;

 private:
  Rng rng_;
  Domain domain_;
  Bytes master_key_;
  sse::EncryptedMultimap index_;
  bool built_ = false;
};

}  // namespace rsse

#endif  // RSSE_RSSE_NAIVE_VALUE_H_
