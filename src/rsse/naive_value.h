#ifndef RSSE_RSSE_NAIVE_VALUE_H_
#define RSSE_RSSE_NAIVE_VALUE_H_

#include "common/bytes.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "rsse/local_backend.h"
#include "rsse/scheme.h"
#include "shard/sharded_emm.h"

namespace rsse {

/// The naive variant opening Section 5: one keyword per domain value with
/// *standard PRF* key derivation, and a query of size R simply maps to R
/// per-value SSE tokens. Storage O(n), search O(R + r), no false positives —
/// but query size O(R), which is exactly the drawback the DPRF-based
/// Constant schemes remove (they ship O(log R) GGM seeds instead).
/// Kept as an ablation baseline for the query-cost experiments.
class NaiveValueScheme : public RangeScheme, public TrapdoorGenerator {
 public:
  explicit NaiveValueScheme(uint64_t rng_seed = 1);

  SchemeId id() const override { return SchemeId::kNaivePerValue; }
  Status Build(const Dataset& dataset) override;
  size_t IndexSizeBytes() const override { return index_.SizeBytes(); }

  /// Owner half: one token per covered value — the O(R) query size.
  Result<TokenSet> Trapdoor(const Range& r) override;
  TrapdoorGenerator& trapdoors() override { return *this; }
  SearchBackend& local_backend() override;
  Result<ServerSetup> ExportServerSetup() const override;

 private:
  Rng rng_;
  Bytes master_key_;
  shard::ShardedEmm index_;
  LocalBackend backend_;
};

}  // namespace rsse

#endif  // RSSE_RSSE_NAIVE_VALUE_H_
