#include "rsse/factory.h"

#include "rsse/constant.h"
#include "rsse/log_src.h"
#include "rsse/naive_value.h"
#include "rsse/log_src_i.h"
#include "rsse/logarithmic.h"
#include "rsse/quadratic.h"

namespace rsse {

std::unique_ptr<RangeScheme> MakeScheme(SchemeId id, uint64_t rng_seed) {
  switch (id) {
    case SchemeId::kQuadratic:
      return std::make_unique<QuadraticScheme>(rng_seed);
    case SchemeId::kConstantBrc:
      return std::make_unique<ConstantScheme>(CoverTechnique::kBrc, rng_seed);
    case SchemeId::kConstantUrc:
      return std::make_unique<ConstantScheme>(CoverTechnique::kUrc, rng_seed);
    case SchemeId::kLogarithmicBrc:
      return std::make_unique<LogarithmicScheme>(CoverTechnique::kBrc,
                                                 rng_seed);
    case SchemeId::kLogarithmicUrc:
      return std::make_unique<LogarithmicScheme>(CoverTechnique::kUrc,
                                                 rng_seed);
    case SchemeId::kLogarithmicSrc:
      return std::make_unique<LogarithmicSrcScheme>(rng_seed);
    case SchemeId::kLogarithmicSrcI:
      return std::make_unique<LogarithmicSrcIScheme>(rng_seed);
    case SchemeId::kPb:
      return nullptr;  // lives in src/pb; see pb::MakePbScheme
    case SchemeId::kNaivePerValue:
      return std::make_unique<NaiveValueScheme>(rng_seed);
  }
  return nullptr;
}

std::vector<SchemeId> AllSchemeIds() {
  return {
      SchemeId::kQuadratic,      SchemeId::kConstantBrc,
      SchemeId::kConstantUrc,    SchemeId::kLogarithmicBrc,
      SchemeId::kLogarithmicUrc, SchemeId::kLogarithmicSrc,
      SchemeId::kLogarithmicSrcI,
  };
}

}  // namespace rsse
