#ifndef RSSE_RSSE_MULTI_ATTRIBUTE_H_
#define RSSE_RSSE_MULTI_ATTRIBUTE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "rsse/scheme.h"

namespace rsse {

/// A tuple with two query attributes.
struct Record2D {
  uint64_t id = 0;
  uint64_t x = 0;
  uint64_t y = 0;

  friend bool operator==(const Record2D&, const Record2D&) = default;
};

/// EXTENSION (the paper's stated future work, Section 9): two-dimensional
/// range queries by *composition* — one independent single-attribute RSSE
/// instance per attribute, with the owner intersecting the returned id sets.
///
/// This is the straightforward baseline the "considerably harder setting"
/// remark alludes to: it is functional and reuses any 1-D scheme unchanged,
/// but its leakage is the union of both 1-D leakages — the server learns
/// the access pattern of each *projection* of the query rectangle, which is
/// strictly more than an ideal 2-D construction would reveal. The class
/// documents and quantifies that trade-off rather than hiding it.
class TwoAttributeScheme {
 public:
  /// Result of a rectangle query.
  struct RectResult {
    /// Owner-side intersection of the two servers' id lists. SRC-family
    /// sub-schemes may leave false positives on *both* attributes; refine
    /// with `FilterToRect` after decryption.
    std::vector<uint64_t> ids;
    /// Aggregate protocol costs over both sub-queries.
    size_t token_count = 0;
    size_t token_bytes = 0;
    int rounds = 1;
  };

  /// Both sub-instances use `scheme` (any Table-1 construction).
  TwoAttributeScheme(SchemeId scheme, uint64_t rng_seed = 1);

  /// Builds one index per attribute.
  Status Build(const Domain& domain_x, const Domain& domain_y,
               const std::vector<Record2D>& records);

  /// Queries the rectangle [rx] x [ry].
  Result<RectResult> Query(const Range& rx, const Range& ry);

  size_t IndexSizeBytes() const;

  /// Owner-side refinement against the (decrypted) records.
  static std::vector<uint64_t> FilterToRect(
      const std::vector<Record2D>& records, const std::vector<uint64_t>& ids,
      const Range& rx, const Range& ry);

 private:
  SchemeId scheme_id_;
  uint64_t rng_seed_;
  std::unique_ptr<RangeScheme> index_x_;
  std::unique_ptr<RangeScheme> index_y_;
  bool built_ = false;
};

}  // namespace rsse

#endif  // RSSE_RSSE_MULTI_ATTRIBUTE_H_
