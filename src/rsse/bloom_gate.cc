#include "rsse/bloom_gate.h"

#include "crypto/hmac_prf.h"

namespace rsse {

BloomLabelGate::BloomLabelGate(uint64_t expected_real_entries, double fp_rate,
                               uint64_t salt)
    : bloom_(expected_real_entries, fp_rate, salt) {}

Status BloomLabelGate::Populate(const sse::PlainMultimap& postings,
                                const sse::KeywordKeyDeriver& deriver) {
  uint8_t counter[8];
  Label label;
  for (const auto& [keyword, payloads] : postings) {
    const sse::KeywordKeys keys = deriver.Derive(keyword);
    const crypto::Prf label_prf(keys.label_key);
    if (!label_prf.ok()) {
      return Status::Internal("label PRF initialization failed");
    }
    // Only counters below the real posting count: padding dummies (any
    // counter past payloads.size()) are exactly what the gate rejects.
    for (uint64_t c = 0; c < payloads.size(); ++c) {
      StoreUint64(counter, c);
      if (!label_prf.EvalInto(ConstByteSpan(counter, sizeof(counter)),
                              ByteSpan(label.data(), label.size()))) {
        return Status::Internal("label PRF evaluation failed");
      }
      bloom_.Insert(ConstByteSpan(label.data(), label.size()));
    }
  }
  return Status::Ok();
}

bool BloomLabelGate::MayContainReal(const Label& label) const {
  return bloom_.MayContain(ConstByteSpan(label.data(), label.size()));
}

namespace {

/// Gate blob magic: "RSBG" + format version 1.
constexpr uint32_t kBloomGateMagic = 0x52534247;
constexpr uint32_t kBloomGateVersion = 1;

}  // namespace

Bytes BloomLabelGate::Serialize() const {
  Bytes out;
  AppendUint32(out, kBloomGateMagic);
  AppendUint32(out, kBloomGateVersion);
  bloom_.AppendTo(out);
  return out;
}

Result<BloomLabelGate> BloomLabelGate::Deserialize(const Bytes& blob) {
  if (blob.size() < 8 || ReadUint32(blob, 0) != kBloomGateMagic ||
      ReadUint32(blob, 4) != kBloomGateVersion) {
    return Status::InvalidArgument("not a bloom gate blob");
  }
  size_t offset = 8;
  Result<pb::BloomFilter> bloom = pb::BloomFilter::ReadFrom(blob, offset);
  if (!bloom.ok()) return bloom.status();
  if (offset != blob.size()) {
    return Status::InvalidArgument("bloom gate trailing bytes");
  }
  return BloomLabelGate(std::move(bloom).value());
}

}  // namespace rsse
