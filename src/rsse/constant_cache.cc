#include "rsse/constant_cache.h"

#include <algorithm>
#include <unordered_map>

namespace rsse {

CachedConstantClient::CachedConstantClient(ConstantScheme& scheme,
                                           const Dataset& dataset)
    : scheme_(scheme), dataset_(dataset) {}

bool CachedConstantClient::CacheCovers(const Range& r) const {
  // Sweep [r.lo, r.hi] through the cached ranges (interval union check).
  uint64_t cursor = r.lo;
  for (;;) {
    bool advanced = false;
    for (const CachedRange& cached : history_) {
      if (cached.range.lo <= cursor && cursor <= cached.range.hi) {
        if (cached.range.hi >= r.hi) return true;
        // Move past this cached range; beware hi+1 overflow is impossible
        // since cached.range.hi < r.hi <= domain max.
        if (cached.range.hi + 1 > cursor) {
          cursor = cached.range.hi + 1;
          advanced = true;
        }
      }
    }
    if (!advanced) return false;
  }
}

Result<CachedConstantClient::Answer> CachedConstantClient::Query(
    const Range& query) {
  Range r = query;
  if (!ClipRangeToDomain(dataset_.domain(), r)) return Answer{};

  bool intersects = false;
  for (const CachedRange& cached : history_) {
    if (r.Intersects(cached.range)) {
      intersects = true;
      break;
    }
  }

  if (!intersects) {
    // Fresh territory: query the server and cache the decrypted results.
    Result<QueryResult> q = scheme_.Query(r);
    if (!q.ok()) return q.status();
    CachedRange entry;
    entry.range = r;
    std::unordered_map<uint64_t, uint64_t> attr_by_id;
    for (const Record& rec : dataset_.records()) {
      attr_by_id[rec.id] = rec.attr;
    }
    for (uint64_t id : q->ids) {
      auto it = attr_by_id.find(id);
      if (it != attr_by_id.end()) {
        entry.results.push_back(Record{id, it->second});
      }
    }
    Answer answer;
    answer.ids = q->ids;
    answer.token_count = q->token_count;
    answer.token_bytes = q->token_bytes;
    history_.push_back(std::move(entry));
    return answer;
  }

  if (!CacheCovers(r)) {
    return Status::FailedPrecondition(
        "query intersects history and is not covered by cached answers "
        "(Constant schemes forbid intersecting server queries)");
  }

  // Answer locally from the cache.
  Answer answer;
  answer.served_from_cache = true;
  std::vector<uint64_t> ids;
  for (const CachedRange& cached : history_) {
    for (const Record& rec : cached.results) {
      if (r.Contains(rec.attr)) ids.push_back(rec.id);
    }
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  answer.ids = std::move(ids);
  return answer;
}

}  // namespace rsse
