#include "rsse/constant.h"

#include <algorithm>

#include "common/env.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "crypto/random.h"
#include "sse/keyword_keys.h"

namespace rsse {

namespace {

/// Keyword for domain value `a`: its 8-byte big-endian encoding.
Bytes ValueKeyword(uint64_t a) {
  Bytes out;
  AppendUint64(out, a);
  return out;
}

/// Index-build deriver: per-keyword SSE keys come from the DPRF leaf value
/// of the keyword's domain value, so that delegated GGM seeds unlock exactly
/// the covered values ("use a DPRF instead of a PRF", Section 5).
class DprfKeyDeriver : public sse::KeywordKeyDeriver {
 public:
  explicit DprfKeyDeriver(const GgmDprf& dprf) : dprf_(dprf) {}

  sse::KeywordKeys Derive(const Bytes& w) const override {
    return sse::KeysFromSharedSecret(dprf_.Eval(ReadUint64(w, 0)));
  }

 private:
  const GgmDprf& dprf_;
};

}  // namespace

ConstantScheme::ConstantScheme(CoverTechnique technique, uint64_t rng_seed)
    : technique_(technique), rng_(rng_seed) {}

Status ConstantScheme::Build(const Dataset& dataset) {
  domain_ = dataset.domain();
  if (domain_.size == 0) return Status::InvalidArgument("empty domain");
  bits_ = domain_.Bits();
  dprf_ = std::make_unique<GgmDprf>(crypto::GenerateKey(), bits_);

  sse::PlainMultimap postings;
  for (const Record& rec : dataset.records()) {
    postings[ValueKeyword(rec.attr)].push_back(sse::EncodeIdPayload(rec.id));
  }
  for (auto& [keyword, payloads] : postings) rng_.Shuffle(payloads);

  DprfKeyDeriver deriver(*dprf_);
  // The server-side dictionary is hash-sharded (RSSE_SHARDS / SetShards) so
  // build and load scale with cores; a single shard reproduces the flat
  // paper-faithful layout.
  shard::ShardOptions options;
  options.shards = shards_;
  Result<shard::ShardedEmm> index =
      shard::ShardedEmm::Build(postings, deriver, options);
  if (!index.ok()) return index.status();
  index_ = std::move(index).value();
  built_ = true;
  return Status::Ok();
}

std::vector<GgmDprf::Token> ConstantScheme::Delegate(const Range& r) {
  return dprf_->Delegate(r, technique_, rng_);
}

Result<QueryResult> ConstantScheme::Query(const Range& query) {
  if (!built_) return Status::FailedPrecondition("Build() not called");
  Range r = query;
  if (!ClipRangeToDomain(domain_, r)) return QueryResult{};
  if (guard_enabled_) {
    for (const Range& past : history_) {
      if (r.Intersects(past)) {
        return Status::FailedPrecondition(
            "Constant schemes forbid intersecting queries (Section 5)");
      }
    }
    history_.push_back(r);
  }

  QueryResult result;

  // Owner: delegate the GGM seeds for the BRC/URC cover of r.
  WallTimer trapdoor_timer;
  std::vector<GgmDprf::Token> tokens = Delegate(r);
  result.trapdoor_nanos = trapdoor_timer.ElapsedNanos();
  result.token_count = tokens.size();
  for (const GgmDprf::Token& t : tokens) {
    result.token_bytes += t.seed.size() + 1;  // seed + level byte
  }

  // Server: expand each token to the leaf DPRF values and run SSE search
  // per derived per-value token. Covering nodes are independent, so they
  // shard across worker threads; within a worker, the leaf buffer and key
  // pair are reused across expansions (zero steady-state allocation).
  WallTimer search_timer;
  const int threads = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(
          ResolveThreadCount(search_threads_, "RSSE_SEARCH_THREADS")),
      tokens.size()));
  std::vector<std::vector<uint64_t>> per_token(tokens.size());
  auto worker = [&](int t) {
    std::vector<Label> leaves;
    sse::KeywordKeys keys;
    for (size_t i = static_cast<size_t>(t); i < tokens.size();
         i += static_cast<size_t>(threads)) {
      if (!GgmDprf::ExpandInto(tokens[i], leaves)) continue;
      for (const Label& leaf : leaves) {
        sse::KeysFromSharedSecretInto(ConstByteSpan(leaf.data(), leaf.size()),
                                      keys);
        for (const Bytes& payload : index_.Search(keys)) {
          if (auto id = sse::DecodeIdPayload(payload); id.has_value()) {
            per_token[i].push_back(*id);
          }
        }
      }
    }
  };
  RunWorkers(threads, worker);
  for (const std::vector<uint64_t>& ids : per_token) {
    result.ids.insert(result.ids.end(), ids.begin(), ids.end());
  }
  result.search_nanos = search_timer.ElapsedNanos();
  return result;
}

}  // namespace rsse
