#include "rsse/constant.h"

#include "crypto/random.h"
#include "sse/keyword_keys.h"

namespace rsse {

namespace {

/// Keyword for domain value `a`: its 8-byte big-endian encoding.
Bytes ValueKeyword(uint64_t a) {
  Bytes out;
  AppendUint64(out, a);
  return out;
}

/// Index-build deriver: per-keyword SSE keys come from the DPRF leaf value
/// of the keyword's domain value, so that delegated GGM seeds unlock exactly
/// the covered values ("use a DPRF instead of a PRF", Section 5).
class DprfKeyDeriver : public sse::KeywordKeyDeriver {
 public:
  explicit DprfKeyDeriver(const GgmDprf& dprf) : dprf_(dprf) {}

  sse::KeywordKeys Derive(const Bytes& w) const override {
    return sse::KeysFromSharedSecret(dprf_.Eval(ReadUint64(w, 0)));
  }

 private:
  const GgmDprf& dprf_;
};

}  // namespace

ConstantScheme::ConstantScheme(CoverTechnique technique, uint64_t rng_seed)
    : technique_(technique), rng_(rng_seed) {}

Status ConstantScheme::Build(const Dataset& dataset) {
  domain_ = dataset.domain();
  if (domain_.size == 0) return Status::InvalidArgument("empty domain");
  bits_ = domain_.Bits();
  dprf_ = std::make_unique<GgmDprf>(crypto::GenerateKey(), bits_);

  sse::PlainMultimap postings;
  for (const Record& rec : dataset.records()) {
    postings[ValueKeyword(rec.attr)].push_back(sse::EncodeIdPayload(rec.id));
  }
  for (auto& [keyword, payloads] : postings) rng_.Shuffle(payloads);

  DprfKeyDeriver deriver(*dprf_);
  // The server-side dictionary is hash-sharded (RSSE_SHARDS / SetShards) so
  // build and load scale with cores; a single shard reproduces the flat
  // paper-faithful layout.
  shard::ShardOptions options;
  options.shards = shards_;
  Result<shard::ShardedEmm> index =
      shard::ShardedEmm::Build(postings, deriver, options);
  if (!index.ok()) return index.status();
  index_ = std::move(index).value();
  built_ = true;
  return Status::Ok();
}

std::vector<GgmDprf::Token> ConstantScheme::Delegate(const Range& r) {
  return dprf_->Delegate(r, technique_, rng_);
}

Result<TokenSet> ConstantScheme::Trapdoor(const Range& r) {
  if (guard_enabled_) {
    for (const Range& past : history_) {
      if (r.Intersects(past)) {
        return Status::FailedPrecondition(
            "Constant schemes forbid intersecting queries (Section 5)");
      }
    }
    history_.push_back(r);
  }
  TokenSet tokens;
  tokens.ggm = Delegate(r);
  return tokens;
}

SearchBackend& ConstantScheme::local_backend() {
  return ConfigureSingleEmmBackend(backend_, index_, nullptr,
                                   search_threads_);
}

Result<ServerSetup> ConstantScheme::ExportServerSetup() const {
  return SingleEmmServerSetup(built_, index_);
}

}  // namespace rsse
