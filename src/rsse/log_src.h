#ifndef RSSE_RSSE_LOG_SRC_H_
#define RSSE_RSSE_LOG_SRC_H_

#include <memory>

#include "common/bytes.h"
#include "common/rng.h"
#include "cover/tdag.h"
#include "data/dataset.h"
#include "rsse/bloom_gate.h"
#include "rsse/local_backend.h"
#include "rsse/scheme.h"
#include "shard/sharded_emm.h"

namespace rsse {

/// Logarithmic-SRC (Section 6.2): tuples are replicated under the TDAG
/// nodes covering their value; a query is covered by the *single* lowest
/// TDAG node containing it (SRC), so it degenerates to one single-keyword
/// SSE search — constant query size and no result-partitioning or ordering
/// leakage. The price is false positives: O(R) on uniform data (Lemma 1)
/// but up to O(n) under heavy skew, which motivates Logarithmic-SRC-i.
class LogarithmicSrcScheme : public RangeScheme, public TrapdoorGenerator {
 public:
  /// `pad_quantum` > 0 enables the padding the paper's security argument
  /// assumes ("the scheme degenerates to SSE, inheriting its security —
  /// assuming the padding technique discussed in Quadratic"): every TDAG
  /// node's posting list is padded to a multiple of the quantum, so list
  /// shapes leak less about the distribution over A.
  explicit LogarithmicSrcScheme(uint64_t rng_seed = 1,
                                uint64_t pad_quantum = 0);

  SchemeId id() const override { return SchemeId::kLogarithmicSrc; }
  Status Build(const Dataset& dataset) override;
  size_t IndexSizeBytes() const override { return index_.SizeBytes(); }

  /// Owner half: the single-keyword SRC token.
  Result<TokenSet> Trapdoor(const Range& r) override;
  TrapdoorGenerator& trapdoors() override { return *this; }
  SearchBackend& local_backend() override;
  Result<ServerSetup> ExportServerSetup() const override;

  /// The single TDAG cover node for `r` (exposed for tests).
  TdagNode CoverNode(const Range& r) const { return tdag_->SingleRangeCover(r); }

  /// Installs a Bloom pre-decryption gate, built over the real-entry
  /// labels during `Build`: the server skips decrypting entries the filter
  /// rejects (padding dummies), reporting the savings through
  /// `QueryResult::skipped_decrypts`. Results are unchanged (no false
  /// negatives); the server learns which entries are padding, so this is
  /// an opt-in perf/leakage trade (see BloomLabelGate). Only effective
  /// with `pad_quantum` > 0. Call before `Build`. The gate ships with the
  /// index in `ExportServerSetup`, so a remote server gates identically.
  void EnableBloomGate(double fp_rate = 0.01) { bloom_fp_rate_ = fp_rate; }

  /// Bytes of the shipped Bloom gate (0 when disabled).
  size_t BloomGateSizeBytes() const {
    return gate_ == nullptr ? 0 : gate_->SizeBytes();
  }

 private:
  Rng rng_;
  uint64_t pad_quantum_;
  std::unique_ptr<Tdag> tdag_;
  Bytes master_key_;
  shard::ShardedEmm index_;
  LocalBackend backend_;
  double bloom_fp_rate_ = 0.0;  // 0 disables the gate
  std::unique_ptr<BloomLabelGate> gate_;
};

}  // namespace rsse

#endif  // RSSE_RSSE_LOG_SRC_H_
