#ifndef RSSE_RSSE_CONSTANT_CACHE_H_
#define RSSE_RSSE_CONSTANT_CACHE_H_

#include <vector>

#include "data/dataset.h"
#include "rsse/constant.h"
#include "rsse/scheme.h"

namespace rsse {

/// Owner-side query manager implementing Section 5's application-level
/// workaround for the Constant schemes' non-intersecting-query constraint:
/// "the owner's program may maintain the history of queries and abort when
/// an intersecting query is seen, or may try to answer the query from
/// cached answers of previous queries that collectively encompass the new
/// query range."
///
/// The cache stores, per answered range, the decrypted (id, attr) results —
/// information the owner legitimately holds after result decryption. A new
/// query is served:
///  * from the server, when it intersects no previous query (the fresh
///    range and its results are then cached);
///  * from the cache, when previously answered ranges collectively cover
///    it (no tokens leave the owner at all);
///  * otherwise it is refused with FAILED_PRECONDITION, since issuing it
///    would break the DPRF security argument.
class CachedConstantClient {
 public:
  struct Answer {
    std::vector<uint64_t> ids;
    /// True when answered locally with zero server interaction.
    bool served_from_cache = false;
    /// Protocol costs (zero when served from cache).
    size_t token_count = 0;
    size_t token_bytes = 0;
  };

  /// `scheme` must outlive the client and already be built over `dataset`
  /// (the dataset stands in for the owner's ability to decrypt results).
  CachedConstantClient(ConstantScheme& scheme, const Dataset& dataset);

  /// Answers `r` per the policy above.
  Result<Answer> Query(const Range& r);

  /// Number of ranges answered by the server so far.
  size_t HistorySize() const { return history_.size(); }

 private:
  struct CachedRange {
    Range range;
    std::vector<Record> results;  // decrypted (id, attr) pairs
  };

  /// True when the union of cached ranges covers `r` completely.
  bool CacheCovers(const Range& r) const;

  ConstantScheme& scheme_;
  const Dataset& dataset_;
  std::vector<CachedRange> history_;
};

}  // namespace rsse

#endif  // RSSE_RSSE_CONSTANT_CACHE_H_
