#ifndef RSSE_RSSE_LOGARITHMIC_H_
#define RSSE_RSSE_LOGARITHMIC_H_

#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "cover/dyadic.h"
#include "data/dataset.h"
#include "rsse/local_backend.h"
#include "rsse/scheme.h"
#include "shard/sharded_emm.h"

namespace rsse {

/// Logarithmic-BRC / Logarithmic-URC (Section 6.1): every tuple is
/// replicated under the O(log m) dyadic-node keywords on its root-to-leaf
/// path; a query issues one standard SSE token per BRC/URC cover node.
/// Storage O(n log m), query O(log R), search O(log R + r), no false
/// positives, and — unlike the Constant schemes — no DPRF, so the only
/// structural leakage is the partitioning of the result ids into
/// per-cover-node groups.
class LogarithmicScheme : public RangeScheme, public TrapdoorGenerator {
 public:
  LogarithmicScheme(CoverTechnique technique, uint64_t rng_seed = 1);

  SchemeId id() const override {
    return technique_ == CoverTechnique::kBrc ? SchemeId::kLogarithmicBrc
                                              : SchemeId::kLogarithmicUrc;
  }
  Status Build(const Dataset& dataset) override;
  size_t IndexSizeBytes() const override { return index_.SizeBytes(); }

  /// Owner half: one SSE token per cover node, randomly permuted before
  /// leaving.
  Result<TokenSet> Trapdoor(const Range& r) override;
  TrapdoorGenerator& trapdoors() override { return *this; }
  SearchBackend& local_backend() override;
  Result<ServerSetup> ExportServerSetup() const override;

  /// The cover this scheme would use for `r` (exposed for leakage tests).
  std::vector<DyadicNode> Cover(const Range& r) const;

 private:
  CoverTechnique technique_;
  Rng rng_;
  int bits_ = 0;
  Bytes master_key_;
  shard::ShardedEmm index_;
  LocalBackend backend_;
};

}  // namespace rsse

#endif  // RSSE_RSSE_LOGARITHMIC_H_
