#ifndef RSSE_RSSE_LEAKAGE_H_
#define RSSE_RSSE_LEAKAGE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "data/dataset.h"
#include "dprf/ggm_dprf.h"

namespace rsse::leakage {

/// Analysis helpers that make the paper's leakage functions (Sections 5-6)
/// concrete and testable. These compute, from plaintext data, exactly what
/// the formal L1/L2 definitions say an adversary learns — so the tests can
/// verify e.g. that URC's trapdoor shape is position-independent while
/// BRC's is not, and that the Constant schemes reveal strictly more
/// structure than the Logarithmic ones.

/// L1 leakage common to the tree-based schemes: 〈m, n〉.
struct SetupLeakage {
  uint64_t domain_size = 0;
  uint64_t dataset_size = 0;

  friend bool operator==(const SetupLeakage&, const SetupLeakage&) = default;
};

/// Per-query cover-node level profile: the sorted multiset of levels of the
/// BRC/URC cover — observable by the adversary from the number and shape of
/// tokens. URC's profile is a function of the range size alone.
std::vector<int> CoverLevelProfile(const Range& r, CoverTechnique technique,
                                   int bits);

/// One per-cover-node result group of Logarithmic-BRC/URC's L2 leakage:
/// the node alias carries only its level; ids are the tuples under it.
struct ResultGroup {
  int level = 0;
  std::vector<uint64_t> ids;
};

/// The "result partitioning" structural leakage of Logarithmic-BRC/URC
/// (Section 6.1): the result ids split into per-cover-node groups.
std::vector<ResultGroup> ResultPartitioning(const Dataset& dataset,
                                            const Range& r,
                                            CoverTechnique technique,
                                            int bits);

/// The richer structural leakage of Constant-BRC/URC (Section 5): per cover
/// node, the *exact mapping* of result ids to leaf offsets inside the
/// node's subtree — this reveals relative order, which the Logarithmic
/// schemes hide.
struct SubtreeMapping {
  int level = 0;
  /// (leaf offset within the subtree, tuple id) pairs.
  std::vector<std::pair<uint64_t, uint64_t>> offset_to_id;
};
std::vector<SubtreeMapping> ConstantStructuralLeakage(const Dataset& dataset,
                                                      const Range& r,
                                                      CoverTechnique technique,
                                                      int bits);

/// Search-pattern observer σ(W): records opaque token material per query
/// and reports which query pairs visibly repeat a token.
class SearchPatternTracker {
 public:
  void Observe(size_t query_index, const std::vector<Bytes>& tokens);

  /// All (i, j) with i < j sharing at least one identical token.
  std::vector<std::pair<size_t, size_t>> MatchingPairs() const;

 private:
  std::vector<std::pair<size_t, Bytes>> observations_;
};

}  // namespace rsse::leakage

#endif  // RSSE_RSSE_LEAKAGE_H_
