#ifndef RSSE_RSSE_LOG_SRC_I_H_
#define RSSE_RSSE_LOG_SRC_I_H_

#include <memory>

#include "common/bytes.h"
#include "common/rng.h"
#include "cover/tdag.h"
#include "data/dataset.h"
#include "rsse/bloom_gate.h"
#include "rsse/local_backend.h"
#include "rsse/scheme.h"
#include "shard/sharded_emm.h"

namespace rsse {

/// Logarithmic-SRC-i (Section 6.3): the interactive double-index refinement
/// of Logarithmic-SRC that caps false positives at O(R + r) even under
/// heavy skew.
///
///  * I1 — built over TDAG1 on the *domain*; one constant-size document
///    `(value, [first, last])` per distinct value, where [first, last] is
///    the positions of that value's tuples in the attr-sorted order.
///  * I2 — built over TDAG2 on the *sorted tuple positions* 0..n-1 (ties
///    shuffled); documents are the tuple ids.
///
/// Query protocol (two rounds): SRC token for the query range on I1 →
/// owner decrypts the (value, position-range) pairs, keeps those whose
/// value satisfies the query, merges them into one contiguous position
/// range w' → SRC token for w' on I2 → server returns the tuple ids.
/// I1 is hosted at the primary store slot, I2 at the secondary one; the
/// round-2 token set is the dependent batch `ContinueTrapdoor` derives
/// from round 1's resolved documents.
class LogarithmicSrcIScheme : public RangeScheme, public TrapdoorGenerator {
 public:
  /// `pad_quantum` > 0 pads every posting list of both indexes to a
  /// multiple of the quantum with dummy entries, as in Logarithmic-SRC.
  explicit LogarithmicSrcIScheme(uint64_t rng_seed = 1,
                                 uint64_t pad_quantum = 0);

  SchemeId id() const override { return SchemeId::kLogarithmicSrcI; }
  Status Build(const Dataset& dataset) override;
  size_t IndexSizeBytes() const override {
    return i1_.SizeBytes() + i2_.SizeBytes();
  }

  /// Owner half, round 1: the SRC token for the query range on I1.
  Result<TokenSet> Trapdoor(const Range& r) override;

  /// Owner half, round 2: refine round 1's (value, position-range)
  /// documents into the merged position range w' and emit the dependent
  /// SRC token on I2 — or end the protocol when no value qualified.
  Result<std::optional<TokenSet>> ContinueTrapdoor(
      const Range& r, int completed_rounds, const ResolvedIds& prev) override;

  TrapdoorGenerator& trapdoors() override { return *this; }
  SearchBackend& local_backend() override;
  Result<ServerSetup> ExportServerSetup() const override;

  /// Size of the auxiliary index I1 alone; its dependence on the number of
  /// distinct values explains the Gowalla-vs-USPS gap in Fig. 5 / Table 2.
  size_t AuxiliaryIndexSizeBytes() const { return i1_.SizeBytes(); }

  /// Installs Bloom pre-decryption gates over both indexes (one filter
  /// each), built during `Build`: the server skips decrypting entries the
  /// filters reject (padding dummies); `QueryResult::skipped_decrypts`
  /// totals the savings across both rounds. Same opt-in perf/leakage trade
  /// as Logarithmic-SRC's gate; only effective with `pad_quantum` > 0.
  /// Call before `Build`. Both gates ship with `ExportServerSetup`.
  void EnableBloomGate(double fp_rate = 0.01) { bloom_fp_rate_ = fp_rate; }

  /// Bytes of the shipped Bloom gates (0 when disabled).
  size_t BloomGateSizeBytes() const {
    return (gate1_ == nullptr ? 0 : gate1_->SizeBytes()) +
           (gate2_ == nullptr ? 0 : gate2_->SizeBytes());
  }

 private:
  Rng rng_;
  uint64_t pad_quantum_;
  std::unique_ptr<Tdag> tdag1_;  // over the domain
  std::unique_ptr<Tdag> tdag2_;  // over sorted tuple positions
  Bytes key1_;
  Bytes key2_;
  shard::ShardedEmm i1_;
  shard::ShardedEmm i2_;
  LocalBackend backend_;
  double bloom_fp_rate_ = 0.0;  // 0 disables the gates
  std::unique_ptr<BloomLabelGate> gate1_;
  std::unique_ptr<BloomLabelGate> gate2_;
  uint64_t n_ = 0;
};

}  // namespace rsse

#endif  // RSSE_RSSE_LOG_SRC_I_H_
