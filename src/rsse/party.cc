#include "rsse/party.h"

namespace rsse {

size_t TokenSet::TokenCount() const {
  return ggm.size() + keyword.size() + opaque.size();
}

size_t TokenSet::TokenBytes() const {
  size_t bytes = 0;
  for (const GgmDprf::Token& t : ggm) bytes += t.seed.size() + 1;
  for (const sse::KeywordKeys& t : keyword) {
    bytes += t.label_key.size() + t.value_key.size();
  }
  for (const Bytes& t : opaque) bytes += t.size();
  return bytes;
}

Result<std::optional<TokenSet>> TrapdoorGenerator::ContinueTrapdoor(
    const Range& r, int completed_rounds, const ResolvedIds& prev) {
  (void)r;
  (void)completed_rounds;
  (void)prev;
  return std::optional<TokenSet>();
}

}  // namespace rsse
