#ifndef RSSE_RSSE_CONSTANT_H_
#define RSSE_RSSE_CONSTANT_H_

#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "dprf/ggm_dprf.h"
#include "rsse/local_backend.h"
#include "rsse/scheme.h"
#include "shard/sharded_emm.h"

namespace rsse {

/// Constant-BRC / Constant-URC (Section 5): one keyword per domain value —
/// O(n) storage — with the per-keyword SSE keys derived from a *delegatable*
/// PRF. A query of size R ships the O(log R) GGM seeds of its BRC/URC cover;
/// the server expands them into the R leaf DPRF values and uses each as the
/// SSE token for one domain value. Search is O(R + r); no false positives.
///
/// The schemes are secure only for non-intersecting queries (an inherent
/// DPRF limitation, Section 5); `EnableIntersectionGuard` turns on the
/// application-level history check the paper suggests.
class ConstantScheme : public RangeScheme, public TrapdoorGenerator {
 public:
  ConstantScheme(CoverTechnique technique, uint64_t rng_seed = 1);

  SchemeId id() const override {
    return technique_ == CoverTechnique::kBrc ? SchemeId::kConstantBrc
                                              : SchemeId::kConstantUrc;
  }
  Status Build(const Dataset& dataset) override;
  size_t IndexSizeBytes() const override { return index_.SizeBytes(); }

  /// Owner half: delegates the GGM seeds of the BRC/URC cover (and runs
  /// the intersection guard, when enabled, before any token leaves).
  Result<TokenSet> Trapdoor(const Range& r) override;
  TrapdoorGenerator& trapdoors() override { return *this; }
  SearchBackend& local_backend() override;
  Result<ServerSetup> ExportServerSetup() const override;

  /// Enforce the paper's non-intersecting-query constraint: a query that
  /// intersects any previously issued one fails with FAILED_PRECONDITION.
  void EnableIntersectionGuard() { guard_enabled_ = true; }

  /// Worker threads for the server-side multi-token search (each covering
  /// node expands and probes independently). 0 reads the
  /// RSSE_SEARCH_THREADS environment variable, defaulting to 1.
  void SetSearchThreads(int threads) { search_threads_ = threads; }

  /// Shard count for the server-side encrypted dictionary. 0 reads the
  /// RSSE_SHARDS environment variable, defaulting to 1. Must be set before
  /// `Build`.
  void SetShards(int shards) { shards_ = shards; }

  /// The server-side dictionary, serialized for shipping to a standalone
  /// `rsse_serverd` (holds only pseudorandom labels and ciphertexts).
  Bytes SerializeIndex() const { return index_.Serialize(); }

  /// Server-side store (exposed for tests/benches).
  const shard::ShardedEmm& index() const { return index_; }

  /// Owner-side delegation only (exposed for tests/benches that need the
  /// raw tokens).
  std::vector<GgmDprf::Token> Delegate(const Range& r);

 private:
  CoverTechnique technique_;
  Rng rng_;
  int bits_ = 0;
  std::unique_ptr<GgmDprf> dprf_;
  shard::ShardedEmm index_;
  LocalBackend backend_;
  bool guard_enabled_ = false;
  int search_threads_ = 0;
  int shards_ = 0;
  std::vector<Range> history_;
};

}  // namespace rsse

#endif  // RSSE_RSSE_CONSTANT_H_
