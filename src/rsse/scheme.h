#ifndef RSSE_RSSE_SCHEME_H_
#define RSSE_RSSE_SCHEME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace rsse {

/// The RSSE constructions of the paper (Table 1).
enum class SchemeId {
  kQuadratic,
  kConstantBrc,
  kConstantUrc,
  kLogarithmicBrc,
  kLogarithmicUrc,
  kLogarithmicSrc,
  kLogarithmicSrcI,
  /// The Li et al. (PVLDB'14) baseline, implemented in src/pb. Not produced
  /// by `MakeScheme` (module layering); use `pb::MakePbScheme`.
  kPb,
  /// Section 5's naive per-value strawman: O(R) query size; ablation only.
  kNaivePerValue,
};

/// Human-readable scheme name as used in the paper's figures.
const char* SchemeName(SchemeId id);

/// Outcome of one range-query protocol execution.
struct QueryResult {
  /// Tuple ids as delivered by the server. SRC-based schemes may include
  /// false positives; the owner removes them after decrypting the tuples
  /// (see `FilterIdsToRange`).
  std::vector<uint64_t> ids;

  /// Number of tokens sent to the server across all rounds (Fig. 8a
  /// counts these; BRC/URC send O(log R), SRC one, SRC-i two).
  size_t token_count = 0;

  /// Total bytes of token material sent (the query-size metric of Fig. 8a).
  size_t token_bytes = 0;

  /// Communication rounds (1, or 2 for Logarithmic-SRC-i).
  int rounds = 1;

  /// Owner-side trapdoor generation time (Fig. 8b) in nanoseconds.
  uint64_t trapdoor_nanos = 0;

  /// Server-side search time (Fig. 7) in nanoseconds.
  uint64_t search_nanos = 0;

  /// Candidate decryptions a pre-decryption gate skipped (padding dummies
  /// rejected by the Bloom gate of SRC/SRC-i; 0 when no gate is active).
  size_t skipped_decrypts = 0;
};

/// Uniform facade over all RSSE constructions. One object models both
/// parties of the in-memory protocol while keeping the boundary explicit:
/// `Build` runs the owner's Setup+BuildIndex and installs the encrypted
/// index at the (simulated) server; `Query` runs the full trapdoor/search
/// protocol and reports per-party costs. Concrete classes expose additional
/// scheme-specific surface (e.g. leakage accessors) for tests.
class RangeScheme {
 public:
  virtual ~RangeScheme() = default;

  virtual SchemeId id() const = 0;

  /// Owner-side index construction over `dataset`. Must be called once
  /// before `Query`.
  virtual Status Build(const Dataset& dataset) = 0;

  /// Size of the outsourced encrypted index in bytes (Fig. 5a metric).
  virtual size_t IndexSizeBytes() const = 0;

  /// Executes the query protocol for range `r` (clipped to the domain).
  virtual Result<QueryResult> Query(const Range& r) = 0;
};

/// Owner-side post-filtering: after retrieving and decrypting the tuples
/// for `ids`, the owner keeps those whose attribute lies in `r`. Here the
/// plaintext `dataset` stands in for the decrypted tuples.
std::vector<uint64_t> FilterIdsToRange(const Dataset& dataset,
                                       const std::vector<uint64_t>& ids,
                                       const Range& r);

/// Clips `r` to the domain; returns false when the intersection is empty.
bool ClipRangeToDomain(const Domain& domain, Range& r);

}  // namespace rsse

#endif  // RSSE_RSSE_SCHEME_H_
