#ifndef RSSE_RSSE_SCHEME_H_
#define RSSE_RSSE_SCHEME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "rsse/party.h"

namespace rsse {

/// The RSSE constructions of the paper (Table 1).
enum class SchemeId {
  kQuadratic,
  kConstantBrc,
  kConstantUrc,
  kLogarithmicBrc,
  kLogarithmicUrc,
  kLogarithmicSrc,
  kLogarithmicSrcI,
  /// The Li et al. (PVLDB'14) baseline, implemented in src/pb. Not produced
  /// by `MakeScheme` (module layering); use `pb::MakePbScheme`.
  kPb,
  /// Section 5's naive per-value strawman: O(R) query size; ablation only.
  kNaivePerValue,
};

/// Human-readable scheme name as used in the paper's figures.
const char* SchemeName(SchemeId id);

/// Outcome of one range-query protocol execution.
struct QueryResult {
  /// Tuple ids as delivered by the server. SRC-based schemes may include
  /// false positives; the owner removes them after decrypting the tuples
  /// (see `FilterIdsToRange`).
  std::vector<uint64_t> ids;

  /// Number of tokens sent to the server across all rounds (Fig. 8a
  /// counts these; BRC/URC send O(log R), SRC one, SRC-i two).
  size_t token_count = 0;

  /// Total bytes of token material sent (the query-size metric of Fig. 8a).
  size_t token_bytes = 0;

  /// Communication rounds (1, or 2 for Logarithmic-SRC-i).
  int rounds = 1;

  /// Owner-side trapdoor generation time (Fig. 8b) in nanoseconds.
  uint64_t trapdoor_nanos = 0;

  /// Server-side search time (Fig. 7) in nanoseconds.
  uint64_t search_nanos = 0;

  /// Candidate decryptions a pre-decryption gate skipped (padding dummies
  /// rejected by the Bloom gate of SRC/SRC-i; 0 when no gate is active).
  size_t skipped_decrypts = 0;
};

/// Uniform facade over all RSSE constructions, split along the paper's
/// two-party protocol boundary: the owner half is the scheme's
/// `TrapdoorGenerator` (trapdoor generation and, for SRC-i, the round-2
/// refinement), the server half is a `SearchBackend` resolving token sets
/// against the hosted stores. `Build` runs the owner's Setup+BuildIndex
/// and installs the encrypted index at the in-process `local_backend()`;
/// `Query` composes trapdoor -> backend resolve -> owner post-filter and
/// reports per-party costs. `QueryVia` runs the identical protocol over
/// any other backend — in particular a `server::RemoteBackend` speaking to
/// a standalone `rsse_serverd` hosting this scheme's
/// `ExportServerSetup()` blobs. Concrete classes expose additional
/// scheme-specific surface (e.g. leakage accessors) for tests.
class RangeScheme {
 public:
  virtual ~RangeScheme() = default;

  virtual SchemeId id() const = 0;

  /// Owner-side index construction over `dataset`. Must be called once
  /// before `Query`.
  virtual Status Build(const Dataset& dataset) = 0;

  /// Size of the outsourced encrypted index in bytes (Fig. 5a metric).
  virtual size_t IndexSizeBytes() const = 0;

  /// The owner half of the protocol (valid after `Build`).
  virtual TrapdoorGenerator& trapdoors() = 0;

  /// The in-process server half over this scheme's own stores (valid
  /// after `Build`).
  virtual SearchBackend& local_backend() = 0;

  /// Serialized server-side state (index blobs, pre-decryption gates) for
  /// hosting this scheme on a standalone server. Schemes without a
  /// shippable server half stay local-only and return UNIMPLEMENTED.
  virtual Result<ServerSetup> ExportServerSetup() const;

  /// Executes the query protocol for range `r` (clipped to the domain)
  /// against the in-process backend.
  Result<QueryResult> Query(const Range& r);

  /// Executes the query protocol against an arbitrary backend: rounds of
  /// owner trapdoor generation and server resolution, then the owner-side
  /// decode of the final round's payloads. `QueryResult` cost accounting
  /// is identical to `Query`; `search_nanos` covers the backend call (for
  /// a remote backend this includes the wire round trip).
  Result<QueryResult> QueryVia(SearchBackend& backend, const Range& r);

 protected:
  /// Set by every scheme's `Build`; `Query` clips against it.
  Domain domain_;
  bool built_ = false;
};

/// Owner-side post-filtering: after retrieving and decrypting the tuples
/// for `ids`, the owner keeps those whose attribute lies in `r`. Here the
/// plaintext `dataset` stands in for the decrypted tuples.
std::vector<uint64_t> FilterIdsToRange(const Dataset& dataset,
                                       const std::vector<uint64_t>& ids,
                                       const Range& r);

/// Clips `r` to the domain; returns false when the intersection is empty.
bool ClipRangeToDomain(const Domain& domain, Range& r);

}  // namespace rsse

#endif  // RSSE_RSSE_SCHEME_H_
