#ifndef RSSE_RSSE_PARTY_H_
#define RSSE_RSSE_PARTY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "data/dataset.h"
#include "dprf/ggm_dprf.h"
#include "sse/keyword_keys.h"

namespace rsse {

/// The two-party protocol boundary of the paper's constructions, made
/// explicit: the data owner runs a `TrapdoorGenerator` (Trpdr), the server
/// runs a `SearchBackend` (Search). `RangeScheme::Query` composes the two;
/// substituting a `server::RemoteBackend` for the scheme's `LocalBackend`
/// runs the identical protocol against a standalone `rsse_serverd`.

/// Server-side store slots. Single-index schemes keep everything at the
/// primary slot; Logarithmic-SRC-i hosts I1 at the primary slot and I2 at
/// the secondary one.
inline constexpr uint32_t kPrimaryStore = 0;
inline constexpr uint32_t kSecondaryStore = 1;

/// How a server must interpret a hosted index blob and the tokens probing
/// it (`StoreSetup::kind`, mirrored on the wire as a raw byte).
enum class StoreKind : uint8_t {
  /// Π_bas encrypted dictionary (a `shard::ShardedEmm` blob): resolves GGM
  /// subtree tokens and standard keyword tokens.
  kEmm = 0,
  /// The PB baseline's Bloom-filter tree (`pb::FilterTreeIndex` blob):
  /// resolves opaque trapdoor tokens by tree descent.
  kFilterTree = 1,
};

/// One round's worth of trapdoors, as they leave the owner. Exactly one
/// token family is populated per scheme: GGM subtree tokens for the
/// Constant schemes' BRC/URC covers, keyword tokens for every standard-SSE
/// construction (Quadratic, Logarithmic, SRC, SRC-i, Naive), opaque
/// trapdoor blobs for the PB baseline's filter tree.
struct TokenSet {
  /// Which hosted store this round probes (SRC-i round 2 -> I2).
  uint32_t store = kPrimaryStore;

  /// Delegated GGM covering nodes (the DPRF tokens of Section 5).
  std::vector<GgmDprf::Token> ggm;

  /// Standard SSE tokens: the per-keyword (K1, K2) pair.
  std::vector<sse::KeywordKeys> keyword;

  /// Scheme-opaque trapdoors (PB's keyed dyadic-range trapdoors).
  std::vector<Bytes> opaque;

  bool empty() const {
    return ggm.empty() && keyword.empty() && opaque.empty();
  }

  /// Token count / byte size as the query-cost metrics of Fig. 8a count
  /// them (GGM: seed + level byte; keyword: both keys; opaque: the blob).
  size_t TokenCount() const;
  size_t TokenBytes() const;
};

/// Outcome of one server-side resolution round. Payloads are returned in
/// server order, decrypted: for a protocol's final round they are id
/// payloads (`sse::DecodeIdPayload`); SRC-i's first round returns the
/// 24-byte (value, position-range) documents of I1 for the owner to refine.
struct ResolvedIds {
  std::vector<Bytes> payloads;
  /// Candidate decryptions a pre-decryption gate skipped server-side.
  size_t skipped_decrypts = 0;
};

/// Server half: resolves one TokenSet against the hosted store(s).
/// Implementations: `LocalBackend` (in-process stores, the paper's
/// simulated server) and `server::RemoteBackend` (a real `rsse_serverd`
/// over the wire protocol).
class SearchBackend {
 public:
  virtual ~SearchBackend() = default;

  virtual Result<ResolvedIds> Resolve(const TokenSet& tokens) = 0;
};

/// Owner half: turns a clipped, non-empty range into per-round token sets.
/// Single-round schemes implement `Trapdoor` alone; SRC-i overrides
/// `ContinueTrapdoor` to derive round 2 from round 1's resolved documents.
class TrapdoorGenerator {
 public:
  virtual ~TrapdoorGenerator() = default;

  /// Round-1 token set for `r` (already clipped to the domain).
  virtual Result<TokenSet> Trapdoor(const Range& r) = 0;

  /// Next-round token set after `completed_rounds` rounds, the latest of
  /// which resolved to `prev`. nullopt ends the protocol (the default:
  /// every scheme but SRC-i is single-round).
  virtual Result<std::optional<TokenSet>> ContinueTrapdoor(
      const Range& r, int completed_rounds, const ResolvedIds& prev);
};

/// One serialized server-side store, as shipped to `rsse_serverd` in a
/// SetupStore frame: the index blob plus (optionally) the Bloom
/// pre-decryption gate built over its real-entry labels.
struct StoreSetup {
  uint32_t store = kPrimaryStore;
  StoreKind kind = StoreKind::kEmm;
  Bytes index_blob;
  /// Serialized `BloomLabelGate`; empty = no gate.
  Bytes gate_blob;
};

/// Everything a standalone server needs to host a scheme: the scheme's
/// stores in slot order. Produced by `RangeScheme::ExportServerSetup`.
struct ServerSetup {
  std::vector<StoreSetup> stores;
};

}  // namespace rsse

#endif  // RSSE_RSSE_PARTY_H_
