#include "rsse/multi_attribute.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "rsse/factory.h"

namespace rsse {

TwoAttributeScheme::TwoAttributeScheme(SchemeId scheme, uint64_t rng_seed)
    : scheme_id_(scheme), rng_seed_(rng_seed) {}

Status TwoAttributeScheme::Build(const Domain& domain_x,
                                 const Domain& domain_y,
                                 const std::vector<Record2D>& records) {
  std::vector<Record> records_x;
  std::vector<Record> records_y;
  records_x.reserve(records.size());
  records_y.reserve(records.size());
  for (const Record2D& r : records) {
    records_x.push_back(Record{r.id, r.x});
    records_y.push_back(Record{r.id, r.y});
  }
  index_x_ = MakeScheme(scheme_id_, rng_seed_);
  index_y_ = MakeScheme(scheme_id_, rng_seed_ + 1);
  if (index_x_ == nullptr || index_y_ == nullptr) {
    return Status::InvalidArgument("unsupported sub-scheme");
  }
  RSSE_RETURN_IF_ERROR(
      index_x_->Build(Dataset(domain_x, std::move(records_x))));
  RSSE_RETURN_IF_ERROR(
      index_y_->Build(Dataset(domain_y, std::move(records_y))));
  built_ = true;
  return Status::Ok();
}

Result<TwoAttributeScheme::RectResult> TwoAttributeScheme::Query(
    const Range& rx, const Range& ry) {
  if (!built_) return Status::FailedPrecondition("Build() not called");
  Result<QueryResult> qx = index_x_->Query(rx);
  if (!qx.ok()) return qx.status();
  Result<QueryResult> qy = index_y_->Query(ry);
  if (!qy.ok()) return qy.status();

  RectResult result;
  result.token_count = qx->token_count + qy->token_count;
  result.token_bytes = qx->token_bytes + qy->token_bytes;
  result.rounds = std::max(qx->rounds, qy->rounds);

  // Owner-side intersection; duplicates within one list collapse.
  std::unordered_set<uint64_t> from_x(qx->ids.begin(), qx->ids.end());
  std::unordered_set<uint64_t> seen;
  for (uint64_t id : qy->ids) {
    if (from_x.count(id) && seen.insert(id).second) {
      result.ids.push_back(id);
    }
  }
  std::sort(result.ids.begin(), result.ids.end());
  return result;
}

size_t TwoAttributeScheme::IndexSizeBytes() const {
  if (!built_) return 0;
  return index_x_->IndexSizeBytes() + index_y_->IndexSizeBytes();
}

std::vector<uint64_t> TwoAttributeScheme::FilterToRect(
    const std::vector<Record2D>& records, const std::vector<uint64_t>& ids,
    const Range& rx, const Range& ry) {
  std::unordered_map<uint64_t, const Record2D*> by_id;
  by_id.reserve(records.size());
  for (const Record2D& r : records) by_id[r.id] = &r;
  std::vector<uint64_t> out;
  for (uint64_t id : ids) {
    auto it = by_id.find(id);
    if (it == by_id.end()) continue;
    if (rx.Contains(it->second->x) && ry.Contains(it->second->y)) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace rsse
