#include "rsse/log_src.h"

#include "common/stats.h"
#include "crypto/random.h"
#include "sse/keyword_keys.h"

namespace rsse {

LogarithmicSrcScheme::LogarithmicSrcScheme(uint64_t rng_seed,
                                           uint64_t pad_quantum)
    : rng_(rng_seed), pad_quantum_(pad_quantum) {}

Status LogarithmicSrcScheme::Build(const Dataset& dataset) {
  domain_ = dataset.domain();
  if (domain_.size == 0) return Status::InvalidArgument("empty domain");
  tdag_ = std::make_unique<Tdag>(domain_.Bits());
  master_key_ = crypto::GenerateKey();

  sse::PlainMultimap postings;
  for (const Record& rec : dataset.records()) {
    for (const TdagNode& node : tdag_->Cover(rec.attr)) {
      postings[node.EncodeKeyword()].push_back(sse::EncodeIdPayload(rec.id));
    }
  }
  // Tuples under the same keyword are randomly permuted so the single
  // returned list carries no ordering information (Section 6.2).
  for (auto& [keyword, payloads] : postings) rng_.Shuffle(payloads);

  sse::PrfKeyDeriver deriver(master_key_);
  sse::PaddingPolicy padding{pad_quantum_};
  Result<sse::EncryptedMultimap> index =
      sse::EncryptedMultimap::Build(postings, deriver, padding);
  if (!index.ok()) return index.status();
  index_ = std::move(index).value();

  if (bloom_fp_rate_ > 0.0) {
    size_t real_entries = 0;
    for (const auto& [keyword, payloads] : postings) {
      real_entries += payloads.size();
    }
    gate_ = std::make_unique<BloomLabelGate>(real_entries, bloom_fp_rate_,
                                             /*salt=*/0x5352432d31ull);
    Status s = gate_->Populate(postings, deriver);
    if (!s.ok()) return s;
  }
  built_ = true;
  return Status::Ok();
}

Result<QueryResult> LogarithmicSrcScheme::Query(const Range& query) {
  if (!built_) return Status::FailedPrecondition("Build() not called");
  Range r = query;
  if (!ClipRangeToDomain(domain_, r)) return QueryResult{};

  QueryResult result;

  WallTimer trapdoor_timer;
  sse::PrfKeyDeriver deriver(master_key_);
  const TdagNode node = tdag_->SingleRangeCover(r);
  sse::KeywordKeys token = deriver.Derive(node.EncodeKeyword());
  result.trapdoor_nanos = trapdoor_timer.ElapsedNanos();
  result.token_count = 1;
  result.token_bytes = token.label_key.size() + token.value_key.size();

  WallTimer search_timer;
  sse::SearchStats stats;
  for (const Bytes& payload : index_.Search(token, gate_.get(), &stats)) {
    if (auto id = sse::DecodeIdPayload(payload); id.has_value()) {
      result.ids.push_back(*id);
    }
  }
  result.search_nanos = search_timer.ElapsedNanos();
  result.skipped_decrypts = stats.skipped_decrypts;
  return result;
}

}  // namespace rsse
