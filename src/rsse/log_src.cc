#include "rsse/log_src.h"

#include "crypto/random.h"
#include "sse/keyword_keys.h"

namespace rsse {

LogarithmicSrcScheme::LogarithmicSrcScheme(uint64_t rng_seed,
                                           uint64_t pad_quantum)
    : rng_(rng_seed), pad_quantum_(pad_quantum) {}

Status LogarithmicSrcScheme::Build(const Dataset& dataset) {
  domain_ = dataset.domain();
  if (domain_.size == 0) return Status::InvalidArgument("empty domain");
  tdag_ = std::make_unique<Tdag>(domain_.Bits());
  master_key_ = crypto::GenerateKey();

  sse::PlainMultimap postings;
  for (const Record& rec : dataset.records()) {
    for (const TdagNode& node : tdag_->Cover(rec.attr)) {
      postings[node.EncodeKeyword()].push_back(sse::EncodeIdPayload(rec.id));
    }
  }
  // Tuples under the same keyword are randomly permuted so the single
  // returned list carries no ordering information (Section 6.2).
  for (auto& [keyword, payloads] : postings) rng_.Shuffle(payloads);

  sse::PrfKeyDeriver deriver(master_key_);
  shard::ShardOptions options;
  options.padding = sse::PaddingPolicy{pad_quantum_};
  Result<shard::ShardedEmm> index =
      shard::ShardedEmm::Build(postings, deriver, options);
  if (!index.ok()) return index.status();
  index_ = std::move(index).value();

  if (bloom_fp_rate_ > 0.0) {
    size_t real_entries = 0;
    for (const auto& [keyword, payloads] : postings) {
      real_entries += payloads.size();
    }
    gate_ = std::make_unique<BloomLabelGate>(real_entries, bloom_fp_rate_,
                                             /*salt=*/0x5352432d31ull);
    Status s = gate_->Populate(postings, deriver);
    if (!s.ok()) return s;
  }
  built_ = true;
  return Status::Ok();
}

Result<TokenSet> LogarithmicSrcScheme::Trapdoor(const Range& r) {
  TokenSet tokens;
  sse::PrfKeyDeriver deriver(master_key_);
  tokens.keyword.push_back(
      deriver.Derive(tdag_->SingleRangeCover(r).EncodeKeyword()));
  return tokens;
}

SearchBackend& LogarithmicSrcScheme::local_backend() {
  return ConfigureSingleEmmBackend(backend_, index_, gate_.get());
}

Result<ServerSetup> LogarithmicSrcScheme::ExportServerSetup() const {
  return SingleEmmServerSetup(built_, index_, gate_.get());
}

}  // namespace rsse
