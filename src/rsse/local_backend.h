#ifndef RSSE_RSSE_LOCAL_BACKEND_H_
#define RSSE_RSSE_LOCAL_BACKEND_H_

#include <vector>

#include "pb/filter_tree.h"
#include "rsse/party.h"
#include "shard/sharded_emm.h"
#include "sse/emm_codec.h"

namespace rsse {

class BloomLabelGate;

/// In-process `SearchBackend`: the paper's simulated server, resolving
/// token sets directly against the scheme's own stores. Schemes register
/// their store(s) per slot; `Resolve` then mirrors exactly what a remote
/// `rsse_serverd` does for the same TokenSet — expand GGM subtrees and
/// probe the dictionary (strided across `search_threads` workers), run the
/// counter-probe search per keyword token through the store's
/// pre-decryption gate, or descend the PB filter tree for opaque
/// trapdoors.
///
/// Thread-compatibility: registration (`Clear`/`Add*Store`/
/// `SetSearchThreads`) and `Resolve` must be externally serialized — this
/// class holds no lock of its own. The only internal concurrency is
/// Resolve's fork/join over `RunWorkers`, which needs none: worker `t`
/// writes only the strided slots `per_token[t], per_token[t + threads],
/// ...` and its own `per_worker[t]` scratch (disjoint by construction,
/// published by RunWorkers' join), and reads the registered stores purely
/// through their const search paths.
class LocalBackend : public SearchBackend {
 public:
  LocalBackend() = default;

  /// Drops all registered stores (schemes re-register before each query,
  /// so a moved scheme never serves stale store pointers).
  void Clear() { slots_.clear(); }

  /// Registers an encrypted-dictionary store at `store`. `gate` may be
  /// null; when set, it is consulted before every candidate decryption.
  void AddEmmStore(uint32_t store, const shard::ShardedEmm* emm,
                   const sse::LabelGate* gate);

  /// Registers a PB filter-tree store at `store`.
  void AddFilterTreeStore(uint32_t store, const pb::FilterTreeIndex* tree);

  /// Worker threads for multi-token GGM resolution (0 reads
  /// RSSE_SEARCH_THREADS, defaulting to 1).
  void SetSearchThreads(int threads) { search_threads_ = threads; }

  Result<ResolvedIds> Resolve(const TokenSet& tokens) override;

 private:
  struct Slot {
    uint32_t store = kPrimaryStore;
    const shard::ShardedEmm* emm = nullptr;
    const sse::LabelGate* gate = nullptr;
    const pb::FilterTreeIndex* tree = nullptr;
  };

  const Slot* FindSlot(uint32_t store) const;

  std::vector<Slot> slots_;
  int search_threads_ = 0;
};

/// Boilerplate shared by the single-dictionary schemes (Constant,
/// Logarithmic, SRC, Quadratic, Naive): re-registers the scheme's one
/// store at the primary slot and returns the backend.
SearchBackend& ConfigureSingleEmmBackend(LocalBackend& backend,
                                         const shard::ShardedEmm& emm,
                                         const sse::LabelGate* gate = nullptr,
                                         int search_threads = 0);

/// The matching `ExportServerSetup` body: one primary-slot EMM store,
/// with the gate blob riding along when a gate is installed.
/// FAILED_PRECONDITION when `built` is false.
Result<ServerSetup> SingleEmmServerSetup(bool built,
                                         const shard::ShardedEmm& emm,
                                         const BloomLabelGate* gate = nullptr);

/// Loads a servable encrypted-dictionary blob, accepting either
/// serialization generation: the v1 framed blob (re-shardable on load via
/// `target_shards`) or a v2 mmap-native store image (heap-loaded with the
/// per-section checksum pass; v2 images keep their stored shard layout).
/// The shared load path of the server's Setup handlers, recovery, and
/// local tools — so every path that accepts an index accepts both
/// generations identically.
Result<shard::ShardedEmm> LoadServableIndex(
    const Bytes& blob, int threads = 0,
    int target_shards = shard::ShardedEmm::kKeepStoredShards);

}  // namespace rsse

#endif  // RSSE_RSSE_LOCAL_BACKEND_H_
