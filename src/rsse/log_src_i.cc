#include "rsse/log_src_i.h"

#include <algorithm>

#include "crypto/random.h"
#include "sse/keyword_keys.h"

namespace rsse {

namespace {

/// I1 document: (domain value, [first, last] position range), 24 bytes.
Bytes EncodeValueRange(uint64_t value, uint64_t first, uint64_t last) {
  Bytes out;
  out.reserve(24);
  AppendUint64(out, value);
  AppendUint64(out, first);
  AppendUint64(out, last);
  return out;
}

struct ValueRange {
  uint64_t value = 0;
  uint64_t first = 0;
  uint64_t last = 0;
};

bool DecodeValueRange(const Bytes& payload, ValueRange& out) {
  if (payload.size() != 24) return false;
  out.value = ReadUint64(payload, 0);
  out.first = ReadUint64(payload, 8);
  out.last = ReadUint64(payload, 16);
  return true;
}

int BitsForCount(uint64_t n) {
  int bits = 1;
  while ((uint64_t{1} << bits) < n) ++bits;
  return bits;
}

}  // namespace

LogarithmicSrcIScheme::LogarithmicSrcIScheme(uint64_t rng_seed,
                                             uint64_t pad_quantum)
    : rng_(rng_seed), pad_quantum_(pad_quantum) {}

Status LogarithmicSrcIScheme::Build(const Dataset& dataset) {
  domain_ = dataset.domain();
  if (domain_.size == 0) return Status::InvalidArgument("empty domain");
  n_ = dataset.size();
  key1_ = crypto::GenerateKey();
  key2_ = crypto::GenerateKey();
  tdag1_ = std::make_unique<Tdag>(domain_.Bits());
  tdag2_ = std::make_unique<Tdag>(BitsForCount(n_));

  // Sort tuples on A with random tie order ("prior to constructing TDAG2,
  // we randomly shuffle the documents corresponding to the same keyword").
  std::vector<Record> sorted = dataset.records();
  rng_.Shuffle(sorted);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Record& a, const Record& b) {
                     return a.attr < b.attr;
                   });

  // I1: one (value, position-range) document per distinct value, indexed
  // under the TDAG1 nodes covering the value.
  sse::PlainMultimap postings1;
  for (size_t i = 0; i < sorted.size();) {
    size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1].attr == sorted[i].attr) ++j;
    const Bytes doc = EncodeValueRange(sorted[i].attr, i, j);
    for (const TdagNode& node : tdag1_->Cover(sorted[i].attr)) {
      postings1[node.EncodeKeyword()].push_back(doc);
    }
    i = j + 1;
  }
  for (auto& [keyword, payloads] : postings1) rng_.Shuffle(payloads);

  // I2: tuple ids indexed under the TDAG2 nodes covering their sorted
  // position.
  sse::PlainMultimap postings2;
  for (size_t p = 0; p < sorted.size(); ++p) {
    for (const TdagNode& node : tdag2_->Cover(p)) {
      postings2[node.EncodeKeyword()].push_back(
          sse::EncodeIdPayload(sorted[p].id));
    }
  }
  for (auto& [keyword, payloads] : postings2) rng_.Shuffle(payloads);

  shard::ShardOptions options;
  options.padding = sse::PaddingPolicy{pad_quantum_};
  sse::PrfKeyDeriver deriver1(key1_);
  Result<shard::ShardedEmm> i1 =
      shard::ShardedEmm::Build(postings1, deriver1, options);
  if (!i1.ok()) return i1.status();
  i1_ = std::move(i1).value();

  sse::PrfKeyDeriver deriver2(key2_);
  Result<shard::ShardedEmm> i2 =
      shard::ShardedEmm::Build(postings2, deriver2, options);
  if (!i2.ok()) return i2.status();
  i2_ = std::move(i2).value();

  if (bloom_fp_rate_ > 0.0) {
    size_t real1 = 0;
    for (const auto& [keyword, payloads] : postings1) {
      real1 += payloads.size();
    }
    size_t real2 = 0;
    for (const auto& [keyword, payloads] : postings2) {
      real2 += payloads.size();
    }
    gate1_ = std::make_unique<BloomLabelGate>(real1, bloom_fp_rate_,
                                              /*salt=*/0x535243692d31ull);
    RSSE_RETURN_IF_ERROR(gate1_->Populate(postings1, deriver1));
    gate2_ = std::make_unique<BloomLabelGate>(real2, bloom_fp_rate_,
                                              /*salt=*/0x535243692d32ull);
    RSSE_RETURN_IF_ERROR(gate2_->Populate(postings2, deriver2));
  }

  built_ = true;
  return Status::Ok();
}

Result<TokenSet> LogarithmicSrcIScheme::Trapdoor(const Range& r) {
  // Round 1: SRC token on TDAG1 for the query range, probing I1.
  TokenSet tokens;
  tokens.store = kPrimaryStore;
  sse::PrfKeyDeriver deriver1(key1_);
  tokens.keyword.push_back(
      deriver1.Derive(tdag1_->SingleRangeCover(r).EncodeKeyword()));
  return tokens;
}

Result<std::optional<TokenSet>> LogarithmicSrcIScheme::ContinueTrapdoor(
    const Range& r, int completed_rounds, const ResolvedIds& prev) {
  if (completed_rounds != 1) return std::optional<TokenSet>();

  // Keep qualifying (value, position-range) documents and merge them into
  // the single contiguous position range w'.
  bool any = false;
  uint64_t first = 0;
  uint64_t last = 0;
  for (const Bytes& payload : prev.payloads) {
    ValueRange vr;
    if (!DecodeValueRange(payload, vr)) continue;
    if (!r.Contains(vr.value)) continue;
    if (!any) {
      first = vr.first;
      last = vr.last;
      any = true;
    } else {
      first = std::min(first, vr.first);
      last = std::max(last, vr.last);
    }
  }
  if (!any) {
    // No distinct value of the dataset falls in the range: done after one
    // round with an empty (exact) result.
    return std::optional<TokenSet>();
  }

  // Round 2: SRC token on TDAG2 for w', probing I2.
  TokenSet tokens;
  tokens.store = kSecondaryStore;
  sse::PrfKeyDeriver deriver2(key2_);
  tokens.keyword.push_back(deriver2.Derive(
      tdag2_->SingleRangeCover(Range{first, last}).EncodeKeyword()));
  return std::optional<TokenSet>(std::move(tokens));
}

SearchBackend& LogarithmicSrcIScheme::local_backend() {
  backend_.Clear();
  backend_.AddEmmStore(kPrimaryStore, &i1_, gate1_.get());
  backend_.AddEmmStore(kSecondaryStore, &i2_, gate2_.get());
  return backend_;
}

Result<ServerSetup> LogarithmicSrcIScheme::ExportServerSetup() const {
  if (!built_) return Status::FailedPrecondition("Build() not called");
  ServerSetup setup;
  StoreSetup s1;
  s1.store = kPrimaryStore;
  s1.kind = StoreKind::kEmm;
  s1.index_blob = i1_.Serialize();
  if (gate1_ != nullptr) s1.gate_blob = gate1_->Serialize();
  setup.stores.push_back(std::move(s1));
  StoreSetup s2;
  s2.store = kSecondaryStore;
  s2.kind = StoreKind::kEmm;
  s2.index_blob = i2_.Serialize();
  if (gate2_ != nullptr) s2.gate_blob = gate2_->Serialize();
  setup.stores.push_back(std::move(s2));
  return setup;
}

}  // namespace rsse
