#include "rsse/leakage.h"

#include <algorithm>

#include "cover/brc.h"
#include "cover/urc.h"

namespace rsse::leakage {

namespace {

std::vector<DyadicNode> CoverFor(const Range& r, CoverTechnique technique,
                                 int bits) {
  return technique == CoverTechnique::kBrc ? BestRangeCover(r, bits)
                                           : UniformRangeCover(r, bits);
}

}  // namespace

std::vector<int> CoverLevelProfile(const Range& r, CoverTechnique technique,
                                   int bits) {
  std::vector<int> levels;
  for (const DyadicNode& n : CoverFor(r, technique, bits)) {
    levels.push_back(n.level);
  }
  std::sort(levels.begin(), levels.end());
  return levels;
}

std::vector<ResultGroup> ResultPartitioning(const Dataset& dataset,
                                            const Range& r,
                                            CoverTechnique technique,
                                            int bits) {
  std::vector<ResultGroup> groups;
  for (const DyadicNode& node : CoverFor(r, technique, bits)) {
    ResultGroup group;
    group.level = node.level;
    for (const Record& rec : dataset.records()) {
      if (node.Contains(rec.attr)) group.ids.push_back(rec.id);
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

std::vector<SubtreeMapping> ConstantStructuralLeakage(
    const Dataset& dataset, const Range& r, CoverTechnique technique,
    int bits) {
  std::vector<SubtreeMapping> mappings;
  for (const DyadicNode& node : CoverFor(r, technique, bits)) {
    SubtreeMapping mapping;
    mapping.level = node.level;
    for (const Record& rec : dataset.records()) {
      if (node.Contains(rec.attr)) {
        mapping.offset_to_id.emplace_back(rec.attr - node.Lo(), rec.id);
      }
    }
    std::sort(mapping.offset_to_id.begin(), mapping.offset_to_id.end());
    mappings.push_back(std::move(mapping));
  }
  return mappings;
}

void SearchPatternTracker::Observe(size_t query_index,
                                   const std::vector<Bytes>& tokens) {
  for (const Bytes& t : tokens) observations_.emplace_back(query_index, t);
}

std::vector<std::pair<size_t, size_t>> SearchPatternTracker::MatchingPairs()
    const {
  std::vector<std::pair<size_t, size_t>> pairs;
  for (size_t a = 0; a < observations_.size(); ++a) {
    for (size_t b = a + 1; b < observations_.size(); ++b) {
      const auto& [qa, ta] = observations_[a];
      const auto& [qb, tb] = observations_[b];
      if (qa == qb || ta != tb) continue;
      auto p = std::minmax(qa, qb);
      if (std::find(pairs.begin(), pairs.end(),
                    std::make_pair(p.first, p.second)) == pairs.end()) {
        pairs.emplace_back(p.first, p.second);
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

}  // namespace rsse::leakage
