#ifndef RSSE_RSSE_QUADRATIC_H_
#define RSSE_RSSE_QUADRATIC_H_

#include <cstdint>
#include <memory>

#include "common/bytes.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "rsse/local_backend.h"
#include "rsse/scheme.h"
#include "shard/sharded_emm.h"

namespace rsse {

/// The Quadratic baseline (Section 4): every one of the O(m^2) sub-ranges of
/// the domain is a keyword; each tuple is replicated into all ranges
/// containing its value; queries are single-keyword SSE searches.
///
/// Security is maximal for the framework (only n, m leak from the index
/// when padding is enabled) but storage is O(n * m^2) — the scheme exists
/// to convey the framework and as a tiny-domain reference; `Build` rejects
/// domains larger than `kMaxDomain`.
class QuadraticScheme : public RangeScheme, public TrapdoorGenerator {
 public:
  /// Guardrail against accidentally materializing an O(n m^2) index.
  static constexpr uint64_t kMaxDomain = 4096;

  /// `rng_seed` drives posting-list shuffling. `pad_quantum` > 0 enables
  /// the distribution-hiding padding discussed in the paper (posting lists
  /// padded to multiples of the quantum).
  explicit QuadraticScheme(uint64_t rng_seed = 1, uint64_t pad_quantum = 0);

  SchemeId id() const override { return SchemeId::kQuadratic; }
  Status Build(const Dataset& dataset) override;
  size_t IndexSizeBytes() const override { return index_.SizeBytes(); }

  /// Owner half: the query range itself is the single keyword.
  Result<TokenSet> Trapdoor(const Range& r) override;
  TrapdoorGenerator& trapdoors() override { return *this; }
  SearchBackend& local_backend() override;
  Result<ServerSetup> ExportServerSetup() const override;

 private:
  static Bytes RangeKeyword(const Range& r);

  Rng rng_;
  uint64_t pad_quantum_;
  Bytes master_key_;
  shard::ShardedEmm index_;
  LocalBackend backend_;
};

}  // namespace rsse

#endif  // RSSE_RSSE_QUADRATIC_H_
