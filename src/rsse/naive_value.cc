#include "rsse/naive_value.h"

#include "crypto/random.h"
#include "sse/keyword_keys.h"

namespace rsse {

namespace {

Bytes ValueKeyword(uint64_t a) {
  Bytes out;
  AppendUint64(out, a);
  return out;
}

}  // namespace

NaiveValueScheme::NaiveValueScheme(uint64_t rng_seed) : rng_(rng_seed) {}

Status NaiveValueScheme::Build(const Dataset& dataset) {
  domain_ = dataset.domain();
  if (domain_.size == 0) return Status::InvalidArgument("empty domain");
  master_key_ = crypto::GenerateKey();

  sse::PlainMultimap postings;
  for (const Record& rec : dataset.records()) {
    postings[ValueKeyword(rec.attr)].push_back(sse::EncodeIdPayload(rec.id));
  }
  for (auto& [keyword, payloads] : postings) rng_.Shuffle(payloads);

  sse::PrfKeyDeriver deriver(master_key_);
  Result<shard::ShardedEmm> index =
      shard::ShardedEmm::Build(postings, deriver);
  if (!index.ok()) return index.status();
  index_ = std::move(index).value();
  built_ = true;
  return Status::Ok();
}

Result<TokenSet> NaiveValueScheme::Trapdoor(const Range& r) {
  TokenSet tokens;
  sse::PrfKeyDeriver deriver(master_key_);
  tokens.keyword.reserve(r.Size());
  for (uint64_t v = r.lo; v <= r.hi; ++v) {
    tokens.keyword.push_back(deriver.Derive(ValueKeyword(v)));
  }
  rng_.Shuffle(tokens.keyword);
  return tokens;
}

SearchBackend& NaiveValueScheme::local_backend() {
  return ConfigureSingleEmmBackend(backend_, index_);
}

Result<ServerSetup> NaiveValueScheme::ExportServerSetup() const {
  return SingleEmmServerSetup(built_, index_);
}

}  // namespace rsse
