#include "rsse/naive_value.h"

#include "common/stats.h"
#include "crypto/random.h"
#include "sse/keyword_keys.h"

namespace rsse {

namespace {

Bytes ValueKeyword(uint64_t a) {
  Bytes out;
  AppendUint64(out, a);
  return out;
}

}  // namespace

NaiveValueScheme::NaiveValueScheme(uint64_t rng_seed) : rng_(rng_seed) {}

Status NaiveValueScheme::Build(const Dataset& dataset) {
  domain_ = dataset.domain();
  if (domain_.size == 0) return Status::InvalidArgument("empty domain");
  master_key_ = crypto::GenerateKey();

  sse::PlainMultimap postings;
  for (const Record& rec : dataset.records()) {
    postings[ValueKeyword(rec.attr)].push_back(sse::EncodeIdPayload(rec.id));
  }
  for (auto& [keyword, payloads] : postings) rng_.Shuffle(payloads);

  sse::PrfKeyDeriver deriver(master_key_);
  Result<sse::EncryptedMultimap> index =
      sse::EncryptedMultimap::Build(postings, deriver);
  if (!index.ok()) return index.status();
  index_ = std::move(index).value();
  built_ = true;
  return Status::Ok();
}

Result<QueryResult> NaiveValueScheme::Query(const Range& query) {
  if (!built_) return Status::FailedPrecondition("Build() not called");
  Range r = query;
  if (!ClipRangeToDomain(domain_, r)) return QueryResult{};

  QueryResult result;

  // Owner: one token per covered value — the O(R) query size.
  WallTimer trapdoor_timer;
  sse::PrfKeyDeriver deriver(master_key_);
  std::vector<sse::KeywordKeys> tokens;
  tokens.reserve(r.Size());
  for (uint64_t v = r.lo; v <= r.hi; ++v) {
    tokens.push_back(deriver.Derive(ValueKeyword(v)));
  }
  rng_.Shuffle(tokens);
  result.trapdoor_nanos = trapdoor_timer.ElapsedNanos();
  result.token_count = tokens.size();
  for (const sse::KeywordKeys& t : tokens) {
    result.token_bytes += t.label_key.size() + t.value_key.size();
  }

  WallTimer search_timer;
  for (const sse::KeywordKeys& token : tokens) {
    for (const Bytes& payload : index_.Search(token)) {
      if (auto id = sse::DecodeIdPayload(payload); id.has_value()) {
        result.ids.push_back(*id);
      }
    }
  }
  result.search_nanos = search_timer.ElapsedNanos();
  return result;
}

}  // namespace rsse
