#include "rsse/local_backend.h"

#include <algorithm>
#include <utility>

#include "common/env.h"
#include "common/parallel.h"
#include "rsse/bloom_gate.h"
#include "sse/keyword_keys.h"

namespace rsse {

void LocalBackend::AddEmmStore(uint32_t store, const shard::ShardedEmm* emm,
                               const sse::LabelGate* gate) {
  slots_.push_back(Slot{store, emm, gate, nullptr});
}

void LocalBackend::AddFilterTreeStore(uint32_t store,
                                      const pb::FilterTreeIndex* tree) {
  slots_.push_back(Slot{store, nullptr, nullptr, tree});
}

const LocalBackend::Slot* LocalBackend::FindSlot(uint32_t store) const {
  for (const Slot& slot : slots_) {
    if (slot.store == store) return &slot;
  }
  return nullptr;
}

Result<ResolvedIds> LocalBackend::Resolve(const TokenSet& tokens) {
  const Slot* slot = FindSlot(tokens.store);
  if (slot == nullptr) {
    return Status::InvalidArgument("no store registered at the requested "
                                   "slot");
  }
  ResolvedIds out;

  if (slot->tree != nullptr) {
    if (!tokens.ggm.empty() || !tokens.keyword.empty()) {
      return Status::InvalidArgument(
          "filter-tree stores resolve opaque trapdoors only");
    }
    for (uint64_t id : slot->tree->Search(tokens.opaque)) {
      out.payloads.push_back(sse::EncodeIdPayload(id));
    }
    return out;
  }

  if (!tokens.opaque.empty()) {
    return Status::InvalidArgument(
        "encrypted-dictionary stores cannot resolve opaque trapdoors");
  }

  // GGM subtree tokens: covering nodes are independent, so they stride
  // across workers; within a worker the leaf buffer and derived key pair
  // are reused across expansions.
  if (!tokens.ggm.empty()) {
    const int threads = static_cast<int>(std::min<size_t>(
        static_cast<size_t>(
            ResolveThreadCount(search_threads_, "RSSE_SEARCH_THREADS")),
        tokens.ggm.size()));
    std::vector<std::vector<Bytes>> per_token(tokens.ggm.size());
    std::vector<sse::SearchStats> per_worker(
        static_cast<size_t>(std::max(threads, 1)));
    auto worker = [&](int t) {
      std::vector<Label> leaves;
      sse::KeywordKeys keys;
      for (size_t i = static_cast<size_t>(t); i < tokens.ggm.size();
           i += static_cast<size_t>(threads)) {
        if (!GgmDprf::ExpandInto(tokens.ggm[i], leaves)) continue;
        for (const Label& leaf : leaves) {
          sse::KeysFromSharedSecretInto(
              ConstByteSpan(leaf.data(), leaf.size()), keys);
          std::vector<Bytes> hits = slot->emm->Search(
              keys, slot->gate, &per_worker[static_cast<size_t>(t)]);
          for (Bytes& hit : hits) per_token[i].push_back(std::move(hit));
        }
      }
    };
    RunWorkers(threads, worker);
    for (std::vector<Bytes>& hits : per_token) {
      for (Bytes& hit : hits) out.payloads.push_back(std::move(hit));
    }
    for (const sse::SearchStats& stats : per_worker) {
      out.skipped_decrypts += stats.skipped_decrypts;
    }
  }

  for (const sse::KeywordKeys& token : tokens.keyword) {
    sse::SearchStats stats;
    std::vector<Bytes> hits = slot->emm->Search(token, slot->gate, &stats);
    for (Bytes& hit : hits) out.payloads.push_back(std::move(hit));
    out.skipped_decrypts += stats.skipped_decrypts;
  }
  return out;
}

SearchBackend& ConfigureSingleEmmBackend(LocalBackend& backend,
                                         const shard::ShardedEmm& emm,
                                         const sse::LabelGate* gate,
                                         int search_threads) {
  backend.Clear();
  backend.SetSearchThreads(search_threads);
  backend.AddEmmStore(kPrimaryStore, &emm, gate);
  return backend;
}

Result<ServerSetup> SingleEmmServerSetup(bool built,
                                         const shard::ShardedEmm& emm,
                                         const BloomLabelGate* gate) {
  if (!built) return Status::FailedPrecondition("Build() not called");
  ServerSetup setup;
  StoreSetup store;
  store.store = kPrimaryStore;
  store.kind = StoreKind::kEmm;
  store.index_blob = emm.Serialize();
  if (gate != nullptr) store.gate_blob = gate->Serialize();
  setup.stores.push_back(std::move(store));
  return setup;
}

Result<shard::ShardedEmm> LoadServableIndex(const Bytes& blob, int threads,
                                            int target_shards) {
  if (shard::ShardedEmm::IsV2Image(
          ConstByteSpan(blob.data(), blob.size()))) {
    // A v2 image is its own runtime layout; loading it to heap keeps the
    // stored shard count (re-sharding would mean rebuilding the layout).
    return shard::ShardedEmm::LoadV2(ConstByteSpan(blob.data(), blob.size()),
                                     threads, /*verify_checksums=*/true);
  }
  return shard::ShardedEmm::Deserialize(blob, threads, target_shards);
}

}  // namespace rsse
