#ifndef RSSE_RSSE_BLOOM_GATE_H_
#define RSSE_RSSE_BLOOM_GATE_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"
#include "pb/bloom_filter.h"
#include "sse/emm_codec.h"
#include "sse/encrypted_multimap.h"
#include "sse/keyword_keys.h"

namespace rsse {

/// Pre-decryption Bloom gate over the *real* entry labels of an encrypted
/// index. SRC/SRC-i pad posting lists with dummy entries (the padding the
/// paper's security argument assumes); without a gate the server pays one
/// AES decryption per dummy just to discover and drop it. The owner instead
/// inserts every real entry's label into a Bloom filter at build time and
/// ships it with the index: the server consults the filter before each
/// decryption and skips entries it rejects.
///
/// Correctness: Bloom filters have no false negatives, so a real entry is
/// never skipped; a false positive merely decrypts one dummy that the
/// marker byte then drops — results are bit-identical with or without the
/// gate. The trade is leakage: the server learns (up to the FP rate) which
/// dictionary entries are padding, weakening exactly the shape-hiding that
/// motivated the padding. It is therefore opt-in, for deployments that pad
/// for shape quantization rather than strict indistinguishability.
class BloomLabelGate : public sse::LabelGate {
 public:
  /// Sizes the filter for `expected_real_entries` at `fp_rate`; `salt`
  /// separates the probe sequences of gates over different indexes.
  BloomLabelGate(uint64_t expected_real_entries, double fp_rate,
                 uint64_t salt);

  /// Re-derives the label of every real (unpadded) entry of `postings`
  /// under `deriver` and inserts it. Mirrors the label derivation of the
  /// index build itself, so gate and index stay in lockstep by
  /// construction.
  Status Populate(const sse::PlainMultimap& postings,
                  const sse::KeywordKeyDeriver& deriver);

  bool MayContainReal(const Label& label) const override;

  size_t SizeBytes() const { return bloom_.SizeBytes(); }

  /// Serializes the populated gate so Setup can ship it alongside the
  /// index blob (the gate is server-side state: it holds only filter bits
  /// over pseudorandom labels).
  Bytes Serialize() const;

  /// Restores a gate from `Serialize` output; INVALID_ARGUMENT on a
  /// corrupt or foreign blob.
  static Result<BloomLabelGate> Deserialize(const Bytes& blob);

 private:
  explicit BloomLabelGate(pb::BloomFilter bloom) : bloom_(std::move(bloom)) {}

  pb::BloomFilter bloom_;
};

}  // namespace rsse

#endif  // RSSE_RSSE_BLOOM_GATE_H_
