#include "rsse/logarithmic.h"

#include "cover/brc.h"
#include "cover/urc.h"
#include "crypto/random.h"
#include "sse/keyword_keys.h"

namespace rsse {

LogarithmicScheme::LogarithmicScheme(CoverTechnique technique,
                                     uint64_t rng_seed)
    : technique_(technique), rng_(rng_seed) {}

Status LogarithmicScheme::Build(const Dataset& dataset) {
  domain_ = dataset.domain();
  if (domain_.size == 0) return Status::InvalidArgument("empty domain");
  bits_ = domain_.Bits();
  master_key_ = crypto::GenerateKey();

  // D' of Section 6.1: replicate each tuple under every dyadic node on the
  // path from the root to its value.
  sse::PlainMultimap postings;
  for (const Record& rec : dataset.records()) {
    for (const DyadicNode& node : PathToRoot(rec.attr, bits_)) {
      postings[node.EncodeKeyword()].push_back(sse::EncodeIdPayload(rec.id));
    }
  }
  for (auto& [keyword, payloads] : postings) rng_.Shuffle(payloads);

  sse::PrfKeyDeriver deriver(master_key_);
  Result<shard::ShardedEmm> index =
      shard::ShardedEmm::Build(postings, deriver);
  if (!index.ok()) return index.status();
  index_ = std::move(index).value();
  built_ = true;
  return Status::Ok();
}

std::vector<DyadicNode> LogarithmicScheme::Cover(const Range& r) const {
  return technique_ == CoverTechnique::kBrc ? BestRangeCover(r, bits_)
                                            : UniformRangeCover(r, bits_);
}

Result<TokenSet> LogarithmicScheme::Trapdoor(const Range& r) {
  TokenSet tokens;
  sse::PrfKeyDeriver deriver(master_key_);
  for (const DyadicNode& node : Cover(r)) {
    tokens.keyword.push_back(deriver.Derive(node.EncodeKeyword()));
  }
  rng_.Shuffle(tokens.keyword);
  return tokens;
}

SearchBackend& LogarithmicScheme::local_backend() {
  return ConfigureSingleEmmBackend(backend_, index_);
}

Result<ServerSetup> LogarithmicScheme::ExportServerSetup() const {
  return SingleEmmServerSetup(built_, index_);
}

}  // namespace rsse
