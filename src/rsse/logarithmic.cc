#include "rsse/logarithmic.h"

#include "common/stats.h"
#include "cover/brc.h"
#include "cover/urc.h"
#include "crypto/random.h"
#include "sse/keyword_keys.h"

namespace rsse {

LogarithmicScheme::LogarithmicScheme(CoverTechnique technique,
                                     uint64_t rng_seed)
    : technique_(technique), rng_(rng_seed) {}

Status LogarithmicScheme::Build(const Dataset& dataset) {
  domain_ = dataset.domain();
  if (domain_.size == 0) return Status::InvalidArgument("empty domain");
  bits_ = domain_.Bits();
  master_key_ = crypto::GenerateKey();

  // D' of Section 6.1: replicate each tuple under every dyadic node on the
  // path from the root to its value.
  sse::PlainMultimap postings;
  for (const Record& rec : dataset.records()) {
    for (const DyadicNode& node : PathToRoot(rec.attr, bits_)) {
      postings[node.EncodeKeyword()].push_back(sse::EncodeIdPayload(rec.id));
    }
  }
  for (auto& [keyword, payloads] : postings) rng_.Shuffle(payloads);

  sse::PrfKeyDeriver deriver(master_key_);
  Result<sse::EncryptedMultimap> index =
      sse::EncryptedMultimap::Build(postings, deriver);
  if (!index.ok()) return index.status();
  index_ = std::move(index).value();
  built_ = true;
  return Status::Ok();
}

std::vector<DyadicNode> LogarithmicScheme::Cover(const Range& r) const {
  return technique_ == CoverTechnique::kBrc ? BestRangeCover(r, bits_)
                                            : UniformRangeCover(r, bits_);
}

Result<QueryResult> LogarithmicScheme::Query(const Range& query) {
  if (!built_) return Status::FailedPrecondition("Build() not called");
  Range r = query;
  if (!ClipRangeToDomain(domain_, r)) return QueryResult{};

  QueryResult result;

  // Owner: one SSE token per cover node, randomly permuted before leaving.
  WallTimer trapdoor_timer;
  sse::PrfKeyDeriver deriver(master_key_);
  std::vector<sse::KeywordKeys> tokens;
  for (const DyadicNode& node : Cover(r)) {
    tokens.push_back(deriver.Derive(node.EncodeKeyword()));
  }
  rng_.Shuffle(tokens);
  result.trapdoor_nanos = trapdoor_timer.ElapsedNanos();
  result.token_count = tokens.size();
  for (const sse::KeywordKeys& t : tokens) {
    result.token_bytes += t.label_key.size() + t.value_key.size();
  }

  // Server: standard SSE search per token; union of results.
  WallTimer search_timer;
  for (const sse::KeywordKeys& token : tokens) {
    for (const Bytes& payload : index_.Search(token)) {
      if (auto id = sse::DecodeIdPayload(payload); id.has_value()) {
        result.ids.push_back(*id);
      }
    }
  }
  result.search_nanos = search_timer.ElapsedNanos();
  return result;
}

}  // namespace rsse
