#ifndef RSSE_RSSE_FACTORY_H_
#define RSSE_RSSE_FACTORY_H_

#include <memory>
#include <vector>

#include "rsse/scheme.h"

namespace rsse {

/// Instantiates any of the paper's schemes behind the uniform interface.
/// `rng_seed` controls the scheme-internal permutations (reproducible runs).
std::unique_ptr<RangeScheme> MakeScheme(SchemeId id, uint64_t rng_seed = 1);

/// All scheme ids, in Table 1 order.
std::vector<SchemeId> AllSchemeIds();

}  // namespace rsse

#endif  // RSSE_RSSE_FACTORY_H_
