#include "data/csv_loader.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

namespace rsse {

namespace {

std::vector<std::string> SplitLine(const std::string& line, char delimiter) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, delimiter)) cells.push_back(cell);
  return cells;
}

bool ParseUint(const std::string& s, uint64_t& out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  out = v;
  return true;
}

}  // namespace

Result<Dataset> ParseCsvDataset(std::istream& in, const CsvOptions& options) {
  if (options.attr_column < 0) {
    return Status::InvalidArgument("attr_column must be >= 0");
  }
  std::vector<Record> records;
  std::string line;
  size_t line_no = 0;
  uint64_t max_attr = 0;
  uint64_t next_id = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line_no == 1 && options.has_header) continue;
    if (line.empty()) continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::vector<std::string> cells = SplitLine(line, options.delimiter);
    size_t needed = static_cast<size_t>(
        std::max(options.attr_column, options.id_column) + 1);
    if (cells.size() < needed) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected at least " +
                                     std::to_string(needed) + " columns");
    }
    uint64_t attr = 0;
    if (!ParseUint(cells[static_cast<size_t>(options.attr_column)], attr)) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": non-numeric attribute '" +
                                     cells[static_cast<size_t>(options.attr_column)] +
                                     "'");
    }
    uint64_t id = next_id;
    if (options.id_column >= 0) {
      if (!ParseUint(cells[static_cast<size_t>(options.id_column)], id)) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": non-numeric id");
      }
    }
    ++next_id;
    max_attr = std::max(max_attr, attr);
    records.push_back(Record{id, attr});
  }
  uint64_t domain_size =
      options.domain_size > 0 ? options.domain_size : max_attr + 1;
  if (records.empty() && options.domain_size == 0) domain_size = 1;
  for (const Record& r : records) {
    if (r.attr >= domain_size) {
      return Status::InvalidArgument(
          "attribute " + std::to_string(r.attr) + " outside domain of size " +
          std::to_string(domain_size));
    }
  }
  return Dataset(Domain{domain_size}, std::move(records));
}

Result<Dataset> LoadCsvDataset(const std::string& path,
                               const CsvOptions& options) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  return ParseCsvDataset(file, options);
}

}  // namespace rsse
