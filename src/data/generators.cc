#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/zipf.h"

namespace rsse {

namespace {

Dataset MakeDataset(uint64_t domain_size, std::vector<uint64_t> attrs) {
  std::vector<Record> records;
  records.reserve(attrs.size());
  for (size_t i = 0; i < attrs.size(); ++i) {
    records.push_back(Record{/*id=*/i, /*attr=*/attrs[i]});
  }
  return Dataset(Domain{domain_size}, std::move(records));
}

/// Cheap invertible mixing of a value within [0, domain_size) used to spread
/// cluster centers pseudo-randomly but deterministically over the domain.
uint64_t MixIntoDomain(uint64_t v, uint64_t domain_size) {
  uint64_t x = v * 0x9e3779b97f4a7c15ull;
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 32;
  return x % domain_size;
}

}  // namespace

Dataset GenerateUniform(uint64_t n, uint64_t domain_size, Rng& rng) {
  std::vector<uint64_t> attrs(n);
  for (auto& a : attrs) a = rng.Uniform(0, domain_size - 1);
  return MakeDataset(domain_size, std::move(attrs));
}

Dataset GenerateGowallaLike(uint64_t n, uint64_t domain_size, Rng& rng) {
  // Mostly uniform draws; a small fraction of records repeat a recently
  // drawn value (co-located check-ins), matching Gowalla's ~95% distinct
  // ratio without changing the near-uniform global shape.
  constexpr double kRepeatProbability = 0.05;
  std::vector<uint64_t> attrs;
  attrs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!attrs.empty() && rng.Flip(kRepeatProbability)) {
      attrs.push_back(attrs[rng.Uniform(0, attrs.size() - 1)]);
    } else {
      attrs.push_back(rng.Uniform(0, domain_size - 1));
    }
  }
  return MakeDataset(domain_size, std::move(attrs));
}

Dataset GenerateUspsLike(uint64_t n, uint64_t domain_size, Rng& rng) {
  // Salaries concentrate on a small set of pay grades. We draw a grade from
  // a Zipf over `num_grades` centers and add small jitter, yielding ~5%
  // distinct values for the default sizes used in the benchmarks.
  const uint64_t num_grades = std::max<uint64_t>(1, n / 40);
  ZipfSampler grade_sampler(num_grades, /*theta=*/1.05);
  std::vector<uint64_t> attrs;
  attrs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t grade = grade_sampler.Sample(rng);
    uint64_t center = MixIntoDomain(grade, domain_size);
    // Jitter of a few units models step increments within a grade.
    uint64_t jitter = rng.Uniform(0, 3);
    attrs.push_back(std::min(domain_size - 1, center + jitter));
  }
  return MakeDataset(domain_size, std::move(attrs));
}

Dataset GenerateZipf(uint64_t n, uint64_t domain_size, double theta,
                     Rng& rng) {
  // Sample ranks over a truncated support to keep setup linear in n rather
  // than in the (possibly huge) domain, then spread ranks over the domain.
  const uint64_t support = std::min<uint64_t>(domain_size, std::max<uint64_t>(n, 2));
  ZipfSampler sampler(support, theta);
  std::vector<uint64_t> attrs;
  attrs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    attrs.push_back(MixIntoDomain(sampler.Sample(rng), domain_size));
  }
  return MakeDataset(domain_size, std::move(attrs));
}

Dataset GenerateSingleValueWithOutliers(uint64_t n, uint64_t domain_size,
                                        uint64_t hot_value, uint64_t outliers,
                                        Rng& rng) {
  std::vector<uint64_t> attrs;
  attrs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (i < outliers) {
      attrs.push_back(rng.Uniform(0, domain_size - 1));
    } else {
      attrs.push_back(hot_value);
    }
  }
  rng.Shuffle(attrs);
  return MakeDataset(domain_size, std::move(attrs));
}

}  // namespace rsse
