#ifndef RSSE_DATA_DATASET_H_
#define RSSE_DATA_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rsse {

/// One outsourced tuple: a unique identifier plus its value on the single
/// query attribute A (the paper's pair (id, a)). The payload itself is
/// encrypted independently of the index and is out of scope here, exactly as
/// in the paper's model (Section 3).
struct Record {
  uint64_t id = 0;
  uint64_t attr = 0;

  friend bool operator==(const Record&, const Record&) = default;
};

/// The query attribute domain A = {0, ..., size-1}. RSSE indexes operate on
/// the full binary tree over the domain, so `bits` is the tree height
/// (domain padded up to the next power of two).
struct Domain {
  uint64_t size = 0;

  /// Number of bits needed to address a value, i.e. ceil(log2(size)),
  /// with a minimum of 1.
  int Bits() const;

  /// Domain size padded to the next power of two (tree leaf count).
  uint64_t PaddedSize() const { return uint64_t{1} << Bits(); }

  /// True when `v` is a valid domain value.
  bool Contains(uint64_t v) const { return v < size; }
};

/// An inclusive range [lo, hi] over the domain.
struct Range {
  uint64_t lo = 0;
  uint64_t hi = 0;

  uint64_t Size() const { return hi - lo + 1; }
  bool Contains(uint64_t v) const { return v >= lo && v <= hi; }
  bool Intersects(const Range& other) const {
    return lo <= other.hi && other.lo <= hi;
  }
  friend bool operator==(const Range&, const Range&) = default;
};

/// A dataset bound to its domain.
class Dataset {
 public:
  Dataset() = default;
  Dataset(Domain domain, std::vector<Record> records)
      : domain_(domain), records_(std::move(records)) {}

  const Domain& domain() const { return domain_; }
  const std::vector<Record>& records() const { return records_; }
  std::vector<Record>& mutable_records() { return records_; }
  size_t size() const { return records_.size(); }

  /// Ground-truth result: ids of records with attr in [q.lo, q.hi].
  /// Linear scan; used by tests and false-positive accounting.
  std::vector<uint64_t> IdsInRange(const Range& q) const;

  /// Number of distinct attribute values present.
  uint64_t DistinctValueCount() const;

  /// Records sorted by (attr, id); the stable total order used by
  /// Logarithmic-SRC-i's TDAG2 and by the PB baseline's analysis.
  std::vector<Record> SortedByAttr() const;

 private:
  Domain domain_;
  std::vector<Record> records_;
};

}  // namespace rsse

#endif  // RSSE_DATA_DATASET_H_
