#ifndef RSSE_DATA_CSV_LOADER_H_
#define RSSE_DATA_CSV_LOADER_H_

#include <istream>
#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace rsse {

/// CSV ingestion so the benchmarks can run against real data (e.g. the
/// original Gowalla check-in export) when the user has it: the synthetic
/// generators are only stand-ins for the non-redistributable datasets.
struct CsvOptions {
  /// 0-based column index of the tuple id; -1 assigns sequential ids.
  int id_column = -1;
  /// 0-based column index of the query attribute (required).
  int attr_column = 0;
  /// Skip the first line.
  bool has_header = false;
  /// Domain size; 0 infers max(attr)+1 from the data.
  uint64_t domain_size = 0;
  char delimiter = ',';
};

/// Parses records from a stream. Malformed rows (missing column,
/// non-numeric attribute) fail with INVALID_ARGUMENT naming the line.
Result<Dataset> ParseCsvDataset(std::istream& in, const CsvOptions& options);

/// Loads a CSV file; NOT_FOUND if the file cannot be opened.
Result<Dataset> LoadCsvDataset(const std::string& path,
                               const CsvOptions& options);

}  // namespace rsse

#endif  // RSSE_DATA_CSV_LOADER_H_
