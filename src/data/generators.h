#ifndef RSSE_DATA_GENERATORS_H_
#define RSSE_DATA_GENERATORS_H_

#include <cstdint>

#include "common/rng.h"
#include "data/dataset.h"

namespace rsse {

/// Synthetic dataset generators.
///
/// The paper evaluates on two real datasets that are not redistributable:
///  * Gowalla check-ins (6.4M tuples, timestamps; ~95% of attribute values
///    distinct — effectively near-uniform over a very large domain), and
///  * USPS employee salaries (389K tuples; only ~5% distinct values —
///    heavily skewed).
/// These generators reproduce the property the evaluation actually
/// exercises — the distinct-value ratio / skew of the attribute — at
/// configurable scale (see DESIGN.md §4 for the substitution rationale).

/// Uniformly random attribute values over the whole domain.
Dataset GenerateUniform(uint64_t n, uint64_t domain_size, Rng& rng);

/// Gowalla-like: near-uniform timestamps over a large domain, lightly
/// clustered so that roughly 95% of drawn values are distinct (duplicates
/// arise from simultaneous check-ins).
Dataset GenerateGowallaLike(uint64_t n, uint64_t domain_size, Rng& rng);

/// USPS-like: salary-shaped skew. Values concentrate on a small set of
/// "pay grades" (Zipf-weighted cluster centers) so that only about 5% of
/// the attribute values in the dataset are distinct.
Dataset GenerateUspsLike(uint64_t n, uint64_t domain_size, Rng& rng);

/// Zipf-distributed attribute: rank-`theta` Zipf over the domain values
/// after a fixed pseudo-random value permutation (so the heavy hitters are
/// spread across the domain). Used by skew-sensitivity ablations.
Dataset GenerateZipf(uint64_t n, uint64_t domain_size, double theta, Rng& rng);

/// Extreme-skew adversarial dataset from the paper's Logarithmic-SRC
/// discussion: all tuples share one attribute value except `outliers`
/// tuples placed uniformly. Maximizes SRC false positives.
Dataset GenerateSingleValueWithOutliers(uint64_t n, uint64_t domain_size,
                                        uint64_t hot_value, uint64_t outliers,
                                        Rng& rng);

}  // namespace rsse

#endif  // RSSE_DATA_GENERATORS_H_
