#include "data/workload.h"

#include <algorithm>

namespace rsse {

std::vector<Range> RandomRangesOfSize(const Domain& domain,
                                      uint64_t range_size, size_t count,
                                      Rng& rng) {
  std::vector<Range> out;
  out.reserve(count);
  const uint64_t size = std::min(std::max<uint64_t>(range_size, 1), domain.size);
  for (size_t i = 0; i < count; ++i) {
    uint64_t lo = rng.Uniform(0, domain.size - size);
    out.push_back(Range{lo, lo + size - 1});
  }
  return out;
}

std::vector<Range> RandomRangesOfFraction(const Domain& domain,
                                          double fraction, size_t count,
                                          Rng& rng) {
  auto size = static_cast<uint64_t>(fraction * static_cast<double>(domain.size));
  return RandomRangesOfSize(domain, size, count, rng);
}

std::vector<Range> NonIntersectingRanges(const Domain& domain,
                                         uint64_t range_size, size_t count,
                                         Rng& rng) {
  const uint64_t size = std::min(std::max<uint64_t>(range_size, 1), domain.size);
  const uint64_t slots = domain.size / size;
  std::vector<Range> out;
  if (slots == 0) return out;
  std::vector<uint64_t> slot_ids(slots);
  for (uint64_t i = 0; i < slots; ++i) slot_ids[i] = i;
  rng.Shuffle(slot_ids);
  const size_t take = std::min<size_t>(count, slot_ids.size());
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    uint64_t lo = slot_ids[i] * size;
    out.push_back(Range{lo, lo + size - 1});
  }
  return out;
}

}  // namespace rsse
