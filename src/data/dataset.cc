#include "data/dataset.h"

#include <algorithm>
#include <unordered_set>

namespace rsse {

int Domain::Bits() const {
  if (size <= 2) return 1;
  int bits = 0;
  uint64_t v = size - 1;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

std::vector<uint64_t> Dataset::IdsInRange(const Range& q) const {
  std::vector<uint64_t> out;
  for (const Record& r : records_) {
    if (q.Contains(r.attr)) out.push_back(r.id);
  }
  return out;
}

uint64_t Dataset::DistinctValueCount() const {
  std::unordered_set<uint64_t> seen;
  seen.reserve(records_.size());
  for (const Record& r : records_) seen.insert(r.attr);
  return seen.size();
}

std::vector<Record> Dataset::SortedByAttr() const {
  std::vector<Record> sorted = records_;
  std::sort(sorted.begin(), sorted.end(), [](const Record& a, const Record& b) {
    if (a.attr != b.attr) return a.attr < b.attr;
    return a.id < b.id;
  });
  return sorted;
}

}  // namespace rsse
