#include "dprf/ggm_dprf.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cover/brc.h"
#include "cover/urc.h"
#include "crypto/prg.h"

namespace rsse {

GgmDprf::GgmDprf(Bytes key, int bits) : key_(std::move(key)), bits_(bits) {
  // The in-place GGM walks read/write exactly λ bytes through raw
  // pointers; a wrong-sized key would corrupt the heap, so fail fast.
  if (key_.size() != kLabelBytes) {
    std::fprintf(stderr, "rsse: GgmDprf key must be %zu bytes (got %zu)\n",
                 kLabelBytes, key_.size());
    std::abort();
  }
}

Bytes GgmDprf::NodeSeed(const DyadicNode& node) const {
  // Walk the path bits of `node.index` MSB-first, starting from the root
  // seed (the key). A node at `level` has bits_ - level path bits. The
  // walk keeps one λ-byte seed in place (GbInto may alias its input).
  Bytes seed = key_;
  const int path_bits = bits_ - node.level;
  for (int i = path_bits - 1; i >= 0; --i) {
    const int bit = static_cast<int>((node.index >> i) & 1);
    crypto::GgmPrg::GbInto(seed.data(), bit, seed.data());
  }
  return seed;
}

Bytes GgmDprf::Eval(uint64_t value) const {
  return NodeSeed(DyadicNode{0, value});
}

std::vector<GgmDprf::Token> GgmDprf::Delegate(const Range& r,
                                              CoverTechnique technique,
                                              Rng& rng) const {
  std::vector<DyadicNode> cover = technique == CoverTechnique::kBrc
                                      ? BestRangeCover(r, bits_)
                                      : UniformRangeCover(r, bits_);
  std::vector<Token> tokens;
  tokens.reserve(cover.size());
  for (const DyadicNode& node : cover) {
    tokens.push_back(Token{NodeSeed(node), node.level});
  }
  rng.Shuffle(tokens);
  return tokens;
}

bool GgmDprf::ExpandInto(const Token& token, std::vector<Label>& out) {
  if (token.seed.size() != kLabelBytes || token.level < 0 ||
      token.level > 62) {
    return false;
  }
  out.resize(size_t{1} << token.level);
  std::memcpy(out[0].data(), token.seed.data(), kLabelBytes);
  // In-place breadth-first doubling: at step k the frontier of 2^k seeds
  // occupies slots [0, 2^k) and doubles into [0, 2^(k+1)). The whole level
  // is handed to the PRG in one call, so the AES backend pipelines it
  // through multi-block EVP_EncryptUpdate batches instead of dispatching
  // two blocks per node.
  uint8_t* buf = reinterpret_cast<uint8_t*>(out.data());
  for (int k = 0; k < token.level; ++k) {
    crypto::GgmPrg::ExpandFrontierInPlace(buf, size_t{1} << k);
  }
  return true;
}

std::vector<Bytes> GgmDprf::Expand(const Token& token) {
  std::vector<Label> leaves;
  if (!ExpandInto(token, leaves)) return {};
  std::vector<Bytes> out;
  out.reserve(leaves.size());
  for (const Label& leaf : leaves) out.push_back(LabelToBytes(leaf));
  return out;
}

}  // namespace rsse
