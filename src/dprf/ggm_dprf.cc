#include "dprf/ggm_dprf.h"

#include "cover/brc.h"
#include "cover/urc.h"
#include "crypto/prg.h"

namespace rsse {

GgmDprf::GgmDprf(Bytes key, int bits) : key_(std::move(key)), bits_(bits) {}

Bytes GgmDprf::NodeSeed(const DyadicNode& node) const {
  // Walk the path bits of `node.index` MSB-first, starting from the root
  // seed (the key). A node at `level` has bits_ - level path bits.
  Bytes seed = key_;
  const int path_bits = bits_ - node.level;
  for (int i = path_bits - 1; i >= 0; --i) {
    const int bit = static_cast<int>((node.index >> i) & 1);
    seed = crypto::GgmPrg::Gb(seed, bit);
  }
  return seed;
}

Bytes GgmDprf::Eval(uint64_t value) const {
  return NodeSeed(DyadicNode{0, value});
}

std::vector<GgmDprf::Token> GgmDprf::Delegate(const Range& r,
                                              CoverTechnique technique,
                                              Rng& rng) const {
  std::vector<DyadicNode> cover = technique == CoverTechnique::kBrc
                                      ? BestRangeCover(r, bits_)
                                      : UniformRangeCover(r, bits_);
  std::vector<Token> tokens;
  tokens.reserve(cover.size());
  for (const DyadicNode& node : cover) {
    tokens.push_back(Token{NodeSeed(node), node.level});
  }
  rng.Shuffle(tokens);
  return tokens;
}

std::vector<Bytes> GgmDprf::Expand(const Token& token) {
  std::vector<Bytes> frontier = {token.seed};
  for (int level = token.level; level > 0; --level) {
    std::vector<Bytes> next;
    next.reserve(frontier.size() * 2);
    for (const Bytes& seed : frontier) {
      auto [left, right] = crypto::GgmPrg::Expand(seed);
      next.push_back(std::move(left));
      next.push_back(std::move(right));
    }
    frontier = std::move(next);
  }
  return frontier;
}

}  // namespace rsse
