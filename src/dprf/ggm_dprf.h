#ifndef RSSE_DPRF_GGM_DPRF_H_
#define RSSE_DPRF_GGM_DPRF_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "cover/dyadic.h"
#include "data/dataset.h"

namespace rsse {

/// Range covering technique used when delegating (Section 2.2).
enum class CoverTechnique {
  kBrc,  // best range cover: minimal dyadic intervals
  kUrc,  // uniform range cover: worst-case canonical decomposition
};

/// Delegatable PRF of Kiayias et al. (CCS'13) over a `bits`-bit domain,
/// realized with the GGM tree: the secret key seeds the root; the value of
/// leaf a = a_{l-1}..a_0 is G_{a_0}(...(G_{a_{l-1}}(key))). Knowing the seed
/// of an inner node lets anyone derive the DPRF values of all leaves below
/// it — the delegation mechanism of the Constant schemes.
class GgmDprf {
 public:
  /// A delegation token: the GGM seed of one covering node plus its level.
  /// The node *position* is deliberately absent — the receiver can expand
  /// the subtree but learns nothing about where it sits in the domain.
  struct Token {
    Bytes seed;
    int level = 0;
  };

  /// `key` is the λ-byte DPRF secret; `bits` the domain bit-width.
  GgmDprf(Bytes key, int bits);

  int bits() const { return bits_; }

  /// Full evaluation of the DPRF at `value` (owner-side; requires the key).
  Bytes Eval(uint64_t value) const;

  /// GGM seed of an arbitrary tree node (owner-side).
  Bytes NodeSeed(const DyadicNode& node) const;

  /// Delegation: the token-generation function T of the DPRF. Covers `r`
  /// with BRC or URC and emits one token per covering node, randomly
  /// permuted (the paper's Trpdr randomly permutes the GGM values).
  std::vector<Token> Delegate(const Range& r, CoverTechnique technique,
                              Rng& rng) const;

  /// Public expansion: the C function of the DPRF. Derives the 2^level leaf
  /// DPRF values under a token, in left-to-right subtree order. Requires no
  /// secret material.
  static std::vector<Bytes> Expand(const Token& token);

  /// Zero-copy expansion into caller storage: `out` is resized to 2^level
  /// λ-byte leaf values and filled by an iterative in-place subtree walk
  /// (parent seeds are overwritten by their children — no per-level
  /// frontier vectors, no per-leaf allocations once `out` has capacity).
  /// Returns false when the token seed is not λ bytes or the level is
  /// outside [0, 62].
  static bool ExpandInto(const Token& token, std::vector<Label>& out);

 private:
  Bytes key_;
  int bits_;
};

}  // namespace rsse

#endif  // RSSE_DPRF_GGM_DPRF_H_
