#ifndef RSSE_SERVER_REMOTE_BACKEND_H_
#define RSSE_SERVER_REMOTE_BACKEND_H_

#include "rsse/party.h"
#include "server/client.h"

namespace rsse::server {

/// The wire-backed `SearchBackend`: resolves a scheme's token sets against
/// a standalone `rsse_serverd` through an `EmmClient` connection. GGM
/// subtree tokens ride the batched SearchBatch path (server-side dedupe
/// and expansion); keyword tokens and opaque trapdoors ride SearchKeyword
/// against the token set's store slot. Plugging this into
/// `RangeScheme::QueryVia` runs the identical two-party protocol as the
/// in-process `LocalBackend` — same rounds, same tokens, same ids.
class RemoteBackend : public rsse::SearchBackend {
 public:
  /// `client` must stay connected for the backend's lifetime. One backend
  /// per connection; not thread-safe (as EmmClient).
  explicit RemoteBackend(EmmClient& client) : client_(client) {}

  Result<rsse::ResolvedIds> Resolve(const rsse::TokenSet& tokens) override;

 private:
  EmmClient& client_;
};

/// Ships every store of a scheme's `ExportServerSetup()` to the connected
/// server (one SetupStore frame per slot).
Status InstallServerSetup(EmmClient& client, const rsse::ServerSetup& setup);

}  // namespace rsse::server

#endif  // RSSE_SERVER_REMOTE_BACKEND_H_
