#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

namespace rsse::server {

namespace {

/// Parsed-prefix bytes kept in the receive buffer before it is shifted
/// down (same threshold as the server's input path): pipelined result
/// chunks keep a long-lived connection's buffer bounded instead of
/// retaining every frame ever received.
constexpr size_t kCompactThreshold = 1 << 20;

/// Transport-level syscall failure: the request may be retried against a
/// fresh connection, so it surfaces as kUnavailable.
Status Errno(const char* what) {
  return Status::Unavailable(std::string(what) + ": " +
                             std::strerror(errno));
}

/// An Error frame from the server, surfaced as a Status. The server
/// executed (or decoded) the request and rejected it — not retryable.
Status ServerError(const Bytes& payload) {
  Result<ErrorResponse> resp = ErrorResponse::Decode(payload);
  return Status::Internal("server error: " +
                          (resp.ok() ? resp->message
                                     : std::string("<unparseable>")));
}

/// A Draining frame: the server refused the request before starting it,
/// so an idempotent caller may retry against the restarted server.
Status DrainingError(const Bytes& payload) {
  Result<ErrorResponse> resp = ErrorResponse::Decode(payload);
  return Status::Unavailable("server draining: " +
                             (resp.ok() ? resp->message
                                        : std::string("<unparseable>")));
}

}  // namespace

EmmClient::EmmClient(const ClientOptions& options, Clock* clock)
    : options_(options), clock_(clock != nullptr ? clock : Clock::Real()) {}

EmmClient::~EmmClient() { Close(); }

void EmmClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  in_.clear();
  in_offset_ = 0;
}

Status EmmClient::DialLocked() {
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("host must be numeric IPv4");
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno == EINTR) {
      // An interrupted connect() keeps going in the kernel; retrying the
      // call would fail with EALREADY. Wait for the outcome instead.
      pollfd pfd{fd_, POLLOUT, 0};
      int rc;
      do {
        rc = poll(&pfd, 1, /*timeout_ms=*/-1);
      } while (rc < 0 && errno == EINTR);
      int err = 0;
      socklen_t len = sizeof(err);
      if (rc < 0 ||
          getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
          err != 0) {
        errno = err != 0 ? err : errno;
        Status s = Errno("connect");
        Close();
        return s;
      }
    } else {
      Status s = Errno("connect");
      Close();
      return s;
    }
  }
  if (options_.recv_timeout_seconds > 0) {
    timeval tv{};
    tv.tv_sec = options_.recv_timeout_seconds;
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  // Request frames are small and latency-bound; without this every
  // ping-pong exchange risks a Nagle/delayed-ACK stall. Failure is
  // harmless, so the result is ignored.
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::Ok();
}

Status EmmClient::Connect(const std::string& host, uint16_t port,
                          int recv_timeout_seconds) {
  options_.recv_timeout_seconds = recv_timeout_seconds;
  return Connect(host, port);
}

Status EmmClient::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::FailedPrecondition("already connected");
  // Record the endpoint before dialing: even a failed first attempt gives
  // the retry machinery somewhere to reconnect to.
  host_ = host;
  port_ = port;
  endpoint_known_ = true;
  return DialLocked();
}

Status EmmClient::WriteAll(const uint8_t* data, size_t len) {
  const failpoint::Action fp = failpoint::Hit("client_send");
  if (fp.kind == failpoint::ActionKind::kReset) {
    Close();
    errno = ECONNRESET;
    return Errno("send");
  }
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      // send() does not return 0 for nonzero lengths on a live socket,
      // and a 0 return sets no errno — checking errno here would act on
      // whatever the previous syscall left behind (a stale EINTR means
      // an infinite retry loop). Treat it as a dead peer.
      Close();
      return Status::Unavailable("send: connection closed by peer");
    }
    if (errno == EINTR) continue;
    // A partial frame may be on the wire: the connection is desynced and
    // unusable for further requests.
    Status status = Errno("send");
    Close();
    return status;
  }
  return Status::Ok();
}

Status EmmClient::SendFrame(FrameType type,
                            std::initializer_list<ConstByteSpan> parts) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  size_t total = 0;
  for (ConstByteSpan part : parts) total += part.size();
  if (total > kMaxFrameBytes - 2) {
    return Status::InvalidArgument("request payload exceeds the wire frame "
                                   "limit; split it into smaller frames");
  }
  uint8_t header[6];
  const uint32_t len = static_cast<uint32_t>(2 + total);
  header[0] = static_cast<uint8_t>(len >> 24);
  header[1] = static_cast<uint8_t>(len >> 16);
  header[2] = static_cast<uint8_t>(len >> 8);
  header[3] = static_cast<uint8_t>(len);
  header[4] = kWireVersion;
  header[5] = static_cast<uint8_t>(type);
  RSSE_RETURN_IF_ERROR(WriteAll(header, sizeof(header)));
  for (ConstByteSpan part : parts) {
    RSSE_RETURN_IF_ERROR(WriteAll(part.data(), part.size()));
  }
  return Status::Ok();
}

Result<Frame> EmmClient::RecvFrame() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  const failpoint::Action fp = failpoint::Hit("client_recv");
  if (fp.kind == failpoint::ActionKind::kReset) {
    Close();
    errno = ECONNRESET;
    return Errno("recv");
  }
  for (;;) {
    Frame frame;
    std::string error;
    const FrameParse parse = DecodeFrame(in_, in_offset_, frame, &error);
    if (parse == FrameParse::kFrame) {
      // Reclaim the parsed prefix: clearing only on an exact buffer
      // boundary would let pipelined result chunks grow `in_` without
      // bound across a long stream.
      if (in_offset_ == in_.size()) {
        in_.clear();
        in_offset_ = 0;
      } else if (in_offset_ >= kCompactThreshold) {
        in_.erase(in_.begin(), in_.begin() + static_cast<long>(in_offset_));
        in_offset_ = 0;
      }
      return frame;
    }
    if (parse == FrameParse::kMalformed) {
      Close();
      // A garbled stream is a bug or an attack, not a transient glitch:
      // kInternal, so no retry masks it.
      return Status::Internal("malformed server frame: " + error);
    }
    uint8_t chunk[64 * 1024];
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      in_.insert(in_.end(), chunk, chunk + n);
      if (in_.size() > peak_recv_buffer_bytes_) {
        peak_recv_buffer_bytes_ = in_.size();
      }
      continue;
    }
    if (n == 0) {
      Close();
      return Status::Unavailable("server closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // The response may still land after the deadline: a partial frame
      // (or a late whole one) would desync every request that follows.
      // The connection is broken, not just slow.
      Close();
      return Status::Unavailable("timed out waiting for server response");
    }
    Status status = Errno("recv");
    Close();
    return status;
  }
}

template <typename T>
Result<T> EmmClient::RetryIdempotent(
    const std::function<Result<T>()>& attempt) {
  if (!options_.retry_idempotent) return attempt();
  const int64_t deadline =
      options_.request_deadline_ms > 0
          ? clock_->NowMillis() + options_.request_deadline_ms
          : 0;
  Backoff backoff(options_.backoff, options_.backoff_seed);
  for (;;) {
    Result<T> outcome = [&]() -> Result<T> {
      if (fd_ < 0) {
        if (!endpoint_known_) {
          return Status::FailedPrecondition("not connected");
        }
        RSSE_RETURN_IF_ERROR(DialLocked());
        ++reconnect_count_;
      }
      return attempt();
    }();
    if (outcome.ok() ||
        outcome.status().code() != StatusCode::kUnavailable) {
      return outcome;
    }
    if (backoff.Exhausted()) return outcome;
    int64_t delay = backoff.NextDelayMillis();
    if (deadline > 0) {
      const int64_t now = clock_->NowMillis();
      if (now >= deadline) {
        return Status::Unavailable("request deadline exceeded; last error: " +
                                   outcome.status().message());
      }
      delay = std::min(delay, deadline - now);
    }
    clock_->SleepMillis(delay);
    if (deadline > 0 && clock_->NowMillis() >= deadline) {
      return Status::Unavailable("request deadline exceeded; last error: " +
                                 outcome.status().message());
    }
  }
}

Result<SetupResponse> EmmClient::Setup(const Bytes& index_blob) {
  return RetryIdempotent<SetupResponse>([&]() -> Result<SetupResponse> {
    // Same payload layout as SetupRequest::Encode (u64 length + blob), but
    // streamed from the caller's buffer instead of copied through it.
    uint8_t prefix[8];
    StoreUint64(prefix, index_blob.size());
    RSSE_RETURN_IF_ERROR(SendFrame(
        FrameType::kSetupReq,
        {ConstByteSpan(prefix, sizeof(prefix)),
         ConstByteSpan(index_blob.data(), index_blob.size())}));
    Result<Frame> frame = RecvFrame();
    if (!frame.ok()) return frame.status();
    if (frame->type == FrameType::kError) return ServerError(frame->payload);
    if (frame->type == FrameType::kErrorDraining) {
      Close();
      return DrainingError(frame->payload);
    }
    if (frame->type != FrameType::kSetupResp) {
      return Status::Internal("unexpected response frame to Setup");
    }
    return SetupResponse::Decode(frame->payload);
  });
}

Result<SetupResponse> EmmClient::SetupStore(const SetupStoreRequest& req) {
  return RetryIdempotent<SetupResponse>([&]() -> Result<SetupResponse> {
    const Bytes payload = req.Encode();
    RSSE_RETURN_IF_ERROR(SendFrame(
        FrameType::kSetupStoreReq,
        {ConstByteSpan(payload.data(), payload.size())}));
    Result<Frame> frame = RecvFrame();
    if (!frame.ok()) return frame.status();
    if (frame->type == FrameType::kError) return ServerError(frame->payload);
    if (frame->type == FrameType::kErrorDraining) {
      Close();
      return DrainingError(frame->payload);
    }
    if (frame->type != FrameType::kSetupResp) {
      return Status::Internal("unexpected response frame to SetupStore");
    }
    return SetupResponse::Decode(frame->payload);
  });
}

Result<EmmClient::KeywordOutcome> EmmClient::SearchKeyword(
    const SearchKeywordRequest& req) {
  return RetryIdempotent<KeywordOutcome>([&]() -> Result<KeywordOutcome> {
    const Bytes payload = req.Encode();
    RSSE_RETURN_IF_ERROR(SendFrame(
        FrameType::kSearchKeywordReq,
        {ConstByteSpan(payload.data(), payload.size())}));
    KeywordOutcome outcome;
    for (;;) {
      Result<Frame> frame = RecvFrame();
      if (!frame.ok()) return frame.status();
      if (frame->type == FrameType::kError) {
        return ServerError(frame->payload);
      }
      if (frame->type == FrameType::kErrorDraining) {
        Close();
        return DrainingError(frame->payload);
      }
      if (frame->type == FrameType::kSearchPayload) {
        Result<SearchPayloadResult> result =
            SearchPayloadResult::Decode(frame->payload);
        if (!result.ok()) return result.status();
        std::vector<Bytes>& payloads = outcome.payloads[result->query_id];
        for (Bytes& p : result->payloads) payloads.push_back(std::move(p));
        continue;
      }
      if (frame->type == FrameType::kSearchDone) {
        Result<SearchDone> done = SearchDone::Decode(frame->payload);
        if (!done.ok()) return done.status();
        outcome.done = *done;
        return outcome;
      }
      return Status::Internal("unexpected frame type in keyword response");
    }
  });
}

Result<EmmClient::BatchOutcome> EmmClient::SearchBatch(
    const std::vector<BatchQuery>& queries) {
  SearchBatchRequest req;
  req.queries.reserve(queries.size());
  for (const BatchQuery& q : queries) {
    WireQuery wq;
    wq.query_id = q.query_id;
    wq.tokens.reserve(q.tokens.size());
    for (const GgmDprf::Token& t : q.tokens) {
      if (t.seed.size() != kLabelBytes || t.level < 0 || t.level > 62) {
        return Status::InvalidArgument("token seed/level out of range");
      }
      WireToken wt;
      wt.level = static_cast<uint8_t>(t.level);
      std::memcpy(wt.seed.data(), t.seed.data(), kLabelBytes);
      wq.tokens.push_back(wt);
    }
    req.queries.push_back(std::move(wq));
  }
  const Bytes payload = req.Encode();
  return RetryIdempotent<BatchOutcome>([&]() -> Result<BatchOutcome> {
    RSSE_RETURN_IF_ERROR(SendFrame(
        FrameType::kSearchBatchReq,
        {ConstByteSpan(payload.data(), payload.size())}));
    BatchOutcome outcome;
    for (;;) {
      Result<Frame> frame = RecvFrame();
      if (!frame.ok()) return frame.status();
      if (frame->type == FrameType::kError) {
        return ServerError(frame->payload);
      }
      if (frame->type == FrameType::kErrorDraining) {
        Close();
        return DrainingError(frame->payload);
      }
      if (frame->type == FrameType::kSearchResult) {
        Result<SearchResult> result = SearchResult::Decode(frame->payload);
        if (!result.ok()) return result.status();
        std::vector<uint64_t>& ids = outcome.ids[result->query_id];
        ids.insert(ids.end(), result->ids.begin(), result->ids.end());
        continue;
      }
      if (frame->type == FrameType::kSearchDone) {
        Result<SearchDone> done = SearchDone::Decode(frame->payload);
        if (!done.ok()) return done.status();
        outcome.done = *done;
        return outcome;
      }
      return Status::Internal("unexpected frame type in batch response");
    }
  });
}

Result<UpdateResponse> EmmClient::Update(
    const std::vector<std::pair<Label, Bytes>>& entries) {
  // Deliberately not retried: if the connection dies after the frame was
  // sent, the server may already have applied (and logged) the batch.
  UpdateRequest req;
  req.entries = entries;
  const Bytes payload = req.Encode();
  RSSE_RETURN_IF_ERROR(SendFrame(
      FrameType::kUpdateReq, {ConstByteSpan(payload.data(), payload.size())}));
  Result<Frame> frame = RecvFrame();
  if (!frame.ok()) return frame.status();
  if (frame->type == FrameType::kError) return ServerError(frame->payload);
  if (frame->type == FrameType::kErrorDraining) {
    Close();
    return DrainingError(frame->payload);
  }
  if (frame->type != FrameType::kUpdateResp) {
    return Status::Internal("unexpected response frame to Update");
  }
  return UpdateResponse::Decode(frame->payload);
}

Result<StatsResponse> EmmClient::Stats() {
  return RetryIdempotent<StatsResponse>([&]() -> Result<StatsResponse> {
    RSSE_RETURN_IF_ERROR(SendFrame(FrameType::kStatsReq, {}));
    Result<Frame> frame = RecvFrame();
    if (!frame.ok()) return frame.status();
    if (frame->type == FrameType::kError) return ServerError(frame->payload);
    if (frame->type == FrameType::kErrorDraining) {
      Close();
      return DrainingError(frame->payload);
    }
    if (frame->type != FrameType::kStatsResp) {
      return Status::Internal("unexpected response frame to Stats");
    }
    return StatsResponse::Decode(frame->payload);
  });
}

}  // namespace rsse::server
