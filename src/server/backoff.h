#ifndef RSSE_SERVER_BACKOFF_H_
#define RSSE_SERVER_BACKOFF_H_

#include <cstdint>

namespace rsse::server {

/// Retry schedule for the resilient client: exponential growth from
/// `initial_delay_ms` by `multiplier` per attempt, capped at
/// `max_delay_ms`, with symmetric multiplicative jitter so a fleet of
/// clients reconnecting to a restarted server does not stampede in
/// lockstep.
struct BackoffPolicy {
  int initial_delay_ms = 50;
  int max_delay_ms = 2000;
  double multiplier = 2.0;
  /// Jitter fraction: each delay is drawn uniformly from
  /// [base * (1 - jitter), base * (1 + jitter)]. 0 disables jitter.
  double jitter = 0.2;
  /// Retries after the first attempt (so a request is tried at most
  /// `1 + max_retries` times). 0 disables retrying entirely.
  int max_retries = 4;
};

/// Time source for the client's deadlines and backoff sleeps. Virtual so
/// tests drive retries under a fake clock instead of real wall time.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic milliseconds (steady clock; no relation to wall time).
  virtual int64_t NowMillis() = 0;
  virtual void SleepMillis(int64_t ms) = 0;

  /// Process-wide real clock singleton.
  static Clock* Real();
};

/// One request's retry state: hands out successive jittered delays. The
/// jitter stream is a deterministic LCG seeded per instance, so tests can
/// pin exact sequences while distinct clients (seeded differently) still
/// spread out.
class Backoff {
 public:
  explicit Backoff(const BackoffPolicy& policy, uint64_t seed = 1);

  /// Delay to sleep before the next retry; advances the attempt counter.
  int64_t NextDelayMillis();

  /// Retries handed out so far.
  int attempts() const { return attempts_; }

  bool Exhausted() const { return attempts_ >= policy_.max_retries; }

 private:
  BackoffPolicy policy_;
  uint64_t rng_state_;
  int attempts_ = 0;
  double base_ms_;
};

}  // namespace rsse::server

#endif  // RSSE_SERVER_BACKOFF_H_
