#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>

#include "common/env.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "dprf/ggm_dprf.h"
#include "sse/keyword_keys.h"

namespace rsse::server {

namespace {

/// Input buffer compaction threshold: parsed-prefix bytes kept around
/// before the buffer is shifted down.
constexpr size_t kCompactThreshold = 1 << 20;

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " +
                          std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Dedupe key of a delegated GGM node: level byte followed by the seed.
using NodeKey = std::array<uint8_t, 1 + kLabelBytes>;

NodeKey KeyOf(const WireToken& t) {
  NodeKey key;
  key[0] = t.level;
  std::memcpy(key.data() + 1, t.seed.data(), kLabelBytes);
  return key;
}

}  // namespace

EmmServer::EmmServer(const ServerOptions& options)
    : options_(options), store_(shard::ShardedEmm::WithShards(options.shards)) {}

EmmServer::~EmmServer() {
  CloseAll();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fds_[0] >= 0) close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) close(wake_fds_[1]);
}

Status EmmServer::Host(const Bytes& index_blob) {
  // Resolve the worker count here so the documented RSSE_SEARCH_THREADS
  // fallback governs the load too (Deserialize's own 0-fallback is the
  // builder-side RSSE_BUILD_THREADS).
  const int threads =
      ResolveThreadCount(options_.search_threads, "RSSE_SEARCH_THREADS");
  Result<shard::ShardedEmm> store = shard::ShardedEmm::Deserialize(
      index_blob, threads, options_.load_shards);
  if (!store.ok()) return store.status();
  store_ = std::move(store).value();
  hosted_ = true;
  return Status::Ok();
}

Status EmmServer::Listen() {
  if (listen_fd_ >= 0) return Status::FailedPrecondition("already listening");
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bind_address must be numeric IPv4");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (listen(listen_fd_, SOMAXCONN) != 0) return Errno("listen");
  if (!SetNonBlocking(listen_fd_)) return Errno("fcntl(listen)");
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (pipe(wake_fds_) != 0) return Errno("pipe");
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);
  return Status::Ok();
}

void EmmServer::Shutdown() {
  stop_.store(true, std::memory_order_relaxed);
  if (wake_fds_[1] >= 0) {
    const uint8_t b = 0;
    [[maybe_unused]] ssize_t n = write(wake_fds_[1], &b, 1);
  }
}

void EmmServer::CloseAll() {
  for (Connection& c : conns_) {
    if (c.fd >= 0) close(c.fd);
  }
  conns_.clear();
}

Status EmmServer::Serve() {
  if (listen_fd_ < 0) return Status::FailedPrecondition("Listen() not called");
  std::vector<pollfd> fds;
  while (!stop_.load(std::memory_order_relaxed)) {
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_fds_[0], POLLIN, 0});
    for (const Connection& c : conns_) {
      // A closing connection only flushes: registering POLLIN for it
      // would level-trigger forever on unread input and spin the loop.
      short events = c.closing ? 0 : POLLIN;
      if (c.out.size() > c.out_offset) events |= POLLOUT;
      fds.push_back({c.fd, events, 0});
    }
    const int rc = poll(fds.data(), fds.size(), /*timeout_ms=*/-1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if ((fds[1].revents & POLLIN) != 0) {
      uint8_t drain[64];
      while (read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
    }
    // fds[2 + i] maps to conns_[i] only for the connections that existed
    // when the pollfd set was built; snapshot that count before accepting
    // (AcceptPending grows conns_ past it).
    const size_t polled = conns_.size();
    if ((fds[0].revents & POLLIN) != 0) AcceptPending();
    // Walk connections back to front so drops do not disturb the mapping
    // between fds[2 + i] and conns_[i].
    for (size_t i = polled; i-- > 0;) {
      const short revents = fds[2 + i].revents;
      if (revents == 0) continue;
      Connection& c = conns_[i];
      bool alive = true;
      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) alive = false;
      if (alive && (revents & POLLIN) != 0) alive = ReadPending(c);
      if (alive && (revents & POLLOUT) != 0) alive = WritePending(c);
      if (!alive) {
        close(c.fd);
        conns_.erase(conns_.begin() + static_cast<long>(i));
      }
    }
  }
  CloseAll();
  return Status::Ok();
}

void EmmServer::AcceptPending() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
          errno == ECONNABORTED) {
        return;  // drained / transient: back to poll
      }
      // Persistent failure (EMFILE/ENFILE, ...): the listen socket stays
      // readable, so returning immediately would spin the poll loop at
      // 100% CPU. Back off briefly; existing connections resume after.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      return;
    }
    if (!SetNonBlocking(fd)) {
      close(fd);
      continue;
    }
    Connection c;
    c.fd = fd;
    conns_.push_back(std::move(c));
  }
}

bool EmmServer::ReadPending(Connection& conn) {
  // A closing connection only flushes; re-parsing would re-handle the
  // same malformed prefix and emit duplicate Error frames.
  if (conn.closing) return WritePending(conn);
  uint8_t chunk[64 * 1024];
  // Read and parse alternately: handling complete frames between recv
  // calls keeps conn.in bounded by one in-flight frame (plus a chunk)
  // even against a sender that never lets the socket go dry, instead of
  // buffering the whole stream before the first parse.
  for (;;) {
    const ssize_t n = recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    conn.in.insert(conn.in.end(), chunk, chunk + n);
    for (;;) {
      Frame frame;
      std::string error;
      const FrameParse parse =
          DecodeFrame(conn.in, conn.in_offset, frame, &error);
      if (parse == FrameParse::kNeedMore) break;
      if (parse == FrameParse::kMalformed) {
        SendError(conn, "malformed frame: " + error);
        conn.closing = true;
        break;
      }
      HandleFrame(conn, frame);
      if (conn.closing) break;
    }
    if (conn.closing) break;
    if (conn.in_offset >= kCompactThreshold ||
        conn.in_offset == conn.in.size()) {
      conn.in.erase(conn.in.begin(),
                    conn.in.begin() + static_cast<long>(conn.in_offset));
      conn.in_offset = 0;
    }
  }
  // Try to flush immediately; otherwise POLLOUT takes over.
  return WritePending(conn);
}

bool EmmServer::WritePending(Connection& conn) {
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n =
        send(conn.fd, conn.out.data() + conn.out_offset,
             conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
  conn.out.clear();
  conn.out_offset = 0;
  return !conn.closing;
}

void EmmServer::SendError(Connection& conn, const std::string& message) {
  ErrorResponse resp;
  resp.message = message;
  const Bytes payload = resp.Encode();
  if (!EncodeFrame(FrameType::kError, payload, conn.out)) {
    conn.closing = true;  // cannot even frame the error: drop the peer
  }
}

void EmmServer::HandleFrame(Connection& conn, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kSetupReq:
      HandleSetup(conn, frame.payload);
      return;
    case FrameType::kSearchBatchReq:
      HandleSearchBatch(conn, frame.payload);
      return;
    case FrameType::kUpdateReq:
      HandleUpdate(conn, frame.payload);
      return;
    case FrameType::kStatsReq:
      HandleStats(conn);
      return;
    default:
      // Response-only types arriving at the server are a protocol breach.
      SendError(conn, "unexpected frame type at server");
      conn.closing = true;
      return;
  }
}

void EmmServer::HandleSetup(Connection& conn, const Bytes& payload) {
  Result<SetupRequest> req = SetupRequest::Decode(payload);
  if (!req.ok()) {
    SendError(conn, req.status().message());
    return;
  }
  Status hosted = Host(req->index_blob);
  if (!hosted.ok()) {
    SendError(conn, hosted.message());
    return;
  }
  SetupResponse resp;
  resp.shards = static_cast<uint32_t>(store_.shard_count());
  resp.entries = store_.EntryCount();
  const Bytes out = resp.Encode();
  if (!EncodeFrame(FrameType::kSetupResp, out, conn.out)) {
    SendError(conn, "setup response exceeds frame limit");
  }
}

void EmmServer::HandleSearchBatch(Connection& conn, const Bytes& payload) {
  Result<SearchBatchRequest> req = SearchBatchRequest::Decode(payload);
  if (!req.ok()) {
    SendError(conn, req.status().message());
    return;
  }
  if (!hosted_) {
    SendError(conn, "no index hosted (send Setup first)");
    return;
  }

  WallTimer timer;

  // Dedupe covering nodes across every query of the batch: queries over
  // overlapping ranges share dyadic nodes, and each distinct GGM subtree
  // is expanded and probed exactly once.
  std::map<NodeKey, size_t> unique_index;
  std::vector<const WireToken*> unique_tokens;
  std::vector<std::vector<size_t>> query_token_refs(req->queries.size());
  uint64_t tokens_received = 0;
  for (size_t q = 0; q < req->queries.size(); ++q) {
    for (const WireToken& t : req->queries[q].tokens) {
      if (t.level > options_.max_token_level) {
        SendError(conn, "token level exceeds the server's expansion limit");
        return;
      }
      ++tokens_received;
      auto [it, inserted] =
          unique_index.try_emplace(KeyOf(t), unique_tokens.size());
      if (inserted) unique_tokens.push_back(&t);
      query_token_refs[q].push_back(it->second);
    }
  }

  // Expand + probe each distinct subtree once, sharded across workers
  // (same strided layout as ConstantScheme's in-process search).
  const int threads = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(
          ResolveThreadCount(options_.search_threads, "RSSE_SEARCH_THREADS")),
      std::max<size_t>(unique_tokens.size(), 1)));
  std::vector<std::vector<uint64_t>> unique_ids(unique_tokens.size());
  std::vector<uint64_t> leaves_per_worker(static_cast<size_t>(threads), 0);
  auto worker = [&](int t) {
    std::vector<Label> leaves;
    sse::KeywordKeys keys;
    for (size_t i = static_cast<size_t>(t); i < unique_tokens.size();
         i += static_cast<size_t>(threads)) {
      GgmDprf::Token token;
      token.level = unique_tokens[i]->level;
      token.seed.assign(unique_tokens[i]->seed.begin(),
                        unique_tokens[i]->seed.end());
      if (!GgmDprf::ExpandInto(token, leaves)) continue;
      leaves_per_worker[static_cast<size_t>(t)] += leaves.size();
      for (const Label& leaf : leaves) {
        sse::KeysFromSharedSecretInto(ConstByteSpan(leaf.data(), leaf.size()),
                                      keys);
        for (const Bytes& payload_bytes : store_.Search(keys)) {
          if (auto id = sse::DecodeIdPayload(payload_bytes); id.has_value()) {
            unique_ids[i].push_back(*id);
          }
        }
      }
    }
  };
  RunWorkers(threads, worker);

  // Stream one result frame per query id, fanning shared expansions back
  // out to every subscriber.
  uint64_t leaves_searched = 0;
  for (uint64_t n : leaves_per_worker) leaves_searched += n;
  for (size_t q = 0; q < req->queries.size(); ++q) {
    SearchResult result;
    result.query_id = req->queries[q].query_id;
    for (size_t idx : query_token_refs[q]) {
      result.ids.insert(result.ids.end(), unique_ids[idx].begin(),
                        unique_ids[idx].end());
    }
    const Bytes out = result.Encode();
    if (!EncodeFrame(FrameType::kSearchResult, out, conn.out)) {
      SendError(conn, "result set exceeds frame limit");
      return;
    }
  }

  SearchDone done;
  done.query_count = static_cast<uint32_t>(req->queries.size());
  done.tokens_received = tokens_received;
  done.unique_nodes_expanded = unique_tokens.size();
  done.leaves_searched = leaves_searched;
  done.search_nanos = timer.ElapsedNanos();
  const Bytes out = done.Encode();
  if (!EncodeFrame(FrameType::kSearchDone, out, conn.out)) {
    SendError(conn, "search done frame failed to encode");
    return;
  }

  stats_.batches_served += 1;
  stats_.queries_served += req->queries.size();
  stats_.tokens_received += tokens_received;
  stats_.nodes_deduped += tokens_received - unique_tokens.size();
}

void EmmServer::HandleUpdate(Connection& conn, const Bytes& payload) {
  Result<UpdateRequest> req = UpdateRequest::Decode(payload);
  if (!req.ok()) {
    SendError(conn, req.status().message());
    return;
  }
  for (const auto& [label, value] : req->entries) {
    store_.Insert(label, ConstByteSpan(value.data(), value.size()));
  }
  hosted_ = true;
  UpdateResponse resp;
  resp.entries = store_.EntryCount();
  const Bytes out = resp.Encode();
  if (!EncodeFrame(FrameType::kUpdateResp, out, conn.out)) {
    SendError(conn, "update response exceeds frame limit");
  }
}

void EmmServer::HandleStats(Connection& conn) {
  StatsResponse resp;
  resp.entries = store_.EntryCount();
  resp.size_bytes = store_.SizeBytes();
  resp.shards = static_cast<uint32_t>(store_.shard_count());
  resp.batches_served = stats_.batches_served;
  resp.queries_served = stats_.queries_served;
  resp.tokens_received = stats_.tokens_received;
  resp.nodes_deduped = stats_.nodes_deduped;
  const Bytes out = resp.Encode();
  if (!EncodeFrame(FrameType::kStatsResp, out, conn.out)) {
    SendError(conn, "stats response exceeds frame limit");
  }
}

}  // namespace rsse::server
