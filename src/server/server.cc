#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <thread>
#include <utility>

#include "common/env.h"
#include "common/mapped_file.h"
#include "common/stats.h"
#include "dprf/ggm_dprf.h"
#include "sse/keyword_keys.h"

namespace rsse::server {

namespace {

/// Input/output buffer compaction threshold: consumed-prefix bytes kept
/// around before the buffer is shifted down.
constexpr size_t kCompactThreshold = 1 << 20;

/// Parsed-but-unexecuted requests per connection before the poll thread
/// stops reading from it (job completion frees slots and resumes reads).
constexpr size_t kMaxQueuedJobs = 64;

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " +
                          std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Request frames are small and latency-bound; leaving Nagle on stacks a
/// delayed-ACK stall onto every ping-pong exchange. Failure is harmless
/// (the socket just keeps default batching), so the result is ignored.
void SetNoDelay(int fd) {
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Dedupe key of a delegated GGM node: level byte followed by the seed.
using NodeKey = std::array<uint8_t, 1 + kLabelBytes>;

NodeKey KeyOf(const WireToken& t) {
  NodeKey key;
  key[0] = t.level;
  std::memcpy(key.data() + 1, t.seed.data(), kLabelBytes);
  return key;
}

/// ServerOptions::mmap_stores tri-state: an explicit setting wins, -1
/// falls back to the RSSE_MMAP environment toggle.
bool ResolveMmapOption(int requested) {
  if (requested >= 0) return requested != 0;
  const char* env = std::getenv("RSSE_MMAP");
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
         std::strcmp(env, "true") == 0;
}

}  // namespace

EmmServer::EmmServer(const ServerOptions& options) : options_(options) {
  mmap_on_ = ResolveMmapOption(options.mmap_stores);
  // The primary slot exists from the start so the Update path can
  // populate a store before any Setup arrives.
  HostedStore& primary = stores_[rsse::kPrimaryStore];
  primary.kind = rsse::StoreKind::kEmm;
  primary.emm = shard::ShardedEmm::WithShards(options.shards);
}

EmmServer::~EmmServer() {
  CloseAll();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fds_[0] >= 0) close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) close(wake_fds_[1]);
}

Status EmmServer::Host(const Bytes& index_blob) {
  // Resolve the worker count here so the documented RSSE_SEARCH_THREADS
  // fallback governs the load too (Deserialize's own 0-fallback is the
  // builder-side RSSE_BUILD_THREADS).
  const int threads =
      ResolveThreadCount(options_.search_threads, "RSSE_SEARCH_THREADS");
  Result<shard::ShardedEmm> store = shard::ShardedEmm::Deserialize(
      index_blob, threads, options_.load_shards);
  if (!store.ok()) return store.status();
  WriterMutexLock lock(store_mutex_);
  // Persist before apply: if the snapshot cannot be made durable the
  // in-memory table keeps its previous (still-recoverable) contents.
  if (persist_ != nullptr) {
    const uint64_t epoch = store_epochs_[rsse::kPrimaryStore] + 1;
    const uint8_t kind = static_cast<uint8_t>(rsse::StoreKind::kEmm);
    if (mmap_on_) {
      // The snapshot file IS the runtime layout: serialize the store as
      // deserialized (after any load_shards re-sharding), so the next
      // boot maps the exact in-memory structure back.
      const Bytes image = store->SerializeV2(kind, epoch);
      RSSE_RETURN_IF_ERROR(persist_->PersistSnapshot(
          rsse::kPrimaryStore, epoch, kind,
          ConstByteSpan(image.data(), image.size()), {},
          SnapshotFormat::kV2));
    } else {
      RSSE_RETURN_IF_ERROR(persist_->PersistSnapshot(
          rsse::kPrimaryStore, epoch, kind,
          ConstByteSpan(index_blob.data(), index_blob.size()), {}));
    }
    store_epochs_[rsse::kPrimaryStore] = epoch;
    store_formats_[rsse::kPrimaryStore] = mmap_on_ ? 2 : 1;
    dirty_stores_.erase(rsse::kPrimaryStore);
  }
  HostedStore& primary = stores_[rsse::kPrimaryStore];
  primary.kind = rsse::StoreKind::kEmm;
  primary.emm = std::move(store).value();
  primary.gate.reset();
  primary.tree.reset();
  hosted_ = true;
  return Status::Ok();
}

size_t EmmServer::EntryCount() const {
  ReaderMutexLock lock(store_mutex_);
  auto it = stores_.find(rsse::kPrimaryStore);
  return it == stores_.end() ? 0 : it->second.emm.EntryCount();
}

Status EmmServer::RecoverStores() {
  if (recovered_ || options_.data_dir.empty()) return Status::Ok();
  Result<std::unique_ptr<StorePersistence>> persistence =
      StorePersistence::Open(options_.data_dir);
  if (!persistence.ok()) return persistence.status();
  Result<StorePersistence::RecoveryReport> report = (*persistence)->Recover();
  if (!report.ok()) return report.status();
  {
    WriterMutexLock lock(store_mutex_);
    for (const StorePersistence::RecoveredStore& rec : report->stores) {
      Status installed = InstallRecoveredStore(rec);
      if (!installed.ok()) {
        // The checksum held but the blob would not deserialize (a bug in
        // whatever wrote it): quarantine the slot like a checksum failure
        // — left in place, the bad file would re-fail and re-count on
        // every boot — and keep serving the rest rather than refusing to
        // start.
        (*persistence)->QuarantineSlot(rec.store_id);
        ++recovery_stats_.corrupt_snapshots_dropped;
        continue;
      }
      if (!mmap_on_ ||
          rec.kind != static_cast<uint8_t>(rsse::StoreKind::kEmm)) {
        continue;
      }
      if (rec.format != 2) {
        // First mmap boot over a v1 (or WAL-only) slot: the store was
        // fully heap-loaded anyway, so fold it — replayed WAL records
        // included — into a v2 snapshot the *next* boot can map. Failure
        // is non-fatal: the v1 snapshot + WAL still cover the data.
        HostedStore& hosted = stores_[rec.store_id];
        const uint64_t epoch = store_epochs_[rec.store_id] + 1;
        const Bytes image = hosted.emm.SerializeV2(rec.kind, epoch);
        // A gate invalidated by replayed updates must not be resurrected.
        ConstByteSpan gate_blob;
        if (hosted.gate != nullptr) {
          gate_blob =
              ConstByteSpan(rec.gate_blob.data(), rec.gate_blob.size());
        }
        const Status migrated = (*persistence)->PersistSnapshot(
            rec.store_id, epoch, rec.kind,
            ConstByteSpan(image.data(), image.size()), gate_blob,
            SnapshotFormat::kV2);
        if (migrated.ok()) {
          store_epochs_[rec.store_id] = epoch;
          store_formats_[rec.store_id] = 2;
        } else {
          std::fprintf(stderr,
                       "rsse: store %u not migrated to v2: %s\n",
                       rec.store_id, migrated.message().c_str());
        }
      } else if (!rec.updates.empty()) {
        // Mapped base plus replayed deltas: the touched shards live on
        // heap until the next clean drain folds them back into a fresh
        // v2 snapshot. No eager fold here — boot stays O(1).
        dirty_stores_.insert(rec.store_id);
      }
    }
  }
  recovery_stats_.corrupt_snapshots_dropped += report->corrupt_snapshots;
  recovery_stats_.wal_bytes_truncated = report->wal_bytes_truncated;
  persist_ = std::move(*persistence);
  recovered_ = true;
  return Status::Ok();
}

Status EmmServer::InstallRecoveredStore(
    const StorePersistence::RecoveredStore& rec) {
  HostedStore incoming;
  incoming.kind = static_cast<rsse::StoreKind>(rec.kind);
  if (rec.kind == static_cast<uint8_t>(rsse::StoreKind::kEmm)) {
    if (rec.has_snapshot) {
      const int threads =
          ResolveThreadCount(options_.search_threads, "RSSE_SEARCH_THREADS");
      if (rec.format == 2) {
        // v2 snapshots hold the runtime layout in place. Serving mmap:
        // map it — O(1) regardless of index size; the per-section CRCs
        // are deferred (every probe is bounds-checked instead). Serving
        // heap: load through the same image with the checksum pass.
        Result<std::shared_ptr<const MappedFile>> file =
            MappedFile::Open(rec.snapshot_path);
        if (!file.ok()) return file.status();
        if (rec.index_offset + rec.index_len > (*file)->size() ||
            rec.index_offset + rec.index_len < rec.index_offset) {
          return Status::InvalidArgument(
              "v2 snapshot index range exceeds the file");
        }
        if (mmap_on_) {
          shard::V2OpenOptions vopts;
          vopts.prefault = options_.prefault;
          Result<shard::ShardedEmm> store = shard::ShardedEmm::OpenMappedImage(
              std::move(*file), rec.index_offset, rec.index_len, vopts);
          if (!store.ok()) return store.status();
          incoming.emm = std::move(store).value();
        } else {
          Result<shard::ShardedEmm> store = shard::ShardedEmm::LoadV2(
              (*file)->bytes().subspan(rec.index_offset, rec.index_len),
              threads, /*verify_checksums=*/true);
          if (!store.ok()) return store.status();
          incoming.emm = std::move(store).value();
          // The mapping drops here; the store owns heap copies.
        }
      } else {
        Result<shard::ShardedEmm> store = shard::ShardedEmm::Deserialize(
            rec.index_blob, threads, options_.load_shards);
        if (!store.ok()) return store.status();
        incoming.emm = std::move(store).value();
      }
      if (!rec.gate_blob.empty()) {
        Result<rsse::BloomLabelGate> gate =
            rsse::BloomLabelGate::Deserialize(rec.gate_blob);
        if (!gate.ok()) return gate.status();
        incoming.gate =
            std::make_unique<rsse::BloomLabelGate>(std::move(gate).value());
      }
    } else {
      // WAL-only slot: updates arrived before any Setup.
      incoming.emm = shard::ShardedEmm::WithShards(options_.shards);
    }
    for (const Bytes& payload : rec.updates) {
      Result<UpdateRequest> update = UpdateRequest::Decode(payload);
      // The record passed its CRC, so a decode failure means the payload
      // was bad before it hit the disk; the durable prefix ends here.
      if (!update.ok()) break;
      // Replayed updates invalidate a setup-time gate exactly like live
      // ones (see RunUpdate).
      incoming.gate.reset();
      for (const auto& [label, value] : update->entries) {
        incoming.emm.Insert(label,
                            ConstByteSpan(value.data(), value.size()));
      }
      ++recovery_stats_.wal_records_applied;
    }
  } else if (rec.kind == static_cast<uint8_t>(rsse::StoreKind::kFilterTree)) {
    if (!rec.has_snapshot) {
      return Status::InvalidArgument("filter-tree slot without snapshot");
    }
    Result<pb::FilterTreeIndex> tree =
        pb::FilterTreeIndex::Deserialize(rec.index_blob);
    if (!tree.ok()) return tree.status();
    incoming.tree =
        std::make_unique<pb::FilterTreeIndex>(std::move(tree).value());
  } else {
    return Status::InvalidArgument("unknown store kind in snapshot");
  }
  stores_[rec.store_id] = std::move(incoming);
  store_epochs_[rec.store_id] = rec.epoch;
  store_formats_[rec.store_id] = rec.has_snapshot ? rec.format : 0;
  hosted_ = true;
  ++recovery_stats_.stores_recovered;
  return Status::Ok();
}

Status EmmServer::Listen() {
  if (listen_fd_ >= 0) return Status::FailedPrecondition("already listening");
  RSSE_RETURN_IF_ERROR(RecoverStores());
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bind_address must be numeric IPv4");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (listen(listen_fd_, SOMAXCONN) != 0) return Errno("listen");
  if (!SetNonBlocking(listen_fd_)) return Errno("fcntl(listen)");
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (pipe(wake_fds_) != 0) return Errno("pipe");
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);
  return Status::Ok();
}

void EmmServer::Shutdown() {
  stop_.store(true, std::memory_order_relaxed);
  WakePoll();
}

void EmmServer::BeginDrain() {
  // atomic store + pipe write only: safe to call from a signal handler.
  draining_.store(true, std::memory_order_relaxed);
  WakePoll();
}

void EmmServer::WakePoll() {
  if (wake_fds_[1] >= 0) {
    const uint8_t b = 0;
    ssize_t n;
    do {
      n = write(wake_fds_[1], &b, 1);
    } while (n < 0 && errno == EINTR);
  }
}

// ---------------------------------------------------------------------------
// Poll thread: accept, read, write, and the staged-output/unpark sweep.
// ---------------------------------------------------------------------------

Status EmmServer::Serve() {
  if (listen_fd_ < 0) return Status::FailedPrecondition("Listen() not called");
  StartWorkers();
  std::vector<pollfd> fds;
  bool drain_started = false;
  std::chrono::steady_clock::time_point drain_deadline{};
  while (!stop_.load(std::memory_order_relaxed)) {
    if (!drain_started && draining_.load(std::memory_order_relaxed)) {
      drain_started = true;
      drain_deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(
                           std::max(options_.drain_timeout_ms, 0));
    }
    // Sweep every connection first: move worker-staged frames into the
    // socket buffer, unpark drained streams, refresh read-pause state,
    // and drop closing connections that have fully finished.
    for (size_t i = conns_.size(); i-- > 0;) {
      if (PumpConnection(conns_[i])) DropConnection(i);
    }
    // Draining exits once every in-flight stream has finished and
    // flushed — or at the deadline, cutting whoever is still reading.
    if (drain_started &&
        (AllConnectionsQuiesced() ||
         std::chrono::steady_clock::now() >= drain_deadline)) {
      break;
    }
    fds.clear();
    // A draining server stops accepting: the listen fd stays in slot 0
    // (the fds[2 + i] <-> conns_[i] mapping depends on it) but asks for
    // no events.
    fds.push_back(
        {listen_fd_, static_cast<short>(drain_started ? 0 : POLLIN), 0});
    fds.push_back({wake_fds_[0], POLLIN, 0});
    for (const std::shared_ptr<Connection>& c : conns_) {
      // A closing connection only flushes (re-reading would re-handle the
      // same malformed prefix); a paused one has a full job queue and
      // resumes once completions drain it. Either way no POLLIN, or a
      // level-triggered socket would spin the loop.
      short events = 0;
      if (!c->closing && !c->input_paused) events |= POLLIN;
      if (c->out.size() > c->out_offset) events |= POLLOUT;
      fds.push_back({c->fd, events, 0});
    }
    int timeout_ms = -1;
    if (drain_started) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(drain_deadline -
                                     std::chrono::steady_clock::now());
      timeout_ms = static_cast<int>(
          std::clamp<int64_t>(remaining.count() + 1, 1, 1000));
    }
    const int rc = poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      StopWorkers();
      CloseAll();
      return Errno("poll");
    }
    if ((fds[1].revents & POLLIN) != 0) {
      uint8_t drain[64];
      for (;;) {
        const ssize_t n = read(wake_fds_[0], drain, sizeof(drain));
        if (n > 0) continue;
        if (n < 0 && errno == EINTR) continue;
        break;
      }
    }
    // fds[2 + i] maps to conns_[i] only for the connections that existed
    // when the pollfd set was built; snapshot that count before accepting
    // (AcceptPending grows conns_ past it).
    const size_t polled = conns_.size();
    if ((fds[0].revents & POLLIN) != 0) AcceptPending();
    // Walk connections back to front so drops do not disturb the mapping
    // between fds[2 + i] and conns_[i].
    for (size_t i = polled; i-- > 0;) {
      const short revents = fds[2 + i].revents;
      if (revents == 0) continue;
      bool alive = true;
      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) alive = false;
      if (alive && (revents & POLLIN) != 0) alive = ReadPending(conns_[i]);
      if (alive && (revents & POLLOUT) != 0) alive = WritePending(*conns_[i]);
      if (!alive) DropConnection(i);
    }
  }
  StopWorkers();
  CloseAll();
  // Release the port before returning: a successor process (or a second
  // server object in the same process) must be able to bind it while this
  // object still exists. The wake pipe stays open so a late Shutdown()
  // from another thread writes into a valid fd.
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  if (persist_ != nullptr) {
    // A *clean* drain folds heap deltas of mapped stores back into fresh
    // v2 snapshots, so the successor boots with an O(1) map again. A hard
    // Shutdown() (crash semantics — what the fault tests simulate) skips
    // the fold: the WAL alone must carry the deltas.
    if (mmap_on_ && drain_started &&
        !stop_.load(std::memory_order_relaxed)) {
      FoldDirtyStores();
    }
    // Belt and braces: appends fsync individually, but a drain should
    // leave nothing for the kernel to owe.
    const Status synced = persist_->Sync();
    if (!synced.ok()) return synced;
  }
  return Status::Ok();
}

void EmmServer::FoldDirtyStores() {
  WriterMutexLock lock(store_mutex_);
  for (uint32_t store_id : dirty_stores_) {
    auto it = stores_.find(store_id);
    if (it == stores_.end() || it->second.kind != rsse::StoreKind::kEmm) {
      continue;
    }
    const uint64_t epoch = store_epochs_[store_id] + 1;
    const uint8_t kind = static_cast<uint8_t>(rsse::StoreKind::kEmm);
    const Bytes image = it->second.emm.SerializeV2(kind, epoch);
    // Updates invalidated any setup-time gate (see RunUpdate), so the
    // folded snapshot carries none.
    const Status persisted = persist_->PersistSnapshot(
        store_id, epoch, kind, ConstByteSpan(image.data(), image.size()),
        {}, SnapshotFormat::kV2);
    if (persisted.ok()) {
      store_epochs_[store_id] = epoch;
      store_formats_[store_id] = 2;
    } else {
      // Non-fatal: the WAL still covers the deltas; the next boot replays
      // them onto the mapped base again.
      std::fprintf(stderr, "rsse: store %u not folded at drain: %s\n",
                   store_id, persisted.message().c_str());
    }
  }
  dirty_stores_.clear();
}

std::vector<EmmServer::StoreMemoryInfo> EmmServer::StoreMemory() const {
  std::vector<StoreMemoryInfo> out;
  ReaderMutexLock lock(store_mutex_);
  out.reserve(stores_.size());
  for (const auto& [store_id, hosted] : stores_) {
    StoreMemoryInfo info;
    info.store_id = store_id;
    if (hosted.kind == rsse::StoreKind::kEmm) {
      info.mapped_bytes = hosted.emm.MappedBytes();
      info.heap_bytes = hosted.emm.HeapBytes();
    } else if (hosted.tree != nullptr) {
      info.heap_bytes = hosted.tree->SizeBytes();
    }
    const auto fmt = store_formats_.find(store_id);
    info.snapshot_format = fmt == store_formats_.end() ? 0 : fmt->second;
    out.push_back(info);
  }
  return out;
}

void EmmServer::AcceptPending() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
          errno == ECONNABORTED) {
        return;  // drained / transient: back to poll
      }
      // Persistent failure (EMFILE/ENFILE, ...): the listen socket stays
      // readable, so returning immediately would spin the poll loop at
      // 100% CPU. Back off briefly; existing connections resume after.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      return;
    }
    if (!SetNonBlocking(fd)) {
      close(fd);
      continue;
    }
    SetNoDelay(fd);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conns_.push_back(std::move(conn));
  }
}

bool EmmServer::ReadPending(const std::shared_ptr<Connection>& cp) {
  Connection& conn = *cp;
  if (conn.closing) return true;  // flush-only; not polled for POLLIN
  uint8_t chunk[64 * 1024];
  // Read and parse alternately: handling complete frames between recv
  // calls keeps conn.in bounded by one in-flight frame (plus a chunk)
  // even against a sender that never lets the socket go dry, instead of
  // buffering the whole stream before the first parse.
  for (;;) {
    const ssize_t n = recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    conn.in.insert(conn.in.end(), chunk, chunk + n);
    for (;;) {
      Frame frame;
      std::string error;
      const FrameParse parse =
          DecodeFrame(conn.in, conn.in_offset, frame, &error);
      if (parse == FrameParse::kNeedMore) break;
      if (parse == FrameParse::kMalformed) {
        // The error must leave in sequence, after the responses of the
        // well-formed frames already queued: it rides the job queue too.
        Job job;
        job.protocol_error = "malformed frame: " + error;
        EnqueueJob(cp, std::move(job));
        conn.closing = true;
        break;
      }
      if (draining_.load(std::memory_order_relaxed)) {
        bool idle;
        {
          MutexLock lock(conn.mu);
          idle = conn.state == ExecState::kIdle && conn.jobs.empty();
        }
        if (idle) {
          // Refuse right here on the poll thread: a draining refusal must
          // not wait for worker capacity (every worker may be pinned to an
          // in-flight stream). A connection with queued work keeps FIFO
          // response order instead — its refusal rides the job queue and
          // the worker's own draining check.
          EmitDrainingError(conn);
          continue;
        }
      }
      Job job;
      job.type = frame.type;
      job.payload = std::move(frame.payload);
      EnqueueJob(cp, std::move(job));
    }
    if (conn.closing) break;
    if (conn.in_offset >= kCompactThreshold ||
        conn.in_offset == conn.in.size()) {
      conn.in.erase(conn.in.begin(),
                    conn.in.begin() + static_cast<long>(conn.in_offset));
      conn.in_offset = 0;
    }
  }
  return true;
}

bool EmmServer::WritePending(Connection& conn) {
  size_t sent = 0;
  bool alive = true;
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n =
        send(conn.fd, conn.out.data() + conn.out_offset,
             conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<size_t>(n);
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      // send() does not return 0 for nonzero lengths on a live socket,
      // and a 0 return sets no errno — falling through to the errno
      // checks below would act on whatever the previous syscall left
      // (a stale EINTR means an infinite retry loop). Dead peer.
      alive = false;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    alive = false;
    break;
  }
  if (conn.out_offset == conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
  }
  if (sent > 0) {
    conn.outbound_bytes.fetch_sub(sent, std::memory_order_release);
  }
  return alive;
}

bool EmmServer::PumpConnection(const std::shared_ptr<Connection>& cp) {
  // Accesses spell out `cp->` (no `*cp` reference alias): the analysis
  // matches the held `cp->mu` against PushReadyLocked's requirement by
  // expression, and an alias would hide the connection behind it.
  MutexLock lock(cp->mu);
  if (cp->close_requested.load(std::memory_order_relaxed)) {
    cp->closing = true;
  }
  if (!cp->staged.empty()) {
    // Reclaim the sent prefix before appending: a connection that stays
    // partially unflushed while workers keep staging must not grow its
    // consumed prefix without bound.
    if (cp->out_offset > 0 &&
        (cp->out_offset == cp->out.size() ||
         cp->out_offset >= kCompactThreshold)) {
      cp->out.erase(cp->out.begin(),
                    cp->out.begin() + static_cast<long>(cp->out_offset));
      cp->out_offset = 0;
    }
    cp->out.insert(cp->out.end(), cp->staged.begin(), cp->staged.end());
    cp->staged.clear();
    cp->staged.shrink_to_fit();
  }
  // Unpark with hysteresis: the stream parked at the high-water mark
  // resumes once the socket has drained to half of it, so a borderline
  // reader does not bounce the job on and off the worker pool per frame.
  if (cp->state == ExecState::kParked &&
      cp->outbound_bytes.load(std::memory_order_acquire) <=
          options_.max_outbound_bytes / 2) {
    cp->state = ExecState::kQueued;
    PushReadyLocked(cp);
  }
  cp->input_paused = cp->jobs.size() >= kMaxQueuedJobs;
  return cp->closing && cp->jobs.empty() &&
         cp->state == ExecState::kIdle && cp->staged.empty() &&
         cp->out_offset == cp->out.size();
}

void EmmServer::DropConnection(size_t index) {
  std::shared_ptr<Connection> conn = conns_[index];
  conns_.erase(conns_.begin() + static_cast<long>(index));
  {
    MutexLock lock(conn->mu);
    conn->closed.store(true, std::memory_order_relaxed);
    // A worker mid-job still holds a reference through the ready queue's
    // shared_ptr and cleans up at its next transition; anything merely
    // queued or parked dies here.
    if (conn->state != ExecState::kRunning) {
      conn->jobs.clear();
      conn->state = ExecState::kIdle;
    }
  }
  if (conn->fd >= 0) {
    close(conn->fd);
    conn->fd = -1;
  }
}

void EmmServer::CloseAll() {
  while (!conns_.empty()) DropConnection(conns_.size() - 1);
}

void EmmServer::EnqueueJob(const std::shared_ptr<Connection>& cp,
                           Job&& job) {
  MutexLock lock(cp->mu);
  cp->jobs.push_back(std::move(job));
  if (cp->state == ExecState::kIdle) {
    cp->state = ExecState::kQueued;
    PushReadyLocked(cp);
  }
}

// ---------------------------------------------------------------------------
// Worker pool: one connection's head job at a time, responses in request
// order, search jobs parked and resumed across backpressure.
// ---------------------------------------------------------------------------

int EmmServer::ResolveWorkerCount() const {
  if (options_.search_workers > 0) return options_.search_workers;
  return ResolveThreadCount(options_.search_threads, "RSSE_SEARCH_THREADS");
}

void EmmServer::StartWorkers() {
  const int count = std::max(ResolveWorkerCount(), 1);
  {
    MutexLock lock(work_mu_);
    workers_stop_ = false;
  }
  workers_.reserve(static_cast<size_t>(count));
  for (int t = 0; t < count; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void EmmServer::StopWorkers() {
  {
    MutexLock lock(work_mu_);
    workers_stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  MutexLock lock(work_mu_);
  ready_.clear();
}

void EmmServer::PushReadyLocked(const std::shared_ptr<Connection>& conn) {
  {
    MutexLock lock(work_mu_);
    ready_.push_back(conn);
  }
  work_cv_.NotifyOne();
}

void EmmServer::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Connection> conn;
    {
      MutexLock lock(work_mu_);
      while (!workers_stop_ && ready_.empty()) work_cv_.Wait(work_mu_);
      if (workers_stop_) return;
      conn = std::move(ready_.front());
      ready_.pop_front();
    }
    RunHeadJob(conn);
  }
}

void EmmServer::RunHeadJob(const std::shared_ptr<Connection>& cp) {
  Job* job = nullptr;
  {
    MutexLock lock(cp->mu);
    if (cp->closed.load(std::memory_order_relaxed)) {
      cp->jobs.clear();
      cp->state = ExecState::kIdle;
      return;
    }
    // A ready entry can go stale (the connection was dropped and its
    // queue cleared, or an unpark raced a completion); only a queued
    // head job runs.
    if (cp->state != ExecState::kQueued || cp->jobs.empty()) return;
    cp->state = ExecState::kRunning;
    // deque::push_back never invalidates references to existing
    // elements, so the poll thread may append while this one executes.
    // The head job stays owned by this worker until the state leaves
    // kRunning, so touching it unlocked below races nothing.
    job = &cp->jobs.front();
  }
  const JobResult result = ExecuteJob(*cp, *job);
  MutexLock lock(cp->mu);
  if (cp->closed.load(std::memory_order_relaxed)) {
    cp->jobs.clear();
    cp->state = ExecState::kIdle;
    return;
  }
  if (result == JobResult::kParked) {
    // Head job stays queued with its stream state; the poll thread
    // requeues the connection once the socket drains below the
    // low-water mark.
    cp->state = ExecState::kParked;
    return;
  }
  cp->jobs.pop_front();
  if (cp->jobs.empty()) {
    cp->state = ExecState::kIdle;
    // A closing connection is dropped only when a poll-thread sweep
    // observes it fully quiesced, and this transition may be the last
    // piece of that condition. By now the poll thread can be blocked
    // with no event registered for this socket (closing suppresses
    // POLLIN, a flushed buffer suppresses POLLOUT), so without an
    // explicit wake the sweep never re-runs and the peer waits for a
    // FIN that never comes.
    WakePoll();
  } else {
    cp->state = ExecState::kQueued;
    PushReadyLocked(cp);
  }
}

EmmServer::JobResult EmmServer::ExecuteJob(Connection& conn, Job& job) {
  if (!job.protocol_error.empty()) {
    EmitError(conn, job.protocol_error);
    return JobResult::kDone;
  }
  if (job.stream != nullptr) return ResumeStream(conn, job);
  // A draining server finishes streams already started (above) but takes
  // no fresh work: the request has had no effect, so an idempotent client
  // may safely retry it against the restarted server.
  if (draining_.load(std::memory_order_relaxed)) {
    EmitDrainingError(conn);
    return JobResult::kDone;
  }
  switch (job.type) {
    case FrameType::kSetupReq:
      RunSetup(conn, job.payload);
      return JobResult::kDone;
    case FrameType::kSetupStoreReq:
      RunSetupStore(conn, job.payload);
      return JobResult::kDone;
    case FrameType::kSearchBatchReq:
      return StartSearchBatch(conn, job);
    case FrameType::kSearchKeywordReq:
      return StartSearchKeyword(conn, job);
    case FrameType::kUpdateReq:
      RunUpdate(conn, job.payload);
      return JobResult::kDone;
    case FrameType::kStatsReq:
      RunStats(conn);
      return JobResult::kDone;
    default:
      // Response-only types arriving at the server are a protocol breach.
      EmitError(conn, "unexpected frame type at server");
      conn.close_requested.store(true, std::memory_order_relaxed);
      WakePoll();
      return JobResult::kDone;
  }
}

// ---------------------------------------------------------------------------
// Emission: workers stage encoded frames under conn.mu; the poll thread
// moves them to the socket on its next sweep.
// ---------------------------------------------------------------------------

bool EmmServer::EmitEncoded(Connection& conn, const Bytes& frame) {
  bool wake = false;
  {
    MutexLock lock(conn.mu);
    if (conn.closed.load(std::memory_order_relaxed)) return false;
    wake = conn.staged.empty();
    conn.staged.insert(conn.staged.end(), frame.begin(), frame.end());
    const size_t outbound =
        conn.outbound_bytes.fetch_add(frame.size(),
                                      std::memory_order_release) +
        frame.size();
    stats_.peak_outbound_bytes.Observe(outbound);
  }
  // First staged frame since the last sweep: the poll thread may be
  // blocked with no POLLOUT registered for this socket.
  if (wake) WakePoll();
  return true;
}

bool EmmServer::EmitFrame(Connection& conn, FrameType type,
                          ConstByteSpan payload, const char* oversize_error) {
  Bytes frame;
  if (!EncodeFrame(type, payload, frame)) {
    EmitError(conn, oversize_error);
    return false;
  }
  return EmitEncoded(conn, frame);
}

void EmmServer::EmitError(Connection& conn, const std::string& message) {
  ErrorResponse resp;
  resp.message = message;
  const Bytes payload = resp.Encode();
  Bytes frame;
  // Our own error strings are tiny; encoding cannot overflow the frame
  // cap. If it somehow does there is nothing sensible left to send.
  if (!EncodeFrame(FrameType::kError, payload, frame)) return;
  EmitEncoded(conn, frame);
}

void EmmServer::EmitDrainingError(Connection& conn) {
  ErrorResponse resp;
  resp.message = "server draining; retry against the restarted server";
  const Bytes payload = resp.Encode();
  Bytes frame;
  if (!EncodeFrame(FrameType::kErrorDraining, payload, frame)) return;
  EmitEncoded(conn, frame);
}

bool EmmServer::AllConnectionsQuiesced() {
  for (const std::shared_ptr<Connection>& c : conns_) {
    if (c->out_offset < c->out.size()) return false;
    MutexLock lock(c->mu);
    if (c->state != ExecState::kIdle) return false;
    if (!c->jobs.empty() || !c->staged.empty()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Request handlers (worker side).
// ---------------------------------------------------------------------------

void EmmServer::RunSetup(Connection& conn, const Bytes& payload) {
  Result<SetupRequest> req = SetupRequest::Decode(payload);
  if (!req.ok()) {
    EmitError(conn, req.status().message());
    return;
  }
  Status hosted = Host(req->index_blob);
  if (!hosted.ok()) {
    EmitError(conn, hosted.message());
    return;
  }
  SetupResponse resp;
  {
    ReaderMutexLock lock(store_mutex_);
    const HostedStore& primary = stores_.at(rsse::kPrimaryStore);
    resp.shards = static_cast<uint32_t>(primary.emm.shard_count());
    resp.entries = primary.emm.EntryCount();
  }
  EmitFrame(conn, FrameType::kSetupResp, resp.Encode(),
            "setup response exceeds frame limit");
}

void EmmServer::RunSetupStore(Connection& conn, const Bytes& payload) {
  Result<SetupStoreRequest> req = SetupStoreRequest::Decode(payload);
  if (!req.ok()) {
    EmitError(conn, req.status().message());
    return;
  }
  // Slot ids are capped so a hostile client cannot grow the store table
  // without bound by cycling distinct ids.
  if (req->store_id > options_.max_store_id) {
    EmitError(conn, "store id exceeds the server's slot limit");
    return;
  }
  HostedStore incoming;
  incoming.kind = static_cast<rsse::StoreKind>(req->kind);
  SetupResponse resp;
  if (req->kind == static_cast<uint8_t>(rsse::StoreKind::kEmm)) {
    const int threads =
        ResolveThreadCount(options_.search_threads, "RSSE_SEARCH_THREADS");
    Result<shard::ShardedEmm> store = shard::ShardedEmm::Deserialize(
        req->index_blob, threads, options_.load_shards);
    if (!store.ok()) {
      EmitError(conn, store.status().message());
      return;
    }
    incoming.emm = std::move(store).value();
    if (!req->gate_blob.empty()) {
      Result<rsse::BloomLabelGate> gate =
          rsse::BloomLabelGate::Deserialize(req->gate_blob);
      if (!gate.ok()) {
        EmitError(conn, gate.status().message());
        return;
      }
      incoming.gate = std::make_unique<rsse::BloomLabelGate>(
          std::move(gate).value());
    }
    resp.shards = static_cast<uint32_t>(incoming.emm.shard_count());
    resp.entries = incoming.emm.EntryCount();
  } else if (req->kind ==
             static_cast<uint8_t>(rsse::StoreKind::kFilterTree)) {
    if (!req->gate_blob.empty()) {
      EmitError(conn, "filter-tree stores take no bloom gate");
      return;
    }
    Result<pb::FilterTreeIndex> tree =
        pb::FilterTreeIndex::Deserialize(req->index_blob);
    if (!tree.ok()) {
      EmitError(conn, tree.status().message());
      return;
    }
    incoming.tree =
        std::make_unique<pb::FilterTreeIndex>(std::move(tree).value());
    resp.shards = 0;
    resp.entries = incoming.tree->LeafCount();
  } else {
    EmitError(conn, "unknown store kind");
    return;
  }
  {
    WriterMutexLock lock(store_mutex_);
    // Durability before visibility: a slot the server acked must survive
    // a crash, so the snapshot reaches disk before the table swap.
    if (persist_ != nullptr) {
      const uint64_t epoch = store_epochs_[req->store_id] + 1;
      const bool as_v2 =
          mmap_on_ && req->kind == static_cast<uint8_t>(rsse::StoreKind::kEmm);
      Status persisted;
      if (as_v2) {
        // Snapshot the runtime layout, not the wire blob: the next boot
        // maps exactly what this process would serve. Filter trees keep
        // the v1 container (they have no mmap-native image).
        const Bytes image = incoming.emm.SerializeV2(req->kind, epoch);
        persisted = persist_->PersistSnapshot(
            req->store_id, epoch, req->kind,
            ConstByteSpan(image.data(), image.size()),
            ConstByteSpan(req->gate_blob.data(), req->gate_blob.size()),
            SnapshotFormat::kV2);
      } else {
        persisted = persist_->PersistSnapshot(
            req->store_id, epoch, req->kind,
            ConstByteSpan(req->index_blob.data(), req->index_blob.size()),
            ConstByteSpan(req->gate_blob.data(), req->gate_blob.size()));
      }
      if (!persisted.ok()) {
        EmitError(conn, "store not persisted: " + persisted.message());
        return;
      }
      store_epochs_[req->store_id] = epoch;
      store_formats_[req->store_id] = as_v2 ? 2 : 1;
      dirty_stores_.erase(req->store_id);
    }
    stores_[req->store_id] = std::move(incoming);
    hosted_ = true;
  }
  EmitFrame(conn, FrameType::kSetupResp, resp.Encode(),
            "setup response exceeds frame limit");
}

void EmmServer::RunUpdate(Connection& conn, const Bytes& payload) {
  Result<UpdateRequest> req = UpdateRequest::Decode(payload);
  if (!req.ok()) {
    EmitError(conn, req.status().message());
    return;
  }
  UpdateResponse resp;
  {
    // Updates mutate the store table: exclusive lock, so a racing search
    // segment sees the dictionary entirely before or entirely after this
    // batch.
    WriterMutexLock lock(store_mutex_);
    HostedStore& primary = stores_[rsse::kPrimaryStore];
    if (primary.kind != rsse::StoreKind::kEmm) {
      EmitError(conn, "primary store is not an encrypted dictionary");
      return;
    }
    // WAL-before-apply: the batch is fsync'd (tagged with the live
    // snapshot's epoch) before any entry lands in memory, so an acked
    // update can never be lost and a nacked one is never applied.
    if (persist_ != nullptr) {
      const Status logged = persist_->AppendUpdate(
          rsse::kPrimaryStore, store_epochs_[rsse::kPrimaryStore],
          ConstByteSpan(payload.data(), payload.size()));
      if (!logged.ok()) {
        EmitError(conn, "update not persisted: " + logged.message());
        return;
      }
    }
    // A shipped Bloom gate was built over the setup-time labels only;
    // keeping it would silently skip-decrypt (drop) every updated entry.
    // Correctness wins: drop the gate, the owner re-ships one with the
    // next SetupStore if desired.
    primary.gate.reset();
    for (const auto& [label, value] : req->entries) {
      primary.emm.Insert(label, ConstByteSpan(value.data(), value.size()));
    }
    // Inserts copy touched shards off the mapping; remember to fold the
    // deltas into a fresh v2 snapshot at the next clean drain.
    if (mmap_on_ && persist_ != nullptr) {
      dirty_stores_.insert(rsse::kPrimaryStore);
    }
    hosted_ = true;
    resp.entries = primary.emm.EntryCount();
  }
  EmitFrame(conn, FrameType::kUpdateResp, resp.Encode(),
            "update response exceeds frame limit");
}

void EmmServer::RunStats(Connection& conn) {
  StatsResponse resp;
  {
    ReaderMutexLock lock(store_mutex_);
    const auto it = stores_.find(rsse::kPrimaryStore);
    if (it != stores_.end()) {
      const HostedStore& primary = it->second;
      if (primary.kind == rsse::StoreKind::kEmm) {
        resp.entries = primary.emm.EntryCount();
        resp.size_bytes = primary.emm.SizeBytes();
        resp.shards = static_cast<uint32_t>(primary.emm.shard_count());
        resp.mapped_bytes = primary.emm.MappedBytes();
        resp.heap_bytes = primary.emm.HeapBytes();
      } else if (primary.tree != nullptr) {
        resp.entries = primary.tree->LeafCount();
        resp.size_bytes = primary.tree->SizeBytes();
        resp.heap_bytes = primary.tree->SizeBytes();
      }
      const auto fmt = store_formats_.find(rsse::kPrimaryStore);
      resp.snapshot_format =
          fmt == store_formats_.end() ? 0 : fmt->second;
    }
  }
  resp.batches_served = stats_.batches_served.load(std::memory_order_relaxed);
  resp.queries_served = stats_.queries_served.load(std::memory_order_relaxed);
  resp.tokens_received =
      stats_.tokens_received.load(std::memory_order_relaxed);
  resp.nodes_deduped = stats_.nodes_deduped.load(std::memory_order_relaxed);
  EmitFrame(conn, FrameType::kStatsResp, resp.Encode(),
            "stats response exceeds frame limit");
}

// ---------------------------------------------------------------------------
// Streamed searches.
// ---------------------------------------------------------------------------

EmmServer::JobResult EmmServer::StartSearchBatch(Connection& conn, Job& job) {
  Result<SearchBatchRequest> req = SearchBatchRequest::Decode(job.payload);
  if (!req.ok()) {
    EmitError(conn, req.status().message());
    return JobResult::kDone;
  }
  auto stream = std::make_unique<ResultStream>();
  ResultStream& s = *stream;
  s.payload_mode = false;
  s.producer = ResultStream::Producer::kGgm;
  const size_t nq = req->queries.size();
  s.query_ids.resize(nq);
  s.ids.resize(nq);
  s.open_parts.assign(nq, 0);
  s.offset.assign(nq, 0);
  // Dedupe covering nodes across every query of the batch: queries over
  // overlapping ranges share dyadic nodes, and each distinct GGM subtree
  // is expanded and probed exactly once, its ids fanned back out to every
  // subscriber.
  std::map<NodeKey, size_t> unique_index;
  uint64_t tokens_received = 0;
  for (size_t q = 0; q < nq; ++q) {
    s.query_ids[q] = req->queries[q].query_id;
    for (const WireToken& t : req->queries[q].tokens) {
      if (t.level > options_.max_token_level) {
        EmitError(conn, "token level exceeds the server's expansion limit");
        return JobResult::kDone;
      }
      ++tokens_received;
      auto [it, inserted] =
          unique_index.try_emplace(KeyOf(t), s.tokens.size());
      if (inserted) {
        GgmDprf::Token token;
        token.level = t.level;
        token.seed.assign(t.seed.begin(), t.seed.end());
        s.tokens.push_back(std::move(token));
        s.token_queries.emplace_back();
      }
      s.token_queries[it->second].push_back(static_cast<uint32_t>(q));
      ++s.open_parts[q];
    }
  }
  s.work_count = s.tokens.size();
  s.done.query_count = static_cast<uint32_t>(nq);
  s.done.tokens_received = tokens_received;
  s.done.unique_nodes_expanded = s.tokens.size();
  // The request is fully decoded into the stream; keeping the raw payload
  // alive across parks would double the batch's footprint.
  job.payload.clear();
  job.payload.shrink_to_fit();
  job.stream = std::move(stream);
  return ResumeStream(conn, job);
}

EmmServer::JobResult EmmServer::StartSearchKeyword(Connection& conn,
                                                   Job& job) {
  Result<SearchKeywordRequest> req = SearchKeywordRequest::Decode(job.payload);
  if (!req.ok()) {
    EmitError(conn, req.status().message());
    return JobResult::kDone;
  }
  // The keyword-path equivalent of max_token_level: bound the total work
  // and allocation one hostile frame can demand before touching a store.
  uint64_t tokens_received = 0;
  for (const SearchKeywordRequest::Query& q : req->queries) {
    tokens_received += q.tokens.size();
  }
  if (tokens_received > options_.max_keyword_tokens) {
    EmitError(conn, "keyword token batch exceeds the server's limit");
    return JobResult::kDone;
  }
  // The slot's kind decides which work units to build; the store itself
  // is re-resolved under the lock each run segment.
  rsse::StoreKind kind;
  {
    ReaderMutexLock lock(store_mutex_);
    if (!hosted_) {
      EmitError(conn, "no index hosted (send Setup first)");
      return JobResult::kDone;
    }
    auto slot = stores_.find(req->store_id);
    if (slot == stores_.end()) {
      EmitError(conn, "no store hosted at the requested slot");
      return JobResult::kDone;
    }
    kind = slot->second.kind;
  }
  auto stream = std::make_unique<ResultStream>();
  ResultStream& s = *stream;
  s.payload_mode = true;
  s.store_id = req->store_id;
  const size_t nq = req->queries.size();
  s.query_ids.resize(nq);
  s.payloads.resize(nq);
  s.open_parts.assign(nq, 0);
  s.offset.assign(nq, 0);
  if (kind == rsse::StoreKind::kFilterTree) {
    s.producer = ResultStream::Producer::kFilterTree;
    s.trapdoors.resize(nq);
    for (size_t q = 0; q < nq; ++q) {
      s.query_ids[q] = req->queries[q].query_id;
      s.trapdoors[q].reserve(req->queries[q].tokens.size());
      for (const WireKeywordToken& t : req->queries[q].tokens) {
        if (t.kind != 1) {
          EmitError(conn, "filter-tree stores resolve opaque trapdoors only");
          return JobResult::kDone;
        }
        s.trapdoors[q].push_back(t.a);
      }
      s.open_parts[q] = 1;  // one tree probe per query
    }
    s.work_count = nq;
  } else {
    s.producer = ResultStream::Producer::kKeyword;
    s.probes.reserve(static_cast<size_t>(tokens_received));
    for (size_t q = 0; q < nq; ++q) {
      s.query_ids[q] = req->queries[q].query_id;
      for (const WireKeywordToken& t : req->queries[q].tokens) {
        if (t.kind != 0) {
          EmitError(conn,
                    "encrypted dictionaries resolve keyword tokens only");
          return JobResult::kDone;
        }
        ResultStream::KeywordProbe probe;
        probe.query = static_cast<uint32_t>(q);
        probe.keys.label_key = t.a;
        probe.keys.value_key = t.b;
        s.probes.push_back(std::move(probe));
        ++s.open_parts[q];
      }
    }
    s.work_count = s.probes.size();
  }
  s.done.query_count = static_cast<uint32_t>(nq);
  s.done.tokens_received = tokens_received;
  job.payload.clear();
  job.payload.shrink_to_fit();
  job.stream = std::move(stream);
  return ResumeStream(conn, job);
}

EmmServer::JobResult EmmServer::ResumeStream(Connection& conn, Job& job) {
  ResultStream& s = *job.stream;
  WallTimer timer;
  // One shared store-table lock per run segment: the lock drops with the
  // segment when the job parks, so a batch stalled behind a slow reader
  // never blocks an Update or Setup. The flip side, re-resolved here, is
  // that a long-streamed batch may observe a store swap at work-unit
  // granularity.
  ReaderMutexLock lock(store_mutex_);
  const HostedStore* store = nullptr;
  // The first segment validates even when the batch carries no work at
  // all (an empty batch against an unhosted server is still an error);
  // later segments re-resolve only while production remains.
  if (s.next_work < s.work_count || s.next_work == 0) {
    if (!hosted_) {
      EmitError(conn, "no index hosted (send Setup first)");
      return JobResult::kDone;
    }
    const uint32_t slot_id = s.producer == ResultStream::Producer::kGgm
                                 ? rsse::kPrimaryStore
                                 : s.store_id;
    auto slot = stores_.find(slot_id);
    switch (s.producer) {
      case ResultStream::Producer::kGgm:
        if (slot == stores_.end() ||
            slot->second.kind != rsse::StoreKind::kEmm) {
          EmitError(conn, "primary store is not an encrypted dictionary");
          return JobResult::kDone;
        }
        break;
      case ResultStream::Producer::kKeyword:
        if (slot == stores_.end()) {
          EmitError(conn, "no store hosted at the requested slot");
          return JobResult::kDone;
        }
        if (slot->second.kind != rsse::StoreKind::kEmm) {
          EmitError(conn, "store kind changed during a streamed search");
          return JobResult::kDone;
        }
        break;
      case ResultStream::Producer::kFilterTree:
        if (slot == stores_.end()) {
          EmitError(conn, "no store hosted at the requested slot");
          return JobResult::kDone;
        }
        if (slot->second.kind != rsse::StoreKind::kFilterTree ||
            slot->second.tree == nullptr) {
          EmitError(conn, "store kind changed during a streamed search");
          return JobResult::kDone;
        }
        break;
    }
    store = &slot->second;
  }
  // Scratch reused across this segment's work units.
  std::vector<Label> leaves;
  sse::KeywordKeys leaf_keys;
  for (;;) {
    const EmitResult emit = PumpEmission(conn, s);
    if (emit == EmitResult::kAbort) return JobResult::kDone;
    if (emit == EmitResult::kPark) {
      s.done.search_nanos += timer.ElapsedNanos();
      return JobResult::kParked;
    }
    if (emit == EmitResult::kFinished) {
      s.done.search_nanos += timer.ElapsedNanos();
      // The terminating frame honours the high-water mark like any chunk
      // (so `peak outbound <= cap` holds exactly), except into an empty
      // queue. Re-entry lands back here: the cursor is fully drained, so
      // PumpEmission returns kFinished again immediately.
      if (options_.max_outbound_bytes > 0) {
        constexpr size_t kDoneEstimate = 96;
        const size_t outbound =
            conn.outbound_bytes.load(std::memory_order_acquire);
        if (outbound > 0 &&
            outbound + kDoneEstimate > options_.max_outbound_bytes) {
          return JobResult::kParked;
        }
      }
      EmitFrame(conn, FrameType::kSearchDone, s.done.Encode(),
                "search done frame failed to encode");
      stats_.batches_served.fetch_add(1, std::memory_order_relaxed);
      stats_.queries_served.fetch_add(s.done.query_count,
                                      std::memory_order_relaxed);
      stats_.tokens_received.fetch_add(s.done.tokens_received,
                                       std::memory_order_relaxed);
      if (s.producer == ResultStream::Producer::kGgm) {
        stats_.nodes_deduped.fetch_add(
            s.done.tokens_received - s.done.unique_nodes_expanded,
            std::memory_order_relaxed);
      }
      return JobResult::kDone;
    }
    // kStall: the cursor needs data the producers have not resolved yet.
    if (s.next_work >= s.work_count) {
      // Unreachable by construction (all open_parts are 0 once work runs
      // dry); bail rather than spin if an invariant ever breaks.
      EmitError(conn, "internal: stream stalled with no work left");
      return JobResult::kDone;
    }
    switch (s.producer) {
      case ResultStream::Producer::kGgm: {
        const GgmDprf::Token& token = s.tokens[s.next_work];
        std::vector<uint64_t> unit_ids;
        sse::SearchStats search_stats;
        if (GgmDprf::ExpandInto(token, leaves)) {
          s.done.leaves_searched += leaves.size();
          for (const Label& leaf : leaves) {
            sse::KeysFromSharedSecretInto(
                ConstByteSpan(leaf.data(), leaf.size()), leaf_keys);
            for (const Bytes& payload_bytes :
                 store->emm.Search(leaf_keys, store->gate.get(),
                                   &search_stats)) {
              if (auto id = sse::DecodeIdPayload(payload_bytes);
                  id.has_value()) {
                unit_ids.push_back(*id);
              }
            }
          }
        }
        s.done.skipped_decrypts += search_stats.skipped_decrypts;
        for (uint32_t qi : s.token_queries[s.next_work]) {
          s.ids[qi].insert(s.ids[qi].end(), unit_ids.begin(),
                           unit_ids.end());
          --s.open_parts[qi];
        }
        break;
      }
      case ResultStream::Producer::kKeyword: {
        const ResultStream::KeywordProbe& probe = s.probes[s.next_work];
        sse::SearchStats search_stats;
        std::vector<Bytes> hits =
            store->emm.Search(probe.keys, store->gate.get(), &search_stats);
        s.done.skipped_decrypts += search_stats.skipped_decrypts;
        std::vector<Bytes>& dst = s.payloads[probe.query];
        for (Bytes& hit : hits) dst.push_back(std::move(hit));
        --s.open_parts[probe.query];
        break;
      }
      case ResultStream::Producer::kFilterTree: {
        const size_t q = s.next_work;
        for (uint64_t id : store->tree->Search(s.trapdoors[q])) {
          s.payloads[q].push_back(sse::EncodeIdPayload(id));
        }
        s.open_parts[q] = 0;
        break;
      }
    }
    ++s.next_work;
  }
}

EmmServer::EmitResult EmmServer::PumpEmission(Connection& conn,
                                              ResultStream& s) {
  const size_t cap = std::max<size_t>(
      s.payload_mode ? options_.max_payloads_per_result_frame
                     : options_.max_ids_per_result_frame,
      1);
  const size_t n = s.query_ids.size();
  for (;;) {
    if (s.q == n) {
      // A full rotation without a single frame means every query is
      // complete and drained (stalls return mid-rotation): done.
      if (!s.round_emitted) return EmitResult::kFinished;
      s.q = 0;
      ++s.round;
      s.round_emitted = false;
      continue;
    }
    const bool complete = s.open_parts[s.q] == 0;
    const size_t total =
        s.payload_mode ? s.payloads[s.q].size() : s.ids[s.q].size();
    const size_t avail = total - s.offset[s.q];
    if (complete && avail == 0 && s.round > 0) {
      ++s.q;
      continue;
    }
    // Round 0 still owes this query its first (possibly empty) frame;
    // later rounds owe a frame only once a full chunk (or the tail) is
    // ready — a partial chunk of an unfinished query waits for the
    // producers.
    if (!complete && avail < cap) return EmitResult::kStall;
    const size_t count = std::min(avail, cap);
    // Backpressure check before encoding: 32 bytes generously covers the
    // frame header plus the chunk's fixed fields, so the estimate only
    // overshoots. An empty outbound queue always accepts one frame —
    // that keeps progress guaranteed whatever the configured mark.
    size_t estimate = 32;
    if (s.payload_mode) {
      for (size_t i = 0; i < count; ++i) {
        estimate += s.payloads[s.q][s.offset[s.q] + i].size() + 4;
      }
    } else {
      estimate += count * 8;
    }
    if (options_.max_outbound_bytes > 0) {
      const size_t outbound =
          conn.outbound_bytes.load(std::memory_order_acquire);
      if (outbound > 0 &&
          outbound + estimate > options_.max_outbound_bytes) {
        return EmitResult::kPark;
      }
    }
    bool ok = false;
    if (s.payload_mode) {
      SearchPayloadResult result;
      result.query_id = s.query_ids[s.q];
      const auto first =
          s.payloads[s.q].begin() + static_cast<long>(s.offset[s.q]);
      result.payloads.assign(std::make_move_iterator(first),
                             std::make_move_iterator(
                                 first + static_cast<long>(count)));
      ok = EmitFrame(conn, FrameType::kSearchPayload, result.Encode(),
                     "payload chunk exceeds frame limit");
    } else {
      SearchResult result;
      result.query_id = s.query_ids[s.q];
      const auto first = s.ids[s.q].begin() + static_cast<long>(s.offset[s.q]);
      result.ids.assign(first, first + static_cast<long>(count));
      ok = EmitFrame(conn, FrameType::kSearchResult, result.Encode(),
                     "result chunk exceeds frame limit");
    }
    if (!ok) return EmitResult::kAbort;
    s.offset[s.q] += count;
    s.round_emitted = true;
    // Reclaim the emitted prefix: a stream parked behind a slow reader
    // must not keep already-framed results resident on top of the
    // bounded outbound queue.
    if (s.offset[s.q] >= std::max<size_t>(4 * cap, size_t{4096})) {
      if (s.payload_mode) {
        std::vector<Bytes>& v = s.payloads[s.q];
        v.erase(v.begin(), v.begin() + static_cast<long>(s.offset[s.q]));
      } else {
        std::vector<uint64_t>& v = s.ids[s.q];
        v.erase(v.begin(), v.begin() + static_cast<long>(s.offset[s.q]));
      }
      s.offset[s.q] = 0;
    }
    ++s.q;
  }
}

}  // namespace rsse::server
