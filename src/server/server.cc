#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

#include "common/env.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "dprf/ggm_dprf.h"
#include "sse/keyword_keys.h"

namespace rsse::server {

namespace {

/// Input buffer compaction threshold: parsed-prefix bytes kept around
/// before the buffer is shifted down.
constexpr size_t kCompactThreshold = 1 << 20;

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " +
                          std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Dedupe key of a delegated GGM node: level byte followed by the seed.
using NodeKey = std::array<uint8_t, 1 + kLabelBytes>;

NodeKey KeyOf(const WireToken& t) {
  NodeKey key;
  key[0] = t.level;
  std::memcpy(key.data() + 1, t.seed.data(), kLabelBytes);
  return key;
}

/// Round-robin chunk scheduler shared by the id and payload result
/// streams: every query gets a first frame (possibly empty, so the
/// client learns about empty results), then capped chunks alternate
/// across queries until all are drained. `emit(q, first, count)` encodes
/// and appends one frame for `count` elements of query `q` starting at
/// `first`; a false return aborts the stream.
template <typename Emit>
bool StreamChunksInterleaved(const std::vector<size_t>& totals, size_t cap,
                             Emit&& emit) {
  std::vector<size_t> offset(totals.size(), 0);
  for (size_t round = 0;; ++round) {
    bool emitted = false;
    for (size_t q = 0; q < totals.size(); ++q) {
      const size_t remaining = totals[q] - offset[q];
      if (round > 0 && remaining == 0) continue;
      const size_t chunk = std::min(remaining, cap);
      if (!emit(q, offset[q], chunk)) return false;
      offset[q] += chunk;
      emitted = true;
    }
    if (!emitted) return true;
  }
}

}  // namespace

EmmServer::EmmServer(const ServerOptions& options) : options_(options) {
  // The primary slot exists from the start so the Update path can
  // populate a store before any Setup arrives.
  HostedStore& primary = stores_[rsse::kPrimaryStore];
  primary.kind = rsse::StoreKind::kEmm;
  primary.emm = shard::ShardedEmm::WithShards(options.shards);
}

EmmServer::~EmmServer() {
  CloseAll();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fds_[0] >= 0) close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) close(wake_fds_[1]);
}

Status EmmServer::Host(const Bytes& index_blob) {
  // Resolve the worker count here so the documented RSSE_SEARCH_THREADS
  // fallback governs the load too (Deserialize's own 0-fallback is the
  // builder-side RSSE_BUILD_THREADS).
  const int threads =
      ResolveThreadCount(options_.search_threads, "RSSE_SEARCH_THREADS");
  Result<shard::ShardedEmm> store = shard::ShardedEmm::Deserialize(
      index_blob, threads, options_.load_shards);
  if (!store.ok()) return store.status();
  std::unique_lock lock(store_mutex_);
  HostedStore& primary = stores_[rsse::kPrimaryStore];
  primary.kind = rsse::StoreKind::kEmm;
  primary.emm = std::move(store).value();
  primary.gate.reset();
  primary.tree.reset();
  hosted_ = true;
  return Status::Ok();
}

size_t EmmServer::EntryCount() const {
  std::shared_lock lock(store_mutex_);
  auto it = stores_.find(rsse::kPrimaryStore);
  return it == stores_.end() ? 0 : it->second.emm.EntryCount();
}

Status EmmServer::Listen() {
  if (listen_fd_ >= 0) return Status::FailedPrecondition("already listening");
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bind_address must be numeric IPv4");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (listen(listen_fd_, SOMAXCONN) != 0) return Errno("listen");
  if (!SetNonBlocking(listen_fd_)) return Errno("fcntl(listen)");
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (pipe(wake_fds_) != 0) return Errno("pipe");
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);
  return Status::Ok();
}

void EmmServer::Shutdown() {
  stop_.store(true, std::memory_order_relaxed);
  if (wake_fds_[1] >= 0) {
    const uint8_t b = 0;
    [[maybe_unused]] ssize_t n = write(wake_fds_[1], &b, 1);
  }
}

void EmmServer::CloseAll() {
  for (Connection& c : conns_) {
    if (c.fd >= 0) close(c.fd);
  }
  conns_.clear();
}

Status EmmServer::Serve() {
  if (listen_fd_ < 0) return Status::FailedPrecondition("Listen() not called");
  std::vector<pollfd> fds;
  while (!stop_.load(std::memory_order_relaxed)) {
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_fds_[0], POLLIN, 0});
    for (const Connection& c : conns_) {
      // A closing connection only flushes: registering POLLIN for it
      // would level-trigger forever on unread input and spin the loop.
      short events = c.closing ? 0 : POLLIN;
      if (c.out.size() > c.out_offset) events |= POLLOUT;
      fds.push_back({c.fd, events, 0});
    }
    const int rc = poll(fds.data(), fds.size(), /*timeout_ms=*/-1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if ((fds[1].revents & POLLIN) != 0) {
      uint8_t drain[64];
      while (read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
    }
    // fds[2 + i] maps to conns_[i] only for the connections that existed
    // when the pollfd set was built; snapshot that count before accepting
    // (AcceptPending grows conns_ past it).
    const size_t polled = conns_.size();
    if ((fds[0].revents & POLLIN) != 0) AcceptPending();
    // Walk connections back to front so drops do not disturb the mapping
    // between fds[2 + i] and conns_[i].
    for (size_t i = polled; i-- > 0;) {
      const short revents = fds[2 + i].revents;
      if (revents == 0) continue;
      Connection& c = conns_[i];
      bool alive = true;
      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) alive = false;
      if (alive && (revents & POLLIN) != 0) alive = ReadPending(c);
      if (alive && (revents & POLLOUT) != 0) alive = WritePending(c);
      if (!alive) {
        close(c.fd);
        conns_.erase(conns_.begin() + static_cast<long>(i));
      }
    }
  }
  CloseAll();
  return Status::Ok();
}

void EmmServer::AcceptPending() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
          errno == ECONNABORTED) {
        return;  // drained / transient: back to poll
      }
      // Persistent failure (EMFILE/ENFILE, ...): the listen socket stays
      // readable, so returning immediately would spin the poll loop at
      // 100% CPU. Back off briefly; existing connections resume after.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      return;
    }
    if (!SetNonBlocking(fd)) {
      close(fd);
      continue;
    }
    Connection c;
    c.fd = fd;
    conns_.push_back(std::move(c));
  }
}

bool EmmServer::ReadPending(Connection& conn) {
  // A closing connection only flushes; re-parsing would re-handle the
  // same malformed prefix and emit duplicate Error frames.
  if (conn.closing) return WritePending(conn);
  uint8_t chunk[64 * 1024];
  // Read and parse alternately: handling complete frames between recv
  // calls keeps conn.in bounded by one in-flight frame (plus a chunk)
  // even against a sender that never lets the socket go dry, instead of
  // buffering the whole stream before the first parse.
  for (;;) {
    const ssize_t n = recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    conn.in.insert(conn.in.end(), chunk, chunk + n);
    for (;;) {
      Frame frame;
      std::string error;
      const FrameParse parse =
          DecodeFrame(conn.in, conn.in_offset, frame, &error);
      if (parse == FrameParse::kNeedMore) break;
      if (parse == FrameParse::kMalformed) {
        SendError(conn, "malformed frame: " + error);
        conn.closing = true;
        break;
      }
      HandleFrame(conn, frame);
      if (conn.closing) break;
    }
    if (conn.closing) break;
    if (conn.in_offset >= kCompactThreshold ||
        conn.in_offset == conn.in.size()) {
      conn.in.erase(conn.in.begin(),
                    conn.in.begin() + static_cast<long>(conn.in_offset));
      conn.in_offset = 0;
    }
  }
  // Try to flush immediately; otherwise POLLOUT takes over.
  return WritePending(conn);
}

bool EmmServer::WritePending(Connection& conn) {
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n =
        send(conn.fd, conn.out.data() + conn.out_offset,
             conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
  conn.out.clear();
  conn.out_offset = 0;
  return !conn.closing;
}

void EmmServer::SendError(Connection& conn, const std::string& message) {
  ErrorResponse resp;
  resp.message = message;
  const Bytes payload = resp.Encode();
  if (!EncodeFrame(FrameType::kError, payload, conn.out)) {
    conn.closing = true;  // cannot even frame the error: drop the peer
  }
}

void EmmServer::HandleFrame(Connection& conn, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kSetupReq:
      HandleSetup(conn, frame.payload);
      return;
    case FrameType::kSetupStoreReq:
      HandleSetupStore(conn, frame.payload);
      return;
    case FrameType::kSearchBatchReq:
      HandleSearchBatch(conn, frame.payload);
      return;
    case FrameType::kSearchKeywordReq:
      HandleSearchKeyword(conn, frame.payload);
      return;
    case FrameType::kUpdateReq:
      HandleUpdate(conn, frame.payload);
      return;
    case FrameType::kStatsReq:
      HandleStats(conn);
      return;
    default:
      // Response-only types arriving at the server are a protocol breach.
      SendError(conn, "unexpected frame type at server");
      conn.closing = true;
      return;
  }
}

void EmmServer::HandleSetup(Connection& conn, const Bytes& payload) {
  Result<SetupRequest> req = SetupRequest::Decode(payload);
  if (!req.ok()) {
    SendError(conn, req.status().message());
    return;
  }
  Status hosted = Host(req->index_blob);
  if (!hosted.ok()) {
    SendError(conn, hosted.message());
    return;
  }
  SetupResponse resp;
  {
    std::shared_lock lock(store_mutex_);
    const HostedStore& primary = stores_.at(rsse::kPrimaryStore);
    resp.shards = static_cast<uint32_t>(primary.emm.shard_count());
    resp.entries = primary.emm.EntryCount();
  }
  const Bytes out = resp.Encode();
  if (!EncodeFrame(FrameType::kSetupResp, out, conn.out)) {
    SendError(conn, "setup response exceeds frame limit");
  }
}

void EmmServer::HandleSetupStore(Connection& conn, const Bytes& payload) {
  Result<SetupStoreRequest> req = SetupStoreRequest::Decode(payload);
  if (!req.ok()) {
    SendError(conn, req.status().message());
    return;
  }
  // Slot ids are capped so a hostile client cannot grow the store table
  // without bound by cycling distinct ids.
  if (req->store_id > options_.max_store_id) {
    SendError(conn, "store id exceeds the server's slot limit");
    return;
  }
  HostedStore incoming;
  incoming.kind = static_cast<rsse::StoreKind>(req->kind);
  SetupResponse resp;
  if (req->kind == static_cast<uint8_t>(rsse::StoreKind::kEmm)) {
    const int threads =
        ResolveThreadCount(options_.search_threads, "RSSE_SEARCH_THREADS");
    Result<shard::ShardedEmm> store = shard::ShardedEmm::Deserialize(
        req->index_blob, threads, options_.load_shards);
    if (!store.ok()) {
      SendError(conn, store.status().message());
      return;
    }
    incoming.emm = std::move(store).value();
    if (!req->gate_blob.empty()) {
      Result<rsse::BloomLabelGate> gate =
          rsse::BloomLabelGate::Deserialize(req->gate_blob);
      if (!gate.ok()) {
        SendError(conn, gate.status().message());
        return;
      }
      incoming.gate = std::make_unique<rsse::BloomLabelGate>(
          std::move(gate).value());
    }
    resp.shards = static_cast<uint32_t>(incoming.emm.shard_count());
    resp.entries = incoming.emm.EntryCount();
  } else if (req->kind ==
             static_cast<uint8_t>(rsse::StoreKind::kFilterTree)) {
    if (!req->gate_blob.empty()) {
      SendError(conn, "filter-tree stores take no bloom gate");
      return;
    }
    Result<pb::FilterTreeIndex> tree =
        pb::FilterTreeIndex::Deserialize(req->index_blob);
    if (!tree.ok()) {
      SendError(conn, tree.status().message());
      return;
    }
    incoming.tree =
        std::make_unique<pb::FilterTreeIndex>(std::move(tree).value());
    resp.shards = 0;
    resp.entries = incoming.tree->LeafCount();
  } else {
    SendError(conn, "unknown store kind");
    return;
  }
  {
    std::unique_lock lock(store_mutex_);
    stores_[req->store_id] = std::move(incoming);
    hosted_ = true;
  }
  const Bytes out = resp.Encode();
  if (!EncodeFrame(FrameType::kSetupResp, out, conn.out)) {
    SendError(conn, "setup response exceeds frame limit");
  }
}

bool EmmServer::StreamIdResults(
    Connection& conn, const std::vector<uint32_t>& query_ids,
    const std::vector<std::vector<uint64_t>>& ids) {
  std::vector<size_t> totals(ids.size());
  for (size_t q = 0; q < ids.size(); ++q) totals[q] = ids[q].size();
  return StreamChunksInterleaved(
      totals, std::max<size_t>(options_.max_ids_per_result_frame, 1),
      [&](size_t q, size_t first, size_t count) {
        SearchResult result;
        result.query_id = query_ids[q];
        result.ids.assign(
            ids[q].begin() + static_cast<long>(first),
            ids[q].begin() + static_cast<long>(first + count));
        if (!EncodeFrame(FrameType::kSearchResult, result.Encode(),
                         conn.out)) {
          SendError(conn, "result chunk exceeds frame limit");
          return false;
        }
        return true;
      });
}

bool EmmServer::StreamPayloadResults(
    Connection& conn, const std::vector<uint32_t>& query_ids,
    std::vector<std::vector<Bytes>>& payloads) {
  std::vector<size_t> totals(payloads.size());
  for (size_t q = 0; q < payloads.size(); ++q) totals[q] = payloads[q].size();
  return StreamChunksInterleaved(
      totals, std::max<size_t>(options_.max_payloads_per_result_frame, 1),
      [&](size_t q, size_t first, size_t count) {
        SearchPayloadResult result;
        result.query_id = query_ids[q];
        result.payloads.assign(
            std::make_move_iterator(payloads[q].begin() +
                                    static_cast<long>(first)),
            std::make_move_iterator(payloads[q].begin() +
                                    static_cast<long>(first + count)));
        if (!EncodeFrame(FrameType::kSearchPayload, result.Encode(),
                         conn.out)) {
          SendError(conn, "payload chunk exceeds frame limit");
          return false;
        }
        return true;
      });
}

void EmmServer::HandleSearchBatch(Connection& conn, const Bytes& payload) {
  Result<SearchBatchRequest> req = SearchBatchRequest::Decode(payload);
  if (!req.ok()) {
    SendError(conn, req.status().message());
    return;
  }
  // Searches hold the store lock shared: an Update or Setup racing this
  // batch serializes against it instead of mutating the store mid-probe.
  std::shared_lock lock(store_mutex_);
  if (!hosted_) {
    SendError(conn, "no index hosted (send Setup first)");
    return;
  }
  auto slot = stores_.find(rsse::kPrimaryStore);
  if (slot == stores_.end() ||
      slot->second.kind != rsse::StoreKind::kEmm) {
    SendError(conn, "primary store is not an encrypted dictionary");
    return;
  }
  const HostedStore& store = slot->second;

  WallTimer timer;

  // Dedupe covering nodes across every query of the batch: queries over
  // overlapping ranges share dyadic nodes, and each distinct GGM subtree
  // is expanded and probed exactly once.
  std::map<NodeKey, size_t> unique_index;
  std::vector<const WireToken*> unique_tokens;
  std::vector<std::vector<size_t>> query_token_refs(req->queries.size());
  uint64_t tokens_received = 0;
  for (size_t q = 0; q < req->queries.size(); ++q) {
    for (const WireToken& t : req->queries[q].tokens) {
      if (t.level > options_.max_token_level) {
        SendError(conn, "token level exceeds the server's expansion limit");
        return;
      }
      ++tokens_received;
      auto [it, inserted] =
          unique_index.try_emplace(KeyOf(t), unique_tokens.size());
      if (inserted) unique_tokens.push_back(&t);
      query_token_refs[q].push_back(it->second);
    }
  }

  // Expand + probe each distinct subtree once, sharded across workers
  // (same strided layout as the in-process LocalBackend search).
  const int threads = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(
          ResolveThreadCount(options_.search_threads, "RSSE_SEARCH_THREADS")),
      std::max<size_t>(unique_tokens.size(), 1)));
  std::vector<std::vector<uint64_t>> unique_ids(unique_tokens.size());
  std::vector<uint64_t> leaves_per_worker(static_cast<size_t>(threads), 0);
  std::vector<sse::SearchStats> stats_per_worker(
      static_cast<size_t>(threads));
  auto worker = [&](int t) {
    std::vector<Label> leaves;
    sse::KeywordKeys keys;
    for (size_t i = static_cast<size_t>(t); i < unique_tokens.size();
         i += static_cast<size_t>(threads)) {
      GgmDprf::Token token;
      token.level = unique_tokens[i]->level;
      token.seed.assign(unique_tokens[i]->seed.begin(),
                        unique_tokens[i]->seed.end());
      if (!GgmDprf::ExpandInto(token, leaves)) continue;
      leaves_per_worker[static_cast<size_t>(t)] += leaves.size();
      for (const Label& leaf : leaves) {
        sse::KeysFromSharedSecretInto(ConstByteSpan(leaf.data(), leaf.size()),
                                      keys);
        for (const Bytes& payload_bytes :
             store.emm.Search(keys, store.gate.get(),
                              &stats_per_worker[static_cast<size_t>(t)])) {
          if (auto id = sse::DecodeIdPayload(payload_bytes); id.has_value()) {
            unique_ids[i].push_back(*id);
          }
        }
      }
    }
  };
  RunWorkers(threads, worker);

  // Fan shared expansions back out to every subscriber, then stream the
  // per-query ids in capped chunks interleaved across query ids.
  uint64_t leaves_searched = 0;
  for (uint64_t n : leaves_per_worker) leaves_searched += n;
  uint64_t skipped_decrypts = 0;
  for (const sse::SearchStats& s : stats_per_worker) {
    skipped_decrypts += s.skipped_decrypts;
  }
  std::vector<uint32_t> query_ids(req->queries.size());
  std::vector<std::vector<uint64_t>> per_query(req->queries.size());
  for (size_t q = 0; q < req->queries.size(); ++q) {
    query_ids[q] = req->queries[q].query_id;
    for (size_t idx : query_token_refs[q]) {
      per_query[q].insert(per_query[q].end(), unique_ids[idx].begin(),
                          unique_ids[idx].end());
    }
  }
  if (!StreamIdResults(conn, query_ids, per_query)) return;

  SearchDone done;
  done.query_count = static_cast<uint32_t>(req->queries.size());
  done.tokens_received = tokens_received;
  done.unique_nodes_expanded = unique_tokens.size();
  done.leaves_searched = leaves_searched;
  done.search_nanos = timer.ElapsedNanos();
  done.skipped_decrypts = skipped_decrypts;
  const Bytes out = done.Encode();
  if (!EncodeFrame(FrameType::kSearchDone, out, conn.out)) {
    SendError(conn, "search done frame failed to encode");
    return;
  }

  stats_.batches_served += 1;
  stats_.queries_served += req->queries.size();
  stats_.tokens_received += tokens_received;
  stats_.nodes_deduped += tokens_received - unique_tokens.size();
}

void EmmServer::HandleSearchKeyword(Connection& conn, const Bytes& payload) {
  Result<SearchKeywordRequest> req = SearchKeywordRequest::Decode(payload);
  if (!req.ok()) {
    SendError(conn, req.status().message());
    return;
  }
  // The keyword-path equivalent of max_token_level: bound the total work
  // and allocation one hostile frame can demand before touching a store.
  uint64_t tokens_received = 0;
  for (const SearchKeywordRequest::Query& q : req->queries) {
    tokens_received += q.tokens.size();
  }
  if (tokens_received > options_.max_keyword_tokens) {
    SendError(conn, "keyword token batch exceeds the server's limit");
    return;
  }

  std::shared_lock lock(store_mutex_);
  if (!hosted_) {
    SendError(conn, "no index hosted (send Setup first)");
    return;
  }
  auto slot = stores_.find(req->store_id);
  if (slot == stores_.end()) {
    SendError(conn, "no store hosted at the requested slot");
    return;
  }
  const HostedStore& store = slot->second;

  WallTimer timer;
  std::vector<uint32_t> query_ids(req->queries.size());
  std::vector<std::vector<Bytes>> per_query(req->queries.size());
  uint64_t skipped_decrypts = 0;

  if (store.kind == rsse::StoreKind::kFilterTree) {
    for (size_t q = 0; q < req->queries.size(); ++q) {
      query_ids[q] = req->queries[q].query_id;
      std::vector<Bytes> trapdoors;
      trapdoors.reserve(req->queries[q].tokens.size());
      for (const WireKeywordToken& t : req->queries[q].tokens) {
        if (t.kind != 1) {
          SendError(conn, "filter-tree stores resolve opaque trapdoors only");
          return;
        }
        trapdoors.push_back(t.a);
      }
      for (uint64_t id : store.tree->Search(trapdoors)) {
        per_query[q].push_back(sse::EncodeIdPayload(id));
      }
    }
  } else {
    // Flatten the batch's (query, token) pairs and stride them across the
    // search workers; per-pair hit lists keep the reassembly ordered.
    struct Probe {
      size_t query = 0;
      const WireKeywordToken* token = nullptr;
    };
    std::vector<Probe> probes;
    probes.reserve(static_cast<size_t>(tokens_received));
    for (size_t q = 0; q < req->queries.size(); ++q) {
      query_ids[q] = req->queries[q].query_id;
      for (const WireKeywordToken& t : req->queries[q].tokens) {
        if (t.kind != 0) {
          SendError(conn,
                    "encrypted dictionaries resolve keyword tokens only");
          return;
        }
        probes.push_back(Probe{q, &t});
      }
    }
    const int threads = static_cast<int>(std::min<size_t>(
        static_cast<size_t>(ResolveThreadCount(options_.search_threads,
                                               "RSSE_SEARCH_THREADS")),
        std::max<size_t>(probes.size(), 1)));
    std::vector<std::vector<Bytes>> per_probe(probes.size());
    std::vector<sse::SearchStats> stats_per_worker(
        static_cast<size_t>(threads));
    auto worker = [&](int t) {
      sse::KeywordKeys keys;
      for (size_t i = static_cast<size_t>(t); i < probes.size();
           i += static_cast<size_t>(threads)) {
        keys.label_key = probes[i].token->a;
        keys.value_key = probes[i].token->b;
        per_probe[i] =
            store.emm.Search(keys, store.gate.get(),
                             &stats_per_worker[static_cast<size_t>(t)]);
      }
    };
    RunWorkers(threads, worker);
    for (size_t i = 0; i < probes.size(); ++i) {
      for (Bytes& hit : per_probe[i]) {
        per_query[probes[i].query].push_back(std::move(hit));
      }
    }
    for (const sse::SearchStats& s : stats_per_worker) {
      skipped_decrypts += s.skipped_decrypts;
    }
  }

  if (!StreamPayloadResults(conn, query_ids, per_query)) return;

  SearchDone done;
  done.query_count = static_cast<uint32_t>(req->queries.size());
  done.tokens_received = tokens_received;
  done.search_nanos = timer.ElapsedNanos();
  done.skipped_decrypts = skipped_decrypts;
  const Bytes out = done.Encode();
  if (!EncodeFrame(FrameType::kSearchDone, out, conn.out)) {
    SendError(conn, "search done frame failed to encode");
    return;
  }

  stats_.batches_served += 1;
  stats_.queries_served += req->queries.size();
  stats_.tokens_received += tokens_received;
}

void EmmServer::HandleUpdate(Connection& conn, const Bytes& payload) {
  Result<UpdateRequest> req = UpdateRequest::Decode(payload);
  if (!req.ok()) {
    SendError(conn, req.status().message());
    return;
  }
  UpdateResponse resp;
  {
    // Updates mutate the store table: exclusive lock, so a racing search
    // sees the dictionary entirely before or entirely after this batch.
    std::unique_lock lock(store_mutex_);
    HostedStore& primary = stores_[rsse::kPrimaryStore];
    if (primary.kind != rsse::StoreKind::kEmm) {
      SendError(conn, "primary store is not an encrypted dictionary");
      return;
    }
    // A shipped Bloom gate was built over the setup-time labels only;
    // keeping it would silently skip-decrypt (drop) every updated entry.
    // Correctness wins: drop the gate, the owner re-ships one with the
    // next SetupStore if desired.
    primary.gate.reset();
    for (const auto& [label, value] : req->entries) {
      primary.emm.Insert(label, ConstByteSpan(value.data(), value.size()));
    }
    hosted_ = true;
    resp.entries = primary.emm.EntryCount();
  }
  const Bytes out = resp.Encode();
  if (!EncodeFrame(FrameType::kUpdateResp, out, conn.out)) {
    SendError(conn, "update response exceeds frame limit");
  }
}

void EmmServer::HandleStats(Connection& conn) {
  StatsResponse resp;
  {
    std::shared_lock lock(store_mutex_);
    const auto it = stores_.find(rsse::kPrimaryStore);
    if (it != stores_.end()) {
      const HostedStore& primary = it->second;
      if (primary.kind == rsse::StoreKind::kEmm) {
        resp.entries = primary.emm.EntryCount();
        resp.size_bytes = primary.emm.SizeBytes();
        resp.shards = static_cast<uint32_t>(primary.emm.shard_count());
      } else if (primary.tree != nullptr) {
        resp.entries = primary.tree->LeafCount();
        resp.size_bytes = primary.tree->SizeBytes();
      }
    }
  }
  resp.batches_served = stats_.batches_served;
  resp.queries_served = stats_.queries_served;
  resp.tokens_received = stats_.tokens_received;
  resp.nodes_deduped = stats_.nodes_deduped;
  const Bytes out = resp.Encode();
  if (!EncodeFrame(FrameType::kStatsResp, out, conn.out)) {
    SendError(conn, "stats response exceeds frame limit");
  }
}

}  // namespace rsse::server
