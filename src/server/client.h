#ifndef RSSE_SERVER_CLIENT_H_
#define RSSE_SERVER_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "dprf/ggm_dprf.h"
#include "server/backoff.h"
#include "server/wire.h"

namespace rsse::server {

/// Tunables for the client's failure handling. The defaults retry
/// idempotent requests (Setup*/Search*/Stats) over transient transport
/// failures — connection reset, peer close, recv timeout, a draining
/// server — reconnecting with jittered exponential backoff between
/// attempts. Update is never retried: a batch whose response was lost may
/// have been applied, and replaying it would double-insert.
struct ClientOptions {
  /// Bounds each response wait (0 disables the socket timeout).
  int recv_timeout_seconds = 30;
  /// Wall-clock budget for one logical request across every retry and
  /// backoff sleep (0 = no deadline, only `backoff.max_retries` bounds).
  int64_t request_deadline_ms = 0;
  /// Retry idempotent requests over kUnavailable failures.
  bool retry_idempotent = true;
  BackoffPolicy backoff;
  /// Seed for the jitter PRNG (deterministic per client).
  uint64_t backoff_seed = 1;
};

/// Blocking client for `rsse_serverd`: frames requests onto one TCP
/// connection and parses the streamed responses. One instance per
/// connection; not thread-safe.
///
/// Transient transport failures surface as StatusCode::kUnavailable;
/// everything else (protocol breaches, server-reported errors) keeps its
/// non-retryable code.
class EmmClient {
 public:
  EmmClient() = default;
  /// `clock` (optional) overrides wall-clock reads and backoff sleeps —
  /// tests inject a fake to run retry schedules instantly.
  explicit EmmClient(const ClientOptions& options, Clock* clock = nullptr);
  ~EmmClient();

  EmmClient(const EmmClient&) = delete;
  EmmClient& operator=(const EmmClient&) = delete;

  /// Connects to `host:port` (numeric IPv4). `recv_timeout_seconds` bounds
  /// each response wait (0 disables the timeout). The endpoint is recorded
  /// even when the attempt fails, so a later idempotent request can
  /// reconnect and retry.
  Status Connect(const std::string& host, uint16_t port,
                 int recv_timeout_seconds);
  /// Connects using the options' recv timeout.
  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Ships a serialized ShardedEmm index for the server to host at the
  /// primary store slot (the legacy single-store frame: no store id, no
  /// gate; every frame still carries the current wire version).
  Result<SetupResponse> Setup(const Bytes& index_blob);

  /// Ships one store slot of a scheme's ServerSetup (index blob, store
  /// kind, optional Bloom gate). See `InstallServerSetup` in
  /// remote_backend.h for the whole-scheme helper.
  Result<SetupResponse> SetupStore(const SetupStoreRequest& req);

  /// One range query of a batch: caller-chosen id plus the delegated
  /// covering tokens (`ConstantScheme::Delegate` output).
  struct BatchQuery {
    uint32_t query_id = 0;
    std::vector<GgmDprf::Token> tokens;
  };

  /// Result of one batched round trip: ids per query id plus the server's
  /// dedupe/expansion report.
  struct BatchOutcome {
    std::map<uint32_t, std::vector<uint64_t>> ids;
    SearchDone done;
  };

  /// Sends every query in one SearchBatch frame and reassembles the
  /// streamed per-query result chunks until the terminating SearchDone.
  Result<BatchOutcome> SearchBatch(const std::vector<BatchQuery>& queries);

  /// Result of one keyword-token batch: decrypted payloads per query id
  /// (reassembled from interleaved SearchPayload chunks) plus the server's
  /// report.
  struct KeywordOutcome {
    std::map<uint32_t, std::vector<Bytes>> payloads;
    SearchDone done;
  };

  /// Sends one SearchKeyword batch (keyword tokens / opaque trapdoors
  /// against one store slot) and collects the streamed payload chunks
  /// until SearchDone.
  Result<KeywordOutcome> SearchKeyword(const SearchKeywordRequest& req);

  /// Inserts pre-encrypted (label, ciphertext) entries. Never retried
  /// (not idempotent); a kUnavailable failure means the batch may or may
  /// not have been applied and the caller must reconcile via Stats.
  Result<UpdateResponse> Update(
      const std::vector<std::pair<Label, Bytes>>& entries);

  Result<StatsResponse> Stats();

  /// Bytes buffered but not yet parsed (diagnostics/tests).
  size_t BufferedBytes() const { return in_.size() - in_offset_; }
  /// High-water mark of the receive buffer over the connection's life —
  /// the number the RecvFrame compaction keeps bounded.
  size_t PeakRecvBufferBytes() const { return peak_recv_buffer_bytes_; }
  /// Reconnections performed by the retry machinery (diagnostics/tests).
  size_t ReconnectCount() const { return reconnect_count_; }

 private:
  /// One dial attempt against the recorded endpoint.
  Status DialLocked();
  /// Sends one frame whose payload is the concatenation of `parts`,
  /// streaming each part straight from the caller's buffer — Setup ships
  /// the (potentially huge) index blob without ever copying it.
  Status SendFrame(FrameType type, std::initializer_list<ConstByteSpan> parts);
  Status WriteAll(const uint8_t* data, size_t len);
  /// Blocks until one full frame arrives (or the peer closes/times out).
  Result<Frame> RecvFrame();
  /// Runs `attempt` with reconnect + jittered backoff on kUnavailable
  /// (when retries are enabled); anything else passes straight through.
  template <typename T>
  Result<T> RetryIdempotent(const std::function<Result<T>()>& attempt);

  ClientOptions options_;
  Clock* clock_ = Clock::Real();
  int fd_ = -1;
  /// Recorded by Connect for reconnects; empty until the first Connect.
  std::string host_;
  uint16_t port_ = 0;
  bool endpoint_known_ = false;
  Bytes in_;
  size_t in_offset_ = 0;
  size_t peak_recv_buffer_bytes_ = 0;
  size_t reconnect_count_ = 0;
};

}  // namespace rsse::server

#endif  // RSSE_SERVER_CLIENT_H_
