#include "server/persist.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>
#include <utility>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/mapped_file.h"

namespace rsse::server {

namespace {

/// "RSSESNP1", big-endian, as the snapshot file magic.
constexpr uint64_t kSnapshotMagic = 0x52535345534e5031ull;
/// Fixed snapshot bytes around the blobs: magic + kind + epoch +
/// index_len + gate_len before them, CRC32C after.
constexpr size_t kSnapshotHeaderBytes = 8 + 1 + 8 + 8 + 8;
constexpr size_t kSnapshotTrailerBytes = 4;

/// "RSSESNP2", big-endian: the mmap-native v2 container. One header page
/// (big-endian integers, like the rest of this file's formats):
///
///   [0]  u64 magic   [8]  u8 kind    [9]  u64 epoch
///   [17] u64 index_offset (== 4096)  [25] u64 index_len
///   [33] u64 gate_offset             [41] u64 gate_len
///   [49] u32 gate crc32c (0 when no gate)
///   [53] u32 header crc32c over [0, 53), rest of the page zero
///
/// then the index image at its page-aligned offset, zero-padded to the
/// next page, then the gate blob; file size == gate_offset + gate_len.
/// The header page and gate are all recovery reads (O(1) in the index
/// size); the index is validated by its own header + section checksums
/// when mapped or loaded.
constexpr uint64_t kSnapshotMagicV2 = 0x52535345534e5032ull;
constexpr size_t kSnapshotPageBytes = 4096;
constexpr size_t kSnapshotV2FieldBytes = 8 + 1 + 8 + 8 + 8 + 8 + 8 + 4;

size_t AlignSnapshotPage(size_t n) {
  return (n + kSnapshotPageBytes - 1) & ~(kSnapshotPageBytes - 1);
}
/// WAL record framing: [u32 len][u32 crc] then len bytes (epoch+payload).
constexpr size_t kWalRecordHeaderBytes = 8;
constexpr uint32_t kMaxWalRecordBytes = uint32_t{1} << 30;

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

int OpenRetry(const char* path, int flags, mode_t mode = 0) {
  int fd;
  do {
    fd = open(path, flags, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

Status FsyncRetry(int fd, const std::string& what) {
  int rc;
  do {
    rc = fsync(fd);
  } while (rc != 0 && errno == EINTR);
  return rc == 0 ? Status::Ok() : Errno(what);
}

/// Writes all of `data`, retrying short writes and EINTR. `failpoint_name`
/// hooks fault injection: kError fails before writing a byte, kShortWrite
/// writes half the buffer and then fails (a torn tail on disk).
Status WriteFull(int fd, const uint8_t* data, size_t len,
                 const char* failpoint_name) {
  const failpoint::Action fp = failpoint::Hit(failpoint_name);
  if (fp.kind == failpoint::ActionKind::kError) {
    return Status::Internal(std::string("injected write failure at ") +
                            failpoint_name);
  }
  bool fail_after_prefix = false;
  if (fp.kind == failpoint::ActionKind::kShortWrite) {
    len /= 2;
    fail_after_prefix = true;
  }
  size_t done = 0;
  while (done < len) {
    const ssize_t n = write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    done += static_cast<size_t>(n);
  }
  if (fail_after_prefix) {
    return Status::Internal(std::string("injected short write at ") +
                            failpoint_name);
  }
  return Status::Ok();
}

Result<Bytes> ReadWholeFile(const std::string& path) {
  const int fd = OpenRetry(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open " + path);
  Bytes out;
  uint8_t chunk[1 << 16];
  for (;;) {
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Errno("read " + path);
      close(fd);
      return s;
    }
    if (n == 0) break;
    out.insert(out.end(), chunk, chunk + n);
  }
  close(fd);
  return out;
}

/// Parses "store-<id>.<suffix>"; returns true and fills `id` on match.
bool ParseStoreFile(const char* name, const char* suffix, uint32_t& id) {
  static constexpr char kPrefix[] = "store-";
  if (std::strncmp(name, kPrefix, sizeof(kPrefix) - 1) != 0) return false;
  const char* at = name + sizeof(kPrefix) - 1;
  if (*at < '0' || *at > '9') return false;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(at, &end, 10);
  if (end == at || parsed > UINT32_MAX) return false;
  if (std::strcmp(end, suffix) != 0) return false;
  id = static_cast<uint32_t>(parsed);
  return true;
}

bool HasSuffix(const char* name, const char* suffix) {
  const size_t n = std::strlen(name);
  const size_t s = std::strlen(suffix);
  return n >= s && std::strcmp(name + n - s, suffix) == 0;
}

}  // namespace

StorePersistence::~StorePersistence() {
  // No thread may still be calling in, but the lock keeps the analysis
  // honest (and is free).
  MutexLock lock(mu_);
  for (auto& [id, fd] : wal_fds_) {
    if (fd >= 0) close(fd);
  }
  if (dir_fd_ >= 0) close(dir_fd_);
}

Result<std::unique_ptr<StorePersistence>> StorePersistence::Open(
    const std::string& dir) {
  if (dir.empty()) return Status::InvalidArgument("data dir must be named");
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Errno("mkdir " + dir);
  }
  const int dir_fd = OpenRetry(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd < 0) return Errno("open " + dir);
  auto persistence = std::unique_ptr<StorePersistence>(new StorePersistence());
  persistence->dir_ = dir;
  persistence->dir_fd_ = dir_fd;
  return persistence;
}

std::string StorePersistence::SnapshotPath(uint32_t store_id) const {
  return dir_ + "/store-" + std::to_string(store_id) + ".snap";
}

std::string StorePersistence::WalPath(uint32_t store_id) const {
  return dir_ + "/store-" + std::to_string(store_id) + ".wal";
}

Result<int> StorePersistence::WalFd(uint32_t store_id) {
  auto it = wal_fds_.find(store_id);
  if (it != wal_fds_.end() && it->second >= 0) return it->second;
  const std::string path = WalPath(store_id);
  const int fd = OpenRetry(path.c_str(),
                           O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open " + path);
  wal_fds_[store_id] = fd;
  return fd;
}

// ---------------------------------------------------------------------------
// WAL record codec.
// ---------------------------------------------------------------------------

void StorePersistence::EncodeWalRecord(uint64_t epoch, ConstByteSpan payload,
                                       Bytes& out) {
  const size_t body_at = out.size() + kWalRecordHeaderBytes;
  AppendUint32(out, static_cast<uint32_t>(8 + payload.size()));
  AppendUint32(out, 0);  // crc patched below, once the body is in place
  AppendUint64(out, epoch);
  out.insert(out.end(), payload.begin(), payload.end());
  const uint32_t crc = Crc32c(out.data() + body_at, out.size() - body_at);
  out[body_at - 4] = static_cast<uint8_t>(crc >> 24);
  out[body_at - 3] = static_cast<uint8_t>(crc >> 16);
  out[body_at - 2] = static_cast<uint8_t>(crc >> 8);
  out[body_at - 1] = static_cast<uint8_t>(crc);
}

size_t StorePersistence::DecodeWalRecords(const Bytes& buf,
                                          std::vector<WalRecord>& out) {
  size_t at = 0;
  while (buf.size() - at >= kWalRecordHeaderBytes) {
    const uint32_t len = ReadUint32(buf, at);
    if (len < 8 || len > kMaxWalRecordBytes) break;
    if (buf.size() - at - kWalRecordHeaderBytes < len) break;  // torn tail
    const uint32_t stored_crc = ReadUint32(buf, at + 4);
    const size_t body = at + kWalRecordHeaderBytes;
    if (Crc32c(buf.data() + body, len) != stored_crc) break;
    WalRecord record;
    record.epoch = ReadUint64(buf, body);
    record.payload.assign(buf.begin() + static_cast<long>(body + 8),
                          buf.begin() + static_cast<long>(body + len));
    out.push_back(std::move(record));
    at = body + len;
  }
  return at;
}

// ---------------------------------------------------------------------------
// Durable writes.
// ---------------------------------------------------------------------------

Status StorePersistence::PersistSnapshot(uint32_t store_id, uint64_t epoch,
                                         uint8_t kind,
                                         ConstByteSpan index_blob,
                                         ConstByteSpan gate_blob,
                                         SnapshotFormat format) {
  Bytes file;
  if (format == SnapshotFormat::kV2) {
    const size_t gate_offset =
        kSnapshotPageBytes + AlignSnapshotPage(index_blob.size());
    file.reserve(gate_offset + gate_blob.size());
    AppendUint64(file, kSnapshotMagicV2);
    AppendByte(file, kind);
    AppendUint64(file, epoch);
    AppendUint64(file, kSnapshotPageBytes);  // index_offset
    AppendUint64(file, index_blob.size());
    AppendUint64(file, gate_offset);
    AppendUint64(file, gate_blob.size());
    AppendUint32(file, gate_blob.empty() ? 0 : Crc32c(gate_blob));
    AppendUint32(file, Crc32c(file.data(), file.size()));
    file.resize(kSnapshotPageBytes, 0);
    file.insert(file.end(), index_blob.begin(), index_blob.end());
    file.resize(gate_offset, 0);
    file.insert(file.end(), gate_blob.begin(), gate_blob.end());
  } else {
    file.reserve(kSnapshotHeaderBytes + index_blob.size() + gate_blob.size() +
                 kSnapshotTrailerBytes);
    AppendUint64(file, kSnapshotMagic);
    AppendByte(file, kind);
    AppendUint64(file, epoch);
    AppendUint64(file, index_blob.size());
    AppendUint64(file, gate_blob.size());
    file.insert(file.end(), index_blob.begin(), index_blob.end());
    file.insert(file.end(), gate_blob.begin(), gate_blob.end());
    AppendUint32(file, Crc32c(file.data(), file.size()));
  }

  const std::string path = SnapshotPath(store_id);
  const std::string tmp = path + ".tmp";
  const int fd = OpenRetry(tmp.c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open " + tmp);
  Status written =
      WriteFull(fd, file.data(), file.size(), "persist_snapshot_write");
  if (written.ok()) {
    if (failpoint::Hit("persist_snapshot_fsync").kind ==
        failpoint::ActionKind::kError) {
      written = Status::Internal("injected fsync failure on snapshot");
    } else {
      written = FsyncRetry(fd, "fsync " + tmp);
    }
  }
  close(fd);
  if (!written.ok()) {
    unlink(tmp.c_str());
    return written;
  }
  if (failpoint::Hit("persist_snapshot_rename").kind ==
      failpoint::ActionKind::kError) {
    unlink(tmp.c_str());
    return Status::Internal("injected rename failure on snapshot");
  }
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    Status s = Errno("rename " + tmp);
    unlink(tmp.c_str());
    return s;
  }
  // Everything from the commit point on touches the poison set and the
  // fd cache; the slow pre-commit IO above ran unlocked.
  MutexLock lock(mu_);
  // The rename is the commit point: a recovery from here on loads the new
  // snapshot, so no failure below may be reported as a nack — the caller
  // would keep the old store and epoch in memory while a restart serves
  // the new file, and acked updates tagged with the stale epoch would be
  // skipped as superseded.
  //
  // The rename is only durable once the directory entry is: without this
  // fsync a crash can resurrect the old snapshot after the WAL was
  // truncated for the new one.
  Status dir_synced;
  if (failpoint::Hit("persist_dir_fsync").kind ==
      failpoint::ActionKind::kError) {
    dir_synced = Status::Internal("injected fsync failure on data dir");
  } else {
    dir_synced = FsyncRetry(dir_fd_, "fsync " + dir_);
  }
  if (!dir_synced.ok()) {
    // Which snapshot a crash would resurrect is now ambiguous, so no
    // update may be acked under either epoch: poison the slot's WAL until
    // a later snapshot commits cleanly.
    std::fprintf(stderr,
                 "rsse: data-dir fsync failed after snapshot rename "
                 "(store %u): %s; wal appends disabled until the next "
                 "snapshot\n",
                 store_id, dir_synced.message().c_str());
    poisoned_wals_.insert(store_id);
    return Status::Ok();
  }

  // The previous generation's WAL records are superseded; truncating here
  // is an optimization for an unpoisoned slot — their epoch no longer
  // matches, so a crash landing between rename and truncate just leaves
  // stale records for recovery to skip. For a poisoned slot the truncate
  // is what removes the possible torn tail and re-enables appends.
  bool wal_clean = false;
  Result<int> wal_fd = WalFd(store_id);
  if (wal_fd.ok()) {
    int rc;
    do {
      rc = ftruncate(*wal_fd, 0);
    } while (rc != 0 && errno == EINTR);
    wal_clean = rc == 0 && FsyncRetry(*wal_fd, "fsync wal").ok();
  }
  if (wal_clean) {
    poisoned_wals_.erase(store_id);
  } else if (poisoned_wals_.count(store_id) != 0) {
    std::fprintf(stderr,
                 "rsse: wal truncate failed for poisoned store %u; "
                 "appends stay disabled\n",
                 store_id);
  }
  return Status::Ok();
}

Status StorePersistence::AppendUpdate(uint32_t store_id, uint64_t epoch,
                                      ConstByteSpan payload) {
  MutexLock lock(mu_);
  if (poisoned_wals_.count(store_id) != 0) {
    return Status::Internal(
        "wal may end in an unremoved torn record; appends are refused "
        "until the next snapshot truncates it");
  }
  Result<int> fd = WalFd(store_id);
  if (!fd.ok()) return fd.status();
  struct stat st {};
  if (fstat(*fd, &st) != 0) return Errno("fstat " + WalPath(store_id));
  Bytes record;
  EncodeWalRecord(epoch, payload, record);
  Status appended =
      WriteFull(*fd, record.data(), record.size(), "persist_wal_append");
  if (appended.ok()) {
    if (failpoint::Hit("persist_wal_fsync").kind ==
        failpoint::ActionKind::kError) {
      appended = Status::Internal("injected fsync failure on wal");
    } else {
      appended = FsyncRetry(*fd, "fsync " + WalPath(store_id));
    }
  }
  if (appended.ok()) return Status::Ok();
  // The batch is about to be nacked, but its record is torn (short write)
  // or of unknown durability (failed fsync). Left in place it would sit
  // in front of every later acked append, and recovery — which stops at
  // the first bad record — would silently drop them all. Roll the log
  // back to its pre-append length; if that cannot be made durable, poison
  // the slot so no later append can be acked behind the garbage.
  bool rolled_back = failpoint::Hit("persist_wal_rollback").kind !=
                     failpoint::ActionKind::kError;
  if (rolled_back) {
    int rc;
    do {
      rc = ftruncate(*fd, st.st_size);
    } while (rc != 0 && errno == EINTR);
    rolled_back = rc == 0 && FsyncRetry(*fd, "fsync " + WalPath(store_id)).ok();
  }
  if (!rolled_back) poisoned_wals_.insert(store_id);
  return appended;
}

void StorePersistence::QuarantineSlot(uint32_t store_id) {
  MutexLock lock(mu_);
  QuarantineSlotLocked(store_id);
}

void StorePersistence::QuarantineSlotLocked(uint32_t store_id) {
  const std::string snap = SnapshotPath(store_id);
  rename(snap.c_str(), (snap + ".corrupt").c_str());
  // Drop any cached append fd first so the truncate below cannot race a
  // stale descriptor, then cut the whole log: it applied on top of the
  // quarantined base, so nothing in it is replayable.
  auto it = wal_fds_.find(store_id);
  if (it != wal_fds_.end()) {
    if (it->second >= 0) close(it->second);
    wal_fds_.erase(it);
  }
  const int fd =
      OpenRetry(WalPath(store_id).c_str(), O_WRONLY | O_TRUNC | O_CLOEXEC);
  if (fd >= 0) close(fd);
}

Status StorePersistence::Sync() {
  MutexLock lock(mu_);
  for (auto& [id, fd] : wal_fds_) {
    if (fd >= 0) RSSE_RETURN_IF_ERROR(FsyncRetry(fd, "fsync wal"));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Recovery.
// ---------------------------------------------------------------------------

Result<StorePersistence::RecoveryReport> StorePersistence::Recover() {
  RecoveryReport report;
  std::set<uint32_t> slots;
  std::vector<std::string> stray_tmp;
  {
    DIR* d = opendir(dir_.c_str());
    if (d == nullptr) return Errno("opendir " + dir_);
    while (dirent* entry = readdir(d)) {
      uint32_t id = 0;
      if (ParseStoreFile(entry->d_name, ".snap", id) ||
          ParseStoreFile(entry->d_name, ".wal", id)) {
        slots.insert(id);
      } else if (HasSuffix(entry->d_name, ".tmp")) {
        stray_tmp.push_back(dir_ + "/" + entry->d_name);
      }
    }
    closedir(d);
  }
  // A .tmp is a snapshot whose write never completed; the rename never
  // happened, so it holds nothing durable.
  for (const std::string& tmp : stray_tmp) unlink(tmp.c_str());

  for (uint32_t id : slots) {
    RecoveredStore store;
    store.store_id = id;
    const std::string snap_path = SnapshotPath(id);
    bool drop_wal = false;
    if (access(snap_path.c_str(), F_OK) == 0) {
      bool valid = false;
      // The first 8 bytes pick the container generation. v2 recovery is
      // O(1) in the index size: only the header page and the gate blob
      // are read; the index stays on disk for the server to map.
      struct stat st {};
      const uint64_t file_size =
          stat(snap_path.c_str(), &st) == 0
              ? static_cast<uint64_t>(st.st_size)
              : 0;
      uint64_t magic = 0;
      Bytes head;
      if (file_size >= kSnapshotPageBytes) {
        Result<Bytes> h = ReadFileRange(snap_path, 0, kSnapshotPageBytes);
        if (!h.ok()) return h.status();
        head = std::move(*h);
        magic = ReadUint64(head, 0);
      } else if (file_size >= 8) {
        Result<Bytes> h = ReadFileRange(snap_path, 0, 8);
        if (!h.ok()) return h.status();
        magic = ReadUint64(*h, 0);
      }
      if (magic == kSnapshotMagicV2 && head.size() == kSnapshotPageBytes) {
        const uint32_t stored_crc = ReadUint32(head, kSnapshotV2FieldBytes);
        valid = Crc32c(head.data(), kSnapshotV2FieldBytes) == stored_crc;
        if (valid) {
          const uint64_t index_offset = ReadUint64(head, 17);
          const uint64_t index_len = ReadUint64(head, 25);
          const uint64_t gate_offset = ReadUint64(head, 33);
          const uint64_t gate_len = ReadUint64(head, 41);
          valid = index_offset == kSnapshotPageBytes &&
                  index_len <= file_size - kSnapshotPageBytes &&
                  gate_offset ==
                      kSnapshotPageBytes + AlignSnapshotPage(index_len) &&
                  gate_offset <= file_size &&
                  gate_len == file_size - gate_offset;
          if (valid && gate_len > 0) {
            Result<Bytes> gate =
                ReadFileRange(snap_path, gate_offset, gate_len);
            if (!gate.ok()) return gate.status();
            valid = Crc32c(gate->data(), gate->size()) ==
                    ReadUint32(head, 49);
            if (valid) store.gate_blob = std::move(*gate);
          }
          if (valid) {
            store.has_snapshot = true;
            store.kind = head[8];
            store.epoch = ReadUint64(head, 9);
            store.format = static_cast<uint8_t>(SnapshotFormat::kV2);
            store.snapshot_path = snap_path;
            store.index_offset = index_offset;
            store.index_len = index_len;
          }
        }
      } else if (magic == kSnapshotMagic) {
        Result<Bytes> file = ReadWholeFile(snap_path);
        if (!file.ok()) return file.status();
        const Bytes& buf = *file;
        valid = buf.size() >= kSnapshotHeaderBytes + kSnapshotTrailerBytes;
        if (valid) {
          const uint32_t stored_crc = ReadUint32(buf, buf.size() - 4);
          valid = Crc32c(buf.data(), buf.size() - 4) == stored_crc;
        }
        if (valid) {
          const uint64_t index_len = ReadUint64(buf, 17);
          const uint64_t gate_len = ReadUint64(buf, 25);
          const uint64_t blob_bytes =
              buf.size() - kSnapshotHeaderBytes - kSnapshotTrailerBytes;
          valid = index_len <= blob_bytes && gate_len <= blob_bytes &&
                  index_len + gate_len == blob_bytes;
          if (valid) {
            store.has_snapshot = true;
            store.kind = buf[8];
            store.epoch = ReadUint64(buf, 9);
            store.format = static_cast<uint8_t>(SnapshotFormat::kV1);
            const auto index_begin =
                buf.begin() + static_cast<long>(kSnapshotHeaderBytes);
            store.index_blob.assign(
                index_begin, index_begin + static_cast<long>(index_len));
            store.gate_blob.assign(
                index_begin + static_cast<long>(index_len),
                index_begin + static_cast<long>(index_len + gate_len));
          }
        }
      }
      if (!valid) {
        // The slot's base index is gone; its WAL applies on top of that
        // base, so it is unreplayable too. Set the bad file aside (kept
        // for forensics, ignored by future recoveries) and restart the
        // slot empty rather than refusing to serve every other slot.
        ++report.corrupt_snapshots;
        QuarantineSlot(id);
        drop_wal = true;
      }
    }

    const std::string wal_path = WalPath(id);
    if (!drop_wal && access(wal_path.c_str(), F_OK) == 0) {
      Result<Bytes> file = ReadWholeFile(wal_path);
      if (!file.ok()) return file.status();
      std::vector<WalRecord> records;
      const size_t good_end = DecodeWalRecords(*file, records);
      if (good_end < file->size()) {
        report.wal_bytes_truncated += file->size() - good_end;
        const int fd =
            OpenRetry(wal_path.c_str(), O_WRONLY | O_CLOEXEC);
        if (fd < 0) return Errno("open " + wal_path);
        int rc;
        do {
          rc = ftruncate(fd, static_cast<off_t>(good_end));
        } while (rc != 0 && errno == EINTR);
        Status synced = rc == 0 ? FsyncRetry(fd, "fsync " + wal_path)
                                : Errno("ftruncate " + wal_path);
        close(fd);
        RSSE_RETURN_IF_ERROR(synced);
      }
      for (WalRecord& record : records) {
        if (record.epoch == store.epoch) {
          store.updates.push_back(std::move(record.payload));
        } else {
          ++report.stale_wal_records;
        }
      }
    }

    if (store.has_snapshot || !store.updates.empty()) {
      report.stores.push_back(std::move(store));
    }
  }
  return report;
}

}  // namespace rsse::server
