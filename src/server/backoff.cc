#include "server/backoff.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace rsse::server {

namespace {

class RealClock : public Clock {
 public:
  int64_t NowMillis() override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void SleepMillis(int64_t ms) override {
    if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
};

}  // namespace

Clock* Clock::Real() {
  static RealClock instance;
  return &instance;
}

Backoff::Backoff(const BackoffPolicy& policy, uint64_t seed)
    : policy_(policy),
      rng_state_(seed | 1),
      base_ms_(std::max(policy.initial_delay_ms, 1)) {}

int64_t Backoff::NextDelayMillis() {
  const double capped =
      std::min(base_ms_, static_cast<double>(
                             std::max(policy_.max_delay_ms, 1)));
  double delay = capped;
  if (policy_.jitter > 0) {
    // Top 53 bits of a 64-bit LCG step -> uniform double in [0, 1).
    rng_state_ = rng_state_ * 6364136223846793005ull + 1442695040888963407ull;
    const double u =
        static_cast<double>(rng_state_ >> 11) / 9007199254740992.0;
    delay = capped * (1.0 - policy_.jitter + 2.0 * policy_.jitter * u);
  }
  base_ms_ = capped * std::max(policy_.multiplier, 1.0);
  ++attempts_;
  return std::max<int64_t>(static_cast<int64_t>(delay), 1);
}

}  // namespace rsse::server
