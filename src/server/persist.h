#ifndef RSSE_SERVER_PERSIST_H_
#define RSSE_SERVER_PERSIST_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace rsse::server {

/// On-disk snapshot generation. v1 frames the slot's blobs with one
/// whole-file CRC32C — compact, but recovery must read and checksum the
/// entire file. v2 is the mmap-native container: one 4 KiB header page
/// (checksummed on its own) followed by the page-aligned ShardedEmm v2
/// store image and the gate blob, so recovery validates the header and
/// gate in O(1) reads and *maps* the index instead of loading it — the
/// index carries its own per-section CRC32Cs.
enum class SnapshotFormat : uint8_t { kV1 = 1, kV2 = 2 };

/// Crash-safe on-disk state for the server's store table (`--data-dir`).
/// Layout, one pair of files per hosted slot:
///
///   store-<id>.snap   checksummed snapshot of the slot's SetupStore blobs
///   store-<id>.wal    length-prefixed log of raw Update payloads
///
/// Snapshots are written tmp-file + fsync + atomic-rename + directory
/// fsync, so a crash mid-write leaves the previous snapshot intact. Every
/// snapshot carries an *epoch* (monotonic per slot), and every WAL record
/// is tagged with the epoch of the snapshot it applies on top of: recovery
/// replays only the records matching the recovered snapshot's epoch, so the
/// crash window between "snapshot renamed" and "stale WAL truncated" can
/// never replay an old generation's updates onto a new index. WAL records
/// are CRC32C-checksummed and the log self-truncates at the first torn or
/// corrupt record — the durable prefix survives, the torn tail is cut.
///
/// A failed append rolls its torn record back off the log immediately
/// (nacked batches leave no garbage behind which later acked appends
/// would land — recovery stops at the first bad record, so such appends
/// would be silently dropped). When the rollback itself cannot be made
/// durable the slot's WAL is *poisoned*: every further append is refused
/// until the next successful snapshot truncates the log.
///
/// Thread-safety: the mutable fd cache and poison set are guarded by an
/// internal mutex, so any one method is safe to call from any thread. The
/// server still serializes *semantically* dependent calls (snapshot vs.
/// append ordering for one slot) under its exclusive store lock — the
/// internal lock is uncontended there and exists so the invariants hold
/// by construction, not by caller convention.
class StorePersistence {
 public:
  ~StorePersistence();

  StorePersistence(const StorePersistence&) = delete;
  StorePersistence& operator=(const StorePersistence&) = delete;

  /// Opens (creating if needed) the data directory.
  static Result<std::unique_ptr<StorePersistence>> Open(
      const std::string& dir);

  const std::string& dir() const { return dir_; }

  /// One slot's durable state as read back at boot.
  struct RecoveredStore {
    uint32_t store_id = 0;
    bool has_snapshot = false;
    uint8_t kind = 0;
    /// Snapshot epoch (0 when the slot is WAL-only).
    uint64_t epoch = 0;
    /// Generation of the on-disk snapshot (raw SnapshotFormat; 1 when the
    /// slot is WAL-only).
    uint8_t format = 1;
    /// v1: the whole serialized index. v2: empty — the index stays on
    /// disk; map (or read) [index_offset, index_offset + index_len) of
    /// `snapshot_path` instead.
    Bytes index_blob;
    std::string snapshot_path;
    uint64_t index_offset = 0;
    uint64_t index_len = 0;
    Bytes gate_blob;
    /// WAL payloads of this epoch, in append order (raw UpdateRequest
    /// encodings, exactly as the wire delivered them).
    std::vector<Bytes> updates;
  };

  struct RecoveryReport {
    std::vector<RecoveredStore> stores;
    /// Slots dropped because their snapshot failed its checksum (the bad
    /// file is set aside as .corrupt and the slot restarts empty).
    size_t corrupt_snapshots = 0;
    /// Torn/corrupt WAL tail bytes cut during replay.
    size_t wal_bytes_truncated = 0;
    /// Epoch-mismatched WAL records skipped (updates superseded by a
    /// later snapshot that crashed before truncating the log).
    size_t stale_wal_records = 0;
  };

  /// Scans the directory and rebuilds every slot's durable state. Also
  /// truncates torn WAL tails and removes stray .tmp files, so the
  /// directory is clean once recovery returns. Call once, before serving.
  Result<RecoveryReport> Recover();

  /// Durably replaces slot `store_id`'s snapshot (tmp + fsync + rename +
  /// dir fsync) under the given epoch, which must exceed every epoch the
  /// slot has used before (the server passes recovered-or-last + 1). On
  /// success the slot's now-stale WAL is truncated.
  ///
  /// The atomic rename is the commit point: once it succeeds this returns
  /// Ok — a recovery from here on loads the new snapshot, so reporting a
  /// later step's failure would make the caller keep the old store and
  /// epoch while a restart serves the new one. A post-rename directory
  /// fsync failure (new-entry durability ambiguous) instead poisons the
  /// slot's WAL, so no acked update can be tagged with an epoch a crash
  /// might roll back; the next clean snapshot re-enables appends.
  ///
  /// `format` picks the container generation: kV1 wraps the blobs with a
  /// whole-file checksum; kV2 expects `index_blob` to be a ShardedEmm v2
  /// store image and writes the mmap-native container around it.
  Status PersistSnapshot(uint32_t store_id, uint64_t epoch, uint8_t kind,
                         ConstByteSpan index_blob, ConstByteSpan gate_blob,
                         SnapshotFormat format = SnapshotFormat::kV1);

  /// Durably appends one Update payload to slot `store_id`'s WAL (fsync'd
  /// before returning, so the server may ack the batch). On failure the
  /// partial record is rolled back (see the class comment); a poisoned
  /// slot refuses the append outright.
  Status AppendUpdate(uint32_t store_id, uint64_t epoch,
                      ConstByteSpan payload);

  /// Sets a slot's unusable durable state aside: the snapshot is renamed
  /// to .snap.corrupt (kept for forensics, ignored by future recoveries)
  /// and the WAL — which applied on top of the lost base — is truncated.
  /// Best-effort; used by recovery for snapshots that fail their checksum
  /// or refuse to deserialize.
  void QuarantineSlot(uint32_t store_id);

  /// Fsyncs every open WAL (drain-time belt and braces; appends are
  /// already fsync'd individually).
  Status Sync();

  // --- record codec, exposed for tests and fuzzing ---

  struct WalRecord {
    uint64_t epoch = 0;
    Bytes payload;
  };

  /// Appends one encoded WAL record ([u32 len][u32 crc][u64 epoch]
  /// [payload], big-endian, crc over epoch + payload) to `out`.
  static void EncodeWalRecord(uint64_t epoch, ConstByteSpan payload,
                              Bytes& out);

  /// Decodes consecutive records from `buf`, stopping at the first torn or
  /// corrupt one. Returns the byte offset just past the last good record
  /// (== buf.size() iff the whole buffer parsed cleanly).
  static size_t DecodeWalRecords(const Bytes& buf,
                                 std::vector<WalRecord>& out);

 private:
  StorePersistence() = default;

  std::string SnapshotPath(uint32_t store_id) const;
  std::string WalPath(uint32_t store_id) const;
  /// Append fd for a slot's WAL, opened (and cached) on first use.
  Result<int> WalFd(uint32_t store_id) RSSE_REQUIRES(mu_);
  /// QuarantineSlot's body, for callers already holding `mu_`.
  void QuarantineSlotLocked(uint32_t store_id) RSSE_REQUIRES(mu_);

  /// Immutable after Open().
  std::string dir_;
  int dir_fd_ = -1;

  /// Guards the per-slot mutable state below.
  Mutex mu_;
  std::map<uint32_t, int> wal_fds_ RSSE_GUARDED_BY(mu_);
  /// Slots whose WAL may end in a torn record that could not be rolled
  /// back durably (or whose snapshot's directory entry never fsync'd):
  /// appends are refused until a snapshot truncates the log cleanly.
  std::set<uint32_t> poisoned_wals_ RSSE_GUARDED_BY(mu_);
};

}  // namespace rsse::server

#endif  // RSSE_SERVER_PERSIST_H_
