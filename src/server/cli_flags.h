#ifndef RSSE_SERVER_CLI_FLAGS_H_
#define RSSE_SERVER_CLI_FLAGS_H_

#include <cstring>
#include <string>

namespace rsse::server {

/// Minimal --key=value lookup shared by the rsse_serverd / rsse_client
/// mains (they deliberately link no bench utilities). Returns the value of
/// the last matching flag, or nullptr when absent.
inline const char* FlagValue(int argc, char** argv, const char* key) {
  const std::string prefix = std::string("--") + key + "=";
  const char* value = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      value = argv[i] + prefix.size();
    }
  }
  return value;
}

}  // namespace rsse::server

#endif  // RSSE_SERVER_CLI_FLAGS_H_
