#ifndef RSSE_SERVER_WIRE_H_
#define RSSE_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace rsse::server {

/// Length-prefixed binary wire protocol between `rsse_client` and
/// `rsse_serverd`. Every frame is
///
///   [u32 frame_len][u8 version][u8 type][payload ...]
///
/// with all integers big-endian and `frame_len` counting the bytes after
/// the length field (so version + type + payload, at least 2). Frames are
/// self-delimiting, so a stream parser needs no lookahead beyond the
/// 4-byte prefix; `frame_len` is capped to keep a corrupt or hostile
/// prefix from driving allocation.
///
/// Version 2 extends the protocol from the Constant schemes to the whole
/// scheme family: SetupStore hosts multiple stores per server (SRC-i's
/// I1/I2, PB's filter tree) with optional Bloom pre-decryption gates,
/// SearchKeyword resolves keyword/trapdoor token batches, SearchPayload
/// streams decrypted payloads back, and result frames are chunked —
/// capped ids/payloads per frame, interleaved across the batch's query
/// ids, reassembled by the client until SearchDone.
inline constexpr uint8_t kWireVersion = 2;
inline constexpr uint32_t kMaxFrameBytes = uint32_t{1} << 30;

/// Per-part byte cap for keyword/trapdoor tokens (a keyword token part is
/// a λ-byte key; PB trapdoors are λ bytes too). The decoder rejects
/// anything larger, bounding what one hostile token can allocate.
inline constexpr size_t kMaxKeywordTokenPartBytes = 4096;

enum class FrameType : uint8_t {
  /// Client -> server: host a serialized ShardedEmm index.
  kSetupReq = 1,
  kSetupResp = 2,
  /// Client -> server: many range queries, each many GGM tokens, in one
  /// round trip.
  kSearchBatchReq = 3,
  /// Server -> client: a chunk of ids of one query of the batch (chunked
  /// and interleaved across query ids; reassemble until SearchDone).
  kSearchResult = 4,
  /// Server -> client: end of batch + dedupe/expansion statistics.
  kSearchDone = 5,
  /// Client -> server: insert pre-encrypted (label, ciphertext) entries.
  kUpdateReq = 6,
  kUpdateResp = 7,
  kStatsReq = 8,
  kStatsResp = 9,
  /// Server -> client: request-level failure (bad frame, no index, ...).
  kError = 10,
  /// Client -> server: host one store slot (index blob + optional Bloom
  /// gate) of a scheme's ServerSetup. Answered with kSetupResp.
  kSetupStoreReq = 11,
  /// Client -> server: a batch of keyword/trapdoor token queries against
  /// one store slot (the TDAG schemes' SSE tokens, PB's trapdoors).
  kSearchKeywordReq = 12,
  /// Server -> client: a chunk of decrypted payloads of one query of a
  /// keyword batch (chunked + interleaved like kSearchResult).
  kSearchPayload = 13,
  /// Server -> client: the server is draining (graceful shutdown) and
  /// rejected this request. Payload is an ErrorResponse; unlike kError the
  /// request was never started, so an idempotent client may safely retry
  /// it against the restarted server.
  kErrorDraining = 14,
};

/// One decoded frame: type plus raw payload (still to be parsed by the
/// typed Decode functions below).
struct Frame {
  FrameType type = FrameType::kError;
  Bytes payload;
};

/// Appends one encoded frame to `out`. Returns false (appending nothing)
/// when `payload` exceeds kMaxFrameBytes - 2 — the send-side mirror of the
/// decoder's cap, so an oversized payload fails loudly instead of wrapping
/// the length prefix and corrupting the stream.
[[nodiscard]] bool EncodeFrame(FrameType type, ConstByteSpan payload,
                               Bytes& out);

/// Outcome of pulling one frame off a byte stream.
enum class FrameParse {
  kFrame,     // one frame decoded, `offset` advanced past it
  kNeedMore,  // the buffer holds only a frame prefix; read more bytes
  kMalformed, // unrecoverable: bad version/type/length — drop the peer
};

/// Attempts to decode one frame from `buf[offset...]`. On kFrame, fills
/// `frame` and advances `offset`; on kMalformed, `error` (when non-null)
/// receives a diagnostic.
FrameParse DecodeFrame(const Bytes& buf, size_t& offset, Frame& frame,
                       std::string* error);

// ---------------------------------------------------------------------------
// Typed payloads. Each struct encodes to / decodes from a frame payload;
// Decode returns INVALID_ARGUMENT on truncated, oversized or malformed
// input (never crashes, never over-reads).
// ---------------------------------------------------------------------------

/// A delegated GGM covering node: subtree level plus λ-byte seed. The node
/// position is deliberately absent, as in `GgmDprf::Token`.
struct WireToken {
  uint8_t level = 0;
  Label seed{};

  friend bool operator==(const WireToken&, const WireToken&) = default;
};

/// One range query of a batch: a client-chosen id echoed on results plus
/// the BRC/URC cover tokens of the range.
struct WireQuery {
  uint32_t query_id = 0;
  std::vector<WireToken> tokens;
};

struct SetupRequest {
  /// Serialized `shard::ShardedEmm` blob (self-describing).
  Bytes index_blob;

  Bytes Encode() const;
  static Result<SetupRequest> Decode(const Bytes& payload);
};

struct SetupResponse {
  uint32_t shards = 0;
  uint64_t entries = 0;

  Bytes Encode() const;
  static Result<SetupResponse> Decode(const Bytes& payload);
};

struct SearchBatchRequest {
  std::vector<WireQuery> queries;

  Bytes Encode() const;
  static Result<SearchBatchRequest> Decode(const Bytes& payload);
};

struct SearchResult {
  uint32_t query_id = 0;
  std::vector<uint64_t> ids;

  Bytes Encode() const;
  static Result<SearchResult> Decode(const Bytes& payload);
};

struct SearchDone {
  uint32_t query_count = 0;
  /// Tokens received across the batch vs distinct GGM subtrees actually
  /// expanded — the batching win the client can observe.
  uint64_t tokens_received = 0;
  uint64_t unique_nodes_expanded = 0;
  uint64_t leaves_searched = 0;
  uint64_t search_nanos = 0;
  /// Candidate decryptions the store's Bloom gate skipped (keyword
  /// batches against gated SRC/SRC-i stores; new in wire v2).
  uint64_t skipped_decrypts = 0;

  Bytes Encode() const;
  static Result<SearchDone> Decode(const Bytes& payload);
};

/// Hosts one store slot of a scheme's ServerSetup: the serialized index
/// (`kind` selects the blob format and the tokens it resolves) plus an
/// optional serialized BloomLabelGate consulted before candidate
/// decryptions.
struct SetupStoreRequest {
  uint32_t store_id = 0;
  /// Raw `rsse::StoreKind`: 0 = encrypted dictionary, 1 = PB filter tree.
  uint8_t kind = 0;
  Bytes index_blob;
  /// Empty = no gate.
  Bytes gate_blob;

  Bytes Encode() const;
  static Result<SetupStoreRequest> Decode(const Bytes& payload);
};

/// One keyword/trapdoor token as shipped to the server. kind 0 is a
/// standard SSE token (`a` = label key K1, `b` = value key K2); kind 1 is
/// a scheme-opaque trapdoor in `a` (`b` empty) — PB's filter-tree probes.
struct WireKeywordToken {
  uint8_t kind = 0;
  Bytes a;
  Bytes b;

  friend bool operator==(const WireKeywordToken&,
                         const WireKeywordToken&) = default;
};

/// A batch of keyword-token queries against one hosted store slot.
struct SearchKeywordRequest {
  struct Query {
    uint32_t query_id = 0;
    std::vector<WireKeywordToken> tokens;
  };

  uint32_t store_id = 0;
  std::vector<Query> queries;

  Bytes Encode() const;
  static Result<SearchKeywordRequest> Decode(const Bytes& payload);
};

/// A chunk of decrypted payloads for one query of a keyword batch.
struct SearchPayloadResult {
  uint32_t query_id = 0;
  std::vector<Bytes> payloads;

  Bytes Encode() const;
  static Result<SearchPayloadResult> Decode(const Bytes& payload);
};

struct UpdateRequest {
  std::vector<std::pair<Label, Bytes>> entries;

  Bytes Encode() const;
  static Result<UpdateRequest> Decode(const Bytes& payload);
};

struct UpdateResponse {
  uint64_t entries = 0;

  Bytes Encode() const;
  static Result<UpdateResponse> Decode(const Bytes& payload);
};

struct StatsResponse {
  uint64_t entries = 0;
  uint64_t size_bytes = 0;
  uint32_t shards = 0;
  uint64_t batches_served = 0;
  uint64_t queries_served = 0;
  uint64_t tokens_received = 0;
  uint64_t nodes_deduped = 0;
  /// Primary-store memory provenance: bytes served straight off the
  /// mapped snapshot vs bytes copied to heap (updated shards, or the
  /// whole store when mmap serving is off).
  uint64_t mapped_bytes = 0;
  uint64_t heap_bytes = 0;
  /// Snapshot container generation backing the primary store (raw
  /// server::SnapshotFormat; 0 when nothing is persisted).
  uint8_t snapshot_format = 0;

  Bytes Encode() const;
  static Result<StatsResponse> Decode(const Bytes& payload);
};

struct ErrorResponse {
  std::string message;

  Bytes Encode() const;
  static Result<ErrorResponse> Decode(const Bytes& payload);
};

}  // namespace rsse::server

#endif  // RSSE_SERVER_WIRE_H_
