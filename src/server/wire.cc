#include "server/wire.h"

#include <cstring>

namespace rsse::server {

namespace {

/// Bounds-checked big-endian reader over a frame payload. Every accessor
/// degrades to "failed" instead of over-reading, so typed decoders are a
/// straight-line sequence of reads plus one final ok()/AtEnd() check.
class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(data) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && offset_ == data_.size(); }
  size_t remaining() const { return ok_ ? data_.size() - offset_ : 0; }

  uint8_t U8() {
    if (!Require(1)) return 0;
    return data_[offset_++];
  }

  uint32_t U32() {
    if (!Require(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[offset_++];
    return v;
  }

  uint64_t U64() {
    if (!Require(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[offset_++];
    return v;
  }

  void Raw(uint8_t* out, size_t n) {
    if (!Require(n)) return;
    std::memcpy(out, data_.data() + offset_, n);
    offset_ += n;
  }

  Bytes Blob(size_t n) {
    if (!Require(n)) return {};
    Bytes out(data_.begin() + static_cast<long>(offset_),
              data_.begin() + static_cast<long>(offset_ + n));
    offset_ += n;
    return out;
  }

 private:
  bool Require(size_t n) {
    if (!ok_ || data_.size() - offset_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const Bytes& data_;
  size_t offset_ = 0;
  bool ok_ = true;
};

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed frame payload: ") +
                                 what);
}

}  // namespace

bool EncodeFrame(FrameType type, ConstByteSpan payload, Bytes& out) {
  if (payload.size() > kMaxFrameBytes - 2) return false;
  const uint32_t len = static_cast<uint32_t>(2 + payload.size());
  AppendUint32(out, len);
  AppendByte(out, kWireVersion);
  AppendByte(out, static_cast<uint8_t>(type));
  out.insert(out.end(), payload.begin(), payload.end());
  return true;
}

FrameParse DecodeFrame(const Bytes& buf, size_t& offset, Frame& frame,
                       std::string* error) {
  if (buf.size() - offset < 4) return FrameParse::kNeedMore;
  const uint32_t len = ReadUint32(buf, offset);
  if (len < 2) {
    if (error != nullptr) *error = "frame length below header size";
    return FrameParse::kMalformed;
  }
  if (len > kMaxFrameBytes) {
    if (error != nullptr) *error = "frame length exceeds kMaxFrameBytes";
    return FrameParse::kMalformed;
  }
  if (buf.size() - offset - 4 < len) return FrameParse::kNeedMore;
  const uint8_t version = buf[offset + 4];
  if (version != kWireVersion) {
    if (error != nullptr) *error = "unsupported wire version";
    return FrameParse::kMalformed;
  }
  const uint8_t type = buf[offset + 5];
  if (type < static_cast<uint8_t>(FrameType::kSetupReq) ||
      type > static_cast<uint8_t>(FrameType::kErrorDraining)) {
    if (error != nullptr) *error = "unknown frame type";
    return FrameParse::kMalformed;
  }
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(buf.begin() + static_cast<long>(offset + 6),
                       buf.begin() + static_cast<long>(offset + 4 + len));
  offset += 4 + len;
  return FrameParse::kFrame;
}

// --------------------------------------------------------------------------
// Setup
// --------------------------------------------------------------------------

Bytes SetupRequest::Encode() const {
  Bytes out;
  out.reserve(8 + index_blob.size());
  AppendUint64(out, index_blob.size());
  Append(out, index_blob);
  return out;
}

Result<SetupRequest> SetupRequest::Decode(const Bytes& payload) {
  Reader r(payload);
  const uint64_t blob_len = r.U64();
  if (!r.ok() || blob_len != r.remaining()) {
    return Malformed("setup blob length");
  }
  SetupRequest req;
  req.index_blob = r.Blob(static_cast<size_t>(blob_len));
  if (!r.AtEnd()) return Malformed("setup trailing bytes");
  return req;
}

Bytes SetupResponse::Encode() const {
  Bytes out;
  AppendUint32(out, shards);
  AppendUint64(out, entries);
  return out;
}

Result<SetupResponse> SetupResponse::Decode(const Bytes& payload) {
  Reader r(payload);
  SetupResponse resp;
  resp.shards = r.U32();
  resp.entries = r.U64();
  if (!r.AtEnd()) return Malformed("setup response");
  return resp;
}

// --------------------------------------------------------------------------
// SearchBatch
// --------------------------------------------------------------------------

Bytes SearchBatchRequest::Encode() const {
  Bytes out;
  AppendUint32(out, static_cast<uint32_t>(queries.size()));
  for (const WireQuery& q : queries) {
    AppendUint32(out, q.query_id);
    AppendUint32(out, static_cast<uint32_t>(q.tokens.size()));
    for (const WireToken& t : q.tokens) {
      AppendByte(out, t.level);
      out.insert(out.end(), t.seed.begin(), t.seed.end());
    }
  }
  return out;
}

Result<SearchBatchRequest> SearchBatchRequest::Decode(const Bytes& payload) {
  Reader r(payload);
  const uint32_t query_count = r.U32();
  // Each query needs at least its 8-byte header; reject counts the
  // remaining bytes cannot possibly hold before reserving.
  if (!r.ok() || query_count > r.remaining() / 8) {
    return Malformed("search batch query count");
  }
  SearchBatchRequest req;
  req.queries.reserve(query_count);
  for (uint32_t q = 0; q < query_count; ++q) {
    WireQuery query;
    query.query_id = r.U32();
    const uint32_t token_count = r.U32();
    if (!r.ok() || token_count > r.remaining() / (1 + kLabelBytes)) {
      return Malformed("search batch token count");
    }
    query.tokens.reserve(token_count);
    for (uint32_t t = 0; t < token_count; ++t) {
      WireToken token;
      token.level = r.U8();
      r.Raw(token.seed.data(), token.seed.size());
      if (!r.ok()) return Malformed("search batch token");
      if (token.level > 62) return Malformed("token level out of range");
      query.tokens.push_back(token);
    }
    req.queries.push_back(std::move(query));
  }
  if (!r.AtEnd()) return Malformed("search batch trailing bytes");
  return req;
}

Bytes SearchResult::Encode() const {
  Bytes out;
  out.reserve(12 + ids.size() * 8);
  AppendUint32(out, query_id);
  AppendUint64(out, ids.size());
  for (uint64_t id : ids) AppendUint64(out, id);
  return out;
}

Result<SearchResult> SearchResult::Decode(const Bytes& payload) {
  Reader r(payload);
  SearchResult res;
  res.query_id = r.U32();
  const uint64_t count = r.U64();
  if (!r.ok() || count != r.remaining() / 8 || count * 8 != r.remaining()) {
    return Malformed("search result id count");
  }
  res.ids.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) res.ids.push_back(r.U64());
  if (!r.AtEnd()) return Malformed("search result trailing bytes");
  return res;
}

Bytes SearchDone::Encode() const {
  Bytes out;
  AppendUint32(out, query_count);
  AppendUint64(out, tokens_received);
  AppendUint64(out, unique_nodes_expanded);
  AppendUint64(out, leaves_searched);
  AppendUint64(out, search_nanos);
  AppendUint64(out, skipped_decrypts);
  return out;
}

Result<SearchDone> SearchDone::Decode(const Bytes& payload) {
  Reader r(payload);
  SearchDone done;
  done.query_count = r.U32();
  done.tokens_received = r.U64();
  done.unique_nodes_expanded = r.U64();
  done.leaves_searched = r.U64();
  done.search_nanos = r.U64();
  done.skipped_decrypts = r.U64();
  if (!r.AtEnd()) return Malformed("search done");
  return done;
}

// --------------------------------------------------------------------------
// SetupStore / SearchKeyword / SearchPayload (wire v2)
// --------------------------------------------------------------------------

Bytes SetupStoreRequest::Encode() const {
  Bytes out;
  out.reserve(4 + 1 + 16 + index_blob.size() + gate_blob.size());
  AppendUint32(out, store_id);
  AppendByte(out, kind);
  AppendUint64(out, index_blob.size());
  Append(out, index_blob);
  AppendUint64(out, gate_blob.size());
  Append(out, gate_blob);
  return out;
}

Result<SetupStoreRequest> SetupStoreRequest::Decode(const Bytes& payload) {
  Reader r(payload);
  SetupStoreRequest req;
  req.store_id = r.U32();
  req.kind = r.U8();
  const uint64_t index_len = r.U64();
  if (!r.ok() || index_len > r.remaining()) {
    return Malformed("setup store index blob length");
  }
  req.index_blob = r.Blob(static_cast<size_t>(index_len));
  const uint64_t gate_len = r.U64();
  if (!r.ok() || gate_len != r.remaining()) {
    return Malformed("setup store gate blob length");
  }
  req.gate_blob = r.Blob(static_cast<size_t>(gate_len));
  if (!r.AtEnd()) return Malformed("setup store trailing bytes");
  return req;
}

Bytes SearchKeywordRequest::Encode() const {
  Bytes out;
  AppendUint32(out, store_id);
  AppendUint32(out, static_cast<uint32_t>(queries.size()));
  for (const Query& q : queries) {
    AppendUint32(out, q.query_id);
    AppendUint32(out, static_cast<uint32_t>(q.tokens.size()));
    for (const WireKeywordToken& t : q.tokens) {
      AppendByte(out, t.kind);
      AppendUint32(out, static_cast<uint32_t>(t.a.size()));
      Append(out, t.a);
      AppendUint32(out, static_cast<uint32_t>(t.b.size()));
      Append(out, t.b);
    }
  }
  return out;
}

Result<SearchKeywordRequest> SearchKeywordRequest::Decode(
    const Bytes& payload) {
  Reader r(payload);
  SearchKeywordRequest req;
  req.store_id = r.U32();
  const uint32_t query_count = r.U32();
  // Each query needs at least its 8-byte header; reject counts the
  // remaining bytes cannot possibly hold before reserving.
  if (!r.ok() || query_count > r.remaining() / 8) {
    return Malformed("keyword batch query count");
  }
  req.queries.reserve(query_count);
  for (uint32_t q = 0; q < query_count; ++q) {
    Query query;
    query.query_id = r.U32();
    const uint32_t token_count = r.U32();
    // Minimal token: kind byte + two empty length-prefixed parts.
    if (!r.ok() || token_count > r.remaining() / 9) {
      return Malformed("keyword batch token count");
    }
    query.tokens.reserve(token_count);
    for (uint32_t t = 0; t < token_count; ++t) {
      WireKeywordToken token;
      token.kind = r.U8();
      if (token.kind > 1) return Malformed("keyword token kind");
      const uint32_t a_len = r.U32();
      if (!r.ok() || a_len > kMaxKeywordTokenPartBytes ||
          a_len > r.remaining()) {
        return Malformed("keyword token part length");
      }
      token.a = r.Blob(a_len);
      const uint32_t b_len = r.U32();
      if (!r.ok() || b_len > kMaxKeywordTokenPartBytes ||
          b_len > r.remaining()) {
        return Malformed("keyword token part length");
      }
      token.b = r.Blob(b_len);
      if (!r.ok()) return Malformed("keyword token");
      query.tokens.push_back(std::move(token));
    }
    req.queries.push_back(std::move(query));
  }
  if (!r.AtEnd()) return Malformed("keyword batch trailing bytes");
  return req;
}

Bytes SearchPayloadResult::Encode() const {
  Bytes out;
  size_t total = 12;
  for (const Bytes& p : payloads) total += 4 + p.size();
  out.reserve(total);
  AppendUint32(out, query_id);
  AppendUint64(out, payloads.size());
  for (const Bytes& p : payloads) {
    AppendUint32(out, static_cast<uint32_t>(p.size()));
    Append(out, p);
  }
  return out;
}

Result<SearchPayloadResult> SearchPayloadResult::Decode(
    const Bytes& payload) {
  Reader r(payload);
  SearchPayloadResult res;
  res.query_id = r.U32();
  const uint64_t count = r.U64();
  // Each payload needs at least its 4-byte length prefix.
  if (!r.ok() || count > r.remaining() / 4) {
    return Malformed("search payload count");
  }
  res.payloads.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    const uint32_t len = r.U32();
    if (!r.ok() || len > r.remaining()) {
      return Malformed("search payload length");
    }
    res.payloads.push_back(r.Blob(len));
  }
  if (!r.AtEnd()) return Malformed("search payload trailing bytes");
  return res;
}

// --------------------------------------------------------------------------
// Update
// --------------------------------------------------------------------------

Bytes UpdateRequest::Encode() const {
  Bytes out;
  AppendUint32(out, static_cast<uint32_t>(entries.size()));
  for (const auto& [label, value] : entries) {
    out.insert(out.end(), label.begin(), label.end());
    AppendUint32(out, static_cast<uint32_t>(value.size()));
    Append(out, value);
  }
  return out;
}

Result<UpdateRequest> UpdateRequest::Decode(const Bytes& payload) {
  Reader r(payload);
  const uint32_t count = r.U32();
  if (!r.ok() || count > r.remaining() / (kLabelBytes + 4 + 1)) {
    return Malformed("update entry count");
  }
  UpdateRequest req;
  req.entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Label label;
    r.Raw(label.data(), label.size());
    const uint32_t value_len = r.U32();
    if (!r.ok() || value_len == 0 || value_len > r.remaining()) {
      return Malformed("update entry value");
    }
    req.entries.emplace_back(label, r.Blob(value_len));
  }
  if (!r.AtEnd()) return Malformed("update trailing bytes");
  return req;
}

Bytes UpdateResponse::Encode() const {
  Bytes out;
  AppendUint64(out, entries);
  return out;
}

Result<UpdateResponse> UpdateResponse::Decode(const Bytes& payload) {
  Reader r(payload);
  UpdateResponse resp;
  resp.entries = r.U64();
  if (!r.AtEnd()) return Malformed("update response");
  return resp;
}

// --------------------------------------------------------------------------
// Stats / Error
// --------------------------------------------------------------------------

Bytes StatsResponse::Encode() const {
  Bytes out;
  AppendUint64(out, entries);
  AppendUint64(out, size_bytes);
  AppendUint32(out, shards);
  AppendUint64(out, batches_served);
  AppendUint64(out, queries_served);
  AppendUint64(out, tokens_received);
  AppendUint64(out, nodes_deduped);
  AppendUint64(out, mapped_bytes);
  AppendUint64(out, heap_bytes);
  out.push_back(snapshot_format);
  return out;
}

Result<StatsResponse> StatsResponse::Decode(const Bytes& payload) {
  Reader r(payload);
  StatsResponse resp;
  resp.entries = r.U64();
  resp.size_bytes = r.U64();
  resp.shards = r.U32();
  resp.batches_served = r.U64();
  resp.queries_served = r.U64();
  resp.tokens_received = r.U64();
  resp.nodes_deduped = r.U64();
  resp.mapped_bytes = r.U64();
  resp.heap_bytes = r.U64();
  resp.snapshot_format = r.U8();
  if (!r.AtEnd()) return Malformed("stats response");
  return resp;
}

Bytes ErrorResponse::Encode() const {
  Bytes out;
  AppendUint32(out, static_cast<uint32_t>(message.size()));
  out.insert(out.end(), message.begin(), message.end());
  return out;
}

Result<ErrorResponse> ErrorResponse::Decode(const Bytes& payload) {
  Reader r(payload);
  const uint32_t len = r.U32();
  if (!r.ok() || len != r.remaining()) return Malformed("error message");
  Bytes raw = r.Blob(len);
  ErrorResponse resp;
  resp.message.assign(raw.begin(), raw.end());
  return resp;
}

}  // namespace rsse::server
