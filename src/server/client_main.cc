// rsse_client: data-owner CLI for rsse_serverd.
//
// Builds a Constant-scheme index over a synthetic dataset, ships it to the
// server (Setup), then issues one *batched* round trip of range queries —
// the server dedupes covering GGM nodes shared across the ranges and
// expands each subtree once.
//
//   rsse_serverd --port=7370 &
//   rsse_client --port=7370 --n=20000 --domain=65536
//               --ranges=100:900,500:1500,500:1500 --verify=1
//
// Flags:
//   --host=<ipv4>        server address          (default 127.0.0.1)
//   --port=<port>        server port             (default 7370)
//   --n=<tuples>         synthetic dataset size  (default 10000)
//   --domain=<size>      attribute domain        (default 65536)
//   --seed=<rng seed>    dataset/scheme seed     (default 1)
//   --technique=brc|urc  covering technique      (default brc)
//   --shards=<n>         owner-side build shards (default RSSE_SHARDS)
//   --ranges=lo:hi,...   batch of ranges         (default 8 overlapping)
//   --verify=1           compare against local in-process Query

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"
#include "rsse/constant.h"
#include "server/cli_flags.h"
#include "server/client.h"

namespace {

using rsse::server::FlagValue;

std::vector<rsse::Range> ParseRanges(const char* spec) {
  std::vector<rsse::Range> ranges;
  const std::string s = spec;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string item = s.substr(pos, comma - pos);
    const size_t colon = item.find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "rsse_client: bad range '%s' (want lo:hi)\n",
                   item.c_str());
      std::exit(1);
    }
    rsse::Range r;
    r.lo = std::strtoull(item.substr(0, colon).c_str(), nullptr, 10);
    r.hi = std::strtoull(item.substr(colon + 1).c_str(), nullptr, 10);
    ranges.push_back(r);
    pos = comma + 1;
  }
  return ranges;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "rsse_client: batched range queries against rsse_serverd\n"
          "  --host=<ipv4> --port=<port> --n=<tuples> --domain=<size>\n"
          "  --seed=<n> --technique=brc|urc --shards=<n>\n"
          "  --ranges=lo:hi,lo:hi,... --verify=1\n");
      return 0;
    }
  }
  const std::string host = FlagValue(argc, argv, "host")
                               ? FlagValue(argc, argv, "host")
                               : "127.0.0.1";
  const uint16_t port = static_cast<uint16_t>(
      FlagValue(argc, argv, "port")
          ? std::strtoul(FlagValue(argc, argv, "port"), nullptr, 10)
          : 7370);
  const uint64_t n = FlagValue(argc, argv, "n")
                         ? std::strtoull(FlagValue(argc, argv, "n"), nullptr,
                                         10)
                         : 10000;
  const uint64_t domain =
      FlagValue(argc, argv, "domain")
          ? std::strtoull(FlagValue(argc, argv, "domain"), nullptr, 10)
          : 65536;
  const uint64_t seed =
      FlagValue(argc, argv, "seed")
          ? std::strtoull(FlagValue(argc, argv, "seed"), nullptr, 10)
          : 1;
  const bool urc = FlagValue(argc, argv, "technique") != nullptr &&
                   std::strcmp(FlagValue(argc, argv, "technique"), "urc") == 0;
  const int shards = FlagValue(argc, argv, "shards")
                         ? std::atoi(FlagValue(argc, argv, "shards"))
                         : 0;
  const bool verify = FlagValue(argc, argv, "verify") != nullptr &&
                      std::strcmp(FlagValue(argc, argv, "verify"), "0") != 0;

  std::vector<rsse::Range> ranges;
  if (const char* spec = FlagValue(argc, argv, "ranges")) {
    ranges = ParseRanges(spec);
  } else {
    // Default demo batch: 8 deliberately overlapping ranges so the
    // server-side dedupe has shared covering nodes to exploit.
    const uint64_t w = domain / 8;
    for (uint64_t i = 0; i < 8; ++i) {
      const uint64_t lo = (i / 2) * w;  // pairs share an aligned range
      ranges.push_back(rsse::Range{lo, lo + w - 1});
    }
  }

  // Owner side: build the encrypted index and delegate per-range tokens.
  rsse::Rng rng(seed);
  rsse::Dataset data = rsse::GenerateGowallaLike(n, domain, rng);
  rsse::ConstantScheme scheme(
      urc ? rsse::CoverTechnique::kUrc : rsse::CoverTechnique::kBrc, seed);
  scheme.SetShards(shards);
  rsse::Status built = scheme.Build(data);
  if (!built.ok()) {
    std::fprintf(stderr, "rsse_client: build failed: %s\n",
                 built.ToString().c_str());
    return 1;
  }

  rsse::server::EmmClient client;
  rsse::Status conn = client.Connect(host, port);
  if (!conn.ok()) {
    std::fprintf(stderr, "rsse_client: %s\n", conn.ToString().c_str());
    return 1;
  }

  auto setup = client.Setup(scheme.SerializeIndex());
  if (!setup.ok()) {
    std::fprintf(stderr, "rsse_client: setup failed: %s\n",
                 setup.status().ToString().c_str());
    return 1;
  }
  std::printf("setup: %" PRIu64 " entries across %u shards\n",
              setup->entries, setup->shards);

  std::vector<rsse::server::EmmClient::BatchQuery> batch;
  for (size_t i = 0; i < ranges.size(); ++i) {
    rsse::server::EmmClient::BatchQuery q;
    q.query_id = static_cast<uint32_t>(i);
    q.tokens = scheme.Delegate(ranges[i]);
    batch.push_back(std::move(q));
  }
  auto outcome = client.SearchBatch(batch);
  if (!outcome.ok()) {
    std::fprintf(stderr, "rsse_client: batch failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  bool all_match = true;
  for (size_t i = 0; i < ranges.size(); ++i) {
    const std::vector<uint64_t>& ids =
        outcome->ids[static_cast<uint32_t>(i)];
    std::printf("query %zu [%" PRIu64 ", %" PRIu64 "]: %zu ids\n", i,
                ranges[i].lo, ranges[i].hi, ids.size());
    if (verify) {
      auto local = scheme.Query(ranges[i]);
      if (!local.ok()) {
        std::fprintf(stderr, "  local query failed: %s\n",
                     local.status().ToString().c_str());
        all_match = false;
        continue;
      }
      std::vector<uint64_t> remote = ids;
      std::vector<uint64_t> expected = local->ids;
      std::sort(remote.begin(), remote.end());
      std::sort(expected.begin(), expected.end());
      if (remote != expected) {
        std::fprintf(stderr, "  MISMATCH vs local search (%zu vs %zu ids)\n",
                     remote.size(), expected.size());
        all_match = false;
      }
    }
  }
  std::printf("batch: %" PRIu64 " tokens sent, %" PRIu64
              " unique subtrees expanded (%" PRIu64 " deduped), %" PRIu64
              " leaves searched, %.2f ms server time\n",
              outcome->done.tokens_received,
              outcome->done.unique_nodes_expanded,
              outcome->done.tokens_received -
                  outcome->done.unique_nodes_expanded,
              outcome->done.leaves_searched,
              static_cast<double>(outcome->done.search_nanos) / 1e6);
  if (verify) {
    std::printf("verify: %s\n", all_match ? "all queries match local search"
                                          : "MISMATCHES FOUND");
  }
  auto stats = client.Stats();
  if (stats.ok()) {
    std::printf("server: %" PRIu64 " entries, %" PRIu64
                " mapped byte(s), %" PRIu64
                " heap byte(s), snapshot v%u\n",
                stats->entries, stats->mapped_bytes, stats->heap_bytes,
                stats->snapshot_format);
  }
  return all_match ? 0 : 1;
}
