#ifndef RSSE_SERVER_SERVER_H_
#define RSSE_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "dprf/ggm_dprf.h"
#include "pb/filter_tree.h"
#include "rsse/bloom_gate.h"
#include "rsse/party.h"
#include "server/persist.h"
#include "server/wire.h"
#include "shard/sharded_emm.h"
#include "sse/keyword_keys.h"

namespace rsse::server {

struct ServerOptions {
  /// Listen address (numeric IPv4). Loopback by default: the wire protocol
  /// carries only labels/ciphertexts/tokens, but exposing it wider is a
  /// deployment decision.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via `port()`).
  uint16_t port = 0;
  /// Shards for a store created through Update before any Setup.
  /// 0 reads RSSE_SHARDS, defaulting to 1. (A Setup blob carries its own
  /// shard count.)
  int shards = 0;
  /// Shard count a hosted Setup blob is re-partitioned to while loading
  /// (`ShardedEmm::Deserialize` re-shard on load). The default keeps the
  /// blob's stored count; 0 re-shards to this host (RSSE_SHARDS, else the
  /// hardware concurrency); a positive count is used as given.
  int load_shards = shard::ShardedEmm::kKeepStoredShards;
  /// Worker threads for index load parallelism. 0 reads
  /// RSSE_SEARCH_THREADS, defaulting to 1. Also the fallback for
  /// `search_workers` below, so existing deployments keep their pool size.
  int search_threads = 0;
  /// Size of the persistent search-worker pool that executes every request
  /// off the poll thread (search batches stream from here). 0 falls back
  /// to `search_threads` resolution.
  int search_workers = 0;
  /// Per-connection outbound high-water mark, in bytes. A worker streaming
  /// result chunks parks its cursor when the connection's unsent output
  /// (staged + poll-side buffer) would cross this mark, and resumes once
  /// the socket drains below half of it — a slow reader on a huge range
  /// throttles its own query instead of growing the buffer without bound.
  /// 0 disables backpressure (unbounded buffering, the pre-v3 behaviour).
  size_t max_outbound_bytes = size_t{8} << 20;
  /// Largest GGM subtree a SearchBatch token may request (the expansion
  /// buffer is 16 bytes per leaf, so 2^26 leaves = 1 GiB per worker at
  /// peak). The wire format allows up to 62; without this cap one hostile
  /// token could drive an astronomically large allocation.
  int max_token_level = 26;
  /// Largest keyword-token batch one SearchKeyword frame may carry —
  /// the keyword-path equivalent of `max_token_level`: per-token bytes
  /// are already capped by the decoder (kMaxKeywordTokenPartBytes), so
  /// this bounds the total work/allocation one hostile frame can demand.
  size_t max_keyword_tokens = size_t{1} << 16;
  /// Highest SetupStore slot id the server accepts, bounding the store
  /// table a client can grow (the scheme family needs two slots; 16
  /// leaves room for multi-index compositions).
  uint32_t max_store_id = 15;
  /// Result chunking: at most this many ids per SearchResult frame and
  /// payloads per SearchPayload frame. Chunks are interleaved round-robin
  /// across the batch's query ids, so a huge range no longer buffers one
  /// query's ids wholesale and first results of every query arrive early.
  size_t max_ids_per_result_frame = size_t{1} << 14;
  size_t max_payloads_per_result_frame = size_t{1} << 12;
  /// Durable store directory. Empty = in-memory only (the pre-v4
  /// behaviour). When set, SetupStore blobs persist as checksummed
  /// snapshot files, Update batches append to a per-store WAL, and
  /// Listen() replays both so a restarted daemon serves the exact store
  /// table it held at the crash.
  std::string data_dir;
  /// Graceful-drain budget: after BeginDrain(), in-flight streaming
  /// cursors get this long to finish before Serve() exits anyway
  /// (connections cut mid-stream). <= 0 exits immediately, cutting even
  /// connections with unflushed output.
  int drain_timeout_ms = 10000;
  /// Serve encrypted-dictionary stores straight from mapped v2 snapshot
  /// files (`--mmap`): snapshots are written in the mmap-native container
  /// and recovery maps them — O(1) in the index size — instead of
  /// deserializing; WAL replay copies only the touched shards to heap and
  /// a clean drain folds the deltas back into a mappable snapshot. 1 = on,
  /// 0 = off; -1 (the default) resolves the RSSE_MMAP environment
  /// variable ("1"/"on"/"true" enables; absent = off). v1 snapshots still
  /// recover via the heap path and are rewritten as v2 on the first
  /// mmap-enabled boot. Mapped stores keep their snapshot's shard layout
  /// (`load_shards` applies only to heap loads).
  int mmap_stores = -1;
  /// With mmap serving on: synchronously fault every mapped store into
  /// the page cache during recovery (`--prefault`), trading boot time for
  /// no first-probe page-fault latency.
  bool prefault = false;
};

/// Cumulative serving statistics (reported through StatsResponse). Fields
/// are atomic: handlers run on the worker pool, and `stats()` may be read
/// from any thread while the server serves.
struct ServerStats {
  std::atomic<uint64_t> batches_served{0};
  std::atomic<uint64_t> queries_served{0};
  std::atomic<uint64_t> tokens_received{0};
  /// Tokens answered from another query's expansion in the same batch.
  std::atomic<uint64_t> nodes_deduped{0};
  /// High-water mark of any single connection's outbound queue (staged +
  /// unsent bytes) — the number the `max_outbound_bytes` backpressure cap
  /// bounds.
  AtomicMaxGauge peak_outbound_bytes;
};

/// The server side of the whole scheme family as a standalone process:
/// hosts one store slot per `SetupStore` frame — `shard::ShardedEmm`
/// encrypted dictionaries (with optional Bloom pre-decryption gates) and
/// PB filter trees — and serves the batched binary protocol of wire.h
/// over TCP. The Constant schemes' GGM batches probe the primary slot;
/// SearchKeyword batches name their slot explicitly (SRC-i's round 2 goes
/// to the secondary slot holding I2).
///
/// `SearchBatch` is the reason this exists as a protocol rather than one
/// request per range: queries whose BRC/URC covers share GGM nodes are
/// deduplicated server-side — each distinct (level, seed) subtree is
/// expanded once, its leaf tokens probed once, and the resulting ids fanned
/// back out to every subscribed query id.
///
/// Threading model (v3): the poll thread only accepts, reads, and writes
/// sockets. Every parsed frame becomes a job on its connection's FIFO
/// queue, executed by a persistent pool of `search_workers` threads — so a
/// heavy batch on one connection never head-of-line blocks another
/// connection's requests. Search jobs stream: the worker expands GGM
/// subtrees (or resolves keyword probes) one unit at a time and emits
/// capped result chunks into the connection's staged output as expansion
/// completes, waking the poll loop through the wake pipe; when the
/// connection's outbound queue crosses `max_outbound_bytes` the worker
/// parks the job (stream cursor and expansion progress saved) and the poll
/// thread reschedules it once the socket drains. The store table is
/// guarded by a reader/writer lock: searches take the lock shared per run
/// segment, Update/Setup take it exclusive — a batch parked behind a slow
/// reader holds no lock, so it never stalls writers.
class EmmServer {
 public:
  explicit EmmServer(const ServerOptions& options = {});
  ~EmmServer();

  EmmServer(const EmmServer&) = delete;
  EmmServer& operator=(const EmmServer&) = delete;

  /// Binds and listens; fills `port()`. Call once before `Serve`.
  Status Listen();

  /// Bound port (valid after `Listen`).
  uint16_t port() const { return port_; }

  /// Runs the event loop on the calling thread (and the worker pool on
  /// background threads) until `Shutdown`.
  Status Serve();

  /// Stops `Serve` from any thread (idempotent).
  void Shutdown();

  /// Flips the server into graceful drain (async-signal-safe, idempotent):
  /// stop accepting, reject new requests with kErrorDraining, let
  /// in-flight streaming cursors finish up to `drain_timeout_ms`, fsync
  /// the data dir, then Serve() returns OK.
  void BeginDrain();

  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// What Listen()'s recovery pass rebuilt from `data_dir` (zeros when no
  /// data dir is configured or nothing was on disk).
  struct RecoveryStats {
    size_t stores_recovered = 0;
    size_t wal_records_applied = 0;
    size_t corrupt_snapshots_dropped = 0;
    size_t wal_bytes_truncated = 0;
  };

  /// Opens `data_dir` and rebuilds the store table from its snapshots and
  /// WALs. Listen() calls this when it has not run yet; it is public so
  /// the daemon can run (and time) recovery before binding the port.
  Status RecoverStores();

  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  /// In-process equivalent of a Setup frame (tools/tests): hosts the
  /// serialized ShardedEmm blob at the primary store slot.
  Status Host(const Bytes& index_blob);

  const ServerStats& stats() const { return stats_; }
  size_t EntryCount() const;

  /// Per-store memory provenance (the observability surface of mmap
  /// serving: the serverd banner and the Stats frame report these).
  struct StoreMemoryInfo {
    uint32_t store_id = 0;
    /// Bytes still served from a mapped snapshot / from owned heap
    /// storage. A freshly mapped store is all mapped; WAL replay and
    /// updates migrate touched shards to heap.
    uint64_t mapped_bytes = 0;
    uint64_t heap_bytes = 0;
    /// Raw persist SnapshotFormat of the store's durable snapshot
    /// (0 = not persisted).
    uint8_t snapshot_format = 0;
  };
  std::vector<StoreMemoryInfo> StoreMemory() const;

  /// True when this server resolves mmap serving on (option/environment).
  bool mmap_enabled() const { return mmap_on_; }

 private:
  /// Scheduling state of one connection's job queue. At most one job of a
  /// connection executes at a time (responses must leave in request
  /// order); kParked means the head job is paused on backpressure and
  /// waits for the poll thread to drain the socket.
  enum class ExecState : uint8_t { kIdle, kQueued, kRunning, kParked };

  /// Resumable state of one streamed search response. The producer side
  /// resolves one work unit at a time (a deduped GGM subtree for
  /// SearchBatch, one keyword probe or one filter-tree query for
  /// SearchKeyword) and appends results per subscribed query; the emission
  /// cursor replays the round-robin chunk schedule — every query one frame
  /// per round (the first possibly empty), capped chunks alternating —
  /// stalling back into production when the next query in rotation has
  /// neither a full chunk nor a complete result, and parking off the
  /// worker when the connection's outbound queue is over the high-water
  /// mark.
  struct ResultStream {
    bool payload_mode = false;  // ids (SearchBatch) vs payloads (keyword)
    uint32_t store_id = 0;      // keyword path: the slot probed
    std::vector<uint32_t> query_ids;
    std::vector<std::vector<uint64_t>> ids;
    std::vector<std::vector<Bytes>> payloads;
    /// Per query: work units still unresolved (0 = result complete).
    std::vector<size_t> open_parts;

    enum class Producer : uint8_t { kGgm, kKeyword, kFilterTree };
    Producer producer = Producer::kGgm;

    // Producer work units (exactly one of the three is populated).
    std::vector<GgmDprf::Token> tokens;  // SearchBatch: deduped subtrees
    /// Per token: subscribed query indices (with multiplicity, mirroring
    /// the query's token list).
    std::vector<std::vector<uint32_t>> token_queries;
    struct KeywordProbe {
      uint32_t query = 0;
      sse::KeywordKeys keys;
    };
    std::vector<KeywordProbe> probes;          // keyword path, EMM stores
    std::vector<std::vector<Bytes>> trapdoors; // keyword path, filter tree
    size_t next_work = 0;
    size_t work_count = 0;

    // Emission cursor.
    size_t round = 0;
    size_t q = 0;
    bool round_emitted = false;
    std::vector<size_t> offset;

    /// Accumulated terminating-frame statistics (search_nanos counts
    /// active worker segments, not parked time).
    SearchDone done;
  };

  /// One parsed request awaiting (or undergoing) execution.
  struct Job {
    FrameType type = FrameType::kError;
    Bytes payload;
    /// Non-empty: a poll-thread protocol error to report in sequence
    /// (malformed frame) instead of dispatching `type`.
    std::string protocol_error;
    /// Search jobs: streaming state once execution has started.
    std::unique_ptr<ResultStream> stream;
  };

  struct Connection {
    // Poll-thread-owned socket state.
    int fd = -1;
    Bytes in;
    size_t in_offset = 0;  // bytes of `in` already parsed
    Bytes out;
    size_t out_offset = 0;  // bytes of `out` already sent
    bool closing = false;   // no more reads; flush, finish jobs, close
    bool input_paused = false;  // job queue full: stop POLLIN until it drains

    // Shared with the worker pool; guarded by `mu`.
    Mutex mu;
    /// Worker-emitted frames awaiting the poll thread.
    Bytes staged RSSE_GUARDED_BY(mu);
    std::deque<Job> jobs RSSE_GUARDED_BY(mu);
    ExecState state RSSE_GUARDED_BY(mu) = ExecState::kIdle;
    /// Unsent output in bytes (staged + out past out_offset). Written
    /// under `mu`; atomic so the emitting worker can check the high-water
    /// mark without the lock.
    std::atomic<size_t> outbound_bytes{0};
    /// Set by the poll thread when the connection is dropped; a worker
    /// mid-job aborts at its next emission.
    std::atomic<bool> closed{false};
    /// Set by a worker that hit a protocol breach (response-only frame
    /// type); the poll thread folds it into `closing` on its next sweep.
    std::atomic<bool> close_requested{false};
  };

  /// One hosted store slot: an encrypted dictionary (plus optional gate)
  /// or a PB filter tree, per its `kind`.
  struct HostedStore {
    rsse::StoreKind kind = rsse::StoreKind::kEmm;
    shard::ShardedEmm emm;
    std::unique_ptr<rsse::BloomLabelGate> gate;
    std::unique_ptr<pb::FilterTreeIndex> tree;
  };

  // --- poll thread ---
  void AcceptPending();
  /// Returns false when the connection should be dropped.
  bool ReadPending(const std::shared_ptr<Connection>& conn);
  bool WritePending(Connection& conn);
  /// Staged-output pump + unpark + closing-drain check; returns true when
  /// a closing connection has fully finished and should be dropped.
  bool PumpConnection(const std::shared_ptr<Connection>& conn);
  void DropConnection(size_t index);
  void CloseAll();
  void EnqueueJob(const std::shared_ptr<Connection>& conn, Job&& job);

  // --- worker pool ---
  void StartWorkers();
  void StopWorkers();
  void WorkerLoop();
  /// Hands `conn` to the worker pool. Called with `conn->mu` held: the
  /// connection's ExecState transition to kQueued and its appearance on
  /// the ready queue must be one atomic step, or a racing worker could
  /// observe a queued connection in the wrong state.
  void PushReadyLocked(const std::shared_ptr<Connection>& conn)
      RSSE_REQUIRES(conn->mu);
  void RunHeadJob(const std::shared_ptr<Connection>& conn);

  enum class JobResult { kDone, kParked };
  JobResult ExecuteJob(Connection& conn, Job& job);
  JobResult StartSearchBatch(Connection& conn, Job& job);
  JobResult StartSearchKeyword(Connection& conn, Job& job);
  /// Runs one producer/emitter segment of a streamed search (under one
  /// shared store-table lock); returns kParked on backpressure.
  JobResult ResumeStream(Connection& conn, Job& job);
  void RunSetup(Connection& conn, const Bytes& payload);
  void RunSetupStore(Connection& conn, const Bytes& payload);
  void RunUpdate(Connection& conn, const Bytes& payload);
  void RunStats(Connection& conn);

  // --- emission (worker side) ---
  enum class EmitResult { kStall, kPark, kFinished, kAbort };
  /// Advances the emission cursor as far as available data and the
  /// outbound high-water mark allow.
  EmitResult PumpEmission(Connection& conn, ResultStream& s);
  /// Encodes and stages one frame; false when the connection is gone or
  /// the payload cannot be framed (`oversize_error` is staged instead).
  bool EmitFrame(Connection& conn, FrameType type, ConstByteSpan payload,
                 const char* oversize_error);
  bool EmitEncoded(Connection& conn, const Bytes& frame);
  void EmitError(Connection& conn, const std::string& message);
  void EmitDrainingError(Connection& conn);
  void WakePoll();

  /// True when every connection is fully quiesced (no queued or running
  /// jobs, all output flushed) — the drain loop's exit condition.
  bool AllConnectionsQuiesced();

  /// Rebuilds one recovered slot (deserialize or map + WAL replay) into
  /// the store table. Called under the exclusive store lock.
  Status InstallRecoveredStore(const StorePersistence::RecoveredStore& rec)
      RSSE_REQUIRES(store_mutex_);

  /// Re-snapshots every dirty (updated-since-snapshot) EMM store as a v2
  /// image — the clean-drain fold that turns WAL deltas back into a
  /// mappable file. Mmap mode only; failures are logged, not fatal (the
  /// WAL still covers the deltas).
  void FoldDirtyStores();

  int ResolveWorkerCount() const;

  ServerOptions options_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  uint16_t port_ = 0;
  /// One-way stop latch: a Shutdown that lands before Serve starts must
  /// still win, so Serve never resets it.
  std::atomic<bool> stop_{false};
  /// One-way drain latch (BeginDrain); checked by workers when deciding
  /// whether to start new requests.
  std::atomic<bool> draining_{false};
  /// Durable store table (nullptr when data_dir is empty). The pointer is
  /// written once during RecoverStores (before Serve) and only read
  /// afterwards; StorePersistence locks its own mutable state internally.
  std::unique_ptr<StorePersistence> persist_;
  bool recovered_ = false;
  /// Written only during RecoverStores (single-threaded, before Serve).
  RecoveryStats recovery_stats_;
  /// Resolved mmap-serving mode (options_.mmap_stores / RSSE_MMAP).
  bool mmap_on_ = false;
  /// Guards the store table and its persistence bookkeeping: searches
  /// take it shared per run segment, Setup/Update/recovery exclusive.
  mutable SharedMutex store_mutex_;
  /// Per-slot snapshot epoch (see persist.h).
  std::map<uint32_t, uint64_t> store_epochs_ RSSE_GUARDED_BY(store_mutex_);
  /// Per-slot durable snapshot generation (raw persist SnapshotFormat).
  std::map<uint32_t, uint8_t> store_formats_ RSSE_GUARDED_BY(store_mutex_);
  /// EMM slots updated since their last snapshot (WAL deltas pending a
  /// fold); tracked in mmap mode.
  std::set<uint32_t> dirty_stores_ RSSE_GUARDED_BY(store_mutex_);
  /// Store table, keyed by store slot.
  std::map<uint32_t, HostedStore> stores_ RSSE_GUARDED_BY(store_mutex_);
  bool hosted_ RSSE_GUARDED_BY(store_mutex_) = false;
  ServerStats stats_;
  /// Poll-thread-owned connection list (workers reach connections only
  /// through the shared_ptrs handed to them on the ready queue).
  std::vector<std::shared_ptr<Connection>> conns_;

  // Worker pool + ready queue (connections with a runnable head job).
  Mutex work_mu_;
  CondVar work_cv_;
  std::deque<std::shared_ptr<Connection>> ready_ RSSE_GUARDED_BY(work_mu_);
  bool workers_stop_ RSSE_GUARDED_BY(work_mu_) = false;
  /// Started/joined by the Serve thread only.
  std::vector<std::thread> workers_;
};

}  // namespace rsse::server

#endif  // RSSE_SERVER_SERVER_H_
