#ifndef RSSE_SERVER_SERVER_H_
#define RSSE_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "pb/filter_tree.h"
#include "rsse/bloom_gate.h"
#include "rsse/party.h"
#include "server/wire.h"
#include "shard/sharded_emm.h"

namespace rsse::server {

struct ServerOptions {
  /// Listen address (numeric IPv4). Loopback by default: the wire protocol
  /// carries only labels/ciphertexts/tokens, but exposing it wider is a
  /// deployment decision.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via `port()`).
  uint16_t port = 0;
  /// Shards for a store created through Update before any Setup.
  /// 0 reads RSSE_SHARDS, defaulting to 1. (A Setup blob carries its own
  /// shard count.)
  int shards = 0;
  /// Shard count a hosted Setup blob is re-partitioned to while loading
  /// (`ShardedEmm::Deserialize` re-shard on load). The default keeps the
  /// blob's stored count; 0 re-shards to this host (RSSE_SHARDS, else the
  /// hardware concurrency); a positive count is used as given.
  int load_shards = shard::ShardedEmm::kKeepStoredShards;
  /// Worker threads for batch search and index load. 0 reads
  /// RSSE_SEARCH_THREADS, defaulting to 1.
  int search_threads = 0;
  /// Largest GGM subtree a SearchBatch token may request (the expansion
  /// buffer is 16 bytes per leaf, so 2^26 leaves = 1 GiB per worker at
  /// peak). The wire format allows up to 62; without this cap one hostile
  /// token could drive an astronomically large allocation.
  int max_token_level = 26;
  /// Largest keyword-token batch one SearchKeyword frame may carry —
  /// the keyword-path equivalent of `max_token_level`: per-token bytes
  /// are already capped by the decoder (kMaxKeywordTokenPartBytes), so
  /// this bounds the total work/allocation one hostile frame can demand.
  size_t max_keyword_tokens = size_t{1} << 16;
  /// Highest SetupStore slot id the server accepts, bounding the store
  /// table a client can grow (the scheme family needs two slots; 16
  /// leaves room for multi-index compositions).
  uint32_t max_store_id = 15;
  /// Result chunking: at most this many ids per SearchResult frame and
  /// payloads per SearchPayload frame. Chunks are interleaved round-robin
  /// across the batch's query ids, so a huge range no longer buffers one
  /// query's ids wholesale and first results of every query arrive early.
  size_t max_ids_per_result_frame = size_t{1} << 14;
  size_t max_payloads_per_result_frame = size_t{1} << 12;
};

/// Cumulative serving statistics (reported through StatsResponse).
struct ServerStats {
  uint64_t batches_served = 0;
  uint64_t queries_served = 0;
  uint64_t tokens_received = 0;
  /// Tokens answered from another query's expansion in the same batch.
  uint64_t nodes_deduped = 0;
};

/// The server side of the whole scheme family as a standalone process:
/// hosts one store slot per `SetupStore` frame — `shard::ShardedEmm`
/// encrypted dictionaries (with optional Bloom pre-decryption gates) and
/// PB filter trees — and serves the batched binary protocol of wire.h
/// over TCP. The Constant schemes' GGM batches probe the primary slot;
/// SearchKeyword batches name their slot explicitly (SRC-i's round 2 goes
/// to the secondary slot holding I2).
///
/// `SearchBatch` is the reason this exists as a protocol rather than one
/// request per range: queries whose BRC/URC covers share GGM nodes are
/// deduplicated server-side — each distinct (level, seed) subtree is
/// expanded once, its leaf tokens probed once, and the resulting ids fanned
/// back out to every subscribed query id. Distinct subtrees then shard
/// across `search_threads` workers exactly like the in-process multi-token
/// search.
///
/// Single-threaded poll event loop (nonblocking sockets, length-prefixed
/// frames, partial read/write tolerant); the batch handler itself fans out
/// across worker threads, so the loop stays simple while search scales.
/// The store table is guarded by a reader/writer lock: searches take the
/// lock shared, Update/Setup take it exclusive, so an Update racing a
/// SearchBatch is well-defined (each sees the table before or after, never
/// mid-mutation) even as handlers move onto worker pools.
class EmmServer {
 public:
  explicit EmmServer(const ServerOptions& options = {});
  ~EmmServer();

  EmmServer(const EmmServer&) = delete;
  EmmServer& operator=(const EmmServer&) = delete;

  /// Binds and listens; fills `port()`. Call once before `Serve`.
  Status Listen();

  /// Bound port (valid after `Listen`).
  uint16_t port() const { return port_; }

  /// Runs the event loop on the calling thread until `Shutdown`.
  Status Serve();

  /// Stops `Serve` from any thread (idempotent).
  void Shutdown();

  /// In-process equivalent of a Setup frame (tools/tests): hosts the
  /// serialized ShardedEmm blob at the primary store slot.
  Status Host(const Bytes& index_blob);

  const ServerStats& stats() const { return stats_; }
  size_t EntryCount() const;

 private:
  struct Connection {
    int fd = -1;
    Bytes in;
    size_t in_offset = 0;  // bytes of `in` already parsed
    Bytes out;
    size_t out_offset = 0;  // bytes of `out` already sent
    bool closing = false;   // flush `out`, then close
  };

  /// One hosted store slot: an encrypted dictionary (plus optional gate)
  /// or a PB filter tree, per its `kind`.
  struct HostedStore {
    rsse::StoreKind kind = rsse::StoreKind::kEmm;
    shard::ShardedEmm emm;
    std::unique_ptr<rsse::BloomLabelGate> gate;
    std::unique_ptr<pb::FilterTreeIndex> tree;
  };

  void HandleFrame(Connection& conn, const Frame& frame);
  void HandleSetup(Connection& conn, const Bytes& payload);
  void HandleSetupStore(Connection& conn, const Bytes& payload);
  void HandleSearchBatch(Connection& conn, const Bytes& payload);
  void HandleSearchKeyword(Connection& conn, const Bytes& payload);
  void HandleUpdate(Connection& conn, const Bytes& payload);
  void HandleStats(Connection& conn);
  void SendError(Connection& conn, const std::string& message);

  /// Emits per-query result chunks (ids or payloads) interleaved
  /// round-robin: every query gets a first frame (possibly empty), then
  /// capped chunks alternate across queries until all are drained.
  bool StreamIdResults(Connection& conn,
                       const std::vector<uint32_t>& query_ids,
                       const std::vector<std::vector<uint64_t>>& ids);
  bool StreamPayloadResults(Connection& conn,
                            const std::vector<uint32_t>& query_ids,
                            std::vector<std::vector<Bytes>>& payloads);

  void AcceptPending();
  /// Returns false when the connection should be dropped.
  bool ReadPending(Connection& conn);
  bool WritePending(Connection& conn);
  void CloseAll();

  ServerOptions options_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  uint16_t port_ = 0;
  /// One-way stop latch: a Shutdown that lands before Serve starts must
  /// still win, so Serve never resets it.
  std::atomic<bool> stop_{false};
  /// Store table, keyed by store slot. Guarded by `store_mutex_`:
  /// searches shared, Setup/Update exclusive.
  mutable std::shared_mutex store_mutex_;
  std::map<uint32_t, HostedStore> stores_;
  bool hosted_ = false;
  ServerStats stats_;
  std::vector<Connection> conns_;
};

}  // namespace rsse::server

#endif  // RSSE_SERVER_SERVER_H_
