#ifndef RSSE_SERVER_SERVER_H_
#define RSSE_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "server/wire.h"
#include "shard/sharded_emm.h"

namespace rsse::server {

struct ServerOptions {
  /// Listen address (numeric IPv4). Loopback by default: the wire protocol
  /// carries only labels/ciphertexts/tokens, but exposing it wider is a
  /// deployment decision.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via `port()`).
  uint16_t port = 0;
  /// Shards for a store created through Update before any Setup.
  /// 0 reads RSSE_SHARDS, defaulting to 1. (A Setup blob carries its own
  /// shard count.)
  int shards = 0;
  /// Shard count a hosted Setup blob is re-partitioned to while loading
  /// (`ShardedEmm::Deserialize` re-shard on load). The default keeps the
  /// blob's stored count; 0 re-shards to this host (RSSE_SHARDS, else the
  /// hardware concurrency); a positive count is used as given.
  int load_shards = shard::ShardedEmm::kKeepStoredShards;
  /// Worker threads for batch search and index load. 0 reads
  /// RSSE_SEARCH_THREADS, defaulting to 1.
  int search_threads = 0;
  /// Largest GGM subtree a SearchBatch token may request (the expansion
  /// buffer is 16 bytes per leaf, so 2^26 leaves = 1 GiB per worker at
  /// peak). The wire format allows up to 62; without this cap one hostile
  /// token could drive an astronomically large allocation.
  int max_token_level = 26;
};

/// Cumulative serving statistics (reported through StatsResponse).
struct ServerStats {
  uint64_t batches_served = 0;
  uint64_t queries_served = 0;
  uint64_t tokens_received = 0;
  /// Tokens answered from another query's expansion in the same batch.
  uint64_t nodes_deduped = 0;
};

/// The server side of the Constant schemes as a standalone process: hosts a
/// `shard::ShardedEmm` (the flat encrypted dictionary, hash-sharded across
/// cores) and serves the batched binary protocol of wire.h over TCP.
///
/// `SearchBatch` is the reason this exists as a protocol rather than one
/// request per range: queries whose BRC/URC covers share GGM nodes are
/// deduplicated server-side — each distinct (level, seed) subtree is
/// expanded once, its leaf tokens probed once, and the resulting ids fanned
/// back out to every subscribed query id. Distinct subtrees then shard
/// across `search_threads` workers exactly like the in-process multi-token
/// search.
///
/// Single-threaded poll event loop (nonblocking sockets, length-prefixed
/// frames, partial read/write tolerant); the batch handler itself fans out
/// across worker threads, so the loop stays simple while search scales.
class EmmServer {
 public:
  explicit EmmServer(const ServerOptions& options = {});
  ~EmmServer();

  EmmServer(const EmmServer&) = delete;
  EmmServer& operator=(const EmmServer&) = delete;

  /// Binds and listens; fills `port()`. Call once before `Serve`.
  Status Listen();

  /// Bound port (valid after `Listen`).
  uint16_t port() const { return port_; }

  /// Runs the event loop on the calling thread until `Shutdown`.
  Status Serve();

  /// Stops `Serve` from any thread (idempotent).
  void Shutdown();

  /// In-process equivalent of a Setup frame (tools/tests): hosts the
  /// serialized ShardedEmm blob.
  Status Host(const Bytes& index_blob);

  const ServerStats& stats() const { return stats_; }
  size_t EntryCount() const { return store_.EntryCount(); }

 private:
  struct Connection {
    int fd = -1;
    Bytes in;
    size_t in_offset = 0;  // bytes of `in` already parsed
    Bytes out;
    size_t out_offset = 0;  // bytes of `out` already sent
    bool closing = false;   // flush `out`, then close
  };

  void HandleFrame(Connection& conn, const Frame& frame);
  void HandleSetup(Connection& conn, const Bytes& payload);
  void HandleSearchBatch(Connection& conn, const Bytes& payload);
  void HandleUpdate(Connection& conn, const Bytes& payload);
  void HandleStats(Connection& conn);
  void SendError(Connection& conn, const std::string& message);

  void AcceptPending();
  /// Returns false when the connection should be dropped.
  bool ReadPending(Connection& conn);
  bool WritePending(Connection& conn);
  void CloseAll();

  ServerOptions options_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  uint16_t port_ = 0;
  /// One-way stop latch: a Shutdown that lands before Serve starts must
  /// still win, so Serve never resets it.
  std::atomic<bool> stop_{false};
  shard::ShardedEmm store_;
  bool hosted_ = false;
  ServerStats stats_;
  std::vector<Connection> conns_;
};

}  // namespace rsse::server

#endif  // RSSE_SERVER_SERVER_H_
