// rsse_serverd: standalone encrypted-range-search server for the whole
// scheme family.
//
// Hosts the store blobs a scheme's ExportServerSetup ships (sharded
// encrypted dictionaries with optional Bloom pre-decryption gates, the PB
// baseline's filter tree — one SetupStore frame per slot, SRC-i's I1/I2
// included) and serves batched GGM-token and keyword-token searches over
// the length-prefixed binary protocol of server/wire.h.
//
//   rsse_serverd --port=7370 --threads=8
//   rsse_serverd --port=0              # ephemeral; the bound port is printed
//   rsse_serverd --data-dir=/var/lib/rsse  # crash-safe store persistence
//
// Flags:
//   --bind=<ipv4>      listen address        (default 127.0.0.1)
//   --port=<port>      TCP port, 0=ephemeral (default 7370)
//   --shards=<n>       shards for Update-built stores (default RSSE_SHARDS)
//   --threads=<n>      batch-search workers  (default RSSE_SEARCH_THREADS)
//   --load-shards=<n>  re-shard hosted Setup blobs while loading:
//                      auto = this host's core count (RSSE_SHARDS wins),
//                      <n> = explicit count (default: keep the blob's)
//   --max-level=<l>    largest GGM subtree per token (default 26)
//   --max-keyword-tokens=<n>  largest keyword-token batch (default 65536)
//   --search-workers=<n>  persistent search-worker pool size
//                      (default: the --threads resolution)
//   --max-outbound-bytes=<n>  per-connection outbound high-water mark;
//                      a search job parks when its connection's unsent
//                      output would cross it, and resumes once the
//                      socket drains (0 = unbounded; default 8 MiB)
//   --data-dir=<path>  durable store directory: SetupStore blobs persist
//                      as checksummed snapshots, Update batches append to
//                      a write-ahead log, and boot replays both so a
//                      restarted server answers exactly as before
//   --drain-timeout-ms=<ms>  graceful-drain budget: the first
//                      SIGTERM/SIGINT stops accepting and lets in-flight
//                      streams finish up to this long before exiting
//                      (default 10000; a second signal aborts immediately)
//   --mmap=on|off      serve encrypted-dictionary stores straight off
//                      mmap'd v2 snapshots (O(1) recovery; default: the
//                      RSSE_MMAP environment toggle, else off)
//   --prefault=0|1     with --mmap=on, touch every mapped page during
//                      recovery so first queries never page-fault
//                      (default 0)

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "server/cli_flags.h"
#include "server/server.h"

namespace {

using rsse::server::FlagValue;

rsse::server::EmmServer* g_server = nullptr;
volatile std::sig_atomic_t g_signals_seen = 0;

// First signal: drain (stop accepting, finish in-flight streams, exit 0).
// Second: hard shutdown. Both paths are async-signal-safe — an atomic
// store plus one write() to the server's self-wake pipe.
void HandleSignal(int) {
  if (g_server == nullptr) return;
  const std::sig_atomic_t seen = g_signals_seen;
  g_signals_seen = seen + 1;
  if (seen == 0) {
    g_server->BeginDrain();
  } else {
    g_server->Shutdown();
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "rsse_serverd: encrypted-range-search server (all schemes)\n"
          "  --bind=<ipv4>  --port=<port>  --shards=<n>  --threads=<n>\n"
          "  --load-shards=<n|auto>  (re-shard hosted blobs while loading)\n"
          "  --max-level=<l>  (largest GGM subtree per token, default 26)\n"
          "  --max-keyword-tokens=<n>  (largest keyword batch, "
          "default 65536)\n"
          "  --search-workers=<n>  (search-worker pool size, default: "
          "the --threads resolution)\n"
          "  --max-outbound-bytes=<n>  (per-connection outbound "
          "high-water mark, 0 = unbounded, default 8 MiB)\n"
          "  --data-dir=<path>  (durable store snapshots + update WAL, "
          "replayed on boot)\n"
          "  --drain-timeout-ms=<ms>  (graceful-drain budget after "
          "SIGTERM/SIGINT, default 10000)\n"
          "  --mmap=on|off  (serve stores off mmap'd v2 snapshots; "
          "default: RSSE_MMAP env, else off)\n"
          "  --prefault=0|1  (with --mmap=on, fault every mapped page in "
          "at boot)\n");
      return 0;
    }
  }
  rsse::server::ServerOptions options;
  options.port = 7370;
  if (const char* v = FlagValue(argc, argv, "bind")) options.bind_address = v;
  if (const char* v = FlagValue(argc, argv, "port")) {
    options.port = static_cast<uint16_t>(std::strtoul(v, nullptr, 10));
  }
  if (const char* v = FlagValue(argc, argv, "shards")) {
    options.shards = std::atoi(v);
  }
  if (const char* v = FlagValue(argc, argv, "load-shards")) {
    // This flag silently changes the hosted data layout, so unparseable
    // values must fail loudly rather than atoi-ing to "re-shard to host".
    if (std::strcmp(v, "auto") == 0) {
      options.load_shards = 0;
    } else {
      char* end = nullptr;
      const long parsed = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || parsed <= 0) {
        std::fprintf(stderr,
                     "rsse_serverd: --load-shards must be 'auto' or a "
                     "positive integer (got '%s')\n",
                     v);
        return 2;
      }
      options.load_shards = static_cast<int>(parsed);
    }
  }
  if (const char* v = FlagValue(argc, argv, "threads")) {
    options.search_threads = std::atoi(v);
  }
  if (const char* v = FlagValue(argc, argv, "max-level")) {
    options.max_token_level = std::atoi(v);
  }
  if (const char* v = FlagValue(argc, argv, "max-keyword-tokens")) {
    options.max_keyword_tokens =
        static_cast<size_t>(std::strtoull(v, nullptr, 10));
  }
  if (const char* v = FlagValue(argc, argv, "search-workers")) {
    options.search_workers = std::atoi(v);
  }
  if (const char* v = FlagValue(argc, argv, "max-outbound-bytes")) {
    options.max_outbound_bytes =
        static_cast<size_t>(std::strtoull(v, nullptr, 10));
  }
  if (const char* v = FlagValue(argc, argv, "data-dir")) {
    options.data_dir = v;
  }
  if (const char* v = FlagValue(argc, argv, "drain-timeout-ms")) {
    options.drain_timeout_ms = std::atoi(v);
  }
  if (const char* v = FlagValue(argc, argv, "mmap")) {
    // Like --load-shards, this flag changes the serving substrate; a
    // typo must not silently fall back to the environment default.
    if (std::strcmp(v, "on") == 0) {
      options.mmap_stores = 1;
    } else if (std::strcmp(v, "off") == 0) {
      options.mmap_stores = 0;
    } else {
      std::fprintf(stderr,
                   "rsse_serverd: --mmap must be 'on' or 'off' (got '%s')\n",
                   v);
      return 2;
    }
  }
  if (const char* v = FlagValue(argc, argv, "prefault")) {
    options.prefault = std::atoi(v) != 0;
  }

  rsse::server::EmmServer server(options);
  const auto recover_start = std::chrono::steady_clock::now();
  rsse::Status s = server.Listen();
  if (!s.ok()) {
    std::fprintf(stderr, "rsse_serverd: %s\n", s.ToString().c_str());
    return 1;
  }
  if (!options.data_dir.empty()) {
    const auto& rec = server.recovery_stats();
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - recover_start)
            .count();
    std::printf(
        "rsse_serverd: recovered %zu store(s), %zu wal record(s) in %lld ms"
        " (%zu corrupt snapshot(s) dropped, %zu torn wal byte(s) cut)\n",
        rec.stores_recovered, rec.wal_records_applied,
        static_cast<long long>(elapsed_ms), rec.corrupt_snapshots_dropped,
        rec.wal_bytes_truncated);
    for (const auto& mem : server.StoreMemory()) {
      std::printf(
          "rsse_serverd: store %u: %llu mapped byte(s), %llu heap byte(s), "
          "snapshot v%u (%s)\n",
          mem.store_id, static_cast<unsigned long long>(mem.mapped_bytes),
          static_cast<unsigned long long>(mem.heap_bytes),
          mem.snapshot_format,
          server.mmap_enabled() ? "mmap serving" : "heap serving");
    }
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::printf("rsse_serverd: listening on %s:%u\n",
              options.bind_address.c_str(), server.port());
  std::fflush(stdout);
  s = server.Serve();
  if (!s.ok()) {
    std::fprintf(stderr, "rsse_serverd: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("rsse_serverd: shut down cleanly\n");
  return 0;
}
