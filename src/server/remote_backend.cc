#include "server/remote_backend.h"

#include <utility>

#include "sse/encrypted_multimap.h"

namespace rsse::server {

Result<rsse::ResolvedIds> RemoteBackend::Resolve(
    const rsse::TokenSet& tokens) {
  rsse::ResolvedIds out;

  // GGM subtree tokens: the batched SearchBatch path (primary store only —
  // the wire dedupe/expansion pipeline is bound to the main dictionary).
  if (!tokens.ggm.empty()) {
    if (tokens.store != rsse::kPrimaryStore) {
      return Status::InvalidArgument(
          "GGM tokens resolve against the primary store only");
    }
    EmmClient::BatchQuery query;
    query.query_id = 0;
    query.tokens = tokens.ggm;
    Result<EmmClient::BatchOutcome> outcome = client_.SearchBatch({query});
    if (!outcome.ok()) return outcome.status();
    out.skipped_decrypts +=
        static_cast<size_t>(outcome->done.skipped_decrypts);
    auto it = outcome->ids.find(0);
    if (it != outcome->ids.end()) {
      out.payloads.reserve(out.payloads.size() + it->second.size());
      for (uint64_t id : it->second) {
        out.payloads.push_back(sse::EncodeIdPayload(id));
      }
    }
  }

  // Keyword tokens / opaque trapdoors: one SearchKeyword batch against the
  // token set's store slot.
  if (!tokens.keyword.empty() || !tokens.opaque.empty()) {
    SearchKeywordRequest req;
    req.store_id = tokens.store;
    SearchKeywordRequest::Query query;
    query.query_id = 0;
    query.tokens.reserve(tokens.keyword.size() + tokens.opaque.size());
    for (const sse::KeywordKeys& keys : tokens.keyword) {
      WireKeywordToken t;
      t.kind = 0;
      t.a = keys.label_key;
      t.b = keys.value_key;
      query.tokens.push_back(std::move(t));
    }
    for (const Bytes& trapdoor : tokens.opaque) {
      WireKeywordToken t;
      t.kind = 1;
      t.a = trapdoor;
      query.tokens.push_back(std::move(t));
    }
    req.queries.push_back(std::move(query));
    Result<EmmClient::KeywordOutcome> outcome = client_.SearchKeyword(req);
    if (!outcome.ok()) return outcome.status();
    out.skipped_decrypts +=
        static_cast<size_t>(outcome->done.skipped_decrypts);
    auto it = outcome->payloads.find(0);
    if (it != outcome->payloads.end()) {
      for (Bytes& payload : it->second) {
        out.payloads.push_back(std::move(payload));
      }
    }
  }
  return out;
}

Status InstallServerSetup(EmmClient& client,
                          const rsse::ServerSetup& setup) {
  for (const rsse::StoreSetup& store : setup.stores) {
    SetupStoreRequest req;
    req.store_id = store.store;
    req.kind = static_cast<uint8_t>(store.kind);
    req.index_blob = store.index_blob;
    req.gate_blob = store.gate_blob;
    Result<SetupResponse> resp = client.SetupStore(req);
    if (!resp.ok()) return resp.status();
  }
  return Status::Ok();
}

}  // namespace rsse::server
