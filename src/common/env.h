#ifndef RSSE_COMMON_ENV_H_
#define RSSE_COMMON_ENV_H_

namespace rsse {

/// Resolves a worker-thread count: a positive `requested` wins, otherwise
/// a positive integer in the `env_var` environment variable, otherwise 1
/// (single-threaded, paper-faithful timing). Shared by index construction
/// (`RSSE_BUILD_THREADS`) and multi-token search (`RSSE_SEARCH_THREADS`).
int ResolveThreadCount(int requested, const char* env_var);

/// Like `ResolveThreadCount`, but when neither `requested` nor the env var
/// decides, falls back to the host's hardware concurrency (minimum 1).
/// Used where "fit this machine" is the right default — e.g. re-sharding a
/// loaded dictionary to the serving host's core count.
int ResolveThreadCountOrHardware(int requested, const char* env_var);

}  // namespace rsse

#endif  // RSSE_COMMON_ENV_H_
