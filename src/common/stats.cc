#include "common/stats.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace rsse {

void StatsAccumulator::Add(double v) {
  values_.push_back(v);
  sum_ += v;
  sorted_ = false;
}

double StatsAccumulator::mean() const {
  if (values_.empty()) return 0.0;
  return sum_ / static_cast<double>(values_.size());
}

double StatsAccumulator::min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double StatsAccumulator::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double StatsAccumulator::Percentile(double p) const {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

namespace {
uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

WallTimer::WallTimer() : start_ns_(NowNanos()) {}

void WallTimer::Reset() { start_ns_ = NowNanos(); }

uint64_t WallTimer::ElapsedNanos() const { return NowNanos() - start_ns_; }

double WallTimer::ElapsedMillis() const {
  return static_cast<double>(ElapsedNanos()) / 1e6;
}

double WallTimer::ElapsedSeconds() const {
  return static_cast<double>(ElapsedNanos()) / 1e9;
}

}  // namespace rsse
