#ifndef RSSE_COMMON_FAILPOINT_H_
#define RSSE_COMMON_FAILPOINT_H_

#include <cstdint>
#include <string>

namespace rsse::failpoint {

/// Fault-injection registry for the crash-recovery and flaky-network
/// suites. Code sprinkles named hooks into its failure-prone paths —
///
///   const failpoint::Action fp = failpoint::Hit("persist_wal_append");
///   if (fp.kind == failpoint::ActionKind::kError) return InjectedError();
///
/// — and a test (or the environment) arms them. Compiled out unless the
/// build defines RSSE_FAILPOINTS_ENABLED (-DRSSE_FAILPOINTS=ON in CMake):
/// a disarmed build's Hit() is an inline constant, so production binaries
/// carry no registry, no locks, and no env parsing.
///
/// Spec syntax, programmatic (`Set`) or via the RSSE_FAILPOINTS env var
/// (parsed once, at the first Hit):
///
///   RSSE_FAILPOINTS="name=action[:arg][*count][;name2=...]"
///
///   actions:  error        fail the call site outright
///             short        perform a partial write, then fail
///             torn         alias of short (a torn tail on disk)
///             reset        fail a socket call as if ECONNRESET
///             stall[:ms]   sleep `ms` (default 100), then continue
///             off          disarm
///   *count:   fire this many times, then disarm (default: every hit)
///
/// Example: RSSE_FAILPOINTS="persist_wal_append=torn*1;client_recv=reset"

enum class ActionKind : uint8_t {
  kOff = 0,
  kError,
  kShortWrite,
  kReset,
  kStall,
};

struct Action {
  ActionKind kind = ActionKind::kOff;
  /// kStall: milliseconds to sleep (Hit() itself never sleeps; the call
  /// site decides how to apply the stall).
  int arg = 0;

  bool armed() const { return kind != ActionKind::kOff; }
};

#ifdef RSSE_FAILPOINTS_ENABLED

inline constexpr bool kCompiledIn = true;

/// Consumes one firing of `name` (decrementing a finite count) and returns
/// the armed action, or kOff. Thread-safe.
Action Hit(const char* name);

/// Arms `name` with `spec` ("action[:arg][*count]"). Returns false on an
/// unparseable spec. Thread-safe.
bool Set(const std::string& name, const std::string& spec);

/// Arms every "name=spec" pair in a full RSSE_FAILPOINTS-style list.
bool SetList(const std::string& list);

void Clear(const std::string& name);
void ClearAll();

/// Total times `name` has fired (armed hits only) — test instrumentation.
uint64_t HitCount(const std::string& name);

#else

inline constexpr bool kCompiledIn = false;

inline Action Hit(const char*) { return {}; }
inline bool Set(const std::string&, const std::string&) { return false; }
inline bool SetList(const std::string&) { return false; }
inline void Clear(const std::string&) {}
inline void ClearAll() {}
inline uint64_t HitCount(const std::string&) { return 0; }

#endif  // RSSE_FAILPOINTS_ENABLED

}  // namespace rsse::failpoint

#endif  // RSSE_COMMON_FAILPOINT_H_
