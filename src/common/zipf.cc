#include "common/zipf.h"

#include <algorithm>
#include <cmath>

namespace rsse {

ZipfSampler::ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
  cdf_.resize(n_);
  double total = 0.0;
  for (uint64_t i = 0; i < n_; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
    cdf_[i] = total;
  }
  for (uint64_t i = 0; i < n_; ++i) cdf_[i] /= total;
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.UniformReal();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace rsse
