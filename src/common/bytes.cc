#include "common/bytes.h"

namespace rsse {

namespace {

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Bytes ToBytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

Bytes LabelToBytes(const Label& l) { return Bytes(l.begin(), l.end()); }

std::string ToHex(const Bytes& data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

Bytes FromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) return {};
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

void Append(Bytes& dst, const Bytes& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

void AppendByte(Bytes& dst, uint8_t b) { dst.push_back(b); }

Bytes Concat(std::initializer_list<const Bytes*> parts) {
  size_t total = 0;
  for (const Bytes* p : parts) total += p->size();
  Bytes out;
  out.reserve(total);
  for (const Bytes* p : parts) Append(out, *p);
  return out;
}

void AppendUint64(Bytes& dst, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    dst.push_back(static_cast<uint8_t>((v >> shift) & 0xff));
  }
}

void StoreUint64(uint8_t out[8], uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<uint8_t>((v >> (56 - 8 * i)) & 0xff);
  }
}

void AppendUint32(Bytes& dst, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    dst.push_back(static_cast<uint8_t>((v >> shift) & 0xff));
  }
}

uint64_t ReadUint64(const Bytes& data, size_t offset) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v = (v << 8) | data[offset + i];
  }
  return v;
}

uint32_t ReadUint32(const Bytes& data, size_t offset) {
  uint32_t v = 0;
  for (size_t i = 0; i < 4; ++i) {
    v = (v << 8) | data[offset + i];
  }
  return v;
}

bool ConstantTimeEqual(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) return false;
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

uint64_t Fnv1a64(const Bytes& data) {
  uint64_t h = 14695981039346656037ull;
  for (uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace rsse
