#include "common/env.h"

#include <cstdlib>
#include <thread>

namespace rsse {

namespace {

int ResolveOrDefault(int requested, const char* env_var, int fallback) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv(env_var); env != nullptr) {
    int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

}  // namespace

int ResolveThreadCount(int requested, const char* env_var) {
  return ResolveOrDefault(requested, env_var, 1);
}

int ResolveThreadCountOrHardware(int requested, const char* env_var) {
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  return ResolveOrDefault(requested, env_var, cores > 0 ? cores : 1);
}

}  // namespace rsse
