#include "common/env.h"

#include <cstdlib>

namespace rsse {

int ResolveThreadCount(int requested, const char* env_var) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv(env_var); env != nullptr) {
    int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 1;
}

}  // namespace rsse
