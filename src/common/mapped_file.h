#ifndef RSSE_COMMON_MAPPED_FILE_H_
#define RSSE_COMMON_MAPPED_FILE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace rsse {

/// A read-only, shared memory mapping of a whole file. The mapping stays
/// valid for the object's lifetime, so consumers that hand out spans into
/// it (FlatLabelMap views, ShardedEmm::OpenMapped) hold it by
/// shared_ptr. Because the mapping pins the inode, the snapshot
/// atomic-rename dance is safe against live readers: a replacement file
/// renamed over this one leaves the mapped bytes untouched.
class MappedFile {
 public:
  /// Maps `path` read-only (PROT_READ, MAP_SHARED). An empty file maps to
  /// an empty span. Fails with NOT_FOUND / INTERNAL on open/stat/mmap
  /// errors.
  static Result<std::shared_ptr<const MappedFile>> Open(
      const std::string& path);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  ConstByteSpan bytes() const {
    return ConstByteSpan(static_cast<const uint8_t*>(data_), size_);
  }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Advises the kernel that [offset, offset+length) will be probed at
  /// random (MADV_RANDOM): no readahead, page-cache holds only what the
  /// workload touches. Best-effort; errors are ignored.
  void AdviseRandom(size_t offset, size_t length) const;

  /// Advises the kernel to start paging [offset, offset+length) in
  /// (MADV_WILLNEED). Best-effort; errors are ignored.
  void AdviseWillNeed(size_t offset, size_t length) const;

  /// Touches one byte per page of [offset, offset+length), synchronously
  /// faulting the range into the page cache (the --prefault warmup pass).
  /// Returns the number of pages touched.
  size_t Prefault(size_t offset, size_t length) const;

 private:
  MappedFile(std::string path, void* data, size_t size)
      : path_(std::move(path)), data_(data), size_(size) {}

  std::string path_;
  void* data_ = nullptr;
  size_t size_ = 0;
};

/// Reads exactly [offset, offset+length) of `path` with pread. Used by
/// recovery paths that need a byte range without mapping (heap loads of
/// v2 snapshots, header-only validation).
Result<Bytes> ReadFileRange(const std::string& path, uint64_t offset,
                            uint64_t length);

}  // namespace rsse

#endif  // RSSE_COMMON_MAPPED_FILE_H_
