#include "common/failpoint.h"

#ifdef RSSE_FAILPOINTS_ENABLED

#include <cstdlib>
#include <map>

#include "common/thread_annotations.h"

namespace rsse::failpoint {

namespace {

struct State {
  Action action;
  /// Firings left before auto-disarm; -1 = unlimited.
  long remaining = -1;
  uint64_t hits = 0;
};

struct Registry {
  Mutex mu;
  std::map<std::string, State> points RSSE_GUARDED_BY(mu);
  bool env_loaded RSSE_GUARDED_BY(mu) = false;
};

Registry& registry() {
  static Registry instance;
  return instance;
}

bool ParseSpec(const std::string& spec, State& out) {
  std::string body = spec;
  out.remaining = -1;
  if (const size_t star = body.rfind('*'); star != std::string::npos) {
    const std::string count = body.substr(star + 1);
    body = body.substr(0, star);
    char* end = nullptr;
    const long parsed = std::strtol(count.c_str(), &end, 10);
    if (end == count.c_str() || *end != '\0' || parsed < 0) return false;
    out.remaining = parsed;
  }
  int arg = 0;
  if (const size_t colon = body.find(':'); colon != std::string::npos) {
    const std::string arg_str = body.substr(colon + 1);
    body = body.substr(0, colon);
    char* end = nullptr;
    const long parsed = std::strtol(arg_str.c_str(), &end, 10);
    if (end == arg_str.c_str() || *end != '\0' || parsed < 0) return false;
    arg = static_cast<int>(parsed);
  }
  if (body == "off") {
    out.action = Action{};
  } else if (body == "error") {
    out.action.kind = ActionKind::kError;
  } else if (body == "short" || body == "torn") {
    out.action.kind = ActionKind::kShortWrite;
  } else if (body == "reset") {
    out.action.kind = ActionKind::kReset;
  } else if (body == "stall") {
    out.action.kind = ActionKind::kStall;
    if (arg == 0) arg = 100;
  } else {
    return false;
  }
  out.action.arg = arg;
  return true;
}

bool SetListLocked(Registry& r, const std::string& list)
    RSSE_REQUIRES(r.mu) {
  bool ok = true;
  size_t at = 0;
  while (at < list.size()) {
    size_t end = list.find_first_of(";,", at);
    if (end == std::string::npos) end = list.size();
    const std::string item = list.substr(at, end - at);
    at = end + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      ok = false;
      continue;
    }
    State state;
    if (!ParseSpec(item.substr(eq + 1), state)) {
      ok = false;
      continue;
    }
    State& slot = r.points[item.substr(0, eq)];
    state.hits = slot.hits;
    slot = state;
  }
  return ok;
}

void LoadEnvLocked(Registry& r) RSSE_REQUIRES(r.mu) {
  if (r.env_loaded) return;
  r.env_loaded = true;
  if (const char* env = std::getenv("RSSE_FAILPOINTS")) {
    SetListLocked(r, env);
  }
}

}  // namespace

Action Hit(const char* name) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  LoadEnvLocked(r);
  auto it = r.points.find(name);
  if (it == r.points.end()) return {};
  State& state = it->second;
  if (!state.action.armed() || state.remaining == 0) return {};
  if (state.remaining > 0) --state.remaining;
  ++state.hits;
  return state.action;
}

bool Set(const std::string& name, const std::string& spec) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  LoadEnvLocked(r);
  State state;
  if (!ParseSpec(spec, state)) return false;
  State& slot = r.points[name];
  state.hits = slot.hits;
  slot = state;
  return true;
}

bool SetList(const std::string& list) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  LoadEnvLocked(r);
  return SetListLocked(r, list);
}

void Clear(const std::string& name) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  auto it = r.points.find(name);
  if (it != r.points.end()) {
    State cleared;
    cleared.hits = it->second.hits;
    it->second = cleared;
  }
}

void ClearAll() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  for (auto& [name, state] : r.points) {
    State cleared;
    cleared.hits = state.hits;
    state = cleared;
  }
}

uint64_t HitCount(const std::string& name) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.hits;
}

}  // namespace rsse::failpoint

#endif  // RSSE_FAILPOINTS_ENABLED
