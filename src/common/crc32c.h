#ifndef RSSE_COMMON_CRC32C_H_
#define RSSE_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"

namespace rsse {

/// CRC32C (Castagnoli polynomial, the iSCSI/ext4 checksum) over `data`,
/// continuing from `seed` (0 for a fresh checksum). Used to checksum the
/// server's snapshot files and WAL records: the Castagnoli polynomial has
/// the best published error-detection properties for short records, and a
/// software slice-by-8 table keeps it fast enough that fsync, not the
/// checksum, dominates every durable write.
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

inline uint32_t Crc32c(ConstByteSpan data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

}  // namespace rsse

#endif  // RSSE_COMMON_CRC32C_H_
