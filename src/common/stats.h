#ifndef RSSE_COMMON_STATS_H_
#define RSSE_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rsse {

/// Streaming accumulator for benchmark/experiment statistics: count, mean,
/// min, max, and exact percentiles (values are retained).
class StatsAccumulator {
 public:
  void Add(double v);

  size_t count() const { return values_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }
  /// Exact percentile by nearest-rank; `p` in [0, 100].
  double Percentile(double p) const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  double sum_ = 0.0;
};

/// Wall-clock timer in nanoseconds (steady clock).
class WallTimer {
 public:
  WallTimer();
  /// Restarts the timer.
  void Reset();
  /// Elapsed nanoseconds since construction / last Reset().
  uint64_t ElapsedNanos() const;
  double ElapsedMillis() const;
  double ElapsedSeconds() const;

 private:
  uint64_t start_ns_;
};

}  // namespace rsse

#endif  // RSSE_COMMON_STATS_H_
