#ifndef RSSE_COMMON_STATS_H_
#define RSSE_COMMON_STATS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rsse {

/// Lock-free running maximum: many threads Observe(), any thread reads
/// value(). The CAS loop only retries while the observed value is still
/// the largest seen, so contention is bounded by genuine new maxima.
/// (Being a single atomic, this carries no capability annotations — the
/// thread-safety analysis sees lock-free code as unguarded by design;
/// TSan covers it instead.)
class AtomicMaxGauge {
 public:
  void Observe(uint64_t v) {
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  uint64_t value() const { return max_.load(std::memory_order_relaxed); }

  void Reset() { max_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> max_{0};
};

/// Streaming accumulator for benchmark/experiment statistics: count, mean,
/// min, max, and exact percentiles (values are retained).
///
/// NOT thread-safe, not even for concurrent const reads: Percentile()
/// sorts the retained values lazily through the `mutable` members. One
/// accumulator per thread (as the benches do), or an external lock.
class StatsAccumulator {
 public:
  void Add(double v);

  size_t count() const { return values_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }
  /// Exact percentile by nearest-rank; `p` in [0, 100].
  double Percentile(double p) const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  double sum_ = 0.0;
};

/// Wall-clock timer in nanoseconds (steady clock).
class WallTimer {
 public:
  WallTimer();
  /// Restarts the timer.
  void Reset();
  /// Elapsed nanoseconds since construction / last Reset().
  uint64_t ElapsedNanos() const;
  double ElapsedMillis() const;
  double ElapsedSeconds() const;

 private:
  uint64_t start_ns_;
};

}  // namespace rsse

#endif  // RSSE_COMMON_STATS_H_
