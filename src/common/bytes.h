#ifndef RSSE_COMMON_BYTES_H_
#define RSSE_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rsse {

/// Raw byte buffer used throughout the library for keys, labels, tokens and
/// ciphertexts. A plain vector keeps the dependency surface minimal and makes
/// serialization trivial.
using Bytes = std::vector<uint8_t>;

/// Converts an ASCII string to bytes (no terminator).
Bytes ToBytes(std::string_view s);

/// Hex-encodes `data` (lowercase, two chars per byte).
std::string ToHex(const Bytes& data);

/// Decodes a lowercase/uppercase hex string. Returns an empty buffer when
/// `hex` has odd length or contains a non-hex character.
Bytes FromHex(std::string_view hex);

/// Appends `src` to `dst`.
void Append(Bytes& dst, const Bytes& src);

/// Appends a single byte to `dst`.
void AppendByte(Bytes& dst, uint8_t b);

/// Concatenates any number of buffers.
Bytes Concat(std::initializer_list<const Bytes*> parts);

/// Serializes `v` big-endian into 8 bytes appended to `dst`.
void AppendUint64(Bytes& dst, uint64_t v);

/// Serializes `v` big-endian into 4 bytes appended to `dst`.
void AppendUint32(Bytes& dst, uint32_t v);

/// Reads a big-endian uint64 from `data` at `offset`. The caller must
/// guarantee `offset + 8 <= data.size()`.
uint64_t ReadUint64(const Bytes& data, size_t offset);

/// Reads a big-endian uint32 from `data` at `offset`. The caller must
/// guarantee `offset + 4 <= data.size()`.
uint32_t ReadUint32(const Bytes& data, size_t offset);

/// Constant-time equality check; returns false on length mismatch without
/// early exit on content.
bool ConstantTimeEqual(const Bytes& a, const Bytes& b);

/// Deterministic 64-bit FNV-1a hash of a byte buffer. Not cryptographic;
/// used for hash-table bucketing of already-pseudorandom labels.
uint64_t Fnv1a64(const Bytes& data);

/// Hash functor so `Bytes` can key unordered containers.
struct BytesHash {
  size_t operator()(const Bytes& b) const {
    return static_cast<size_t>(Fnv1a64(b));
  }
};

}  // namespace rsse

#endif  // RSSE_COMMON_BYTES_H_
