#ifndef RSSE_COMMON_BYTES_H_
#define RSSE_COMMON_BYTES_H_

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rsse {

/// Raw byte buffer used throughout the library for keys, labels, tokens and
/// ciphertexts. A plain vector keeps the dependency surface minimal and makes
/// serialization trivial.
using Bytes = std::vector<uint8_t>;

/// Non-owning byte views for the scratch-buffer crypto APIs (`EvalInto`,
/// `EncryptInto`, ...): callers keep ownership and reuse buffers across
/// calls, so the hot paths allocate nothing in steady state.
using ByteSpan = std::span<uint8_t>;
using ConstByteSpan = std::span<const uint8_t>;

/// Fixed-size 128-bit dictionary label / GGM seed. Labels are PRF outputs
/// (λ = 16 bytes everywhere in this library), so a fixed-size array type
/// avoids one heap allocation per label and gives the flat dictionary
/// trivially comparable, contiguous keys.
inline constexpr size_t kLabelBytes = 16;
using Label = std::array<uint8_t, kLabelBytes>;

/// Hash functor for `Label` keys. Labels are pseudorandom, so their first
/// eight bytes are already a uniform 64-bit hash — no mixing needed.
struct LabelHash {
  size_t operator()(const Label& l) const {
    uint64_t v;
    std::memcpy(&v, l.data(), sizeof(v));
    return static_cast<size_t>(v);
  }
};

/// `Label` contents as an owning `Bytes` (for APIs that persist labels).
Bytes LabelToBytes(const Label& l);

/// Converts an ASCII string to bytes (no terminator).
Bytes ToBytes(std::string_view s);

/// Hex-encodes `data` (lowercase, two chars per byte).
std::string ToHex(const Bytes& data);

/// Decodes a lowercase/uppercase hex string. Returns an empty buffer when
/// `hex` has odd length or contains a non-hex character.
Bytes FromHex(std::string_view hex);

/// Appends `src` to `dst`.
void Append(Bytes& dst, const Bytes& src);

/// Appends a single byte to `dst`.
void AppendByte(Bytes& dst, uint8_t b);

/// Concatenates any number of buffers.
Bytes Concat(std::initializer_list<const Bytes*> parts);

/// Serializes `v` big-endian into 8 bytes appended to `dst`.
void AppendUint64(Bytes& dst, uint64_t v);

/// Serializes `v` big-endian into a fixed 8-byte buffer (no allocation;
/// the counter-encoding hot path of label derivation).
void StoreUint64(uint8_t out[8], uint64_t v);

/// Serializes `v` big-endian into 4 bytes appended to `dst`.
void AppendUint32(Bytes& dst, uint32_t v);

/// Reads a big-endian uint64 from `data` at `offset`. The caller must
/// guarantee `offset + 8 <= data.size()`.
uint64_t ReadUint64(const Bytes& data, size_t offset);

// Little-endian fixed-width accessors for the mmap-native v2 store format,
// whose on-disk records are read in place (no deserialization pass). memcpy
// keeps unaligned access defined; the byte swap compiles away on
// little-endian hosts.

inline uint64_t LoadU64Le(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap64(v);
  }
  return v;
}

inline uint32_t LoadU32Le(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap32(v);
  }
  return v;
}

inline void StoreU64Le(uint8_t* p, uint64_t v) {
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap64(v);
  }
  std::memcpy(p, &v, sizeof(v));
}

inline void StoreU32Le(uint8_t* p, uint32_t v) {
  if constexpr (std::endian::native == std::endian::big) {
    v = __builtin_bswap32(v);
  }
  std::memcpy(p, &v, sizeof(v));
}

/// Reads a big-endian uint32 from `data` at `offset`. The caller must
/// guarantee `offset + 4 <= data.size()`.
uint32_t ReadUint32(const Bytes& data, size_t offset);

/// Constant-time equality check; returns false on length mismatch without
/// early exit on content.
bool ConstantTimeEqual(const Bytes& a, const Bytes& b);

/// Deterministic 64-bit FNV-1a hash of a byte buffer. Not cryptographic;
/// used for hash-table bucketing of already-pseudorandom labels.
uint64_t Fnv1a64(const Bytes& data);

/// Hash functor so `Bytes` can key unordered containers.
struct BytesHash {
  size_t operator()(const Bytes& b) const {
    return static_cast<size_t>(Fnv1a64(b));
  }
};

}  // namespace rsse

#endif  // RSSE_COMMON_BYTES_H_
