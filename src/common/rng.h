#ifndef RSSE_COMMON_RNG_H_
#define RSSE_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace rsse {

/// Deterministic pseudo-random generator for simulations, dataset synthesis
/// and benchmark workloads. NOT for cryptographic material — key generation
/// uses `crypto::SecureRandom` (OS entropy via OpenSSL).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedull) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t Uniform(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double UniformReal();

  /// Bernoulli trial with success probability `p`.
  bool Flip(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(0, i - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Access to the underlying engine for std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rsse

#endif  // RSSE_COMMON_RNG_H_
