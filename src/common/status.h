#ifndef RSSE_COMMON_STATUS_H_
#define RSSE_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace rsse {

/// Error category for `Status`. Kept deliberately small; the library avoids
/// exceptions (Google style) and reports recoverable failures through
/// `Status` / `Result<T>` return values.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  /// Transient transport-level failure (peer gone, connection reset,
  /// server draining): safe to retry after reconnect/backoff, unlike
  /// kInternal which marks a genuine fault.
  kUnavailable,
};

/// Human-readable name of a status code ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

/// Lightweight status object carrying a code plus context message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE: message" for logging.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error return type. Mirrors the shape of absl::StatusOr without
/// the dependency: either holds a `T` (status OK) or an error `Status`.
template <typename T>
class Result {
 public:
  /// Implicit from value: `return some_t;`
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit from error status: `return Status::InvalidArgument(...);`
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value accessors; valid only when `ok()`.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define RSSE_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::rsse::Status rsse_status_tmp_ = (expr);   \
    if (!rsse_status_tmp_.ok()) return rsse_status_tmp_; \
  } while (false)

}  // namespace rsse

#endif  // RSSE_COMMON_STATUS_H_
