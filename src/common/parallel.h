#ifndef RSSE_COMMON_PARALLEL_H_
#define RSSE_COMMON_PARALLEL_H_

#include <thread>
#include <vector>

namespace rsse {

/// Runs `fn(worker_index)` on `workers` threads and joins them; `workers`
/// <= 1 runs inline on the caller's thread (the paper-faithful
/// single-threaded path pays no thread overhead). Workers conventionally
/// process a shared item list strided by their index. `fn` must not throw
/// (this library reports failures through Status, typically via a
/// per-worker status slot).
template <typename Fn>
void RunWorkers(int workers, Fn&& fn) {
  if (workers <= 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int t = 0; t < workers; ++t) pool.emplace_back(fn, t);
  for (std::thread& th : pool) th.join();
}

}  // namespace rsse

#endif  // RSSE_COMMON_PARALLEL_H_
