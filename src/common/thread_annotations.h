#ifndef RSSE_COMMON_THREAD_ANNOTATIONS_H_
#define RSSE_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// Clang thread-safety (capability) annotations plus annotated wrappers
/// over the std synchronization primitives this library uses.
///
/// Under `clang++ -Wthread-safety` (always on for clang builds, see
/// rsse_warnings in CMakeLists.txt; promoted to an error by RSSE_WERROR)
/// the compiler proves, per translation unit, that every access to a
/// `RSSE_GUARDED_BY(mu)` member happens while `mu` is held, that
/// `RSSE_REQUIRES(mu)` helpers are only called under the lock, and that
/// shared/exclusive acquisitions match the declared access — a
/// compile-time race detector over the annotated lock discipline. Under
/// GCC (which has no capability analysis) every macro expands to nothing
/// and the wrappers are zero-cost forwarding shims, so the annotated tree
/// builds identically everywhere.
///
/// What the analysis does NOT prove: lock-free code (atomics are invisible
/// to it), lock ordering/deadlock freedom, or anything crossing an opaque
/// call (e.g. a condition variable's internal unlock/relock). Those stay
/// with TSan and the fault-injection suites.
///
/// Use the wrappers (`Mutex`, `SharedMutex`, `MutexLock`, ...) rather than
/// raw std types for any new lock: std::mutex and std::scoped_lock carry
/// no annotations, so locks taken through them are invisible to the
/// analysis and guarded members they protect would fail to compile.

#if defined(__clang__) && !defined(SWIG)
#define RSSE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define RSSE_THREAD_ANNOTATION_(x)  // no-op
#endif

/// Declares a type that models a capability (a lock).
#define RSSE_CAPABILITY(x) RSSE_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability at construction and
/// releases it at destruction.
#define RSSE_SCOPED_CAPABILITY RSSE_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that a member is protected by the given capability: reads
/// require the capability held (shared or exclusive), writes require it
/// held exclusively.
#define RSSE_GUARDED_BY(x) RSSE_THREAD_ANNOTATION_(guarded_by(x))

/// As RSSE_GUARDED_BY, but for the data a pointer/smart-pointer member
/// points at (the pointer itself is unguarded).
#define RSSE_PT_GUARDED_BY(x) RSSE_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares that the function must be called with the capability held
/// exclusively (…_SHARED: at least shared). The caller keeps it held.
#define RSSE_REQUIRES(...) \
  RSSE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define RSSE_REQUIRES_SHARED(...) \
  RSSE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Declares that the function acquires (releases) the capability and the
/// caller must not already hold (must hold) it.
#define RSSE_ACQUIRE(...) \
  RSSE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define RSSE_ACQUIRE_SHARED(...) \
  RSSE_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RSSE_RELEASE(...) \
  RSSE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RSSE_RELEASE_SHARED(...) \
  RSSE_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define RSSE_RELEASE_GENERIC(...) \
  RSSE_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// Declares a function that acquires the capability only when it returns
/// the given value (try_lock).
#define RSSE_TRY_ACQUIRE(...) \
  RSSE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define RSSE_TRY_ACQUIRE_SHARED(...) \
  RSSE_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

/// Declares that the function must be called with the capability NOT held
/// (it acquires and releases it internally).
#define RSSE_EXCLUDES(...) \
  RSSE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the calling thread holds the capability, and
/// tells the analysis so.
#define RSSE_ASSERT_CAPABILITY(x) \
  RSSE_THREAD_ANNOTATION_(assert_capability(x))
#define RSSE_ASSERT_SHARED_CAPABILITY(x) \
  RSSE_THREAD_ANNOTATION_(assert_shared_capability(x))

/// Declares that the function returns a reference to the capability that
/// guards its result.
#define RSSE_RETURN_CAPABILITY(x) \
  RSSE_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Kept for
/// completeness only — the serving path (server/, persist, local_backend)
/// must not use it (ISSUE 10 acceptance criterion); prefer
/// RSSE_ASSERT_CAPABILITY or restructuring.
#define RSSE_NO_THREAD_SAFETY_ANALYSIS \
  RSSE_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace rsse {

/// Annotated exclusive mutex over std::mutex. Also BasicLockable
/// (lowercase lock/unlock), so std::condition_variable_any and generic
/// code still compose — but prefer the annotated RAII types below, which
/// the analysis tracks.
class RSSE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RSSE_ACQUIRE() { mu_.lock(); }
  void Unlock() RSSE_RELEASE() { mu_.unlock(); }
  bool TryLock() RSSE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling (annotated identically).
  void lock() RSSE_ACQUIRE() { mu_.lock(); }
  void unlock() RSSE_RELEASE() { mu_.unlock(); }
  bool try_lock() RSSE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Annotated reader/writer mutex over std::shared_mutex: writers acquire
/// exclusively, readers shared. SharedLockable + Lockable spellings keep
/// std::shared_lock/std::unique_lock usable in generic code, annotated the
/// same either way.
class RSSE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() RSSE_ACQUIRE() { mu_.lock(); }
  void Unlock() RSSE_RELEASE() { mu_.unlock(); }
  bool TryLock() RSSE_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void LockShared() RSSE_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RSSE_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() RSSE_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

  void lock() RSSE_ACQUIRE() { mu_.lock(); }
  void unlock() RSSE_RELEASE() { mu_.unlock(); }
  bool try_lock() RSSE_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void lock_shared() RSSE_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RSSE_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() RSSE_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex or SharedMutex (any annotated type with
/// Lock/Unlock), tracked by the analysis like std::lock_guard is not.
template <typename M>
class RSSE_SCOPED_CAPABILITY GenericMutexLock {
 public:
  explicit GenericMutexLock(M& mu) RSSE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~GenericMutexLock() RSSE_RELEASE() { mu_.Unlock(); }

  GenericMutexLock(const GenericMutexLock&) = delete;
  GenericMutexLock& operator=(const GenericMutexLock&) = delete;

 private:
  M& mu_;
};

using MutexLock = GenericMutexLock<Mutex>;
using WriterMutexLock = GenericMutexLock<SharedMutex>;

/// RAII shared (reader) lock on a SharedMutex.
class RSSE_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) RSSE_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RSSE_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with `Mutex`. Wait() atomically releases and
/// reacquires the mutex; the annotation keeps the capability "held" across
/// the call (matching the caller's view: the guarded state may only be
/// touched after Wait returns, when the lock is held again). There is
/// deliberately no predicate overload: a predicate lambda is analyzed as
/// its own unannotated function, so guarded reads inside it would fail the
/// analysis — spell the re-check as `while (!cond) cv.Wait(mu);` in the
/// locked scope instead.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) RSSE_REQUIRES(mu) { cv_.wait(mu); }

  /// Returns false on timeout (the caller re-checks its condition either
  /// way, spelled as a loop like Wait).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu,
               const std::chrono::duration<Rep, Period>& timeout)
      RSSE_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace rsse

#endif  // RSSE_COMMON_THREAD_ANNOTATIONS_H_
