#include "common/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rsse {

namespace {

constexpr size_t kPageBytes = 4096;

// Clamps [offset, offset+length) to the mapping and widens it to page
// boundaries, as madvise requires a page-aligned start.
bool PageRange(size_t map_size, size_t offset, size_t length, size_t& start,
               size_t& span) {
  if (offset >= map_size || length == 0) return false;
  const size_t end = offset + std::min(length, map_size - offset);
  start = offset - (offset % kPageBytes);
  span = end - start;
  return true;
}

}  // namespace

Result<std::shared_ptr<const MappedFile>> MappedFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("mmap open " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal("mmap fstat " + path + ": " +
                            std::strerror(err));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* data = nullptr;
  if (size > 0) {
    data = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (data == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::Internal("mmap " + path + ": " + std::strerror(err));
    }
  }
  // The mapping holds its own reference to the inode; the descriptor is
  // only needed to create it.
  ::close(fd);
  return std::shared_ptr<const MappedFile>(
      new MappedFile(path, data, size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr && size_ > 0) ::munmap(data_, size_);
}

void MappedFile::AdviseRandom(size_t offset, size_t length) const {
  size_t start = 0;
  size_t span = 0;
  if (!PageRange(size_, offset, length, start, span)) return;
  ::madvise(static_cast<uint8_t*>(data_) + start, span, MADV_RANDOM);
}

void MappedFile::AdviseWillNeed(size_t offset, size_t length) const {
  size_t start = 0;
  size_t span = 0;
  if (!PageRange(size_, offset, length, start, span)) return;
  ::madvise(static_cast<uint8_t*>(data_) + start, span, MADV_WILLNEED);
}

size_t MappedFile::Prefault(size_t offset, size_t length) const {
  size_t start = 0;
  size_t span = 0;
  if (!PageRange(size_, offset, length, start, span)) return 0;
  const volatile uint8_t* base = static_cast<const uint8_t*>(data_);
  size_t pages = 0;
  for (size_t at = start; at < start + span; at += kPageBytes) {
    (void)base[at];
    ++pages;
  }
  return pages;
}

Result<Bytes> ReadFileRange(const std::string& path, uint64_t offset,
                            uint64_t length) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("open " + path + ": " + std::strerror(errno));
  }
  Bytes out(length);
  size_t done = 0;
  while (done < length) {
    const ssize_t n =
        ::pread(fd, out.data() + done, length - done,
                static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return Status::Internal("pread " + path + ": " + std::strerror(err));
    }
    if (n == 0) {
      ::close(fd);
      return Status::InvalidArgument("pread " + path +
                                     ": unexpected end of file");
    }
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  return out;
}

}  // namespace rsse
