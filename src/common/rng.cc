#include "common/rng.h"

namespace rsse {

uint64_t Rng::Uniform(uint64_t lo, uint64_t hi) {
  std::uniform_int_distribution<uint64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformReal() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::Flip(double p) { return UniformReal() < p; }

}  // namespace rsse
