#ifndef RSSE_COMMON_ZIPF_H_
#define RSSE_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace rsse {

/// Zipf-distributed sampler over ranks {0, ..., n-1} with exponent `theta`.
/// Rank 0 is the most frequent. Used to synthesize skewed attribute
/// distributions (the paper's USPS salary data is heavily skewed: only 5% of
/// the domain values are distinct).
///
/// Implementation: inverse-CDF over precomputed cumulative weights, O(log n)
/// per sample after O(n) setup.
class ZipfSampler {
 public:
  /// `n` must be >= 1; `theta` > 0 (1.0 is classic Zipf).
  ZipfSampler(uint64_t n, double theta);

  /// Draws one rank in [0, n).
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
};

}  // namespace rsse

#endif  // RSSE_COMMON_ZIPF_H_
