#include "common/crc32c.h"

#include <array>

namespace rsse {

namespace {

constexpr uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli

/// Slice-by-8 tables, built once at static-init time: table[0] is the
/// classic byte-at-a-time table, table[k] advances a CRC past k additional
/// zero bytes — eight table lookups retire eight input bytes per step.
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t{};

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xffu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables instance;
  return instance;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const auto& t = tables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (len >= 8) {
    const uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                               static_cast<uint32_t>(p[1]) << 8 |
                               static_cast<uint32_t>(p[2]) << 16 |
                               static_cast<uint32_t>(p[3]) << 24);
    crc = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^
          t[5][(lo >> 16) & 0xffu] ^ t[4][lo >> 24] ^ t[3][p[4]] ^
          t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace rsse
