#include "data/csv_loader.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace rsse {
namespace {

TEST(CsvLoaderTest, ParsesBasicRows) {
  std::istringstream in("10,100\n20,200\n30,150\n");
  CsvOptions options;
  options.id_column = 0;
  options.attr_column = 1;
  Result<Dataset> d = ParseCsvDataset(in, options);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  ASSERT_EQ(d->size(), 3u);
  EXPECT_EQ(d->records()[0], (Record{10, 100}));
  EXPECT_EQ(d->records()[2], (Record{30, 150}));
  EXPECT_EQ(d->domain().size, 201u);  // inferred max+1
}

TEST(CsvLoaderTest, SequentialIdsWhenNoIdColumn) {
  std::istringstream in("5\n9\n1\n");
  CsvOptions options;
  options.attr_column = 0;
  Result<Dataset> d = ParseCsvDataset(in, options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->records()[0], (Record{0, 5}));
  EXPECT_EQ(d->records()[1], (Record{1, 9}));
  EXPECT_EQ(d->records()[2], (Record{2, 1}));
}

TEST(CsvLoaderTest, SkipsHeaderAndBlankLinesAndCr) {
  std::istringstream in("id,salary\r\n1,50\r\n\n2,70\r\n");
  CsvOptions options;
  options.id_column = 0;
  options.attr_column = 1;
  options.has_header = true;
  Result<Dataset> d = ParseCsvDataset(in, options);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->size(), 2u);
  EXPECT_EQ(d->records()[1], (Record{2, 70}));
}

TEST(CsvLoaderTest, CustomDelimiterAndColumnSelection) {
  std::istringstream in("a|7|x|42\nb|8|y|17\n");
  CsvOptions options;
  options.id_column = 1;
  options.attr_column = 3;
  options.delimiter = '|';
  Result<Dataset> d = ParseCsvDataset(in, options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->records()[0], (Record{7, 42}));
  EXPECT_EQ(d->records()[1], (Record{8, 17}));
}

TEST(CsvLoaderTest, ExplicitDomainValidated) {
  std::istringstream ok_in("3\n");
  CsvOptions options;
  options.attr_column = 0;
  options.domain_size = 10;
  Result<Dataset> d = ParseCsvDataset(ok_in, options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->domain().size, 10u);

  std::istringstream bad_in("15\n");
  Result<Dataset> bad = ParseCsvDataset(bad_in, options);
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvLoaderTest, RejectsNonNumericAttribute) {
  std::istringstream in("1,abc\n");
  CsvOptions options;
  options.id_column = 0;
  options.attr_column = 1;
  Result<Dataset> d = ParseCsvDataset(in, options);
  ASSERT_FALSE(d.ok());
  EXPECT_NE(d.status().message().find("line 1"), std::string::npos);
}

TEST(CsvLoaderTest, RejectsShortRows) {
  std::istringstream in("1,2\n3\n");
  CsvOptions options;
  options.id_column = 0;
  options.attr_column = 1;
  Result<Dataset> d = ParseCsvDataset(in, options);
  ASSERT_FALSE(d.ok());
  EXPECT_NE(d.status().message().find("line 2"), std::string::npos);
}

TEST(CsvLoaderTest, LoadsFromRealFile) {
  const char* path = "/tmp/rsse_csv_loader_test.csv";
  {
    std::ofstream out(path);
    out << "id,value\n";
    for (int i = 0; i < 500; ++i) {
      out << (1000 + i) << "," << (i * 3 % 777) << "\n";
    }
  }
  CsvOptions options;
  options.id_column = 0;
  options.attr_column = 1;
  options.has_header = true;
  Result<Dataset> d = LoadCsvDataset(path, options);
  std::remove(path);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->size(), 500u);
  EXPECT_EQ(d->records()[0], (Record{1000, 0}));
  EXPECT_EQ(d->records()[499], (Record{1499, 499 * 3 % 777}));
}

TEST(CsvLoaderTest, MissingFileIsNotFound) {
  CsvOptions options;
  EXPECT_EQ(LoadCsvDataset("/nonexistent/file.csv", options).status().code(),
            StatusCode::kNotFound);
}

TEST(CsvLoaderTest, EmptyInputYieldsEmptyDataset) {
  std::istringstream in("");
  CsvOptions options;
  Result<Dataset> d = ParseCsvDataset(in, options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 0u);
  EXPECT_EQ(d->domain().size, 1u);
}

}  // namespace
}  // namespace rsse
