// Known-answer tests for the crypto layer, complementing the per-class
// unit tests:
//  * AES-128-CBC against NIST SP 800-38A F.2.1 (block-exact, plus PKCS#7
//    round trip);
//  * HMAC-PRF against RFC 4231 test case 3 (the cases the unit tests do
//    not pin) and the `Prf` facade against the same vectors;
//  * GGM PRG / DPRF against fixed-seed golden vectors — these are
//    construction-specific (HMAC-based G0/G1), so the vectors below pin
//    the concrete construction against accidental drift: any change to
//    the PRG breaks every outsourced Constant-scheme index.

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/aes.h"
#include "crypto/hmac_prf.h"
#include "crypto/prg.h"
#include "dprf/ggm_dprf.h"
#include "prg_backend_guard.h"

namespace rsse::crypto {
namespace {

// ---------------------------------------------------------------------------
// AES-128-CBC — NIST SP 800-38A, F.2.1 CBC-AES128.Encrypt.
// ---------------------------------------------------------------------------

const char kNistKey[] = "2b7e151628aed2a6abf7158809cf4f3c";
const char kNistIv[] = "000102030405060708090a0b0c0d0e0f";
const char kNistPlain[] =
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710";
const char kNistCipher[] =
    "7649abac8119b246cee98e9b12e9197d"
    "5086cb9b507219ee95db113a917678b2"
    "73bed6b8e3c1743b7116e69e22229516"
    "3ff1caa1681fac09120eca307586e1a7";

TEST(AesKatTest, NistSp80038aCbcEncrypt) {
  Result<Bytes> ct = Aes128Cbc::EncryptWithIv(FromHex(kNistKey),
                                              FromHex(kNistIv),
                                              FromHex(kNistPlain));
  ASSERT_TRUE(ct.ok()) << ct.status().ToString();
  // Layout: IV || ciphertext. The first four ciphertext blocks must equal
  // the NIST vector exactly; the fifth is the PKCS#7 padding block.
  ASSERT_EQ(ct->size(), 16u + 64u + 16u);
  EXPECT_EQ(ToHex(Bytes(ct->begin(), ct->begin() + 16)), kNistIv);
  EXPECT_EQ(ToHex(Bytes(ct->begin() + 16, ct->begin() + 80)), kNistCipher);
}

TEST(AesKatTest, NistVectorRoundTrips) {
  Bytes key = FromHex(kNistKey);
  Result<Bytes> ct =
      Aes128Cbc::EncryptWithIv(key, FromHex(kNistIv), FromHex(kNistPlain));
  ASSERT_TRUE(ct.ok());
  Result<Bytes> pt = Aes128Cbc::Decrypt(key, *ct);
  ASSERT_TRUE(pt.ok()) << pt.status().ToString();
  EXPECT_EQ(ToHex(*pt), kNistPlain);
}

// ---------------------------------------------------------------------------
// HMAC — RFC 4231 test case 3: 20-byte 0xaa key, 50-byte 0xdd data.
// ---------------------------------------------------------------------------

TEST(HmacKatTest, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(ToHex(*HmacSha256(key, data)),
            "773ea91e36800e46854db8ebd09181a7"
            "2959098b3ef8c122d9635514ced565fe");
  EXPECT_EQ(ToHex(*HmacSha512(key, data)),
            "fa73b0089d56a284efb0f0756c890be9"
            "b1b5dbdd8ee81a3655f83e33b2279d39"
            "bf3e848279a722c806b485a47e67c807"
            "b946a337bee8942674278859e13292fb");
}

TEST(HmacKatTest, PrfFacadeMatchesRfc4231) {
  Prf prf(Bytes(20, 0xaa));
  Bytes data(50, 0xdd);
  EXPECT_EQ(ToHex(prf.Eval(data)),
            "fa73b0089d56a284efb0f0756c890be9"
            "b1b5dbdd8ee81a3655f83e33b2279d39"
            "bf3e848279a722c806b485a47e67c807"
            "b946a337bee8942674278859e13292fb");
  EXPECT_EQ(ToHex(prf.EvalTrunc(data, kLambdaBytes)),
            "fa73b0089d56a284efb0f0756c890be9");
}

// ---------------------------------------------------------------------------
// GGM PRG / DPRF — fixed-seed golden vectors (implementation-pinning).
// ---------------------------------------------------------------------------

TEST(PrgKatTest, FixedSeedGoldenVectors) {
  Bytes seed = FromHex("000102030405060708090a0b0c0d0e0f");
  EXPECT_EQ(ToHex(GgmPrg::G0(seed)), "79c66c882afd12e4ce9467e83a5b6a16");
  EXPECT_EQ(ToHex(GgmPrg::G1(seed)), "e7fe0f8b100d5a0951c7d498c7806262");
  EXPECT_EQ(ToHex(GgmPrg::G0(FromHex("ffffffffffffffffffffffffffffffff"))),
            "92734d35f7f08012c5460323e79c8004");
  // Determinism under a fixed seed: repeated expansion is bit-identical.
  auto [l1, r1] = GgmPrg::Expand(seed);
  auto [l2, r2] = GgmPrg::Expand(seed);
  EXPECT_EQ(l1, l2);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(ToHex(l1), ToHex(GgmPrg::G0(seed)));
  EXPECT_EQ(ToHex(r1), ToHex(GgmPrg::G1(seed)));
}

TEST(DprfKatTest, FixedKeyGoldenVectors) {
  GgmDprf dprf(FromHex("000102030405060708090a0b0c0d0e0f"), /*bits=*/4);
  EXPECT_EQ(ToHex(dprf.Eval(0)), "bedf403f50bf434f02662630954fc72d");
  EXPECT_EQ(ToHex(dprf.Eval(5)), "7ebcd01993f2c9aa730b56ef68bb4c68");
  EXPECT_EQ(ToHex(dprf.Eval(15)), "f8dfb6757eca1e3df653213aec4e2ab0");
  EXPECT_EQ(ToHex(dprf.NodeSeed(DyadicNode{2, 1})),
            "6fb0baf7f47e9db5a2b3ac60b7526eb8");
}

TEST(DprfKatTest, NodeSeedExpandsToLeafValues) {
  // Delegation soundness at the vector level: descending from the pinned
  // NodeSeed of N{level=2, index=1} (values 4..7) with the GGM PRG must
  // reproduce Eval at the leaves — value 5 is path (G0, G1) below it.
  GgmDprf dprf(FromHex("000102030405060708090a0b0c0d0e0f"), /*bits=*/4);
  Bytes node = dprf.NodeSeed(DyadicNode{2, 1});
  EXPECT_EQ(ToHex(GgmPrg::G1(GgmPrg::G0(node))), ToHex(dprf.Eval(5)));
  EXPECT_EQ(ToHex(GgmPrg::G0(GgmPrg::G0(node))), ToHex(dprf.Eval(4)));
  EXPECT_EQ(ToHex(GgmPrg::G1(GgmPrg::G1(node))), ToHex(dprf.Eval(7)));
}

// ---------------------------------------------------------------------------
// AES PRG backend — fixed-seed golden vectors. The construction is
// G_b(s) = AES_K(s ⊕ c_b) ⊕ s ⊕ c_b with the public fixed key
// "rsse-ggm-aes-key" and tweaks c_0 = 0x00…, c_1 = 0xff…; the vectors
// below were cross-checked against an independent OpenSSL CLI computation.
// Same GGM tree shape as the HMAC backend, entirely distinct streams.
// ---------------------------------------------------------------------------

TEST(PrgKatTest, AesBackendFixedSeedGoldenVectors) {
  PrgBackendGuard guard(GgmPrg::Backend::kAes);
  Bytes seed = FromHex("000102030405060708090a0b0c0d0e0f");
  EXPECT_EQ(ToHex(GgmPrg::G0(seed)), "494237067a2b517d4bd262dab897a9ee");
  EXPECT_EQ(ToHex(GgmPrg::G1(seed)), "fc09815931010e4ef4cf2407ea48ac10");
  EXPECT_EQ(ToHex(GgmPrg::G0(FromHex("ffffffffffffffffffffffffffffffff"))),
            "973dea21011a0c645976022cb9ff13c4");
  EXPECT_EQ(ToHex(GgmPrg::G1(FromHex("ffffffffffffffffffffffffffffffff"))),
            "c2eb29e2ba098c75c59b5b637b80fedc");
}

TEST(DprfKatTest, AesBackendFixedKeyGoldenVectors) {
  PrgBackendGuard guard(GgmPrg::Backend::kAes);
  GgmDprf dprf(FromHex("000102030405060708090a0b0c0d0e0f"), /*bits=*/4);
  EXPECT_EQ(ToHex(dprf.Eval(0)), "40492444587e517d4767ef82248dcceb");
  EXPECT_EQ(ToHex(dprf.Eval(5)), "3b225d7afae6c2a55a8f03d5c4eeb6ca");
  EXPECT_EQ(ToHex(dprf.Eval(15)), "56803ac4a6965ca6edb1d747e6c93a11");
  EXPECT_EQ(ToHex(dprf.NodeSeed(DyadicNode{2, 1})),
            "d30c8b71c426cd253038779b81031f69");
}

TEST(DprfKatTest, BackendsShareTreeShapeWithDistinctValues) {
  // Both backends walk the same GGM tree: delegation of N{2,1} must expand
  // to exactly Eval(4..7) under either, while the values themselves differ
  // between backends (distinct PRGs).
  const Bytes key = FromHex("000102030405060708090a0b0c0d0e0f");
  std::vector<Bytes> hmac_leaves;
  std::vector<Bytes> aes_leaves;
  {
    GgmDprf dprf(key, /*bits=*/4);
    GgmDprf::Token token{dprf.NodeSeed(DyadicNode{2, 1}), 2};
    hmac_leaves = GgmDprf::Expand(token);
    ASSERT_EQ(hmac_leaves.size(), 4u);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(hmac_leaves[static_cast<size_t>(i)],
                dprf.Eval(static_cast<uint64_t>(4 + i)));
    }
  }
  {
    PrgBackendGuard guard(GgmPrg::Backend::kAes);
    GgmDprf dprf(key, /*bits=*/4);
    GgmDprf::Token token{dprf.NodeSeed(DyadicNode{2, 1}), 2};
    aes_leaves = GgmDprf::Expand(token);
    ASSERT_EQ(aes_leaves.size(), 4u);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(aes_leaves[static_cast<size_t>(i)],
                dprf.Eval(static_cast<uint64_t>(4 + i)));
    }
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(hmac_leaves[static_cast<size_t>(i)],
              aes_leaves[static_cast<size_t>(i)]);
  }
}

}  // namespace
}  // namespace rsse::crypto
