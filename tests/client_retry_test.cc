// Flaky-network soak and graceful drain, over real loopback sockets:
// with connection resets injected at every protocol stage (setup sends,
// search sends, response reads — including SRC-i's dependent second
// round), RemoteBackend queries must still return exactly the local
// backend's ids via transparent reconnect + retry. And a draining server
// must finish in-flight streams, refuse fresh work with the dedicated
// draining error, and exit its Serve loop cleanly.

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/rng.h"
#include "data/generators.h"
#include "rsse/factory.h"
#include "rsse/log_src_i.h"
#include "rsse/scheme.h"
#include "server/client.h"
#include "server/remote_backend.h"
#include "server/server.h"

namespace rsse {
namespace {

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

server::ClientOptions FastRetry() {
  server::ClientOptions options;
  options.backoff.initial_delay_ms = 1;
  options.backoff.max_delay_ms = 20;
  options.backoff.max_retries = 6;
  return options;
}

class LoopbackServer {
 public:
  explicit LoopbackServer(server::ServerOptions options = {})
      : server_(options) {
    Status s = server_.Listen();
    EXPECT_TRUE(s.ok()) << s.ToString();
    thread_ = std::thread([this] { serve_status_ = server_.Serve(); });
  }

  ~LoopbackServer() {
    if (thread_.joinable()) {
      server_.Shutdown();
      thread_.join();
    }
  }

  /// Waits for Serve() to return on its own (drain path) and hands back
  /// its status.
  Status JoinServe() {
    thread_.join();
    return serve_status_;
  }

  uint16_t port() const { return server_.port(); }
  server::EmmServer& server() { return server_; }

 private:
  server::EmmServer server_;
  std::thread thread_;
  Status serve_status_ = Status::Ok();
};

TEST(FlakyNetworkTest, QueriesStayExactUnderInjectedResets) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "build with -DRSSE_FAILPOINTS=ON";
  }
  Rng rng(19);
  Dataset data = GenerateUspsLike(/*n=*/80, /*domain_size=*/32, rng);
  std::unique_ptr<RangeScheme> scheme =
      MakeScheme(SchemeId::kLogarithmicBrc, /*rng_seed=*/11);
  ASSERT_TRUE(scheme->Build(data).ok());
  Result<ServerSetup> setup = scheme->ExportServerSetup();
  ASSERT_TRUE(setup.ok());

  LoopbackServer loopback;
  server::EmmClient client(FastRetry());

  // Stage 1: reset the very first send after connect — InstallServerSetup
  // must reconnect and still ship every store.
  ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());
  failpoint::Set("client_send", "reset*1");
  Status installed = server::InstallServerSetup(client, *setup);
  ASSERT_TRUE(installed.ok()) << installed.ToString();
  EXPECT_GE(client.ReconnectCount(), 1u);

  server::RemoteBackend remote(client);
  const size_t kStages = 2;  // alternate send-side and recv-side resets
  size_t stage = 0;
  for (uint64_t lo = 0; lo < 32; lo += 4) {
    const Range r{lo, std::min<uint64_t>(lo + 5, 31)};
    // Each query runs with a fresh one-shot reset armed at a different
    // protocol stage.
    failpoint::Set(stage % kStages == 0 ? "client_send" : "client_recv",
                   "reset*1");
    ++stage;
    Result<QueryResult> local = scheme->Query(r);
    ASSERT_TRUE(local.ok());
    Result<QueryResult> wire = scheme->QueryVia(remote, r);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    EXPECT_EQ(Sorted(wire->ids), Sorted(local->ids))
        << "range [" << r.lo << "," << r.hi << "]";
  }
  failpoint::ClearAll();
  EXPECT_GT(client.ReconnectCount(), 1u)
      << "the injected resets must actually have interrupted requests";
}

TEST(FlakyNetworkTest, SrcISecondRoundSurvivesResets) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "build with -DRSSE_FAILPOINTS=ON";
  }
  // SRC-i's two-round protocol: a reset can land in round 1 (SearchBatch)
  // or round 2 (SearchKeyword against I2); the RemoteBackend must re-drive
  // whichever request failed and still answer exactly.
  Rng rng(29);
  Dataset data = GenerateUspsLike(/*n=*/100, /*domain_size=*/64, rng);
  LogarithmicSrcIScheme scheme(/*rng_seed=*/5);
  ASSERT_TRUE(scheme.Build(data).ok());
  Result<ServerSetup> setup = scheme.ExportServerSetup();
  ASSERT_TRUE(setup.ok());

  LoopbackServer loopback;
  server::EmmClient client(FastRetry());
  ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());
  ASSERT_TRUE(server::InstallServerSetup(client, *setup).ok());
  server::RemoteBackend remote(client);

  const Range r{4, 59};
  Result<QueryResult> local = scheme.Query(r);
  ASSERT_TRUE(local.ok());
  for (int round = 0; round < 4; ++round) {
    failpoint::Set(round % 2 == 0 ? "client_recv" : "client_send",
                   "reset*1");
    Result<QueryResult> wire = scheme.QueryVia(remote, r);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    EXPECT_EQ(wire->rounds, 2);
    EXPECT_EQ(Sorted(wire->ids), Sorted(local->ids));
  }
  failpoint::ClearAll();
}

TEST(DrainTest, IdleServerExitsImmediatelyOnDrain) {
  // No in-flight work: BeginDrain lets Serve return at once, even with an
  // idle client still connected.
  server::ServerOptions options;
  options.port = 0;
  options.drain_timeout_ms = 5000;
  LoopbackServer loopback(options);

  server::ClientOptions no_retry;
  no_retry.retry_idempotent = false;
  server::EmmClient client(no_retry);
  ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());
  ASSERT_TRUE(client.Stats().ok());

  loopback.server().BeginDrain();
  EXPECT_TRUE(loopback.server().draining());
  Status serve = loopback.JoinServe();
  EXPECT_TRUE(serve.ok()) << serve.ToString();
}

TEST(DrainTest, FreshRequestsAreRefusedWhileInFlightStreamFinishes) {
  // Client A holds a genuinely long-running streamed search (wide GGM
  // tokens expand millions of labels); while it runs, the drain latch
  // flips and a second
  // already-connected client's fresh request must bounce with the
  // dedicated draining error. A's stream still completes, and Serve
  // returns cleanly once both connections quiesce.
  server::ServerOptions options;
  options.port = 0;
  options.drain_timeout_ms = 60000;
  LoopbackServer loopback(options);

  server::ClientOptions no_retry;
  no_retry.retry_idempotent = false;
  // The blocker waits out its own long expansion (single-core machines
  // take a while); the stream emits nothing until SearchDone.
  no_retry.recv_timeout_seconds = 120;

  server::EmmClient blocker(no_retry);
  ASSERT_TRUE(blocker.Connect("127.0.0.1", loopback.port()).ok());
  // One entry makes the primary slot an encrypted dictionary so searches
  // reach the expansion path.
  std::vector<std::pair<Label, Bytes>> entries;
  Label label;
  label.fill(0x5a);
  entries.emplace_back(label, Bytes(32, 0x01));
  ASSERT_TRUE(blocker.Update(entries).ok());

  server::EmmClient prober(no_retry);
  ASSERT_TRUE(prober.Connect("127.0.0.1", loopback.port()).ok());
  ASSERT_TRUE(prober.Stats().ok());

  server::EmmClient::BatchQuery query;
  query.query_id = 1;
  for (uint8_t i = 0; i < 4; ++i) {
    GgmDprf::Token token;
    token.seed = Bytes(kLabelBytes, static_cast<uint8_t>(0x80 + i));
    token.level = 19;  // 2^19 leaf derivations per token
    query.tokens.push_back(token);
  }
  Result<server::EmmClient::BatchOutcome> outcome =
      Status::Internal("unset");
  std::thread search([&] { outcome = blocker.SearchBatch({query}); });

  // Give the search time to enter execution, then drain mid-stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  loopback.server().BeginDrain();

  auto refused = prober.Stats();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(refused.status().message().find("draining"), std::string::npos)
      << refused.status().ToString();

  search.join();
  ASSERT_TRUE(outcome.ok())
      << "the in-flight stream must finish, not be cut: "
      << outcome.status().ToString();
  EXPECT_EQ(outcome->done.query_count, 1u);

  Status serve = loopback.JoinServe();
  EXPECT_TRUE(serve.ok()) << serve.ToString();
}

TEST(DrainTest, InFlightStreamFinishesBeforeExit) {
  // A large streamed search is racing the drain signal: whether the job
  // started before or after the latch flipped, the client must see either
  // the full exact result or the draining refusal — never a truncated
  // stream — and Serve must return cleanly either way.
  Rng rng(41);
  Dataset data = GenerateUniform(/*n=*/400, /*domain_size=*/64, rng);
  std::unique_ptr<RangeScheme> scheme =
      MakeScheme(SchemeId::kLogarithmicBrc, /*rng_seed=*/13);
  ASSERT_TRUE(scheme->Build(data).ok());
  Result<ServerSetup> setup = scheme->ExportServerSetup();
  ASSERT_TRUE(setup.ok());

  server::ServerOptions options;
  options.port = 0;
  options.drain_timeout_ms = 8000;
  options.max_ids_per_result_frame = 1;  // many frames: a long stream
  LoopbackServer loopback(options);

  server::ClientOptions no_retry;
  no_retry.retry_idempotent = false;
  server::EmmClient client(no_retry);
  ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());
  ASSERT_TRUE(server::InstallServerSetup(client, *setup).ok());
  server::RemoteBackend remote(client);

  Result<QueryResult> local = scheme->Query(Range{0, 63});
  ASSERT_TRUE(local.ok());
  ASSERT_GT(local->ids.size(), 100u);

  Result<QueryResult> wire = Status::Internal("unset");
  std::thread query([&] { wire = scheme->QueryVia(remote, Range{0, 63}); });
  // Let the request reach the server's poll loop before the latch flips;
  // a drain that wins the race would quiesce-and-exit before ever reading
  // the request, and the client would see a reset instead of an answer.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  loopback.server().BeginDrain();
  query.join();

  if (wire.ok()) {
    EXPECT_EQ(Sorted(wire->ids), Sorted(local->ids));
  } else {
    EXPECT_NE(wire.status().message().find("draining"), std::string::npos)
        << wire.status().ToString();
  }
  Status serve = loopback.JoinServe();
  EXPECT_TRUE(serve.ok()) << serve.ToString();
}

}  // namespace
}  // namespace rsse
