// Cross-scheme correctness: every construction, after owner-side
// refinement, answers every range query exactly — on uniform, skewed and
// degenerate datasets. The paper's no-false-positive schemes are also
// checked for exactness *before* refinement.

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "pb/pb_scheme.h"
#include "rsse/factory.h"
#include "rsse/scheme.h"

namespace rsse {
namespace {

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

bool SchemeHasFalsePositives(SchemeId id) {
  return id == SchemeId::kLogarithmicSrc || id == SchemeId::kLogarithmicSrcI ||
         id == SchemeId::kPb;
}

std::unique_ptr<RangeScheme> Make(SchemeId id) {
  if (id == SchemeId::kPb) return pb::MakePbScheme(/*rng_seed=*/11);
  return MakeScheme(id, /*rng_seed=*/11);
}

struct Case {
  SchemeId scheme;
  const char* dataset;
};

class AllSchemesTest : public ::testing::TestWithParam<Case> {
 protected:
  Dataset MakeData() const {
    Rng rng(17);
    const std::string name = GetParam().dataset;
    if (name == "uniform") return GenerateUniform(60, 32, rng);
    if (name == "skewed") return GenerateUspsLike(60, 32, rng);
    if (name == "one-value") {
      return GenerateSingleValueWithOutliers(60, 32, 9, 4, rng);
    }
    return Dataset(Domain{32}, {{0, 31}});  // "singleton"
  }
};

TEST_P(AllSchemesTest, RefinedResultsExactForAllRanges) {
  Dataset data = MakeData();
  std::unique_ptr<RangeScheme> scheme = Make(GetParam().scheme);
  ASSERT_NE(scheme, nullptr);
  ASSERT_TRUE(scheme->Build(data).ok());
  for (uint64_t lo = 0; lo < 32; lo += 2) {
    for (uint64_t hi = lo; hi < 32; hi += 3) {
      Range r{lo, hi};
      Result<QueryResult> q = scheme->Query(r);
      ASSERT_TRUE(q.ok()) << q.status().ToString();
      EXPECT_EQ(Sorted(FilterIdsToRange(data, q->ids, r)),
                Sorted(data.IdsInRange(r)))
          << SchemeName(GetParam().scheme) << " range [" << lo << "," << hi
          << "]";
    }
  }
}

TEST_P(AllSchemesTest, ExactSchemesHaveNoFalsePositives) {
  if (SchemeHasFalsePositives(GetParam().scheme)) {
    GTEST_SKIP() << "scheme may return false positives by design";
  }
  Dataset data = MakeData();
  std::unique_ptr<RangeScheme> scheme = Make(GetParam().scheme);
  ASSERT_TRUE(scheme->Build(data).ok());
  for (uint64_t lo = 0; lo < 32; lo += 3) {
    for (uint64_t hi = lo; hi < 32; hi += 4) {
      Range r{lo, hi};
      Result<QueryResult> q = scheme->Query(r);
      ASSERT_TRUE(q.ok());
      EXPECT_EQ(Sorted(q->ids), Sorted(data.IdsInRange(r)))
          << SchemeName(GetParam().scheme) << " range [" << lo << "," << hi
          << "]";
    }
  }
}

TEST_P(AllSchemesTest, IndexSizeIsPositive) {
  Dataset data = MakeData();
  std::unique_ptr<RangeScheme> scheme = Make(GetParam().scheme);
  ASSERT_TRUE(scheme->Build(data).ok());
  EXPECT_GT(scheme->IndexSizeBytes(), 0u);
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  std::vector<SchemeId> ids = AllSchemeIds();
  ids.push_back(SchemeId::kPb);
  ids.push_back(SchemeId::kNaivePerValue);
  for (SchemeId id : ids) {
    for (const char* dataset : {"uniform", "skewed", "one-value", "singleton"}) {
      cases.push_back(Case{id, dataset});
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string name = SchemeName(info.param.scheme);
  name += "_";
  name += info.param.dataset;
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(EverySchemeEveryDataset, AllSchemesTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

TEST(FilterIdsToRangeTest, DropsUnknownAndOutOfRangeIds) {
  Dataset data(Domain{16}, {{1, 5}, {2, 9}});
  std::vector<uint64_t> filtered =
      FilterIdsToRange(data, {1, 2, 77}, Range{0, 6});
  EXPECT_EQ(filtered, std::vector<uint64_t>{1});
}

TEST(ClipRangeToDomainTest, Clipping) {
  Domain d{10};
  Range r{5, 100};
  ASSERT_TRUE(ClipRangeToDomain(d, r));
  EXPECT_EQ(r.hi, 9u);
  Range outside{20, 30};
  EXPECT_FALSE(ClipRangeToDomain(d, outside));
  Range inverted{5, 2};
  EXPECT_FALSE(ClipRangeToDomain(d, inverted));
}

}  // namespace
}  // namespace rsse
