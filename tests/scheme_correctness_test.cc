// Cross-scheme conformance harness: every construction, after owner-side
// refinement, answers every range query exactly — on uniform, skewed and
// degenerate datasets. The paper's no-false-positive schemes are also
// checked for exactness *before* refinement. Further suites certify the
// shared contract on degenerate inputs (empty/out-of-domain/full-domain
// ranges, width-1 ranges, single-point and non-power-of-two domains,
// empty datasets) and on the Section-7 update path through
// `update::BatchedStore` — so every present and future scheme is held to
// the same behaviour.

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "pb/pb_scheme.h"
#include "rsse/factory.h"
#include "rsse/scheme.h"
#include "update/batched_store.h"

namespace rsse {
namespace {

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

bool SchemeHasFalsePositives(SchemeId id) {
  return id == SchemeId::kLogarithmicSrc || id == SchemeId::kLogarithmicSrcI ||
         id == SchemeId::kPb;
}

std::unique_ptr<RangeScheme> Make(SchemeId id) {
  if (id == SchemeId::kPb) return pb::MakePbScheme(/*rng_seed=*/11);
  return MakeScheme(id, /*rng_seed=*/11);
}

struct Case {
  SchemeId scheme;
  const char* dataset;
};

class AllSchemesTest : public ::testing::TestWithParam<Case> {
 protected:
  Dataset MakeData() const {
    Rng rng(17);
    const std::string name = GetParam().dataset;
    if (name == "uniform") return GenerateUniform(60, 32, rng);
    if (name == "skewed") return GenerateUspsLike(60, 32, rng);
    if (name == "one-value") {
      return GenerateSingleValueWithOutliers(60, 32, 9, 4, rng);
    }
    return Dataset(Domain{32}, {{0, 31}});  // "singleton"
  }
};

TEST_P(AllSchemesTest, RefinedResultsExactForAllRanges) {
  Dataset data = MakeData();
  std::unique_ptr<RangeScheme> scheme = Make(GetParam().scheme);
  ASSERT_NE(scheme, nullptr);
  ASSERT_TRUE(scheme->Build(data).ok());
  for (uint64_t lo = 0; lo < 32; lo += 2) {
    for (uint64_t hi = lo; hi < 32; hi += 3) {
      Range r{lo, hi};
      Result<QueryResult> q = scheme->Query(r);
      ASSERT_TRUE(q.ok()) << q.status().ToString();
      EXPECT_EQ(Sorted(FilterIdsToRange(data, q->ids, r)),
                Sorted(data.IdsInRange(r)))
          << SchemeName(GetParam().scheme) << " range [" << lo << "," << hi
          << "]";
    }
  }
}

TEST_P(AllSchemesTest, ExactSchemesHaveNoFalsePositives) {
  if (SchemeHasFalsePositives(GetParam().scheme)) {
    GTEST_SKIP() << "scheme may return false positives by design";
  }
  Dataset data = MakeData();
  std::unique_ptr<RangeScheme> scheme = Make(GetParam().scheme);
  ASSERT_TRUE(scheme->Build(data).ok());
  for (uint64_t lo = 0; lo < 32; lo += 3) {
    for (uint64_t hi = lo; hi < 32; hi += 4) {
      Range r{lo, hi};
      Result<QueryResult> q = scheme->Query(r);
      ASSERT_TRUE(q.ok());
      EXPECT_EQ(Sorted(q->ids), Sorted(data.IdsInRange(r)))
          << SchemeName(GetParam().scheme) << " range [" << lo << "," << hi
          << "]";
    }
  }
}

TEST_P(AllSchemesTest, IndexSizeIsPositive) {
  Dataset data = MakeData();
  std::unique_ptr<RangeScheme> scheme = Make(GetParam().scheme);
  ASSERT_TRUE(scheme->Build(data).ok());
  EXPECT_GT(scheme->IndexSizeBytes(), 0u);
}

std::vector<SchemeId> AllSchemeIdsWithBaselines() {
  std::vector<SchemeId> ids = AllSchemeIds();
  ids.push_back(SchemeId::kPb);
  ids.push_back(SchemeId::kNaivePerValue);
  return ids;
}

std::string Sanitized(std::string name) {
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (SchemeId id : AllSchemeIdsWithBaselines()) {
    for (const char* dataset : {"uniform", "skewed", "one-value", "singleton"}) {
      cases.push_back(Case{id, dataset});
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  return Sanitized(std::string(SchemeName(info.param.scheme)) + "_" +
                   info.param.dataset);
}

INSTANTIATE_TEST_SUITE_P(EverySchemeEveryDataset, AllSchemesTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

// ---------------------------------------------------------------------------
// Degenerate ranges and domain shapes, per scheme. These build their own
// datasets, so they are parameterized over the scheme id alone.
// ---------------------------------------------------------------------------

class SchemeDomainTest : public ::testing::TestWithParam<SchemeId> {
 protected:
  // Exactness of every query over every (lo, hi) in the domain, after
  // refinement — the exhaustive contract on small domains.
  void ExpectExactOnAllRanges(const Dataset& data) {
    std::unique_ptr<RangeScheme> scheme = Make(GetParam());
    ASSERT_NE(scheme, nullptr);
    ASSERT_TRUE(scheme->Build(data).ok());
    for (uint64_t lo = 0; lo < data.domain().size; ++lo) {
      for (uint64_t hi = lo; hi < data.domain().size; ++hi) {
        Range r{lo, hi};
        Result<QueryResult> q = scheme->Query(r);
        ASSERT_TRUE(q.ok()) << q.status().ToString();
        EXPECT_EQ(Sorted(FilterIdsToRange(data, q->ids, r)),
                  Sorted(data.IdsInRange(r)))
            << SchemeName(GetParam()) << " range [" << lo << "," << hi << "]";
      }
    }
  }
};

TEST_P(SchemeDomainTest, OutOfDomainRangesReturnEmpty) {
  Rng rng(23);
  Dataset data = GenerateUniform(40, 32, rng);
  std::unique_ptr<RangeScheme> scheme = Make(GetParam());
  ASSERT_TRUE(scheme->Build(data).ok());
  // Entirely beyond the domain.
  Result<QueryResult> beyond = scheme->Query(Range{32, 100});
  ASSERT_TRUE(beyond.ok()) << beyond.status().ToString();
  EXPECT_TRUE(beyond->ids.empty());
  // Inverted (hi < lo): the empty range.
  Result<QueryResult> inverted = scheme->Query(Range{9, 3});
  ASSERT_TRUE(inverted.ok()) << inverted.status().ToString();
  EXPECT_TRUE(inverted->ids.empty());
}

TEST_P(SchemeDomainTest, RangeOverhangingDomainIsClipped) {
  Rng rng(23);
  Dataset data = GenerateUniform(40, 32, rng);
  std::unique_ptr<RangeScheme> scheme = Make(GetParam());
  ASSERT_TRUE(scheme->Build(data).ok());
  Range overhang{16, 1000};  // clips to [16, 31]
  Result<QueryResult> q = scheme->Query(overhang);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(Sorted(FilterIdsToRange(data, q->ids, overhang)),
            Sorted(data.IdsInRange(Range{16, 31})));
}

TEST_P(SchemeDomainTest, FullDomainRangeReturnsEveryRecord) {
  Rng rng(29);
  Dataset data = GenerateUspsLike(50, 32, rng);
  std::unique_ptr<RangeScheme> scheme = Make(GetParam());
  ASSERT_TRUE(scheme->Build(data).ok());
  Range all{0, 31};
  Result<QueryResult> q = scheme->Query(all);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  std::vector<uint64_t> expected;
  for (const Record& rec : data.records()) expected.push_back(rec.id);
  EXPECT_EQ(Sorted(FilterIdsToRange(data, q->ids, all)), Sorted(expected));
}

TEST_P(SchemeDomainTest, ValueFreeRegionsAnswerEmpty) {
  // All records in the upper half; queries in the lower half must refine
  // to nothing.
  std::vector<Record> records;
  for (uint64_t i = 0; i < 20; ++i) records.push_back({i, 24 + (i % 8)});
  Dataset data(Domain{32}, std::move(records));
  std::unique_ptr<RangeScheme> scheme = Make(GetParam());
  ASSERT_TRUE(scheme->Build(data).ok());
  for (uint64_t lo : {uint64_t{0}, uint64_t{7}, uint64_t{15}}) {
    Range r{lo, lo + 4};
    Result<QueryResult> q = scheme->Query(r);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_TRUE(FilterIdsToRange(data, q->ids, r).empty())
        << SchemeName(GetParam()) << " range [" << r.lo << "," << r.hi << "]";
  }
}

TEST_P(SchemeDomainTest, WidthOneRangesExactEverywhere) {
  Rng rng(31);
  Dataset data = GenerateUspsLike(40, 16, rng);
  std::unique_ptr<RangeScheme> scheme = Make(GetParam());
  ASSERT_TRUE(scheme->Build(data).ok());
  for (uint64_t v = 0; v < 16; ++v) {
    Range r{v, v};
    Result<QueryResult> q = scheme->Query(r);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_EQ(Sorted(FilterIdsToRange(data, q->ids, r)),
              Sorted(data.IdsInRange(r)))
        << SchemeName(GetParam()) << " point " << v;
  }
}

TEST_P(SchemeDomainTest, SinglePointDomain) {
  // The degenerate domain A = {0}: every record has the only value; the
  // only non-empty query is [0, 0].
  Dataset data(Domain{1}, {{7, 0}, {9, 0}, {12, 0}});
  ExpectExactOnAllRanges(data);
}

TEST_P(SchemeDomainTest, NonPowerOfTwoDomain) {
  // Domain size 11 pads to a 16-leaf tree; values near the pad boundary
  // must still be answered exactly.
  std::vector<Record> records;
  for (uint64_t i = 0; i < 33; ++i) records.push_back({i, i % 11});
  Dataset data(Domain{11}, std::move(records));
  ExpectExactOnAllRanges(data);
}

TEST_P(SchemeDomainTest, EmptyDatasetAnswersEmpty) {
  Dataset data(Domain{16}, {});
  std::unique_ptr<RangeScheme> scheme = Make(GetParam());
  ASSERT_NE(scheme, nullptr);
  ASSERT_TRUE(scheme->Build(data).ok());
  for (uint64_t lo : {uint64_t{0}, uint64_t{5}, uint64_t{15}}) {
    Range r{lo, 15};
    Result<QueryResult> q = scheme->Query(r);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_TRUE(FilterIdsToRange(data, q->ids, r).empty());
  }
}

std::string SchemeIdName(const ::testing::TestParamInfo<SchemeId>& info) {
  return Sanitized(SchemeName(info.param));
}

INSTANTIATE_TEST_SUITE_P(EveryScheme, SchemeDomainTest,
                         ::testing::ValuesIn(AllSchemeIdsWithBaselines()),
                         SchemeIdName);

// ---------------------------------------------------------------------------
// Update-path conformance: the Section-7 batched store must stay exact for
// every underlying static construction it can host (AllSchemeIds — the PB
// baseline is deliberately outside MakeScheme's layering).
// ---------------------------------------------------------------------------

class SchemeUpdateTest : public ::testing::TestWithParam<SchemeId> {};

TEST_P(SchemeUpdateTest, BatchedInsertsAndDeletesStayExact) {
  const Domain domain{64};
  update::BatchedStore store(GetParam(), domain, /*consolidation_step=*/2,
                             /*rng_seed=*/11);
  Rng rng(47);
  std::vector<Record> live;
  uint64_t next_id = 0;

  for (int batch_no = 0; batch_no < 5; ++batch_no) {
    std::vector<update::UpdateOp> batch;
    for (int i = 0; i < 12; ++i) {
      Record rec{next_id++, rng.Uniform(0, domain.size - 1)};
      batch.push_back({update::UpdateOp::Type::kInsert, rec, 0});
      live.push_back(rec);
    }
    // Delete the oldest live record — guaranteed to come from an earlier
    // batch once one exists, exercising cross-instance tombstoning — plus
    // two picked at random (which may hit this very batch).
    for (int d = 0; d < 3 && !live.empty(); ++d) {
      size_t pick = d == 0 ? 0 : rng.Uniform(0, live.size() - 1);
      batch.push_back({update::UpdateOp::Type::kDelete, live[pick], 0});
      live.erase(live.begin() + static_cast<long>(pick));
    }
    ASSERT_TRUE(store.ApplyBatch(batch).ok());

    Dataset reference(domain, live);
    for (uint64_t lo = 0; lo < domain.size; lo += 7) {
      for (uint64_t hi = lo; hi < domain.size; hi += 9) {
        Range r{lo, hi};
        Result<QueryResult> q = store.Query(r);
        ASSERT_TRUE(q.ok()) << q.status().ToString();
        EXPECT_EQ(Sorted(q->ids), Sorted(reference.IdsInRange(r)))
            << SchemeName(GetParam()) << " batch " << batch_no << " range ["
            << lo << "," << hi << "]";
      }
    }
  }
  EXPECT_EQ(store.LiveTupleCount(), live.size());
  EXPECT_GT(store.ConsolidationCount(), 0u);
}

TEST_P(SchemeUpdateTest, ReinsertAfterDeleteIsLiveAgain) {
  const Domain domain{32};
  update::BatchedStore store(GetParam(), domain, /*consolidation_step=*/3,
                             /*rng_seed=*/5);
  Record rec{42, 17};
  ASSERT_TRUE(
      store.ApplyBatch({{update::UpdateOp::Type::kInsert, rec, 0}}).ok());
  ASSERT_TRUE(
      store.ApplyBatch({{update::UpdateOp::Type::kDelete, rec, 0}}).ok());
  Result<QueryResult> gone = store.Query(Range{0, 31});
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone->ids.empty());
  ASSERT_TRUE(
      store.ApplyBatch({{update::UpdateOp::Type::kInsert, rec, 0}}).ok());
  Result<QueryResult> back = store.Query(Range{17, 17});
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ids, std::vector<uint64_t>{42});
}

INSTANTIATE_TEST_SUITE_P(EveryScheme, SchemeUpdateTest,
                         ::testing::ValuesIn(AllSchemeIds()), SchemeIdName);

TEST(FilterIdsToRangeTest, DropsUnknownAndOutOfRangeIds) {
  Dataset data(Domain{16}, {{1, 5}, {2, 9}});
  std::vector<uint64_t> filtered =
      FilterIdsToRange(data, {1, 2, 77}, Range{0, 6});
  EXPECT_EQ(filtered, std::vector<uint64_t>{1});
}

TEST(ClipRangeToDomainTest, Clipping) {
  Domain d{10};
  Range r{5, 100};
  ASSERT_TRUE(ClipRangeToDomain(d, r));
  EXPECT_EQ(r.hi, 9u);
  Range outside{20, 30};
  EXPECT_FALSE(ClipRangeToDomain(d, outside));
  Range inverted{5, 2};
  EXPECT_FALSE(ClipRangeToDomain(d, inverted));
}

}  // namespace
}  // namespace rsse
