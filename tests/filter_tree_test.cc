// FilterTreeIndex: the PB baseline's serializable server half. Round-trip
// fidelity, descent correctness, and hostile-blob rejection (out-of-range
// child links, truncations, inflated counts) — the decoder feeds
// rsse_serverd, so it must never over-read or loop.

#include <gtest/gtest.h>

#include "pb/filter_tree.h"
#include "rsse/bloom_gate.h"
#include "sse/encrypted_multimap.h"
#include "sse/keyword_keys.h"

namespace rsse::pb {
namespace {

Bytes Trapdoor(uint8_t fill) { return Bytes(16, fill); }

/// A 3-node tree: root with two leaves; leaf ids 10 and 20. The left
/// subtree holds trapdoor 0xAA, the right 0xBB.
FilterTreeIndex MakeTree() {
  FilterTreeIndex tree;
  const int64_t root = tree.AddNode(FilterTreeIndex::Node{
      BloomFilter(2, 1e-6, 0), -1, -1, 0, false});
  tree.node(root).filter.Insert(ConstByteSpan(Trapdoor(0xAA)));
  tree.node(root).filter.Insert(ConstByteSpan(Trapdoor(0xBB)));
  const int64_t left = tree.AddNode(FilterTreeIndex::Node{
      BloomFilter(1, 1e-6, 1), -1, -1, 10, true});
  tree.node(left).filter.Insert(ConstByteSpan(Trapdoor(0xAA)));
  const int64_t right = tree.AddNode(FilterTreeIndex::Node{
      BloomFilter(1, 1e-6, 2), -1, -1, 20, true});
  tree.node(right).filter.Insert(ConstByteSpan(Trapdoor(0xBB)));
  tree.LinkChildren(root, left, right);
  tree.SetRoot(root);
  return tree;
}

TEST(FilterTreeTest, SerializeRoundTripPreservesSearch) {
  FilterTreeIndex tree = MakeTree();
  EXPECT_EQ(tree.Search({Trapdoor(0xAA)}), std::vector<uint64_t>{10});
  EXPECT_EQ(tree.Search({Trapdoor(0xBB)}), std::vector<uint64_t>{20});
  EXPECT_TRUE(tree.Search({Trapdoor(0x77)}).empty());

  auto restored = FilterTreeIndex::Deserialize(tree.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->NodeCount(), 3u);
  EXPECT_EQ(restored->LeafCount(), 2u);
  EXPECT_EQ(restored->SizeBytes(), tree.SizeBytes());
  EXPECT_EQ(restored->Search({Trapdoor(0xAA)}), std::vector<uint64_t>{10});
  EXPECT_EQ(restored->Search({Trapdoor(0xBB)}), std::vector<uint64_t>{20});
  EXPECT_EQ(restored->Serialize(), tree.Serialize());
}

TEST(FilterTreeTest, EmptyTreeRoundTrips) {
  FilterTreeIndex tree;
  tree.SetRoot(-1);
  auto restored = FilterTreeIndex::Deserialize(tree.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->NodeCount(), 0u);
  EXPECT_TRUE(restored->Search({Trapdoor(0xAA)}).empty());
}

TEST(FilterTreeTest, TruncationAtEveryCutFailsCleanly) {
  const Bytes good = MakeTree().Serialize();
  for (size_t cut = 0; cut < good.size(); ++cut) {
    Bytes bad(good.begin(), good.begin() + static_cast<long>(cut));
    EXPECT_FALSE(FilterTreeIndex::Deserialize(bad).ok()) << "cut " << cut;
  }
}

TEST(FilterTreeTest, RejectsHostileLinks) {
  FilterTreeIndex tree = MakeTree();
  const Bytes good = tree.Serialize();

  // Upward child link (would cycle the descent): root's left -> root.
  Bytes cyclic = good;
  for (int i = 0; i < 8; ++i) cyclic[24 + i] = 0;  // node 0 left = 0
  EXPECT_FALSE(FilterTreeIndex::Deserialize(cyclic).ok());

  // Child index past the node count.
  Bytes oob = good;
  oob[24 + 7] = 9;  // node 0 left = 9 of 3
  EXPECT_FALSE(FilterTreeIndex::Deserialize(oob).ok());

  // Inflated node count.
  Bytes inflated = good;
  inflated[8] = 0xff;
  EXPECT_FALSE(FilterTreeIndex::Deserialize(inflated).ok());

  // Foreign magic.
  Bytes foreign = good;
  foreign[0] ^= 0x5A;
  EXPECT_FALSE(FilterTreeIndex::Deserialize(foreign).ok());

  // Trailing garbage.
  Bytes trailing = good;
  trailing.push_back(0);
  EXPECT_FALSE(FilterTreeIndex::Deserialize(trailing).ok());
}

}  // namespace
}  // namespace rsse::pb

namespace rsse {
namespace {

TEST(BloomGateSerializeTest, RoundTripPreservesMembership) {
  sse::PrfKeyDeriver deriver(Bytes(16, 0x42));
  sse::PlainMultimap postings;
  for (int w = 0; w < 8; ++w) {
    Bytes keyword;
    AppendUint64(keyword, static_cast<uint64_t>(w));
    for (int i = 0; i < 5; ++i) {
      postings[keyword].push_back(sse::EncodeIdPayload(
          static_cast<uint64_t>(w * 100 + i)));
    }
  }
  BloomLabelGate gate(/*expected_real_entries=*/40, /*fp_rate=*/0.01,
                      /*salt=*/99);
  ASSERT_TRUE(gate.Populate(postings, deriver).ok());

  auto restored = BloomLabelGate::Deserialize(gate.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->SizeBytes(), gate.SizeBytes());

  // Every real label answers identically through the restored gate.
  uint8_t counter[8];
  Label label;
  for (const auto& [keyword, payloads] : postings) {
    const sse::KeywordKeys keys = deriver.Derive(keyword);
    const crypto::Prf prf(keys.label_key);
    for (uint64_t c = 0; c < payloads.size(); ++c) {
      StoreUint64(counter, c);
      ASSERT_TRUE(prf.EvalInto(ConstByteSpan(counter, sizeof(counter)),
                               ByteSpan(label.data(), label.size())));
      EXPECT_TRUE(restored->MayContainReal(label));
    }
  }

  // Corruption is rejected.
  Bytes bad = gate.Serialize();
  bad[0] ^= 1;
  EXPECT_FALSE(BloomLabelGate::Deserialize(bad).ok());
  bad = gate.Serialize();
  bad.pop_back();
  EXPECT_FALSE(BloomLabelGate::Deserialize(bad).ok());
}

TEST(BloomGateSerializeTest, RejectsOverflowingBitCount) {
  // num_bits near 2^64 once wrapped the (num_bits + 63) / 64 word-count
  // check, accepting an empty bit vector whose first probe then read out
  // of bounds. The blob must be rejected, never hosted.
  Bytes blob;
  AppendUint32(blob, 0x52534247);  // gate magic
  AppendUint32(blob, 1);           // gate version
  AppendUint64(blob, ~uint64_t{0});  // num_bits = 2^64 - 1
  AppendUint32(blob, 1);             // num_hashes
  AppendUint64(blob, 7);             // salt
  AppendUint64(blob, 0);             // word_count = 0 (wrapped check)
  EXPECT_FALSE(BloomLabelGate::Deserialize(blob).ok());
}

}  // namespace
}  // namespace rsse
