// Process-level robustness of the real rsse_serverd binary (path supplied
// via RSSE_SERVERD_BIN by the build): SIGKILL mid-workload followed by a
// restart from the same --data-dir must recover every acked write; a
// second daemon on an occupied port must report the bind failure on
// stderr and exit 1; SIGTERM must drain and exit 0.

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/client.h"

namespace rsse::server {
namespace {

const char* ServerdBin() { return std::getenv("RSSE_SERVERD_BIN"); }

class TempDir {
 public:
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "rsse_serverd_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    EXPECT_NE(mkdtemp(buf.data()), nullptr);
    path_ = buf.data();
  }

  ~TempDir() {
    DIR* d = opendir(path_.c_str());
    if (d != nullptr) {
      while (dirent* entry = readdir(d)) {
        const std::string name = entry->d_name;
        if (name != "." && name != "..") {
          unlink((path_ + "/" + name).c_str());
        }
      }
      closedir(d);
    }
    rmdir(path_.c_str());
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A forked rsse_serverd with its stdout on a pipe. The bound port is
/// parsed from the "listening on" line, so --port=0 works.
class Daemon {
 public:
  explicit Daemon(std::vector<std::string> extra_args) {
    int out[2];
    EXPECT_EQ(pipe(out), 0);
    pid_ = fork();
    EXPECT_GE(pid_, 0);
    if (pid_ < 0) return;
    if (pid_ == 0) {
      dup2(out[1], STDOUT_FILENO);
      close(out[0]);
      close(out[1]);
      std::vector<std::string> args = {ServerdBin()};
      for (std::string& a : extra_args) args.push_back(std::move(a));
      std::vector<char*> argv;
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv(argv[0], argv.data());
      _exit(127);
    }
    close(out[1]);
    stdout_fd_ = out[0];
  }

  ~Daemon() {
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
    }
    if (stdout_fd_ >= 0) close(stdout_fd_);
  }

  /// Reads stdout until the listening banner appears; returns the port.
  uint16_t WaitForPort() {
    std::string seen;
    char c;
    while (seen.find("listening on") == std::string::npos ||
           seen.find('\n', seen.find("listening on")) == std::string::npos) {
      const ssize_t n = read(stdout_fd_, &c, 1);
      if (n <= 0) {
        ADD_FAILURE() << "daemon exited before listening; stdout: " << seen;
        return 0;
      }
      seen.push_back(c);
    }
    banner_ = seen;
    const size_t colon = seen.rfind(':');
    return static_cast<uint16_t>(std::strtoul(seen.c_str() + colon + 1,
                                              nullptr, 10));
  }

  const std::string& banner() const { return banner_; }

  void Kill9() {
    kill(pid_, SIGKILL);
    waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }

  /// Sends `sig` and returns the exit code (or -1 on abnormal death).
  int SignalAndWait(int sig) {
    kill(pid_, sig);
    return WaitExit();
  }

  /// Reaps the child and returns its exit code (or -1 on abnormal death).
  int WaitExit() {
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

 private:
  pid_t pid_ = -1;
  int stdout_fd_ = -1;
  std::string banner_;
};

TEST(ServerdProcessTest, Sigkill_MidWorkload_RestartRecoversAckedWrites) {
  if (ServerdBin() == nullptr) {
    GTEST_SKIP() << "RSSE_SERVERD_BIN not set (run under ctest)";
  }
  TempDir dir;
  uint64_t acked_entries = 0;
  uint16_t port = 0;
  {
    Daemon daemon({"--port=0", "--data-dir=" + dir.path(), "--shards=2"});
    port = daemon.WaitForPort();
    ASSERT_NE(port, 0);
    EmmClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
    for (int b = 0; b < 4; ++b) {
      std::vector<std::pair<Label, Bytes>> entries;
      Label label;
      label.fill(static_cast<uint8_t>(0x10 + b));
      entries.emplace_back(label, Bytes(32, static_cast<uint8_t>(b)));
      auto resp = client.Update(entries);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      acked_entries = resp->entries;
    }
    // SIGKILL: no drain, no atexit, nothing beyond the per-request fsyncs.
    daemon.Kill9();
  }
  ASSERT_EQ(acked_entries, 4u);

  Daemon restarted({"--port=0", "--data-dir=" + dir.path(), "--shards=2"});
  const uint16_t new_port = restarted.WaitForPort();
  ASSERT_NE(new_port, 0);
  EXPECT_NE(restarted.banner().find("recovered 1 store(s)"),
            std::string::npos)
      << restarted.banner();
  EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", new_port).ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->entries, acked_entries)
      << "every acked update must survive SIGKILL";
}

TEST(ServerdProcessTest, SecondDaemonOnSamePortFailsCleanly) {
  if (ServerdBin() == nullptr) {
    GTEST_SKIP() << "RSSE_SERVERD_BIN not set (run under ctest)";
  }
  Daemon first({"--port=0"});
  const uint16_t port = first.WaitForPort();
  ASSERT_NE(port, 0);

  // The second daemon must not print a listening banner, must exit 1, and
  // must not disturb the first (which keeps serving).
  Daemon second({"--port=" + std::to_string(port)});
  EXPECT_EQ(second.WaitExit(), 1);

  EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  EXPECT_TRUE(client.Stats().ok());
}

TEST(ServerdProcessTest, SigtermDrainsAndExitsZero) {
  if (ServerdBin() == nullptr) {
    GTEST_SKIP() << "RSSE_SERVERD_BIN not set (run under ctest)";
  }
  TempDir dir;
  Daemon daemon({"--port=0", "--data-dir=" + dir.path(),
                 "--drain-timeout-ms=5000"});
  const uint16_t port = daemon.WaitForPort();
  ASSERT_NE(port, 0);
  EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
  std::vector<std::pair<Label, Bytes>> entries;
  Label label;
  label.fill(0x61);
  entries.emplace_back(label, Bytes(16, 0x02));
  ASSERT_TRUE(client.Update(entries).ok());

  EXPECT_EQ(daemon.SignalAndWait(SIGTERM), 0)
      << "a drained shutdown must exit 0";

  // The drained state is durable: a restart serves the entry.
  Daemon restarted({"--port=0", "--data-dir=" + dir.path()});
  const uint16_t new_port = restarted.WaitForPort();
  ASSERT_NE(new_port, 0);
  EmmClient again;
  ASSERT_TRUE(again.Connect("127.0.0.1", new_port).ok());
  auto stats = again.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->entries, 1u);
}

}  // namespace
}  // namespace rsse::server
