#include "crypto/aes.h"

#include <random>
#include <set>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/hmac_prf.h"
#include "crypto/random.h"

namespace rsse::crypto {
namespace {

TEST(AesTest, RoundTrip) {
  Bytes key = GenerateKey();
  Bytes plaintext = ToBytes("the quick brown fox");
  Result<Bytes> ct = Aes128Cbc::Encrypt(key, plaintext);
  ASSERT_TRUE(ct.ok()) << ct.status().ToString();
  Result<Bytes> pt = Aes128Cbc::Decrypt(key, *ct);
  ASSERT_TRUE(pt.ok()) << pt.status().ToString();
  EXPECT_EQ(*pt, plaintext);
}

TEST(AesTest, RoundTripAllSmallSizes) {
  Bytes key = GenerateKey();
  for (size_t len = 0; len <= 48; ++len) {
    Bytes plaintext(len, static_cast<uint8_t>(len));
    Result<Bytes> ct = Aes128Cbc::Encrypt(key, plaintext);
    ASSERT_TRUE(ct.ok());
    EXPECT_EQ(ct->size(), Aes128Cbc::CiphertextSize(len)) << "len=" << len;
    Result<Bytes> pt = Aes128Cbc::Decrypt(key, *ct);
    ASSERT_TRUE(pt.ok()) << "len=" << len;
    EXPECT_EQ(*pt, plaintext) << "len=" << len;
  }
}

TEST(AesTest, FreshIvRandomizesCiphertext) {
  Bytes key = GenerateKey();
  Bytes plaintext = ToBytes("same message");
  Result<Bytes> a = Aes128Cbc::Encrypt(key, plaintext);
  Result<Bytes> b = Aes128Cbc::Encrypt(key, plaintext);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);  // semantic security: equal plaintexts, distinct cts
}

TEST(AesTest, DeterministicWithFixedIv) {
  Bytes key(16, 0x01);
  Bytes iv(16, 0x02);
  Bytes plaintext = ToBytes("fixed");
  Result<Bytes> a = Aes128Cbc::EncryptWithIv(key, iv, plaintext);
  Result<Bytes> b = Aes128Cbc::EncryptWithIv(key, iv, plaintext);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, *b);
}

TEST(AesTest, WrongKeyFailsOrGarbles) {
  Bytes key1 = GenerateKey();
  Bytes key2 = GenerateKey();
  Bytes plaintext = ToBytes("secret payload here");
  Result<Bytes> ct = Aes128Cbc::Encrypt(key1, plaintext);
  ASSERT_TRUE(ct.ok());
  Result<Bytes> pt = Aes128Cbc::Decrypt(key2, *ct);
  // CBC+PKCS7 usually fails padding; on the rare pass the value differs.
  if (pt.ok()) {
    EXPECT_NE(*pt, plaintext);
  }
}

TEST(AesTest, RejectsBadKeySize) {
  EXPECT_FALSE(Aes128Cbc::Encrypt(Bytes(8, 0), ToBytes("x")).ok());
  EXPECT_FALSE(Aes128Cbc::Decrypt(Bytes(8, 0), Bytes(32, 0)).ok());
}

TEST(AesTest, RejectsMalformedCiphertext) {
  Bytes key = GenerateKey();
  EXPECT_FALSE(Aes128Cbc::Decrypt(key, Bytes(10, 0)).ok());   // too short
  EXPECT_FALSE(Aes128Cbc::Decrypt(key, Bytes(40, 0)).ok());   // not block-aligned
}

TEST(AesTest, RejectsBadIvSize) {
  Bytes key = GenerateKey();
  EXPECT_FALSE(Aes128Cbc::EncryptWithIv(key, Bytes(8, 0), ToBytes("x")).ok());
}

TEST(AesTest, CiphertextSizeFormula) {
  EXPECT_EQ(Aes128Cbc::CiphertextSize(0), 32u);
  EXPECT_EQ(Aes128Cbc::CiphertextSize(15), 32u);
  EXPECT_EQ(Aes128Cbc::CiphertextSize(16), 48u);
  EXPECT_EQ(Aes128Cbc::CiphertextSize(17), 48u);
}

TEST(AesIntoTest, EncryptIntoMatchesEncryptWithIv) {
  Bytes key(16, 0x01);
  Bytes iv(16, 0x02);
  Bytes plaintext = ToBytes("span-based parity check");
  Result<Bytes> reference = Aes128Cbc::EncryptWithIv(key, iv, plaintext);
  ASSERT_TRUE(reference.ok());
  uint8_t out[64];
  size_t written = 0;
  ASSERT_TRUE(Aes128Cbc::EncryptWithIvInto(key, iv, plaintext,
                                           ByteSpan(out, sizeof(out)),
                                           &written)
                  .ok());
  EXPECT_EQ(Bytes(out, out + written), *reference);
}

TEST(AesIntoTest, DecryptIntoRoundTrips) {
  Bytes key = GenerateKey();
  Bytes plaintext = ToBytes("decrypt into scratch");
  Result<Bytes> ct = Aes128Cbc::Encrypt(key, plaintext);
  ASSERT_TRUE(ct.ok());
  uint8_t out[64];
  size_t written = 0;
  ASSERT_TRUE(
      Aes128Cbc::DecryptInto(key, *ct, ByteSpan(out, sizeof(out)), &written)
          .ok());
  EXPECT_EQ(Bytes(out, out + written), plaintext);
}

TEST(AesIntoTest, RejectsUndersizedOutput) {
  Bytes key = GenerateKey();
  Bytes plaintext(20, 0xaa);
  uint8_t small[16];
  size_t written = 0;
  EXPECT_FALSE(Aes128Cbc::EncryptInto(key, plaintext,
                                      ByteSpan(small, sizeof(small)),
                                      &written)
                   .ok());
  Result<Bytes> ct = Aes128Cbc::Encrypt(key, plaintext);
  ASSERT_TRUE(ct.ok());
  uint8_t tiny[8];
  EXPECT_FALSE(
      Aes128Cbc::DecryptInto(key, *ct, ByteSpan(tiny, sizeof(tiny)), &written)
          .ok());
}

TEST(AesIntoTest, KeyScheduleCacheSurvivesKeySwitches) {
  // The per-thread context caches the last key schedule; interleaving keys
  // must still encrypt/decrypt correctly (cache hit, miss, hit again).
  Bytes k1 = GenerateKey();
  Bytes k2 = GenerateKey();
  Bytes p1 = ToBytes("under key one");
  Bytes p2 = ToBytes("under key two");
  for (int round = 0; round < 3; ++round) {
    Result<Bytes> c1 = Aes128Cbc::Encrypt(k1, p1);
    Result<Bytes> c2 = Aes128Cbc::Encrypt(k2, p2);
    ASSERT_TRUE(c1.ok());
    ASSERT_TRUE(c2.ok());
    EXPECT_EQ(*Aes128Cbc::Decrypt(k1, *c1), p1);
    EXPECT_EQ(*Aes128Cbc::Decrypt(k2, *c2), p2);
  }
}

TEST(AesIntoTest, DecryptRecoversAfterPaddingFailure) {
  // A failed decryption leaves the cached context in a reset state; the
  // next decryption under the same key must succeed (search probes hit
  // this when a foreign token garbles padding).
  Bytes key = GenerateKey();
  Bytes plaintext = ToBytes("recover after failure");
  Result<Bytes> ct = Aes128Cbc::Encrypt(key, plaintext);
  ASSERT_TRUE(ct.ok());
  Bytes corrupted = *ct;
  corrupted.back() ^= 0xff;
  uint8_t out[64];
  size_t written = 0;
  EXPECT_FALSE(Aes128Cbc::DecryptInto(key, corrupted,
                                      ByteSpan(out, sizeof(out)), &written)
                   .ok());
  ASSERT_TRUE(
      Aes128Cbc::DecryptInto(key, *ct, ByteSpan(out, sizeof(out)), &written)
          .ok());
  EXPECT_EQ(Bytes(out, out + written), plaintext);
}


// ---------------------------------------------------------------------------
// Batch (arena-at-a-time) API: one key, many entries, byte-identical to the
// per-entry API.
// ---------------------------------------------------------------------------

TEST(AesBatchTest, EncryptManyMatchesPerEntryWithSameIvs) {
  // KAT cross-check: with identical injected IVs, the batched column-wise
  // ECB construction must reproduce the per-entry CBC ciphertexts bit for
  // bit — lengths cover empty, sub-block, block-aligned and multi-block
  // plaintexts (0, 1, 15, 16, 17, 31, 32, 33, 64 bytes).
  Bytes key = GenerateKey();
  const std::vector<uint32_t> lens = {0, 1, 15, 16, 17, 31, 32, 33, 64};
  Bytes plaintexts;
  Bytes ivs;
  for (size_t i = 0; i < lens.size(); ++i) {
    for (uint32_t j = 0; j < lens[i]; ++j) {
      plaintexts.push_back(static_cast<uint8_t>(i * 37 + j));
    }
    Bytes iv = SecureRandom(16);
    Append(ivs, iv);
  }
  size_t ct_total = 0;
  for (uint32_t len : lens) ct_total += Aes128Cbc::CiphertextSize(len);
  Bytes batch(ct_total);
  size_t written = 0;
  ASSERT_TRUE(Aes128Cbc::EncryptManyWithIvsInto(key, ivs, plaintexts, lens,
                                                batch, &written)
                  .ok());
  EXPECT_EQ(written, ct_total);
  Bytes reference(ct_total);
  size_t pt_off = 0;
  size_t ct_off = 0;
  for (size_t i = 0; i < lens.size(); ++i) {
    const size_t ct_size = Aes128Cbc::CiphertextSize(lens[i]);
    size_t w = 0;
    ASSERT_TRUE(
        Aes128Cbc::EncryptWithIvInto(
            key, ConstByteSpan(ivs.data() + i * 16, 16),
            ConstByteSpan(plaintexts.data() + pt_off, lens[i]),
            ByteSpan(reference.data() + ct_off, ct_size), &w)
            .ok());
    ASSERT_EQ(w, ct_size);
    pt_off += lens[i];
    ct_off += ct_size;
  }
  EXPECT_EQ(batch, reference);
}

TEST(AesBatchTest, RandomLengthsRoundTripThroughBatchDecrypt) {
  // Fuzz-style: random entry lengths, batch encrypt with fresh IVs, batch
  // decrypt, compare content at the documented padded offsets.
  Bytes key = GenerateKey();
  std::mt19937 rng(1234);
  std::vector<uint32_t> lens;
  Bytes plaintexts;
  for (int i = 0; i < 200; ++i) {
    const uint32_t len = rng() % 70;
    lens.push_back(len);
    for (uint32_t j = 0; j < len; ++j) {
      plaintexts.push_back(static_cast<uint8_t>(rng()));
    }
  }
  size_t ct_total = 0;
  std::vector<uint32_t> ct_lens;
  for (uint32_t len : lens) {
    ct_lens.push_back(static_cast<uint32_t>(Aes128Cbc::CiphertextSize(len)));
    ct_total += ct_lens.back();
  }
  Bytes cts(ct_total);
  size_t written = 0;
  ASSERT_TRUE(
      Aes128Cbc::EncryptManyInto(key, plaintexts, lens, cts, &written).ok());
  ASSERT_EQ(written, ct_total);
  Bytes plains(ct_total - 16 * lens.size());
  std::vector<uint32_t> plain_lens(lens.size());
  ASSERT_TRUE(
      Aes128Cbc::DecryptManyInto(key, cts, ct_lens, plains, plain_lens).ok());
  size_t pt_off = 0;
  size_t out_off = 0;
  for (size_t i = 0; i < lens.size(); ++i) {
    ASSERT_EQ(plain_lens[i], lens[i]) << "entry " << i;
    EXPECT_EQ(std::memcmp(plains.data() + out_off, plaintexts.data() + pt_off,
                          lens[i]),
              0)
        << "entry " << i;
    pt_off += lens[i];
    out_off += ct_lens[i] - 16;
  }
}

TEST(AesBatchTest, BatchCiphertextsDecryptPerEntry) {
  // Cross-API: entries from one batch call are ordinary IV||CBC
  // ciphertexts, so the per-entry decryptor accepts each of them.
  Bytes key = GenerateKey();
  const std::vector<uint32_t> lens = {9, 9, 40, 0};
  Bytes plaintexts;
  for (size_t i = 0; i < lens.size(); ++i) {
    for (uint32_t j = 0; j < lens[i]; ++j) {
      plaintexts.push_back(static_cast<uint8_t>(i + j));
    }
  }
  size_t ct_total = 0;
  for (uint32_t len : lens) ct_total += Aes128Cbc::CiphertextSize(len);
  Bytes cts(ct_total);
  size_t written = 0;
  ASSERT_TRUE(
      Aes128Cbc::EncryptManyInto(key, plaintexts, lens, cts, &written).ok());
  size_t pt_off = 0;
  size_t ct_off = 0;
  for (size_t i = 0; i < lens.size(); ++i) {
    const size_t ct_size = Aes128Cbc::CiphertextSize(lens[i]);
    Result<Bytes> plain = Aes128Cbc::Decrypt(
        key, Bytes(cts.begin() + static_cast<long>(ct_off),
                   cts.begin() + static_cast<long>(ct_off + ct_size)));
    ASSERT_TRUE(plain.ok()) << "entry " << i;
    EXPECT_EQ(*plain, Bytes(plaintexts.begin() + static_cast<long>(pt_off),
                            plaintexts.begin() +
                                static_cast<long>(pt_off + lens[i])));
    pt_off += lens[i];
    ct_off += ct_size;
  }
}

TEST(AesBatchTest, FreshIvsAreDistinctAcrossEntries) {
  Bytes key = GenerateKey();
  const std::vector<uint32_t> lens(50, 9);
  Bytes plaintexts(50 * 9, 0x5a);
  Bytes cts(50 * 32);
  size_t written = 0;
  ASSERT_TRUE(
      Aes128Cbc::EncryptManyInto(key, plaintexts, lens, cts, &written).ok());
  std::set<std::string> ivs;
  std::set<std::string> bodies;
  for (size_t i = 0; i < 50; ++i) {
    ivs.insert(ToHex(Bytes(cts.begin() + static_cast<long>(i * 32),
                           cts.begin() + static_cast<long>(i * 32 + 16))));
    bodies.insert(ToHex(Bytes(cts.begin() + static_cast<long>(i * 32 + 16),
                              cts.begin() + static_cast<long>(i * 32 + 32))));
  }
  // Semantic security across a batch: equal plaintexts, distinct IVs and
  // therefore distinct ciphertext bodies.
  EXPECT_EQ(ivs.size(), 50u);
  EXPECT_EQ(bodies.size(), 50u);
}

TEST(AesBatchTest, WrongKeyFlagsEntriesWithoutFailingTheCall) {
  Bytes key = GenerateKey();
  const std::vector<uint32_t> lens = {9, 9, 9, 9};
  Bytes plaintexts(4 * 9, 0x11);
  Bytes cts(4 * 32);
  size_t written = 0;
  ASSERT_TRUE(
      Aes128Cbc::EncryptManyInto(key, plaintexts, lens, cts, &written).ok());
  const std::vector<uint32_t> ct_lens(4, 32);
  Bytes plains(4 * 16);
  std::vector<uint32_t> plain_lens(4);
  // Corrupt entry 2's body: only that entry's padding may fail.
  cts[2 * 32 + 31] ^= 0xff;
  ASSERT_TRUE(
      Aes128Cbc::DecryptManyInto(key, cts, ct_lens, plains, plain_lens).ok());
  EXPECT_EQ(plain_lens[0], 9u);
  EXPECT_EQ(plain_lens[1], 9u);
  EXPECT_EQ(plain_lens[3], 9u);
  // Entry 2 is either flagged or (rarely) garbles into valid padding with a
  // different length/content; flagged is the overwhelmingly likely case.
  if (plain_lens[2] != Aes128Cbc::kBadEntry) {
    EXPECT_NE(std::memcmp(plains.data() + 2 * 16, plaintexts.data() + 18, 9),
              0);
  }
}

TEST(AesBatchTest, RejectsMalformedBatches) {
  Bytes key = GenerateKey();
  const std::vector<uint32_t> lens = {9};
  Bytes plaintexts(8, 0);  // does not match lens (needs 9)
  Bytes out(64);
  size_t written = 0;
  EXPECT_FALSE(
      Aes128Cbc::EncryptManyInto(key, plaintexts, lens, out, &written).ok());
  Bytes nine(9, 0);
  Bytes small(16);
  EXPECT_FALSE(
      Aes128Cbc::EncryptManyInto(key, nine, lens, small, &written).ok());
  const std::vector<uint32_t> bad_ct_lens = {40};  // not block-aligned
  Bytes cts(40);
  Bytes plains(64);
  std::vector<uint32_t> plain_lens(1);
  EXPECT_FALSE(
      Aes128Cbc::DecryptManyInto(key, cts, bad_ct_lens, plains, plain_lens)
          .ok());
}

TEST(SecureRandomTest, ProducesRequestedLength) {
  EXPECT_EQ(SecureRandom(0).size(), 0u);
  EXPECT_EQ(SecureRandom(33).size(), 33u);
  EXPECT_EQ(GenerateKey().size(), kLambdaBytes);
}

TEST(SecureRandomTest, OutputsDiffer) {
  EXPECT_NE(SecureRandom(16), SecureRandom(16));
}

TEST(SecureRandomTest, PooledDrawsAreDistinctAcrossRefills) {
  // Draw more than one 4 KiB pool's worth in IV-sized chunks; all draws
  // must be pairwise distinct (collision probability ~ 2^-64). Hex strings
  // rather than raw Bytes keys: GCC 12's -Werror=stringop-overread misfires
  // on std::set<std::vector<uint8_t>>::insert in optimized builds.
  std::set<std::string> seen;
  for (int i = 0; i < 600; ++i) {
    Bytes iv = SecureRandom(16);
    EXPECT_TRUE(seen.insert(ToHex(iv)).second) << "duplicate IV at draw " << i;
  }
}

TEST(SecureRandomTest, LargeRequestBypassesPool) {
  Bytes big = SecureRandom(8192);
  EXPECT_EQ(big.size(), 8192u);
  // Not all zeros.
  bool nonzero = false;
  for (uint8_t b : big) nonzero |= (b != 0);
  EXPECT_TRUE(nonzero);
}

}  // namespace
}  // namespace rsse::crypto
