#include "crypto/aes.h"

#include <set>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/hmac_prf.h"
#include "crypto/random.h"

namespace rsse::crypto {
namespace {

TEST(AesTest, RoundTrip) {
  Bytes key = GenerateKey();
  Bytes plaintext = ToBytes("the quick brown fox");
  Result<Bytes> ct = Aes128Cbc::Encrypt(key, plaintext);
  ASSERT_TRUE(ct.ok()) << ct.status().ToString();
  Result<Bytes> pt = Aes128Cbc::Decrypt(key, *ct);
  ASSERT_TRUE(pt.ok()) << pt.status().ToString();
  EXPECT_EQ(*pt, plaintext);
}

TEST(AesTest, RoundTripAllSmallSizes) {
  Bytes key = GenerateKey();
  for (size_t len = 0; len <= 48; ++len) {
    Bytes plaintext(len, static_cast<uint8_t>(len));
    Result<Bytes> ct = Aes128Cbc::Encrypt(key, plaintext);
    ASSERT_TRUE(ct.ok());
    EXPECT_EQ(ct->size(), Aes128Cbc::CiphertextSize(len)) << "len=" << len;
    Result<Bytes> pt = Aes128Cbc::Decrypt(key, *ct);
    ASSERT_TRUE(pt.ok()) << "len=" << len;
    EXPECT_EQ(*pt, plaintext) << "len=" << len;
  }
}

TEST(AesTest, FreshIvRandomizesCiphertext) {
  Bytes key = GenerateKey();
  Bytes plaintext = ToBytes("same message");
  Result<Bytes> a = Aes128Cbc::Encrypt(key, plaintext);
  Result<Bytes> b = Aes128Cbc::Encrypt(key, plaintext);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);  // semantic security: equal plaintexts, distinct cts
}

TEST(AesTest, DeterministicWithFixedIv) {
  Bytes key(16, 0x01);
  Bytes iv(16, 0x02);
  Bytes plaintext = ToBytes("fixed");
  Result<Bytes> a = Aes128Cbc::EncryptWithIv(key, iv, plaintext);
  Result<Bytes> b = Aes128Cbc::EncryptWithIv(key, iv, plaintext);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, *b);
}

TEST(AesTest, WrongKeyFailsOrGarbles) {
  Bytes key1 = GenerateKey();
  Bytes key2 = GenerateKey();
  Bytes plaintext = ToBytes("secret payload here");
  Result<Bytes> ct = Aes128Cbc::Encrypt(key1, plaintext);
  ASSERT_TRUE(ct.ok());
  Result<Bytes> pt = Aes128Cbc::Decrypt(key2, *ct);
  // CBC+PKCS7 usually fails padding; on the rare pass the value differs.
  if (pt.ok()) {
    EXPECT_NE(*pt, plaintext);
  }
}

TEST(AesTest, RejectsBadKeySize) {
  EXPECT_FALSE(Aes128Cbc::Encrypt(Bytes(8, 0), ToBytes("x")).ok());
  EXPECT_FALSE(Aes128Cbc::Decrypt(Bytes(8, 0), Bytes(32, 0)).ok());
}

TEST(AesTest, RejectsMalformedCiphertext) {
  Bytes key = GenerateKey();
  EXPECT_FALSE(Aes128Cbc::Decrypt(key, Bytes(10, 0)).ok());   // too short
  EXPECT_FALSE(Aes128Cbc::Decrypt(key, Bytes(40, 0)).ok());   // not block-aligned
}

TEST(AesTest, RejectsBadIvSize) {
  Bytes key = GenerateKey();
  EXPECT_FALSE(Aes128Cbc::EncryptWithIv(key, Bytes(8, 0), ToBytes("x")).ok());
}

TEST(AesTest, CiphertextSizeFormula) {
  EXPECT_EQ(Aes128Cbc::CiphertextSize(0), 32u);
  EXPECT_EQ(Aes128Cbc::CiphertextSize(15), 32u);
  EXPECT_EQ(Aes128Cbc::CiphertextSize(16), 48u);
  EXPECT_EQ(Aes128Cbc::CiphertextSize(17), 48u);
}

TEST(AesIntoTest, EncryptIntoMatchesEncryptWithIv) {
  Bytes key(16, 0x01);
  Bytes iv(16, 0x02);
  Bytes plaintext = ToBytes("span-based parity check");
  Result<Bytes> reference = Aes128Cbc::EncryptWithIv(key, iv, plaintext);
  ASSERT_TRUE(reference.ok());
  uint8_t out[64];
  size_t written = 0;
  ASSERT_TRUE(Aes128Cbc::EncryptWithIvInto(key, iv, plaintext,
                                           ByteSpan(out, sizeof(out)),
                                           &written)
                  .ok());
  EXPECT_EQ(Bytes(out, out + written), *reference);
}

TEST(AesIntoTest, DecryptIntoRoundTrips) {
  Bytes key = GenerateKey();
  Bytes plaintext = ToBytes("decrypt into scratch");
  Result<Bytes> ct = Aes128Cbc::Encrypt(key, plaintext);
  ASSERT_TRUE(ct.ok());
  uint8_t out[64];
  size_t written = 0;
  ASSERT_TRUE(
      Aes128Cbc::DecryptInto(key, *ct, ByteSpan(out, sizeof(out)), &written)
          .ok());
  EXPECT_EQ(Bytes(out, out + written), plaintext);
}

TEST(AesIntoTest, RejectsUndersizedOutput) {
  Bytes key = GenerateKey();
  Bytes plaintext(20, 0xaa);
  uint8_t small[16];
  size_t written = 0;
  EXPECT_FALSE(Aes128Cbc::EncryptInto(key, plaintext,
                                      ByteSpan(small, sizeof(small)),
                                      &written)
                   .ok());
  Result<Bytes> ct = Aes128Cbc::Encrypt(key, plaintext);
  ASSERT_TRUE(ct.ok());
  uint8_t tiny[8];
  EXPECT_FALSE(
      Aes128Cbc::DecryptInto(key, *ct, ByteSpan(tiny, sizeof(tiny)), &written)
          .ok());
}

TEST(AesIntoTest, KeyScheduleCacheSurvivesKeySwitches) {
  // The per-thread context caches the last key schedule; interleaving keys
  // must still encrypt/decrypt correctly (cache hit, miss, hit again).
  Bytes k1 = GenerateKey();
  Bytes k2 = GenerateKey();
  Bytes p1 = ToBytes("under key one");
  Bytes p2 = ToBytes("under key two");
  for (int round = 0; round < 3; ++round) {
    Result<Bytes> c1 = Aes128Cbc::Encrypt(k1, p1);
    Result<Bytes> c2 = Aes128Cbc::Encrypt(k2, p2);
    ASSERT_TRUE(c1.ok());
    ASSERT_TRUE(c2.ok());
    EXPECT_EQ(*Aes128Cbc::Decrypt(k1, *c1), p1);
    EXPECT_EQ(*Aes128Cbc::Decrypt(k2, *c2), p2);
  }
}

TEST(AesIntoTest, DecryptRecoversAfterPaddingFailure) {
  // A failed decryption leaves the cached context in a reset state; the
  // next decryption under the same key must succeed (search probes hit
  // this when a foreign token garbles padding).
  Bytes key = GenerateKey();
  Bytes plaintext = ToBytes("recover after failure");
  Result<Bytes> ct = Aes128Cbc::Encrypt(key, plaintext);
  ASSERT_TRUE(ct.ok());
  Bytes corrupted = *ct;
  corrupted.back() ^= 0xff;
  uint8_t out[64];
  size_t written = 0;
  EXPECT_FALSE(Aes128Cbc::DecryptInto(key, corrupted,
                                      ByteSpan(out, sizeof(out)), &written)
                   .ok());
  ASSERT_TRUE(
      Aes128Cbc::DecryptInto(key, *ct, ByteSpan(out, sizeof(out)), &written)
          .ok());
  EXPECT_EQ(Bytes(out, out + written), plaintext);
}

TEST(SecureRandomTest, ProducesRequestedLength) {
  EXPECT_EQ(SecureRandom(0).size(), 0u);
  EXPECT_EQ(SecureRandom(33).size(), 33u);
  EXPECT_EQ(GenerateKey().size(), kLambdaBytes);
}

TEST(SecureRandomTest, OutputsDiffer) {
  EXPECT_NE(SecureRandom(16), SecureRandom(16));
}

TEST(SecureRandomTest, PooledDrawsAreDistinctAcrossRefills) {
  // Draw more than one 4 KiB pool's worth in IV-sized chunks; all draws
  // must be pairwise distinct (collision probability ~ 2^-64).
  std::set<Bytes> seen;
  for (int i = 0; i < 600; ++i) {
    Bytes iv = SecureRandom(16);
    EXPECT_TRUE(seen.insert(iv).second) << "duplicate IV at draw " << i;
  }
}

TEST(SecureRandomTest, LargeRequestBypassesPool) {
  Bytes big = SecureRandom(8192);
  EXPECT_EQ(big.size(), 8192u);
  // Not all zeros.
  bool nonzero = false;
  for (uint8_t b : big) nonzero |= (b != 0);
  EXPECT_TRUE(nonzero);
}

}  // namespace
}  // namespace rsse::crypto
