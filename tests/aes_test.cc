#include "crypto/aes.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/hmac_prf.h"
#include "crypto/random.h"

namespace rsse::crypto {
namespace {

TEST(AesTest, RoundTrip) {
  Bytes key = GenerateKey();
  Bytes plaintext = ToBytes("the quick brown fox");
  Result<Bytes> ct = Aes128Cbc::Encrypt(key, plaintext);
  ASSERT_TRUE(ct.ok()) << ct.status().ToString();
  Result<Bytes> pt = Aes128Cbc::Decrypt(key, *ct);
  ASSERT_TRUE(pt.ok()) << pt.status().ToString();
  EXPECT_EQ(*pt, plaintext);
}

TEST(AesTest, RoundTripAllSmallSizes) {
  Bytes key = GenerateKey();
  for (size_t len = 0; len <= 48; ++len) {
    Bytes plaintext(len, static_cast<uint8_t>(len));
    Result<Bytes> ct = Aes128Cbc::Encrypt(key, plaintext);
    ASSERT_TRUE(ct.ok());
    EXPECT_EQ(ct->size(), Aes128Cbc::CiphertextSize(len)) << "len=" << len;
    Result<Bytes> pt = Aes128Cbc::Decrypt(key, *ct);
    ASSERT_TRUE(pt.ok()) << "len=" << len;
    EXPECT_EQ(*pt, plaintext) << "len=" << len;
  }
}

TEST(AesTest, FreshIvRandomizesCiphertext) {
  Bytes key = GenerateKey();
  Bytes plaintext = ToBytes("same message");
  Result<Bytes> a = Aes128Cbc::Encrypt(key, plaintext);
  Result<Bytes> b = Aes128Cbc::Encrypt(key, plaintext);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);  // semantic security: equal plaintexts, distinct cts
}

TEST(AesTest, DeterministicWithFixedIv) {
  Bytes key(16, 0x01);
  Bytes iv(16, 0x02);
  Bytes plaintext = ToBytes("fixed");
  Result<Bytes> a = Aes128Cbc::EncryptWithIv(key, iv, plaintext);
  Result<Bytes> b = Aes128Cbc::EncryptWithIv(key, iv, plaintext);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, *b);
}

TEST(AesTest, WrongKeyFailsOrGarbles) {
  Bytes key1 = GenerateKey();
  Bytes key2 = GenerateKey();
  Bytes plaintext = ToBytes("secret payload here");
  Result<Bytes> ct = Aes128Cbc::Encrypt(key1, plaintext);
  ASSERT_TRUE(ct.ok());
  Result<Bytes> pt = Aes128Cbc::Decrypt(key2, *ct);
  // CBC+PKCS7 usually fails padding; on the rare pass the value differs.
  if (pt.ok()) {
    EXPECT_NE(*pt, plaintext);
  }
}

TEST(AesTest, RejectsBadKeySize) {
  EXPECT_FALSE(Aes128Cbc::Encrypt(Bytes(8, 0), ToBytes("x")).ok());
  EXPECT_FALSE(Aes128Cbc::Decrypt(Bytes(8, 0), Bytes(32, 0)).ok());
}

TEST(AesTest, RejectsMalformedCiphertext) {
  Bytes key = GenerateKey();
  EXPECT_FALSE(Aes128Cbc::Decrypt(key, Bytes(10, 0)).ok());   // too short
  EXPECT_FALSE(Aes128Cbc::Decrypt(key, Bytes(40, 0)).ok());   // not block-aligned
}

TEST(AesTest, RejectsBadIvSize) {
  Bytes key = GenerateKey();
  EXPECT_FALSE(Aes128Cbc::EncryptWithIv(key, Bytes(8, 0), ToBytes("x")).ok());
}

TEST(AesTest, CiphertextSizeFormula) {
  EXPECT_EQ(Aes128Cbc::CiphertextSize(0), 32u);
  EXPECT_EQ(Aes128Cbc::CiphertextSize(15), 32u);
  EXPECT_EQ(Aes128Cbc::CiphertextSize(16), 48u);
  EXPECT_EQ(Aes128Cbc::CiphertextSize(17), 48u);
}

TEST(SecureRandomTest, ProducesRequestedLength) {
  EXPECT_EQ(SecureRandom(0).size(), 0u);
  EXPECT_EQ(SecureRandom(33).size(), 33u);
  EXPECT_EQ(GenerateKey().size(), kLambdaBytes);
}

TEST(SecureRandomTest, OutputsDiffer) {
  EXPECT_NE(SecureRandom(16), SecureRandom(16));
}

}  // namespace
}  // namespace rsse::crypto
