// The annotated wrappers in common/thread_annotations.h must preserve the
// std primitives' runtime semantics exactly — the annotations are
// compile-time only, and under GCC they vanish entirely, so these tests
// pin the *behavioral* contract on every compiler: shared locks really
// admit concurrent readers, exclusive locks really exclude, CondVar really
// wakes. A wrapper that silently degraded SharedMutex to exclusive would
// pass every existing suite (stricter locking is invisible to correctness
// tests) while destroying the server's concurrent-search scaling.

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_annotations.h"

namespace rsse {
namespace {

using namespace std::chrono_literals;

// Spins until `cond` or ~2s elapse; returns whether `cond` held.
template <typename Cond>
bool SpinUntil(Cond cond) {
  for (int i = 0; i < 20000 && !cond(); ++i) std::this_thread::sleep_for(100us);
  return cond();
}

TEST(SharedMutexTest, AdmitsConcurrentReaders) {
  SharedMutex mu;
  std::atomic<int> inside{0};
  std::atomic<bool> both_seen{false};

  auto reader = [&] {
    ReaderMutexLock lock(mu);
    inside.fetch_add(1);
    // Hold the shared lock until the other reader is provably inside too.
    // If shared acquisition were exclusive, the second reader could never
    // enter while the first waits here, and both threads would time out
    // with both_seen still false.
    if (SpinUntil([&] { return inside.load() == 2; })) both_seen = true;
  };
  std::thread a(reader);
  std::thread b(reader);
  a.join();
  b.join();
  EXPECT_TRUE(both_seen.load());
}

TEST(SharedMutexTest, WriterExcludesReadersAndWriters) {
  SharedMutex mu;
  {
    WriterMutexLock lock(mu);
    // From another thread (self-try_lock on a held std mutex is UB).
    EXPECT_FALSE(std::async(std::launch::async, [&] {
                   if (!mu.TryLockShared()) return false;
                   mu.UnlockShared();
                   return true;
                 }).get());
    EXPECT_FALSE(std::async(std::launch::async, [&] {
                   if (!mu.TryLock()) return false;
                   mu.Unlock();
                   return true;
                 }).get());
  }
  // Released: both acquisition modes go through again.
  EXPECT_TRUE(std::async(std::launch::async, [&] {
                if (!mu.TryLockShared()) return false;
                mu.UnlockShared();
                return true;
              }).get());
}

TEST(SharedMutexTest, ReaderExcludesWriterOnly) {
  SharedMutex mu;
  ReaderMutexLock lock(mu);
  EXPECT_FALSE(std::async(std::launch::async, [&] {
                 if (!mu.TryLock()) return false;
                 mu.Unlock();
                 return true;
               }).get());
  EXPECT_TRUE(std::async(std::launch::async, [&] {
                if (!mu.TryLockShared()) return false;
                mu.UnlockShared();
                return true;
              }).get());
}

TEST(MutexTest, MutexLockExcludesAndSerializes) {
  Mutex mu;
  {
    MutexLock lock(mu);
    EXPECT_FALSE(std::async(std::launch::async, [&] {
                   if (!mu.TryLock()) return false;
                   mu.Unlock();
                   return true;
                 }).get());
  }
  // Classic lost-update check: racing increments through MutexLock.
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 40000);
}

TEST(CondVarTest, WaitWakesOnNotifyAndHoldsLockAfter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = -1;

  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    // The lock is held again here; reading `ready` must see the notify
    // thread's write made under the same lock.
    observed = ready ? 1 : 0;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(observed, 1);
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_FALSE(cv.WaitFor(mu, 10ms));
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> woke{0};

  std::vector<std::thread> waiters;
  for (int t = 0; t < 3; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      woke.fetch_add(1);
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& th : waiters) th.join();
  EXPECT_EQ(woke.load(), 3);
}

}  // namespace
}  // namespace rsse
