#include "rsse/logarithmic.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace rsse {
namespace {

Dataset SampleDataset() {
  std::vector<Record> records;
  for (uint64_t i = 0; i < 40; ++i) records.push_back({i, (i * 7) % 64});
  return Dataset(Domain{64}, std::move(records));
}

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class LogarithmicSchemeTest : public ::testing::TestWithParam<CoverTechnique> {
};

TEST_P(LogarithmicSchemeTest, ExhaustiveCorrectnessNoFalsePositives) {
  LogarithmicScheme scheme(GetParam());
  Dataset data = SampleDataset();
  ASSERT_TRUE(scheme.Build(data).ok());
  for (uint64_t lo = 0; lo < 64; lo += 5) {
    for (uint64_t hi = lo; hi < 64; hi += 3) {
      Result<QueryResult> r = scheme.Query(Range{lo, hi});
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(Sorted(r->ids), Sorted(data.IdsInRange(Range{lo, hi})))
          << "range [" << lo << "," << hi << "]";
    }
  }
}

TEST_P(LogarithmicSchemeTest, NoDuplicateIdsInResult) {
  // BRC/URC nodes are disjoint, so the union never repeats an id.
  LogarithmicScheme scheme(GetParam());
  Dataset data = SampleDataset();
  ASSERT_TRUE(scheme.Build(data).ok());
  Result<QueryResult> r = scheme.Query(Range{3, 60});
  ASSERT_TRUE(r.ok());
  std::vector<uint64_t> ids = Sorted(r->ids);
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST_P(LogarithmicSchemeTest, TokenCountMatchesCoverSize) {
  LogarithmicScheme scheme(GetParam());
  ASSERT_TRUE(scheme.Build(SampleDataset()).ok());
  Range r{3, 45};
  Result<QueryResult> q = scheme.Query(r);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->token_count, scheme.Cover(r).size());
  EXPECT_EQ(q->token_bytes, q->token_count * 32);  // two 16-byte keys each
}

TEST_P(LogarithmicSchemeTest, IndexSizeHasLogFactorOverConstant) {
  // Each tuple is replicated bits+1 times: the index is ~log m larger than
  // one entry per tuple.
  LogarithmicScheme scheme(GetParam());
  Dataset data = SampleDataset();
  ASSERT_TRUE(scheme.Build(data).ok());
  // 64-value domain: 7 keywords per tuple.
  size_t per_tuple = scheme.IndexSizeBytes() / data.size();
  EXPECT_GT(per_tuple, 6 * 40u);  // label(16)+ct(>=41) times 7 > this floor
}

TEST_P(LogarithmicSchemeTest, EmptyRangeOutsideDomain) {
  LogarithmicScheme scheme(GetParam());
  ASSERT_TRUE(scheme.Build(SampleDataset()).ok());
  Result<QueryResult> r = scheme.Query(Range{100, 200});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->ids.empty());
  EXPECT_EQ(r->token_count, 0u);
}

TEST_P(LogarithmicSchemeTest, FullDomainQueryReturnsEverything) {
  LogarithmicScheme scheme(GetParam());
  Dataset data = SampleDataset();
  ASSERT_TRUE(scheme.Build(data).ok());
  Result<QueryResult> r = scheme.Query(Range{0, 63});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ids.size(), data.size());
}

INSTANTIATE_TEST_SUITE_P(BothTechniques, LogarithmicSchemeTest,
                         ::testing::Values(CoverTechnique::kBrc,
                                           CoverTechnique::kUrc));

TEST(LogarithmicSchemeTest, UrcNeverFewerTokensThanBrc) {
  LogarithmicScheme brc(CoverTechnique::kBrc);
  LogarithmicScheme urc(CoverTechnique::kUrc);
  Dataset data = SampleDataset();
  ASSERT_TRUE(brc.Build(data).ok());
  ASSERT_TRUE(urc.Build(data).ok());
  for (uint64_t lo = 0; lo < 64; lo += 7) {
    for (uint64_t hi = lo; hi < 64; hi += 5) {
      EXPECT_GE(urc.Cover(Range{lo, hi}).size(),
                brc.Cover(Range{lo, hi}).size());
    }
  }
}

}  // namespace
}  // namespace rsse
