#include "data/dataset.h"

#include <gtest/gtest.h>

namespace rsse {
namespace {

TEST(DomainTest, BitsForPowerOfTwo) {
  EXPECT_EQ(Domain{2}.Bits(), 1);
  EXPECT_EQ(Domain{4}.Bits(), 2);
  EXPECT_EQ(Domain{8}.Bits(), 3);
  EXPECT_EQ(Domain{1024}.Bits(), 10);
}

TEST(DomainTest, BitsForNonPowerOfTwo) {
  EXPECT_EQ(Domain{3}.Bits(), 2);
  EXPECT_EQ(Domain{5}.Bits(), 3);
  EXPECT_EQ(Domain{1000}.Bits(), 10);
  // The paper's USPS salary domain.
  EXPECT_EQ(Domain{276841}.Bits(), 19);
}

TEST(DomainTest, TinyDomains) {
  EXPECT_EQ(Domain{1}.Bits(), 1);
  EXPECT_EQ(Domain{2}.PaddedSize(), 2u);
  EXPECT_EQ(Domain{5}.PaddedSize(), 8u);
}

TEST(DomainTest, Contains) {
  Domain d{10};
  EXPECT_TRUE(d.Contains(0));
  EXPECT_TRUE(d.Contains(9));
  EXPECT_FALSE(d.Contains(10));
}

TEST(RangeTest, SizeAndContains) {
  Range r{3, 7};
  EXPECT_EQ(r.Size(), 5u);
  EXPECT_TRUE(r.Contains(3));
  EXPECT_TRUE(r.Contains(7));
  EXPECT_FALSE(r.Contains(8));
  EXPECT_FALSE(r.Contains(2));
}

TEST(RangeTest, Intersects) {
  EXPECT_TRUE((Range{0, 5}).Intersects(Range{5, 9}));
  EXPECT_TRUE((Range{2, 3}).Intersects(Range{0, 9}));
  EXPECT_FALSE((Range{0, 4}).Intersects(Range{5, 9}));
}

TEST(DatasetTest, IdsInRange) {
  Dataset d(Domain{16}, {{1, 2}, {2, 5}, {3, 5}, {4, 15}});
  EXPECT_EQ(d.IdsInRange(Range{5, 5}), (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(d.IdsInRange(Range{0, 15}).size(), 4u);
  EXPECT_TRUE(d.IdsInRange(Range{6, 14}).empty());
}

TEST(DatasetTest, DistinctValueCount) {
  Dataset d(Domain{16}, {{1, 2}, {2, 5}, {3, 5}, {4, 15}});
  EXPECT_EQ(d.DistinctValueCount(), 3u);
  Dataset empty(Domain{16}, {});
  EXPECT_EQ(empty.DistinctValueCount(), 0u);
}

TEST(DatasetTest, SortedByAttrStableOnId) {
  Dataset d(Domain{16}, {{5, 9}, {1, 2}, {4, 9}, {2, 2}});
  std::vector<Record> sorted = d.SortedByAttr();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0], (Record{1, 2}));
  EXPECT_EQ(sorted[1], (Record{2, 2}));
  EXPECT_EQ(sorted[2], (Record{4, 9}));
  EXPECT_EQ(sorted[3], (Record{5, 9}));
}

}  // namespace
}  // namespace rsse
