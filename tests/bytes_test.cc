#include "common/bytes.h"

#include <gtest/gtest.h>

namespace rsse {
namespace {

TEST(BytesTest, ToBytesPreservesContent) {
  Bytes b = ToBytes("abc");
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], 'a');
  EXPECT_EQ(b[2], 'c');
}

TEST(BytesTest, ToBytesEmpty) { EXPECT_TRUE(ToBytes("").empty()); }

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(ToHex(b), "0001abff");
  EXPECT_EQ(FromHex("0001abff"), b);
}

TEST(BytesTest, FromHexAcceptsUppercase) {
  EXPECT_EQ(FromHex("ABFF"), (Bytes{0xab, 0xff}));
}

TEST(BytesTest, FromHexRejectsOddLength) { EXPECT_TRUE(FromHex("abc").empty()); }

TEST(BytesTest, FromHexRejectsNonHex) { EXPECT_TRUE(FromHex("zz").empty()); }

TEST(BytesTest, AppendAndConcat) {
  Bytes a = {1, 2};
  Bytes b = {3};
  Append(a, b);
  EXPECT_EQ(a, (Bytes{1, 2, 3}));
  Bytes c = Concat({&a, &b});
  EXPECT_EQ(c, (Bytes{1, 2, 3, 3}));
}

TEST(BytesTest, AppendByte) {
  Bytes a;
  AppendByte(a, 0x7f);
  EXPECT_EQ(a, (Bytes{0x7f}));
}

TEST(BytesTest, Uint64BigEndianRoundTrip) {
  Bytes b;
  AppendUint64(b, 0x0102030405060708ull);
  ASSERT_EQ(b.size(), 8u);
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[7], 0x08);
  EXPECT_EQ(ReadUint64(b, 0), 0x0102030405060708ull);
}

TEST(BytesTest, Uint64ExtremesRoundTrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, ~uint64_t{0}}) {
    Bytes b;
    AppendUint64(b, v);
    EXPECT_EQ(ReadUint64(b, 0), v);
  }
}

TEST(BytesTest, Uint32RoundTrip) {
  Bytes b;
  AppendUint32(b, 0xdeadbeef);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(ReadUint32(b, 0), 0xdeadbeefu);
}

TEST(BytesTest, ReadAtOffset) {
  Bytes b;
  AppendUint64(b, 1);
  AppendUint64(b, 2);
  EXPECT_EQ(ReadUint64(b, 8), 2u);
}

TEST(BytesTest, ConstantTimeEqual) {
  EXPECT_TRUE(ConstantTimeEqual({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(ConstantTimeEqual({1, 2, 3}, {1, 2, 4}));
  EXPECT_FALSE(ConstantTimeEqual({1, 2}, {1, 2, 3}));
  EXPECT_TRUE(ConstantTimeEqual({}, {}));
}

TEST(BytesTest, Fnv1a64KnownValue) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(Fnv1a64({}), 14695981039346656037ull);
  EXPECT_NE(Fnv1a64(ToBytes("a")), Fnv1a64(ToBytes("b")));
}

TEST(BytesTest, BytesHashUsableInUnorderedMap) {
  BytesHash h;
  EXPECT_EQ(h(ToBytes("x")), h(ToBytes("x")));
  EXPECT_NE(h(ToBytes("x")), h(ToBytes("y")));
}

}  // namespace
}  // namespace rsse
