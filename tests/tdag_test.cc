#include "cover/tdag.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace rsse {
namespace {

TEST(TdagNodeTest, RegularVsInjected) {
  EXPECT_FALSE((TdagNode{2, 0}).IsInjected());   // N0,3
  EXPECT_FALSE((TdagNode{2, 4}).IsInjected());   // N4,7
  EXPECT_TRUE((TdagNode{2, 2}).IsInjected());    // N2,5
  EXPECT_TRUE((TdagNode{1, 3}).IsInjected());    // N3,4
  EXPECT_FALSE((TdagNode{0, 5}).IsInjected());   // leaves are never injected
}

TEST(TdagNodeTest, RangeAlgebra) {
  TdagNode n{2, 2};  // N2,5 in Figure 3
  EXPECT_EQ(n.Lo(), 2u);
  EXPECT_EQ(n.Hi(), 5u);
  EXPECT_EQ(n.Size(), 4u);
  EXPECT_TRUE(n.Contains(3));
  EXPECT_FALSE(n.Contains(6));
  EXPECT_TRUE(n.CoversRange(Range{3, 5}));
  EXPECT_FALSE(n.CoversRange(Range{3, 6}));
}

TEST(TdagTest, PaperFigure3Covers) {
  Tdag tdag(3);
  // SRC covers [2,7] by N0,7 (the root) and [3,5] by N2,5 (Section 6.2).
  EXPECT_EQ(tdag.SingleRangeCover(Range{2, 7}), (TdagNode{3, 0}));
  EXPECT_EQ(tdag.SingleRangeCover(Range{3, 5}), (TdagNode{2, 2}));
}

TEST(TdagTest, CoverContainsPathAndInjectedNodes) {
  Tdag tdag(3);
  std::vector<TdagNode> cover = tdag.Cover(3);
  std::set<TdagNode> nodes(cover.begin(), cover.end());
  // Binary-tree path of value 3: N3, N2,3, N0,3, N0,7.
  EXPECT_TRUE(nodes.count(TdagNode{0, 3}));
  EXPECT_TRUE(nodes.count(TdagNode{1, 2}));
  EXPECT_TRUE(nodes.count(TdagNode{2, 0}));
  EXPECT_TRUE(nodes.count(TdagNode{3, 0}));
  // Injected nodes containing 3: N3,4 (level 1) and N2,5 (level 2).
  EXPECT_TRUE(nodes.count(TdagNode{1, 3}));
  EXPECT_TRUE(nodes.count(TdagNode{2, 2}));
  // Every cover node must contain the value.
  for (const TdagNode& n : cover) EXPECT_TRUE(n.Contains(3));
}

TEST(TdagTest, CoverSizeIsLogarithmic) {
  for (int bits = 1; bits <= 10; ++bits) {
    Tdag tdag(bits);
    for (uint64_t v = 0; v < tdag.leaf_count(); v += 7) {
      size_t count = tdag.Cover(v).size();
      EXPECT_LE(count, 2 * static_cast<size_t>(bits) + 1);
      EXPECT_GE(count, static_cast<size_t>(bits) + 1);  // at least the path
    }
  }
}

TEST(TdagTest, InjectedNodeLookup) {
  Tdag tdag(3);
  // Level-1 injected nodes over 8 leaves: starts 1, 3, 5.
  EXPECT_EQ(tdag.InjectedNodeAt(0, 1), std::nullopt);
  EXPECT_EQ(tdag.InjectedNodeAt(1, 1), (TdagNode{1, 1}));
  EXPECT_EQ(tdag.InjectedNodeAt(2, 1), (TdagNode{1, 1}));
  EXPECT_EQ(tdag.InjectedNodeAt(3, 1), (TdagNode{1, 3}));
  EXPECT_EQ(tdag.InjectedNodeAt(7, 1), std::nullopt);  // [7,8] off the edge
  // No injected nodes at leaf level or above the root's children level.
  EXPECT_EQ(tdag.InjectedNodeAt(3, 0), std::nullopt);
  EXPECT_EQ(tdag.InjectedNodeAt(3, 3), std::nullopt);
}

/// Lemma 1 exhaustively: every range of size R is covered by a single TDAG
/// subtree of size at most 4R.
class TdagLemma1Test : public ::testing::TestWithParam<int> {};

TEST_P(TdagLemma1Test, SingleCoverWithinFourTimesRange) {
  const int bits = GetParam();
  Tdag tdag(bits);
  const uint64_t m = tdag.leaf_count();
  for (uint64_t lo = 0; lo < m; ++lo) {
    for (uint64_t hi = lo; hi < m; ++hi) {
      TdagNode node = tdag.SingleRangeCover(Range{lo, hi});
      EXPECT_TRUE(node.CoversRange(Range{lo, hi}))
          << "node misses range [" << lo << "," << hi << "]";
      EXPECT_LE(node.Size(), 4 * (hi - lo + 1))
          << "Lemma 1 violated for [" << lo << "," << hi << "]";
      EXPECT_LE(node.Hi(), m - 1) << "node exceeds domain";
    }
  }
}

TEST_P(TdagLemma1Test, CoverIsLowestCoveringNode) {
  // No TDAG node of a *smaller* level covers the range.
  const int bits = GetParam();
  Tdag tdag(bits);
  const uint64_t m = tdag.leaf_count();
  for (uint64_t lo = 0; lo < m; ++lo) {
    for (uint64_t hi = lo; hi < m; ++hi) {
      TdagNode node = tdag.SingleRangeCover(Range{lo, hi});
      for (int level = 0; level < node.level; ++level) {
        // Regular candidate.
        bool regular_covers = (lo >> level) == (hi >> level);
        bool injected_covers = false;
        if (auto inj = tdag.InjectedNodeAt(lo, level); inj.has_value()) {
          injected_covers = inj->CoversRange(Range{lo, hi});
        }
        EXPECT_FALSE(regular_covers || injected_covers)
            << "lower-level cover exists for [" << lo << "," << hi << "]";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallDomains, TdagLemma1Test,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7));

TEST(TdagTest, CoverIsExactlyTheContainingNodes) {
  // Structural completeness behind SRC correctness: Cover(v) must return
  // *every* TDAG node whose subtree contains v — otherwise a query whose
  // SRC node contains v would miss the tuple. Verified by enumerating all
  // nodes of small TDAGs.
  for (int bits = 1; bits <= 5; ++bits) {
    Tdag tdag(bits);
    const uint64_t m = tdag.leaf_count();
    // Enumerate every node (regular + injected).
    std::vector<TdagNode> all_nodes;
    for (int level = 0; level <= bits; ++level) {
      const uint64_t size = uint64_t{1} << level;
      for (uint64_t start = 0; start + size <= m; start += size) {
        all_nodes.push_back(TdagNode{level, start});
      }
      if (level >= 1 && level < bits) {
        const uint64_t half = size >> 1;
        for (uint64_t start = half; start + size <= m; start += size) {
          all_nodes.push_back(TdagNode{level, start});
        }
      }
    }
    for (uint64_t v = 0; v < m; ++v) {
      std::vector<TdagNode> cover = tdag.Cover(v);
      std::set<TdagNode> cover_set(cover.begin(), cover.end());
      for (const TdagNode& node : all_nodes) {
        EXPECT_EQ(cover_set.count(node) > 0, node.Contains(v))
            << "bits=" << bits << " v=" << v << " node level=" << node.level
            << " start=" << node.start;
      }
    }
  }
}

TEST(TdagTest, SrcNodeIsAlwaysAKeywordOfItsMembers) {
  // Ties Cover and SingleRangeCover together: for every range, the SRC
  // node must appear in Cover(v) of every value it contains.
  Tdag tdag(4);
  for (uint64_t lo = 0; lo < 16; ++lo) {
    for (uint64_t hi = lo; hi < 16; ++hi) {
      TdagNode node = tdag.SingleRangeCover(Range{lo, hi});
      for (uint64_t v = node.Lo(); v <= node.Hi(); ++v) {
        std::vector<TdagNode> cover = tdag.Cover(v);
        EXPECT_NE(std::find(cover.begin(), cover.end(), node), cover.end())
            << "range [" << lo << "," << hi << "] value " << v;
      }
    }
  }
}

TEST(TdagTest, NodeCountMatchesManualCount) {
  // bits=3: regular 8+4+2+1 = 15; injected 3 (level1) + 1 (level2) = 4.
  EXPECT_EQ(Tdag(3).NodeCount(), 19u);
  // bits=1: 2 leaves + root, no injected.
  EXPECT_EQ(Tdag(1).NodeCount(), 3u);
}

TEST(TdagTest, KeywordEncodingsUniqueAcrossNodeKinds) {
  Tdag tdag(4);
  std::set<std::string> keywords;
  size_t total = 0;
  for (uint64_t v = 0; v < tdag.leaf_count(); ++v) {
    for (const TdagNode& n : tdag.Cover(v)) {
      keywords.insert(ToHex(n.EncodeKeyword()));
      ++total;
    }
  }
  EXPECT_GT(total, keywords.size());  // covers overlap across values
  EXPECT_EQ(keywords.size(), static_cast<size_t>(Tdag(4).NodeCount()));
}

}  // namespace
}  // namespace rsse
