#include "cover/urc.h"

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "cover/brc.h"

namespace rsse {
namespace {

std::vector<int> SortedLevels(const std::vector<DyadicNode>& cover) {
  std::vector<int> levels;
  for (const DyadicNode& n : cover) levels.push_back(n.level);
  std::sort(levels.begin(), levels.end());
  return levels;
}

TEST(UrcTest, PaperExampleRange2To7) {
  // Figure 1: URC represents [2,7] by N2, N3, N4,5 and N6,7.
  std::vector<DyadicNode> cover = UniformRangeCover(Range{2, 7}, 3);
  std::set<DyadicNode> expected = {
      DyadicNode{0, 2},  // N2
      DyadicNode{0, 3},  // N3
      DyadicNode{1, 2},  // N4,5
      DyadicNode{1, 3},  // N6,7
  };
  EXPECT_EQ(std::set<DyadicNode>(cover.begin(), cover.end()), expected);
}

TEST(UrcTest, PaperExampleSameProfileFor1To6) {
  // [1,6] has the same size as [2,7] and must produce the same number of
  // nodes at the same levels (two at level 0, two at level 1).
  std::vector<int> p1 = SortedLevels(UniformRangeCover(Range{2, 7}, 3));
  std::vector<int> p2 = SortedLevels(UniformRangeCover(Range{1, 6}, 3));
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(p1, (std::vector<int>{0, 0, 1, 1}));
}

TEST(UrcTest, AlreadyUniformCoverUnchanged) {
  // BRC of [1,6] already has nodes at every level 0..max, so URC keeps it.
  std::vector<DyadicNode> brc = BestRangeCover(Range{1, 6}, 3);
  std::vector<DyadicNode> urc = UniformRangeCover(Range{1, 6}, 3);
  EXPECT_EQ(std::set<DyadicNode>(brc.begin(), brc.end()),
            std::set<DyadicNode>(urc.begin(), urc.end()));
}

/// Exhaustive property sweep per domain size.
class UrcExhaustiveTest : public ::testing::TestWithParam<int> {};

TEST_P(UrcExhaustiveTest, CoversExactlyAndDisjointly) {
  const int bits = GetParam();
  const uint64_t m = uint64_t{1} << bits;
  for (uint64_t lo = 0; lo < m; ++lo) {
    for (uint64_t hi = lo; hi < m; ++hi) {
      std::vector<int> hit(m, 0);
      for (const DyadicNode& n : UniformRangeCover(Range{lo, hi}, bits)) {
        for (uint64_t v = n.Lo(); v <= n.Hi(); ++v) ++hit[v];
      }
      for (uint64_t v = 0; v < m; ++v) {
        EXPECT_EQ(hit[v], (v >= lo && v <= hi) ? 1 : 0)
            << "value " << v << " range [" << lo << "," << hi << "]";
      }
    }
  }
}

TEST_P(UrcExhaustiveTest, LevelProfileDependsOnlyOnRangeSize) {
  // The security property motivating URC: the multiset of cover-node levels
  // is a function of R alone, regardless of where the range sits. An
  // adversary counting tokens per level learns R but not the position.
  const int bits = GetParam();
  const uint64_t m = uint64_t{1} << bits;
  for (uint64_t size = 1; size <= m; ++size) {
    std::vector<int> reference;
    for (uint64_t lo = 0; lo + size <= m; ++lo) {
      std::vector<int> profile =
          SortedLevels(UniformRangeCover(Range{lo, lo + size - 1}, bits));
      if (lo == 0) {
        reference = profile;
      } else {
        EXPECT_EQ(profile, reference)
            << "position-dependent URC profile for size " << size << " at lo "
            << lo;
      }
    }
    EXPECT_EQ(UrcLevelProfile(size, bits), reference);
  }
}

TEST_P(UrcExhaustiveTest, EveryLevelUpToMaxPopulated) {
  const int bits = GetParam();
  const uint64_t m = uint64_t{1} << bits;
  for (uint64_t lo = 0; lo < m; ++lo) {
    for (uint64_t hi = lo; hi < m; ++hi) {
      std::vector<DyadicNode> cover = UniformRangeCover(Range{lo, hi}, bits);
      int max_level = 0;
      std::set<int> levels;
      for (const DyadicNode& n : cover) {
        max_level = std::max(max_level, n.level);
        levels.insert(n.level);
      }
      for (int level = 0; level <= max_level; ++level) {
        EXPECT_TRUE(levels.count(level))
            << "missing level " << level << " range [" << lo << "," << hi
            << "]";
      }
    }
  }
}

TEST_P(UrcExhaustiveTest, StillLogarithmicSize) {
  const int bits = GetParam();
  const uint64_t m = uint64_t{1} << bits;
  for (uint64_t lo = 0; lo < m; ++lo) {
    for (uint64_t hi = lo; hi < m; ++hi) {
      size_t count = UniformRangeCover(Range{lo, hi}, bits).size();
      // URC keeps O(log R): at most ~3 log2(R) + 2 nodes in practice; use a
      // generous constant to pin the asymptotic behaviour.
      uint64_t r = hi - lo + 1;
      int log_r = 0;
      while ((uint64_t{1} << log_r) < r) ++log_r;
      EXPECT_LE(count, static_cast<size_t>(3 * (log_r + 1)))
          << "range [" << lo << "," << hi << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallDomains, UrcExhaustiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7));

TEST(UrcRandomizedTest, ProfileUniformOnLargeDomain) {
  // The exhaustive sweep stops at 2^7; sample the property at 2^16 with
  // random sizes and positions to pin the asymptotic behaviour.
  const int bits = 16;
  const uint64_t m = uint64_t{1} << bits;
  std::mt19937_64 rng(424242);
  for (int trial = 0; trial < 200; ++trial) {
    uint64_t size = 1 + rng() % (m / 2);
    std::vector<int> reference = UrcLevelProfile(size, bits);
    for (int probe = 0; probe < 5; ++probe) {
      uint64_t lo = rng() % (m - size + 1);
      EXPECT_EQ(SortedLevels(UniformRangeCover(Range{lo, lo + size - 1}, bits)),
                reference)
          << "size " << size << " lo " << lo;
    }
  }
}

TEST(UrcRandomizedTest, ExactCoverageOnLargeDomain) {
  const int bits = 32;
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    uint64_t size = 1 + rng() % 100000;
    uint64_t lo = rng() % ((uint64_t{1} << bits) - size);
    Range r{lo, lo + size - 1};
    std::vector<DyadicNode> cover = UniformRangeCover(r, bits);
    // Nodes sorted by Lo and contiguous: exact disjoint coverage.
    uint64_t cursor = r.lo;
    for (const DyadicNode& n : cover) {
      EXPECT_EQ(n.Lo(), cursor) << "gap/overlap at " << cursor;
      cursor = n.Hi() + 1;
    }
    EXPECT_EQ(cursor, r.hi + 1);
  }
}

TEST(UrcLevelProfileTest, EmptyRangeYieldsEmptyProfile) {
  EXPECT_TRUE(UrcLevelProfile(0, 4).empty());
}

TEST(UrcLevelProfileTest, KnownSmallProfiles) {
  EXPECT_EQ(UrcLevelProfile(1, 4), (std::vector<int>{0}));
  EXPECT_EQ(UrcLevelProfile(2, 4), (std::vector<int>{0, 0}));
  EXPECT_EQ(UrcLevelProfile(6, 4), (std::vector<int>{0, 0, 1, 1}));
  EXPECT_EQ(UrcLevelProfile(8, 4), (std::vector<int>{0, 0, 1, 2}));
}

}  // namespace
}  // namespace rsse
