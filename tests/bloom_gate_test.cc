#include "rsse/bloom_gate.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "rsse/log_src.h"
#include "rsse/log_src_i.h"

namespace rsse {
namespace {

Dataset MakeData() {
  std::vector<Record> records;
  // Skewed: value 7 heavy, the rest sparse — padded lists on both shapes.
  for (uint64_t i = 0; i < 60; ++i) records.push_back({i, 7});
  for (uint64_t i = 60; i < 100; ++i) records.push_back({i, (i * 13) % 256});
  return Dataset(Domain{256}, std::move(records));
}

std::vector<uint64_t> SortedIds(const QueryResult& q) {
  std::vector<uint64_t> ids = q.ids;
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(BloomGateTest, SrcGatedResultsMatchUngated) {
  Dataset data = MakeData();
  LogarithmicSrcScheme plain(/*rng_seed=*/9, /*pad_quantum=*/8);
  LogarithmicSrcScheme gated(/*rng_seed=*/9, /*pad_quantum=*/8);
  gated.EnableBloomGate(0.01);
  ASSERT_TRUE(plain.Build(data).ok());
  ASSERT_TRUE(gated.Build(data).ok());
  EXPECT_GT(gated.BloomGateSizeBytes(), 0u);
  EXPECT_EQ(plain.BloomGateSizeBytes(), 0u);

  size_t total_skipped = 0;
  for (const Range& r : {Range{0, 255}, Range{5, 9}, Range{7, 7},
                         Range{100, 200}, Range{250, 255}}) {
    Result<QueryResult> p = plain.Query(r);
    Result<QueryResult> g = gated.Query(r);
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(SortedIds(*g), SortedIds(*p)) << "[" << r.lo << "," << r.hi
                                            << "]";
    EXPECT_EQ(p->skipped_decrypts, 0u);
    total_skipped += g->skipped_decrypts;
  }
  // Padded lists guarantee dummies under the cover nodes; the gate must
  // have skipped a decryption somewhere across these queries.
  EXPECT_GT(total_skipped, 0u);
}

TEST(BloomGateTest, SrcIGatedResultsMatchUngated) {
  Dataset data = MakeData();
  LogarithmicSrcIScheme plain(/*rng_seed=*/9, /*pad_quantum=*/8);
  LogarithmicSrcIScheme gated(/*rng_seed=*/9, /*pad_quantum=*/8);
  gated.EnableBloomGate(0.01);
  ASSERT_TRUE(plain.Build(data).ok());
  ASSERT_TRUE(gated.Build(data).ok());
  EXPECT_GT(gated.BloomGateSizeBytes(), 0u);

  size_t total_skipped = 0;
  for (const Range& r : {Range{0, 255}, Range{5, 9}, Range{7, 7},
                         Range{100, 200}}) {
    Result<QueryResult> p = plain.Query(r);
    Result<QueryResult> g = gated.Query(r);
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(SortedIds(*g), SortedIds(*p)) << "[" << r.lo << "," << r.hi
                                            << "]";
    total_skipped += g->skipped_decrypts;
  }
  EXPECT_GT(total_skipped, 0u);
}

TEST(BloomGateTest, GateWithoutPaddingSkipsNothing) {
  Dataset data = MakeData();
  LogarithmicSrcScheme gated(/*rng_seed=*/3, /*pad_quantum=*/0);
  gated.EnableBloomGate(0.01);
  ASSERT_TRUE(gated.Build(data).ok());
  Result<QueryResult> q = gated.Query(Range{0, 255});
  ASSERT_TRUE(q.ok());
  // No dummies exist; false positives cannot *add* skips (FPs decrypt).
  EXPECT_EQ(q->skipped_decrypts, 0u);
}

TEST(BloomGateTest, GateNeverDropsRealEntries) {
  // Aggressive FP rate -> tiny filter; reals must still all survive.
  Dataset data = MakeData();
  LogarithmicSrcScheme plain(/*rng_seed=*/4, /*pad_quantum=*/4);
  LogarithmicSrcScheme gated(/*rng_seed=*/4, /*pad_quantum=*/4);
  gated.EnableBloomGate(0.5);
  ASSERT_TRUE(plain.Build(data).ok());
  ASSERT_TRUE(gated.Build(data).ok());
  for (const Range& r : {Range{0, 255}, Range{7, 7}, Range{32, 64}}) {
    Result<QueryResult> p = plain.Query(r);
    Result<QueryResult> g = gated.Query(r);
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(SortedIds(*g), SortedIds(*p));
  }
}

}  // namespace
}  // namespace rsse
