#include "pb/bloom_filter.h"

#include <gtest/gtest.h>

#include "crypto/hmac_prf.h"
#include "crypto/random.h"

namespace rsse::pb {
namespace {

Bytes TrapdoorFor(const crypto::Prf& prf, uint64_t element) {
  Bytes in;
  AppendUint64(in, element);
  return prf.EvalTrunc(in, crypto::kLambdaBytes);
}

TEST(BloomFilterTest, NoFalseNegatives) {
  crypto::Prf prf(crypto::GenerateKey());
  BloomFilter bf(1000, 0.01, /*node_salt=*/7);
  for (uint64_t e = 0; e < 1000; ++e) bf.Insert(TrapdoorFor(prf, e));
  for (uint64_t e = 0; e < 1000; ++e) {
    EXPECT_TRUE(bf.MayContain(TrapdoorFor(prf, e))) << "element " << e;
  }
}

TEST(BloomFilterTest, FalsePositiveRateNearTarget) {
  crypto::Prf prf(crypto::GenerateKey());
  const double target = 0.01;
  BloomFilter bf(2000, target, /*node_salt=*/3);
  for (uint64_t e = 0; e < 2000; ++e) bf.Insert(TrapdoorFor(prf, e));
  int false_positives = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (bf.MayContain(TrapdoorFor(prf, 1000000 + i))) ++false_positives;
  }
  double rate = static_cast<double>(false_positives) / probes;
  EXPECT_LT(rate, 4 * target);
}

TEST(BloomFilterTest, EmptyFilterMatchesNothing) {
  crypto::Prf prf(crypto::GenerateKey());
  BloomFilter bf(100, 0.01, 0);
  int hits = 0;
  for (uint64_t e = 0; e < 1000; ++e) {
    if (bf.MayContain(TrapdoorFor(prf, e))) ++hits;
  }
  EXPECT_EQ(hits, 0);
}

TEST(BloomFilterTest, DifferentSaltsProbeDifferently) {
  // The same trapdoor inserted under salt A should usually not register
  // under salt B — per-node unlinkability of the PB index.
  crypto::Prf prf(crypto::GenerateKey());
  BloomFilter a(100, 0.01, /*node_salt=*/1);
  BloomFilter b(100, 0.01, /*node_salt=*/2);
  int cross_hits = 0;
  for (uint64_t e = 0; e < 100; ++e) {
    Bytes t = TrapdoorFor(prf, e);
    a.Insert(t);
    if (b.MayContain(t)) ++cross_hits;
  }
  EXPECT_LT(cross_hits, 10);
}

TEST(BloomFilterTest, SizingMonotoneInElementsAndRate) {
  BloomFilter small(100, 0.01, 0);
  BloomFilter large(1000, 0.01, 0);
  EXPECT_GT(large.num_bits(), small.num_bits());
  BloomFilter loose(1000, 0.1, 0);
  EXPECT_GT(large.num_bits(), loose.num_bits());
  EXPECT_GT(large.num_hashes(), loose.num_hashes());
}

TEST(BloomFilterTest, HashCountSane) {
  EXPECT_EQ(BloomFilter::HashCountFor(0.01), 7);
  EXPECT_GE(BloomFilter::HashCountFor(0.5), 1);
}

TEST(BloomFilterTest, ZeroExpectedElementsStillUsable) {
  BloomFilter bf(0, 0.01, 0);
  EXPECT_GE(bf.num_bits(), 64u);
  Bytes t(16, 0xab);
  bf.Insert(t);
  EXPECT_TRUE(bf.MayContain(t));
}

}  // namespace
}  // namespace rsse::pb
