#include "sse/packed_multimap.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "crypto/random.h"
#include "sse/encrypted_multimap.h"

namespace rsse::sse {
namespace {

std::vector<std::pair<Bytes, std::vector<uint64_t>>> SamplePostings() {
  return {
      {ToBytes("apple"), {1, 2, 3}},
      {ToBytes("banana"), {10}},
      {ToBytes("empty"), {}},
  };
}

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(PackedMultimapTest, SearchReturnsExactPostings) {
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<PackedMultimap> built =
      PackedMultimap::Build(SamplePostings(), deriver);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(Sorted(built->Search(deriver.Derive(ToBytes("apple")))),
            (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(built->Search(deriver.Derive(ToBytes("banana"))),
            std::vector<uint64_t>{10});
  EXPECT_TRUE(built->Search(deriver.Derive(ToBytes("empty"))).empty());
}

TEST(PackedMultimapTest, UnknownKeywordEmpty) {
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<PackedMultimap> built =
      PackedMultimap::Build(SamplePostings(), deriver);
  ASSERT_TRUE(built.ok());
  EXPECT_TRUE(built->Search(deriver.Derive(ToBytes("missing"))).empty());
}

TEST(PackedMultimapTest, WrongKeyFindsNothing) {
  PrfKeyDeriver build_deriver(crypto::GenerateKey());
  PrfKeyDeriver other(crypto::GenerateKey());
  Result<PackedMultimap> built =
      PackedMultimap::Build(SamplePostings(), build_deriver);
  ASSERT_TRUE(built.ok());
  EXPECT_TRUE(built->Search(other.Derive(ToBytes("apple"))).empty());
}

TEST(PackedMultimapTest, LargeLoadRoundTrips) {
  // ~5000 entries across skewed list sizes; exercises bucket balancing.
  std::vector<std::pair<Bytes, std::vector<uint64_t>>> postings;
  uint64_t next = 0;
  for (uint64_t w = 0; w < 100; ++w) {
    Bytes keyword;
    AppendUint64(keyword, w);
    std::vector<uint64_t> ids;
    for (uint64_t i = 0; i < (w % 10) * 10 + 5; ++i) ids.push_back(next++);
    postings.emplace_back(std::move(keyword), std::move(ids));
  }
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<PackedMultimap> built = PackedMultimap::Build(postings, deriver);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  for (const auto& [keyword, ids] : postings) {
    EXPECT_EQ(Sorted(built->Search(deriver.Derive(keyword))), Sorted(ids));
  }
}

TEST(PackedMultimapTest, MoreSpaceEfficientThanFlatDictionary) {
  // The paper's reason for the (S, K) parameters: packing beats the flat
  // per-entry IV+AES-block overhead by a wide margin.
  std::vector<std::pair<Bytes, std::vector<uint64_t>>> postings;
  PlainMultimap flat_postings;
  for (uint64_t w = 0; w < 50; ++w) {
    Bytes keyword;
    AppendUint64(keyword, w);
    std::vector<uint64_t> ids;
    for (uint64_t i = 0; i < 100; ++i) {
      ids.push_back(w * 1000 + i);
      flat_postings[keyword].push_back(EncodeIdPayload(w * 1000 + i));
    }
    postings.emplace_back(keyword, std::move(ids));
  }
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<PackedMultimap> packed = PackedMultimap::Build(postings, deriver);
  Result<EncryptedMultimap> flat =
      EncryptedMultimap::Build(flat_postings, deriver);
  ASSERT_TRUE(packed.ok());
  ASSERT_TRUE(flat.ok());
  // Flat: 16B label + 32B IV/ct per posting (~48B). Packed: 25B slot at
  // ~80% utilization (~31B) — at least a 30% saving even after bucket
  // quantization at this size; the margin grows with the load.
  EXPECT_LT(packed->SizeBytes(), flat->SizeBytes() * 7 / 10);
}

TEST(PackedMultimapTest, SizeDependsOnlyOnTotalCount) {
  // Two datasets with equal totals but different per-keyword shapes yield
  // byte-identical array sizes — the packed layout hides list shapes.
  std::vector<std::pair<Bytes, std::vector<uint64_t>>> one_big = {
      {ToBytes("w"), std::vector<uint64_t>(200, 7)}};
  std::vector<std::pair<Bytes, std::vector<uint64_t>>> many_small;
  for (uint64_t w = 0; w < 200; ++w) {
    Bytes keyword;
    AppendUint64(keyword, w);
    many_small.emplace_back(keyword, std::vector<uint64_t>{w});
  }
  PrfKeyDeriver deriver(crypto::GenerateKey());
  Result<PackedMultimap> a = PackedMultimap::Build(one_big, deriver);
  Result<PackedMultimap> b = PackedMultimap::Build(many_small, deriver);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->SizeBytes(), b->SizeBytes());
}

TEST(PackedMultimapTest, RejectsBadParameters) {
  PrfKeyDeriver deriver(crypto::GenerateKey());
  PackedMultimap::Params bad_capacity;
  bad_capacity.bucket_capacity = 0;
  EXPECT_FALSE(PackedMultimap::Build({}, deriver, bad_capacity).ok());
  PackedMultimap::Params bad_factor;
  bad_factor.overhead_factor = 0.5;
  EXPECT_FALSE(PackedMultimap::Build({}, deriver, bad_factor).ok());
}

TEST(PackedMultimapTest, TinyCapacityEventuallyBalancesOrFails) {
  // Capacity 1 with factor 1.1 will almost surely overflow and exhaust the
  // retry budget for non-trivial loads — must fail cleanly, not loop.
  std::vector<std::pair<Bytes, std::vector<uint64_t>>> postings = {
      {ToBytes("w"), {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}};
  PrfKeyDeriver deriver(crypto::GenerateKey());
  PackedMultimap::Params tight;
  tight.bucket_capacity = 1;
  tight.overhead_factor = 1.0;
  tight.max_build_attempts = 3;
  Result<PackedMultimap> r = PackedMultimap::Build(postings, deriver, tight);
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  }
}

class PackedParamsTest
    : public ::testing::TestWithParam<std::pair<uint64_t, double>> {};

TEST_P(PackedParamsTest, RoundTripsAcrossParameterGrid) {
  auto [capacity, factor] = GetParam();
  std::vector<std::pair<Bytes, std::vector<uint64_t>>> postings;
  for (uint64_t w = 0; w < 20; ++w) {
    Bytes keyword;
    AppendUint64(keyword, w);
    std::vector<uint64_t> ids;
    for (uint64_t i = 0; i <= w; ++i) ids.push_back(w * 100 + i);
    postings.emplace_back(keyword, std::move(ids));
  }
  PrfKeyDeriver deriver(crypto::GenerateKey());
  PackedMultimap::Params params;
  params.bucket_capacity = capacity;
  params.overhead_factor = factor;
  Result<PackedMultimap> built =
      PackedMultimap::Build(postings, deriver, params);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  for (const auto& [keyword, ids] : postings) {
    EXPECT_EQ(Sorted(built->Search(deriver.Derive(keyword))), Sorted(ids));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PackedParamsTest,
    ::testing::Values(std::make_pair(uint64_t{32}, 1.1),
                      std::make_pair(uint64_t{64}, 1.25),
                      std::make_pair(uint64_t{128}, 1.1),
                      std::make_pair(uint64_t{256}, 2.0)));

}  // namespace
}  // namespace rsse::sse
