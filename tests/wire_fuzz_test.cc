// Deterministic hostile-input sweeps over every untrusted decoder — the
// in-suite mirror of the fuzz/ harnesses, so the properties the fuzzers
// explore stochastically are also pinned on every plain `ctest` run:
// truncating or flipping any byte of any valid encoding must produce a
// clean rejection (or a clean alternative parse), never a crash, an
// over-read, or an allocation driven by a corrupt length field. The sweep
// inputs are exactly the transformations gen_corpus commits as rejection
// seeds; anything a fuzzer finds beyond them gets promoted to an explicit
// case here.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "server/persist.h"
#include "server/wire.h"
#include "shard/sharded_emm.h"
#include "sse/keyword_keys.h"

namespace rsse::server {
namespace {

using shard::ShardedEmm;

Label MakeLabel(uint8_t fill) {
  Label l{};
  l.fill(fill);
  return l;
}

ShardedEmm MakeStore() {
  ShardedEmm emm = ShardedEmm::WithShards(2);
  for (uint8_t i = 0; i < 8; ++i) {
    emm.Insert(MakeLabel(i), Bytes(24 + i, static_cast<uint8_t>(0xA0 + i)));
  }
  return emm;
}

Bytes MustFrame(FrameType type, const Bytes& payload) {
  Bytes out;
  EXPECT_TRUE(EncodeFrame(type, payload, out));
  return out;
}

/// Runs `buf` through the full stream parser exactly like the server's
/// read loop, dispatching each decoded payload to its typed decoder.
/// Returns the number of whole frames decoded. The only assertable
/// invariants are safety ones: offset stays in bounds and always advances
/// on kFrame (no infinite pump loop on hostile bytes).
size_t PumpAll(const Bytes& buf) {
  size_t offset = 0;
  size_t frames = 0;
  Frame frame;
  std::string error;
  while (true) {
    const size_t before = offset;
    const FrameParse parse = DecodeFrame(buf, offset, frame, &error);
    if (parse != FrameParse::kFrame) {
      EXPECT_EQ(offset, before);  // only kFrame may consume bytes
      break;
    }
    EXPECT_GT(offset, before);
    EXPECT_LE(offset, buf.size());
    ++frames;
    switch (frame.type) {
      case FrameType::kSetupReq:
        (void)SetupRequest::Decode(frame.payload);
        break;
      case FrameType::kSetupResp:
        (void)SetupResponse::Decode(frame.payload);
        break;
      case FrameType::kSearchBatchReq:
        (void)SearchBatchRequest::Decode(frame.payload);
        break;
      case FrameType::kSearchResult:
        (void)SearchResult::Decode(frame.payload);
        break;
      case FrameType::kSearchDone:
        (void)SearchDone::Decode(frame.payload);
        break;
      case FrameType::kUpdateReq:
        (void)UpdateRequest::Decode(frame.payload);
        break;
      case FrameType::kUpdateResp:
        (void)UpdateResponse::Decode(frame.payload);
        break;
      case FrameType::kStatsResp:
        (void)StatsResponse::Decode(frame.payload);
        break;
      case FrameType::kError:
      case FrameType::kErrorDraining:
        (void)ErrorResponse::Decode(frame.payload);
        break;
      case FrameType::kSetupStoreReq:
        (void)SetupStoreRequest::Decode(frame.payload);
        break;
      case FrameType::kSearchKeywordReq:
        (void)SearchKeywordRequest::Decode(frame.payload);
        break;
      case FrameType::kSearchPayload:
        (void)SearchPayloadResult::Decode(frame.payload);
        break;
      case FrameType::kStatsReq:
        break;
    }
  }
  return frames;
}

/// One representative valid frame per payload-carrying type.
std::vector<Bytes> ValidFrames() {
  SearchBatchRequest batch;
  WireQuery query;
  query.query_id = 42;
  query.tokens.push_back(WireToken{3, MakeLabel(0x40)});
  query.tokens.push_back(WireToken{0, MakeLabel(0x41)});
  batch.queries.push_back(query);

  UpdateRequest update;
  update.entries.emplace_back(MakeLabel(0x11), Bytes{1, 2, 3, 4});
  update.entries.emplace_back(MakeLabel(0x22), Bytes(40, 0xEE));

  SearchKeywordRequest keyword;
  keyword.store_id = 1;
  SearchKeywordRequest::Query kq;
  kq.query_id = 7;
  kq.tokens.push_back(WireKeywordToken{0, Bytes(16, 0x51), Bytes(16, 0x52)});
  keyword.queries.push_back(kq);

  SetupStoreRequest setup_store;
  setup_store.store_id = 2;
  setup_store.index_blob = Bytes(64, 0x33);
  setup_store.gate_blob = Bytes{0xDE, 0xAD};

  SearchResult result;
  result.query_id = 42;
  result.ids = {1, 2, 1ull << 40};

  SearchDone done;
  done.query_count = 1;
  done.tokens_received = 2;

  ErrorResponse error;
  error.message = "boom";

  StatsResponse stats;
  stats.entries = 8;
  stats.shards = 2;

  SearchPayloadResult payloads;
  payloads.query_id = 7;
  payloads.payloads = {Bytes{9, 8, 7}, Bytes(24, 0x31)};

  return {
      MustFrame(FrameType::kSearchBatchReq, batch.Encode()),
      MustFrame(FrameType::kUpdateReq, update.Encode()),
      MustFrame(FrameType::kSearchKeywordReq, keyword.Encode()),
      MustFrame(FrameType::kSetupStoreReq, setup_store.Encode()),
      MustFrame(FrameType::kSearchResult, result.Encode()),
      MustFrame(FrameType::kSearchDone, done.Encode()),
      MustFrame(FrameType::kError, error.Encode()),
      MustFrame(FrameType::kStatsResp, stats.Encode()),
      MustFrame(FrameType::kSearchPayload, payloads.Encode()),
      MustFrame(FrameType::kUpdateResp, UpdateResponse{2}.Encode()),
      MustFrame(FrameType::kSetupResp, SetupResponse{2, 8}.Encode()),
  };
}

TEST(WireFuzzTest, ValidFramesDecodeWhole) {
  for (const Bytes& frame : ValidFrames()) {
    EXPECT_EQ(PumpAll(frame), 1u);
  }
}

TEST(WireFuzzTest, EveryTruncationIsIncompleteNeverAFrame) {
  for (const Bytes& frame : ValidFrames()) {
    for (size_t cut = 0; cut < frame.size(); ++cut) {
      const Bytes prefix(frame.begin(), frame.begin() + cut);
      size_t offset = 0;
      Frame out;
      const FrameParse parse = DecodeFrame(prefix, offset, out, nullptr);
      // A strict prefix can be kNeedMore (length not yet satisfied) but
      // never a whole frame; kMalformed is impossible here because every
      // header field stays the valid original's.
      EXPECT_NE(parse, FrameParse::kFrame) << "cut=" << cut;
      EXPECT_EQ(offset, 0u);
    }
  }
}

TEST(WireFuzzTest, EveryByteFlipPumpsWithoutCrashing) {
  for (const Bytes& frame : ValidFrames()) {
    for (size_t at = 0; at < frame.size(); ++at) {
      Bytes mutated = frame;
      mutated[at] ^= 0xff;
      (void)PumpAll(mutated);  // any outcome but a crash/over-read is fine
    }
  }
}

TEST(WireFuzzTest, HostileLengthPrefixNeverAllocates) {
  // frame_len within the cap but far beyond the buffer: the parser must
  // wait for bytes (kNeedMore), not trust the prefix.
  const Bytes in_cap{0x3f, 0xff, 0xff, 0xff, 0x02, 0x03};
  size_t offset = 0;
  Frame frame;
  EXPECT_EQ(DecodeFrame(in_cap, offset, frame, nullptr),
            FrameParse::kNeedMore);

  // Above the cap: unrecoverable, drop the peer.
  const Bytes over_cap{0x40, 0x00, 0x00, 0x01, 0x02, 0x03};
  offset = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(over_cap, offset, frame, &error),
            FrameParse::kMalformed);
  EXPECT_FALSE(error.empty());
}

TEST(WireFuzzTest, RawBytesThroughEveryTypedDecoder) {
  // Deterministic pseudo-random buffers straight into the typed decoders,
  // bypassing the framer's screening (the fuzz_wire direct path).
  uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint8_t>(state >> 56);
  };
  for (const size_t len : {0, 1, 3, 7, 16, 64, 1024}) {
    Bytes buf(len);
    for (auto& b : buf) b = next();
    (void)SetupRequest::Decode(buf);
    (void)SetupResponse::Decode(buf);
    (void)SearchBatchRequest::Decode(buf);
    (void)SearchResult::Decode(buf);
    (void)SearchDone::Decode(buf);
    (void)UpdateRequest::Decode(buf);
    (void)UpdateResponse::Decode(buf);
    (void)StatsResponse::Decode(buf);
    (void)ErrorResponse::Decode(buf);
    (void)SetupStoreRequest::Decode(buf);
    (void)SearchKeywordRequest::Decode(buf);
    (void)SearchPayloadResult::Decode(buf);
  }
}

TEST(WalFuzzTest, TruncationSweepStopsAtRecordBoundaries) {
  UpdateRequest update;
  update.entries.emplace_back(MakeLabel(0x77), Bytes(12, 0x55));
  Bytes log;
  std::vector<size_t> boundaries;
  for (uint64_t epoch : {3ull, 3ull, 4ull}) {
    StorePersistence::EncodeWalRecord(epoch, update.Encode(), log);
    boundaries.push_back(log.size());
  }

  for (size_t cut = 0; cut <= log.size(); ++cut) {
    const Bytes prefix(log.begin(), log.begin() + cut);
    std::vector<StorePersistence::WalRecord> records;
    const size_t good_end = StorePersistence::DecodeWalRecords(prefix,
                                                               records);
    ASSERT_LE(good_end, prefix.size());
    // good_end is always the largest record boundary <= cut, and the
    // record count matches it: the durable prefix survives, the torn
    // tail is cut.
    size_t expect_records = 0;
    size_t expect_end = 0;
    for (const size_t b : boundaries) {
      if (b <= cut) {
        ++expect_records;
        expect_end = b;
      }
    }
    EXPECT_EQ(good_end, expect_end) << "cut=" << cut;
    ASSERT_EQ(records.size(), expect_records) << "cut=" << cut;
    for (const auto& record : records) {
      EXPECT_TRUE(UpdateRequest::Decode(record.payload).ok());
    }
  }
}

TEST(WalFuzzTest, ByteFlipSweepNeverCrashesAndNeverForgesARecord) {
  UpdateRequest update;
  update.entries.emplace_back(MakeLabel(0x77), Bytes(12, 0x55));
  Bytes log;
  StorePersistence::EncodeWalRecord(3, update.Encode(), log);
  const size_t record_len = log.size();
  StorePersistence::EncodeWalRecord(4, update.Encode(), log);

  for (size_t at = 0; at < record_len; ++at) {
    Bytes mutated = log;
    mutated[at] ^= 0x01;
    std::vector<StorePersistence::WalRecord> records;
    const size_t good_end = StorePersistence::DecodeWalRecords(mutated,
                                                               records);
    ASSERT_LE(good_end, mutated.size());
    // Any flip inside the first record either kills it via CRC/length
    // (log truncates to zero records — the second never parses because
    // replay stops at the first bad one) or resizes it such that nothing
    // downstream aligns. It must never still count two clean records.
    EXPECT_LT(records.size(), 2u) << "flip at " << at;
  }
}

TEST(StoreImageFuzzTest, TruncationAndFlipSweepRejectsCleanly) {
  const ShardedEmm emm = MakeStore();
  const Bytes image = emm.SerializeV2(/*kind=*/0, /*epoch=*/7);
  ASSERT_TRUE(ShardedEmm::IsV2Image(image));
  const size_t entries = emm.EntryCount();

  for (size_t cut = 0; cut < image.size();
       cut += (cut < 128 ? 1 : 97)) {  // dense over the header, strided after
    const ConstByteSpan prefix(image.data(), cut);
    for (const bool verify : {true, false}) {
      auto loaded = ShardedEmm::LoadV2(prefix, 1, verify);
      EXPECT_FALSE(loaded.ok()) << "cut=" << cut << " verify=" << verify;
    }
  }

  for (size_t at = 0; at < image.size();
       at += (at < 128 ? 1 : 97)) {
    Bytes mutated = image;
    mutated[at] ^= 0xff;
    // verify_checksums=true must catch every flip the structural checks
    // miss; without verification a flip inside entry *data* may load (and
    // that is the contract: deferred-CRC mode trusts content, not
    // structure) but probing the store must stay in bounds.
    auto strict = ShardedEmm::LoadV2(mutated, 1, true);
    if (strict.ok()) {
      // Flips in dead bytes (alignment padding) can legitimately pass.
      EXPECT_EQ(strict->EntryCount(), entries);
    }
    auto lax = ShardedEmm::LoadV2(mutated, 1, false);
    if (lax.ok()) {
      sse::KeywordKeys keys;
      keys.label_key.assign(16, 0x5A);
      keys.value_key.assign(16, 0xA5);
      (void)lax->Search(keys);
    }
  }
}

TEST(ShardBlobFuzzTest, TruncationAndFlipSweepRejectsCleanly) {
  const Bytes blob = MakeStore().Serialize();

  for (size_t cut = 0; cut < blob.size();
       cut += (cut < 64 ? 1 : 89)) {
    const Bytes prefix(blob.begin(), blob.begin() + cut);
    EXPECT_FALSE(ShardedEmm::Deserialize(prefix, 1).ok()) << "cut=" << cut;
  }

  for (size_t at = 0; at < blob.size(); at += (at < 64 ? 1 : 89)) {
    Bytes mutated = blob;
    mutated[at] ^= 0xff;
    auto loaded = ShardedEmm::Deserialize(mutated, 1);
    if (loaded.ok()) {
      sse::KeywordKeys keys;
      keys.label_key.assign(16, 0x5A);
      keys.value_key.assign(16, 0xA5);
      (void)loaded->Search(keys);
    }
  }

  // The cross-generation mistake: a v2 image through the v1 entry point.
  EXPECT_FALSE(ShardedEmm::Deserialize(MakeStore().SerializeV2(), 1).ok());
}

}  // namespace
}  // namespace rsse::server
