#include "rsse/constant.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "cover/urc.h"
#include "crypto/prg.h"
#include "prg_backend_guard.h"
#include "rsse/leakage.h"

namespace rsse {
namespace {

Dataset SkewedDataset() {
  std::vector<Record> records;
  for (uint64_t i = 0; i < 20; ++i) records.push_back({i, 5});
  records.push_back({20, 0});
  records.push_back({21, 30});
  records.push_back({22, 31});
  return Dataset(Domain{32}, std::move(records));
}

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

class ConstantSchemeTest : public ::testing::TestWithParam<CoverTechnique> {};

TEST_P(ConstantSchemeTest, ExhaustiveCorrectnessNoFalsePositives) {
  ConstantScheme scheme(GetParam());
  Dataset data = SkewedDataset();
  ASSERT_TRUE(scheme.Build(data).ok());
  for (uint64_t lo = 0; lo < 32; lo += 3) {
    for (uint64_t hi = lo; hi < 32; hi += 2) {
      Result<QueryResult> r = scheme.Query(Range{lo, hi});
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(Sorted(r->ids), Sorted(data.IdsInRange(Range{lo, hi})))
          << "range [" << lo << "," << hi << "]";
    }
  }
}

TEST_P(ConstantSchemeTest, TokenCountLogarithmicInRangeSize) {
  ConstantScheme scheme(GetParam());
  ASSERT_TRUE(scheme.Build(SkewedDataset()).ok());
  Result<QueryResult> small = scheme.Query(Range{4, 5});
  Result<QueryResult> large = scheme.Query(Range{1, 30});
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LE(small->token_count, 2u);
  EXPECT_LE(large->token_count, 12u);  // O(log R), not O(R)=30
}

TEST_P(ConstantSchemeTest, IntersectionGuardBlocksOverlaps) {
  ConstantScheme scheme(GetParam());
  ASSERT_TRUE(scheme.Build(SkewedDataset()).ok());
  scheme.EnableIntersectionGuard();
  ASSERT_TRUE(scheme.Query(Range{0, 7}).ok());
  // Overlapping query must be refused.
  EXPECT_EQ(scheme.Query(Range{5, 10}).status().code(),
            StatusCode::kFailedPrecondition);
  // Disjoint query is fine.
  EXPECT_TRUE(scheme.Query(Range{8, 15}).ok());
}

TEST_P(ConstantSchemeTest, QueryBeforeBuildFails) {
  ConstantScheme scheme(GetParam());
  EXPECT_FALSE(scheme.Query(Range{0, 1}).ok());
}

INSTANTIATE_TEST_SUITE_P(BothTechniques, ConstantSchemeTest,
                         ::testing::Values(CoverTechnique::kBrc,
                                           CoverTechnique::kUrc));

TEST_P(ConstantSchemeTest, ParallelSearchMatchesSerial) {
  // Multi-token search shards covering nodes across worker threads; the
  // returned id multiset must not depend on the thread count.
  Dataset data = SkewedDataset();
  ConstantScheme serial(GetParam(), /*rng_seed=*/5);
  ConstantScheme parallel(GetParam(), /*rng_seed=*/5);
  ASSERT_TRUE(serial.Build(data).ok());
  ASSERT_TRUE(parallel.Build(data).ok());
  serial.SetSearchThreads(1);
  parallel.SetSearchThreads(4);
  for (uint64_t lo = 0; lo < 32; lo += 5) {
    for (uint64_t hi = lo; hi < 32; hi += 4) {
      Result<QueryResult> a = serial.Query(Range{lo, hi});
      Result<QueryResult> b = parallel.Query(Range{lo, hi});
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(Sorted(a->ids), Sorted(b->ids))
          << "range [" << lo << "," << hi << "]";
    }
  }
}

TEST_P(ConstantSchemeTest, AesPrgBackendEndToEnd) {
  // Build + query under the AES-NI GGM backend: exact results, no false
  // positives — the backend only changes the PRG, not the protocol.
  crypto::PrgBackendGuard guard(crypto::GgmPrg::Backend::kAes);
  ConstantScheme scheme(GetParam());
  Dataset data = SkewedDataset();
  ASSERT_TRUE(scheme.Build(data).ok());
  for (uint64_t lo = 0; lo < 32; lo += 4) {
    for (uint64_t hi = lo; hi < 32; hi += 3) {
      Result<QueryResult> r = scheme.Query(Range{lo, hi});
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(Sorted(r->ids), Sorted(data.IdsInRange(Range{lo, hi})))
          << "range [" << lo << "," << hi << "]";
    }
  }
}

TEST(ConstantSchemeTest, UrcDelegationLevelsPositionIndependent) {
  ConstantScheme scheme(CoverTechnique::kUrc);
  ASSERT_TRUE(scheme.Build(SkewedDataset()).ok());
  const uint64_t size = 6;
  std::vector<int> reference;
  for (uint64_t lo = 0; lo + size <= 32; lo += 2) {
    std::vector<int> levels;
    for (const auto& t : scheme.Delegate(Range{lo, lo + size - 1})) {
      levels.push_back(t.level);
    }
    std::sort(levels.begin(), levels.end());
    if (reference.empty()) {
      reference = levels;
    } else {
      EXPECT_EQ(levels, reference) << "at lo=" << lo;
    }
  }
  EXPECT_EQ(reference, UrcLevelProfile(size, 5));
}

TEST(ConstantSchemeTest, BrcDelegationLevelsLeakPosition) {
  // The counterpart: BRC covers of equal-size ranges can differ in shape —
  // exactly the leakage URC removes.
  ConstantScheme scheme(CoverTechnique::kBrc);
  ASSERT_TRUE(scheme.Build(SkewedDataset()).ok());
  auto profile = [&](uint64_t lo, uint64_t hi) {
    std::vector<int> levels;
    for (const auto& t : scheme.Delegate(Range{lo, hi})) {
      levels.push_back(t.level);
    }
    std::sort(levels.begin(), levels.end());
    return levels;
  };
  // [2,7] -> {1,2}; [1,6] -> {0,0,1,1} (paper's Figure 1 discussion).
  EXPECT_NE(profile(2, 7), profile(1, 6));
}

TEST(ConstantSchemeTest, RepeatedQueriesExposeSearchPattern) {
  // σ(W): re-asking the same range re-delegates the same GGM seeds (the
  // trapdoor permutation hides order, not identity) — the paper's search
  // pattern leakage, observable by the tracker.
  ConstantScheme scheme(CoverTechnique::kBrc);
  ASSERT_TRUE(scheme.Build(SkewedDataset()).ok());
  leakage::SearchPatternTracker tracker;
  auto observe = [&](size_t query_index, const Range& r) {
    std::vector<Bytes> material;
    for (const auto& t : scheme.Delegate(r)) material.push_back(t.seed);
    tracker.Observe(query_index, material);
  };
  observe(0, Range{4, 11});
  observe(1, Range{20, 27});  // disjoint, different subtrees
  observe(2, Range{4, 11});   // repeat of query 0
  std::vector<std::pair<size_t, size_t>> pairs = tracker.MatchingPairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], std::make_pair(size_t{0}, size_t{2}));
}

TEST(ConstantSchemeTest, IndexSizeLinearInN) {
  // O(n) storage: doubling n roughly doubles the index size.
  ConstantScheme small_scheme(CoverTechnique::kBrc);
  ConstantScheme big_scheme(CoverTechnique::kBrc);
  std::vector<Record> small_records;
  std::vector<Record> big_records;
  for (uint64_t i = 0; i < 100; ++i) small_records.push_back({i, i % 64});
  for (uint64_t i = 0; i < 200; ++i) big_records.push_back({i, i % 64});
  ASSERT_TRUE(small_scheme.Build(Dataset(Domain{64}, small_records)).ok());
  ASSERT_TRUE(big_scheme.Build(Dataset(Domain{64}, big_records)).ok());
  double ratio = static_cast<double>(big_scheme.IndexSizeBytes()) /
                 static_cast<double>(small_scheme.IndexSizeBytes());
  EXPECT_NEAR(ratio, 2.0, 0.3);
}

}  // namespace
}  // namespace rsse
