#include "rsse/log_src.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "rsse/scheme.h"

namespace rsse {
namespace {

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(LogSrcTest, NoFalseNegativesExhaustive) {
  Rng rng(3);
  Dataset data = GenerateUniform(60, 64, rng);
  LogarithmicSrcScheme scheme;
  ASSERT_TRUE(scheme.Build(data).ok());
  for (uint64_t lo = 0; lo < 64; lo += 3) {
    for (uint64_t hi = lo; hi < 64; hi += 4) {
      Result<QueryResult> r = scheme.Query(Range{lo, hi});
      ASSERT_TRUE(r.ok());
      std::vector<uint64_t> truth = data.IdsInRange(Range{lo, hi});
      std::vector<uint64_t> got = Sorted(r->ids);
      for (uint64_t id : truth) {
        EXPECT_TRUE(std::binary_search(got.begin(), got.end(), id))
            << "missing id " << id << " for [" << lo << "," << hi << "]";
      }
    }
  }
}

TEST(LogSrcTest, FalsePositivesConfinedToCoverNode) {
  Rng rng(3);
  Dataset data = GenerateUniform(60, 64, rng);
  LogarithmicSrcScheme scheme;
  ASSERT_TRUE(scheme.Build(data).ok());
  for (uint64_t lo = 0; lo < 64; lo += 5) {
    for (uint64_t hi = lo; hi < 64; hi += 6) {
      Range r{lo, hi};
      Result<QueryResult> q = scheme.Query(r);
      ASSERT_TRUE(q.ok());
      Range node = scheme.CoverNode(r).ToRange();
      std::vector<uint64_t> node_ids = Sorted(data.IdsInRange(node));
      for (uint64_t id : q->ids) {
        EXPECT_TRUE(std::binary_search(node_ids.begin(), node_ids.end(), id))
            << "id " << id << " outside the SRC node for [" << lo << "," << hi
            << "]";
      }
    }
  }
}

TEST(LogSrcTest, OwnerFilteringRestoresExactResult) {
  Rng rng(3);
  Dataset data = GenerateUniform(80, 128, rng);
  LogarithmicSrcScheme scheme;
  ASSERT_TRUE(scheme.Build(data).ok());
  Range r{17, 63};
  Result<QueryResult> q = scheme.Query(r);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(Sorted(FilterIdsToRange(data, q->ids, r)),
            Sorted(data.IdsInRange(r)));
}

TEST(LogSrcTest, ConstantQuerySize) {
  Rng rng(3);
  Dataset data = GenerateUniform(60, 1024, rng);
  LogarithmicSrcScheme scheme;
  ASSERT_TRUE(scheme.Build(data).ok());
  for (uint64_t size : {1u, 10u, 100u, 1000u}) {
    Result<QueryResult> q = scheme.Query(Range{0, size - 1});
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(q->token_count, 1u);
    EXPECT_EQ(q->token_bytes, 32u);
  }
}

TEST(LogSrcTest, PaddingHidesListShapesButKeepsAnswers) {
  Rng rng(3);
  Dataset data = GenerateUniform(50, 64, rng);
  LogarithmicSrcScheme plain(/*rng_seed=*/1, /*pad_quantum=*/0);
  LogarithmicSrcScheme padded(/*rng_seed=*/1, /*pad_quantum=*/16);
  ASSERT_TRUE(plain.Build(data).ok());
  ASSERT_TRUE(padded.Build(data).ok());
  EXPECT_GT(padded.IndexSizeBytes(), plain.IndexSizeBytes());
  for (uint64_t lo = 0; lo < 64; lo += 9) {
    Range r{lo, std::min<uint64_t>(63, lo + 12)};
    Result<QueryResult> a = plain.Query(r);
    Result<QueryResult> b = padded.Query(r);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(Sorted(FilterIdsToRange(data, a->ids, r)),
              Sorted(FilterIdsToRange(data, b->ids, r)));
  }
}

TEST(LogSrcTest, SkewCausesMassiveFalsePositives) {
  // The paper's Section 6.2 worst case: one matching tuple, everything else
  // piled on a single adjacent value inside the same TDAG node.
  Rng rng(4);
  Dataset data =
      GenerateSingleValueWithOutliers(200, 8, /*hot_value=*/2, /*outliers=*/0,
                                      rng);
  // Add one tuple inside the queried range [3,5].
  data.mutable_records().push_back({999, 4});
  LogarithmicSrcScheme scheme;
  ASSERT_TRUE(scheme.Build(data).ok());
  Result<QueryResult> q = scheme.Query(Range{3, 5});
  ASSERT_TRUE(q.ok());
  // SRC covers [3,5] with N2,5, which contains value 2 => whole dataset.
  EXPECT_GT(q->ids.size(), 100u);
  EXPECT_EQ(FilterIdsToRange(data, q->ids, Range{3, 5}),
            std::vector<uint64_t>{999});
}

TEST(LogSrcTest, UniformFalsePositiveRateBounded) {
  // Lemma 1 consequence: on uniform data the returned superset is at most
  // ~4x the range mass (plus sampling noise).
  Rng rng(5);
  Dataset data = GenerateUniform(2000, 1 << 10, rng);
  LogarithmicSrcScheme scheme;
  ASSERT_TRUE(scheme.Build(data).ok());
  Rng qrng(6);
  for (int i = 0; i < 40; ++i) {
    uint64_t lo = qrng.Uniform(0, 900);
    Range r{lo, lo + 63};
    Result<QueryResult> q = scheme.Query(r);
    ASSERT_TRUE(q.ok());
    Range node = scheme.CoverNode(r).ToRange();
    EXPECT_LE(node.Size(), 4 * r.Size());
  }
}

}  // namespace
}  // namespace rsse
