// Remote conformance harness: every scheme of the family — including the
// PB baseline and the Naive-PerValue ablation — answers range queries
// through a RemoteBackend against a real loopback rsse_serverd with id
// sets identical to its in-process LocalBackend. This is the acceptance
// contract of the split-party API: ExportServerSetup ships the server
// half (index blobs, Bloom gates, PB filter tree) over SetupStore frames,
// and QueryVia runs the identical protocol — rounds, token counts,
// SRC-i's dependent second round, server-side gate skips — over the wire.

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "pb/pb_scheme.h"
#include "rsse/factory.h"
#include "rsse/log_src.h"
#include "rsse/log_src_i.h"
#include "rsse/scheme.h"
#include "server/client.h"
#include "server/remote_backend.h"
#include "server/server.h"
#include "sse/emm_codec.h"
#include "sse/keyword_keys.h"

namespace rsse {
namespace {

class LoopbackServer {
 public:
  explicit LoopbackServer(server::ServerOptions options = {})
      : server_(options) {
    Status s = server_.Listen();
    EXPECT_TRUE(s.ok()) << s.ToString();
    thread_ = std::thread([this] {
      Status serve = server_.Serve();
      EXPECT_TRUE(serve.ok()) << serve.ToString();
    });
  }

  ~LoopbackServer() {
    server_.Shutdown();
    thread_.join();
  }

  uint16_t port() const { return server_.port(); }

 private:
  server::EmmServer server_;
  std::thread thread_;
};

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::unique_ptr<RangeScheme> Make(SchemeId id) {
  if (id == SchemeId::kPb) return pb::MakePbScheme(/*rng_seed=*/11);
  return MakeScheme(id, /*rng_seed=*/11);
}

std::vector<SchemeId> AllServableSchemeIds() {
  std::vector<SchemeId> ids = AllSchemeIds();
  ids.push_back(SchemeId::kPb);
  ids.push_back(SchemeId::kNaivePerValue);
  return ids;
}

std::string SchemeIdName(const ::testing::TestParamInfo<SchemeId>& info) {
  std::string name = SchemeName(info.param);
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class RemoteConformanceTest : public ::testing::TestWithParam<SchemeId> {};

TEST_P(RemoteConformanceTest, RemoteIdsMatchLocalForAllRanges) {
  Rng rng(17);
  Dataset data = GenerateUspsLike(/*n=*/60, /*domain_size=*/32, rng);
  std::unique_ptr<RangeScheme> scheme = Make(GetParam());
  ASSERT_NE(scheme, nullptr);
  ASSERT_TRUE(scheme->Build(data).ok());

  Result<ServerSetup> setup = scheme->ExportServerSetup();
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();

  LoopbackServer loopback;
  server::EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());
  Status installed = server::InstallServerSetup(client, *setup);
  ASSERT_TRUE(installed.ok()) << installed.ToString();
  server::RemoteBackend remote(client);

  for (uint64_t lo = 0; lo < 32; lo += 3) {
    for (uint64_t hi = lo; hi < 32; hi += 4) {
      const Range r{lo, hi};
      Result<QueryResult> local = scheme->Query(r);
      ASSERT_TRUE(local.ok()) << local.status().ToString();
      Result<QueryResult> wire = scheme->QueryVia(remote, r);
      ASSERT_TRUE(wire.ok()) << wire.status().ToString();
      EXPECT_EQ(Sorted(wire->ids), Sorted(local->ids))
          << SchemeName(GetParam()) << " range [" << lo << "," << hi << "]";
      EXPECT_EQ(wire->token_count, local->token_count);
      EXPECT_EQ(wire->rounds, local->rounds);
    }
  }
}

TEST_P(RemoteConformanceTest, RemoteRefinedResultsExact) {
  // End-to-end exactness through the wire: after owner-side refinement the
  // remote protocol answers every range exactly, also on a skew-free
  // dataset with a bigger domain (multi-node covers, deeper GGM trees).
  Rng rng(23);
  Dataset data = GenerateUniform(/*n=*/80, /*domain_size=*/64, rng);
  std::unique_ptr<RangeScheme> scheme = Make(GetParam());
  ASSERT_TRUE(scheme->Build(data).ok());
  Result<ServerSetup> setup = scheme->ExportServerSetup();
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();

  LoopbackServer loopback;
  server::EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());
  ASSERT_TRUE(server::InstallServerSetup(client, *setup).ok());
  server::RemoteBackend remote(client);

  for (uint64_t lo = 0; lo < 64; lo += 7) {
    for (uint64_t hi = lo; hi < 64; hi += 9) {
      const Range r{lo, hi};
      Result<QueryResult> wire = scheme->QueryVia(remote, r);
      ASSERT_TRUE(wire.ok()) << wire.status().ToString();
      EXPECT_EQ(Sorted(FilterIdsToRange(data, wire->ids, r)),
                Sorted(data.IdsInRange(r)))
          << SchemeName(GetParam()) << " range [" << lo << "," << hi << "]";
    }
  }
}

TEST_P(RemoteConformanceTest, EmptyDatasetServesRemotely) {
  Dataset data(Domain{16}, {});
  std::unique_ptr<RangeScheme> scheme = Make(GetParam());
  ASSERT_TRUE(scheme->Build(data).ok());
  Result<ServerSetup> setup = scheme->ExportServerSetup();
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();

  LoopbackServer loopback;
  server::EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());
  ASSERT_TRUE(server::InstallServerSetup(client, *setup).ok());
  server::RemoteBackend remote(client);

  Result<QueryResult> wire = scheme->QueryVia(remote, Range{0, 15});
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_TRUE(FilterIdsToRange(data, wire->ids, Range{0, 15}).empty());
}

INSTANTIATE_TEST_SUITE_P(EveryScheme, RemoteConformanceTest,
                         ::testing::ValuesIn(AllServableSchemeIds()),
                         SchemeIdName);

TEST(RemoteSrcITest, SecondRoundRunsOverTheWire) {
  // A skewed dataset and a fat range force SRC-i's interactive
  // refinement: round 2 must hit the secondary store (I2) remotely.
  Rng rng(29);
  Dataset data = GenerateUspsLike(/*n=*/100, /*domain_size=*/64, rng);
  LogarithmicSrcIScheme scheme(/*rng_seed=*/5);
  ASSERT_TRUE(scheme.Build(data).ok());
  Result<ServerSetup> setup = scheme.ExportServerSetup();
  ASSERT_TRUE(setup.ok());
  ASSERT_EQ(setup->stores.size(), 2u) << "SRC-i ships I1 and I2";

  LoopbackServer loopback;
  server::EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());
  ASSERT_TRUE(server::InstallServerSetup(client, *setup).ok());
  server::RemoteBackend remote(client);

  const Range r{4, 59};
  Result<QueryResult> wire = scheme.QueryVia(remote, r);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(wire->rounds, 2);
  EXPECT_EQ(wire->token_count, 2u);
  EXPECT_EQ(Sorted(FilterIdsToRange(data, wire->ids, r)),
            Sorted(data.IdsInRange(r)));
}

TEST(RemoteGateTest, BloomGateShipsWithSetupAndSkipsServerSide) {
  // Padded SRC with a Bloom gate: the gate blob rides the SetupStore
  // frame, and the remote server reports dummy decryptions skipped —
  // with results identical to the ungated local protocol.
  Rng rng(31);
  Dataset data = GenerateUspsLike(/*n=*/120, /*domain_size=*/32, rng);
  LogarithmicSrcScheme scheme(/*rng_seed=*/7, /*pad_quantum=*/16);
  scheme.EnableBloomGate(0.01);
  ASSERT_TRUE(scheme.Build(data).ok());
  Result<ServerSetup> setup = scheme.ExportServerSetup();
  ASSERT_TRUE(setup.ok());
  ASSERT_FALSE(setup->stores[0].gate_blob.empty());

  LoopbackServer loopback;
  server::EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());
  ASSERT_TRUE(server::InstallServerSetup(client, *setup).ok());
  server::RemoteBackend remote(client);

  size_t total_skipped = 0;
  for (uint64_t lo = 0; lo < 32; lo += 5) {
    const Range r{lo, std::min<uint64_t>(lo + 6, 31)};
    Result<QueryResult> local = scheme.Query(r);
    ASSERT_TRUE(local.ok());
    Result<QueryResult> wire = scheme.QueryVia(remote, r);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    EXPECT_EQ(Sorted(wire->ids), Sorted(local->ids));
    EXPECT_EQ(wire->skipped_decrypts, local->skipped_decrypts);
    total_skipped += wire->skipped_decrypts;
  }
  EXPECT_GT(total_skipped, 0u) << "padding dummies must be gated remotely";
}

TEST(RemoteGateTest, SrcITwoGatesShipAndSkip) {
  Rng rng(37);
  Dataset data = GenerateUspsLike(/*n=*/120, /*domain_size=*/32, rng);
  LogarithmicSrcIScheme scheme(/*rng_seed=*/7, /*pad_quantum=*/16);
  scheme.EnableBloomGate(0.01);
  ASSERT_TRUE(scheme.Build(data).ok());
  Result<ServerSetup> setup = scheme.ExportServerSetup();
  ASSERT_TRUE(setup.ok());
  ASSERT_EQ(setup->stores.size(), 2u);
  EXPECT_FALSE(setup->stores[0].gate_blob.empty());
  EXPECT_FALSE(setup->stores[1].gate_blob.empty());

  LoopbackServer loopback;
  server::EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());
  ASSERT_TRUE(server::InstallServerSetup(client, *setup).ok());
  server::RemoteBackend remote(client);

  size_t total_skipped = 0;
  for (uint64_t lo = 0; lo < 32; lo += 6) {
    const Range r{lo, std::min<uint64_t>(lo + 9, 31)};
    Result<QueryResult> local = scheme.Query(r);
    ASSERT_TRUE(local.ok());
    Result<QueryResult> wire = scheme.QueryVia(remote, r);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    EXPECT_EQ(Sorted(wire->ids), Sorted(local->ids));
    total_skipped += wire->skipped_decrypts;
  }
  EXPECT_GT(total_skipped, 0u);
}

TEST(RemoteGateTest, UpdateDropsStaleGateSoNewEntriesStayVisible) {
  // A shipped gate knows only the setup-time labels; after an Update the
  // server must not let it skip-decrypt (drop) the new entries. The
  // server drops the gate on Update, so a keyword search for freshly
  // inserted entries returns them all.
  Rng rng(43);
  Dataset data = GenerateUspsLike(/*n=*/80, /*domain_size=*/32, rng);
  LogarithmicSrcScheme scheme(/*rng_seed=*/7, /*pad_quantum=*/8);
  scheme.EnableBloomGate(0.01);
  ASSERT_TRUE(scheme.Build(data).ok());
  Result<ServerSetup> setup = scheme.ExportServerSetup();
  ASSERT_TRUE(setup.ok());
  ASSERT_FALSE(setup->stores[0].gate_blob.empty());

  LoopbackServer loopback;
  server::EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());
  ASSERT_TRUE(server::InstallServerSetup(client, *setup).ok());

  // Owner-side: encrypt one fresh keyword's postings under an unrelated
  // key and ship the raw codec entries through Update.
  sse::PrfKeyDeriver deriver(Bytes(kLabelBytes, 0x66));
  std::vector<std::pair<Label, Bytes>> entries;
  sse::EmmBuildScratch scratch;
  std::vector<Bytes> payloads = {sse::EncodeIdPayload(901),
                                 sse::EncodeIdPayload(902)};
  ASSERT_TRUE(sse::EncryptKeywordEntries(
                  ToBytes("fresh"), payloads, deriver, /*pad_quantum=*/0,
                  scratch,
                  [&entries](const Label& label, size_t len) {
                    entries.emplace_back(label, Bytes(len));
                    return ByteSpan(entries.back().second.data(), len);
                  })
                  .ok());
  ASSERT_TRUE(client.Update(entries).ok());

  // The updated keyword resolves remotely despite the (now dropped)
  // gate never having seen its labels.
  server::SearchKeywordRequest req;
  req.store_id = kPrimaryStore;
  server::SearchKeywordRequest::Query query;
  query.query_id = 1;
  const sse::KeywordKeys token = deriver.Derive(ToBytes("fresh"));
  server::WireKeywordToken wt;
  wt.kind = 0;
  wt.a = token.label_key;
  wt.b = token.value_key;
  query.tokens.push_back(wt);
  req.queries.push_back(query);
  auto outcome = client.SearchKeyword(req);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->payloads[1].size(), 2u);
}

TEST(RemoteChunkingTest, TinyResultFramesReassembleExactly) {
  // A one-id-per-frame server must stream many chunks; the client
  // reassembles them into exactly the unchunked result.
  Rng rng(41);
  Dataset data = GenerateUniform(/*n=*/300, /*domain_size=*/64, rng);
  std::unique_ptr<RangeScheme> scheme = Make(SchemeId::kLogarithmicBrc);
  ASSERT_TRUE(scheme->Build(data).ok());
  Result<ServerSetup> setup = scheme->ExportServerSetup();
  ASSERT_TRUE(setup.ok());

  server::ServerOptions options;
  options.max_ids_per_result_frame = 1;
  options.max_payloads_per_result_frame = 1;
  LoopbackServer loopback(options);
  server::EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());
  ASSERT_TRUE(server::InstallServerSetup(client, *setup).ok());
  server::RemoteBackend remote(client);

  const Range r{0, 63};
  Result<QueryResult> local = scheme->Query(r);
  ASSERT_TRUE(local.ok());
  ASSERT_GT(local->ids.size(), 100u);
  Result<QueryResult> wire = scheme->QueryVia(remote, r);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(Sorted(wire->ids), Sorted(local->ids));
}

TEST(RemoteLimitsTest, StoreSlotIdBeyondLimitIsRejected) {
  // The store table must not grow without bound: slot ids past the
  // configured cap are refused before any blob is deserialized.
  LoopbackServer loopback;
  server::EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());

  Rng rng(3);
  Dataset data = GenerateUniform(/*n=*/10, /*domain_size=*/8, rng);
  std::unique_ptr<RangeScheme> scheme = Make(SchemeId::kLogarithmicBrc);
  ASSERT_TRUE(scheme->Build(data).ok());
  Result<ServerSetup> setup = scheme->ExportServerSetup();
  ASSERT_TRUE(setup.ok());

  server::SetupStoreRequest req;
  req.store_id = 99;
  req.kind = static_cast<uint8_t>(StoreKind::kEmm);
  req.index_blob = setup->stores[0].index_blob;
  auto resp = client.SetupStore(req);
  ASSERT_FALSE(resp.ok());
  EXPECT_NE(resp.status().message().find("slot limit"), std::string::npos);
}

TEST(RemoteLimitsTest, OversizedKeywordBatchIsRejected) {
  LoopbackServer loopback([] {
    server::ServerOptions options;
    options.max_keyword_tokens = 4;
    return options;
  }());
  server::EmmClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", loopback.port()).ok());

  // Host a tiny store so the batch reaches the resolve path.
  std::vector<std::pair<Label, Bytes>> entries;
  Label label;
  label.fill(0x42);
  entries.emplace_back(label, Bytes(32, 0x01));
  ASSERT_TRUE(client.Update(entries).ok());

  server::SearchKeywordRequest req;
  req.store_id = 0;
  server::SearchKeywordRequest::Query query;
  query.query_id = 1;
  for (int i = 0; i < 5; ++i) {
    server::WireKeywordToken t;
    t.kind = 0;
    t.a = Bytes(16, static_cast<uint8_t>(i));
    t.b = Bytes(16, 0x7);
    query.tokens.push_back(t);
  }
  req.queries.push_back(query);
  auto outcome = client.SearchKeyword(req);
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.status().message().find("exceeds the server's limit"),
            std::string::npos);
}

}  // namespace
}  // namespace rsse
