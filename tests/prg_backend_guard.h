#ifndef RSSE_TESTS_PRG_BACKEND_GUARD_H_
#define RSSE_TESTS_PRG_BACKEND_GUARD_H_

#include "crypto/prg.h"

namespace rsse::crypto {

/// Test helper: switches the process-global GGM PRG backend and restores
/// the previous one on scope exit, so a failing assertion inside a
/// backend-specific test cannot leak the AES backend into later tests.
class PrgBackendGuard {
 public:
  explicit PrgBackendGuard(GgmPrg::Backend b) : old_(GgmPrg::backend()) {
    GgmPrg::SetBackend(b);
  }
  ~PrgBackendGuard() { GgmPrg::SetBackend(old_); }

  PrgBackendGuard(const PrgBackendGuard&) = delete;
  PrgBackendGuard& operator=(const PrgBackendGuard&) = delete;

 private:
  GgmPrg::Backend old_;
};

}  // namespace rsse::crypto

#endif  // RSSE_TESTS_PRG_BACKEND_GUARD_H_
