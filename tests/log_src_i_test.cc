#include "rsse/log_src_i.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "rsse/log_src.h"
#include "rsse/scheme.h"

namespace rsse {
namespace {

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(LogSrcITest, NoFalseNegativesExhaustive) {
  Rng rng(3);
  Dataset data = GenerateUspsLike(80, 64, rng);
  LogarithmicSrcIScheme scheme;
  ASSERT_TRUE(scheme.Build(data).ok());
  for (uint64_t lo = 0; lo < 64; lo += 3) {
    for (uint64_t hi = lo; hi < 64; hi += 4) {
      Result<QueryResult> r = scheme.Query(Range{lo, hi});
      ASSERT_TRUE(r.ok());
      std::vector<uint64_t> truth = data.IdsInRange(Range{lo, hi});
      std::vector<uint64_t> got = Sorted(r->ids);
      for (uint64_t id : truth) {
        EXPECT_TRUE(std::binary_search(got.begin(), got.end(), id))
            << "missing id " << id << " for [" << lo << "," << hi << "]";
      }
    }
  }
}

TEST(LogSrcITest, OwnerFilteringRestoresExactResult) {
  Rng rng(7);
  Dataset data = GenerateUspsLike(150, 256, rng);
  LogarithmicSrcIScheme scheme;
  ASSERT_TRUE(scheme.Build(data).ok());
  for (uint64_t lo = 0; lo < 256; lo += 37) {
    Range r{lo, lo + 19};
    Result<QueryResult> q = scheme.Query(r);
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(Sorted(FilterIdsToRange(data, q->ids, r)),
              Sorted(data.IdsInRange(r)));
  }
}

TEST(LogSrcITest, TwoRoundsWhenResultsExist) {
  Rng rng(3);
  Dataset data = GenerateUniform(100, 64, rng);
  LogarithmicSrcIScheme scheme;
  ASSERT_TRUE(scheme.Build(data).ok());
  Result<QueryResult> q = scheme.Query(Range{0, 63});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->rounds, 2);
  EXPECT_EQ(q->token_count, 2u);
  EXPECT_EQ(q->token_bytes, 64u);
}

TEST(LogSrcITest, OneRoundWhenRangeEmpty) {
  // Every tuple at value 0; query range far away has no distinct value.
  Dataset data(Domain{64}, {{0, 0}, {1, 0}, {2, 0}});
  LogarithmicSrcIScheme scheme;
  ASSERT_TRUE(scheme.Build(data).ok());
  Result<QueryResult> q = scheme.Query(Range{40, 50});
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->ids.empty());
  EXPECT_EQ(q->rounds, 1);
  EXPECT_EQ(q->token_count, 1u);
}

TEST(LogSrcITest, FalsePositivesBoundedByRangePlusResult) {
  // The headline property (Table 1): false positives O(R + r) even under
  // skew. Both SRC covers are within 4x (Lemma 1), so the returned ids are
  // at most ~4(r + distinct-values-in-4R) ≈ 4r + 4R.
  Rng rng(9);
  Dataset data = GenerateUspsLike(400, 512, rng);
  LogarithmicSrcIScheme scheme;
  ASSERT_TRUE(scheme.Build(data).ok());
  for (uint64_t lo = 0; lo < 512; lo += 61) {
    Range r{lo, std::min<uint64_t>(511, lo + 31)};
    Result<QueryResult> q = scheme.Query(r);
    ASSERT_TRUE(q.ok());
    size_t truth = data.IdsInRange(r).size();
    EXPECT_LE(q->ids.size(), 4 * (truth + r.Size()) + 4)
        << "range [" << r.lo << "," << r.hi << "]";
  }
}

TEST(LogSrcITest, BeatsLogSrcUnderHeavySkew) {
  // The paper's Figure 4 scenario: most of the dataset on one value just
  // left of the query; SRC returns nearly everything, SRC-i only O(R + r).
  Rng rng(4);
  Dataset data = GenerateSingleValueWithOutliers(300, 8, /*hot_value=*/2,
                                                 /*outliers=*/0, rng);
  data.mutable_records().push_back({999, 4});
  LogarithmicSrcScheme src;
  LogarithmicSrcIScheme srci;
  ASSERT_TRUE(src.Build(data).ok());
  ASSERT_TRUE(srci.Build(data).ok());
  Result<QueryResult> src_q = src.Query(Range{3, 5});
  Result<QueryResult> srci_q = srci.Query(Range{3, 5});
  ASSERT_TRUE(src_q.ok());
  ASSERT_TRUE(srci_q.ok());
  EXPECT_GT(src_q->ids.size(), 200u);   // blowup
  EXPECT_LT(srci_q->ids.size(), 20u);   // tamed
}

TEST(LogSrcITest, AuxiliaryIndexSmallUnderSkew) {
  // I1 stores one document per *distinct* value: under USPS-like skew it is
  // a small fraction of the total (Table 2 observation).
  Rng rng(5);
  Dataset skewed = GenerateUspsLike(2000, 1 << 14, rng);
  LogarithmicSrcIScheme scheme;
  ASSERT_TRUE(scheme.Build(skewed).ok());
  EXPECT_LT(scheme.AuxiliaryIndexSizeBytes(), scheme.IndexSizeBytes() / 2);
}

TEST(LogSrcITest, EmptyDatasetBuildsAndAnswersEmpty) {
  // The shared scheme contract (scheme_correctness_test): an empty dataset
  // is a valid degenerate input — e.g. a fully-cancelled update batch.
  LogarithmicSrcIScheme scheme;
  ASSERT_TRUE(scheme.Build(Dataset(Domain{8}, {})).ok());
  auto q = scheme.Query(Range{0, 7});
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->ids.empty());
}

TEST(LogSrcITest, SingleTupleDataset) {
  Dataset data(Domain{64}, {{7, 33}});
  LogarithmicSrcIScheme scheme;
  ASSERT_TRUE(scheme.Build(data).ok());
  Result<QueryResult> q = scheme.Query(Range{30, 40});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(Sorted(q->ids), std::vector<uint64_t>{7});
}

}  // namespace
}  // namespace rsse
