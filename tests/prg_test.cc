#include "crypto/prg.h"

#include <algorithm>
#include <cstdlib>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/hmac_prf.h"
#include "prg_backend_guard.h"

namespace rsse::crypto {
namespace {

TEST(GgmPrgTest, OutputsAreLambdaBytes) {
  Bytes seed(kLambdaBytes, 0x42);
  EXPECT_EQ(GgmPrg::G0(seed).size(), kLambdaBytes);
  EXPECT_EQ(GgmPrg::G1(seed).size(), kLambdaBytes);
}

TEST(GgmPrgTest, Deterministic) {
  Bytes seed(kLambdaBytes, 0x42);
  EXPECT_EQ(GgmPrg::G0(seed), GgmPrg::G0(seed));
  EXPECT_EQ(GgmPrg::G1(seed), GgmPrg::G1(seed));
}

TEST(GgmPrgTest, HalvesDiffer) {
  Bytes seed(kLambdaBytes, 0x42);
  EXPECT_NE(GgmPrg::G0(seed), GgmPrg::G1(seed));
}

TEST(GgmPrgTest, ExpandMatchesIndividualCalls) {
  Bytes seed(kLambdaBytes, 0x13);
  auto [left, right] = GgmPrg::Expand(seed);
  EXPECT_EQ(left, GgmPrg::G0(seed));
  EXPECT_EQ(right, GgmPrg::G1(seed));
}

TEST(GgmPrgTest, GbSelectsByBit) {
  Bytes seed(kLambdaBytes, 0x13);
  EXPECT_EQ(GgmPrg::Gb(seed, 0), GgmPrg::G0(seed));
  EXPECT_EQ(GgmPrg::Gb(seed, 1), GgmPrg::G1(seed));
}

TEST(GgmPrgTest, DifferentSeedsDiverge) {
  Bytes s1(kLambdaBytes, 0x00);
  Bytes s2(kLambdaBytes, 0x01);
  EXPECT_NE(GgmPrg::G0(s1), GgmPrg::G0(s2));
  EXPECT_NE(GgmPrg::G1(s1), GgmPrg::G1(s2));
}

TEST(GgmPrgTest, SingleBitSeedChangeAvalanches) {
  Bytes s1(kLambdaBytes, 0x00);
  Bytes s2 = s1;
  s2[0] ^= 0x01;
  Bytes o1 = GgmPrg::G0(s1);
  Bytes o2 = GgmPrg::G0(s2);
  int differing_bits = 0;
  for (size_t i = 0; i < o1.size(); ++i) {
    differing_bits += __builtin_popcount(o1[i] ^ o2[i]);
  }
  // Expect roughly half the 128 output bits to flip.
  EXPECT_GT(differing_bits, 32);
  EXPECT_LT(differing_bits, 96);
}

TEST(GgmPrgTest, ChainedExpansionIsConsistent) {
  // G_0(G_1(seed)) must be reproducible step by step — the property the
  // GGM-tree DPRF relies on.
  Bytes seed(kLambdaBytes, 0x99);
  Bytes inner = GgmPrg::G1(seed);
  Bytes direct = GgmPrg::G0(inner);
  EXPECT_EQ(direct, GgmPrg::G0(GgmPrg::G1(seed)));
}

TEST(GgmPrgTest, ExpandIntoMatchesExpand) {
  Bytes seed(kLambdaBytes, 0x5a);
  auto [left, right] = GgmPrg::Expand(seed);
  uint8_t l[kLambdaBytes];
  uint8_t r[kLambdaBytes];
  GgmPrg::ExpandInto(seed.data(), l, r);
  EXPECT_EQ(Bytes(l, l + kLambdaBytes), left);
  EXPECT_EQ(Bytes(r, r + kLambdaBytes), right);
}

TEST(GgmPrgTest, ExpandIntoSupportsAliasedOutputs) {
  // The in-place subtree walk overwrites the parent seed with a child.
  Bytes seed(kLambdaBytes, 0x5a);
  Bytes expected_left = GgmPrg::G0(seed);
  uint8_t buf[2 * kLambdaBytes];
  std::copy(seed.begin(), seed.end(), buf);
  GgmPrg::ExpandInto(buf, buf, buf + kLambdaBytes);  // left aliases seed
  EXPECT_EQ(Bytes(buf, buf + kLambdaBytes), expected_left);
}

TEST(GgmPrgBackendTest, DefaultBackendIsHmac) {
  // The paper-faithful HMAC instantiation must stay the default (existing
  // outsourced indexes depend on it). The initial backend honours
  // RSSE_GGM_PRG, so only assert when the override is absent.
  if (std::getenv("RSSE_GGM_PRG") != nullptr) {
    GTEST_SKIP() << "RSSE_GGM_PRG overrides the default backend";
  }
  EXPECT_EQ(GgmPrg::backend(), GgmPrg::Backend::kHmac);
}

TEST(GgmPrgBackendTest, AesBackendSatisfiesPrgProperties) {
  PrgBackendGuard guard(GgmPrg::Backend::kAes);
  Bytes seed(kLambdaBytes, 0x42);
  EXPECT_EQ(GgmPrg::G0(seed).size(), kLambdaBytes);
  EXPECT_EQ(GgmPrg::G1(seed).size(), kLambdaBytes);
  EXPECT_EQ(GgmPrg::G0(seed), GgmPrg::G0(seed));
  EXPECT_NE(GgmPrg::G0(seed), GgmPrg::G1(seed));
  Bytes other(kLambdaBytes, 0x43);
  EXPECT_NE(GgmPrg::G0(seed), GgmPrg::G0(other));
  auto [left, right] = GgmPrg::Expand(seed);
  EXPECT_EQ(left, GgmPrg::G0(seed));
  EXPECT_EQ(right, GgmPrg::G1(seed));
}

TEST(GgmPrgBackendTest, AesBackendAvalanches) {
  PrgBackendGuard guard(GgmPrg::Backend::kAes);
  Bytes s1(kLambdaBytes, 0x00);
  Bytes s2 = s1;
  s2[0] ^= 0x01;
  Bytes o1 = GgmPrg::G0(s1);
  Bytes o2 = GgmPrg::G0(s2);
  int differing_bits = 0;
  for (size_t i = 0; i < o1.size(); ++i) {
    differing_bits += __builtin_popcount(o1[i] ^ o2[i]);
  }
  EXPECT_GT(differing_bits, 32);
  EXPECT_LT(differing_bits, 96);
}

TEST(GgmPrgBackendTest, BackendsProduceDistinctStreams) {
  // Same seed, different G: an index outsourced under one backend is
  // unreadable under the other, so the selector must never silently flip.
  Bytes seed(kLambdaBytes, 0x42);
  Bytes hmac_g0 = GgmPrg::G0(seed);
  PrgBackendGuard guard(GgmPrg::Backend::kAes);
  EXPECT_NE(GgmPrg::G0(seed), hmac_g0);
}

TEST(GgmPrgTest, ExpandFrontierMatchesPerNodeExpansion) {
  // The batched whole-frontier expansion must be bit-identical to per-node
  // ExpandInto under both backends — the golden GGM vectors and every
  // outsourced index depend on it. Sized past one AES batch chunk (256
  // parents) so the chunked path is exercised.
  for (GgmPrg::Backend backend :
       {GgmPrg::Backend::kHmac, GgmPrg::Backend::kAes}) {
    PrgBackendGuard guard(backend);
    constexpr size_t kParents = 300;
    std::vector<uint8_t> frontier(2 * kParents * kLambdaBytes, 0);
    for (size_t i = 0; i < kParents * kLambdaBytes; ++i) {
      frontier[i] = static_cast<uint8_t>(i * 37 + 11);
    }
    std::vector<uint8_t> expected(2 * kParents * kLambdaBytes, 0);
    for (size_t i = 0; i < kParents; ++i) {
      GgmPrg::ExpandInto(frontier.data() + i * kLambdaBytes,
                         expected.data() + 2 * i * kLambdaBytes,
                         expected.data() + (2 * i + 1) * kLambdaBytes);
    }
    GgmPrg::ExpandFrontierInPlace(frontier.data(), kParents);
    EXPECT_EQ(frontier, expected)
        << "backend " << (backend == GgmPrg::Backend::kAes ? "aes" : "hmac");
  }
}

TEST(GgmPrgBackendTest, SelectorRoundTrips) {
  PrgBackendGuard guard(GgmPrg::Backend::kAes);
  EXPECT_EQ(GgmPrg::backend(), GgmPrg::Backend::kAes);
  GgmPrg::SetBackend(GgmPrg::Backend::kHmac);
  EXPECT_EQ(GgmPrg::backend(), GgmPrg::Backend::kHmac);
  GgmPrg::SetBackend(GgmPrg::Backend::kAes);
  EXPECT_EQ(GgmPrg::backend(), GgmPrg::Backend::kAes);
}

}  // namespace
}  // namespace rsse::crypto
