#include "crypto/prg.h"

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "crypto/hmac_prf.h"

namespace rsse::crypto {
namespace {

TEST(GgmPrgTest, OutputsAreLambdaBytes) {
  Bytes seed(kLambdaBytes, 0x42);
  EXPECT_EQ(GgmPrg::G0(seed).size(), kLambdaBytes);
  EXPECT_EQ(GgmPrg::G1(seed).size(), kLambdaBytes);
}

TEST(GgmPrgTest, Deterministic) {
  Bytes seed(kLambdaBytes, 0x42);
  EXPECT_EQ(GgmPrg::G0(seed), GgmPrg::G0(seed));
  EXPECT_EQ(GgmPrg::G1(seed), GgmPrg::G1(seed));
}

TEST(GgmPrgTest, HalvesDiffer) {
  Bytes seed(kLambdaBytes, 0x42);
  EXPECT_NE(GgmPrg::G0(seed), GgmPrg::G1(seed));
}

TEST(GgmPrgTest, ExpandMatchesIndividualCalls) {
  Bytes seed(kLambdaBytes, 0x13);
  auto [left, right] = GgmPrg::Expand(seed);
  EXPECT_EQ(left, GgmPrg::G0(seed));
  EXPECT_EQ(right, GgmPrg::G1(seed));
}

TEST(GgmPrgTest, GbSelectsByBit) {
  Bytes seed(kLambdaBytes, 0x13);
  EXPECT_EQ(GgmPrg::Gb(seed, 0), GgmPrg::G0(seed));
  EXPECT_EQ(GgmPrg::Gb(seed, 1), GgmPrg::G1(seed));
}

TEST(GgmPrgTest, DifferentSeedsDiverge) {
  Bytes s1(kLambdaBytes, 0x00);
  Bytes s2(kLambdaBytes, 0x01);
  EXPECT_NE(GgmPrg::G0(s1), GgmPrg::G0(s2));
  EXPECT_NE(GgmPrg::G1(s1), GgmPrg::G1(s2));
}

TEST(GgmPrgTest, SingleBitSeedChangeAvalanches) {
  Bytes s1(kLambdaBytes, 0x00);
  Bytes s2 = s1;
  s2[0] ^= 0x01;
  Bytes o1 = GgmPrg::G0(s1);
  Bytes o2 = GgmPrg::G0(s2);
  int differing_bits = 0;
  for (size_t i = 0; i < o1.size(); ++i) {
    differing_bits += __builtin_popcount(o1[i] ^ o2[i]);
  }
  // Expect roughly half the 128 output bits to flip.
  EXPECT_GT(differing_bits, 32);
  EXPECT_LT(differing_bits, 96);
}

TEST(GgmPrgTest, ChainedExpansionIsConsistent) {
  // G_0(G_1(seed)) must be reproducible step by step — the property the
  // GGM-tree DPRF relies on.
  Bytes seed(kLambdaBytes, 0x99);
  Bytes inner = GgmPrg::G1(seed);
  Bytes direct = GgmPrg::G0(inner);
  EXPECT_EQ(direct, GgmPrg::G0(GgmPrg::G1(seed)));
}

}  // namespace
}  // namespace rsse::crypto
