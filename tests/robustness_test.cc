// Robustness and concurrency: malformed inputs must fail cleanly (no
// crashes), and the read-only server paths must be safely shareable across
// threads.

#include <algorithm>
#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/random.h"
#include "data/generators.h"
#include "rsse/factory.h"
#include "rsse/logarithmic.h"
#include "sse/encrypted_multimap.h"

namespace rsse {
namespace {

TEST(RobustnessTest, DeserializeSurvivesRandomMutations) {
  sse::PrfKeyDeriver deriver(crypto::GenerateKey());
  sse::PlainMultimap postings;
  postings[ToBytes("w")] = {sse::EncodeIdPayload(1), sse::EncodeIdPayload(2)};
  Result<sse::EncryptedMultimap> built =
      sse::EncryptedMultimap::Build(postings, deriver);
  ASSERT_TRUE(built.ok());
  Bytes blob = built->Serialize();

  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes mutated = blob;
    int mutations = static_cast<int>(rng.Uniform(1, 8));
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng.Uniform(0, mutated.size() - 1);
      mutated[pos] = static_cast<uint8_t>(rng.Uniform(0, 255));
    }
    if (rng.Flip(0.3) && mutated.size() > 4) {
      mutated.resize(rng.Uniform(0, mutated.size() - 1));
    }
    // Must either parse (mutation hit ciphertext bytes only) or fail with a
    // clean status — never crash.
    Result<sse::EncryptedMultimap> r =
        sse::EncryptedMultimap::Deserialize(mutated);
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(RobustnessTest, SearchWithCorruptedTokenReturnsNothingOrGarbage) {
  sse::PrfKeyDeriver deriver(crypto::GenerateKey());
  sse::PlainMultimap postings;
  for (uint64_t i = 0; i < 50; ++i) {
    postings[ToBytes("w")].push_back(sse::EncodeIdPayload(i));
  }
  Result<sse::EncryptedMultimap> built =
      sse::EncryptedMultimap::Build(postings, deriver);
  ASSERT_TRUE(built.ok());
  sse::KeywordKeys token = deriver.Derive(ToBytes("w"));
  // Valid label key but corrupted value key: decryptions fail cleanly and
  // the search terminates.
  sse::KeywordKeys bad = token;
  bad.value_key[0] ^= 0xff;
  std::vector<Bytes> res = built->Search(bad);
  EXPECT_LE(res.size(), 50u);
}

TEST(RobustnessTest, ConcurrentSearchesAreSafe) {
  Rng rng(5);
  Dataset data = GenerateUniform(500, 1 << 10, rng);
  LogarithmicScheme scheme(CoverTechnique::kUrc);
  ASSERT_TRUE(scheme.Build(data).ok());

  // Query() touches the scheme's internal RNG for token permutation, so
  // share only the server-side object: run the EMM search concurrently via
  // const Query on separate schemes would race the rng_. Instead verify
  // concurrent EncryptedMultimap::Search on one shared index.
  sse::PrfKeyDeriver deriver(crypto::GenerateKey());
  sse::PlainMultimap postings;
  for (uint64_t w = 0; w < 16; ++w) {
    Bytes keyword;
    AppendUint64(keyword, w);
    for (uint64_t i = 0; i < 100; ++i) {
      postings[keyword].push_back(sse::EncodeIdPayload(w * 1000 + i));
    }
  }
  Result<sse::EncryptedMultimap> emm =
      sse::EncryptedMultimap::Build(postings, deriver);
  ASSERT_TRUE(emm.ok());

  std::atomic<int> failures{0};
  auto worker = [&](uint64_t w) {
    Bytes keyword;
    AppendUint64(keyword, w);
    sse::KeywordKeys token = deriver.Derive(keyword);
    for (int i = 0; i < 20; ++i) {
      if (emm->Search(token).size() != 100) failures.fetch_add(1);
    }
  };
  std::vector<std::thread> threads;
  for (uint64_t w = 0; w < 16; ++w) threads.emplace_back(worker, w);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(RobustnessTest, SchemesHandleEmptyDatasetGracefully) {
  Dataset empty(Domain{64}, {});
  for (SchemeId id : AllSchemeIds()) {
    auto scheme = MakeScheme(id, 1);
    Status built = scheme->Build(empty);
    if (!built.ok()) continue;  // SRC-i legitimately rejects empty input
    Result<QueryResult> q = scheme->Query(Range{0, 63});
    ASSERT_TRUE(q.ok()) << SchemeName(id);
    EXPECT_TRUE(q->ids.empty()) << SchemeName(id);
  }
}

TEST(RobustnessTest, ZeroSizedDomainRejected) {
  Dataset bad(Domain{0}, {});
  for (SchemeId id : AllSchemeIds()) {
    auto scheme = MakeScheme(id, 1);
    EXPECT_FALSE(scheme->Build(bad).ok()) << SchemeName(id);
  }
}

TEST(RobustnessTest, QueryResultsAreStableAcrossRepeats) {
  // Queries are deterministic given the built index (modulo the random
  // token permutation): repeated queries must return the same id multiset.
  Rng rng(5);
  Dataset data = GenerateUniform(200, 1 << 8, rng);
  for (SchemeId id : AllSchemeIds()) {
    if (id == SchemeId::kQuadratic) continue;
    auto scheme = MakeScheme(id, 1);
    ASSERT_TRUE(scheme->Build(data).ok());
    Range r{40, 180};
    std::vector<uint64_t> first = scheme->Query(r)->ids;
    std::sort(first.begin(), first.end());
    for (int i = 0; i < 3; ++i) {
      std::vector<uint64_t> again = scheme->Query(r)->ids;
      std::sort(again.begin(), again.end());
      EXPECT_EQ(again, first) << SchemeName(id);
    }
  }
}

TEST(RobustnessTest, ValuesAtDomainEdges) {
  // First and last domain values, power-of-two and non-power domains.
  for (uint64_t domain_size : {uint64_t{2}, uint64_t{100}, uint64_t{1} << 16}) {
    Dataset data(Domain{domain_size},
                 {{1, 0}, {2, domain_size - 1}, {3, domain_size / 2}});
    for (SchemeId id : AllSchemeIds()) {
      if (id == SchemeId::kQuadratic && domain_size > 4096) continue;
      auto scheme = MakeScheme(id, 1);
      ASSERT_TRUE(scheme->Build(data).ok())
          << SchemeName(id) << " domain " << domain_size;
      Result<QueryResult> all = scheme->Query(Range{0, domain_size - 1});
      ASSERT_TRUE(all.ok());
      EXPECT_EQ(FilterIdsToRange(data, all->ids, Range{0, domain_size - 1}).size(),
                3u)
          << SchemeName(id) << " domain " << domain_size;
      Range last_value{domain_size - 1, domain_size - 1};
      Result<QueryResult> last = scheme->Query(last_value);
      ASSERT_TRUE(last.ok());
      std::vector<uint64_t> got =
          FilterIdsToRange(data, last->ids, last_value);
      std::vector<uint64_t> truth = data.IdsInRange(last_value);
      std::sort(got.begin(), got.end());
      std::sort(truth.begin(), truth.end());
      EXPECT_EQ(got, truth) << SchemeName(id) << " domain " << domain_size;
    }
  }
}

}  // namespace
}  // namespace rsse
