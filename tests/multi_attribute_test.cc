#include "rsse/multi_attribute.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rsse {
namespace {

std::vector<Record2D> GridRecords() {
  // 8x8 grid, one tuple per cell.
  std::vector<Record2D> records;
  uint64_t id = 0;
  for (uint64_t x = 0; x < 8; ++x) {
    for (uint64_t y = 0; y < 8; ++y) {
      records.push_back(Record2D{id++, x, y});
    }
  }
  return records;
}

std::vector<uint64_t> Truth(const std::vector<Record2D>& records,
                            const Range& rx, const Range& ry) {
  std::vector<uint64_t> out;
  for (const Record2D& r : records) {
    if (rx.Contains(r.x) && ry.Contains(r.y)) out.push_back(r.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(TwoAttributeTest, ExactSubSchemeAnswersRectanglesExactly) {
  std::vector<Record2D> records = GridRecords();
  TwoAttributeScheme scheme(SchemeId::kLogarithmicUrc);
  ASSERT_TRUE(scheme.Build(Domain{8}, Domain{8}, records).ok());
  for (uint64_t xlo = 0; xlo < 8; xlo += 2) {
    for (uint64_t ylo = 0; ylo < 8; ylo += 3) {
      Range rx{xlo, std::min<uint64_t>(7, xlo + 2)};
      Range ry{ylo, std::min<uint64_t>(7, ylo + 3)};
      Result<TwoAttributeScheme::RectResult> q = scheme.Query(rx, ry);
      ASSERT_TRUE(q.ok());
      EXPECT_EQ(q->ids, Truth(records, rx, ry))
          << "rect [" << rx.lo << "," << rx.hi << "]x[" << ry.lo << ","
          << ry.hi << "]";
    }
  }
}

TEST(TwoAttributeTest, SrcSubSchemeSupersetRefinedExactly) {
  std::vector<Record2D> records = GridRecords();
  TwoAttributeScheme scheme(SchemeId::kLogarithmicSrc);
  ASSERT_TRUE(scheme.Build(Domain{8}, Domain{8}, records).ok());
  Range rx{2, 5};
  Range ry{1, 3};
  Result<TwoAttributeScheme::RectResult> q = scheme.Query(rx, ry);
  ASSERT_TRUE(q.ok());
  std::vector<uint64_t> truth = Truth(records, rx, ry);
  for (uint64_t id : truth) {
    EXPECT_TRUE(std::binary_search(q->ids.begin(), q->ids.end(), id));
  }
  EXPECT_EQ(TwoAttributeScheme::FilterToRect(records, q->ids, rx, ry), truth);
}

TEST(TwoAttributeTest, CostsAggregateBothSubQueries) {
  TwoAttributeScheme scheme(SchemeId::kLogarithmicBrc);
  ASSERT_TRUE(scheme.Build(Domain{64}, Domain{64}, GridRecords()).ok());
  Result<TwoAttributeScheme::RectResult> q =
      scheme.Query(Range{1, 6}, Range{0, 7});
  ASSERT_TRUE(q.ok());
  EXPECT_GE(q->token_count, 2u);  // at least one token per attribute
  EXPECT_GT(q->token_bytes, 0u);
}

TEST(TwoAttributeTest, EmptyIntersection) {
  std::vector<Record2D> records = {{1, 0, 7}, {2, 7, 0}};
  TwoAttributeScheme scheme(SchemeId::kLogarithmicUrc);
  ASSERT_TRUE(scheme.Build(Domain{8}, Domain{8}, records).ok());
  // Each half-rectangle matches one attribute of one tuple but never both.
  Result<TwoAttributeScheme::RectResult> q =
      scheme.Query(Range{0, 3}, Range{0, 3});
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->ids.empty());
}

TEST(TwoAttributeTest, IndexSizeSumsBothAttributes) {
  TwoAttributeScheme scheme(SchemeId::kLogarithmicBrc);
  EXPECT_EQ(scheme.IndexSizeBytes(), 0u);
  ASSERT_TRUE(scheme.Build(Domain{8}, Domain{8}, GridRecords()).ok());
  EXPECT_GT(scheme.IndexSizeBytes(), 0u);
}

TEST(TwoAttributeTest, FilterToRectDropsUnknownIds) {
  std::vector<Record2D> records = {{1, 2, 3}, {2, 5, 5}};
  std::vector<uint64_t> filtered = TwoAttributeScheme::FilterToRect(
      records, {1, 2, 99}, Range{0, 3}, Range{0, 9});
  EXPECT_EQ(filtered, std::vector<uint64_t>{1});
}

TEST(TwoAttributeTest, AsymmetricDomains) {
  std::vector<Record2D> records = {{1, 3, 40000}, {2, 7, 123}};
  TwoAttributeScheme scheme(SchemeId::kLogarithmicUrc);
  ASSERT_TRUE(scheme.Build(Domain{8}, Domain{1 << 20}, records).ok());
  Result<TwoAttributeScheme::RectResult> q =
      scheme.Query(Range{0, 7}, Range{30000, 50000});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->ids, std::vector<uint64_t>{1});
}

TEST(TwoAttributeTest, QueryBeforeBuildFails) {
  TwoAttributeScheme scheme(SchemeId::kLogarithmicBrc);
  EXPECT_FALSE(scheme.Query(Range{0, 1}, Range{0, 1}).ok());
}

TEST(TwoAttributeTest, WorksWithInteractiveSubScheme) {
  std::vector<Record2D> records = GridRecords();
  TwoAttributeScheme scheme(SchemeId::kLogarithmicSrcI);
  ASSERT_TRUE(scheme.Build(Domain{8}, Domain{8}, records).ok());
  Range rx{0, 4};
  Range ry{3, 7};
  Result<TwoAttributeScheme::RectResult> q = scheme.Query(rx, ry);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->rounds, 2);
  EXPECT_EQ(TwoAttributeScheme::FilterToRect(records, q->ids, rx, ry),
            Truth(records, rx, ry));
}

}  // namespace
}  // namespace rsse
