#include "common/rng.h"
#include "common/zipf.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace rsse {
namespace {

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, UniformSingletonRange) {
  Rng rng(7);
  EXPECT_EQ(rng.Uniform(5, 5), 5u);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1 << 30), b.Uniform(0, 1 << 30));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform(0, 1 << 30) == b.Uniform(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformReal();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, FlipProbabilityRoughlyRespected) {
  Rng rng(9);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Flip(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleHandlesTinyVectors) {
  Rng rng(5);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(ZipfTest, SamplesInRange) {
  Rng rng(1);
  ZipfSampler z(100, 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(z.Sample(rng), 100u);
}

TEST(ZipfTest, RankZeroIsMostFrequent) {
  Rng rng(1);
  ZipfSampler z(50, 1.0);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 20000; ++i) ++counts[z.Sample(rng)];
  int max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_EQ(counts[0], max_count);
  // Classic Zipf: rank 0 roughly twice as frequent as rank 1.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[4]);
}

TEST(ZipfTest, HigherThetaIsMoreSkewed) {
  Rng rng1(1);
  Rng rng2(1);
  ZipfSampler flat(100, 0.5);
  ZipfSampler steep(100, 2.0);
  int flat_zero = 0;
  int steep_zero = 0;
  for (int i = 0; i < 5000; ++i) {
    if (flat.Sample(rng1) == 0) ++flat_zero;
    if (steep.Sample(rng2) == 0) ++steep_zero;
  }
  EXPECT_GT(steep_zero, flat_zero);
}

TEST(ZipfTest, SingletonSupport) {
  Rng rng(1);
  ZipfSampler z(1, 1.0);
  EXPECT_EQ(z.Sample(rng), 0u);
}

}  // namespace
}  // namespace rsse
