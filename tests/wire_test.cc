#include "server/wire.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace rsse::server {
namespace {

Label MakeLabel(uint8_t fill) {
  Label l;
  l.fill(fill);
  return l;
}

// ---------------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------------

TEST(WireFrameTest, RoundTrip) {
  Bytes stream;
  const Bytes payload = ToBytes("hello frames");
  ASSERT_TRUE(EncodeFrame(FrameType::kStatsReq, ConstByteSpan(payload.data(),
                                                  payload.size()),
              stream));
  ASSERT_TRUE(EncodeFrame(FrameType::kSearchDone, {}, stream));

  size_t offset = 0;
  Frame frame;
  ASSERT_EQ(DecodeFrame(stream, offset, frame, nullptr), FrameParse::kFrame);
  EXPECT_EQ(frame.type, FrameType::kStatsReq);
  EXPECT_EQ(frame.payload, payload);
  ASSERT_EQ(DecodeFrame(stream, offset, frame, nullptr), FrameParse::kFrame);
  EXPECT_EQ(frame.type, FrameType::kSearchDone);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_EQ(offset, stream.size());
  EXPECT_EQ(DecodeFrame(stream, offset, frame, nullptr),
            FrameParse::kNeedMore);
}

TEST(WireFrameTest, TruncationAtEveryPrefixNeedsMoreNeverCrashes) {
  Bytes stream;
  const Bytes payload = ToBytes("some payload bytes");
  ASSERT_TRUE(EncodeFrame(FrameType::kSetupReq,
              ConstByteSpan(payload.data(), payload.size()), stream));
  for (size_t cut = 0; cut < stream.size(); ++cut) {
    Bytes prefix(stream.begin(), stream.begin() + static_cast<long>(cut));
    size_t offset = 0;
    Frame frame;
    EXPECT_EQ(DecodeFrame(prefix, offset, frame, nullptr),
              FrameParse::kNeedMore)
        << "cut at " << cut;
    EXPECT_EQ(offset, 0u);
  }
}

TEST(WireFrameTest, RejectsOversizedLength) {
  Bytes stream;
  AppendUint32(stream, kMaxFrameBytes + 1);
  stream.push_back(kWireVersion);
  stream.push_back(static_cast<uint8_t>(FrameType::kStatsReq));
  size_t offset = 0;
  Frame frame;
  std::string error;
  EXPECT_EQ(DecodeFrame(stream, offset, frame, &error),
            FrameParse::kMalformed);
  EXPECT_NE(error.find("kMaxFrameBytes"), std::string::npos);
}

TEST(WireFrameTest, RejectsUndersizedLength) {
  Bytes stream;
  AppendUint32(stream, 1);  // cannot even hold version + type
  stream.push_back(kWireVersion);
  size_t offset = 0;
  Frame frame;
  EXPECT_EQ(DecodeFrame(stream, offset, frame, nullptr),
            FrameParse::kMalformed);
}

TEST(WireFrameTest, RejectsVersionMismatch) {
  Bytes stream;
  ASSERT_TRUE(EncodeFrame(FrameType::kStatsReq, {}, stream));
  stream[4] = kWireVersion + 1;
  size_t offset = 0;
  Frame frame;
  std::string error;
  EXPECT_EQ(DecodeFrame(stream, offset, frame, &error),
            FrameParse::kMalformed);
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(WireFrameTest, RejectsUnknownType) {
  Bytes stream;
  ASSERT_TRUE(EncodeFrame(FrameType::kStatsReq, {}, stream));
  stream[5] = 200;
  size_t offset = 0;
  Frame frame;
  EXPECT_EQ(DecodeFrame(stream, offset, frame, nullptr),
            FrameParse::kMalformed);
}

TEST(WireFrameTest, ErrorDrainingFrameRoundTrip) {
  // The draining refusal is a first-class frame: it carries a normal
  // ErrorResponse payload under its own type so clients can tell a
  // retryable drain apart from a hard protocol error.
  ErrorResponse resp;
  resp.message = "server draining; retry against the restarted server";
  const Bytes payload = resp.Encode();
  Bytes stream;
  ASSERT_TRUE(EncodeFrame(FrameType::kErrorDraining,
                          ConstByteSpan(payload.data(), payload.size()),
                          stream));
  size_t offset = 0;
  Frame frame;
  ASSERT_EQ(DecodeFrame(stream, offset, frame, nullptr), FrameParse::kFrame);
  EXPECT_EQ(frame.type, FrameType::kErrorDraining);
  auto decoded = ErrorResponse::Decode(frame.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->message, resp.message);
}

TEST(WireFrameTest, ErrorDrainingIsTheLastKnownType) {
  // kErrorDraining sits at the top of the accepted range; its successor
  // must stay malformed until a protocol revision deliberately claims it.
  Bytes stream;
  ASSERT_TRUE(EncodeFrame(FrameType::kErrorDraining, {}, stream));
  size_t offset = 0;
  Frame frame;
  ASSERT_EQ(DecodeFrame(stream, offset, frame, nullptr), FrameParse::kFrame);
  EXPECT_EQ(frame.type, FrameType::kErrorDraining);

  stream.clear();
  ASSERT_TRUE(EncodeFrame(FrameType::kErrorDraining, {}, stream));
  stream[5] = static_cast<uint8_t>(FrameType::kErrorDraining) + 1;
  offset = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(stream, offset, frame, &error),
            FrameParse::kMalformed);
  EXPECT_NE(error.find("unknown frame type"), std::string::npos);
}

TEST(WireFrameTest, ErrorDrainingFuzzEveryTruncationAndByteFlip) {
  ErrorResponse resp;
  resp.message = "draining";
  const Bytes payload = resp.Encode();
  Bytes stream;
  ASSERT_TRUE(EncodeFrame(FrameType::kErrorDraining,
                          ConstByteSpan(payload.data(), payload.size()),
                          stream));
  // Truncations: every strict prefix wants more bytes, never faults.
  for (size_t cut = 0; cut < stream.size(); ++cut) {
    Bytes prefix(stream.begin(), stream.begin() + static_cast<long>(cut));
    size_t offset = 0;
    Frame frame;
    EXPECT_EQ(DecodeFrame(prefix, offset, frame, nullptr),
              FrameParse::kNeedMore)
        << "cut at " << cut;
  }
  // Byte flips: the frame either still decodes (payload flips — the typed
  // ErrorResponse decoder gets its own say) or is malformed; no flip may
  // crash, and a flip that survives DecodeFrame must decode or reject
  // cleanly as an ErrorResponse too.
  for (size_t pos = 0; pos < stream.size(); ++pos) {
    Bytes mutated = stream;
    mutated[pos] ^= 0x40;
    size_t offset = 0;
    Frame frame;
    const FrameParse parse = DecodeFrame(mutated, offset, frame, nullptr);
    if (parse == FrameParse::kFrame) {
      ErrorResponse::Decode(frame.payload);
    }
  }
}

// ---------------------------------------------------------------------------
// Typed payloads
// ---------------------------------------------------------------------------

TEST(WirePayloadTest, SetupRoundTrip) {
  SetupRequest req;
  req.index_blob = ToBytes("pretend this is a ShardedEmm blob");
  auto decoded = SetupRequest::Decode(req.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->index_blob, req.index_blob);

  SetupResponse resp;
  resp.shards = 8;
  resp.entries = 123456789;
  auto decoded_resp = SetupResponse::Decode(resp.Encode());
  ASSERT_TRUE(decoded_resp.ok());
  EXPECT_EQ(decoded_resp->shards, 8u);
  EXPECT_EQ(decoded_resp->entries, 123456789u);
}

TEST(WirePayloadTest, SearchBatchRoundTrip) {
  SearchBatchRequest req;
  for (uint32_t q = 0; q < 3; ++q) {
    WireQuery query;
    query.query_id = 100 + q;
    for (uint8_t t = 0; t < 4; ++t) {
      query.tokens.push_back(WireToken{static_cast<uint8_t>(t + q),
                                       MakeLabel(static_cast<uint8_t>(t))});
    }
    req.queries.push_back(query);
  }
  auto decoded = SearchBatchRequest::Decode(req.Encode());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->queries.size(), 3u);
  for (uint32_t q = 0; q < 3; ++q) {
    EXPECT_EQ(decoded->queries[q].query_id, 100 + q);
    EXPECT_EQ(decoded->queries[q].tokens, req.queries[q].tokens);
  }
}

TEST(WirePayloadTest, SearchBatchRejectsCorruption) {
  SearchBatchRequest req;
  WireQuery query;
  query.query_id = 7;
  query.tokens.push_back(WireToken{5, MakeLabel(0xab)});
  req.queries.push_back(query);
  const Bytes good = req.Encode();

  // Truncation at every cut point must fail cleanly, never crash.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    Bytes bad(good.begin(), good.begin() + static_cast<long>(cut));
    EXPECT_FALSE(SearchBatchRequest::Decode(bad).ok()) << "cut " << cut;
  }

  // Query count far beyond what the bytes can hold.
  Bytes inflated = good;
  inflated[0] = 0xff;
  EXPECT_FALSE(SearchBatchRequest::Decode(inflated).ok());

  // Token level out of the GGM range.
  Bytes bad_level = good;
  bad_level[12] = 63;  // 4 count + 4 id + 4 token count → level byte
  EXPECT_FALSE(SearchBatchRequest::Decode(bad_level).ok());

  // Trailing garbage.
  Bytes trailing = good;
  trailing.push_back(0x00);
  EXPECT_FALSE(SearchBatchRequest::Decode(trailing).ok());
}

TEST(WirePayloadTest, SearchResultRoundTripAndCorruption) {
  SearchResult result;
  result.query_id = 42;
  result.ids = {1, 2, 3, 1ull << 60};
  auto decoded = SearchResult::Decode(result.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->query_id, 42u);
  EXPECT_EQ(decoded->ids, result.ids);

  Bytes good = result.Encode();
  // Claim more ids than the payload holds.
  good[11] = 0xff;
  EXPECT_FALSE(SearchResult::Decode(good).ok());
}

TEST(WirePayloadTest, SearchDoneRoundTrip) {
  SearchDone done;
  done.query_count = 9;
  done.tokens_received = 40;
  done.unique_nodes_expanded = 25;
  done.leaves_searched = 4096;
  done.search_nanos = 123456;
  auto decoded = SearchDone::Decode(done.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->query_count, 9u);
  EXPECT_EQ(decoded->tokens_received, 40u);
  EXPECT_EQ(decoded->unique_nodes_expanded, 25u);
  EXPECT_EQ(decoded->leaves_searched, 4096u);
  EXPECT_EQ(decoded->search_nanos, 123456u);
  EXPECT_FALSE(SearchDone::Decode(ToBytes("short")).ok());
}

TEST(WirePayloadTest, SearchDoneCarriesSkippedDecrypts) {
  SearchDone done;
  done.query_count = 1;
  done.skipped_decrypts = 77;
  auto decoded = SearchDone::Decode(done.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->skipped_decrypts, 77u);
}

TEST(WirePayloadTest, SetupStoreRoundTripAndCorruption) {
  SetupStoreRequest req;
  req.store_id = 1;
  req.kind = 1;
  req.index_blob = Bytes(37, 0xCD);
  req.gate_blob = Bytes(9, 0x11);
  const Bytes good = req.Encode();
  auto decoded = SetupStoreRequest::Decode(good);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->store_id, 1u);
  EXPECT_EQ(decoded->kind, 1);
  EXPECT_EQ(decoded->index_blob, req.index_blob);
  EXPECT_EQ(decoded->gate_blob, req.gate_blob);

  // Empty gate blob round-trips too.
  req.gate_blob.clear();
  auto no_gate = SetupStoreRequest::Decode(req.Encode());
  ASSERT_TRUE(no_gate.ok());
  EXPECT_TRUE(no_gate->gate_blob.empty());

  // Truncation at every cut point must fail cleanly, never crash.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    Bytes bad(good.begin(), good.begin() + static_cast<long>(cut));
    EXPECT_FALSE(SetupStoreRequest::Decode(bad).ok()) << "cut " << cut;
  }

  // Index blob length far beyond the payload.
  Bytes inflated = good;
  inflated[5] = 0xff;  // high byte of the u64 index length
  EXPECT_FALSE(SetupStoreRequest::Decode(inflated).ok());

  Bytes trailing = good;
  trailing.push_back(0x00);
  EXPECT_FALSE(SetupStoreRequest::Decode(trailing).ok());
}

TEST(WirePayloadTest, SearchKeywordRoundTripAndCorruption) {
  SearchKeywordRequest req;
  req.store_id = 1;
  SearchKeywordRequest::Query query;
  query.query_id = 5;
  WireKeywordToken keyword;
  keyword.kind = 0;
  keyword.a = Bytes(16, 0xA1);
  keyword.b = Bytes(16, 0xB2);
  query.tokens.push_back(keyword);
  WireKeywordToken trapdoor;
  trapdoor.kind = 1;
  trapdoor.a = Bytes(16, 0xC3);
  query.tokens.push_back(trapdoor);
  req.queries.push_back(query);

  const Bytes good = req.Encode();
  auto decoded = SearchKeywordRequest::Decode(good);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->store_id, 1u);
  ASSERT_EQ(decoded->queries.size(), 1u);
  EXPECT_EQ(decoded->queries[0].query_id, 5u);
  EXPECT_EQ(decoded->queries[0].tokens, query.tokens);

  for (size_t cut = 0; cut < good.size(); ++cut) {
    Bytes bad(good.begin(), good.begin() + static_cast<long>(cut));
    EXPECT_FALSE(SearchKeywordRequest::Decode(bad).ok()) << "cut " << cut;
  }

  // Query count beyond what the bytes can hold.
  Bytes inflated = good;
  inflated[4] = 0xff;
  EXPECT_FALSE(SearchKeywordRequest::Decode(inflated).ok());

  // Token kind outside {0, 1}.
  Bytes bad_kind = good;
  bad_kind[16] = 7;  // 4 store + 4 count + 4 id + 4 token count → kind
  EXPECT_FALSE(SearchKeywordRequest::Decode(bad_kind).ok());

  // Token part length above the per-part cap.
  SearchKeywordRequest big;
  SearchKeywordRequest::Query big_query;
  big_query.query_id = 1;
  WireKeywordToken big_token;
  big_token.kind = 1;
  big_token.a = Bytes(kMaxKeywordTokenPartBytes + 1, 0xEE);
  big_query.tokens.push_back(big_token);
  big.queries.push_back(big_query);
  EXPECT_FALSE(SearchKeywordRequest::Decode(big.Encode()).ok());

  Bytes trailing = good;
  trailing.push_back(0x00);
  EXPECT_FALSE(SearchKeywordRequest::Decode(trailing).ok());
}

TEST(WirePayloadTest, SearchPayloadRoundTripAndCorruption) {
  SearchPayloadResult result;
  result.query_id = 9;
  result.payloads = {Bytes(8, 0x01), Bytes(24, 0x02), Bytes{}};
  const Bytes good = result.Encode();
  auto decoded = SearchPayloadResult::Decode(good);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->query_id, 9u);
  EXPECT_EQ(decoded->payloads, result.payloads);

  for (size_t cut = 0; cut < good.size(); ++cut) {
    Bytes bad(good.begin(), good.begin() + static_cast<long>(cut));
    EXPECT_FALSE(SearchPayloadResult::Decode(bad).ok()) << "cut " << cut;
  }

  // Payload count far beyond what the bytes can hold.
  Bytes inflated = good;
  inflated[4] = 0xff;
  EXPECT_FALSE(SearchPayloadResult::Decode(inflated).ok());

  Bytes trailing = good;
  trailing.push_back(0x00);
  EXPECT_FALSE(SearchPayloadResult::Decode(trailing).ok());
}

TEST(WirePayloadTest, UpdateRoundTripAndCorruption) {
  UpdateRequest req;
  req.entries.emplace_back(MakeLabel(0x01), ToBytes("ciphertext-one"));
  req.entries.emplace_back(MakeLabel(0x02), ToBytes("ciphertext-two"));
  auto decoded = UpdateRequest::Decode(req.Encode());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->entries.size(), 2u);
  EXPECT_EQ(decoded->entries[0].first, MakeLabel(0x01));
  EXPECT_EQ(decoded->entries[1].second, ToBytes("ciphertext-two"));

  const Bytes good = req.Encode();
  for (size_t cut = 0; cut < good.size(); ++cut) {
    Bytes bad(good.begin(), good.begin() + static_cast<long>(cut));
    EXPECT_FALSE(UpdateRequest::Decode(bad).ok()) << "cut " << cut;
  }
}

TEST(WirePayloadTest, StatsAndErrorRoundTrip) {
  StatsResponse stats;
  stats.entries = 10;
  stats.size_bytes = 100;
  stats.shards = 4;
  stats.batches_served = 3;
  stats.queries_served = 24;
  stats.tokens_received = 96;
  stats.nodes_deduped = 40;
  auto decoded = StatsResponse::Decode(stats.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->nodes_deduped, 40u);
  EXPECT_EQ(decoded->shards, 4u);

  ErrorResponse error;
  error.message = "no index hosted";
  auto decoded_err = ErrorResponse::Decode(error.Encode());
  ASSERT_TRUE(decoded_err.ok());
  EXPECT_EQ(decoded_err->message, "no index hosted");
}

}  // namespace
}  // namespace rsse::server
