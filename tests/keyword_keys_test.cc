#include "sse/keyword_keys.h"

#include <gtest/gtest.h>

#include "crypto/random.h"

namespace rsse::sse {
namespace {

TEST(KeysFromSharedSecretTest, DeterministicAndSplit) {
  Bytes secret = ToBytes("shared-secret");
  KeywordKeys a = KeysFromSharedSecret(secret);
  KeywordKeys b = KeysFromSharedSecret(secret);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.label_key.size(), crypto::kLambdaBytes);
  EXPECT_EQ(a.value_key.size(), crypto::kLambdaBytes);
  EXPECT_NE(a.label_key, a.value_key);  // domain separation
}

TEST(KeysFromSharedSecretTest, DistinctSecretsDistinctKeys) {
  KeywordKeys a = KeysFromSharedSecret(ToBytes("s1"));
  KeywordKeys b = KeysFromSharedSecret(ToBytes("s2"));
  EXPECT_NE(a.label_key, b.label_key);
  EXPECT_NE(a.value_key, b.value_key);
}

TEST(PrfKeyDeriverTest, DeterministicPerKeyword) {
  Bytes master = crypto::GenerateKey();
  PrfKeyDeriver deriver(master);
  EXPECT_EQ(deriver.Derive(ToBytes("w1")), deriver.Derive(ToBytes("w1")));
  EXPECT_NE(deriver.Derive(ToBytes("w1")), deriver.Derive(ToBytes("w2")));
}

TEST(PrfKeyDeriverTest, DistinctMastersDistinctKeys) {
  PrfKeyDeriver a(crypto::GenerateKey());
  PrfKeyDeriver b(crypto::GenerateKey());
  EXPECT_NE(a.Derive(ToBytes("w")), b.Derive(ToBytes("w")));
}

TEST(PrfKeyDeriverTest, EmptyKeywordSupported) {
  PrfKeyDeriver deriver(crypto::GenerateKey());
  KeywordKeys k = deriver.Derive({});
  EXPECT_EQ(k.label_key.size(), crypto::kLambdaBytes);
}

}  // namespace
}  // namespace rsse::sse
