// Client socket-path regressions against a scripted fake server: response
// timeouts must close the (now desynced) connection instead of leaving a
// partial frame to corrupt the next request, a mid-stream disconnect must
// surface as an error, and a long pipelined result stream must not grow
// the receive buffer without bound.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <functional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/client.h"
#include "server/wire.h"

namespace rsse::server {
namespace {

/// A scripted TCP peer on an ephemeral loopback port: accepts exactly one
/// connection and hands its fd to the test's script.
class FakePeer {
 public:
  explicit FakePeer(std::function<void(int fd)> script) {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(
        bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
        0);
    EXPECT_EQ(listen(listen_fd_, 1), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(
        getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len),
        0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this, script = std::move(script)] {
      const int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        script(fd);
        close(fd);
      }
    });
  }

  ~FakePeer() {
    thread_.join();
    close(listen_fd_);
  }

  uint16_t port() const { return port_; }

 private:
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

/// Reads and discards bytes until one full request frame has arrived.
void DrainOneRequest(int fd) {
  Bytes in;
  size_t offset = 0;
  Frame frame;
  for (;;) {
    const FrameParse parse = DecodeFrame(in, offset, frame, nullptr);
    if (parse == FrameParse::kFrame) return;
    if (parse == FrameParse::kMalformed) return;
    uint8_t chunk[4096];
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return;
    in.insert(in.end(), chunk, chunk + n);
  }
}

void SendAll(int fd, const Bytes& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

std::vector<GgmDprf::Token> OneToken() {
  GgmDprf::Token token;
  token.seed = Bytes(kLabelBytes, 0xab);
  token.level = 3;
  return {token};
}

/// These tests pin the raw transport behavior (one connection, no second
/// chances), so the retry layer is switched off.
ClientOptions NoRetry() {
  ClientOptions options;
  options.retry_idempotent = false;
  return options;
}

TEST(ClientStreamTest, TimeoutClosesDesyncedConnection) {
  // The peer answers with a partial frame and stalls: after SO_RCVTIMEO
  // fires, the connection holds half a response and is unusable — the
  // client must close it, not leave it to desync the next request.
  FakePeer peer([](int fd) {
    DrainOneRequest(fd);
    Bytes partial;
    ASSERT_TRUE(EncodeFrame(FrameType::kStatsResp, Bytes(44, 0), partial));
    partial.resize(10);  // header + 4 payload bytes of a 50-byte frame
    SendAll(fd, partial);
    // Hold the socket open well past the client's 1 s timeout.
    std::this_thread::sleep_for(std::chrono::milliseconds(1800));
  });

  EmmClient client(NoRetry());
  ASSERT_TRUE(
      client.Connect("127.0.0.1", peer.port(), /*recv_timeout_seconds=*/1)
          .ok());
  auto stats = client.Stats();
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().ToString().find("timed out"), std::string::npos)
      << stats.status().ToString();
  EXPECT_FALSE(client.connected())
      << "a timed-out connection must be closed, not reused desynced";

  // The next call fails fast on the closed handle — it must not read the
  // stalled response's leftover bytes as its own.
  auto again = client.Stats();
  ASSERT_FALSE(again.ok());
  EXPECT_NE(again.status().ToString().find("not connected"),
            std::string::npos)
      << again.status().ToString();
}

TEST(ClientStreamTest, ServerCloseMidStreamSurfacesError) {
  FakePeer peer([](int fd) {
    DrainOneRequest(fd);
    SearchResult chunk;
    chunk.query_id = 1;
    chunk.ids = {4, 5, 6};
    Bytes frame;
    ASSERT_TRUE(
        EncodeFrame(FrameType::kSearchResult, chunk.Encode(), frame));
    SendAll(fd, frame);
    // Close without the terminating SearchDone.
  });

  EmmClient client(NoRetry());
  ASSERT_TRUE(client.Connect("127.0.0.1", peer.port()).ok());
  EmmClient::BatchQuery query;
  query.query_id = 1;
  query.tokens = OneToken();
  auto outcome = client.SearchBatch({query});
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.status().ToString().find("closed"), std::string::npos)
      << outcome.status().ToString();
  EXPECT_FALSE(client.connected());
}

TEST(ClientStreamTest, LongResultStreamKeepsRecvBufferBounded) {
  // ~6 MB of result chunks before the terminating frame: the client's
  // receive buffer must reclaim its parsed prefix along the way instead
  // of retaining the whole stream.
  constexpr size_t kFrames = 1500;
  constexpr size_t kIdsPerFrame = 512;
  FakePeer peer([](int fd) {
    DrainOneRequest(fd);
    Bytes out;
    SearchResult chunk;
    chunk.query_id = 9;
    chunk.ids.resize(kIdsPerFrame);
    for (size_t i = 0; i < kFrames; ++i) {
      for (size_t j = 0; j < kIdsPerFrame; ++j) {
        chunk.ids[j] = i * kIdsPerFrame + j;
      }
      ASSERT_TRUE(EncodeFrame(FrameType::kSearchResult, chunk.Encode(), out));
      // Batched sends keep the script fast while still delivering far
      // more data than one frame per recv().
      if (out.size() >= (256u << 10)) {
        SendAll(fd, out);
        out.clear();
      }
    }
    SearchDone done;
    done.query_count = 1;
    ASSERT_TRUE(EncodeFrame(FrameType::kSearchDone, done.Encode(), out));
    SendAll(fd, out);
  });

  EmmClient client(NoRetry());
  ASSERT_TRUE(client.Connect("127.0.0.1", peer.port()).ok());
  EmmClient::BatchQuery query;
  query.query_id = 9;
  query.tokens = OneToken();
  auto outcome = client.SearchBatch({query});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->ids[9].size(), kFrames * kIdsPerFrame);
  EXPECT_EQ(outcome->ids[9].back(), kFrames * kIdsPerFrame - 1);

  // Compaction threshold (1 MB) plus one 64 KB read chunk and frame-size
  // slack — far below the ~6 MB that crossed the connection.
  EXPECT_LE(client.PeakRecvBufferBytes(), (1u << 20) + (192u << 10));
  EXPECT_EQ(client.BufferedBytes(), 0u);
}

}  // namespace
}  // namespace rsse::server
