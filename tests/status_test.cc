#include "common/status.h"

#include <gtest/gtest.h>

namespace rsse {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad range");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad range");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad range");
}

TEST(StatusTest, AllFactories) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

namespace helpers {
Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}
Status Chained(int x) {
  RSSE_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}
}  // namespace helpers

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(helpers::Chained(1).ok());
  EXPECT_FALSE(helpers::Chained(-1).ok());
}

}  // namespace
}  // namespace rsse
