#include "rsse/naive_value.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "rsse/constant.h"

namespace rsse {
namespace {

Dataset SmallDataset() {
  return Dataset(Domain{64}, {{0, 5}, {1, 5}, {2, 17}, {3, 40}, {4, 63}});
}

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(NaiveValueTest, ExhaustiveCorrectnessNoFalsePositives) {
  NaiveValueScheme scheme;
  Dataset data = SmallDataset();
  ASSERT_TRUE(scheme.Build(data).ok());
  for (uint64_t lo = 0; lo < 64; lo += 3) {
    for (uint64_t hi = lo; hi < 64; hi += 5) {
      Result<QueryResult> r = scheme.Query(Range{lo, hi});
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(Sorted(r->ids), Sorted(data.IdsInRange(Range{lo, hi})))
          << "range [" << lo << "," << hi << "]";
    }
  }
}

TEST(NaiveValueTest, QuerySizeLinearInRange) {
  NaiveValueScheme scheme;
  ASSERT_TRUE(scheme.Build(SmallDataset()).ok());
  Result<QueryResult> q1 = scheme.Query(Range{0, 0});
  Result<QueryResult> q32 = scheme.Query(Range{0, 31});
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q32.ok());
  EXPECT_EQ(q1->token_count, 1u);
  EXPECT_EQ(q32->token_count, 32u);  // the O(R) drawback
  EXPECT_EQ(q32->token_bytes, 32 * q1->token_bytes);
}

TEST(NaiveValueTest, ConstantSchemeShipsFarFewerTokens) {
  // Same storage, same exactness — the DPRF saves a factor R/log R.
  NaiveValueScheme naive;
  ConstantScheme constant(CoverTechnique::kBrc);
  Dataset data = SmallDataset();
  ASSERT_TRUE(naive.Build(data).ok());
  ASSERT_TRUE(constant.Build(data).ok());
  Range r{1, 62};
  Result<QueryResult> nq = naive.Query(r);
  Result<QueryResult> cq = constant.Query(r);
  ASSERT_TRUE(nq.ok());
  ASSERT_TRUE(cq.ok());
  EXPECT_EQ(Sorted(nq->ids), Sorted(cq->ids));
  EXPECT_GT(nq->token_count, 4 * cq->token_count);
}

TEST(NaiveValueTest, QueryBeforeBuildFails) {
  NaiveValueScheme scheme;
  EXPECT_FALSE(scheme.Query(Range{0, 1}).ok());
}

TEST(NaiveValueTest, IndexSizeMatchesConstantScheme) {
  // Both index one entry per tuple; sizes should be nearly identical.
  NaiveValueScheme naive;
  ConstantScheme constant(CoverTechnique::kBrc);
  Dataset data = SmallDataset();
  ASSERT_TRUE(naive.Build(data).ok());
  ASSERT_TRUE(constant.Build(data).ok());
  EXPECT_EQ(naive.IndexSizeBytes(), constant.IndexSizeBytes());
}

}  // namespace
}  // namespace rsse
